/// \file test_query_engine.cpp
/// The query-serving subsystem: deterministic workload generation, bounded
/// admission queue with backpressure, batch amortization in virtual time,
/// per-wave validation hooks, and crash survival with bit-reproducible
/// latency statistics.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "bfs/config.hpp"
#include "engine/engine.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_algos.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/weights.hpp"
#include "harness/graph500.hpp"

namespace numabfs::engine {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  return eo;
}

WorkloadSpec spec_of(int n, std::uint64_t seed, double mean_gap_ns) {
  WorkloadSpec s;
  s.num_queries = n;
  s.seed = seed;
  s.mean_interarrival_ns = mean_gap_ns;
  return s;
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

TEST(Workload, DeterministicSortedAndSearchable) {
  const GraphBundle b = GraphBundle::make(10, 16, 2, 8);
  Experiment ex(b, shape(1, 2));
  WorkloadSpec s = spec_of(64, 11, 5e5);
  s.st_fraction = 0.3;
  s.khop_fraction = 0.3;
  const auto a = QueryEngine::generate(ex.dist(), s);
  const auto c = QueryEngine::generate(ex.dist(), s);
  ASSERT_EQ(a.size(), 64u);

  int st = 0, khop = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].arrival_ns, c[i].arrival_ns);
    EXPECT_EQ(a[i].source, c[i].source);
    EXPECT_EQ(a[i].kind, c[i].kind);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
    }
    EXPECT_GT(b.csr.degree(a[i].source), 0u);
    if (a[i].kind == QueryKind::st_reachability) {
      EXPECT_GT(b.csr.degree(a[i].target), 0u);
      ++st;
    }
    if (a[i].kind == QueryKind::k_hop) {
      EXPECT_GE(a[i].k, s.k_min);
      EXPECT_LE(a[i].k, s.k_max);
      ++khop;
    }
  }
  EXPECT_GT(st, 0);
  EXPECT_GT(khop, 0);

  WorkloadSpec bad = s;
  bad.st_fraction = 0.8;
  bad.khop_fraction = 0.4;  // fractions exceed 1
  EXPECT_THROW(QueryEngine::generate(ex.dist(), bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Serving: accounting, batching, backpressure
// ---------------------------------------------------------------------------

TEST(QueryEngineServe, AccountingInvariantsHold) {
  const GraphBundle b = GraphBundle::make(10, 16, 4, 16);
  Experiment ex(b, shape(2, 2));
  EngineConfig ec;
  ec.max_batch = 8;
  QueryEngine eng(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const auto qs = QueryEngine::generate(ex.dist(), spec_of(24, 5, 2e5));
  const EngineReport rep = eng.serve(qs);

  ASSERT_EQ(rep.results.size(), 24u);
  EXPECT_GE(rep.waves, 3);  // 24 queries, 8 lanes max
  EXPECT_GT(rep.total_ns, 0.0);
  EXPECT_LE(rep.busy_ns, rep.total_ns + 1e-9);
  EXPECT_GT(rep.qps, 0.0);
  for (const QueryResult& r : rep.results) {
    EXPECT_GE(r.admit_ns, r.arrival_ns);
    EXPECT_GE(r.start_ns, r.admit_ns);
    EXPECT_GT(r.complete_ns, r.start_ns);
    EXPECT_GT(r.visited, 0u);
    EXPECT_LT(r.wave, rep.waves);
  }
  EXPECT_GE(rep.p99_latency_ns, rep.p50_latency_ns);
  EXPECT_GE(rep.p50_latency_ns, 0.0);
}

TEST(QueryEngineServe, BoundedQueueBackpressuresAndStaysFifo) {
  const GraphBundle b = GraphBundle::make(10, 16, 4, 16);
  Experiment ex(b, shape(1, 2));
  EngineConfig ec;
  ec.max_batch = 2;
  ec.queue_depth = 2;
  QueryEngine eng(ex.cluster(), ex.dist(), bfs::original(), ec);
  // A burst: everything arrives (virtually) at once, far faster than the
  // engine drains 2-lane waves through a depth-2 queue.
  const auto qs = QueryEngine::generate(ex.dist(), spec_of(12, 9, 1.0));
  const EngineReport rep = eng.serve(qs);

  EXPECT_GT(rep.backpressured, 0);
  // The first wave departs with whatever has arrived (possibly one lane);
  // everything after drains in full 2-lane waves.
  EXPECT_GE(rep.waves, 6);
  EXPECT_LE(rep.waves, 7);
  for (std::size_t i = 1; i < rep.results.size(); ++i)
    EXPECT_GE(rep.results[i].start_ns, rep.results[i - 1].start_ns)
        << "FIFO violated at query " << i;

  std::vector<Query> unsorted(qs.begin(), qs.end());
  std::swap(unsorted.front().arrival_ns, unsorted.back().arrival_ns);
  EXPECT_THROW(eng.serve(unsorted), std::invalid_argument);
}

TEST(QueryEngineServe, BatchingAmortizesVirtualTime) {
  const GraphBundle b = GraphBundle::make(11, 16, 6, 16);
  Experiment ex(b, shape(2, 2));
  // 16 full-BFS queries all waiting at t=0.
  auto qs = QueryEngine::generate(ex.dist(), spec_of(16, 3, 0.0));

  EngineConfig batched;
  batched.max_batch = 16;
  QueryEngine eng_b(ex.cluster(), ex.dist(), bfs::par_allgather(), batched);
  const EngineReport rb = eng_b.serve(qs);
  EXPECT_EQ(rb.waves, 1);

  EngineConfig serial;
  serial.max_batch = 1;
  QueryEngine eng_s(ex.cluster(), ex.dist(), bfs::par_allgather(), serial);
  const EngineReport rs = eng_s.serve(qs);
  EXPECT_EQ(rs.waves, 16);

  // One 16-lane wave beats 16 back-to-back single-lane waves.
  EXPECT_LT(rb.total_ns, rs.total_ns);
  EXPECT_LT(rb.p99_latency_ns, rs.p99_latency_ns);
}

TEST(QueryEngineServe, SinkSeesEveryWaveAndLanesValidate) {
  const GraphBundle b = GraphBundle::make(10, 16, 8, 16);
  Experiment ex(b, shape(2, 2));
  std::map<graph::Vertex, graph::BfsTree> ref;
  int waves_seen = 0;
  std::size_t lanes_seen = 0;

  EngineConfig ec;
  ec.max_batch = 4;
  ec.sink = [&](std::span<const WaveQuery> wq, const WaveResult& wr,
                WaveState& state) {
    ++waves_seen;
    lanes_seen += wq.size();
    ASSERT_EQ(wr.lanes.size(), wq.size());
    for (std::size_t l = 0; l < wq.size(); ++l) {
      if (wq[l].kind != QueryKind::full_distances) continue;
      auto [it, inserted] = ref.try_emplace(wq[l].source);
      if (inserted) it->second = graph::reference_bfs(b.csr, wq[l].source);
      const auto dist =
          gather_lane_distances(ex.dist(), state, static_cast<int>(l));
      for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v) {
        if (it->second.reached(v))
          ASSERT_EQ(dist[v], it->second.depth[v]);
        else
          ASSERT_EQ(dist[v], kUnreached);
      }
    }
  };
  QueryEngine eng(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const auto qs = QueryEngine::generate(ex.dist(), spec_of(10, 2, 1e5));
  const EngineReport rep = eng.serve(qs);
  EXPECT_EQ(waves_seen, rep.waves);
  EXPECT_EQ(lanes_seen, 10u);
}

// ---------------------------------------------------------------------------
// Determinism and chaos
// ---------------------------------------------------------------------------

TEST(QueryEngineServe, SameSeedSameLatencyStats) {
  const GraphBundle b = GraphBundle::make(10, 16, 5, 16);
  Experiment ex(b, shape(2, 2));
  WorkloadSpec s = spec_of(20, 17, 3e5);
  s.st_fraction = 0.25;
  s.khop_fraction = 0.25;
  const auto qs = QueryEngine::generate(ex.dist(), s);

  EngineConfig ec;
  ec.max_batch = 8;
  QueryEngine e1(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const EngineReport r1 = e1.serve(qs);
  QueryEngine e2(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const EngineReport r2 = e2.serve(qs);

  EXPECT_EQ(r1.total_ns, r2.total_ns);
  EXPECT_EQ(r1.p50_latency_ns, r2.p50_latency_ns);
  EXPECT_EQ(r1.p95_latency_ns, r2.p95_latency_ns);
  EXPECT_EQ(r1.p99_latency_ns, r2.p99_latency_ns);
  for (std::size_t i = 0; i < r1.results.size(); ++i)
    EXPECT_EQ(r1.results[i].complete_ns, r2.results[i].complete_ns);
}

TEST(QueryEngineServe, SurvivesCrashesWithReproducibleLatencies) {
  const GraphBundle b = GraphBundle::make(10, 16, 7, 16);
  Experiment ex(b, shape(2, 2));
  const auto plan = faults::FaultPlan::parse("seed:2,crash:rank=2@level=1");
  ex.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
      plan, ex.cluster().nranks(), ex.cluster().ppn()));

  std::map<graph::Vertex, graph::BfsTree> ref;
  EngineConfig ec;
  ec.max_batch = 8;
  ec.sink = [&](std::span<const WaveQuery> wq, const WaveResult&,
                WaveState& state) {
    for (std::size_t l = 0; l < wq.size(); ++l) {
      if (wq[l].kind != QueryKind::full_distances) continue;
      auto [it, inserted] = ref.try_emplace(wq[l].source);
      if (inserted) it->second = graph::reference_bfs(b.csr, wq[l].source);
      const auto dist =
          gather_lane_distances(ex.dist(), state, static_cast<int>(l));
      for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v) {
        if (it->second.reached(v)) {
          ASSERT_EQ(dist[v], it->second.depth[v]);
        }
      }
    }
  };
  QueryEngine eng(ex.cluster(), ex.dist(), bfs::original(), ec);
  const auto qs = QueryEngine::generate(ex.dist(), spec_of(16, 13, 2e5));
  const EngineReport r1 = eng.serve(qs);
  EXPECT_EQ(r1.ranks_lost, 1);
  EXPECT_GE(r1.recoveries, 1);  // every wave re-injects the plan

  // Same plan + seed: the latency percentiles reproduce bit for bit.
  QueryEngine eng2(ex.cluster(), ex.dist(), bfs::original(), ec);
  const EngineReport r2 = eng2.serve(qs);
  EXPECT_EQ(r1.p50_latency_ns, r2.p50_latency_ns);
  EXPECT_EQ(r1.p95_latency_ns, r2.p95_latency_ns);
  EXPECT_EQ(r1.p99_latency_ns, r2.p99_latency_ns);
  EXPECT_EQ(r1.total_ns, r2.total_ns);

  // Chaos shows up as added latency, not as failed queries.
  ex.cluster().set_fault_injector(nullptr);
  QueryEngine clean(ex.cluster(), ex.dist(), bfs::original(), ec);
  const EngineReport rc = clean.serve(qs);
  EXPECT_LT(rc.total_ns, r1.total_ns);
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_EQ(rc.results[i].visited, r1.results[i].visited);
}

// ---------------------------------------------------------------------------
// Program workloads as first-class query kinds
// ---------------------------------------------------------------------------

WorkloadSpec mixed_spec(int n, std::uint64_t seed) {
  WorkloadSpec s = spec_of(n, seed, 2e5);
  s.st_fraction = 0.15;
  s.khop_fraction = 0.15;
  s.sssp_fraction = 0.15;
  s.pagerank_fraction = 0.1;
  s.components_fraction = 0.1;
  s.triangles_fraction = 0.1;
  return s;
}

TEST(Workload, GeneratesProgramKindsDeterministically) {
  const GraphBundle b = GraphBundle::make(10, 16, 2, 8);
  Experiment ex(b, shape(1, 2));
  const WorkloadSpec s = mixed_spec(96, 23);
  const auto a = QueryEngine::generate(ex.dist(), s);
  const auto c = QueryEngine::generate(ex.dist(), s);
  ASSERT_EQ(a.size(), 96u);

  int count[8] = {};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, c[i].kind);
    EXPECT_EQ(a[i].source, c[i].source);
    EXPECT_EQ(a[i].target, c[i].target);
    ++count[static_cast<int>(a[i].kind)];
    if (a[i].kind == QueryKind::sssp) {
      EXPECT_GT(b.csr.degree(a[i].source), 0u);
      EXPECT_GT(b.csr.degree(a[i].target), 0u);
    }
    if (a[i].kind == QueryKind::pagerank) {
      EXPECT_GT(b.csr.degree(a[i].source), 0u);
    }
  }
  for (QueryKind k : {QueryKind::sssp, QueryKind::pagerank,
                      QueryKind::components, QueryKind::triangles})
    EXPECT_GT(count[static_cast<int>(k)], 0) << to_string(k);

  WorkloadSpec bad = s;
  bad.sssp_fraction = 0.5;  // fractions now exceed 1
  EXPECT_THROW(QueryEngine::generate(ex.dist(), bad), std::invalid_argument);
}

TEST(QueryEngineServe, ProgramQueriesRunAsSingletonsWithExactValues) {
  const GraphBundle b = GraphBundle::make(10, 16, 6, 16);
  Experiment ex(b, shape(2, 2));
  EngineConfig ec;
  ec.max_batch = 8;
  int sink_calls = 0;
  ec.program_sink = [&](const Query& q, const ProgramResult& res,
                        ProgramState& ps) {
    ++sink_calls;
    EXPECT_TRUE(res.converged);
    if (q.kind == QueryKind::components) {
      // The sink can read full value arrays before the state is torn down.
      const auto labels = gather_values(ex.dist(), ps);
      const auto ref = graph::ref_components(b.csr);
      ASSERT_EQ(labels.size(), ref.size());
      for (std::size_t v = 0; v < ref.size(); ++v) EXPECT_EQ(labels[v], ref[v]);
    }
  };
  QueryEngine eng(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const auto qs = QueryEngine::generate(ex.dist(), mixed_spec(40, 19));
  const EngineReport rep = eng.serve(qs);

  int programs = 0;
  const auto comp_ref = graph::ref_components(b.csr);
  std::uint64_t ncomp = 0;
  for (std::size_t v = 0; v < comp_ref.size(); ++v) ncomp += comp_ref[v] == v;

  ASSERT_EQ(rep.results.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const QueryResult& r = rep.results[i];
    if (!is_program_kind(qs[i].kind)) {
      EXPECT_GE(r.wave, 0);
      continue;
    }
    ++programs;
    EXPECT_EQ(r.wave, -1);  // singleton dispatch, not a wave rider
    EXPECT_GT(r.complete_level, 0);
    EXPECT_GT(r.complete_ns, r.start_ns);
    switch (qs[i].kind) {
      case QueryKind::sssp: {
        const auto ref = graph::ref_sssp(
            b.csr, graph::EdgeWeights{ec.programs.weight_seed,
                                      ec.programs.sssp_max_weight},
            qs[i].source);
        ASSERT_NE(ref[qs[i].target], graph::kInfDist);
        EXPECT_EQ(r.value, static_cast<double>(ref[qs[i].target]));
        break;
      }
      case QueryKind::pagerank:
        EXPECT_GT(r.value, 0.0);  // rank >= teleport mass
        break;
      case QueryKind::components:
        EXPECT_EQ(r.value, static_cast<double>(ncomp));
        break;
      case QueryKind::triangles:
        EXPECT_EQ(r.value, static_cast<double>(graph::ref_triangles(b.csr)));
        break;
      default:
        FAIL();
    }
  }
  EXPECT_GT(programs, 0);
  EXPECT_EQ(rep.program_runs, programs);
  EXPECT_EQ(sink_calls, programs);
  // FIFO is preserved across the wave/program boundary: dispatch order
  // follows admission order.
  for (std::size_t i = 1; i < rep.results.size(); ++i)
    EXPECT_GE(rep.results[i].start_ns, rep.results[i - 1].start_ns)
        << "FIFO violated at query " << i;
}

TEST(QueryEngineServe, MixedProgramWorkloadSurvivesChaosReproducibly) {
  const GraphBundle b = GraphBundle::make(10, 16, 8, 16);
  Experiment ex(b, shape(2, 2));
  const auto plan =
      faults::FaultPlan::parse("seed:4,crash:rank=1@level=2,drop:prob=0.2");
  ex.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
      plan, ex.cluster().nranks(), ex.cluster().ppn()));

  EngineConfig ec;
  ec.max_batch = 8;
  QueryEngine e1(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const auto qs = QueryEngine::generate(ex.dist(), mixed_spec(24, 31));
  const EngineReport r1 = e1.serve(qs);
  EXPECT_GT(r1.program_runs, 0);
  EXPECT_EQ(r1.ranks_lost, 1);
  EXPECT_GE(r1.recoveries, 1);

  QueryEngine e2(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const EngineReport r2 = e2.serve(qs);
  EXPECT_EQ(r1.total_ns, r2.total_ns);
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(r1.results[i].complete_ns, r2.results[i].complete_ns);
    EXPECT_EQ(r1.results[i].value, r2.results[i].value);
  }

  // Chaos never changes answers, only timing: a clean serve of the same
  // workload produces identical program values.
  ex.cluster().set_fault_injector(nullptr);
  QueryEngine clean(ex.cluster(), ex.dist(), bfs::share_all(), ec);
  const EngineReport rc = clean.serve(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (is_program_kind(qs[i].kind)) {
      EXPECT_EQ(rc.results[i].value, r1.results[i].value);
    }
  }
}

}  // namespace
}  // namespace numabfs::engine
