// Direct unit tests of the per-level traversal kernels on tiny hand-built
// graphs: exact discovered sets, exact counters, ownership filtering.

#include <gtest/gtest.h>

#include "bfs/kernels.hpp"
#include "graph/csr.hpp"

namespace numabfs::bfs {
namespace {

/// Single-rank harness around one kernel call.
struct KernelRig {
  graph::Csr csr;
  graph::DistGraph dg;
  rt::Cluster cluster;
  DistState st;
  UnitCosts u{};  // zero unit costs: data behavior only

  KernelRig(std::uint64_t n, std::vector<graph::Edge> edges, int np = 1,
            Config cfg = {})
      : csr(graph::Csr::from_edges(n, edges)),
        dg(graph::DistGraph::build(csr, graph::Partition1D(n, np))),
        cluster(sim::Topology::single_socket(), sim::CostParams{}, 1),
        st(dg, cfg, 1, 1) {
    // Single-rank cluster regardless of np is fine only for np == 1.
    EXPECT_EQ(np, 1);
    u.omp_div = 1.0;
  }

  LevelResult run_td(rt::Proc& p, std::vector<graph::Vertex> frontier) {
    st.frontier(0) = std::move(frontier);
    return top_down_level(p, dg.locals[0], u, st);
  }
  LevelResult run_bu(rt::Proc& p) {
    return bottom_up_level(p, dg.locals[0], u, st);
  }
};

void spmd(KernelRig& rig, const std::function<void(rt::Proc&)>& fn) {
  rig.cluster.run(fn);
}

TEST(TopDownKernel, DiscoversExactlyTheChildren) {
  // Star: 0 - {1,2,3}; plus 4-5 elsewhere.
  KernelRig rig(6, {{0, 1}, {0, 2}, {0, 3}, {4, 5}});
  spmd(rig, [&](rt::Proc& p) {
    // Seed: vertex 0 visited.
    rig.st.visited(0).set(0);
    rig.st.pred(0)[0] = 0;
    const LevelResult r = rig.run_td(p, {0});
    EXPECT_EQ(r.discovered, 3u);
    const auto& d = rig.st.discovered(0);
    EXPECT_EQ(d, (std::vector<graph::Vertex>{1, 2, 3}));
    EXPECT_EQ(rig.st.pred(0)[1], 0u);
    EXPECT_EQ(rig.st.pred(0)[2], 0u);
    EXPECT_EQ(rig.st.pred(0)[3], 0u);
    EXPECT_EQ(rig.st.pred(0)[4], graph::kNoVertex);
    // Each child has degree 1, so 3 discovered edges.
    EXPECT_EQ(r.discovered_edges, 3u);
    // Counters: edges scanned = |adj(0)| = 3, all probes, 2 writes each.
    EXPECT_EQ(p.prof.counters().edges_scanned, 3u);
    EXPECT_EQ(p.prof.counters().queue_writes, 6u);
  });
}

TEST(TopDownKernel, SkipsVisitedAndForeignFrontier) {
  KernelRig rig(6, {{0, 1}, {0, 2}, {1, 2}});
  spmd(rig, [&](rt::Proc& p) {
    rig.st.visited(0).set(0);
    rig.st.visited(0).set(1);  // 1 already visited
    const LevelResult r = rig.run_td(p, {0, 5});  // 5 has no edges here
    EXPECT_EQ(r.discovered, 1u);  // only 2
    EXPECT_EQ(rig.st.discovered(0), (std::vector<graph::Vertex>{2}));
  });
}

TEST(TopDownKernel, EmptyFrontierFindsNothing) {
  KernelRig rig(4, {{0, 1}});
  spmd(rig, [&](rt::Proc& p) {
    const LevelResult r = rig.run_td(p, {});
    EXPECT_EQ(r.discovered, 0u);
    EXPECT_EQ(p.prof.counters().edges_scanned, 0u);
  });
}

TEST(BottomUpKernel, AdoptsFirstFrontierParentAndStops) {
  // 3 is adjacent to both 0 and 1 (both in frontier); bottom-up must adopt
  // the first hit and stop scanning ("searching for a parent instead of
  // fighting over children").
  KernelRig rig(4, {{3, 0}, {3, 1}, {2, 0}});
  spmd(rig, [&](rt::Proc& p) {
    auto in_q = rig.st.in_queue(0);
    auto in_s = rig.st.in_summary(0);
    in_q.set(0);
    in_q.set(1);
    in_s.mark(0);
    in_s.mark(1);
    rig.st.visited(0).set(0);
    rig.st.visited(0).set(1);
    const LevelResult r = rig.run_bu(p);
    EXPECT_EQ(r.discovered, 2u);  // 2 and 3
    EXPECT_NE(rig.st.pred(0)[3], graph::kNoVertex);
    EXPECT_EQ(rig.st.pred(0)[2], 0u);
    // 3's adjacency is {0,1}: the hit on the first neighbor prevents the
    // second in_queue probe.
    EXPECT_EQ(p.prof.counters().frontier_hits, 2u);
    // out bits were produced for the next exchange.
    EXPECT_TRUE(rig.st.out_queue(0).get(2));
    EXPECT_TRUE(rig.st.out_queue(0).get(3));
    EXPECT_TRUE(rig.st.out_summary(0).covers(2));
  });
}

TEST(BottomUpKernel, SummaryZeroSkipsAvoidInQueueProbes) {
  // Frontier bit present in in_queue but its summary says zero elsewhere:
  // vertices whose neighbors fall in zero blocks never probe in_queue.
  KernelRig rig(200, {{100, 0}, {101, 64}});
  spmd(rig, [&](rt::Proc& p) {
    auto in_q = rig.st.in_queue(0);
    auto in_s = rig.st.in_summary(0);
    in_q.set(0);
    in_s.mark(0);  // block [0,64) marked; block [64,128) NOT marked
    rig.st.visited(0).set(0);
    rig.st.visited(0).set(64);
    in_q.set(64);  // in_queue bit set, but summary block stays 0
    const LevelResult r = rig.run_bu(p);
    // 100 adopts 0 (summary covered); 101 must *miss* 64: its only
    // neighbor's summary block is zero, so the in_queue probe is skipped.
    EXPECT_EQ(r.discovered, 1u);
    EXPECT_EQ(rig.st.pred(0)[100], 0u);
    EXPECT_EQ(rig.st.pred(0)[101], graph::kNoVertex);
    EXPECT_GE(p.prof.counters().summary_zero_skips, 1u);
  });
}

TEST(BottomUpKernel, RecordsDiscoveredForSparseHandoff) {
  KernelRig rig(8, {{1, 0}, {2, 0}, {3, 1}});
  spmd(rig, [&](rt::Proc& p) {
    auto in_q = rig.st.in_queue(0);
    auto in_s = rig.st.in_summary(0);
    in_q.set(0);
    in_s.mark(0);
    rig.st.visited(0).set(0);
    rig.run_bu(p);
    EXPECT_EQ(rig.st.discovered(0), (std::vector<graph::Vertex>{1, 2}));
  });
}

TEST(BottomUpKernel, NothingToDoWhenAllVisited) {
  KernelRig rig(4, {{0, 1}, {1, 2}, {2, 3}});
  spmd(rig, [&](rt::Proc& p) {
    for (std::uint64_t v = 0; v < 4; ++v) rig.st.visited(0).set(v);
    const LevelResult r = rig.run_bu(p);
    EXPECT_EQ(r.discovered, 0u);
    EXPECT_EQ(p.prof.counters().edges_scanned, 0u);
  });
}

}  // namespace
}  // namespace numabfs::bfs
