#include "graph/bitmap.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace numabfs::graph {
namespace {

TEST(Bitmap, SetGetClear) {
  Bitmap bm(200);
  auto v = bm.view();
  EXPECT_FALSE(v.get(0));
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(199);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(199));
  EXPECT_FALSE(v.get(1));
  EXPECT_FALSE(v.get(128));
  v.clear(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 3u);
}

TEST(Bitmap, ResetZeroesEverything) {
  Bitmap bm(130);
  auto v = bm.view();
  for (std::uint64_t i = 0; i < 130; i += 7) v.set(i);
  EXPECT_GT(v.count(), 0u);
  v.reset();
  EXPECT_EQ(v.count(), 0u);
  EXPECT_FALSE(v.any());
}

TEST(Bitmap, CountRangeEdgeCases) {
  Bitmap bm(256);
  auto v = bm.view();
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(255);
  EXPECT_EQ(v.count_range(0, 0), 0u);
  EXPECT_EQ(v.count_range(0, 1), 1u);
  EXPECT_EQ(v.count_range(0, 64), 2u);
  EXPECT_EQ(v.count_range(63, 65), 2u);
  EXPECT_EQ(v.count_range(64, 256), 2u);
  EXPECT_EQ(v.count_range(255, 256), 1u);
  EXPECT_EQ(v.count(), 4u);
}

TEST(Bitmap, CountRangeMatchesNaive) {
  std::mt19937_64 rng(7);
  Bitmap bm(1000);
  auto v = bm.view();
  std::vector<bool> ref(1000, false);
  for (int i = 0; i < 300; ++i) {
    const auto b = rng() % 1000;
    v.set(b);
    ref[b] = true;
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t a = rng() % 1001, b = rng() % 1001;
    if (a > b) std::swap(a, b);
    std::uint64_t naive = 0;
    for (std::uint64_t i = a; i < b; ++i) naive += ref[i];
    EXPECT_EQ(v.count_range(a, b), naive) << "range [" << a << "," << b << ")";
  }
}

TEST(Bitmap, ForEachSetVisitsExactlySetBits) {
  Bitmap bm(300);
  auto v = bm.view();
  std::vector<std::uint64_t> want = {0, 1, 63, 64, 65, 127, 128, 250, 299};
  for (auto b : want) v.set(b);
  std::vector<std::uint64_t> got;
  v.for_each_set([&](std::uint64_t b) { got.push_back(b); });
  EXPECT_EQ(got, want);
}

TEST(Bitmap, ForEachSetSubrange) {
  Bitmap bm(300);
  auto v = bm.view();
  for (std::uint64_t b = 0; b < 300; b += 3) v.set(b);
  std::vector<std::uint64_t> got;
  v.for_each_set(64, 130, [&](std::uint64_t b) { got.push_back(b); });
  for (auto b : got) {
    EXPECT_GE(b, 64u);
    EXPECT_LT(b, 130u);
    EXPECT_EQ(b % 3, 0u);
  }
  std::uint64_t expect_count = 0;
  for (std::uint64_t b = 64; b < 130; ++b)
    if (b % 3 == 0) ++expect_count;
  EXPECT_EQ(got.size(), expect_count);
}

TEST(Bitmap, ForEachSetEmptyAndFull) {
  Bitmap bm(128);
  auto v = bm.view();
  int calls = 0;
  v.for_each_set([&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  for (std::uint64_t b = 0; b < 128; ++b) v.set(b);
  v.for_each_set([&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 128);
}

// --- copy_bits: fuzz against a naive bit-by-bit reference ----------------

void naive_or_copy(std::vector<bool>& dst, std::uint64_t dst_bit,
                   const std::vector<bool>& src, std::uint64_t src_bit,
                   std::uint64_t nbits) {
  for (std::uint64_t i = 0; i < nbits; ++i)
    if (src[src_bit + i]) dst[dst_bit + i] = true;
}

class CopyBitsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CopyBitsFuzz, MatchesNaiveReference) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  constexpr std::uint64_t kBits = 700;
  for (int trial = 0; trial < 50; ++trial) {
    Bitmap src_bm(kBits), dst_bm(kBits);
    auto src = src_bm.view();
    auto dst = dst_bm.view();
    std::vector<bool> src_ref(kBits, false), dst_ref(kBits, false);
    for (int i = 0; i < 200; ++i) {
      const auto b = rng() % kBits;
      src.set(b);
      src_ref[b] = true;
    }
    // Pre-existing destination bits must survive (OR semantics).
    for (int i = 0; i < 40; ++i) {
      const auto b = rng() % kBits;
      dst.set(b);
      dst_ref[b] = true;
    }
    const std::uint64_t nbits = rng() % 400;
    const std::uint64_t src_bit = rng() % (kBits - nbits + 1);
    const std::uint64_t dst_bit = rng() % (kBits - nbits + 1);
    const bool atomic = (rng() & 1) != 0;

    copy_bits(dst.words(), dst_bit, src.words(), src_bit, nbits, atomic);
    naive_or_copy(dst_ref, dst_bit, src_ref, src_bit, nbits);

    for (std::uint64_t b = 0; b < kBits; ++b)
      ASSERT_EQ(dst.get(b), dst_ref[b])
          << "bit " << b << " trial " << trial << " nbits=" << nbits
          << " src_bit=" << src_bit << " dst_bit=" << dst_bit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyBitsFuzz, ::testing::Range(1, 9));

TEST(CopyBits, ZeroLengthIsNoop) {
  Bitmap a(64), b(64);
  a.view().set(3);
  copy_bits(b.view().words(), 10, a.view().words(), 0, 0, false);
  EXPECT_EQ(b.view().count(), 0u);
}

TEST(CopyBits, WordAlignedBulk) {
  Bitmap a(256), b(256);
  for (std::uint64_t i = 0; i < 256; i += 2) a.view().set(i);
  copy_bits(b.view().words(), 64, a.view().words(), 64, 128, false);
  EXPECT_EQ(b.view().count_range(0, 64), 0u);
  EXPECT_EQ(b.view().count_range(64, 192), 64u);
  EXPECT_EQ(b.view().count_range(192, 256), 0u);
}

}  // namespace
}  // namespace numabfs::graph
