#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/coll_model.hpp"

namespace numabfs::rt::coll_model {
namespace {

Cluster make(int nodes, int ppn, sim::CostParams p = {}) {
  return Cluster(sim::Topology::xeon_x7550_cluster(nodes), p, ppn);
}

TEST(CollModel, Eq1VolumeLaw) {
  // Paper Eq. (1): total transmitted = m * (np - 1).
  EXPECT_EQ(allgather_volume_bytes(512, 8), 512u * 7);
  EXPECT_EQ(allgather_volume_bytes(512, 1), 0u);
  // Eq. (2): 8 subgroups each allgather m/8 over np/8 members:
  // 8 * (m/8) * (np/8 - 1) = m * (np/8 - 1) — same as one process per node
  // gathering node chunks.
  const std::uint64_t m = 1 << 20;
  const int np = 128;
  const std::uint64_t subgroups = 8 * allgather_volume_bytes(m / 8, np / 8);
  const std::uint64_t per_node = allgather_volume_bytes(m, np / 8);
  EXPECT_EQ(subgroups, per_node);
}

TEST(CollModel, FlatRingGrowsWithRanks) {
  const std::uint64_t chunk = 1 << 16;
  Cluster c2(make(2, 8));
  Cluster c4(make(4, 8));
  Cluster c8(make(8, 8));
  const double t2 = flat_ring(c2, chunk).total_ns;
  const double t4 = flat_ring(c4, chunk).total_ns;
  const double t8 = flat_ring(c8, chunk).total_ns;
  EXPECT_LT(t2, t4);
  EXPECT_LT(t4, t8);
}

TEST(CollModel, Ppn8FlatRingCostlierThanPpn1) {
  // The paper's Section II.D.2 point: one process per socket inflates the
  // collective cost (2.34x at 8 nodes in Fig. 12).
  const std::uint64_t total = 64ull << 20;  // total in_queue bytes
  Cluster c1(make(8, 1));
  Cluster c8(make(8, 8));
  const double t1 = flat_ring(c1, total / 8).total_ns;    // chunk = m/8
  const double t8 = flat_ring(c8, total / 64).total_ns;   // chunk = m/64
  EXPECT_GT(t8, 1.5 * t1);
  EXPECT_LT(t8, 4.0 * t1);
}

TEST(CollModel, LeaderIntraDominatesAtLargeMessages) {
  // Fig. 6: for 64/512 MB allgathers the gather+bcast (intra-node) time
  // exceeds the inter-node time.
  Cluster c(make(16, 8));
  for (std::uint64_t total : {64ull << 20, 512ull << 20}) {
    const std::uint64_t chunk = total / 128;
    const CollTimes t = leader_allgather(c, chunk, true, true, 1);
    EXPECT_GT(t.gather_ns + t.bcast_ns, t.inter_ns) << total;
    EXPECT_GT(t.bcast_ns, t.gather_ns);  // bcast moves np/ppn x more data
  }
}

TEST(CollModel, SharingEliminatesSteps) {
  Cluster c(make(16, 8));
  const std::uint64_t chunk = 4 << 20;
  const CollTimes full = leader_allgather(c, chunk, true, true, 1);
  const CollTimes no_bcast = leader_allgather(c, chunk, true, false, 1);
  const CollTimes neither = leader_allgather(c, chunk, false, false, 1);
  EXPECT_DOUBLE_EQ(no_bcast.bcast_ns, 0.0);
  EXPECT_DOUBLE_EQ(neither.gather_ns, 0.0);
  EXPECT_LT(no_bcast.total_ns, full.total_ns);
  EXPECT_LT(neither.total_ns, no_bcast.total_ns);
  // Dropping the broadcast saves the most: it carries np/ppn x the data.
  EXPECT_GT(full.total_ns - no_bcast.total_ns,
            no_bcast.total_ns - neither.total_ns);
}

TEST(CollModel, ParallelAllgatherBeatsSingleLeader) {
  // Fig. 7: eight concurrent subgroup rings use both IB ports.
  Cluster c(make(16, 8));
  const std::uint64_t chunk = 4 << 20;
  const CollTimes one = leader_allgather(c, chunk, false, false, 1);
  const CollTimes par = leader_allgather(c, chunk, false, false, 8);
  EXPECT_LT(par.inter_ns, one.inter_ns);
  EXPECT_GT(par.inter_ns, 0.3 * one.inter_ns);  // bounded by port peak
}

TEST(CollModel, NicSaturationCurveMatchesFig4) {
  // One flow ~ half of dual-port peak; eight flows ~ 90%.
  Cluster c(make(2, 8));
  const double peak = 2 * c.params().nic_port_bw;
  EXPECT_NEAR(c.link().nic_node_bw(1), 0.5 * peak, 1e-9);
  EXPECT_GT(c.link().nic_node_bw(8), 0.85 * peak);
  EXPECT_LT(c.link().nic_node_bw(8), peak);
  // Monotone in flows.
  for (int f = 1; f < 8; ++f)
    EXPECT_LT(c.link().nic_node_bw(f), c.link().nic_node_bw(f + 1));
}

TEST(CollModel, WeakNodeSlowsRing) {
  const std::uint64_t chunk = 1 << 20;
  Cluster ok(make(16, 8));
  Cluster weak(Cluster(
      sim::Topology::xeon_x7550_cluster(16).with_weak_node(15, 0.5),
      sim::CostParams{}, 8));
  EXPECT_GT(inter_ring_ns(weak, chunk, 1), inter_ring_ns(ok, chunk, 1));
}

TEST(CollModel, RecursiveDoublingSavesLatencyOnSmallMessages) {
  Cluster c(make(16, 8));
  const std::uint64_t small = 512;  // summary-sized
  EXPECT_LT(inter_recursive_doubling_ns(c, small, 1),
            inter_ring_ns(c, small, 1));
}

TEST(CollModel, SingleNodeHasNoInterTime) {
  Cluster c(make(1, 8));
  EXPECT_DOUBLE_EQ(inter_ring_ns(c, 1 << 20, 1), 0.0);
  const CollTimes t = leader_allgather(c, 1 << 16, false, false, 1);
  EXPECT_DOUBLE_EQ(t.total_ns, 0.0);
}

TEST(CollModel, AllreduceScalesLogarithmically) {
  Cluster c(make(16, 8));
  const double t2 = allreduce_scalar_ns(c, 2);
  const double t128 = allreduce_scalar_ns(c, 128);
  EXPECT_NEAR(t128 / t2, 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(allreduce_scalar_ns(c, 1), 0.0);
}

// ---------------------------------------------------------------------------
// Hierarchical subgroup collectives (the 2-D grid's column/row primitives)
// ---------------------------------------------------------------------------

TEST(HierColl, DegenerateSubgroupIsFree) {
  Cluster c(make(4, 4));
  for (HierLevel h : {HierLevel::flat, HierLevel::node, HierLevel::socket}) {
    // One member total: nothing to exchange.
    EXPECT_DOUBLE_EQ(
        hier_subgroup_allgather(c, 1, 1, 4, 1 << 16, h).total_ns, 0.0);
    EXPECT_DOUBLE_EQ(hier_alltoallv_ns(c, 1, 1, 0, 0, h), 0.0);
  }
}

TEST(HierColl, NodeAwareBeatsFlatForManySmallMessages) {
  // The hierarchy's whole point: R small per-member messages collapse into
  // one staged message per node, trading ~R alpha charges for one memcpy.
  // Only visible at a physical per-message latency (the paper-scaled params
  // shrink alpha until bandwidth dominates).
  Cluster c(make(16, 8));
  const std::uint64_t small = 512;  // a col-band piece at modest scale
  // A column of an R x C grid: one member per node, ppn sibling columns.
  const double flat =
      hier_subgroup_allgather(c, 16, 1, 8, small, HierLevel::flat).total_ns;
  const double node =
      hier_subgroup_allgather(c, 16, 1, 8, small, HierLevel::node).total_ns;
  EXPECT_LT(node, flat);
}

TEST(HierColl, SocketSkipsTheCicoFactorOfNodeStaging) {
  // socket = node-aware staging without the copy-in/copy-out factor, so it
  // can never cost more than node at the same shape.
  Cluster c(make(8, 8));
  for (std::uint64_t b : {std::uint64_t{512}, std::uint64_t{1} << 16,
                          std::uint64_t{1} << 20}) {
    const double node =
        hier_subgroup_allgather(c, 2, 8, 1, b, HierLevel::node).total_ns;
    const double socket =
        hier_subgroup_allgather(c, 2, 8, 1, b, HierLevel::socket).total_ns;
    EXPECT_LE(socket, node) << b;
    EXPECT_GT(socket, 0.0) << b;
  }
}

TEST(HierColl, MonotoneInBytesAndSpan) {
  Cluster c(make(16, 8));
  for (HierLevel h : {HierLevel::flat, HierLevel::node}) {
    EXPECT_LT(hier_subgroup_allgather(c, 8, 1, 8, 1 << 12, h).total_ns,
              hier_subgroup_allgather(c, 8, 1, 8, 1 << 16, h).total_ns);
    EXPECT_LT(hier_subgroup_allgather(c, 4, 1, 8, 1 << 14, h).total_ns,
              hier_subgroup_allgather(c, 16, 1, 8, 1 << 14, h).total_ns);
  }
}

TEST(HierColl, RecursiveDoublingHelpsWideColumns) {
  // rd replaces the (span-1)-step ring with log2(span) exchange rounds;
  // for small messages over many nodes the latency saving dominates.
  Cluster c(make(16, 8));
  const std::uint64_t small = 512;
  const double ring =
      hier_subgroup_allgather(c, 16, 1, 8, small, HierLevel::node, false)
          .total_ns;
  const double rd =
      hier_subgroup_allgather(c, 16, 1, 8, small, HierLevel::node, true)
          .total_ns;
  EXPECT_LT(rd, ring);
}

TEST(HierColl, AlltoallvLeadersCutInjectionSerialization) {
  // A row exchange with ppn members per node: flat injects per_node^2
  // messages per peer node step; leaders inject one. At small payloads the
  // alpha term decides it.
  Cluster c(make(8, 8));
  const std::uint64_t bytes = 8 << 10;
  const double flat =
      hier_alltoallv_ns(c, 4, 8, bytes, 3 * bytes, HierLevel::flat);
  const double node =
      hier_alltoallv_ns(c, 4, 8, bytes, 3 * bytes, HierLevel::node);
  EXPECT_LT(node, flat);
  // More inter-node volume costs more, whatever the level.
  EXPECT_LT(hier_alltoallv_ns(c, 4, 8, bytes, bytes, HierLevel::node),
            hier_alltoallv_ns(c, 4, 8, bytes, 8 * bytes, HierLevel::node));
}

TEST(HierColl, Pipelined2Bounds) {
  // Two-stage K-chunk pipeline: never better than max(a,b) + max(a,b)/K,
  // never worse than a + b, and exact at the endpoints.
  const double a = 900.0, b = 400.0;
  EXPECT_DOUBLE_EQ(pipelined2_ns(a, b, 1), a + b);
  for (int k = 2; k <= 8; k *= 2) {
    const double t = pipelined2_ns(a, b, k);
    EXPECT_LT(t, a + b);
    EXPECT_GE(t, std::max(a, b));
  }
}

}  // namespace
}  // namespace numabfs::rt::coll_model

namespace numabfs::rt::coll_model {
namespace {

TEST(CollModel, PerfectOverlapCannotBeatSharing) {
  // Section III.A: the intra-node steps alone exceed the inter-node step
  // at the paper's message sizes, so max(intra, inter) >= sharing's inter.
  Cluster c(Cluster(sim::Topology::xeon_x7550_cluster(16), sim::CostParams{}, 8));
  for (std::uint64_t total : {64ull << 20, 512ull << 20}) {
    const std::uint64_t chunk = total / 128;
    const CollTimes over = leader_allgather_overlapped(c, chunk);
    const CollTimes shared = leader_allgather(c, chunk, false, false, 1);
    const CollTimes full = leader_allgather(c, chunk, true, true, 1);
    EXPECT_LT(over.total_ns, full.total_ns);     // overlap does help...
    EXPECT_GT(over.total_ns, shared.total_ns);   // ...but sharing wins
    // And the overlapped bound equals the intra side (intra dominates).
    EXPECT_DOUBLE_EQ(over.total_ns, over.gather_ns + over.bcast_ns);
  }
}

}  // namespace
}  // namespace numabfs::rt::coll_model
