/// \file test_fault_tolerance.cpp
/// Integration tests of chaos mode: the runtime survives injected faults
/// (drops, corruption, silence, crashes) and stays bit-deterministic —
/// the same plan and seed reproduce the exact same virtual-time history.
///
/// Cluster::run aborts the process on an escaping exception, so every
/// expected throw here is caught *inside* the rank lambda.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "faults/errors.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"
#include "runtime/allgather.hpp"
#include "runtime/cluster.hpp"
#include "runtime/p2p.hpp"

namespace numabfs {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;
using rt::Cluster;
using rt::PostOffice;
using rt::Proc;

sim::Topology topo(int nodes) {
  return sim::Topology::xeon_x7550_cluster(nodes);
}

std::shared_ptr<FaultInjector> injector(const Cluster& c,
                                        const std::string& spec) {
  return std::make_shared<FaultInjector>(FaultPlan::parse(spec), c.nranks(),
                                         c.ppn());
}

// ---------------------------------------------------------------------------
// Point-to-point under faults
// ---------------------------------------------------------------------------

/// Rank 0 streams `msgs` inter-node messages to rank 1; returns the sender's
/// final virtual time. Payloads are verified word-for-word at the receiver.
double stream_messages(Cluster& c, int msgs) {
  PostOffice po(c.nranks());
  double sender_ns = 0;
  c.run([&](Proc& p) {
    for (int m = 0; m < msgs; ++m) {
      std::vector<std::uint64_t> payload(256);
      for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint64_t>(m) * 1000 + i;
      if (p.rank == 0) {
        po.send(p, 1, payload, sim::Phase::other);
      } else if (p.rank == 1) {
        const auto got = po.recv(p, 0, sim::Phase::other);
        ASSERT_EQ(got, payload) << "message " << m << " damaged in transit";
      }
    }
    if (p.rank == 0) sender_ns = p.clock.now_ns();
  });
  return sender_ns;
}

TEST(P2pFault, RetransmitThroughDropsDeliversIntact) {
  Cluster c(topo(2), sim::CostParams{}, 1);  // ranks 0/1 on different nodes
  const double clean = stream_messages(c, 30);

  c.set_fault_injector(injector(c, "seed:5,drop:prob=0.4"));
  const double faulty1 = stream_messages(c, 30);
  const double faulty2 = stream_messages(c, 30);

  // Every payload arrived intact (asserted inside), drops cost the sender
  // retransmit timeouts, and the whole history is seed-deterministic.
  EXPECT_GT(faulty1, clean);
  EXPECT_EQ(faulty1, faulty2);
}

TEST(P2pFault, CorruptionIsDetectedAndRetransmitted) {
  Cluster c(topo(2), sim::CostParams{}, 1);
  const double clean = stream_messages(c, 30);

  c.set_fault_injector(injector(c, "seed:7,corrupt:prob=0.5"));
  const double faulty1 = stream_messages(c, 30);
  const double faulty2 = stream_messages(c, 30);

  // Corrupted copies are discarded by the receiver's checksum and resent;
  // the sender pays the NACK round trips.
  EXPECT_GT(faulty1, clean);
  EXPECT_EQ(faulty1, faulty2);
}

TEST(P2pFault, SeedChangesTheFaultHistory) {
  Cluster c(topo(2), sim::CostParams{}, 1);
  c.set_fault_injector(injector(c, "seed:5,drop:prob=0.4"));
  const double a = stream_messages(c, 30);
  c.set_fault_injector(injector(c, "seed:6,drop:prob=0.4"));
  const double b = stream_messages(c, 30);
  EXPECT_NE(a, b);
}

TEST(P2pFault, RecvFromDeadSenderThrowsInsteadOfDeadlocking) {
  Cluster c(topo(2), sim::CostParams{}, 1);
  auto inj = injector(c, "seed:1");
  c.set_fault_injector(inj);
  bool threw = false;
  PostOffice po(c.nranks());
  c.run([&](Proc& p) {
    if (p.rank == 0) {
      inj->mark_dead(0);  // crash without sending anything
      return;
    }
    if (p.rank != 1) return;
    try {
      (void)po.recv(p, 0, sim::Phase::other);  // default: infinite timeout
    } catch (const faults::TimeoutError&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST(P2pFault, FiniteTimeoutChargesExactlyTheTimeout) {
  Cluster c(topo(2), sim::CostParams{}, 1);
  const double timeout_ns = 1.25e6;
  bool threw = false;
  double after_ns = -1;
  PostOffice po(c.nranks());
  c.run([&](Proc& p) {
    if (p.rank != 1) return;  // rank 0 stays silent
    try {
      (void)po.recv(p, 0, sim::Phase::other, timeout_ns,
                    /*host_grace_ms=*/50);
    } catch (const faults::TimeoutError&) {
      threw = true;
      after_ns = p.clock.now_ns();
    }
  });
  EXPECT_TRUE(threw);
  // Exactly timeout_ns in virtual time, regardless of host scheduling.
  EXPECT_DOUBLE_EQ(after_ns, timeout_ns);
}

// ---------------------------------------------------------------------------
// Collectives under faults
// ---------------------------------------------------------------------------

/// World allgather of rank-tagged chunks; verifies the gathered data and
/// returns the max rank clock (the collective completion time).
double chaos_allgather(Cluster& c) {
  constexpr size_t kWords = 512;
  const size_t n = static_cast<size_t>(c.nranks());
  double max_ns = 0;
  std::vector<double> clocks(n, 0);
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> chunk(kWords);
    for (size_t i = 0; i < kWords; ++i)
      chunk[i] = static_cast<std::uint64_t>(p.rank) * 100000 + i;
    std::vector<std::uint64_t> dst(n * kWords);
    rt::allgather(p, c.world(), chunk, dst, rt::AllgatherAlgo::flat_ring,
                  sim::Phase::other);
    for (size_t r = 0; r < n; ++r)
      for (size_t i = 0; i < kWords; ++i)
        ASSERT_EQ(dst[r * kWords + i], r * 100000 + i)
            << "rank " << p.rank << " got damaged chunk from rank " << r;
    clocks[static_cast<size_t>(p.rank)] = p.clock.now_ns();
  });
  for (double t : clocks) max_ns = std::max(max_ns, t);
  return max_ns;
}

TEST(AllgatherFault, DropsAndCorruptionAddTimeButDataSurvives) {
  Cluster c(topo(2), sim::CostParams{}, 2);
  const double clean = chaos_allgather(c);

  c.set_fault_injector(injector(c, "seed:9,drop:prob=0.2,corrupt:prob=0.2"));
  const double faulty1 = chaos_allgather(c);
  const double faulty2 = chaos_allgather(c);

  EXPECT_GT(faulty1, clean);
  EXPECT_EQ(faulty1, faulty2);
}

TEST(AllgatherFault, LinkDegradationStretchesInterNodeTime) {
  Cluster c(topo(2), sim::CostParams{}, 2);
  const double clean = chaos_allgather(c);
  c.set_fault_injector(injector(c, "seed:3,degrade:node=1@factor=0.25"));
  const double degraded = chaos_allgather(c);
  EXPECT_GT(degraded, clean);
}

// ---------------------------------------------------------------------------
// End-to-end BFS survival
// ---------------------------------------------------------------------------

void expect_valid_run(Experiment& e, const bfs::Config& cfg,
                      bfs::BfsRunResult* out = nullptr) {
  const GraphBundle& b = e.bundle();
  const graph::Vertex root = b.roots[0];
  const auto [res, parent] = e.run_validated(cfg, root);
  const auto v = graph::validate_bfs_tree(b.csr, root, parent);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(res.visited, v.visited);
  EXPECT_EQ(res.traversed_directed_edges, v.directed_edges_in_component);
  if (out != nullptr) *out = res;
}

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  return o;
}

TEST(ChaosBfs, CrashRecoveryValidatesOnScale16) {
  // The acceptance scenario: rank 3 dies entering level 2 of a scale-16
  // R-MAT traversal on 4x4 ranks; the survivors adopt its partition, roll
  // back to the level checkpoint, and the tree still validates.
  const GraphBundle b = GraphBundle::make(16, 16, 20120924, 4);
  Experiment e(b, shape(4, 4));
  e.cluster().set_fault_injector(
      injector(e.cluster(), "seed:42,crash:rank=3@level=2"));

  bfs::BfsRunResult r1, r2;
  expect_valid_run(e, bfs::share_all(), &r1);
  EXPECT_EQ(r1.ranks_lost, 1);
  EXPECT_GE(r1.recoveries, 1);

  // Same plan, same seed: the replay is bit-identical in virtual time.
  expect_valid_run(e, bfs::share_all(), &r2);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  EXPECT_EQ(r1.recoveries, r2.recoveries);

  // The loss is not free: recovery re-runs a level and pays checkpoints.
  e.cluster().set_fault_injector(nullptr);
  bfs::BfsRunResult clean;
  expect_valid_run(e, bfs::share_all(), &clean);
  EXPECT_GT(r1.time_ns, clean.time_ns);
  EXPECT_EQ(clean.ranks_lost, 0);
  EXPECT_EQ(clean.recoveries, 0);
}

TEST(ChaosBfs, RecorderCrashHandsBookkeepingOver) {
  // Rank 0 is the default recorder and node-0 leader; killing it exercises
  // the lowest-live re-election on both roles.
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 2));
  e.cluster().set_fault_injector(
      injector(e.cluster(), "seed:11,crash:rank=0@level=1"));
  bfs::BfsRunResult r;
  expect_valid_run(e, bfs::original(), &r);
  EXPECT_EQ(r.ranks_lost, 1);
  EXPECT_GE(r.recoveries, 1);
}

TEST(ChaosBfs, ParallelAllgatherDegradesGracefullyUnderCrash) {
  // The parallel-subgroup exchange needs every color present; after a crash
  // it must fall back to the leader-based plan and still validate.
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 2));
  e.cluster().set_fault_injector(
      injector(e.cluster(), "seed:13,crash:rank=2@level=2"));
  bfs::BfsRunResult r;
  expect_valid_run(e, bfs::par_allgather(), &r);
  EXPECT_EQ(r.ranks_lost, 1);
}

TEST(ChaosBfs, CrashWithCheckpointingOffIsRejectedUpFront) {
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 2));
  e.cluster().set_fault_injector(
      injector(e.cluster(), "crash:rank=1@level=1,checkpoint:off"));
  EXPECT_THROW(e.run_validated(bfs::original(), b.roots[0]),
               faults::FaultError);
}

TEST(ChaosBfs, FullChaosStaysDeterministicAndValid) {
  // Everything except a crash at once: drops, corruption, a straggler and a
  // flapping link. The traversal is slower but valid, and two runs agree to
  // the bit.
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 2));
  bfs::BfsRunResult clean;
  expect_valid_run(e, bfs::share_all(), &clean);

  e.cluster().set_fault_injector(injector(
      e.cluster(),
      "seed:21,drop:prob=0.05,corrupt:prob=0.02,straggle:rank=1@factor=2,"
      "flap:node=0@factor=0.3@period=2e6@duty=0.5"));
  bfs::BfsRunResult r1, r2;
  expect_valid_run(e, bfs::share_all(), &r1);
  expect_valid_run(e, bfs::share_all(), &r2);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  EXPECT_GT(r1.time_ns, clean.time_ns);
  EXPECT_EQ(r1.ranks_lost, 0);
}

}  // namespace
}  // namespace numabfs
