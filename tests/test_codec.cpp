/// \file test_codec.cpp
/// The frontier-exchange codecs (graph/codec) and their integration into
/// the BFS / MS-BFS exchanges: bit-exact round trips across the density
/// range, the raw-fallback size bounds, summary-guided encoding identity,
/// malformed-input rejection, and end-to-end equivalence — every codec
/// mode must produce the same BFS tree (and the same virtual time twice in
/// a row) as the codec-off path it replaces.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "engine/msbfs.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/codec.hpp"
#include "graph/summary.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"

namespace numabfs::graph::codec {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  return o;
}

std::vector<std::uint64_t> random_words(std::size_t n, double density,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(density);
  std::vector<std::uint64_t> w(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (int b = 0; b < 64; ++b)
      if (bit(rng)) w[i] |= 1ull << b;
  return w;
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

TEST(Varint, RoundTripAndLength) {
  const std::uint64_t vals[] = {0,
                                1,
                                127,
                                128,
                                300,
                                16383,
                                16384,
                                1ull << 20,
                                (1ull << 32) - 1,
                                1ull << 32,
                                std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : vals) {
    const std::size_t base = buf.size();
    put_varint(buf, v);
    EXPECT_EQ(buf.size() - base, varint_len(v)) << v;
  }
  std::size_t pos = 0;
  for (std::uint64_t v : vals) {
    std::uint64_t got = 0;
    pos = get_varint({buf.data(), buf.size()}, pos, got);
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedInputThrows) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::uint64_t v = 0;
  EXPECT_THROW(get_varint({buf.data(), buf.size()}, 0, v),
               std::invalid_argument);
}

TEST(Varint, TenthByteOverflowThrows) {
  // 9 continuation bytes consume 63 payload bits; the 10th byte may carry
  // exactly one more. Any larger value would shift bits past 2^64 — the
  // unsigned shift silently discards them, so the decoder must reject the
  // stream instead of rounding the value.
  std::vector<std::uint8_t> buf(9, 0xFF);
  buf.push_back(0x01);  // ...valid: this is UINT64_MAX
  std::uint64_t v = 0;
  EXPECT_EQ(get_varint({buf.data(), buf.size()}, 0, v), 10u);
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
  buf.back() = 0x02;  // one bit past 2^64
  EXPECT_THROW(get_varint({buf.data(), buf.size()}, 0, v),
               std::invalid_argument);
  buf.back() = 0x81;  // an 11th byte is never valid
  buf.push_back(0x00);
  EXPECT_THROW(get_varint({buf.data(), buf.size()}, 0, v),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Bitmap codecs: edge cases
// ---------------------------------------------------------------------------

TEST(BitmapCodec, EmptyBitmapEncodesTiny) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{1000}}) {
    const std::vector<std::uint64_t> zero(n, 0);
    std::vector<std::uint8_t> enc;
    const std::size_t nb = encode_dense({zero.data(), zero.size()}, enc);
    EXPECT_LE(nb, 4u) << n << " words of zeros should be a header + one run";
    std::vector<std::uint64_t> out(n, 0xDEADBEEFull);
    EXPECT_EQ(decode_bitmap({enc.data(), enc.size()}, {out.data(), out.size()}),
              nb);
    EXPECT_EQ(out, zero);
  }
}

TEST(BitmapCodec, FullBitmapBoundedByRawPlusHeader) {
  // Density 1.0 is the RLE worst case: no zero runs, every byte nonzero.
  // The embedded raw fallback must cap the encoding at raw + 1 mode byte.
  for (const std::size_t n : {std::size_t{1}, std::size_t{64},
                              std::size_t{1000}}) {
    const std::vector<std::uint64_t> full(n, ~0ull);
    std::vector<std::uint8_t> enc;
    const std::size_t nb = encode_dense({full.data(), full.size()}, enc);
    EXPECT_LE(nb, n * 8 + 1);
    std::vector<std::uint64_t> out(n, 0);
    decode_bitmap({enc.data(), enc.size()}, {out.data(), out.size()});
    EXPECT_EQ(out, full);

    std::vector<std::uint8_t> senc;
    const std::size_t snb =
        encode_bitmap_sparse({full.data(), full.size()}, senc);
    EXPECT_LE(snb, n * 8 + 1);
    std::vector<std::uint64_t> sout(n, 0);
    decode_bitmap({senc.data(), senc.size()}, {sout.data(), sout.size()});
    EXPECT_EQ(sout, full);
  }
}

TEST(BitmapCodec, SingleWordBlock) {
  // A 1-word block (the 1-vertex-block degenerate partition) in all three
  // interesting states: empty, one bit, full.
  for (const std::uint64_t w : {0ull, 1ull << 17, ~0ull}) {
    const std::vector<std::uint64_t> in = {w};
    for (const bool sparse : {false, true}) {
      std::vector<std::uint8_t> enc;
      const std::size_t nb =
          sparse ? encode_bitmap_sparse({in.data(), 1}, enc)
                 : encode_dense({in.data(), 1}, enc);
      EXPECT_LE(nb, 9u);
      std::vector<std::uint64_t> out = {0x1234ull};
      decode_bitmap({enc.data(), enc.size()}, {out.data(), 1});
      EXPECT_EQ(out[0], w) << "sparse=" << sparse;
    }
  }
}

TEST(BitmapCodec, RoundTripFuzzAcrossDensities) {
  const double densities[] = {0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5};
  const std::size_t sizes[] = {1, 3, 7, 64, 1000};
  std::uint64_t seed = 20120924;
  for (const double d : densities) {
    for (const std::size_t n : sizes) {
      const auto in = random_words(n, d, seed++);
      for (const bool sparse : {false, true}) {
        std::vector<std::uint8_t> enc = {0xAB};  // nonempty: appends, not overwrites
        const std::size_t nb =
            sparse ? encode_bitmap_sparse({in.data(), in.size()}, enc)
                   : encode_dense({in.data(), in.size()}, enc);
        ASSERT_EQ(enc.size(), 1 + nb);
        ASSERT_LE(nb, n * 8 + 1) << "d=" << d << " n=" << n;
        std::vector<std::uint64_t> out(n, ~0ull);
        const std::size_t used = decode_bitmap(
            {enc.data() + 1, enc.size() - 1}, {out.data(), out.size()});
        EXPECT_EQ(used, nb);
        ASSERT_EQ(out, in) << "sparse=" << sparse << " d=" << d << " n=" << n;
      }
    }
  }
}

TEST(BitmapCodec, SparseBeatsRawAtLowDensity) {
  const auto in = random_words(1000, 0.001, 7);
  std::vector<std::uint8_t> enc;
  const std::size_t nb = encode_bitmap_sparse({in.data(), in.size()}, enc);
  EXPECT_LT(nb, 1000 * 8 / 10) << "0.1% density should compress >10x";
  std::vector<std::uint8_t> denc;
  const std::size_t dnb = encode_dense({in.data(), in.size()}, denc);
  EXPECT_LT(dnb, 1000 * 8 / 2);
}

TEST(BitmapCodec, GuidedEncodingIsIdentical) {
  // A summary guide only changes how the encoder *finds* zero words, never
  // the bytes it emits — with a correct summary the output is bit-identical.
  const std::uint64_t g = 256;
  const std::size_t n = 512;  // 32768 bits
  auto in = random_words(n, 0.002, 99);
  Bitmap src_bits(n * 64);
  for (std::size_t i = 0; i < n; ++i) src_bits.view().words()[i] = in[i];
  Summary summary(n * 64, g);
  SummaryView sv = summary.view();
  sv.rebuild_range(src_bits.view(), 0, n * 64);

  std::vector<std::uint8_t> plain, guided;
  const std::size_t a = encode_dense({in.data(), n}, plain);
  const std::size_t b = encode_dense({in.data(), n}, guided, &sv, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(plain, guided);

  // Offset chunk: the second half of the words sits at base bit n*32.
  std::vector<std::uint8_t> half_plain, half_guided;
  const std::size_t ha = encode_dense({in.data() + n / 2, n / 2}, half_plain);
  const std::size_t hb = encode_dense({in.data() + n / 2, n / 2}, half_guided,
                                      &sv, (n / 2) * 64);
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(half_plain, half_guided);
}

TEST(BitmapCodec, MalformedInputThrows) {
  std::vector<std::uint64_t> out(4, 0);
  const std::vector<std::uint8_t> bad_mode = {0x7F};
  EXPECT_THROW(
      decode_bitmap({bad_mode.data(), bad_mode.size()}, {out.data(), 4}),
      std::invalid_argument);
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(decode_bitmap({empty.data(), 0}, {out.data(), 4}),
               std::invalid_argument);
  // Truncated raw mode: mode byte 0 promises 4 words but carries 3 bytes.
  const std::vector<std::uint8_t> short_raw = {0, 1, 2, 3};
  EXPECT_THROW(
      decode_bitmap({short_raw.data(), short_raw.size()}, {out.data(), 4}),
      std::invalid_argument);
}

TEST(BitmapCodec, PositionsDeltaOverflowThrows) {
  // kModePositions with a delta that wraps cur past 2^64: without the
  // overflow guard, 10 + (2^64 - 5) wraps to 5, sails under the range
  // check, and silently sets the wrong bit.
  std::vector<std::uint8_t> enc = {2};  // kModePositions
  put_varint(enc, 2);                   // two set bits
  put_varint(enc, 10);                  // first position
  put_varint(enc, ~std::uint64_t{4});   // delta 2^64 - 5: wraps to bit 5
  std::vector<std::uint64_t> out(4, 0);
  EXPECT_THROW(decode_bitmap({enc.data(), enc.size()}, {out.data(), 4}),
               std::invalid_argument);
}

TEST(BitmapCodec, EmptyLiteralRunThrows) {
  // A valid token stream never emits lrun == 0 (the zero run ended on a
  // nonzero word); crafted zrun=0/lrun=0 pairs would otherwise spin over
  // the input without filling any output words.
  std::vector<std::uint8_t> enc = {1};  // kModeTokens
  put_varint(enc, 0);                   // zrun 0
  put_varint(enc, 0);                   // lrun 0: corruption
  put_varint(enc, 0);
  put_varint(enc, 0);
  std::vector<std::uint64_t> out(4, 0);
  EXPECT_THROW(decode_bitmap({enc.data(), enc.size()}, {out.data(), 4}),
               std::invalid_argument);
}

TEST(BitmapCodec, EveryTruncationThrows) {
  // A canonical encoding is consumed exactly (RoundTripFuzz pins used ==
  // nb), so every strict prefix must fail to fill the output words and
  // throw — never return a half-filled bitmap as success.
  for (const double d : {0.002, 0.05, 0.5}) {
    const auto in = random_words(64, d, 31 + static_cast<std::uint64_t>(d * 1000));
    for (const bool sparse : {false, true}) {
      std::vector<std::uint8_t> enc;
      const std::size_t nb = sparse
                                 ? encode_bitmap_sparse({in.data(), 64}, enc)
                                 : encode_dense({in.data(), 64}, enc);
      for (std::size_t cut = 0; cut < nb; ++cut) {
        std::vector<std::uint64_t> out(64, 0);
        EXPECT_THROW(decode_bitmap({enc.data(), cut}, {out.data(), 64}),
                     std::invalid_argument)
            << "sparse=" << sparse << " d=" << d << " cut=" << cut;
      }
    }
  }
}

TEST(BitmapCodec, OverLongStreamReportsExactConsumption) {
  // Trailing garbage after a valid encoding must not be read: the decoder
  // reports exactly the bytes it consumed so the exchange layer can treat
  // `used != published size` as a hard framing error (corruption that the
  // checksummed-retransmit path has to see, not silently accept).
  const auto in = random_words(64, 0.01, 77);
  for (const bool sparse : {false, true}) {
    std::vector<std::uint8_t> enc;
    const std::size_t nb = sparse ? encode_bitmap_sparse({in.data(), 64}, enc)
                                  : encode_dense({in.data(), 64}, enc);
    enc.insert(enc.end(), {0xDE, 0xAD, 0xBE, 0xEF});
    std::vector<std::uint64_t> out(64, ~0ull);
    EXPECT_EQ(decode_bitmap({enc.data(), enc.size()}, {out.data(), 64}), nb);
    EXPECT_EQ(out, in);
  }
}

TEST(BitmapCodec, ByteFlipFuzzNeverOverreadsOrHangs) {
  // Flip every byte of valid encodings through a few XOR masks: the
  // decoder must either throw std::invalid_argument or consume at most the
  // buffer — corrupted streams must never crash, over-read, or spin.
  for (const double d : {0.002, 0.05, 0.5}) {
    const auto in = random_words(32, d, 123 + static_cast<std::uint64_t>(d * 1e4));
    for (const bool sparse : {false, true}) {
      std::vector<std::uint8_t> enc;
      const std::size_t nb = sparse ? encode_bitmap_sparse({in.data(), 32}, enc)
                                    : encode_dense({in.data(), 32}, enc);
      for (std::size_t i = 0; i < nb; ++i) {
        for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
          std::vector<std::uint8_t> bad(enc.begin(), enc.begin() + nb);
          bad[i] ^= mask;
          std::vector<std::uint64_t> out(32, 0);
          try {
            const std::size_t used =
                decode_bitmap({bad.data(), bad.size()}, {out.data(), 32});
            EXPECT_LE(used, bad.size());
          } catch (const std::invalid_argument&) {
            // rejection is the expected outcome for most flips
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Vertex-list codec
// ---------------------------------------------------------------------------

TEST(ListCodec, EmptyList) {
  std::vector<std::uint8_t> enc;
  const std::size_t nb = encode_list({}, enc);
  EXPECT_LE(nb, kListHeaderMax);
  std::vector<Vertex> out;
  EXPECT_EQ(decode_list({enc.data(), enc.size()}, out), nb);
  EXPECT_TRUE(out.empty());
}

TEST(ListCodec, SortedListCompressesAndRoundTrips) {
  std::vector<Vertex> list;
  for (Vertex v = 3; v < 40000; v += 7) list.push_back(v);
  std::vector<std::uint8_t> enc;
  const std::size_t nb = encode_list({list.data(), list.size()}, enc);
  EXPECT_LT(nb, list.size() * 2) << "gap-7 ascending list should be ~1 B/entry";
  std::vector<Vertex> out = {42};  // decode appends
  decode_list({enc.data(), enc.size()}, out);
  ASSERT_EQ(out.size(), list.size() + 1);
  EXPECT_EQ(out[0], 42u);
  EXPECT_TRUE(std::equal(list.begin(), list.end(), out.begin() + 1));
}

TEST(ListCodec, ArbitraryOrderPreserved) {
  // Discovered lists are not sorted; order carries tree structure and must
  // survive the wire exactly. Adversarial order maximizes delta widths.
  std::mt19937_64 rng(5);
  std::vector<Vertex> list(5000);
  for (auto& v : list) v = static_cast<Vertex>(rng() & 0x7FFFFFFF);
  std::vector<std::uint8_t> enc;
  const std::size_t nb = encode_list({list.data(), list.size()}, enc);
  EXPECT_LE(nb, list.size() * 4 + kListHeaderMax);
  std::vector<Vertex> out;
  decode_list({enc.data(), enc.size()}, out);
  EXPECT_EQ(out, list);
}

TEST(ListCodec, MalformedInputThrows) {
  std::vector<Vertex> out;
  std::vector<std::uint8_t> lying;  // claims 2^40 entries in 3 bytes
  lying.push_back(4);               // delta-list mode byte
  put_varint(lying, 1ull << 40);
  EXPECT_THROW(decode_list({lying.data(), lying.size()}, out),
               std::invalid_argument);
}

TEST(ListCodec, TruncationAndByteFlipFuzz) {
  std::vector<Vertex> list;
  for (Vertex v = 0; v < 500; ++v) list.push_back((v * 2654435761u) & 0xFFFFF);
  std::vector<std::uint8_t> enc;
  const std::size_t nb = encode_list({list.data(), list.size()}, enc);
  // Every strict prefix throws (the decoder cannot produce `count` values).
  for (std::size_t cut = 0; cut < nb; cut += 7) {
    std::vector<Vertex> out;
    EXPECT_THROW(decode_list({enc.data(), cut}, out), std::invalid_argument)
        << "cut=" << cut;
  }
  // Trailing garbage is not consumed: exact framing is reported back.
  std::vector<std::uint8_t> padded = enc;
  padded.insert(padded.end(), {0xAA, 0xBB});
  std::vector<Vertex> out;
  EXPECT_EQ(decode_list({padded.data(), padded.size()}, out), nb);
  EXPECT_EQ(out, list);
  // Byte flips either throw or stay inside the buffer; 32-bit range of
  // every decoded vertex is enforced even on corrupt streams.
  for (std::size_t i = 0; i < nb; i += 3) {
    std::vector<std::uint8_t> bad = enc;
    bad[i] ^= 0xFF;
    std::vector<Vertex> fuzz_out;
    try {
      EXPECT_LE(decode_list({bad.data(), bad.size()}, fuzz_out), bad.size());
    } catch (const std::invalid_argument&) {
    }
  }
}

// ---------------------------------------------------------------------------
// Analytic size estimates (the gate's inputs)
// ---------------------------------------------------------------------------

TEST(Estimates, TrackRealSizesDirectionally) {
  // The gate only needs the estimates to be ordinally sane: tiny for empty,
  // clamped at raw for dense, monotone in the set-bit count.
  EXPECT_LE(dense_estimate_bytes(1000, 0), 16u);
  EXPECT_LE(sparse_estimate_bytes(0, 64000), 16u);
  EXPECT_EQ(dense_estimate_bytes(1000, 32000), 1000 * 8 + 1);
  EXPECT_LE(sparse_estimate_bytes(100, 64000), 64000 / 8);
  EXPECT_LT(dense_estimate_bytes(1000, 64), dense_estimate_bytes(1000, 6400));
  EXPECT_LT(sparse_estimate_bytes(10, 64000), sparse_estimate_bytes(1000, 64000));
}

// ---------------------------------------------------------------------------
// BFS integration: every codec mode reproduces the codec-off tree
// ---------------------------------------------------------------------------

const GraphBundle& bundle10() {
  static const GraphBundle b = GraphBundle::make(10, 16, 42, 8);
  return b;
}

bfs::Config with_codec(bfs::Config c, bfs::CodecMode m, int chunks = 4) {
  c.codec = m;
  c.exchange_chunks = chunks;
  return c;
}

void expect_same_tree(Experiment& e, const bfs::Config& ref_cfg,
                      const bfs::Config& cfg) {
  const auto root = e.bundle().roots[0];
  const auto [ref_res, ref_parent] = e.run_validated(ref_cfg, root);
  const auto [res, parent] = e.run_validated(cfg, root);
  EXPECT_EQ(parent, ref_parent) << cfg.name();
  EXPECT_EQ(res.visited, ref_res.visited);
  EXPECT_EQ(res.traversed_directed_edges, ref_res.traversed_directed_edges);
  const auto v = graph::validate_bfs_tree(e.bundle().csr, root, parent);
  ASSERT_TRUE(v.ok) << cfg.name() << ": " << v.error;
}

TEST(CodecBfs, AllModesMatchOffAcrossShapes) {
  for (const auto& [nodes, ppn] : {std::pair{1, 4}, {2, 4}, {4, 2}}) {
    Experiment e(bundle10(), shape(nodes, ppn));
    const bfs::Config base = bfs::granularity(256);
    for (const bfs::CodecMode m :
         {bfs::CodecMode::gate, bfs::CodecMode::force_sparse,
          bfs::CodecMode::force_dense}) {
      expect_same_tree(e, base, with_codec(base, m));
    }
  }
}

TEST(CodecBfs, SingleRankClusterGate) {
  // np == 1: nothing crosses a wire; the gate must degrade to a no-op.
  Experiment e(bundle10(), shape(1, 1));
  expect_same_tree(e, bfs::original(),
                   with_codec(bfs::original(), bfs::CodecMode::gate));
}

TEST(CodecBfs, UnsharedVariantsMatchToo) {
  // The codec must compose with every sharing level, not just the ladder top.
  Experiment e(bundle10(), shape(2, 4));
  for (const bfs::Config& base :
       {bfs::original(), bfs::share_in_queue(), bfs::share_all()}) {
    expect_same_tree(e, base, with_codec(base, bfs::CodecMode::gate));
  }
}

TEST(CodecBfs, BitDeterministicIncludingTime) {
  Experiment e(bundle10(), shape(2, 4));
  const bfs::Config cfg = bfs::compressed();
  const auto root = e.bundle().roots[0];
  const auto [r1, p1] = e.run_validated(cfg, root);
  const auto [r2, p2] = e.run_validated(cfg, root);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i].exchange_codec, r2.trace[i].exchange_codec);
    EXPECT_EQ(r1.trace[i].wire_bytes, r2.trace[i].wire_bytes);
  }
}

TEST(CodecBfs, DeterministicUnderCrashPlan) {
  Experiment e(bundle10(), shape(2, 4));
  e.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("seed:42,crash:rank=3@level=2"),
      e.cluster().nranks(), e.cluster().ppn()));
  const bfs::Config cfg = bfs::compressed();
  const auto root = e.bundle().roots[0];
  const auto [r1, p1] = e.run_validated(cfg, root);
  const auto [r2, p2] = e.run_validated(cfg, root);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  EXPECT_GT(r1.recoveries, 0);
  const auto v = graph::validate_bfs_tree(e.bundle().csr, root, p1);
  ASSERT_TRUE(v.ok) << v.error;
  e.cluster().set_fault_injector(nullptr);
}

TEST(CodecBfs, CorrectUnderPayloadCorruption) {
  // Wire corruption under the codec: flipped bits in an encoded stream are
  // caught by the checksum (or by the decoder's hard framing errors) and
  // retransmitted — the traversal must land on exactly the clean tree, at
  // a deterministic (if higher) virtual time.
  Experiment e(bundle10(), shape(2, 4));
  const auto root = e.bundle().roots[0];
  const auto [clean_res, clean_parent] =
      e.run_validated(bfs::compressed(), root);

  e.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("seed:7,corrupt:prob=0.2"),
      e.cluster().nranks(), e.cluster().ppn()));
  const auto [r1, p1] = e.run_validated(bfs::compressed(), root);
  const auto [r2, p2] = e.run_validated(bfs::compressed(), root);
  e.cluster().set_fault_injector(nullptr);

  EXPECT_EQ(p1, clean_parent);
  EXPECT_EQ(r1.visited, clean_res.visited);
  EXPECT_EQ(p2, p1);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  const auto v = graph::validate_bfs_tree(e.bundle().csr, root, p1);
  ASSERT_TRUE(v.ok) << v.error;
}

TEST(CodecBfs, FullFrontierWireNeverExceedsRawPlusHeaders) {
  // bottom_up_only + force_dense drives the exchange through the densest
  // frontiers the traversal can produce; the fallback bound must hold on
  // the wire: each contribution costs at most its raw size + 1 mode byte.
  Experiment e(bundle10(), shape(2, 4));
  bfs::Config cfg = with_codec(bfs::granularity(256),
                               bfs::CodecMode::force_dense);
  cfg.direction = bfs::Direction::bottom_up_only;
  const auto root = e.bundle().roots[0];
  const auto [res, parent] = e.run_validated(cfg, root);
  const auto v = graph::validate_bfs_tree(e.bundle().csr, root, parent);
  ASSERT_TRUE(v.ok) << v.error;
  const std::uint64_t np = 8;
  for (const auto& t : res.trace) {
    if (t.exchange_codec < 0) continue;
    EXPECT_LE(t.wire_bytes, t.wire_raw_bytes + np * np)
        << "level " << t.level;
  }
}

TEST(CodecBfs, GateReducesMeasuredWireBytes) {
  Experiment e(bundle10(), shape(2, 4));
  const auto root = e.bundle().roots[0];
  const auto [res, parent] = e.run_validated(bfs::compressed(), root);
  std::uint64_t wire = 0, raw = 0;
  bool any_coded = false;
  for (const auto& t : res.trace) {
    wire += t.wire_bytes;
    raw += t.wire_raw_bytes;
    if (t.exchange_codec > 0) any_coded = true;
  }
  EXPECT_TRUE(any_coded) << "gate never picked a codec on an R-MAT run";
  EXPECT_LT(wire, raw);
}

// ---------------------------------------------------------------------------
// MS-BFS integration
// ---------------------------------------------------------------------------

TEST(CodecMsBfs, CodedWaveMatchesUncodedDistances) {
  const GraphBundle b = GraphBundle::make(9, 16, 7, 16);
  Experiment ex(b, shape(2, 2));
  std::vector<engine::WaveQuery> qs;
  for (int i = 0; i < 8; ++i) {
    engine::WaveQuery q;
    q.source = b.roots[static_cast<std::size_t>(i) % b.roots.size()];
    qs.push_back(q);
  }

  engine::WaveState off(ex.dist(), bfs::original(), 2, 2);
  const engine::WaveResult r_off = engine::run_wave(ex.cluster(), ex.dist(), off, qs);

  engine::WaveState on(ex.dist(),
                       with_codec(bfs::original(), bfs::CodecMode::gate), 2, 2);
  const engine::WaveResult r_on = engine::run_wave(ex.cluster(), ex.dist(), on, qs);
  const engine::WaveResult r_on2 = engine::run_wave(ex.cluster(), ex.dist(), on, qs);

  EXPECT_EQ(r_on.levels, r_off.levels);
  EXPECT_EQ(r_on.wave_ns, r_on2.wave_ns) << "coded wave must be deterministic";
  for (int l = 0; l < static_cast<int>(qs.size()); ++l) {
    const auto d_off = engine::gather_lane_distances(ex.dist(), off, l);
    const auto d_on = engine::gather_lane_distances(ex.dist(), on, l);
    ASSERT_EQ(d_on, d_off) << "lane " << l;
  }
}

}  // namespace
}  // namespace numabfs::graph::codec
