#include "harness/svg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

namespace numabfs::harness {
namespace {

SvgChart sample() {
  SvgChart c("Title & <tags>", "x-axis", "y-axis");
  c.set_categories({"a", "b", "c"});
  c.add_series("one", {1.0, 2.0, 3.0});
  c.add_series("two", {3.0, 1.0, 2.0});
  return c;
}

TEST(Svg, BarsContainExpectedElements) {
  const std::string s = sample().render_bars();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  // 2 series x 3 categories = 6 bars + background + 2 legend swatches.
  std::size_t rects = 0, pos = 0;
  while ((pos = s.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 1u + 6u + 2u);
  // Category labels and legend names present.
  for (const char* text : {">a<", ">b<", ">c<", ">one<", ">two<"})
    EXPECT_NE(s.find(text), std::string::npos) << text;
}

TEST(Svg, LinesContainPolylinesAndMarkers) {
  const std::string s = sample().render_lines();
  std::size_t lines = 0, circles = 0, pos = 0;
  while ((pos = s.find("<polyline", pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  pos = 0;
  while ((pos = s.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(circles, 6u);
}

TEST(Svg, EscapesMarkup) {
  const std::string s = sample().render_bars();
  EXPECT_NE(s.find("Title &amp; &lt;tags&gt;"), std::string::npos);
  EXPECT_EQ(s.find("<tags>"), std::string::npos);
}

TEST(Svg, DeterministicOutput) {
  EXPECT_EQ(sample().render_bars(), sample().render_bars());
  EXPECT_EQ(sample().render_lines(), sample().render_lines());
}

TEST(Svg, HandlesMissingPointsAndEmptyChart) {
  SvgChart c("t", "x", "y");
  c.set_categories({"a", "b"});
  c.add_series("s", {1.0, std::nan("")});
  EXPECT_NE(c.render_lines().find("<polyline"), std::string::npos);
  SvgChart empty("t", "x", "y");
  EXPECT_NE(empty.render_bars().find("</svg>"), std::string::npos);
}

TEST(Svg, WritesFiles) {
  const auto path =
      (std::filesystem::temp_directory_path() / "numabfs_chart.svg").string();
  sample().write_bars(path);
  EXPECT_GT(std::filesystem::file_size(path), 500u);
  std::filesystem::remove(path);
  EXPECT_THROW(sample().write_bars("/nonexistent-dir/x.svg"),
               std::runtime_error);
}

}  // namespace
}  // namespace numabfs::harness
