/// Tests for the self-tuning layer (DESIGN.md §15): the knob arbiter and
/// trailing-window estimators, the coordinate-descent profile search, the
/// TunedProfile JSON round-trip, the expanded config validation, and the
/// online controllers' determinism / zero-perturbation contracts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "bfs2d/bfs2d.hpp"
#include "engine/engine.hpp"
#include "engine/frontdoor.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "harness/graph500.hpp"
#include "tune/controller.hpp"
#include "tune/profile.hpp"
#include "tune/search.hpp"

namespace numabfs {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

// ---------------------------------------------------------------------------
// KnobArbiter / TrailingMean
// ---------------------------------------------------------------------------

TEST(KnobArbiter, HysteresisBlocksMarginalSwitch) {
  tune::KnobArbiter a(0, {0.15, 0});
  // 10% better than incumbent: inside the 15% margin, stay.
  const double marginal[] = {100.0, 90.0};
  EXPECT_EQ(a.decide(marginal), 0);
  EXPECT_EQ(a.switches(), 0);
  // 20% better: switch.
  const double clear[] = {100.0, 80.0};
  EXPECT_EQ(a.decide(clear), 1);
  EXPECT_EQ(a.switches(), 1);
}

TEST(KnobArbiter, DwellHoldsFreshChoice) {
  tune::KnobArbiter a(0, {0.1, 2});
  const double to1[] = {100.0, 50.0};
  EXPECT_EQ(a.decide(to1), 1);
  // Choice 0 is now far better, but the fresh switch dwells for 2 reviews.
  const double back[] = {10.0, 100.0};
  EXPECT_EQ(a.decide(back), 1);
  EXPECT_EQ(a.decide(back), 1);
  EXPECT_EQ(a.decide(back), 0);
  EXPECT_EQ(a.switches(), 2);
}

TEST(KnobArbiter, TiesAndEqualCostsNeverFlap) {
  tune::KnobArbiter a(0, {0.0, 0});
  const double equal[] = {5.0, 5.0, 5.0};
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.decide(equal), 0);
  EXPECT_EQ(a.switches(), 0);
}

TEST(TrailingMean, WindowedRatio) {
  tune::TrailingMean m(2);
  EXPECT_FALSE(m.ready());
  m.push(10.0, 1.0);
  EXPECT_TRUE(m.ready());
  m.push(20.0, 1.0);
  EXPECT_DOUBLE_EQ(m.rate(), 15.0);
  m.push(40.0, 1.0);  // evicts the 10; (20+40)/2
  EXPECT_DOUBLE_EQ(m.rate(), 30.0);
  EXPECT_EQ(m.samples(), 2);
}

TEST(DirectionController, FallsBackToBeamerUntilBothRatesReady) {
  tune::DirectionController d(2, {0.15, 0});
  // No history at all: static thresholds decide. mf > rem/alpha -> bu.
  EXPECT_EQ(d.decide(0, true, 10, 1000, 2000, 500, 4096, 14.0, 24.0), 1);
  EXPECT_EQ(d.switches(), 1);
  // Feed both directions history; the measured rates take over.
  d.observe(0, 1000.0, 1000, 0);  // td: 1 ns/edge
  d.observe(1, 100.0, 0, 1000);   // bu: 0.1 ns/unvisited
  // cost_td = 1*200 = 200 vs cost_bu = 0.1*100 = 10 -> bottom-up.
  EXPECT_EQ(d.decide(0, true, 10, 200, 4000, 100, 4096, 14.0, 24.0), 1);
}

TEST(ExchangeTuner, BaselineIsFirstChoice) {
  tune::ExchangeTuner t(true, true, 3, {0.15, 2}, 4, 1);
  // base_k=4 is in the ladder {1,2,4,8,16} at index 2.
  EXPECT_EQ(t.k_candidates()[static_cast<size_t>(t.k_arbiter().current())], 4);
  EXPECT_EQ(t.algo_arbiter().current(), 1);
  // A base K outside the ladder is appended and selected.
  tune::ExchangeTuner t2(true, false, 3, {0.15, 2}, 7, 0);
  EXPECT_EQ(t2.k_candidates()[static_cast<size_t>(t2.k_arbiter().current())],
            7);
  EXPECT_FALSE(t.ready());
  t.observe(1000);
  EXPECT_TRUE(t.ready());
  t.observe(3000);
  EXPECT_EQ(t.trailing_chunk_bytes(), 2000u);
}

// ---------------------------------------------------------------------------
// Coordinate descent
// ---------------------------------------------------------------------------

/// Separable concave objective with its peak at (3, 1, 2).
std::optional<double> bowl(const std::vector<int>& ix) {
  const double peaks[3] = {3.0, 1.0, 2.0};
  double s = 100.0;
  for (size_t d = 0; d < 3; ++d)
    s -= (ix[d] - peaks[d]) * (ix[d] - peaks[d]);
  return s;
}

TEST(CoordinateDescent, FindsSeparableOptimum) {
  const std::vector<tune::Dim> dims = {{"a", 6}, {"b", 4}, {"c", 5}};
  const auto r = tune::coordinate_descent(dims, bowl, {0, 0, 0});
  EXPECT_EQ(r.best, (std::vector<int>{3, 1, 2}));
  EXPECT_DOUBLE_EQ(r.best_score, 100.0);
  // Pruning keeps evaluations well under the 120-point grid.
  EXPECT_LT(r.evaluations, 40);
  EXPECT_GT(r.rounds, 0);
}

TEST(CoordinateDescent, DeterministicAcrossReruns) {
  const std::vector<tune::Dim> dims = {{"a", 6}, {"b", 4}, {"c", 5}};
  const auto r1 = tune::coordinate_descent(dims, bowl, {5, 3, 4});
  const auto r2 = tune::coordinate_descent(dims, bowl, {5, 3, 4});
  EXPECT_EQ(r1.best, r2.best);
  EXPECT_EQ(r1.best_score, r2.best_score);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
  EXPECT_EQ(r1.log, r2.log);
}

TEST(CoordinateDescent, SeedsGuaranteeAtLeastHandScore) {
  // An objective with a deceptive ridge: descent from {0,0} stalls at 50,
  // but the hand seed {4, 3} scores 90 — the result must keep it.
  const auto trap = [](const std::vector<int>& ix) -> std::optional<double> {
    if (ix[0] == 4 && ix[1] == 3) return 90.0;
    if (ix[0] == 0 && ix[1] == 0) return 50.0;
    return 10.0;
  };
  const std::vector<tune::Dim> dims = {{"a", 5}, {"b", 4}};
  const auto r = tune::coordinate_descent(dims, trap, {0, 0}, {{4, 3}});
  EXPECT_EQ(r.best, (std::vector<int>{4, 3}));
  EXPECT_DOUBLE_EQ(r.best_score, 90.0);
}

TEST(CoordinateDescent, InvalidPointsAreCountedAndAvoided) {
  const auto obj = [](const std::vector<int>& ix) -> std::optional<double> {
    if (ix[0] >= 3) return std::nullopt;  // invalid region
    return static_cast<double>(ix[0]);
  };
  const auto r = tune::coordinate_descent({{"a", 6}}, obj, {0});
  EXPECT_EQ(r.best, (std::vector<int>{2}));
  EXPECT_GE(r.invalid, 1);
}

TEST(CoordinateDescent, ThrowsWhenNoSeedIsValid) {
  const auto never = [](const std::vector<int>&) -> std::optional<double> {
    return std::nullopt;
  };
  EXPECT_THROW(tune::coordinate_descent({{"a", 3}}, never, {0}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// TunedProfile JSON
// ---------------------------------------------------------------------------

tune::ProfileEntry sample_entry() {
  tune::ProfileEntry e;
  e.shape = {20, 16, 8, 4};
  e.objective = "harmonic_teps";
  e.score = 1.25e9;
  e.config = bfs::compressed(256, 4);
  e.config.base_algo = rt::AllgatherAlgo::leader_rd;
  e.config.alpha = 7.0;
  e.config.tune.adapt_direction = true;
  e.batch = 32;
  return e;
}

TEST(TunedProfile, JsonRoundTrip) {
  tune::TunedProfile p;
  p.entries.push_back(sample_entry());
  const tune::TunedProfile q = tune::TunedProfile::parse(p.json());
  ASSERT_EQ(q.entries.size(), 1u);
  const tune::ProfileEntry& e = q.entries[0];
  EXPECT_EQ(e.shape, (tune::ShapeKey{20, 16, 8, 4}));
  EXPECT_EQ(e.objective, "harmonic_teps");
  EXPECT_DOUBLE_EQ(e.score, 1.25e9);
  EXPECT_EQ(e.batch, 32);
  EXPECT_EQ(e.config.name(), p.entries[0].config.name());
  EXPECT_EQ(e.config.base_algo, rt::AllgatherAlgo::leader_rd);
  EXPECT_DOUBLE_EQ(e.config.alpha, 7.0);
  EXPECT_TRUE(e.config.tune.adapt_direction);
  EXPECT_EQ(e.config.tune.dwell, p.entries[0].config.tune.dwell);
}

TEST(TunedProfile, RejectsMalformedAndWrongSchema) {
  EXPECT_THROW(tune::TunedProfile::parse("{not json"), std::runtime_error);
  EXPECT_THROW(tune::TunedProfile::parse("{\"schema\": \"v0\", "
                                         "\"entries\": []}"),
               std::runtime_error);
  // A structurally valid profile whose config violates validate() (chunks
  // without a codec) must be rejected with the config's message.
  tune::TunedProfile p;
  tune::ProfileEntry e = sample_entry();
  e.config.codec = bfs::CodecMode::off;  // chunks stays 4: contradiction
  p.entries.push_back(e);
  const std::string text = p.json();
  try {
    tune::TunedProfile::parse(text);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("codec"), std::string::npos);
  }
}

TEST(TunedProfile, NearestPrefersClusterShape) {
  tune::TunedProfile p;
  tune::ProfileEntry small = sample_entry();
  small.shape = {13, 16, 2, 2};
  small.objective = "small";
  tune::ProfileEntry big = sample_entry();
  big.shape = {20, 16, 8, 4};
  big.objective = "big";
  p.entries = {small, big};

  // Exact match wins.
  EXPECT_EQ(p.nearest({20, 16, 8, 4})->objective, "big");
  // Same cluster shape, different scale: cluster shape dominates.
  EXPECT_EQ(p.nearest({15, 16, 8, 4})->objective, "big");
  EXPECT_EQ(p.nearest({16, 16, 2, 2})->objective, "small");
  EXPECT_EQ(tune::TunedProfile{}.nearest({13, 16, 2, 2}), nullptr);
}

TEST(TunedProfile, NearestBreaksDistanceTiesByShapeOrder) {
  // Two entries equidistant from the query (symmetric in log2 space around
  // it) must resolve by the documented ShapeKey total order — lexicographic
  // (nodes, ppn, scale, edgefactor), smallest first — not by the order the
  // entries happen to appear in the profile.
  tune::ProfileEntry lo = sample_entry();
  lo.shape = {15, 16, 2, 4};  // nodes one halving below the query
  lo.objective = "lo";
  tune::ProfileEntry hi = sample_entry();
  hi.shape = {15, 16, 8, 4};  // nodes one doubling above: same log2 distance
  hi.objective = "hi";
  const tune::ShapeKey q{15, 16, 4, 4};

  tune::TunedProfile fwd, rev;
  fwd.entries = {lo, hi};
  rev.entries = {hi, lo};
  ASSERT_NE(fwd.nearest(q), nullptr);
  // shape_less orders on nodes first: {.., 2, 4} < {.., 8, 4}.
  EXPECT_EQ(fwd.nearest(q)->objective, "lo");
  EXPECT_EQ(rev.nearest(q)->objective, "lo");
  EXPECT_TRUE(tune::shape_less(lo.shape, hi.shape));
  EXPECT_FALSE(tune::shape_less(hi.shape, lo.shape));
  EXPECT_FALSE(tune::shape_less(lo.shape, lo.shape));
}

TEST(TunedProfile, FileRoundTrip) {
  tune::TunedProfile p;
  p.entries.push_back(sample_entry());
  const std::string path = "test_tune_profile_tmp.json";
  p.write(path);
  const tune::TunedProfile q = tune::TunedProfile::load(path);
  EXPECT_EQ(q.json(), p.json());
  std::remove(path.c_str());
  EXPECT_THROW(tune::TunedProfile::load("does_not_exist.json"),
               std::runtime_error);
}

TEST(TunedProfile, ApplyCopiesOnlyTunedFields) {
  const tune::ProfileEntry e = sample_entry();
  bfs2d::Bfs2dOptions o;
  tune::apply(e, o);
  EXPECT_EQ(o.codec, bfs::CodecMode::gate);
  EXPECT_EQ(o.exchange_chunks, 4);
  EXPECT_DOUBLE_EQ(o.alpha, 7.0);
  EXPECT_EQ(o.summary_granularity, 256u);

  engine::EngineConfig ec;
  engine::FrontDoorConfig fdc;
  tune::apply(e, ec);
  tune::apply(e, fdc);
  EXPECT_EQ(ec.max_batch, 32);
  EXPECT_EQ(fdc.max_batch, 32);
  tune::ProfileEntry untouched = e;
  untouched.batch = 0;  // not tuned: leave the consumer's default alone
  engine::EngineConfig ec2;
  tune::apply(untouched, ec2);
  EXPECT_EQ(ec2.max_batch, engine::EngineConfig{}.max_batch);
}

// ---------------------------------------------------------------------------
// Config validation (satellite: contradictory knob combos)
// ---------------------------------------------------------------------------

TEST(ConfigValidation, ContradictoryCombosGetActionableMessages) {
  bfs::Config c;
  c.parallel_allgather = true;  // sharing == none: contradiction
  EXPECT_NE(c.validate().find("sharing"), std::string::npos);

  bfs::Config k = bfs::original();
  k.exchange_chunks = 4;  // codec off: nothing to pipeline
  EXPECT_NE(k.validate().find("codec"), std::string::npos);

  bfs::Config t = bfs::original();
  t.tune.adapt_chunks = true;
  EXPECT_NE(t.validate().find("codec"), std::string::npos);

  bfs::Config a = bfs::share_all();
  a.tune.adapt_allgather = true;
  EXPECT_NE(a.validate().find("sharing"), std::string::npos);

  bfs::Config h = bfs::original();
  h.tune.hysteresis = 1.5;
  EXPECT_FALSE(h.validate().empty());
  h.tune.hysteresis = 0.15;
  h.tune.window = 0;
  EXPECT_FALSE(h.validate().empty());

  EXPECT_TRUE(bfs::compressed().validate().empty());
}

TEST(ConfigValidation, Bfs2dAndServingConfigs) {
  bfs2d::Bfs2dOptions o;
  o.exchange_chunks = 4;  // codec off
  EXPECT_NE(o.validate().find("codec"), std::string::npos);
  o.codec = bfs::CodecMode::gate;
  EXPECT_TRUE(o.validate().empty());

  engine::EngineConfig ec;
  ec.max_batch = 0;
  EXPECT_FALSE(ec.validate().empty());
  ec.max_batch = engine::kMaxLanes + 1;
  EXPECT_FALSE(ec.validate().empty());

  engine::FrontDoorConfig fdc;
  fdc.export_every = 0;
  EXPECT_FALSE(fdc.validate().empty());
  fdc.export_every = 1;
  fdc.est_window = 0;
  EXPECT_FALSE(fdc.validate().empty());
  fdc.est_window = 8;
  fdc.hb_period_ns = 0;
  EXPECT_FALSE(fdc.validate().empty());
}

TEST(ConfigValidation, DriversRejectInvalidConfigsUpFront) {
  const GraphBundle b = GraphBundle::make(10, 16, 1, 2);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 2;
  Experiment e(b, eo);
  bfs::Config bad = bfs::original();
  bad.exchange_chunks = 4;
  EXPECT_THROW(
      {
        engine::EngineConfig ec;
        engine::QueryEngine qe(e.cluster(), e.dist(), bad, ec);
      },
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Online controllers: determinism, zero perturbation, tuned-vs-manual
// ---------------------------------------------------------------------------

void expect_identical(const bfs::BfsRunResult& a, const bfs::BfsRunResult& b) {
  EXPECT_EQ(a.time_ns, b.time_ns);  // bit-identical, not approximately
  EXPECT_EQ(a.visited, b.visited);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.directions, b.directions);
  EXPECT_EQ(a.tune_direction_switches, b.tune_direction_switches);
  EXPECT_EQ(a.tune_chunk_switches, b.tune_chunk_switches);
  EXPECT_EQ(a.tune_allgather_switches, b.tune_allgather_switches);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].exchange_chunks, b.trace[i].exchange_chunks);
    EXPECT_EQ(a.trace[i].exchange_algo, b.trace[i].exchange_algo);
    EXPECT_EQ(a.trace[i].wire_bytes, b.trace[i].wire_bytes);
  }
}

bfs::Config online_config() {
  bfs::Config c = bfs::compressed(64, 2);
  c.tune.adapt_direction = true;
  c.tune.adapt_chunks = true;
  c.tune.window = 2;
  return c;
}

TEST(OnlineControl, DeterministicAcrossReruns) {
  const GraphBundle b = GraphBundle::make(12, 16, 3, 2);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 2;
  Experiment e(b, eo);
  const bfs::Config cfg = online_config();
  const auto [r1, p1] = e.run_validated(cfg, b.roots[0]);
  const auto [r2, p2] = e.run_validated(cfg, b.roots[0]);
  expect_identical(r1, r2);
  EXPECT_EQ(p1, p2);

  // The sharing-none path adapts the allgather algorithm too.
  bfs::Config none = bfs::original();
  none.tune.adapt_direction = true;
  none.tune.adapt_allgather = true;
  const auto [n1, q1] = e.run_validated(none, b.roots[0]);
  const auto [n2, q2] = e.run_validated(none, b.roots[0]);
  expect_identical(n1, n2);
  EXPECT_EQ(q1, q2);
}

TEST(OnlineControl, DeterministicUnderFaultPlan) {
  const GraphBundle b = GraphBundle::make(12, 16, 3, 2);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 2;
  Experiment e(b, eo);
  const bfs::Config cfg = online_config();
  const auto run_once = [&] {
    // Fresh injector per run: the plan's RNG state must not leak between
    // reruns for the bit-identity claim to mean anything.
    e.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
        faults::FaultPlan::parse("seed:11,drop:prob=0.05,crash:rank=3@level=2"),
        e.cluster().nranks(), e.cluster().ppn()));
    return e.run_validated(cfg, b.roots[0]);
  };
  const auto [r1, p1] = run_once();
  const auto [r2, p2] = run_once();
  e.cluster().set_fault_injector(nullptr);
  expect_identical(r1, r2);
  EXPECT_EQ(p1, p2);
  EXPECT_GT(r1.recoveries, 0);  // the crash actually happened
}

TEST(OnlineControl, DisabledControllersPerturbNothing) {
  const GraphBundle b = GraphBundle::make(12, 16, 3, 2);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 2;
  Experiment e(b, eo);
  // Same static knobs; wildly different controller *parameters* — with
  // every adapt flag off they must be inert (no extra allreduces, no state).
  bfs::Config plain = bfs::compressed(256, 4);
  bfs::Config params = plain;
  params.tune.window = 9;
  params.tune.hysteresis = 0.5;
  params.tune.dwell = 7;
  const auto [r1, p1] = e.run_validated(plain, b.roots[0]);
  const auto [r2, p2] = e.run_validated(params, b.roots[0]);
  expect_identical(r1, r2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(r1.tune_direction_switches, 0);
  EXPECT_EQ(r1.tune_chunk_switches, 0);
  EXPECT_EQ(r1.tune_allgather_switches, 0);
}

TEST(OnlineControl, ProfileAppliedConfigMatchesManualBitForBit) {
  // A config rebuilt from a profile entry must produce the same run as the
  // hand-built original — the tuned-vs-manual equivalence satellite.
  tune::ProfileEntry pe;
  pe.shape = {12, 16, 2, 2};
  pe.objective = "harmonic_teps";
  pe.config = online_config();
  const tune::TunedProfile round =
      tune::TunedProfile::parse([&] {
        tune::TunedProfile p;
        p.entries.push_back(pe);
        return p.json();
      }());
  const bfs::Config from_profile = tune::to_bfs_config(round.entries[0]);

  const GraphBundle b = GraphBundle::make(12, 16, 3, 2);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 2;
  Experiment e(b, eo);
  const auto [r1, p1] = e.run_validated(online_config(), b.roots[0]);
  const auto [r2, p2] = e.run_validated(from_profile, b.roots[0]);
  expect_identical(r1, r2);
  EXPECT_EQ(p1, p2);
}

TEST(OnlineControl, AdaptiveRunsStayCorrect) {
  // Controllers may change directions/K/algo freely; the traversal result
  // must still validate against the reference BFS tree on every root.
  const GraphBundle b = GraphBundle::make(12, 16, 5, 4);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 2;
  Experiment e(b, eo);
  const bfs::Config cfg = online_config();
  for (const graph::Vertex root : b.roots)
    e.run_validated(cfg, root);  // run_validated asserts tree validity
  SUCCEED();
}

}  // namespace
}  // namespace numabfs
