/// \file test_compound_faults.cpp
/// Compound failures: multiple rank crashes in one traversal, a crash
/// landing during another rank's recovery, and crashes stacked with link
/// degradation on the same node. Every scenario must still produce the
/// reference answer — chaos shows up as virtual time, never as wrong
/// distances — and replay bit-identically. Also pins the parse-time
/// validation contract for contradictory or unreachable fault plans.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "engine/msbfs.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"

namespace numabfs {
namespace {

using faults::FaultPlan;
using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  return o;
}

void attach(Experiment& e, const std::string& spec) {
  e.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
      FaultPlan::parse(spec), e.cluster().nranks(), e.cluster().ppn()));
}

/// One validated hybrid-BFS run: tree validates against the CSR and the
/// visited/edge counts match.
void expect_valid_run(Experiment& e, const bfs::Config& cfg,
                      bfs::BfsRunResult* out = nullptr) {
  const GraphBundle& b = e.bundle();
  const graph::Vertex root = b.roots[0];
  const auto [res, parent] = e.run_validated(cfg, root);
  const auto v = graph::validate_bfs_tree(b.csr, root, parent);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(res.visited, v.visited);
  if (out != nullptr) *out = res;
}

// ---------------------------------------------------------------------------
// Parse-time validation of contradictory / unreachable plans
// ---------------------------------------------------------------------------

TEST(FaultPlanValidation, RejectsDuplicateCrashOfOneRank) {
  EXPECT_THROW(FaultPlan::parse("crash:rank=1@level=2,crash:rank=1@level=4"),
               std::invalid_argument);
  // Distinct ranks are fine, even at the same level.
  EXPECT_NO_THROW(FaultPlan::parse("crash:rank=1@level=2,crash:rank=2@level=2"));
}

TEST(FaultPlanValidation, RejectsImplausibleCrashLevel) {
  EXPECT_NO_THROW(FaultPlan::parse("crash:rank=0@level=100"));
  EXPECT_THROW(
      FaultPlan::parse("crash:rank=0@level=" +
                       std::to_string(faults::kMaxPlausibleCrashLevel + 1)),
      std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsEmptyActivityWindows) {
  EXPECT_THROW(FaultPlan::parse("drop:prob=0.1@from=5e6@until=5e6"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("straggle:rank=0@factor=2@from=9e6@until=1e6"),
               std::invalid_argument);
}

TEST(FaultPlanValidation, OutageParsesAndRejectsContradictions) {
  const FaultPlan p = FaultPlan::parse("outage:at=5e6");
  EXPECT_DOUBLE_EQ(p.outage_at_ns(), 5e6);
  EXPECT_EQ(FaultPlan::parse("drop:prob=0.1").outage_at_ns(),
            std::numeric_limits<double>::infinity());
  EXPECT_THROW(FaultPlan::parse("outage:at=1e6,outage:at=2e6"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("outage:at=-5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("outage:now"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Compound crashes in the hybrid BFS
// ---------------------------------------------------------------------------

TEST(CompoundFaults, TwoRankCrashesInOneRunStillValidate) {
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 4));
  attach(e, "seed:7,crash:rank=1@level=2,crash:rank=5@level=3");

  bfs::BfsRunResult r1, r2;
  expect_valid_run(e, bfs::share_all(), &r1);
  EXPECT_EQ(r1.ranks_lost, 2);
  EXPECT_GE(r1.recoveries, 2);

  expect_valid_run(e, bfs::share_all(), &r2);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  EXPECT_EQ(r1.recoveries, r2.recoveries);

  // Two losses cost more than one, which costs more than none.
  attach(e, "seed:7,crash:rank=1@level=2");
  bfs::BfsRunResult one;
  expect_valid_run(e, bfs::share_all(), &one);
  e.cluster().set_fault_injector(nullptr);
  bfs::BfsRunResult clean;
  expect_valid_run(e, bfs::share_all(), &clean);
  EXPECT_GT(r1.time_ns, one.time_ns);
  EXPECT_GT(one.time_ns, clean.time_ns);
}

TEST(CompoundFaults, CrashDuringAnotherRanksRecoveryValidates) {
  // Both ranks die entering the same level: the second death lands while
  // the survivors are already rolling back for the first. Adoption must
  // chain (possibly the same adopter takes both partitions).
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 4));
  attach(e, "seed:9,crash:rank=2@level=2,crash:rank=3@level=2");
  bfs::BfsRunResult r;
  expect_valid_run(e, bfs::share_all(), &r);
  EXPECT_EQ(r.ranks_lost, 2);
  EXPECT_GE(r.recoveries, 1);

  // Recorder + a same-node neighbor at the same level: bookkeeping hand-off
  // happens while a second adoption is in flight.
  attach(e, "seed:9,crash:rank=0@level=1,crash:rank=1@level=1");
  expect_valid_run(e, bfs::original(), &r);
  EXPECT_EQ(r.ranks_lost, 2);
}

TEST(CompoundFaults, CrashPlusLinkDegradeOnSameNodeValidates) {
  // Node 0 loses a rank AND runs its NIC at quarter bandwidth: the adopter
  // of the dead partition sits behind the degraded link.
  const GraphBundle b = GraphBundle::make(12, 16, 42, 4);
  Experiment e(b, shape(2, 4));
  attach(e, "seed:5,crash:rank=1@level=2,degrade:node=0@factor=0.25");
  bfs::BfsRunResult both1, both2;
  expect_valid_run(e, bfs::share_all(), &both1);
  EXPECT_EQ(both1.ranks_lost, 1);
  expect_valid_run(e, bfs::share_all(), &both2);
  EXPECT_EQ(both1.time_ns, both2.time_ns);

  // The stacked faults cost more than the crash alone.
  attach(e, "seed:5,crash:rank=1@level=2");
  bfs::BfsRunResult crash_only;
  expect_valid_run(e, bfs::share_all(), &crash_only);
  EXPECT_GT(both1.time_ns, crash_only.time_ns);
}

// ---------------------------------------------------------------------------
// Compound crashes under the MS-BFS wave engine
// ---------------------------------------------------------------------------

TEST(CompoundFaults, WaveSurvivesTwoCrashesAndMatchesReference) {
  const GraphBundle b = GraphBundle::make(10, 16, 7, 16);
  Experiment e(b, shape(2, 2));
  attach(e, "seed:11,crash:rank=1@level=2,crash:rank=2@level=3");

  engine::WaveState ws(e.dist(), bfs::share_all(), 2, 2, false);
  std::vector<engine::WaveQuery> qs;
  for (int i = 0; i < 4; ++i)
    qs.push_back({engine::QueryKind::full_distances,
                  b.roots[static_cast<std::size_t>(i)], 0, 0});
  const engine::WaveResult wr = engine::run_wave(e.cluster(), e.dist(), ws, qs);
  EXPECT_EQ(wr.ranks_lost, 2);
  EXPECT_GE(wr.recoveries, 2);
  for (std::size_t l = 0; l < qs.size(); ++l) {
    ASSERT_TRUE(wr.lanes[l].finished);
    const auto ref = graph::reference_bfs(b.csr, qs[l].source);
    const auto dist =
        engine::gather_lane_distances(e.dist(), ws, static_cast<int>(l));
    for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v) {
      if (ref.reached(v))
        ASSERT_EQ(dist[v], ref.depth[v]);
      else
        ASSERT_EQ(dist[v], engine::kUnreached);
    }
  }

  // Bit-deterministic replay, wave edition.
  engine::WaveState ws2(e.dist(), bfs::share_all(), 2, 2, false);
  const engine::WaveResult wr2 =
      engine::run_wave(e.cluster(), e.dist(), ws2, qs);
  EXPECT_EQ(wr.wave_ns, wr2.wave_ns);
  EXPECT_EQ(wr.recoveries, wr2.recoveries);
}

}  // namespace
}  // namespace numabfs
