#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/hash.hpp"
#include "faults/injector.hpp"

namespace numabfs::faults {
namespace {

// --- plan parsing --------------------------------------------------------

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan p = FaultPlan::parse(
      "seed:42,crash:rank=3@level=4,drop:prob=0.05,drop:prob=0.2@rank=1,"
      "corrupt:prob=0.01,straggle:rank=2@factor=3,"
      "degrade:node=1@factor=0.25@from=1e6@until=5e6,"
      "flap:node=0@factor=0.1@period=2e6@duty=0.5");
  EXPECT_EQ(p.seed, 42u);
  ASSERT_EQ(p.events.size(), 7u);
  EXPECT_EQ(p.events[0].kind, FaultKind::rank_crash);
  EXPECT_EQ(p.events[0].rank, 3);
  EXPECT_EQ(p.events[0].level, 4);
  EXPECT_EQ(p.events[1].kind, FaultKind::msg_drop);
  EXPECT_DOUBLE_EQ(p.events[1].probability, 0.05);
  EXPECT_EQ(p.events[1].rank, -1);
  EXPECT_EQ(p.events[2].rank, 1);
  EXPECT_EQ(p.events[3].kind, FaultKind::msg_corrupt);
  EXPECT_EQ(p.events[4].kind, FaultKind::straggler);
  EXPECT_DOUBLE_EQ(p.events[4].factor, 3.0);
  EXPECT_EQ(p.events[5].kind, FaultKind::link_degrade);
  EXPECT_DOUBLE_EQ(p.events[5].from_ns, 1e6);
  EXPECT_DOUBLE_EQ(p.events[5].until_ns, 5e6);
  EXPECT_DOUBLE_EQ(p.events[6].period_ns, 2e6);
  EXPECT_DOUBLE_EQ(p.events[6].duty, 0.5);
  EXPECT_TRUE(p.has_crashes());
  EXPECT_TRUE(p.checkpointing());  // implied by the crash
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, EmptyAndWhitespaceSpecs) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("seed:7").events.empty());
}

TEST(FaultPlan, CheckpointPolicy) {
  EXPECT_FALSE(FaultPlan::parse("drop:prob=0.1").checkpointing());
  EXPECT_TRUE(FaultPlan::parse("checkpoint:on").checkpointing());
  EXPECT_TRUE(FaultPlan::parse("crash:rank=0@level=1").checkpointing());
  EXPECT_FALSE(
      FaultPlan::parse("crash:rank=0@level=1,checkpoint:off").checkpointing());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode:now"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("degrade:node=0@factor=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("degrade:node=0@factor=2"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("straggle:rank=0@factor=0.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash:rank=3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash:level=3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("flap:node=0@factor=0.5@duty=0.5"),
               std::invalid_argument);
  EXPECT_THROW(
      FaultPlan::parse("degrade:node=0@factor=0.5@from=5e6@until=1e6"),
      std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop:prob=abc"), std::invalid_argument);
}

TEST(FaultPlan, DescribeMentionsEvents) {
  const FaultPlan p = FaultPlan::parse("seed:9,drop:prob=0.1");
  const std::string d = p.describe();
  EXPECT_NE(d.find("drop"), std::string::npos);
}

// --- hashing -------------------------------------------------------------

TEST(FaultHash, ChecksumDetectsAnySingleCorruption) {
  std::vector<std::uint64_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint64_t clean = checksum64(payload);
  const FaultPlan plan = FaultPlan::parse("seed:1,corrupt:prob=1");
  const FaultInjector inj(plan, 4, 2);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<std::uint64_t> copy = payload;
    inj.corrupt_payload(copy, 0, 1, 7, attempt);
    EXPECT_NE(copy, payload) << "corruption must change the payload";
    EXPECT_NE(checksum64(copy), clean)
        << "checksum must detect the corruption";
  }
}

TEST(FaultHash, UnitIsInHalfOpenInterval) {
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const double u = hash_unit(splitmix64(x));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// --- deterministic coins -------------------------------------------------

TEST(FaultInjector, VerdictsAreDeterministic) {
  const FaultPlan plan = FaultPlan::parse("seed:5,drop:prob=0.3,corrupt:prob=0.1");
  const FaultInjector a(plan, 8, 2);
  const FaultInjector b(plan, 8, 2);
  for (std::uint64_t seq = 0; seq < 200; ++seq)
    for (int attempt = 0; attempt < 3; ++attempt)
      EXPECT_EQ(a.attempt_verdict(1, 5, seq, attempt, 0.0),
                b.attempt_verdict(1, 5, seq, attempt, 0.0));
}

TEST(FaultInjector, DropFrequencyTracksProbability) {
  const FaultPlan plan = FaultPlan::parse("seed:11,drop:prob=0.25");
  const FaultInjector inj(plan, 4, 1);
  int drops = 0;
  const int trials = 4000;
  for (int s = 0; s < trials; ++s)
    if (inj.attempt_verdict(0, 2, static_cast<std::uint64_t>(s), 0, 0.0) ==
        Verdict::drop)
      ++drops;
  const double rate = static_cast<double>(drops) / trials;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultInjector, SenderFilterRestrictsDrops) {
  const FaultPlan plan = FaultPlan::parse("seed:3,drop:prob=1@rank=1");
  const FaultInjector inj(plan, 4, 1);
  EXPECT_EQ(inj.attempt_verdict(1, 2, 0, 0, 0.0), Verdict::drop);
  EXPECT_EQ(inj.attempt_verdict(0, 2, 0, 0, 0.0), Verdict::deliver);
  EXPECT_EQ(inj.attempt_verdict(2, 1, 0, 0, 0.0), Verdict::deliver);
}

TEST(FaultInjector, SeedChangesCoins) {
  const FaultInjector a(FaultPlan::parse("seed:1,drop:prob=0.5"), 4, 1);
  const FaultInjector b(FaultPlan::parse("seed:2,drop:prob=0.5"), 4, 1);
  int differing = 0;
  for (std::uint64_t seq = 0; seq < 256; ++seq)
    if (a.attempt_verdict(0, 1, seq, 0, 0.0) !=
        b.attempt_verdict(0, 1, seq, 0, 0.0))
      ++differing;
  EXPECT_GT(differing, 0);
}

// --- time-varying factors ------------------------------------------------

TEST(FaultInjector, LinkFactorWindows) {
  const FaultPlan plan =
      FaultPlan::parse("degrade:node=1@factor=0.25@from=1e6@until=5e6");
  const FaultInjector inj(plan, 4, 2);
  EXPECT_DOUBLE_EQ(inj.link_factor(1, 0.0), 1.0);       // before window
  EXPECT_DOUBLE_EQ(inj.link_factor(1, 2e6), 0.25);      // inside
  EXPECT_DOUBLE_EQ(inj.link_factor(1, 6e6), 1.0);       // after
  EXPECT_DOUBLE_EQ(inj.link_factor(0, 2e6), 1.0);       // other node
  EXPECT_DOUBLE_EQ(inj.min_link_factor(2e6), 0.25);
  EXPECT_DOUBLE_EQ(inj.min_link_factor(0.0), 1.0);
}

TEST(FaultInjector, FlappingLinkFollowsDutyCycle) {
  const FaultPlan plan =
      FaultPlan::parse("flap:node=0@factor=0.1@period=1000@duty=0.5");
  const FaultInjector inj(plan, 2, 1);
  EXPECT_DOUBLE_EQ(inj.link_factor(0, 100.0), 0.1);   // first half: active
  EXPECT_DOUBLE_EQ(inj.link_factor(0, 700.0), 1.0);   // second half: off
  EXPECT_DOUBLE_EQ(inj.link_factor(0, 1100.0), 0.1);  // periodic
}

TEST(FaultInjector, StragglerInflatesComputeFactor) {
  const FaultPlan plan = FaultPlan::parse("straggle:rank=2@factor=3");
  const FaultInjector inj(plan, 4, 2);
  EXPECT_DOUBLE_EQ(inj.compute_factor(2, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(1, 0.0), 1.0);
}

// --- liveness / adoption -------------------------------------------------

TEST(FaultInjector, CrashLevelLookup) {
  const FaultPlan plan =
      FaultPlan::parse("crash:rank=3@level=4,crash:rank=1@level=2");
  const FaultInjector inj(plan, 4, 2);
  EXPECT_EQ(inj.crash_level(3), 4);
  EXPECT_EQ(inj.crash_level(1), 2);
  EXPECT_EQ(inj.crash_level(0), -1);
}

TEST(FaultInjector, AdoptionPrefersSameNode) {
  FaultInjector inj(FaultPlan::parse("seed:1"), 8, 2);  // 4 nodes x ppn 2
  EXPECT_FALSE(inj.any_dead());
  inj.mark_dead(3);  // node 1 = ranks {2, 3}
  EXPECT_TRUE(inj.dead(3));
  EXPECT_EQ(inj.dead_count(), 1);
  EXPECT_EQ(inj.adopter_of(3), 2);  // same-node survivor
  EXPECT_EQ(inj.parts_of(2), (std::vector<int>{2, 3}));
  EXPECT_EQ(inj.parts_of(0), (std::vector<int>{0}));
}

TEST(FaultInjector, AdoptionFallsBackAcrossNodes) {
  FaultInjector inj(FaultPlan::parse("seed:1"), 8, 2);
  inj.mark_dead(2);
  inj.mark_dead(3);  // whole node 1 dead
  EXPECT_EQ(inj.adopter_of(2), 0);  // lowest live overall
  EXPECT_EQ(inj.adopter_of(3), 0);
  EXPECT_EQ(inj.parts_of(0), (std::vector<int>{0, 2, 3}));
}

TEST(FaultInjector, LeaderAndRecorderElection) {
  FaultInjector inj(FaultPlan::parse("seed:1"), 8, 2);
  EXPECT_EQ(inj.lowest_live(), 0);
  EXPECT_EQ(inj.lowest_live_local(1), 0);  // local index of rank 2
  inj.mark_dead(0);
  EXPECT_EQ(inj.lowest_live(), 1);
  inj.mark_dead(2);
  EXPECT_EQ(inj.lowest_live_local(1), 1);  // local index of rank 3
  inj.mark_dead(3);
  EXPECT_EQ(inj.lowest_live_local(1), -1);  // node 1 fully dead
}

TEST(FaultInjector, ResetDynamicRevivesEveryone) {
  FaultInjector inj(FaultPlan::parse("seed:1"), 4, 1);
  inj.mark_dead(1);
  inj.mark_dead(2);
  EXPECT_EQ(inj.dead_count(), 2);
  inj.reset_dynamic();
  EXPECT_EQ(inj.dead_count(), 0);
  EXPECT_FALSE(inj.dead(1));
  EXPECT_EQ(inj.lowest_live(), 0);
}

TEST(FaultInjector, MarkDeadIsIdempotent) {
  FaultInjector inj(FaultPlan::parse("seed:1"), 4, 1);
  inj.mark_dead(1);
  inj.mark_dead(1);
  EXPECT_EQ(inj.dead_count(), 1);
}

}  // namespace
}  // namespace numabfs::faults
