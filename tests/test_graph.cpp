#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "graph/partition.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"

namespace numabfs::graph {
namespace {

// --- Csr -----------------------------------------------------------------

TEST(Csr, BuildsSymmetricAdjacency) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {3, 3}};
  const Csr g = Csr::from_edges(4, edges);
  EXPECT_EQ(g.num_directed_edges(), 6u);  // self-loop dropped
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  // symmetric: u in adj(v) <=> v in adj(u)
  for (Vertex v = 0; v < 4; ++v)
    for (Vertex u : g.neighbors(v)) {
      const auto nb = g.neighbors(u);
      EXPECT_NE(std::find(nb.begin(), nb.end(), v), nb.end());
    }
}

TEST(Csr, KeepsDuplicateEdges) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {1, 0}};
  const Csr g = Csr::from_edges(2, edges);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 3u);
}

TEST(Csr, SortedDedupCanonicalizesRows) {
  // The dynamic graph layer's policy: rows sorted, duplicates collapsed —
  // the canonical form every merged view and compaction rebuild shares.
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {1, 0}, {2, 0}, {0, 2}};
  const Csr g = Csr::from_edges(3, edges, EdgePolicy::sorted_dedup);
  EXPECT_EQ(g.degree(0), 2u);  // {1, 2}, not 4 halves
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  for (Vertex v = 0; v < 3; ++v) {
    const auto nb = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    EXPECT_EQ(std::adjacent_find(nb.begin(), nb.end()), nb.end());
  }
}

TEST(Csr, DeleteThenReinsertRoundTripsDegree) {
  // Under sorted_dedup, deleting an edge and re-inserting it (even several
  // times over, as an LSM delta stream may) restores the exact degrees —
  // the invariant that lets tombstone + re-insert round-trip the graph.
  RmatParams p;
  p.scale = 8;
  p.edgefactor = 8;
  auto edges = rmat_edges(p);
  const Csr before = Csr::from_edges(p.num_vertices(), edges,
                                     EdgePolicy::sorted_dedup);
  // Pick the first non-self-loop edge, "delete" it, then re-insert twice.
  std::size_t pick = 0;
  while (pick < edges.size() && edges[pick].u == edges[pick].v) ++pick;
  ASSERT_LT(pick, edges.size());
  const Edge e = edges[pick];
  edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(pick));
  edges.push_back(e);
  edges.push_back(e);  // duplicate re-insert collapses back to one
  const Csr after = Csr::from_edges(p.num_vertices(), edges,
                                    EdgePolicy::sorted_dedup);
  ASSERT_EQ(after.num_directed_edges(), before.num_directed_edges());
  for (Vertex v = 0; v < p.num_vertices(); ++v) {
    ASSERT_EQ(after.degree(v), before.degree(v)) << "vertex " << v;
    const auto a = after.neighbors(v);
    const auto b = before.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_edges(5, {});
  EXPECT_EQ(g.num_directed_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

// --- Partition1D ----------------------------------------------------------

TEST(Partition, CoversExactlyOnce) {
  for (std::uint64_t n : {64ull, 100ull, 1000ull, 4096ull}) {
    for (int np : {1, 2, 3, 8, 16}) {
      Partition1D part(n, np);
      std::uint64_t covered = 0;
      for (int r = 0; r < np; ++r) {
        // Non-empty blocks start word-aligned; empty tails clip to n.
        EXPECT_TRUE(part.begin(r) % 64 == 0 || part.begin(r) == n)
            << part.begin(r);
        EXPECT_LE(part.begin(r), part.end(r));
        covered += part.size(r);
        for (std::uint64_t v = part.begin(r); v < part.end(r); ++v)
          EXPECT_EQ(part.owner(v), r);
      }
      EXPECT_EQ(covered, n) << "n=" << n << " np=" << np;
      EXPECT_GE(part.padded_bits(), n);
      EXPECT_EQ(part.padded_bits() % 64, 0u);
    }
  }
}

TEST(Partition, EqualBlocksForPowerOfTwo) {
  Partition1D part(1 << 12, 16);
  for (int r = 0; r < 16; ++r) EXPECT_EQ(part.size(r), (1u << 12) / 16);
}

// --- DistGraph -------------------------------------------------------------

TEST(DistGraph, PreservesAllEdgesBothViews) {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 8;
  const auto edges = rmat_edges(p);
  const Csr g = Csr::from_edges(p.num_vertices(), edges);
  const Partition1D part(g.num_vertices(), 8);
  const DistGraph d = DistGraph::build(g, part);

  std::uint64_t bu_total = 0, td_total = 0;
  for (const auto& lg : d.locals) {
    bu_total += lg.bu_adj.size();
    td_total += lg.td_adj.size();
    // td view is the transpose of the bu view: same multiset of pairs.
    EXPECT_EQ(lg.bu_adj.size(), lg.td_adj.size());
    // groups are sorted and offsets consistent
    EXPECT_TRUE(std::is_sorted(lg.td_keys.begin(), lg.td_keys.end()));
    EXPECT_EQ(lg.td_offsets.size(), lg.td_keys.size() + 1);
    EXPECT_EQ(lg.td_offsets.back(), lg.td_adj.size());
    // every td target is owned
    for (Vertex v : lg.td_adj) {
      EXPECT_GE(v, lg.vbegin);
      EXPECT_LT(v, lg.vend);
    }
  }
  EXPECT_EQ(bu_total, g.num_directed_edges());
  EXPECT_EQ(td_total, g.num_directed_edges());
}

TEST(DistGraph, BottomUpRowsMatchCsr) {
  RmatParams p;
  p.scale = 9;
  p.edgefactor = 4;
  const auto edges = rmat_edges(p);
  const Csr g = Csr::from_edges(p.num_vertices(), edges);
  const Partition1D part(g.num_vertices(), 4);
  const DistGraph d = DistGraph::build(g, part);
  for (const auto& lg : d.locals) {
    for (std::uint64_t lv = 0; lv < lg.owned(); ++lv) {
      const auto mine = lg.bu_neighbors(lv);
      const auto ref = g.neighbors(static_cast<Vertex>(lg.vbegin + lv));
      ASSERT_EQ(mine.size(), ref.size());
      EXPECT_TRUE(std::equal(mine.begin(), mine.end(), ref.begin()));
    }
  }
}

// --- reference BFS + validation -------------------------------------------

TEST(ReferenceBfs, SmallPath) {
  // 0-1-2-3 path plus isolated 4
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const Csr g = Csr::from_edges(5, edges);
  const BfsTree t = reference_bfs(g, 0);
  EXPECT_EQ(t.visited, 4u);
  EXPECT_EQ(t.parent[0], 0u);
  EXPECT_EQ(t.parent[1], 0u);
  EXPECT_EQ(t.parent[2], 1u);
  EXPECT_EQ(t.parent[3], 2u);
  EXPECT_EQ(t.parent[4], kNoVertex);
  EXPECT_EQ(t.depth[3], 3u);
}

TEST(Validate, AcceptsReferenceTree) {
  RmatParams p;
  p.scale = 10;
  const auto edges = rmat_edges(p);
  const Csr g = Csr::from_edges(p.num_vertices(), edges);
  Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  const BfsTree t = reference_bfs(g, root);
  const auto r = validate_bfs_tree(g, root, t.parent);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.visited, t.visited);
  EXPECT_GT(r.traversed_edges(), 0u);
}

TEST(Validate, PostDeleteIsolatedVerticesAreUnreachable) {
  // A post-delete snapshot: vertex 2's edges were all tombstoned away.
  // The isolated vertex validates as unreachable — counted, not an error.
  const std::vector<Edge> edges = {{0, 1}, {1, 3}};
  const Csr g = Csr::from_edges(4, edges, EdgePolicy::sorted_dedup);
  const BfsTree t = reference_bfs(g, 0);
  const auto r = validate_bfs_tree(g, 0, t.parent);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.visited, 3u);
  EXPECT_EQ(r.isolated, 1u);
}

TEST(Validate, IsolatedRootIsValidSingletonTree) {
  // Deletes can fully strand the query's root; the singleton tree is valid.
  const std::vector<Edge> edges = {{1, 2}};
  const Csr g = Csr::from_edges(3, edges, EdgePolicy::sorted_dedup);
  const BfsTree t = reference_bfs(g, 0);
  const auto r = validate_bfs_tree(g, 0, t.parent);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.visited, 1u);
  EXPECT_EQ(r.isolated, 1u);
  EXPECT_EQ(r.traversed_edges(), 0u);
}

TEST(Validate, RejectsTreeReachingIsolatedVertex) {
  // A stale tree claiming to reach a fully-tombstoned vertex must fail
  // with the specific isolated-vertex diagnosis.
  const std::vector<Edge> edges = {{0, 1}};
  const Csr g = Csr::from_edges(3, edges, EdgePolicy::sorted_dedup);
  std::vector<Vertex> par = {0, 0, 1};  // vertex 2 has no edges anymore
  const auto r = validate_bfs_tree(g, 0, par);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("isolated"), std::string::npos) << r.error;
}

struct Corruption {
  const char* name;
  void (*apply)(const Csr&, Vertex, std::vector<Vertex>&);
};

void corrupt_root(const Csr&, Vertex root, std::vector<Vertex>& par) {
  par[root] = root == 0 ? 1 : 0;
}
void corrupt_fake_edge(const Csr& g, Vertex root, std::vector<Vertex>& par) {
  // point some visited vertex at a non-neighbor
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
    if (v == root || par[v] == kNoVertex) continue;
    const auto nb = g.neighbors(static_cast<Vertex>(v));
    for (Vertex cand = 0; cand < g.num_vertices(); ++cand) {
      if (cand == v) continue;
      if (par[cand] == kNoVertex) continue;  // keep visited set intact
      if (std::find(nb.begin(), nb.end(), cand) == nb.end()) {
        par[v] = cand;
        return;
      }
    }
  }
}
void corrupt_drop_vertex(const Csr& g, Vertex root, std::vector<Vertex>& par) {
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
    if (v != root && par[v] != kNoVertex) {
      par[v] = kNoVertex;
      return;
    }
}
void corrupt_cycle(const Csr& g, Vertex root, std::vector<Vertex>& par) {
  // create a 2-cycle between adjacent visited vertices u-v
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
    if (v == root || par[v] == kNoVertex) continue;
    for (Vertex u : g.neighbors(static_cast<Vertex>(v))) {
      if (u == root || par[u] == kNoVertex) continue;
      par[v] = u;
      par[u] = static_cast<Vertex>(v);
      return;
    }
  }
}

class ValidateRejects : public ::testing::TestWithParam<int> {};

TEST_P(ValidateRejects, CorruptedTrees) {
  static const Corruption kCorruptions[] = {
      {"wrong-root", corrupt_root},
      {"fake-edge", corrupt_fake_edge},
      {"dropped-vertex", corrupt_drop_vertex},
      {"parent-cycle", corrupt_cycle},
  };
  RmatParams p;
  p.scale = 9;
  const auto edges = rmat_edges(p);
  const Csr g = Csr::from_edges(p.num_vertices(), edges);
  Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  const BfsTree t = reference_bfs(g, root);
  ASSERT_GT(t.visited, 3u);

  const Corruption& c = kCorruptions[GetParam()];
  std::vector<Vertex> par = t.parent;
  c.apply(g, root, par);
  ASSERT_NE(par, t.parent) << c.name << ": corruption was a no-op";
  const auto r = validate_bfs_tree(g, root, par);
  EXPECT_FALSE(r.ok) << c.name << " accepted";
}

INSTANTIATE_TEST_SUITE_P(Corruptions, ValidateRejects, ::testing::Range(0, 4));

}  // namespace
}  // namespace numabfs::graph
