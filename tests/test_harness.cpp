#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

namespace numabfs::harness {
namespace {

TEST(HarmonicMean, Basics) {
  EXPECT_DOUBLE_EQ(harmonic_mean({2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(harmonic_mean({1.0, 1.0, 1.0}), 1.0);
  // Harmonic mean is dominated by the slowest iteration.
  EXPECT_NEAR(harmonic_mean({1.0, 100.0}), 1.98, 0.01);
  EXPECT_DOUBLE_EQ(harmonic_mean({}), 0.0);
  EXPECT_LE(harmonic_mean({3.0, 6.0}), (3.0 + 6.0) / 2.0);  // HM <= AM
}

TEST(HarmonicMean, InvalidSampleNaNMarksTheAggregate) {
  // A zero/negative/non-finite TEPS sample means one run produced no valid
  // figure of merit: the series aggregate is undefined, and reporting 0.0
  // (or an Inf-driven value) would read as a real measurement downstream.
  // NaN-mark instead — the same policy mean()/percentile() apply per-sample.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isnan(harmonic_mean({0.0, 5.0})));
  EXPECT_TRUE(std::isnan(harmonic_mean({-1.0, 5.0})));
  EXPECT_TRUE(std::isnan(harmonic_mean({nan, 5.0})));
  EXPECT_TRUE(std::isnan(harmonic_mean({inf, 5.0})));
  EXPECT_TRUE(std::isnan(harmonic_mean({0.0})));
  // Valid series are unaffected.
  EXPECT_DOUBLE_EQ(harmonic_mean({2.0, 2.0}), 2.0);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean({-2.0, 2.0}), 0.0);
}

TEST(Percentile, OrderStatisticsAndInterpolation) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
  // Input order must not matter (the helper sorts its copy).
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0, 4.0}, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 100), 4.0);
  // Linear interpolation between order statistics (type-7): for 5 points,
  // p90 sits 0.6 of the way from the 4th to the 5th value.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0, 40.0, 50.0}, 90), 46.0);
  // Out-of-range p clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 140), 2.0);
  // p50 of an even-length input is the midpoint of the middle pair.
  EXPECT_DOUBLE_EQ(percentile({1.0, 9.0}, 50), 5.0);
}

TEST(Percentile, SkipsNonFiniteSamples) {
  // NaN marks a missing sample (e.g. a query that never completed); it must
  // deflate the sample count, not poison the sort order or pull the
  // percentiles toward 0.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(percentile({nan, 3.0, 1.0, nan, 2.0}, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile({nan, 3.0, 1.0, nan, 2.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({nan, 3.0, 1.0, nan, 2.0}, 100), 3.0);
  EXPECT_DOUBLE_EQ(percentile({inf, -inf, 5.0}, 50), 5.0);
  // All samples missing behaves like the empty input.
  EXPECT_DOUBLE_EQ(percentile({nan, nan}, 95), 0.0);
  // A single surviving sample is every percentile.
  EXPECT_DOUBLE_EQ(percentile({nan, 42.0}, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({nan, 42.0}, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile({nan, 42.0}, 100), 42.0);
}

TEST(Mean, SkipsNonFiniteSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(mean({nan, 2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean({nan, nan}), 0.0);
}

TEST(GraphBundle, RootsAreDistinctAndSearchable) {
  const GraphBundle b = GraphBundle::make(12, 16, 5, 32);
  EXPECT_GT(b.roots.size(), 8u);
  std::set<graph::Vertex> seen;
  for (graph::Vertex r : b.roots) {
    EXPECT_GT(b.csr.degree(r), 0u) << "isolated root selected";
    EXPECT_TRUE(seen.insert(r).second) << "duplicate root";
  }
}

TEST(GraphBundle, DeterministicForSeed) {
  const GraphBundle a = GraphBundle::make(10, 16, 7, 8);
  const GraphBundle b = GraphBundle::make(10, 16, 7, 8);
  EXPECT_EQ(a.roots, b.roots);
  EXPECT_EQ(a.csr.num_directed_edges(), b.csr.num_directed_edges());
}

TEST(Experiment, EvalResultConsistency) {
  const GraphBundle b = GraphBundle::make(11, 16, 5, 8);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 4;
  Experiment e(b, eo);
  const EvalResult r = e.run(bfs::original(), 4);
  EXPECT_EQ(r.roots, 4);
  EXPECT_EQ(r.per_root.size(), 4u);
  EXPECT_GT(r.harmonic_teps, 0.0);
  EXPECT_GT(r.mean_time_ns, 0.0);
  EXPECT_GE(r.bu_comm_fraction, 0.0);
  EXPECT_LE(r.bu_comm_fraction, 1.0);
  // Harmonic mean never exceeds the fastest iteration.
  double best = 0;
  for (const auto& rr : r.per_root) best = std::max(best, rr.teps());
  EXPECT_LE(r.harmonic_teps, best + 1e-6);
}

TEST(Experiment, CapsRootsAtBundleSize) {
  const GraphBundle b = GraphBundle::make(10, 16, 5, 3);
  ExperimentOptions eo;
  eo.nodes = 1;
  eo.ppn = 4;
  Experiment e(b, eo);
  EXPECT_EQ(e.run(bfs::original(), 100).roots,
            static_cast<int>(b.roots.size()));
}

TEST(Experiment, RejectsInvalidConfig) {
  const GraphBundle b = GraphBundle::make(10, 16, 5, 2);
  ExperimentOptions eo;
  Experiment e(b, eo);
  bfs::Config bad;
  bad.parallel_allgather = true;
  EXPECT_THROW(e.run(bad, 1), std::invalid_argument);
}

TEST(Options, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--scale=20", "--flag", "--name=abc",
                        "--ratio=2.5"};
  Options o(5, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("scale", 0), 20);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_EQ(o.get_str("name", ""), "abc");
  EXPECT_DOUBLE_EQ(o.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(o.get_int("missing", 7), 7);
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, RejectsPositionalArgs) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Options(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Options, ValidatesNumericValues) {
  const char* argv[] = {"prog", "--scale=-3", "--ratio=abc", "--count=12x",
                        "--weak-factor=1.5", "--granularity=100"};
  Options o(6, const_cast<char**>(argv));
  // Range validators reject with actionable messages...
  EXPECT_THROW(o.get_int_min("scale", 1, 1), std::invalid_argument);
  EXPECT_THROW(o.get_double_in("weak-factor", 0.5, 0.0, 1.0, true),
               std::invalid_argument);
  EXPECT_THROW(o.get_u64_pow2("granularity", 64), std::invalid_argument);
  // ...as do malformed or partially-numeric values anywhere.
  EXPECT_THROW(o.get_double("ratio", 0.0), std::invalid_argument);
  EXPECT_THROW(o.get_int("count", 0), std::invalid_argument);
  try {
    o.get_int_min("scale", 1, 1);
    FAIL() << "negative scale must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--scale=-3"), std::string::npos)
        << e.what();
  }
}

TEST(Options, InRangeValuesPassValidation) {
  const char* argv[] = {"prog", "--scale=16", "--weak-factor=0.5",
                        "--granularity=256"};
  Options o(4, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int_min("scale", 1, 1), 16);
  EXPECT_DOUBLE_EQ(o.get_double_in("weak-factor", 1.0, 0.0, 1.0, true), 0.5);
  EXPECT_EQ(o.get_u64_pow2("granularity", 64), 256u);
  // Defaults pass through untouched when the key is absent.
  EXPECT_EQ(o.get_int_min("missing", 9, 1), 9);
}

TEST(Table, AlignsColumnsAndFormats) {
  Table t({"name", "value"});
  t.row({"a", "1"});
  t.row({"long-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Header and the two rows and a separator.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);

  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::ms(2.5e6, 1), "2.5 ms");
  EXPECT_EQ(Table::gteps(39.2e9, 1), "39.2 GTEPS");
  EXPECT_EQ(Table::pct(0.544, 1), "54.4%");
}

}  // namespace
}  // namespace numabfs::harness

namespace numabfs::harness {
namespace {

TEST(GraphBundle, FromExternalEdges) {
  // An external (non-R-MAT) graph goes through the same pipeline.
  std::vector<graph::Edge> edges;
  for (graph::Vertex v = 1; v < 300; ++v)
    edges.push_back({static_cast<graph::Vertex>(v / 3), v});
  const GraphBundle b = GraphBundle::from_edges(300, edges, 5, 8);
  EXPECT_EQ(b.csr.num_vertices(), 300u);
  EXPECT_GE(b.params.scale, 9);
  ASSERT_FALSE(b.roots.empty());
  for (graph::Vertex r : b.roots) EXPECT_GT(b.csr.degree(r), 0u);

  ExperimentOptions eo;
  eo.nodes = 1;
  eo.ppn = 4;
  Experiment e(b, eo);
  const EvalResult res = e.run(bfs::original(), 2);
  EXPECT_GT(res.harmonic_teps, 0.0);
  EXPECT_EQ(res.visited_mean, 300u);  // the tree graph is connected
}

TEST(GraphBundle, FromEdgesRejectsEmpty) {
  EXPECT_THROW(GraphBundle::from_edges(0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace numabfs::harness
