/// Property tests pinning the 2-D decomposition's communication-volume laws
/// (DESIGN.md §13). The byte counts in Level2dTrace are exact functions of
/// the grid shape, so any regression in the transpose/expand/fold/return
/// paths shows up as a broken conservation law rather than a flaky
/// perf number:
///   - expand (column allgather) raw bytes  == np * (R-1) * piece_bytes
///     on EVERY level — per-rank volume O(n/C), the term that beats the
///     1-D allgather's O(n);
///   - claim-return (row allgather) raw     == np * (C-1) * piece_bytes
///     on every level followed by a bottom-up level, else 0;
///   - transpose raw == piece_bytes * (np - #fixed points of the
///     transpose map) on every level;
///   - with the codec off, wire == raw on every leg.
/// And the cross-shape invariant: nf/mf/rem are global allreduced sums, so
/// the direction history — hence visited set, level count, and parents'
/// validity — cannot depend on the grid shape, the codec, or the
/// collective hierarchy.

#include "bfs2d/bfs2d.hpp"

#include <gtest/gtest.h>

#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "numasim/topology.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs2d {
namespace {

graph::Csr make_csr(int scale, std::uint64_t seed = 13) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = 8;
  p.seed = seed;
  return graph::Csr::from_edges(p.num_vertices(), graph::rmat_edges(p));
}

graph::Vertex first_root(const graph::Csr& g) {
  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  return root;
}

int transpose_fixed_points(const Grid2d& g) {
  int fixed = 0;
  for (int p = 0; p < g.np(); ++p)
    if (g.transpose_dest(p) == p) ++fixed;
  return fixed;
}

struct Shape {
  int nodes, ppn, rows, cols;
};

// Grid shapes spanning square, wide, tall, and multi-node rows.
const Shape kShapes[] = {
    {4, 4, 4, 4},   // square, rows span one node
    {2, 4, 2, 4},   // wide
    {4, 2, 4, 2},   // tall (C == ppn)
    {4, 4, 2, 8},   // wide, rows span two nodes
};

void check_volume_laws(const Bfs2dResult& r, const Grid2d& g,
                       bool codec_off) {
  const std::uint64_t piece_bytes = g.piece_bits() / 8;
  const std::uint64_t np = static_cast<std::uint64_t>(g.np());
  const std::uint64_t expand_law =
      np * static_cast<std::uint64_t>(g.rows() - 1) * piece_bytes;
  const std::uint64_t return_law =
      np * static_cast<std::uint64_t>(g.cols() - 1) * piece_bytes;
  const std::uint64_t transpose_law =
      piece_bytes *
      (np - static_cast<std::uint64_t>(transpose_fixed_points(g)));
  for (size_t i = 0; i < r.trace.size(); ++i) {
    const Level2dTrace& lt = r.trace[i];
    SCOPED_TRACE("level " + std::to_string(lt.level));
    EXPECT_EQ(lt.expand_raw_bytes, expand_law);
    EXPECT_EQ(lt.transpose_raw_bytes, transpose_law);
    // The claim return runs exactly when the NEXT level is bottom-up.
    const bool next_bu = i + 1 < r.trace.size() && r.trace[i + 1].direction == 1;
    EXPECT_EQ(lt.return_raw_bytes, next_bu ? return_law : 0u);
    if (codec_off) {
      EXPECT_EQ(lt.expand_wire_bytes, lt.expand_raw_bytes);
      EXPECT_EQ(lt.transpose_wire_bytes, lt.transpose_raw_bytes);
      EXPECT_EQ(lt.fold_wire_bytes, lt.fold_raw_bytes);
      EXPECT_EQ(lt.return_wire_bytes, lt.return_raw_bytes);
    } else {
      // The fold gate is byte-based: coded only when strictly smaller.
      EXPECT_LE(lt.fold_wire_bytes, lt.fold_raw_bytes);
    }
  }
}

TEST(Bfs2dVolume, ExpandFollowsTheColBandLawAcrossShapes) {
  const graph::Csr g = make_csr(10);
  const graph::Vertex root = first_root(g);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(std::to_string(s.rows) + "x" + std::to_string(s.cols));
    const Grid2d grid(g.num_vertices(), s.rows, s.cols);
    const DistGraph2d d = DistGraph2d::build(g, grid);
    rt::Cluster c(sim::Topology::xeon_x7550_cluster(s.nodes),
                  sim::CostParams{}, s.ppn);
    for (bool codec : {false, true}) {
      Bfs2dOptions o;
      o.codec = codec ? bfs::CodecMode::gate : bfs::CodecMode::off;
      o.exchange_chunks = codec ? 2 : 1;
      o.hier = codec ? rt::coll_model::HierLevel::node
                     : rt::coll_model::HierLevel::flat;
      const Bfs2dResult r = run_bfs_2d(c, d, root, nullptr, o);
      ASSERT_GT(r.levels, 1);
      check_volume_laws(r, grid, /*codec_off=*/!codec);
    }
  }
}

TEST(Bfs2dVolume, PerRankExpandShrinksWithTheColumnCount) {
  // The law itself: total expand volume is np*(R-1)*piece = (R-1)/R * n/8
  // per rank-level... so the PER-RANK share (R-1)*piece_bytes ~ n/C falls
  // as the grid widens, while the 1-D equivalent stays (np-1)*n/np ~ n.
  const graph::Csr g = make_csr(10);
  const Grid2d tall(g.num_vertices(), 8, 2);
  const Grid2d wide(g.num_vertices(), 2, 8);
  const std::uint64_t per_rank_tall =
      static_cast<std::uint64_t>(tall.rows() - 1) * tall.piece_bits() / 8;
  const std::uint64_t per_rank_wide =
      static_cast<std::uint64_t>(wide.rows() - 1) * wide.piece_bits() / 8;
  EXPECT_LT(per_rank_wide, per_rank_tall);
  const std::uint64_t one_d = (16 - 1) * (tall.padded() / 16) / 8;
  EXPECT_LT(per_rank_wide, one_d);
  // And the measured trace agrees with the closed form.
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(4), sim::CostParams{}, 4);
  const DistGraph2d d = DistGraph2d::build(g, wide);
  const Bfs2dResult r = run_bfs_2d(c, d, first_root(g));
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace[0].expand_raw_bytes / 16, per_rank_wide);
}

TEST(Bfs2dInvariance, ResultsIdenticalAcrossShapesCodecAndHierarchy) {
  const graph::Csr g = make_csr(10, 99);
  const graph::Vertex root = first_root(g);

  std::vector<graph::Vertex> ref_parent;
  std::vector<int> ref_directions;
  std::uint64_t ref_visited = 0;
  bool have_ref = false;

  for (const Shape& s : kShapes) {
    const Grid2d grid(g.num_vertices(), s.rows, s.cols);
    const DistGraph2d d = DistGraph2d::build(g, grid);
    rt::Cluster c(sim::Topology::xeon_x7550_cluster(s.nodes),
                  sim::CostParams{}, s.ppn);
    for (int mode = 0; mode < 3; ++mode) {
      SCOPED_TRACE(std::to_string(s.rows) + "x" + std::to_string(s.cols) +
                   " mode " + std::to_string(mode));
      Bfs2dOptions o;
      if (mode >= 1) {
        o.codec = bfs::CodecMode::gate;
        o.exchange_chunks = 4;
      }
      if (mode == 2) o.hier = rt::coll_model::HierLevel::node;
      std::vector<graph::Vertex> parent;
      const Bfs2dResult r = run_bfs_2d(c, d, root, &parent, o);
      const auto v = graph::validate_bfs_tree(g, root, parent);
      ASSERT_TRUE(v.ok) << v.error;
      if (!have_ref) {
        ref_parent = parent;
        ref_directions = r.directions;
        ref_visited = r.visited;
        have_ref = true;
        // The hybrid must actually exercise both kernels for this test to
        // mean anything.
        EXPECT_GT(r.td_levels, 0);
        EXPECT_GT(r.bu_levels, 0);
        continue;
      }
      // nf/mf/rem are global sums: the Beamer history cannot depend on the
      // shape, the codec, or the collective hierarchy...
      EXPECT_EQ(r.directions, ref_directions);
      EXPECT_EQ(r.visited, ref_visited);
      // ...and neither can the tree's reachability (parents may differ only
      // if tie-breaking differed — it must not, the claim order is fixed).
      EXPECT_EQ(parent, ref_parent);
    }
  }
}

TEST(Bfs2dInvariance, ForcedCodecsKeepTheRawEquivalentLaw) {
  // Forcing a codec changes the wire bytes (encodings carry headers) but
  // never the raw-equivalent accounting: the volume law stays exact, so
  // compression ratios computed from the trace remain meaningful.
  const graph::Csr g = make_csr(9);
  const Grid2d grid(g.num_vertices(), 4, 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(4), sim::CostParams{}, 4);
  const std::uint64_t expand_law = static_cast<std::uint64_t>(grid.np()) *
                                   (grid.rows() - 1) * grid.piece_bits() / 8;
  for (bfs::CodecMode m :
       {bfs::CodecMode::force_sparse, bfs::CodecMode::force_dense}) {
    Bfs2dOptions o;
    o.codec = m;
    const Bfs2dResult r = run_bfs_2d(c, d, first_root(g), nullptr, o);
    for (const Level2dTrace& lt : r.trace) {
      EXPECT_EQ(lt.expand_raw_bytes, expand_law);
      EXPECT_GT(lt.expand_wire_bytes, 0u);
    }
  }
}

TEST(Bfs2dVolume, FoldMovesWholeClaimPairs) {
  // Fold raw bytes come in whole (child, parent) pairs — 8 bytes each with
  // 32-bit vertices (own-column claims never ride the wire, so the count is
  // at most the cross-column claims) — and every level's discoveries sum to
  // the visited count.
  const graph::Csr g = make_csr(10);
  const Grid2d grid(g.num_vertices(), 4, 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(4), sim::CostParams{}, 4);
  const Bfs2dResult r = run_bfs_2d(c, d, first_root(g));
  std::uint64_t discovered = 1;  // the root
  bool any_fold_bytes = false;
  for (const Level2dTrace& lt : r.trace) {
    EXPECT_EQ(lt.fold_raw_bytes % (2 * sizeof(graph::Vertex)), 0u);
    any_fold_bytes |= lt.fold_raw_bytes > 0;
    discovered += lt.discovered;
  }
  EXPECT_TRUE(any_fold_bytes);
  EXPECT_EQ(discovered, r.visited);
}

}  // namespace
}  // namespace numabfs::bfs2d
