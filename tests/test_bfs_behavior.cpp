#include <gtest/gtest.h>

#include "bfs/hybrid.hpp"
#include "harness/graph500.hpp"

namespace numabfs {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

const GraphBundle& bundle12() {
  static const GraphBundle b = GraphBundle::make(12, 16, 99, 4);
  return b;
}

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  return o;
}

TEST(BfsBehavior, VirtualTimeIsDeterministic) {
  // Bit-identical virtual time across repeated runs, regardless of host
  // thread scheduling — the core guarantee of the simulator.
  Experiment e(bundle12(), shape(2, 8));
  const bfs::Config cfg = bfs::par_allgather();
  bfs::DistState st(e.dist(), cfg, 2, 8);
  const auto a = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  const auto b = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  EXPECT_DOUBLE_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.directions, b.directions);
  EXPECT_EQ(a.profile_avg.counters().edges_scanned,
            b.profile_avg.counters().edges_scanned);
}

TEST(BfsBehavior, HybridFollowsThreePhasePattern) {
  // R-MAT frontiers ramp up then down: top-down, then bottom-up, then
  // top-down again (Section II.A). Directions must be td* bu+ td*.
  Experiment e(bundle12(), shape(2, 8));
  bfs::DistState st(e.dist(), bfs::original(), 2, 8);
  const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  ASSERT_GE(r.levels, 3);
  EXPECT_GT(r.bu_levels, 0);
  // No td level may appear between two bu levels' start and end.
  int transitions = 0;
  for (int i = 1; i < r.levels; ++i)
    if (r.directions[i] != r.directions[i - 1]) ++transitions;
  EXPECT_LE(transitions, 2) << "more than one td->bu->td cycle";
  EXPECT_EQ(r.directions.front(), 0) << "must start top-down";
}

TEST(BfsBehavior, ForcedDirectionsNeverSwitch) {
  Experiment e(bundle12(), shape(2, 4));
  for (auto d : {bfs::Direction::top_down_only, bfs::Direction::bottom_up_only}) {
    bfs::Config cfg;
    cfg.direction = d;
    bfs::DistState st(e.dist(), cfg, 2, 4);
    const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
    for (int dir : r.directions)
      EXPECT_EQ(dir, d == bfs::Direction::top_down_only ? 0 : 1);
  }
}

TEST(BfsBehavior, CounterLawsHold) {
  Experiment e(bundle12(), shape(2, 8));
  bfs::DistState st(e.dist(), bfs::original(), 2, 8);
  const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  const auto& c = r.profile_avg.counters();  // counters are summed over ranks
  // Every bottom-up edge scan probes the summary exactly once; a probe
  // either skips or goes to in_queue.
  EXPECT_EQ(c.summary_probes, c.summary_zero_skips + c.inqueue_probes);
  // Every visited vertex (minus the root) was discovered exactly once.
  EXPECT_EQ(c.vertices_visited + 1, r.visited);
  // Bottom-up hits can't exceed in_queue probes.
  EXPECT_LE(c.frontier_hits, c.inqueue_probes);
  EXPECT_GT(c.edges_scanned, 0u);
}

TEST(BfsBehavior, ProfileTotalEqualsVirtualTime) {
  // Every nanosecond of the run must be attributed to some phase.
  Experiment e(bundle12(), shape(2, 8));
  bfs::DistState st(e.dist(), bfs::granularity(256), 2, 8);
  const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  // Ranks end clock-aligned, so each rank's profile total equals time_ns.
  for (const auto& prof : e.cluster().profiles())
    EXPECT_NEAR(prof.total_ns(), r.time_ns, r.time_ns * 1e-9 + 1e-6);
}

TEST(BfsBehavior, SharingReducesBottomUpComm) {
  // The headline mechanism: each sharing level strictly reduces the
  // bottom-up communication time on a multi-node run.
  const GraphBundle b = GraphBundle::make(13, 16, 7, 2);
  Experiment e(b, shape(4, 8));
  double prev = 1e300;
  for (const auto& cfg : {bfs::original(), bfs::share_in_queue(),
                          bfs::share_all(), bfs::par_allgather()}) {
    const auto res = e.run(cfg, 2);
    const double comm = res.profile.get(sim::Phase::bu_comm);
    EXPECT_LT(comm, prev) << cfg.name();
    prev = comm;
  }
}

TEST(BfsBehavior, GranularityRaisesSkipRateMonotonically) {
  // Larger granularity -> fewer zero bits -> lower zero-skip rate
  // (Fig. 8's disadvantage side), measured, not modeled.
  const GraphBundle b = GraphBundle::make(13, 16, 7, 2);
  Experiment e(b, shape(2, 8));
  double prev_rate = 1.1;
  for (std::uint64_t g : {64ull, 256ull, 1024ull, 4096ull}) {
    const auto res = e.run(bfs::granularity(g), 2);
    const auto& c = res.profile.counters();
    const double rate = c.summary_probes
                            ? static_cast<double>(c.summary_zero_skips) /
                                  static_cast<double>(c.summary_probes)
                            : 0.0;
    EXPECT_LE(rate, prev_rate + 1e-12) << "g=" << g;
    prev_rate = rate;
  }
}

TEST(BfsBehavior, WeakNodeSlowsCluster) {
  const GraphBundle b = GraphBundle::make(12, 16, 7, 2);
  ExperimentOptions ok = shape(4, 8);
  ExperimentOptions weak = shape(4, 8);
  weak.weak_node = 3;
  weak.weak_node_factor = 0.3;
  Experiment eok(b, ok), eweak(b, weak);
  const double t_ok = eok.run(bfs::original(), 2).harmonic_teps;
  const double t_weak = eweak.run(bfs::original(), 2).harmonic_teps;
  EXPECT_GT(t_ok, t_weak);
}

TEST(BfsBehavior, MoreNodesMoveMoreInterNodeBytes) {
  const GraphBundle b = GraphBundle::make(12, 16, 7, 2);
  Experiment e2(b, shape(2, 8)), e4(b, shape(4, 8));
  const auto r2 = e2.run(bfs::original(), 1);
  const auto r4 = e4.run(bfs::original(), 1);
  EXPECT_GT(r4.profile.counters().bytes_inter_node,
            r2.profile.counters().bytes_inter_node);
}

TEST(BfsBehavior, StallReflectsLoadImbalance) {
  // A scale-free graph under 1-D partitioning always leaves some ranks
  // with more edges; barrier stall must be visible but not dominant.
  Experiment e(bundle12(), shape(2, 8));
  bfs::DistState st(e.dist(), bfs::original(), 2, 8);
  const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  const double stall = r.profile_avg.get(sim::Phase::stall);
  EXPECT_GT(stall, 0.0);
  EXPECT_LT(stall, 0.5 * r.time_ns);
}

TEST(BfsBehavior, TepsAccountingMatchesTraversedEdges) {
  Experiment e(bundle12(), shape(2, 8));
  bfs::DistState st(e.dist(), bfs::original(), 2, 8);
  const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, bundle12().roots[0]);
  EXPECT_NEAR(r.teps() * (r.time_ns * 1e-9),
              static_cast<double>(r.traversed_edges()), 1.0);
  EXPECT_GT(r.traversed_edges(), 0u);
}

}  // namespace
}  // namespace numabfs

namespace numabfs {
namespace {

TEST(BfsBehavior, BitmapExchangeBytesFollowEq1) {
  // Forced bottom-up: every exchange is the bitmap allgather, so each
  // rank's counted comm bytes are exactly
  // bu_exchanges * (np - 1) * block_bytes (the paper's Eq. (1) per copy).
  using harness::Experiment;
  using harness::ExperimentOptions;
  using harness::GraphBundle;
  const GraphBundle b = GraphBundle::make(11, 16, 31, 2);
  ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 4;
  Experiment e(b, eo);
  bfs::Config cfg;
  cfg.direction = bfs::Direction::bottom_up_only;
  bfs::DistState st(e.dist(), cfg, 2, 4);
  const auto r = bfs::run_bfs(e.cluster(), e.dist(), st, b.roots[0]);

  const std::uint64_t np = 8;
  const std::uint64_t block_bytes = e.dist().part.block() / 8;
  const std::uint64_t expect =
      static_cast<std::uint64_t>(r.bu_exchanges) * (np - 1) * block_bytes * np;
  const auto& c = r.profile_avg.counters();  // summed over ranks
  EXPECT_EQ(c.bytes_intra_node + c.bytes_inter_node, expect);
}

TEST(BfsBehavior, VisitedSetIndependentOfClusterShape) {
  using harness::Experiment;
  using harness::ExperimentOptions;
  using harness::GraphBundle;
  const GraphBundle b = GraphBundle::make(11, 16, 37, 2);
  std::vector<std::uint64_t> visited;
  for (auto [nodes, ppn] : {std::pair{1, 2}, {1, 8}, {4, 4}}) {
    ExperimentOptions eo;
    eo.nodes = nodes;
    eo.ppn = ppn;
    Experiment e(b, eo);
    bfs::DistState st(e.dist(), bfs::original(), nodes, ppn);
    visited.push_back(
        bfs::run_bfs(e.cluster(), e.dist(), st, b.roots[0]).visited);
  }
  EXPECT_EQ(visited[0], visited[1]);
  EXPECT_EQ(visited[1], visited[2]);
}

}  // namespace
}  // namespace numabfs
