// Cross-cutting property tests: monotonicity and linearity of the cost
// model, and invariance properties the reproduction methodology relies on
// (DESIGN.md §5, docs/MODEL.md).

#include <gtest/gtest.h>

#include "harness/graph500.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs {
namespace {

namespace cm = rt::coll_model;

TEST(ModelProperties, FlatRingMonotoneInChunk) {
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(4), sim::CostParams{}, 8);
  double prev = 0;
  for (std::uint64_t chunk = 1 << 10; chunk <= (8u << 20); chunk *= 8) {
    const double t = cm::flat_ring(c, chunk).total_ns;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ModelProperties, LeaderAllgatherMonotoneInFlows) {
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(8), sim::CostParams{}, 8);
  double prev = 1e300;
  for (int flows : {1, 2, 4, 8}) {
    const double t =
        cm::leader_allgather(c, 1 << 20, false, false, flows).total_ns;
    EXPECT_LE(t, prev) << flows;
    prev = t;
  }
}

TEST(ModelProperties, StepsAreAdditive) {
  // leader_allgather totals decompose exactly into their selected steps.
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(8), sim::CostParams{}, 8);
  const std::uint64_t chunk = 1 << 18;
  const auto full = cm::leader_allgather(c, chunk, true, true, 1);
  EXPECT_DOUBLE_EQ(full.total_ns,
                   full.gather_ns + full.inter_ns + full.bcast_ns);
  const auto no_gather = cm::leader_allgather(c, chunk, false, true, 1);
  EXPECT_DOUBLE_EQ(no_gather.total_ns, full.total_ns - full.gather_ns);
}

TEST(ModelProperties, ProbeCostMonotoneInStructureSize) {
  sim::MemModel mem(sim::CostParams{}, sim::Topology::xeon_x7550_cluster(1));
  double prev = 0;
  for (std::uint64_t s = 1 << 16; s <= (4ull << 30); s *= 16) {
    const double p = mem.probe_ns(sim::Placement::socket_local, s, 1, false);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

class MlpSweep : public ::testing::TestWithParam<double> {};

TEST_P(MlpSweep, MoreOverlapNeverSlower) {
  sim::CostParams a;
  a.memory_parallelism = GetParam();
  sim::CostParams b = a;
  b.memory_parallelism = GetParam() * 2;
  sim::MemModel ma(a, sim::Topology::xeon_x7550_cluster(1));
  sim::MemModel mb(b, sim::Topology::xeon_x7550_cluster(1));
  for (auto p : {sim::Placement::socket_local, sim::Placement::interleaved,
                 sim::Placement::single_home})
    EXPECT_GE(ma.probe_ns(p, 1ull << 30, 1, true),
              mb.probe_ns(p, 1ull << 30, 1, true));
}

INSTANTIATE_TEST_SUITE_P(Overlap, MlpSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

TEST(ModelProperties, VirtualTimeIsLinearInUnitCosts) {
  // Scaling every latency x2 and every bandwidth x0.5 must scale a BFS's
  // virtual time by exactly 2 — the model composes charges linearly.
  const harness::GraphBundle b = harness::GraphBundle::make(11, 16, 5, 2);
  harness::ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 4;

  harness::ExperimentOptions eo2 = eo;
  sim::CostParams& p = eo2.params;
  for (double* lat : {&p.llc_hit_ns, &p.remote_cache_ns, &p.local_dram_ns,
                      &p.remote_dram_ns, &p.remote_dram_2hop_ns,
                      &p.nic_msg_latency_ns, &p.edge_work_ns,
                      &p.probe_work_ns, &p.stream_word_ns})
    *lat *= 2.0;
  for (double* bw : {&p.local_bw, &p.qpi_bw, &p.shm_copy_bw,
                     &p.socket_mem_ceiling, &p.node_copy_ceiling,
                     &p.nic_port_bw})
    *bw *= 0.5;

  harness::Experiment e1(b, eo);
  harness::Experiment e2(b, eo2);
  const auto r1 = e1.run(bfs::par_allgather(), 2);
  const auto r2 = e2.run(bfs::par_allgather(), 2);
  EXPECT_NEAR(r2.mean_time_ns / r1.mean_time_ns, 2.0, 1e-9);
  EXPECT_NEAR(r1.harmonic_teps / r2.harmonic_teps, 2.0, 1e-9);
}

TEST(ModelProperties, SpeedupRatiosScaleInvariant) {
  // The methodology's core claim: with paper-faithful scaling, the ratio
  // between variants is (approximately) independent of the graph scale.
  const auto ratio_at = [](int scale) {
    const harness::GraphBundle b = harness::GraphBundle::make(scale, 16, 11, 2);
    harness::ExperimentOptions eo;
    eo.nodes = 4;
    eo.ppn = 8;
    harness::Experiment e(b, eo);
    const double orig = e.run(bfs::original(), 2).harmonic_teps;
    const double opt = e.run(bfs::par_allgather(), 2).harmonic_teps;
    return opt / orig;
  };
  const double r12 = ratio_at(12);
  const double r14 = ratio_at(14);
  // Graph structure itself varies with scale (frontier shapes), so allow a
  // generous band — but the ratios must not drift systematically.
  EXPECT_NEAR(r14 / r12, 1.0, 0.30);
}

TEST(ModelProperties, WeakScalingCommGrowsComputeDoesNot) {
  // The paper's Section IV.C observation, as a property: under weak
  // scaling, per-rank computation stays roughly flat while the per-phase
  // communication grows with the node count.
  const auto measure = [](int nodes, int scale) {
    const harness::GraphBundle b =
        harness::GraphBundle::make(scale, 16, 13, 2);
    harness::ExperimentOptions eo;
    eo.nodes = nodes;
    eo.ppn = 8;
    harness::Experiment e(b, eo);
    const auto r = e.run(bfs::original(), 2);
    return std::pair{r.profile.get(sim::Phase::bu_comp),
                     r.avg_bu_comm_phase_ns};
  };
  const auto [comp2, comm2] = measure(2, 12);
  const auto [comp8, comm8] = measure(8, 14);
  EXPECT_GT(comm8, 1.5 * comm2);             // communication grows
  EXPECT_LT(std::abs(comp8 - comp2), comp2);  // computation roughly flat
}

TEST(ModelProperties, CountersAreScaleFree) {
  // Zero-skip rate is a graph property, not a model property: it must be
  // identical across cost-parameter changes.
  const harness::GraphBundle b = harness::GraphBundle::make(12, 16, 5, 2);
  harness::ExperimentOptions a;
  a.nodes = 2;
  a.ppn = 8;
  harness::ExperimentOptions slow = a;
  slow.params.local_dram_ns *= 3.0;
  harness::Experiment e1(b, a), e2(b, slow);
  const auto r1 = e1.run(bfs::granularity(256), 2);
  const auto r2 = e2.run(bfs::granularity(256), 2);
  EXPECT_EQ(r1.profile.counters().summary_zero_skips,
            r2.profile.counters().summary_zero_skips);
  EXPECT_EQ(r1.profile.counters().edges_scanned,
            r2.profile.counters().edges_scanned);
}

}  // namespace
}  // namespace numabfs
