/// \file test_dynamic_graph.cpp
/// Property tests of the dynamic graph layer (DESIGN.md §14). The central
/// contract: a query served against a pinned merged view (base ⊕ deltas at
/// epoch E) is bit-identical to the same query served against a CSR
/// rebuilt from scratch at E — across the 1-D hybrid kernel, the 2-D
/// engine, the MS-BFS wave kernel, and under a chaos fault plan. Plus a
/// delta-store fuzz against a reference shadow map with interleaved
/// inserts, deletes and compactions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "bfs2d/bfs2d.hpp"
#include "engine/engine.hpp"
#include "engine/msbfs.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/dynamic/compactor.hpp"
#include "graph/dynamic/delta_store.hpp"
#include "graph/dynamic/ingest.hpp"
#include "graph/dynamic/snapshot.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::dyn {
namespace {

using graph::Csr;
using graph::Edge;
using graph::EdgePolicy;
using graph::Partition1D;
using graph::Vertex;
using rt::Cluster;

// One fixture world: a scale-9 canonical base, an 8-rank cluster (2 nodes
// x 4 ppn) and a seeded mutation stream — small enough for ctest, big
// enough that merged rows, dropped td groups and tombstoned vertices all
// actually occur.
constexpr int kNodes = 2;
constexpr int kPpn = 4;

graph::RmatParams base_params() {
  graph::RmatParams p;
  p.scale = 9;
  p.edgefactor = 8;
  return p;
}

Cluster make_cluster() {
  return Cluster(sim::Topology::xeon_x7550_cluster(kNodes), sim::CostParams{},
                 kPpn);
}

Csr base_csr() {
  const auto p = base_params();
  return Csr::from_edges(p.num_vertices(), graph::rmat_edges(p),
                         EdgePolicy::sorted_dedup);
}

std::vector<EdgeOp> ops_for_epoch(std::uint64_t seed, std::uint64_t nops) {
  IngestConfig ic;
  ic.base = base_params();
  ic.seed = seed;
  IngestGenerator gen(ic);
  return gen.next_batch(nops);
}

/// Advance the manager a few epochs with a seeded stream.
void ingest_epochs(SnapshotManager& mgr, int epochs, std::uint64_t nops,
                   std::uint64_t seed = 7) {
  IngestConfig ic;
  ic.base = base_params();
  ic.seed = seed;
  IngestGenerator gen(ic);
  for (int e = 0; e < epochs; ++e) mgr.ingest(gen.next_batch(nops));
}

Vertex first_live_root(const Csr& g) {
  Vertex r = 0;
  while (g.degree(r) == 0) ++r;
  return r;
}

void expect_same_csr(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()));
  const auto aa = a.adj();
  const auto ba = b.adj();
  ASSERT_TRUE(std::equal(aa.begin(), aa.end(), ba.begin(), ba.end()));
}

// ---------------------------------------------------------------------------
// Delta-store fuzz vs a reference shadow map
// ---------------------------------------------------------------------------

/// The shadow model: the live undirected edge set as a plain std::set of
/// (min, max) pairs. Every epoch the rebuilt canonical CSR must equal the
/// CSR built directly from the shadow — with compactions interleaved, so
/// base swaps, truncated memtables and re-asserted base edges all cross
/// the comparison.
TEST(DeltaStoreFuzz, RebuildMatchesShadowMapAcrossCompactions) {
  const Cluster c = make_cluster();
  const Csr base = base_csr();
  const auto p = base_params();
  Partition1D part(p.num_vertices(), c.nranks());
  SnapshotManager mgr(c, base, part);

  std::set<std::pair<Vertex, Vertex>> shadow;
  for (Vertex u = 0; u < p.num_vertices(); ++u)
    for (Vertex v : base.neighbors(u))
      if (u < v) shadow.insert({u, v});

  std::uint64_t rng = 0x5eed;
  for (int e = 1; e <= 12; ++e) {
    const auto ops = ops_for_epoch(static_cast<std::uint64_t>(e) * 101, 400);
    for (const EdgeOp& op : ops) {
      if (op.u == op.v || op.u >= p.num_vertices() ||
          op.v >= p.num_vertices())
        continue;
      const auto key = std::minmax(op.u, op.v);
      if (op.remove)
        shadow.erase({key.first, key.second});
      else
        shadow.insert({key.first, key.second});
    }
    mgr.ingest(ops);

    std::vector<Edge> edges;
    edges.reserve(shadow.size());
    for (const auto& [u, v] : shadow) edges.push_back({u, v});
    const Csr want =
        Csr::from_edges(p.num_vertices(), edges, EdgePolicy::sorted_dedup);
    const Csr got = mgr.rebuild_csr(mgr.epoch());
    expect_same_csr(got, want);

    // Spot-check resolve() against the shadow: presence through the LSM
    // (base containment overridden by the last delta record) must agree.
    for (int probe = 0; probe < 64; ++probe) {
      rng = graph::splitmix64(rng);
      const Vertex u = static_cast<Vertex>(rng % p.num_vertices());
      rng = graph::splitmix64(rng);
      const Vertex v = static_cast<Vertex>(rng % p.num_vertices());
      if (u == v) continue;
      const int owner = part.owner(u);
      const int r = mgr.store(owner).resolve(u, v, mgr.epoch());
      const auto nb = mgr.base().csr.neighbors(u);
      const bool in_base = std::binary_search(nb.begin(), nb.end(), v);
      // resolve: -1 = no record (base membership stands), 0 = deleted,
      // 1 = inserted.
      const bool present = r == 1 || (r == -1 && in_base);
      const auto key = std::minmax(u, v);
      EXPECT_EQ(present, shadow.count({key.first, key.second}) != 0)
          << "epoch " << e << " edge (" << u << "," << v << ")";
    }

    // Interleave compactions; the epoch after a compaction reads from a
    // fresh base with empty memtables.
    if (e % 4 == 0) {
      const CompactionStats cs = mgr.compact();
      EXPECT_EQ(cs.epoch, mgr.epoch());
      EXPECT_EQ(mgr.live_records(), 0u);
      const Csr after = mgr.rebuild_csr(mgr.epoch());
      expect_same_csr(after, want);
    }
  }
}

TEST(DeltaStore, ResolveIsLastWinsAcrossEpochs) {
  DeltaStore ds(0, 64);
  ds.append({{5, 9, 1, false}});             // e1: insert
  ds.append({{5, 9, 2, true}});              // e2: delete
  ds.append({{5, 9, 4, false}, {5, 3, 4, true}});  // e4: re-insert
  // resolve: -1 = no record (base stands), 0 = deleted, 1 = inserted.
  EXPECT_EQ(ds.resolve(5, 9, 0), -1);  // before any record
  EXPECT_EQ(ds.resolve(5, 9, 1), 1);
  EXPECT_EQ(ds.resolve(5, 9, 2), 0);
  EXPECT_EQ(ds.resolve(5, 9, 3), 0);   // e3 sees e2's tombstone
  EXPECT_EQ(ds.resolve(5, 9, 4), 1);
  EXPECT_EQ(ds.resolve(5, 3, 4), 0);
  EXPECT_EQ(ds.resolve(7, 7, 4), -1);  // no record at all
  EXPECT_EQ(ds.tombstones(), 2u);
}

// ---------------------------------------------------------------------------
// Pinned merged views vs from-scratch rebuilds
// ---------------------------------------------------------------------------

TEST(Snapshot, MergedRowsMatchRebuiltCsr) {
  const Cluster c = make_cluster();
  const auto p = base_params();
  Partition1D part(p.num_vertices(), c.nranks());
  SnapshotManager mgr(c, base_csr(), part);
  ingest_epochs(mgr, 3, 600);

  const auto snap = mgr.pin(mgr.epoch());
  EXPECT_GT(snap->deltas_applied, 0u);
  EXPECT_GT(snap->patched_rows, 0u);
  const Csr want = mgr.rebuild_csr(snap->epoch);
  const graph::DistGraph& dg = snap->dg();
  for (int r = 0; r < c.nranks(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    for (std::uint64_t lv = 0; lv < lg.vend - lg.vbegin; ++lv) {
      const Vertex v = static_cast<Vertex>(lg.vbegin + lv);
      const auto got = lg.bu_neighbors(lv);
      const auto ref = want.neighbors(v);
      ASSERT_EQ(got.size(), ref.size()) << "vertex " << v;
      ASSERT_TRUE(std::equal(got.begin(), got.end(), ref.begin(), ref.end()))
          << "vertex " << v;
    }
  }
}

TEST(Snapshot, PinnedEpochSurvivesCompaction) {
  const Cluster c = make_cluster();
  const auto p = base_params();
  Partition1D part(p.num_vertices(), c.nranks());
  SnapshotManager mgr(c, base_csr(), part);
  ingest_epochs(mgr, 2, 500);

  const std::uint64_t e1 = mgr.epoch();
  const Csr at_e1 = mgr.rebuild_csr(e1);  // reference taken BEFORE compaction
  const auto snap = mgr.pin(e1);

  ingest_epochs(mgr, 2, 500, 99);
  const CompactionStats cs = mgr.compact();
  EXPECT_GT(cs.records_folded, 0u);
  EXPECT_GT(cs.bytes_merged, 0u);
  EXPECT_GT(cs.merge_ns, 0.0);
  EXPECT_GT(cs.pause_ns, 0.0);

  // The old pinned view still reads epoch e1's rows, even though the
  // manager's base moved past it and e1 can no longer be re-pinned.
  const graph::DistGraph& dg = snap->dg();
  for (int r = 0; r < c.nranks(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    for (std::uint64_t lv = 0; lv < lg.vend - lg.vbegin; ++lv) {
      const Vertex v = static_cast<Vertex>(lg.vbegin + lv);
      const auto got = lg.bu_neighbors(lv);
      const auto ref = at_e1.neighbors(v);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), ref.begin(), ref.end()))
          << "vertex " << v;
    }
  }
  EXPECT_THROW((void)mgr.pin(e1 - 1), std::out_of_range);
}

TEST(Compactor, FillTriggerFiresAndResets) {
  const Cluster c = make_cluster();
  const auto p = base_params();
  Partition1D part(p.num_vertices(), c.nranks());
  SnapshotManager mgr(c, base_csr(), part);
  CompactorPolicy pol;
  pol.fill_trigger = 0.02;
  pol.min_records = 64;
  Compactor bg(mgr, pol);

  EXPECT_FALSE(bg.due());
  ingest_epochs(mgr, 2, 800);
  ASSERT_TRUE(bg.due());
  const auto cs = bg.maybe_compact();
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(mgr.live_records(), 0u);
  EXPECT_FALSE(bg.due());
  EXPECT_EQ(bg.compactions(), 1u);
}

// ---------------------------------------------------------------------------
// Kernel bit-identity: 1-D hybrid, 2-D, MS-BFS, chaos
// ---------------------------------------------------------------------------

struct World {
  Cluster cluster = make_cluster();
  Partition1D part{base_params().num_vertices(), kNodes * kPpn};
  SnapshotManager mgr{cluster, base_csr(), part};
};

TEST(DynamicBfs, HybridBitIdenticalToRebuildAtPinnedEpoch) {
  World w;
  ingest_epochs(w.mgr, 3, 700);
  const auto snap = w.mgr.pin(w.mgr.epoch());
  const Csr rebuilt = w.mgr.rebuild_csr(snap->epoch);
  const graph::DistGraph ref_dg = graph::DistGraph::build(rebuilt, w.part);

  const bfs::Config cfg = bfs::share_all();
  const Vertex root = first_live_root(rebuilt);

  bfs::DistState st_m(snap->dg(), cfg, kNodes, kPpn);
  const auto rm = bfs::run_bfs(w.cluster, snap->dg(), st_m, root);
  const auto pm = bfs::gather_parents(snap->dg(), st_m);

  bfs::DistState st_r(ref_dg, cfg, kNodes, kPpn);
  const auto rr = bfs::run_bfs(w.cluster, ref_dg, st_r, root);
  const auto pr = bfs::gather_parents(ref_dg, st_r);

  // Same tree, same traversal structure — only the modeled time differs
  // (the merged view charges delta probes; the rebuilt CSR reads clean).
  EXPECT_EQ(rm.visited, rr.visited);
  EXPECT_EQ(rm.levels, rr.levels);
  EXPECT_EQ(rm.directions, rr.directions);
  EXPECT_EQ(rm.traversed_directed_edges, rr.traversed_directed_edges);
  ASSERT_EQ(pm, pr);
  EXPECT_GT(rm.profile_avg.counters().delta_probes, 0u);
  EXPECT_EQ(rr.profile_avg.counters().delta_probes, 0u);
  EXPECT_GT(rm.time_ns, rr.time_ns);  // read amplification is time, not bits

  const auto val = graph::validate_bfs_tree(rebuilt, root, pm);
  ASSERT_TRUE(val.ok) << val.error;
  EXPECT_EQ(val.visited, rm.visited);
}

TEST(DynamicBfs2d, PinnedEpochCsrServesTheTwoDEngine) {
  World w;
  ingest_epochs(w.mgr, 3, 700);
  const std::uint64_t e = w.mgr.epoch();
  const Csr at_e = w.mgr.rebuild_csr(e);

  // The 2-D path consumes the snapshot's canonical CSR; its tree must
  // validate against that exact epoch and visit the same component as the
  // serial reference over the shadow graph.
  bfs2d::Grid2d grid(at_e.num_vertices(), 2, 4);
  const auto dg2 = bfs2d::DistGraph2d::build(at_e, grid);
  const Vertex root = first_live_root(at_e);
  std::vector<Vertex> parent;
  const auto r2 = bfs2d::run_bfs_2d(w.cluster, dg2, root, &parent);
  const auto val = graph::validate_bfs_tree(at_e, root, parent);
  ASSERT_TRUE(val.ok) << val.error;
  const auto ref = graph::reference_bfs(at_e, root);
  EXPECT_EQ(r2.visited, ref.visited);
  EXPECT_EQ(val.visited, ref.visited);
}

TEST(DynamicMsbfs, WaveBitIdenticalToRebuildAtPinnedEpoch) {
  World w;
  ingest_epochs(w.mgr, 3, 700);
  const auto snap = w.mgr.pin(w.mgr.epoch());
  const Csr rebuilt = w.mgr.rebuild_csr(snap->epoch);
  const graph::DistGraph ref_dg = graph::DistGraph::build(rebuilt, w.part);

  const bfs::Config cfg = bfs::share_all();
  std::vector<engine::WaveQuery> qs;
  Vertex root = first_live_root(rebuilt);
  for (int i = 0; i < 6; ++i) {
    engine::WaveQuery q;
    q.source = root;
    if (i == 4) q.kind = engine::QueryKind::st_reachability, q.target = 1;
    if (i == 5) q.kind = engine::QueryKind::k_hop, q.k = 3;
    qs.push_back(q);
    do { ++root; } while (rebuilt.degree(root) == 0);
  }

  engine::WaveState ws_m(snap->dg(), cfg, kNodes, kPpn);
  engine::WaveOptions wo;
  wo.epoch = snap->epoch;
  const auto wm = engine::run_wave(w.cluster, snap->dg(), ws_m, qs, wo);
  EXPECT_EQ(wm.epoch, snap->epoch);
  std::vector<std::vector<engine::Dist>> dists_m;
  for (std::size_t l = 0; l < qs.size(); ++l)
    dists_m.push_back(
        engine::gather_lane_distances(snap->dg(), ws_m, static_cast<int>(l)));

  engine::WaveState ws_r(ref_dg, cfg, kNodes, kPpn);
  const auto wr = engine::run_wave(w.cluster, ref_dg, ws_r, qs);
  for (std::size_t l = 0; l < qs.size(); ++l) {
    const auto dr =
        engine::gather_lane_distances(ref_dg, ws_r, static_cast<int>(l));
    ASSERT_EQ(dists_m[l], dr) << "lane " << l;
    EXPECT_EQ(wm.lanes[l].visited, wr.lanes[l].visited) << "lane " << l;
    EXPECT_EQ(wm.lanes[l].reached, wr.lanes[l].reached) << "lane " << l;
  }
  EXPECT_EQ(wm.levels, wr.levels);
}

TEST(DynamicChaos, CrashRecoveryOnMergedViewStillBitIdentical) {
  World w;
  ingest_epochs(w.mgr, 2, 600);
  const auto snap = w.mgr.pin(w.mgr.epoch());
  const Csr rebuilt = w.mgr.rebuild_csr(snap->epoch);

  w.cluster.set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("seed:42,crash:rank=3@level=2"),
      w.cluster.nranks(), w.cluster.ppn()));

  const bfs::Config cfg = bfs::share_all();
  const Vertex root = first_live_root(rebuilt);
  bfs::DistState st(snap->dg(), cfg, kNodes, kPpn);
  const auto r1 = bfs::run_bfs(w.cluster, snap->dg(), st, root);
  const auto p1 = bfs::gather_parents(snap->dg(), st);
  EXPECT_EQ(r1.ranks_lost, 1);
  EXPECT_GE(r1.recoveries, 1);

  // Survivor-adopted traversal over the merged view validates against the
  // from-scratch rebuild of the same epoch...
  const auto val = graph::validate_bfs_tree(rebuilt, root, p1);
  ASSERT_TRUE(val.ok) << val.error;

  // ...and the whole chaotic history is bit-reproducible.
  const auto r2 = bfs::run_bfs(w.cluster, snap->dg(), st, root);
  EXPECT_EQ(r1.time_ns, r2.time_ns);
  EXPECT_EQ(r1.visited, r2.visited);
}

// ---------------------------------------------------------------------------
// Epoch threading through the serving tier
// ---------------------------------------------------------------------------

TEST(DynamicServing, QueryEngineStampsPinnedEpochs) {
  World w;
  ingest_epochs(w.mgr, 2, 400);
  const std::uint64_t e = w.mgr.epoch();
  auto snap = w.mgr.pin(e);

  const bfs::Config cfg = bfs::share_all();
  engine::EngineConfig ec;
  ec.max_batch = 8;
  int pins = 0;
  ec.graph_source = [&](double) {
    ++pins;
    return engine::PinnedGraph{snap->epoch, snap->graph, snap->pin_ns};
  };
  engine::QueryEngine qe(w.cluster, w.mgr.base().dg, cfg, ec);

  engine::WorkloadSpec spec;
  spec.num_queries = 12;
  const auto queries =
      engine::QueryEngine::generate(w.mgr.base().dg, spec);
  const auto rep = qe.serve(queries);
  EXPECT_GT(pins, 0);
  for (const auto& r : rep.results) EXPECT_EQ(r.epoch, e) << "query " << r.id;
  // Pin cost is on the serving path: latency includes it.
  EXPECT_GT(snap->pin_ns, 0.0);
}

}  // namespace
}  // namespace numabfs::dyn
