#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/allgather.hpp"
#include "runtime/cluster.hpp"
#include "runtime/p2p.hpp"
#include "runtime/shared_space.hpp"

namespace numabfs::rt {
namespace {

sim::Topology topo(int nodes) { return sim::Topology::xeon_x7550_cluster(nodes); }

TEST(Cluster, RankMapping) {
  Cluster c(topo(4), sim::CostParams{}, 8);
  EXPECT_EQ(c.nranks(), 32);
  EXPECT_EQ(c.sockets_per_rank(), 1);
  EXPECT_EQ(c.node_of(0), 0);
  EXPECT_EQ(c.node_of(7), 0);
  EXPECT_EQ(c.node_of(8), 1);
  EXPECT_EQ(c.local_of(9), 1);
  EXPECT_EQ(c.world().size(), 32);
  EXPECT_EQ(c.node_comm(1).size(), 8);
  EXPECT_EQ(c.leaders().size(), 4);
  EXPECT_EQ(c.subgroup(3).size(), 4);
  EXPECT_EQ(c.subgroup(3).world_rank(2), 2 * 8 + 3);
}

TEST(Cluster, Ppn1SpansWholeNode) {
  Cluster c(topo(2), sim::CostParams{}, 1);
  EXPECT_EQ(c.nranks(), 2);
  EXPECT_EQ(c.sockets_per_rank(), 8);
  std::atomic<int> wrong{0};
  c.run([&](Proc& p) {
    if (p.threads != 64) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
}

TEST(Cluster, RejectsBadPpn) {
  EXPECT_THROW(Cluster(topo(1), sim::CostParams{}, 3), std::invalid_argument);
  EXPECT_THROW(Cluster(topo(1), sim::CostParams{}, 0), std::invalid_argument);
}

TEST(Cluster, RunExecutesEveryRankOnce) {
  Cluster c(topo(2), sim::CostParams{}, 8);
  std::vector<std::atomic<int>> hits(16);
  c.run([&](Proc& p) { hits[static_cast<size_t>(p.rank)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Barrier, AlignsClocksToMax) {
  Cluster c(topo(2), sim::CostParams{}, 8);
  std::vector<double> end_times(16);
  c.run([&](Proc& p) {
    // Every rank works a different amount, then barriers.
    p.charge(sim::Phase::other, 100.0 * (p.rank + 1));
    p.barrier(c.world(), sim::Phase::stall);
    end_times[static_cast<size_t>(p.rank)] = p.clock.now_ns();
  });
  for (double t : end_times) EXPECT_DOUBLE_EQ(t, 1600.0);
  // The slowest rank stalls zero; rank 0 stalls the most.
  EXPECT_DOUBLE_EQ(c.profiles()[0].get(sim::Phase::stall), 1500.0);
  EXPECT_DOUBLE_EQ(c.profiles()[15].get(sim::Phase::stall), 0.0);
}

TEST(Barrier, ProfileTotalsMatchClock) {
  Cluster c(topo(2), sim::CostParams{}, 4);
  c.run([&](Proc& p) {
    p.charge(sim::Phase::td_comp, 50.0 * (p.rank % 3 + 1));
    p.barrier(c.world(), sim::Phase::stall);
    p.charge(sim::Phase::bu_comp, 10.0);
    p.barrier(c.world(), sim::Phase::stall);
    EXPECT_NEAR(p.prof.total_ns(), p.clock.now_ns(), 1e-9);
  });
}

TEST(Allreduce, SumAndMax) {
  Cluster c(topo(2), sim::CostParams{}, 8);
  c.run([&](Proc& p) {
    const std::uint64_t s = allreduce_sum(
        p, c.world(), static_cast<std::uint64_t>(p.rank), sim::Phase::other);
    EXPECT_EQ(s, 120u);  // 0+..+15
    const std::uint64_t m = allreduce_max(
        p, c.world(), static_cast<std::uint64_t>(p.rank * 3), sim::Phase::other);
    EXPECT_EQ(m, 45u);
  });
}

TEST(Allreduce, SubCommunicators) {
  Cluster c(topo(4), sim::CostParams{}, 8);
  c.run([&](Proc& p) {
    Comm& node = c.node_comm(p.node);
    const std::uint64_t s =
        allreduce_sum(p, node, 1, sim::Phase::other);
    EXPECT_EQ(s, 8u);
    Comm& sg = c.subgroup(p.local);
    const std::uint64_t s2 = allreduce_sum(p, sg, 10, sim::Phase::other);
    EXPECT_EQ(s2, 40u);
  });
}

class AllgatherAlgos : public ::testing::TestWithParam<AllgatherAlgo> {};

TEST_P(AllgatherAlgos, MovesDataCorrectly) {
  const AllgatherAlgo algo = GetParam();
  Cluster c(topo(4), sim::CostParams{}, 8);
  const size_t words = 16;
  std::vector<std::vector<std::uint64_t>> results(32);
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> chunk(words);
    for (size_t i = 0; i < words; ++i)
      chunk[i] = static_cast<std::uint64_t>(p.rank) * 1000 + i;
    std::vector<std::uint64_t> dst(words * 32, ~0ull);
    allgather(p, c.world(), chunk, dst, algo, sim::Phase::bu_comm);
    results[static_cast<size_t>(p.rank)] = std::move(dst);
  });
  for (int r = 0; r < 32; ++r)
    for (int src = 0; src < 32; ++src)
      for (size_t i = 0; i < words; ++i)
        ASSERT_EQ(results[r][static_cast<size_t>(src) * words + i],
                  static_cast<std::uint64_t>(src) * 1000 + i)
            << "algo=" << to_string(algo) << " r=" << r << " src=" << src;
}

TEST_P(AllgatherAlgos, ChargesIdenticalTimeToAllRanks) {
  const AllgatherAlgo algo = GetParam();
  Cluster c(topo(2), sim::CostParams{}, 8);
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> chunk(64, 1);
    std::vector<std::uint64_t> dst(64 * 16);
    allgather(p, c.world(), chunk, dst, algo, sim::Phase::bu_comm);
  });
  const double t0 = c.profiles()[0].get(sim::Phase::bu_comm);
  EXPECT_GT(t0, 0.0);
  for (const auto& pr : c.profiles())
    EXPECT_DOUBLE_EQ(pr.get(sim::Phase::bu_comm), t0);
}

INSTANTIATE_TEST_SUITE_P(Algos, AllgatherAlgos,
                         ::testing::Values(AllgatherAlgo::flat_ring,
                                           AllgatherAlgo::leader_ring,
                                           AllgatherAlgo::leader_rd));

TEST(Allgather, WorksOverSubCommunicators) {
  // Each subgroup (one member per node) allgathers independently — the
  // structure underlying the paper's Fig. 7.
  Cluster c(topo(4), sim::CostParams{}, 8);
  std::vector<std::vector<std::uint64_t>> results(32);
  c.run([&](Proc& p) {
    Comm& sg = c.subgroup(p.local);
    std::vector<std::uint64_t> chunk(4, static_cast<std::uint64_t>(p.rank));
    std::vector<std::uint64_t> dst(4 * 4);
    allgather(p, sg, chunk, dst, AllgatherAlgo::flat_ring,
              sim::Phase::bu_comm);
    results[static_cast<size_t>(p.rank)] = std::move(dst);
  });
  for (int r = 0; r < 32; ++r) {
    const int local = r % 8;
    for (int m = 0; m < 4; ++m)  // member m of the subgroup = node m
      for (int i = 0; i < 4; ++i)
        ASSERT_EQ(results[r][static_cast<size_t>(m) * 4 + i],
                  static_cast<std::uint64_t>(m * 8 + local))
            << "rank " << r;
  }
}

TEST(Allgather, LeadersCommSpansNodes) {
  Cluster c(topo(4), sim::CostParams{}, 8);
  c.run([&](Proc& p) {
    if (!p.is_node_leader()) return;  // only leaders participate
    std::vector<std::uint64_t> chunk(2, static_cast<std::uint64_t>(p.node));
    std::vector<std::uint64_t> dst(2 * 4);
    allgather(p, c.leaders(), chunk, dst, AllgatherAlgo::flat_ring,
              sim::Phase::bu_comm);
    for (int m = 0; m < 4; ++m)
      for (int i = 0; i < 2; ++i)
        EXPECT_EQ(dst[static_cast<size_t>(m) * 2 + i],
                  static_cast<std::uint64_t>(m));
  });
}

TEST(Allgather, ByteCountersFollowEq1) {
  // Paper Eq. (1): each rank receives chunk * (np - 1) bytes.
  Cluster c(topo(2), sim::CostParams{}, 4);
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> chunk(32, 7);
    std::vector<std::uint64_t> dst(32 * 8);
    allgather(p, c.world(), chunk, dst, AllgatherAlgo::flat_ring,
              sim::Phase::bu_comm);
    const auto& cnt = p.prof.counters();
    EXPECT_EQ(cnt.bytes_intra_node + cnt.bytes_inter_node, 32u * 8 * 7);
    EXPECT_EQ(cnt.bytes_intra_node, 32u * 8 * 3);  // 3 same-node peers
    EXPECT_EQ(cnt.bytes_inter_node, 32u * 8 * 4);  // 4 remote peers
  });
}

TEST(SharedSpace, SameBufferPerNodeKey) {
  SharedSpace ss;
  const auto a = ss.node_words(0, "q", 128);
  const auto b = ss.node_words(0, "q", 128);
  const auto other_node = ss.node_words(1, "q", 128);
  const auto other_key = ss.node_words(0, "r", 64);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_NE(a.data(), other_node.data());
  EXPECT_NE(a.data(), other_key.data());
  EXPECT_THROW(ss.node_words(0, "q", 64), std::invalid_argument);
  ss.clear();
  EXPECT_NO_THROW(ss.node_words(0, "q", 64));
}

TEST(SharedSpace, ConcurrentGetOrCreate) {
  SharedSpace ss;
  Cluster c(topo(2), sim::CostParams{}, 8);
  std::vector<std::uint64_t*> ptrs(16);
  c.run([&](Proc& p) {
    auto span = ss.node_words(p.node, "buf", 256);
    ptrs[static_cast<size_t>(p.rank)] = span.data();
  });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(ptrs[r], ptrs[0]);
  for (int r = 8; r < 16; ++r) EXPECT_EQ(ptrs[r], ptrs[8]);
  EXPECT_NE(ptrs[0], ptrs[8]);
}

TEST(SharedSpace, OverlappingClaimsByDifferentRanksAreDiagnosed) {
  SharedSpace ss;
  ss.node_words(0, "q", 128);
  ss.claim_write(0, "q", 0, 64, /*rank=*/0);
  try {
    ss.claim_write(0, "q", 60, 80, /*rank=*/1);
    FAIL() << "overlapping claim by another rank must throw";
  } catch (const std::logic_error& e) {
    // The diagnostic names both writers and both regions.
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("'q'"), std::string::npos) << what;
  }
}

TEST(SharedSpace, DisjointAndSameRankClaimsAreFine) {
  SharedSpace ss;
  ss.node_words(0, "q", 128);
  ss.claim_write(0, "q", 0, 64, 0);
  EXPECT_NO_THROW(ss.claim_write(0, "q", 64, 128, 1));  // disjoint
  EXPECT_NO_THROW(ss.claim_write(0, "q", 0, 32, 0));    // same rank again
  // Same region on a different key or node is a different buffer.
  EXPECT_NO_THROW(ss.claim_write(0, "other", 0, 64, 1));
  EXPECT_NO_THROW(ss.claim_write(1, "q", 0, 64, 1));
}

TEST(SharedSpace, PhaseBoundaryResetsClaims) {
  SharedSpace ss;
  ss.node_words(0, "q", 128);
  ss.claim_write(0, "q", 0, 128, 0);
  ss.begin_phase();  // the barrier: rank 0's writes are now published
  EXPECT_NO_THROW(ss.claim_write(0, "q", 0, 128, 1));
  ss.clear();  // full reset drops claims along with the buffers
  ss.node_words(0, "q", 128);
  EXPECT_NO_THROW(ss.claim_write(0, "q", 0, 128, 2));
}

TEST(P2p, RoundTripAndArrivalTime) {
  Cluster c(topo(2), sim::CostParams{}, 1);
  PostOffice po(c.nranks());
  c.run([&](Proc& p) {
    if (p.rank == 0) {
      std::vector<std::uint64_t> payload = {1, 2, 3};
      po.send(p, 1, payload, sim::Phase::other);
    } else {
      const auto got = po.recv(p, 0, sim::Phase::other);
      EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
      // Receiver cannot see the message before the modeled arrival.
      EXPECT_GT(p.clock.now_ns(), 0.0);
    }
  });
}

TEST(P2p, SmallMessagesPayNicLatencyOnlyAcrossNodes) {
  // For small payloads the NIC's per-message alpha dominates, so an
  // intra-node copy is much cheaper than an inter-node send.
  Cluster c(topo(2), sim::CostParams{}, 8);
  double intra = 0, inter = 0;
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> payload(8, 0);
    if (p.rank == 0) {
      PostOffice po(c.nranks());
      po.send(p, 1, payload, sim::Phase::other);  // same node
      intra = p.clock.now_ns();
      const double before = p.clock.now_ns();
      po.send(p, 8, payload, sim::Phase::other);  // other node
      inter = p.clock.now_ns() - before;
    }
  });
  EXPECT_GT(inter, intra);
  EXPECT_GT(inter, c.params().nic_msg_latency_ns);
}

TEST(P2p, LargeIntraNodeCopiesPayCicoPenalty) {
  // Large intra-node messages cross the CICO bounce buffer: their cost is
  // cico_factor x bytes / copy bandwidth — the effect that makes the
  // leader-based allgather's intra steps dominate in Fig. 6.
  Cluster c(topo(2), sim::CostParams{}, 8);
  c.run([&](Proc& p) {
    if (p.rank != 0) return;
    PostOffice po(c.nranks());
    std::vector<std::uint64_t> payload(1 << 15, 0);
    po.send(p, 1, payload, sim::Phase::other);
    const double bytes = static_cast<double>(payload.size()) * 8;
    const double expect =
        c.params().cico_factor * bytes / c.link().shm_flow_bw(1);
    EXPECT_NEAR(p.clock.now_ns(), expect, 1e-6);
  });
}

}  // namespace
}  // namespace numabfs::rt
