#include <gtest/gtest.h>

#include "numasim/phase_profile.hpp"
#include "numasim/topology.hpp"

namespace numabfs::sim {
namespace {

TEST(Topology, TableIPreset) {
  const Topology t = Topology::xeon_x7550_cluster(16);
  EXPECT_EQ(t.nodes(), 16);
  EXPECT_EQ(t.sockets_per_node(), 8);
  EXPECT_EQ(t.cores_per_socket(), 8);
  EXPECT_EQ(t.total_cores(), 1024);  // the paper's "thousand-core" platform
  EXPECT_EQ(t.llc_bytes_per_socket(), 18ull << 20);
  EXPECT_EQ(t.nic_ports_per_node(), 2);
  EXPECT_EQ(t.dram_bytes_per_socket() * 8, 256ull << 30);  // 256 GB/node
}

TEST(Topology, QpiHopsProperties) {
  const Topology t = Topology::xeon_x7550_cluster(1);
  for (int a = 0; a < 8; ++a) {
    EXPECT_EQ(t.qpi_hops(a, a), 0);
    int links = 0;
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.qpi_hops(a, b), t.qpi_hops(b, a));  // symmetric
      EXPECT_GE(t.qpi_hops(a, b), 1);
      EXPECT_LE(t.qpi_hops(a, b), 2);  // cube + diagonal: diameter 2
      links += t.qpi_hops(a, b) == 1;
    }
    EXPECT_EQ(links, 4);  // each X7550 has four QPI links (Table I)
  }
}

TEST(Topology, SmallMeshesFullyConnected) {
  Topology::Params p;
  p.sockets_per_node = 4;
  const Topology t(p);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      EXPECT_EQ(t.qpi_hops(a, b), a == b ? 0 : 1);
}

TEST(Topology, WeakNode) {
  const Topology t = Topology::xeon_x7550_cluster(16).with_weak_node(15, 0.5);
  EXPECT_DOUBLE_EQ(t.nic_factor(15), 0.5);
  EXPECT_DOUBLE_EQ(t.nic_factor(0), 1.0);
  EXPECT_EQ(t.weak_node(), 15);
}

TEST(Topology, InvalidParamsThrow) {
  Topology::Params p;
  p.nodes = 0;
  EXPECT_THROW(Topology{p}, std::invalid_argument);
  p.nodes = 2;
  p.weak_node = 2;  // out of range
  EXPECT_THROW(Topology{p}, std::invalid_argument);
  p.weak_node = -1;
  p.nic_ports_per_node = 0;
  EXPECT_THROW(Topology{p}, std::invalid_argument);
}

TEST(Topology, DescribeMentionsKeyFacts) {
  const std::string d = Topology::xeon_x7550_cluster(16).describe();
  EXPECT_NE(d.find("16 node"), std::string::npos);
  EXPECT_NE(d.find("8 sockets"), std::string::npos);
  EXPECT_NE(d.find("18 MB"), std::string::npos);
  EXPECT_NE(d.find("1024 cores"), std::string::npos);
}

TEST(PhaseProfile, AccumulateAndTotal) {
  PhaseProfile p;
  p.add(Phase::td_comp, 10);
  p.add(Phase::bu_comp, 30);
  p.add(Phase::bu_comm, 5);
  p.add(Phase::bu_comp, 30);
  EXPECT_DOUBLE_EQ(p.get(Phase::bu_comp), 60);
  EXPECT_DOUBLE_EQ(p.total_ns(), 75);
  EXPECT_DOUBLE_EQ(p.comm_ns(), 5);
}

TEST(PhaseProfile, SumMaxScale) {
  PhaseProfile a, b;
  a.add(Phase::td_comp, 10);
  b.add(Phase::td_comp, 30);
  b.add(Phase::stall, 4);
  a.counters().edges_scanned = 7;
  b.counters().edges_scanned = 3;

  PhaseProfile sum = a;
  sum += b;
  EXPECT_DOUBLE_EQ(sum.get(Phase::td_comp), 40);
  EXPECT_EQ(sum.counters().edges_scanned, 10u);

  PhaseProfile mx = a;
  mx.max_with(b);
  EXPECT_DOUBLE_EQ(mx.get(Phase::td_comp), 30);
  EXPECT_DOUBLE_EQ(mx.get(Phase::stall), 4);

  const PhaseProfile half = sum.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.get(Phase::td_comp), 20);
}

TEST(PhaseProfile, ClearResetsEverything) {
  PhaseProfile p;
  p.add(Phase::other, 5);
  p.counters().queue_writes = 3;
  p.clear();
  EXPECT_DOUBLE_EQ(p.total_ns(), 0);
  EXPECT_EQ(p.counters().queue_writes, 0u);
}

TEST(PhaseProfile, BreakdownStringMentionsActivePhases) {
  PhaseProfile p;
  p.add(Phase::bu_comp, 2e6);
  p.add(Phase::bu_comm, 1e6);
  const std::string s = p.breakdown();
  EXPECT_NE(s.find("bu_comp"), std::string::npos);
  EXPECT_NE(s.find("bu_comm"), std::string::npos);
  EXPECT_EQ(s.find("td_comp"), std::string::npos);  // zero phases omitted
}

}  // namespace
}  // namespace numabfs::sim
