// Exhaustive data-equivalence grid for the allgather family: every
// algorithm must produce byte-identical results over every (shape, chunk
// size) combination, charge strictly positive, shape-monotone time, and
// conserve bytes — the counters must obey the paper's Eq. (1) volume law
// m*(np-1), and with the exchange codec off the BFS wire volumes must be
// exactly the raw formulas of each collective plan (the codec's
// bytes_raw_equiv bookkeeping degenerates to the measured bytes).

#include <gtest/gtest.h>

#include <tuple>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "harness/graph500.hpp"
#include "runtime/allgather.hpp"

namespace numabfs::rt {
namespace {

// A tiny deterministic content generator shared by writer and checker.
std::uint64_t graph_hash(int rank, int word) {
  return 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(rank + 1) +
         static_cast<std::uint64_t>(word) * 0x2545f4914f6cdd1dull;
}

using Param = std::tuple<int /*nodes*/, int /*ppn*/, int /*words*/,
                         AllgatherAlgo>;

class AllgatherMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(AllgatherMatrix, DataIdenticalAcrossAlgorithms) {
  const auto [nodes, ppn, words, algo] = GetParam();
  Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{}, ppn);
  const int np = c.nranks();

  std::vector<std::vector<std::uint64_t>> results(static_cast<size_t>(np));
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> chunk(static_cast<size_t>(words));
    for (int i = 0; i < words; ++i)
      chunk[static_cast<size_t>(i)] = graph_hash(p.rank, i);
    std::vector<std::uint64_t> dst(static_cast<size_t>(words * np));
    allgather(p, c.world(), chunk, dst, algo, sim::Phase::bu_comm);
    results[static_cast<size_t>(p.rank)] = std::move(dst);
  });

  // Expected content is algorithm-independent.
  for (int r = 0; r < np; ++r) {
    ASSERT_EQ(results[static_cast<size_t>(r)].size(),
              static_cast<size_t>(words * np));
    for (int src = 0; src < np; ++src)
      for (int i = 0; i < words; ++i)
        ASSERT_EQ(results[static_cast<size_t>(r)]
                         [static_cast<size_t>(src * words + i)],
                  graph_hash(src, i))
            << "r=" << r << " src=" << src << " i=" << i;
    // Every rank sees the same bytes.
    ASSERT_EQ(results[static_cast<size_t>(r)], results[0]);
  }

  // Time must be positive whenever there is more than one rank.
  if (np > 1) {
    EXPECT_GT(c.profiles()[0].get(sim::Phase::bu_comm), 0.0);
  }

  // Eq. (1): every rank receives exactly m*(np-1) bytes, regardless of the
  // algorithm; and on the raw path the raw-equivalent counter tracks the
  // measured bytes exactly (byte conservation).
  const std::uint64_t m = static_cast<std::uint64_t>(words) * 8;
  for (int r = 0; r < np; ++r) {
    const auto& cnt = c.profiles()[static_cast<size_t>(r)].counters();
    EXPECT_EQ(cnt.bytes_intra_node + cnt.bytes_inter_node,
              m * static_cast<std::uint64_t>(np - 1))
        << "rank " << r;
    EXPECT_EQ(cnt.bytes_raw_equiv, cnt.bytes_intra_node + cnt.bytes_inter_node)
        << "rank " << r;
  }
}

std::string matrix_name(const ::testing::TestParamInfo<Param>& ti) {
  const auto [nodes, ppn, words, algo] = ti.param;
  return "n" + std::to_string(nodes) + "_p" + std::to_string(ppn) + "_w" +
         std::to_string(words) + "_" + to_string(algo);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllgatherMatrix,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 8),
                       ::testing::Values(1, 7, 64),
                       ::testing::Values(AllgatherAlgo::flat_ring,
                                         AllgatherAlgo::leader_ring,
                                         AllgatherAlgo::leader_rd)),
    matrix_name);

TEST(AllgatherMatrix, TimeMonotoneInChunkAndRanks) {
  // Charged time grows with chunk size at fixed shape, and with rank count
  // at fixed chunk (more data in flight either way).
  const auto charged = [](int nodes, int ppn, int words) {
    Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{},
              ppn);
    c.run([&](Proc& p) {
      std::vector<std::uint64_t> chunk(static_cast<size_t>(words), 1);
      std::vector<std::uint64_t> dst(
          static_cast<size_t>(words * c.nranks()));
      allgather(p, c.world(), chunk, dst, AllgatherAlgo::flat_ring,
                sim::Phase::bu_comm);
    });
    return c.profiles()[0].get(sim::Phase::bu_comm);
  };
  EXPECT_LT(charged(2, 8, 64), charged(2, 8, 512));
  EXPECT_LT(charged(2, 8, 64), charged(4, 8, 64));
}

// ---------------------------------------------------------------------------
// BFS wire-byte conservation (codec off)
// ---------------------------------------------------------------------------

// With the exchange codec off, every bitmap exchange must move exactly the
// closed-form volume of its collective plan — the codec refactor may not
// perturb the raw path by a single byte:
//   private replicas        np * (np-1) * B     (Eq. (1) at every rank)
//   leader-assembled        nodes * (np-1) * B  (only leaders copy)
//   parallel subgroups      np * (nodes-1) * B  (each rank copies its color)
// where B is the per-partition block size. wire_raw_bytes must equal the
// measured bytes bit-for-bit (the raw-equivalent counter degenerates).
using WireParam = std::tuple<int /*nodes*/, int /*ppn*/, int /*variant*/>;

class BfsWireConservation : public ::testing::TestWithParam<WireParam> {};

bfs::Config wire_variant(int v) {
  switch (v) {
    case 0: return bfs::original();  // flat ring
    case 1: {
      bfs::Config c = bfs::original();
      c.base_algo = AllgatherAlgo::leader_ring;
      return c;
    }
    case 2: return bfs::share_in_queue();
    case 3: return bfs::share_all();
    default: return bfs::par_allgather();
  }
}

TEST_P(BfsWireConservation, RawPathMatchesPlanFormula) {
  const auto [nodes, ppn, v] = GetParam();
  static const harness::GraphBundle bundle =
      harness::GraphBundle::make(10, 16, 42, 4);
  harness::ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  harness::Experiment e(bundle, o);

  bfs::Config cfg = wire_variant(v);
  cfg.direction = bfs::Direction::bottom_up_only;  // every exchange is bitmap
  ASSERT_TRUE(cfg.validate().empty());
  const std::uint64_t np = static_cast<std::uint64_t>(nodes * ppn);
  const std::uint64_t B = e.dist().part.block() / 8;

  const bool shared_in = cfg.sharing != bfs::Sharing::none && ppn > 1;
  const bool par = shared_in && cfg.sharing == bfs::Sharing::all &&
                   cfg.parallel_allgather && ppn > 1;
  std::uint64_t expect;
  if (par)
    expect = np * static_cast<std::uint64_t>(nodes - 1) * B;
  else if (shared_in)
    expect = static_cast<std::uint64_t>(nodes) * (np - 1) * B;
  else
    expect = np * (np - 1) * B;

  const auto [res, parent] = e.run_validated(cfg, bundle.roots[0]);
  int exchanges = 0;
  for (const auto& t : res.trace) {
    if (t.exchange_codec != 0) continue;  // raw is the only legal pick
    EXPECT_EQ(t.wire_bytes, expect) << "level " << t.level;
    EXPECT_EQ(t.wire_raw_bytes, t.wire_bytes) << "level " << t.level;
    ++exchanges;
  }
  EXPECT_GT(exchanges, 0);
}

std::string wire_name(const ::testing::TestParamInfo<WireParam>& ti) {
  const auto [nodes, ppn, v] = ti.param;
  return "n" + std::to_string(nodes) + "_p" + std::to_string(ppn) + "_v" +
         std::to_string(v);
}

INSTANTIATE_TEST_SUITE_P(Grid, BfsWireConservation,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(0, 1, 2, 3, 4)),
                         wire_name);

}  // namespace
}  // namespace numabfs::rt
