// Exhaustive data-equivalence grid for the allgather family: every
// algorithm must produce byte-identical results over every (shape, chunk
// size) combination, and charge strictly positive, shape-monotone time.

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/allgather.hpp"

namespace numabfs::rt {
namespace {

// A tiny deterministic content generator shared by writer and checker.
std::uint64_t graph_hash(int rank, int word) {
  return 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(rank + 1) +
         static_cast<std::uint64_t>(word) * 0x2545f4914f6cdd1dull;
}

using Param = std::tuple<int /*nodes*/, int /*ppn*/, int /*words*/,
                         AllgatherAlgo>;

class AllgatherMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(AllgatherMatrix, DataIdenticalAcrossAlgorithms) {
  const auto [nodes, ppn, words, algo] = GetParam();
  Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{}, ppn);
  const int np = c.nranks();

  std::vector<std::vector<std::uint64_t>> results(static_cast<size_t>(np));
  c.run([&](Proc& p) {
    std::vector<std::uint64_t> chunk(static_cast<size_t>(words));
    for (int i = 0; i < words; ++i)
      chunk[static_cast<size_t>(i)] = graph_hash(p.rank, i);
    std::vector<std::uint64_t> dst(static_cast<size_t>(words * np));
    allgather(p, c.world(), chunk, dst, algo, sim::Phase::bu_comm);
    results[static_cast<size_t>(p.rank)] = std::move(dst);
  });

  // Expected content is algorithm-independent.
  for (int r = 0; r < np; ++r) {
    ASSERT_EQ(results[static_cast<size_t>(r)].size(),
              static_cast<size_t>(words * np));
    for (int src = 0; src < np; ++src)
      for (int i = 0; i < words; ++i)
        ASSERT_EQ(results[static_cast<size_t>(r)]
                         [static_cast<size_t>(src * words + i)],
                  graph_hash(src, i))
            << "r=" << r << " src=" << src << " i=" << i;
    // Every rank sees the same bytes.
    ASSERT_EQ(results[static_cast<size_t>(r)], results[0]);
  }

  // Time must be positive whenever there is more than one rank.
  if (np > 1) {
    EXPECT_GT(c.profiles()[0].get(sim::Phase::bu_comm), 0.0);
  }
}

std::string matrix_name(const ::testing::TestParamInfo<Param>& ti) {
  const auto [nodes, ppn, words, algo] = ti.param;
  return "n" + std::to_string(nodes) + "_p" + std::to_string(ppn) + "_w" +
         std::to_string(words) + "_" + to_string(algo);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllgatherMatrix,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 8),
                       ::testing::Values(1, 7, 64),
                       ::testing::Values(AllgatherAlgo::flat_ring,
                                         AllgatherAlgo::leader_ring,
                                         AllgatherAlgo::leader_rd)),
    matrix_name);

TEST(AllgatherMatrix, TimeMonotoneInChunkAndRanks) {
  // Charged time grows with chunk size at fixed shape, and with rank count
  // at fixed chunk (more data in flight either way).
  const auto charged = [](int nodes, int ppn, int words) {
    Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{},
              ppn);
    c.run([&](Proc& p) {
      std::vector<std::uint64_t> chunk(static_cast<size_t>(words), 1);
      std::vector<std::uint64_t> dst(
          static_cast<size_t>(words * c.nranks()));
      allgather(p, c.world(), chunk, dst, AllgatherAlgo::flat_ring,
                sim::Phase::bu_comm);
    });
    return c.profiles()[0].get(sim::Phase::bu_comm);
  };
  EXPECT_LT(charged(2, 8, 64), charged(2, 8, 512));
  EXPECT_LT(charged(2, 8, 64), charged(4, 8, 64));
}

}  // namespace
}  // namespace numabfs::rt
