#include <gtest/gtest.h>

#include <map>

#include "bfs/costs.hpp"
#include "bfs/state.hpp"
#include "graph/rmat.hpp"

namespace numabfs::bfs {
namespace {

graph::DistGraph small_dist(int np) {
  graph::RmatParams p;
  p.scale = 10;
  p.edgefactor = 8;
  static std::map<int, graph::Csr> csr_cache;
  if (!csr_cache.count(0))
    csr_cache.emplace(0, graph::Csr::from_edges(p.num_vertices(),
                                                graph::rmat_edges(p)));
  return graph::DistGraph::build(csr_cache.at(0),
                                 graph::Partition1D(p.num_vertices(), np));
}

TEST(DistState, PrivateCopiesWhenNoSharing) {
  const auto dg = small_dist(16);
  DistState st(dg, original(), 2, 8);
  EXPECT_FALSE(st.shared_in());
  EXPECT_FALSE(st.shared_out());
  // Distinct ranks get distinct buffers.
  EXPECT_NE(st.in_queue(0).words().data(), st.in_queue(1).words().data());
  EXPECT_NE(st.out_queue(0).words().data(), st.out_queue(9).words().data());
}

TEST(DistState, SharedInAliasesWithinNode) {
  const auto dg = small_dist(16);
  DistState st(dg, share_in_queue(), 2, 8);
  EXPECT_TRUE(st.shared_in());
  EXPECT_FALSE(st.shared_out());
  // Ranks 0..7 (node 0) share one in_queue; rank 8 (node 1) does not.
  EXPECT_EQ(st.in_queue(0).words().data(), st.in_queue(7).words().data());
  EXPECT_NE(st.in_queue(0).words().data(), st.in_queue(8).words().data());
  // out stays private.
  EXPECT_NE(st.out_queue(0).words().data(), st.out_queue(7).words().data());
}

TEST(DistState, SharedAllAliasesOutToo) {
  const auto dg = small_dist(16);
  DistState st(dg, share_all(), 2, 8);
  EXPECT_TRUE(st.shared_out());
  EXPECT_EQ(st.out_queue(2).words().data(), st.out_queue(5).words().data());
  EXPECT_EQ(st.out_summary(2).bits().words().data(),
            st.out_summary(5).bits().words().data());
  EXPECT_NE(st.out_queue(0).words().data(), st.out_queue(8).words().data());
}

TEST(DistState, SharingDegeneratesWithPpn1) {
  const auto dg = small_dist(2);
  DistState st(dg, share_all(), 2, 1);
  // One rank per node: "shared" is just private.
  EXPECT_FALSE(st.shared_in());
  EXPECT_FALSE(st.shared_out());
}

TEST(DistState, SummarySizesFollowGranularity) {
  const auto dg = small_dist(8);
  for (std::uint64_t g : {64ull, 256ull, 1024ull}) {
    DistState st(dg, granularity(g), 1, 8);
    EXPECT_EQ(st.summary_bits(),
              (st.padded_bits() + g - 1) / g);
  }
}

TEST(DistState, OwnedStructuresSizedPerRank) {
  const auto dg = small_dist(8);
  DistState st(dg, original(), 1, 8);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(st.pred(r).size(), dg.locals[static_cast<size_t>(r)].owned());
    EXPECT_EQ(st.unvisited_edges(r),
              dg.locals[static_cast<size_t>(r)].owned_edges());
  }
}

TEST(DistState, RejectsInvalidConfig) {
  const auto dg = small_dist(8);
  Config bad;
  bad.parallel_allgather = true;  // requires sharing == all
  EXPECT_THROW(DistState(dg, bad, 1, 8), std::invalid_argument);
  Config zero_g;
  zero_g.summary_granularity = 0;
  EXPECT_THROW(DistState(dg, zero_g, 1, 8), std::invalid_argument);
}

TEST(DistState, RejectsShapeMismatch) {
  const auto dg = small_dist(8);
  EXPECT_THROW(DistState(dg, original(), 2, 8), std::invalid_argument);
}

TEST(Config, NamesAndFactories) {
  EXPECT_EQ(original().name(), "bind-to-socket/share-none/g64");
  EXPECT_EQ(par_allgather().name(), "bind-to-socket/share-all/par-ag/g64");
  EXPECT_EQ(granularity(256).name(), "bind-to-socket/share-all/par-ag/g256");
  Config td;
  td.direction = Direction::top_down_only;
  EXPECT_NE(td.name().find("top-down"), std::string::npos);
  EXPECT_TRUE(granularity(256).validate().empty());
}

TEST(Costs, GraphPlacementFollowsBindMode) {
  Config c;
  c.bind = BindMode::bind_to_socket;
  EXPECT_EQ(graph_placement(c, 8), sim::Placement::socket_local);
  // A single bound rank spanning the node cannot localize its memory.
  EXPECT_EQ(graph_placement(c, 1), sim::Placement::interleaved);
  c.bind = BindMode::interleave;
  EXPECT_EQ(graph_placement(c, 8), sim::Placement::interleaved);
  c.bind = BindMode::noflag;
  EXPECT_EQ(graph_placement(c, 1), sim::Placement::single_home);
}

TEST(Costs, BindingMakesProbesCheaper) {
  rt::Cluster cl(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 8);
  StructSizes sz;
  sz.in_queue_bytes = 512ull << 20;
  sz.in_summary_bytes = 8ull << 20;
  sz.owned_bytes = 1 << 20;
  sz.td_group_count = 1000;
  Config bound;  // bind_to_socket
  Config inter;
  inter.bind = BindMode::interleave;
  const UnitCosts ub = unit_costs(cl, bound, sz);
  const UnitCosts ui = unit_costs(cl, inter, sz);
  EXPECT_LT(ub.inqueue_probe_ns, ui.inqueue_probe_ns);
  EXPECT_LT(ub.edge_scan_ns, ui.edge_scan_ns);
  EXPECT_DOUBLE_EQ(ub.omp_div, ui.omp_div);
}

TEST(Costs, Ppn1GetsNodeWideThreads) {
  rt::Cluster c1(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 1);
  rt::Cluster c8(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 8);
  StructSizes sz;
  sz.in_queue_bytes = 1 << 20;
  sz.in_summary_bytes = 1 << 14;
  sz.owned_bytes = 1 << 16;
  const UnitCosts u1 = unit_costs(c1, Config{}, sz);
  const UnitCosts u8 = unit_costs(c8, Config{}, sz);
  EXPECT_NEAR(u1.omp_div, 8.0 * u8.omp_div, 1e-9);
}

}  // namespace
}  // namespace numabfs::bfs
