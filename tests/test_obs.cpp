/// \file test_obs.cpp
/// The observability layer (src/obs): metrics registry, Chrome-trace
/// exporter, and the runtime/BFS/engine instrumentation built on them.
/// The load-bearing invariants:
///  - tracing on vs off leaves simulated results bit-identical,
///  - kCatTime spans cover >= 95% of every rank's virtual run time (for a
///    hybrid BFS run and a query-engine batch run),
///  - MS-BFS emits one `mslevel` span per level, monotone lane retirements,
///    a recovery span per crash re-run, and a deterministic event stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bfs/hybrid.hpp"
#include "bfs2d/bfs2d.hpp"
#include "engine/engine.hpp"
#include "engine/msbfs.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "harness/graph500.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace numabfs {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  return o;
}

const GraphBundle& bundle12() {
  static const GraphBundle b = GraphBundle::make(12, 16, 3, 8);
  return b;
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CountersGaugesHistograms) {
  obs::Registry reg;
  reg.counter("a.count").add();
  reg.counter("a.count").add(4);
  reg.gauge("a.value").set(2.5);
  auto& h = reg.histogram("a.lat", {1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(10.0);  // bucket 1 (lower_bound: first bound >= v)
  h.observe(1e6);   // +inf bucket
  EXPECT_EQ(reg.counter("a.count").value, 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("a.value").value, 2.5);
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 10.0 + 1e6);
  EXPECT_TRUE(reg.has("a.count"));
  EXPECT_TRUE(reg.has("a.lat"));
  EXPECT_FALSE(reg.has("missing"));
  // A later histogram() call fetches the existing instance untouched.
  EXPECT_EQ(&reg.histogram("a.lat"), &h);
  reg.clear();
  EXPECT_FALSE(reg.has("a.count"));
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({3.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, JsonIsStableSchemaAndDeterministic) {
  // Two registries filled in different insertion orders must serialize to
  // the same bytes (std::map ordering) — that is what lets the perf gate
  // diff a committed baseline.
  obs::Registry a, b;
  a.counter("x").add(2);
  a.gauge("y").set(1.5);
  a.histogram("z", {1.0}).observe(0.5);
  b.histogram("z", {1.0}).observe(0.5);
  b.gauge("y").set(1.5);
  b.counter("x").add(2);
  EXPECT_EQ(a.json(), b.json());
  const std::string j = a.json();
  EXPECT_NE(j.find("\"schema\":\"numabfs.metrics.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"counters\":{\"x\":2}"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\":{\"y\":1.5}"), std::string::npos);
  EXPECT_NE(j.find("\"bounds\":[1]"), std::string::npos);
  EXPECT_NE(j.find("\"counts\":[1,0]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer unit behavior
// ---------------------------------------------------------------------------

TEST(Tracer, TracksCoverageAndBaseOffset) {
  obs::Tracer tr(2, 2);
  EXPECT_EQ(tr.host_track(), 2);
  tr.span(0, obs::kCatTime, "comp", 0, 100);
  tr.span(0, obs::kCatTime, "comm", 100, 250);
  tr.span(0, obs::kCatBfs, "level 0", 0, 250);  // annotation: not counted
  tr.instant(1, obs::kCatFault, "p2p.drop", 50);
  EXPECT_DOUBLE_EQ(tr.covered_time_ns(0), 250.0);
  EXPECT_DOUBLE_EQ(tr.covered_time_ns(1), 0.0);
  EXPECT_DOUBLE_EQ(tr.max_ts_ns(), 250.0);
  EXPECT_EQ(tr.total_events(), 4u);

  tr.set_base_ns(1000);
  tr.span(1, obs::kCatTime, "comp", 0, 10);
  EXPECT_DOUBLE_EQ(tr.track(1).back().ts_ns, 1000.0);
  EXPECT_DOUBLE_EQ(tr.max_ts_ns(), 1010.0);

  tr.clear();
  EXPECT_EQ(tr.total_events(), 0u);
  EXPECT_THROW(obs::Tracer(0, 1), std::invalid_argument);
}

TEST(Tracer, ChromeJsonShape) {
  obs::Tracer tr(1, 1);
  tr.span(0, obs::kCatTime, "a \"quoted\" name", 1000, 3000,
          obs::kv("bytes", std::uint64_t{42}));
  tr.instant(1, obs::kCatEngine, "admit", 500, obs::kv("id", 7));
  const std::string j = tr.chrome_json();
  // Top-level shape + metadata + both phases, ts/dur in microseconds.
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"bytes\":42"), std::string::npos);
  EXPECT_NE(j.find("a \\\"quoted\\\" name"), std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
}

TEST(Tracer, FmtDoubleRoundTrips) {
  EXPECT_EQ(obs::fmt_double(1.5), "1.5");
  EXPECT_EQ(obs::fmt_double(0), "0");
  const double v = 8911.664366576682;
  EXPECT_DOUBLE_EQ(std::stod(obs::fmt_double(v)), v);
}

// ---------------------------------------------------------------------------
// Hybrid BFS integration
// ---------------------------------------------------------------------------

bfs::BfsRunResult run_hybrid(Experiment& e, const bfs::Config& cfg) {
  bfs::DistState st(e.dist(), cfg, 2, 4);
  return bfs::run_bfs(e.cluster(), e.dist(), st, e.bundle().roots[0]);
}

TEST(ObsHybrid, TracingOnOffIsBitIdentical) {
  // The tracer only *reads* clocks; attaching one must not move a single
  // virtual nanosecond anywhere in the run.
  Experiment e(bundle12(), shape(2, 4));
  const auto off = run_hybrid(e, bfs::compressed(256, 4));
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);
  const auto on = run_hybrid(e, bfs::compressed(256, 4));
  e.cluster().set_tracer(nullptr);
  const auto off2 = run_hybrid(e, bfs::compressed(256, 4));

  EXPECT_GT(tr->total_events(), 0u);
  for (const auto* r : {&on, &off2}) {
    EXPECT_EQ(r->time_ns, off.time_ns);
    EXPECT_EQ(r->visited, off.visited);
    EXPECT_EQ(r->levels, off.levels);
    EXPECT_EQ(r->traversed_directed_edges, off.traversed_directed_edges);
    ASSERT_EQ(r->trace.size(), off.trace.size());
    for (std::size_t i = 0; i < off.trace.size(); ++i) {
      EXPECT_EQ(r->trace[i].comp_ns, off.trace[i].comp_ns);
      EXPECT_EQ(r->trace[i].comm_ns, off.trace[i].comm_ns);
      EXPECT_EQ(r->trace[i].wire_bytes, off.trace[i].wire_bytes);
    }
  }
}

TEST(ObsHybrid, TimeSpansCoverAtLeast95PercentPerRank) {
  Experiment e(bundle12(), shape(2, 4));
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);
  const auto r = run_hybrid(e, bfs::granularity(256));
  e.cluster().set_tracer(nullptr);
  ASSERT_GT(r.time_ns, 0.0);
  for (int rank = 0; rank < e.cluster().nranks(); ++rank) {
    const double covered = tr->covered_time_ns(rank);
    EXPECT_GE(covered, 0.95 * r.time_ns) << "rank " << rank;
    EXPECT_LE(covered, r.time_ns * (1 + 1e-9)) << "rank " << rank;
  }
  // Per-level spans and gate decisions rode along on the rank tracks.
  int levels = 0, gates = 0;
  for (const auto& ev : tr->track(0)) {
    if (ev.is_span() && ev.name.rfind("level ", 0) == 0) ++levels;
    if (!ev.is_span() && ev.name == "codec.gate") ++gates;
  }
  EXPECT_EQ(levels, r.levels);
  EXPECT_GT(gates, 0);
}

// ---------------------------------------------------------------------------
// 2-D BFS integration
// ---------------------------------------------------------------------------

TEST(Obs2d, TracingOnOffIsBitIdentical) {
  // Parity with the 1-D invariant: the tracer reads clocks on every 2-D
  // phase (transpose/expand, scan, fold, claim return) without moving them.
  Experiment e(bundle12(), shape(2, 4));
  const auto& g = bundle12().csr;
  const bfs2d::Grid2d grid =
      bfs2d::Grid2d::make(g.num_vertices(), e.cluster().nranks(),
                          e.cluster().ppn());
  const bfs2d::DistGraph2d d = bfs2d::DistGraph2d::build(g, grid);
  bfs2d::Bfs2dOptions o;
  o.codec = bfs::CodecMode::gate;
  o.exchange_chunks = 4;
  o.hier = rt::coll_model::HierLevel::node;
  const graph::Vertex root = bundle12().roots[0];

  const auto off = bfs2d::run_bfs_2d(e.cluster(), d, root, nullptr, o);
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);
  const auto on = bfs2d::run_bfs_2d(e.cluster(), d, root, nullptr, o);
  e.cluster().set_tracer(nullptr);
  const auto off2 = bfs2d::run_bfs_2d(e.cluster(), d, root, nullptr, o);

  EXPECT_GT(tr->total_events(), 0u);
  for (const auto* r : {&on, &off2}) {
    EXPECT_EQ(r->time_ns, off.time_ns);
    EXPECT_EQ(r->visited, off.visited);
    EXPECT_EQ(r->directions, off.directions);
    EXPECT_EQ(r->traversed_directed_edges, off.traversed_directed_edges);
    ASSERT_EQ(r->trace.size(), off.trace.size());
    for (std::size_t i = 0; i < off.trace.size(); ++i) {
      EXPECT_EQ(r->trace[i].wire_bytes(), off.trace[i].wire_bytes());
      EXPECT_EQ(r->trace[i].wire_raw_bytes(), off.trace[i].wire_raw_bytes());
      EXPECT_EQ(r->trace[i].discovered, off.trace[i].discovered);
    }
  }
  // The run rode the rank tracks: one level span per level plus the 2-D
  // phase spans and the per-level gate decisions.
  int levels = 0, expands = 0, folds = 0, gates = 0;
  for (const auto& ev : tr->track(0)) {
    if (ev.is_span() && ev.name.rfind("level ", 0) == 0) ++levels;
    if (ev.is_span() && ev.name == "2d.expand") ++expands;
    if (ev.is_span() && ev.name == "2d.fold") ++folds;
    if (!ev.is_span() && ev.name == "codec.gate") ++gates;
  }
  EXPECT_EQ(levels, on.levels);
  // Bootstrap build_inputs + one per exchange; the last level never
  // exchanges (nf == 0 ends the loop), so gates fire levels - 1 times.
  EXPECT_EQ(expands, on.levels);
  EXPECT_EQ(folds, on.levels);
  EXPECT_EQ(gates, on.levels - 1);
}

// ---------------------------------------------------------------------------
// Query-engine integration
// ---------------------------------------------------------------------------

TEST(ObsEngine, BatchRunCoverageAndHostEvents) {
  Experiment e(bundle12(), shape(2, 2));
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);

  engine::WorkloadSpec ws;
  ws.num_queries = 4;
  ws.seed = 9;
  ws.mean_interarrival_ns = 0;  // one concurrent burst -> a single wave
  const auto qs = engine::QueryEngine::generate(e.dist(), ws);
  engine::EngineConfig ec;
  ec.max_batch = engine::kMaxLanes;
  engine::QueryEngine eng(e.cluster(), e.dist(), bfs::par_allgather(), ec);
  const engine::EngineReport rep = eng.serve(qs);
  e.cluster().set_tracer(nullptr);
  ASSERT_EQ(rep.waves, 1);

  // Rank tracks: kCatTime spans cover >= 95% of each rank's active
  // interval (one wave, so the interval has no between-wave idle gaps).
  for (int rank = 0; rank < e.cluster().nranks(); ++rank) {
    double lo = 0, hi = 0, covered = 0;
    bool first = true;
    for (const auto& ev : tr->track(rank)) {
      if (!ev.is_span() || ev.cat != obs::kCatTime) continue;
      lo = first ? ev.ts_ns : std::min(lo, ev.ts_ns);
      hi = std::max(hi, ev.ts_ns + ev.dur_ns);
      covered += ev.dur_ns;
      first = false;
    }
    ASSERT_FALSE(first) << "rank " << rank << " emitted no time spans";
    EXPECT_GE(covered, 0.95 * (hi - lo)) << "rank " << rank;
  }

  // Host track: every admission, one batch formation, one wave span whose
  // extent matches the report's makespan.
  int admits = 0, batches = 0;
  double wave_end = 0;
  for (const auto& ev : tr->track(tr->host_track())) {
    if (ev.name == "admit") ++admits;
    if (ev.name == "batch.form") ++batches;
    if (ev.is_span() && ev.name.rfind("wave ", 0) == 0)
      wave_end = ev.ts_ns + ev.dur_ns;
  }
  EXPECT_EQ(admits, ws.num_queries);
  EXPECT_EQ(batches, 1);
  EXPECT_DOUBLE_EQ(wave_end, rep.total_ns);
  // The exported JSON carries the engine annotations.
  const std::string j = tr->chrome_json();
  EXPECT_NE(j.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(j.find("mslevel "), std::string::npos);
}

// ---------------------------------------------------------------------------
// MS-BFS trace invariants
// ---------------------------------------------------------------------------

std::vector<engine::WaveQuery> wave_queries(const GraphBundle& b, int n) {
  std::vector<engine::WaveQuery> qs;
  for (int i = 0; i < n; ++i) {
    engine::WaveQuery q;
    q.source = b.roots[static_cast<std::size_t>(i) % b.roots.size()];
    qs.push_back(q);
  }
  return qs;
}

TEST(ObsMsBfs, OneLevelSpanPerLevelAndMonotoneRetirements) {
  Experiment e(bundle12(), shape(2, 2));
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);
  engine::WaveState st(e.dist(), bfs::original(), 2, 2);
  const auto qs = wave_queries(bundle12(), 6);
  const engine::WaveResult r =
      engine::run_wave(e.cluster(), e.dist(), st, qs);
  e.cluster().set_tracer(nullptr);

  for (int rank = 0; rank < e.cluster().nranks(); ++rank) {
    int mslevels = 0;
    for (const auto& ev : tr->track(rank))
      if (ev.is_span() && ev.name.rfind("mslevel ", 0) == 0) ++mslevels;
    EXPECT_EQ(mslevels, r.levels) << "rank " << rank;
  }

  // Lane retirements (recorder-only instants) are monotone in virtual time
  // and account for every lane exactly once.
  std::vector<double> retire_ts;
  std::vector<bool> seen(qs.size(), false);
  for (int t = 0; t <= tr->host_track(); ++t) {
    for (const auto& ev : tr->track(t)) {
      if (ev.name != "lane.retire") continue;
      retire_ts.push_back(ev.ts_ns);
      const auto pos = ev.args.find("\"lane\":");
      ASSERT_NE(pos, std::string::npos);
      const int lane = std::stoi(ev.args.substr(pos + 7));
      ASSERT_GE(lane, 0);
      ASSERT_LT(lane, static_cast<int>(qs.size()));
      EXPECT_FALSE(seen[static_cast<std::size_t>(lane)]) << "lane " << lane;
      seen[static_cast<std::size_t>(lane)] = true;
    }
  }
  ASSERT_EQ(retire_ts.size(), qs.size());
  EXPECT_TRUE(std::is_sorted(retire_ts.begin(), retire_ts.end()));
}

TEST(ObsMsBfs, CrashRecoveryEmitsRollbackSpan) {
  Experiment e(bundle12(), shape(2, 2));
  e.cluster().set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("seed:11,crash:rank=1@level=2"),
      e.cluster().nranks(), e.cluster().ppn()));
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);
  engine::WaveState st(e.dist(), bfs::original(), 2, 2);
  const engine::WaveResult r =
      engine::run_wave(e.cluster(), e.dist(), st, wave_queries(bundle12(), 4));
  e.cluster().set_tracer(nullptr);
  e.cluster().set_fault_injector(nullptr);
  ASSERT_GT(r.recoveries, 0);
  int rollbacks = 0;
  for (const auto& ev : tr->track(0))
    if (ev.is_span() && ev.name == "recovery.rollback") ++rollbacks;
  EXPECT_GE(rollbacks, 1);
}

TEST(ObsMsBfs, EventStreamIsDeterministic) {
  Experiment e(bundle12(), shape(2, 2));
  auto tr = std::make_shared<obs::Tracer>(e.cluster().nranks(),
                                          e.cluster().ppn());
  e.cluster().set_tracer(tr);
  engine::WaveState st(e.dist(), bfs::original(), 2, 2);
  const auto qs = wave_queries(bundle12(), 6);
  engine::run_wave(e.cluster(), e.dist(), st, qs);
  std::vector<std::vector<obs::TraceEvent>> first;
  for (int t = 0; t <= tr->host_track(); ++t) first.push_back(tr->track(t));
  tr->clear();
  engine::run_wave(e.cluster(), e.dist(), st, qs);
  e.cluster().set_tracer(nullptr);
  for (int t = 0; t <= tr->host_track(); ++t) {
    const auto& a = first[static_cast<std::size_t>(t)];
    const auto& b = tr->track(t);
    ASSERT_EQ(a.size(), b.size()) << "track " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].name, b[i].name) << "track " << t << " event " << i;
      EXPECT_EQ(a[i].ts_ns, b[i].ts_ns) << "track " << t << " event " << i;
      EXPECT_EQ(a[i].dur_ns, b[i].dur_ns) << "track " << t << " event " << i;
      EXPECT_EQ(a[i].args, b[i].args) << "track " << t << " event " << i;
    }
  }
}

}  // namespace
}  // namespace numabfs
