#include <gtest/gtest.h>

#include "numasim/cache_model.hpp"
#include "numasim/link_model.hpp"
#include "numasim/mem_model.hpp"

namespace numabfs::sim {
namespace {

Topology node8() { return Topology::xeon_x7550_cluster(1); }

TEST(CacheModel, HitRatioShape) {
  CostParams cp;
  CacheModel cm(cp, 18ull << 20);
  // Tiny structures always hit; huge ones almost never.
  EXPECT_DOUBLE_EQ(cm.hit_ratio(1024, 1), 1.0);
  EXPECT_LT(cm.hit_ratio(4ull << 30, 1), 0.01);
  // Monotone decreasing in structure size.
  double prev = 1.0;
  for (std::uint64_t s = 1 << 20; s <= (1ull << 30); s *= 4) {
    const double h = cm.hit_ratio(s, 1);
    EXPECT_LE(h, prev);
    prev = h;
  }
  // Sharing multiplies effective capacity (paper argument (b)).
  EXPECT_GT(cm.hit_ratio(64ull << 20, 8), cm.hit_ratio(64ull << 20, 1));
}

TEST(CacheModel, CapacityScalingReproducesRatios) {
  CostParams cp;
  // A scale-20 structure under paper scaling must look like its scale-32
  // counterpart: same hit ratio.
  const CostParams scaled = cp.with_paper_cache_scaling(1ull << 20);
  CacheModel raw(cp, 18ull << 20);
  CacheModel sc(scaled, 18ull << 20);
  const std::uint64_t small = (1ull << 20) / 8;  // scale-20 in_queue bytes
  const std::uint64_t big = (1ull << 32) / 8;    // scale-32 in_queue bytes
  EXPECT_NEAR(sc.hit_ratio(small, 1), raw.hit_ratio(big, 1), 1e-12);
}

TEST(CacheModel, PaperScalingShrinksAlphaProportionally) {
  CostParams cp;
  const CostParams scaled = cp.with_paper_cache_scaling(1ull << 22);
  EXPECT_NEAR(scaled.nic_msg_latency_ns * scaled.capacity_scale,
              cp.nic_msg_latency_ns, 1e-9);
}

TEST(MemModel, PlacementOrdering) {
  CostParams cp;
  MemModel mem(cp, node8());
  const std::uint64_t big = 4ull << 30;  // all-miss regime
  const double local = mem.probe_ns(Placement::socket_local, big, 1, true);
  const double inter = mem.probe_ns(Placement::interleaved, big, 1, true);
  const double home = mem.probe_ns(Placement::single_home, big, 1, true);
  EXPECT_LT(local, inter);
  EXPECT_LT(inter, home);
}

TEST(MemModel, CongestionOnlyHitsCrossSocketPlacements) {
  CostParams cp;
  MemModel mem(cp, node8());
  const std::uint64_t big = 4ull << 30;
  EXPECT_DOUBLE_EQ(mem.probe_ns(Placement::socket_local, big, 1, true),
                   mem.probe_ns(Placement::socket_local, big, 1, false));
  EXPECT_GT(mem.probe_ns(Placement::interleaved, big, 1, true),
            mem.probe_ns(Placement::interleaved, big, 1, false));
}

TEST(MemModel, MemoryParallelismCutsProbeCost) {
  CostParams slow;
  slow.memory_parallelism = 1.0;
  CostParams fast;
  fast.memory_parallelism = 8.0;
  MemModel a(slow, node8()), b(fast, node8());
  const std::uint64_t big = 4ull << 30;
  EXPECT_GT(a.probe_ns(Placement::socket_local, big, 1, false),
            b.probe_ns(Placement::socket_local, big, 1, false));
}

TEST(MemModel, SharedSummaryCheaperThanPrivateWhenCachePressured) {
  // The paper's argument for sharing: one shared copy enjoys k x cache.
  CostParams cp;
  MemModel mem(cp, node8());
  // A structure a bit larger than one socket's usable share.
  const auto size = static_cast<std::uint64_t>(
      mem.cache().usable_llc() * 3.0);
  const double priv = mem.probe_ns(Placement::socket_local, size, 1, true);
  const double shared = mem.probe_ns(Placement::node_shared, size, 8, true);
  EXPECT_LT(shared, priv);
}

TEST(MemModel, RemoteCacheStillBelowLocalDram) {
  // Paper argument (d): a remote-L3 hit beats going to local memory.
  CostParams cp;
  EXPECT_LT(cp.remote_cache_ns, cp.local_dram_ns);
}

TEST(MemModel, AvgRemoteDramBetweenOneAndTwoHops) {
  CostParams cp;
  MemModel mem(cp, node8());
  EXPECT_GE(mem.avg_remote_dram_ns(), cp.remote_dram_ns);
  EXPECT_LE(mem.avg_remote_dram_ns(), cp.remote_dram_2hop_ns);
}

TEST(MemModel, SingleSocketTopologyHasNoRemotePenalty) {
  CostParams cp;
  MemModel mem(cp, Topology::single_socket());
  const std::uint64_t big = 4ull << 30;
  EXPECT_DOUBLE_EQ(mem.probe_ns(Placement::interleaved, big, 1, true),
                   mem.probe_ns(Placement::socket_local, big, 1, true));
}

TEST(MemModel, OmpSpeedupShape) {
  CostParams cp;
  MemModel mem(cp, node8());
  EXPECT_DOUBLE_EQ(mem.omp_speedup(1), 1.0);
  EXPECT_NEAR(mem.omp_speedup(8), 6.98, 0.05);  // the paper's Fig. 3 anchor
  EXPECT_LT(mem.omp_speedup(8), 8.0);
  for (int t = 1; t < 16; ++t)
    EXPECT_LT(mem.omp_speedup(t), mem.omp_speedup(t + 1));
}

TEST(MemModel, StreamCostsOrdered) {
  CostParams cp;
  MemModel mem(cp, node8());
  EXPECT_LE(mem.stream_ns_per_byte(Placement::socket_local),
            mem.stream_ns_per_byte(Placement::interleaved));
  EXPECT_LT(mem.stream_ns_per_byte(Placement::interleaved),
            mem.stream_ns_per_byte(Placement::single_home));
}

TEST(LinkModel, WeakNodeOnlyAffectsItself) {
  CostParams cp;
  const Topology t = Topology::xeon_x7550_cluster(4).with_weak_node(2, 0.5);
  LinkModel link(cp, t);
  const double ok = link.nic_transfer_ns(1 << 20, 1, 0, 1);
  const double weak = link.nic_transfer_ns(1 << 20, 1, 0, 2);
  EXPECT_GT(weak, ok);
  EXPECT_DOUBLE_EQ(link.nic_transfer_ns(1 << 20, 1, 1, 3), ok);
}

TEST(LinkModel, PerFlowBandwidthCappedByPort) {
  CostParams cp;
  LinkModel link(cp, Topology::xeon_x7550_cluster(2));
  EXPECT_LE(link.nic_flow_bw(1), cp.nic_port_bw);
  // Aggregate grows, per-flow shrinks.
  EXPECT_GT(link.nic_node_bw(4), link.nic_node_bw(2));
  EXPECT_LT(link.nic_flow_bw(4), link.nic_flow_bw(2));
}

TEST(LinkModel, ShmFlowSharing) {
  CostParams cp;
  LinkModel link(cp, Topology::xeon_x7550_cluster(1));
  EXPECT_DOUBLE_EQ(link.shm_flow_bw(1), cp.shm_copy_bw);
  EXPECT_LE(link.shm_flow_bw(8), cp.socket_mem_ceiling / 8.0);
}

}  // namespace
}  // namespace numabfs::sim
