/// \file test_vertex_programs.cpp
/// The four built-in frontier programs against their single-rank references:
/// SSSP (bit-identical to Dijkstra), PageRank (within float32 slack of the
/// power iteration), connected components (identical min-labels) and triangle
/// counting (exact). Plus the engine guarantees every program inherits from
/// run_program: convergence and early exit, bit-determinism under crash+drop
/// fault plans, and zero perturbation from tracing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "bfs/config.hpp"
#include "engine/programs.hpp"
#include "faults/errors.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_algos.hpp"
#include "harness/graph500.hpp"
#include "obs/trace.hpp"

namespace numabfs::engine {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  return eo;
}

std::shared_ptr<FaultInjector> injector(const rt::Cluster& c,
                                        const std::string& spec) {
  return std::make_shared<FaultInjector>(FaultPlan::parse(spec), c.nranks(),
                                         c.ppn());
}

struct ProgRun {
  ProgramResult res;
  std::vector<Value> values;
};

ProgRun run_prog(Experiment& ex, ProgramWorkload w, const ProgramQuery& q,
        const bfs::Config& cfg, int nodes, int ppn,
        const ProgramParams& pp = {}, const ProgramOptions& opts = {}) {
  const auto prog = make_program(w, ex.dist(), pp);
  ProgramState ps(ex.dist(), cfg, nodes, ppn, prog->with_values());
  ProgRun r;
  r.res = run_program(ex.cluster(), ex.dist(), ps, *prog, q, opts);
  r.values = gather_values(ex.dist(), ps);
  return r;
}

// ---------------------------------------------------------------------------
// Reference equivalence
// ---------------------------------------------------------------------------

TEST(VertexPrograms, SsspMatchesDijkstraBitForBit) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    const GraphBundle b = GraphBundle::make(10, 16, seed, 4);
    Experiment ex(b, shape(2, 2));
    const ProgramQuery q{b.roots[0], b.roots[1]};
    const ProgramParams pp;
    const ProgRun r = run_prog(ex, ProgramWorkload::sssp, q, bfs::original(), 2, 2, pp);
    ASSERT_TRUE(r.res.converged);
    const auto ref = graph::ref_sssp(b.csr, graph::EdgeWeights{pp.weight_seed,
                                                               pp.sssp_max_weight},
                                     q.source);
    for (std::uint64_t v = 0; v < ex.dist().n; ++v)
      ASSERT_EQ(r.values[v], ref[v]) << "vertex " << v << " seed " << seed;
    if (ref[q.target] == graph::kInfDist)
      EXPECT_TRUE(std::isinf(r.res.value));
    else
      EXPECT_EQ(r.res.value, static_cast<double>(ref[q.target]));
  }
}

TEST(VertexPrograms, SsspDeltaIsAnAccuracyPreservingKnob) {
  const GraphBundle b = GraphBundle::make(9, 16, 3, 2);
  Experiment ex(b, shape(2, 2));
  const ProgramQuery q{b.roots[0], b.roots[1]};
  ProgramParams pp;
  std::vector<Value> first;
  for (const std::uint64_t delta : {1ull, 4ull, 64ull}) {
    pp.sssp_delta = delta;
    const ProgRun r = run_prog(ex, ProgramWorkload::sssp, q, bfs::original(), 2, 2, pp);
    ASSERT_TRUE(r.res.converged);
    if (first.empty())
      first = r.values;
    else
      EXPECT_EQ(r.values, first) << "delta " << delta;
  }
}

TEST(VertexPrograms, PageRankMatchesPowerIteration) {
  const GraphBundle b = GraphBundle::make(9, 16, 5, 2);
  Experiment ex(b, shape(2, 2));
  const ProgramQuery q{b.roots[0], b.roots[0]};
  ProgramParams pp;
  pp.pr_eps = 1e-4;  // float32 residuals: keep the frontier gate above noise
  const ProgRun r = run_prog(ex, ProgramWorkload::pagerank, q, bfs::original(), 2, 2,
                    pp);
  ASSERT_TRUE(r.res.converged);
  EXPECT_GT(r.res.bu_levels + r.res.td_levels, 0);
  const auto ref = graph::ref_pagerank(b.csr, pp.pr_damping, 1e-10);
  for (std::uint64_t v = 0; v < ex.dist().n; ++v) {
    const double got = static_cast<double>(pr_rank(r.values[v])) +
                       static_cast<double>(pr_residual(r.values[v]));
    // Residual push-style PR under-reports each vertex by at most the mass
    // still undistributed when every residual fell under eps; float32
    // accumulation adds rounding on top.
    EXPECT_NEAR(got, ref[v], 0.05 * ref[v] + 1e-2) << "vertex " << v;
  }
  EXPECT_NEAR(r.res.value,
              static_cast<double>(pr_rank(r.values[q.source])) +
                  static_cast<double>(pr_residual(r.values[q.source])),
              1e-12);
}

TEST(VertexPrograms, ComponentsMatchMinLabelReference) {
  for (const std::uint64_t seed : {2ull, 9ull}) {
    const GraphBundle b = GraphBundle::make(10, 8, seed, 2);
    Experiment ex(b, shape(2, 2));
    const ProgRun r = run_prog(ex, ProgramWorkload::components, ProgramQuery{},
                      bfs::original(), 2, 2);
    ASSERT_TRUE(r.res.converged);
    const auto ref = graph::ref_components(b.csr);
    std::uint64_t ref_count = 0;
    for (std::uint64_t v = 0; v < ex.dist().n; ++v) {
      ASSERT_EQ(r.values[v], ref[v]) << "vertex " << v << " seed " << seed;
      if (ref[v] == v) ++ref_count;
    }
    EXPECT_EQ(r.res.value, static_cast<double>(ref_count));
  }
}

TEST(VertexPrograms, TrianglesMatchExactCount) {
  for (const std::uint64_t seed : {4ull, 11ull}) {
    const GraphBundle b = GraphBundle::make(9, 16, seed, 2);
    Experiment ex(b, shape(2, 2));
    const ProgRun r = run_prog(ex, ProgramWorkload::triangles, ProgramQuery{},
                      bfs::original(), 2, 2);
    ASSERT_TRUE(r.res.converged);
    EXPECT_EQ(r.res.levels, 1);  // one-shot counting level
    EXPECT_EQ(r.res.value,
              static_cast<double>(graph::ref_triangles(b.csr)));
  }
}

// ---------------------------------------------------------------------------
// Convergence / early exit
// ---------------------------------------------------------------------------

TEST(VertexPrograms, SsspUnreachableTargetReportsInfinity) {
  // An isolated vertex (no edges touch it) must stay at infinite distance.
  const std::vector<graph::Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const GraphBundle b = GraphBundle::from_edges(6, edges, 2);
  Experiment ex(b, shape(1, 2));
  const ProgRun r = run_prog(ex, ProgramWorkload::sssp, ProgramQuery{0, 5},
                    bfs::original(), 1, 2);
  ASSERT_TRUE(r.res.converged);
  EXPECT_TRUE(std::isinf(r.res.value));
  EXPECT_EQ(r.values[5], kProgInf);
  EXPECT_EQ(r.values[4], kProgInf);
  EXPECT_NE(r.values[3], kProgInf);
}

TEST(VertexPrograms, MaxLevelsBackstopReportsUnconverged) {
  const GraphBundle b = GraphBundle::make(9, 16, 6, 2);
  Experiment ex(b, shape(2, 2));
  ProgramOptions opts;
  opts.max_levels = 1;  // delta-stepping needs more than one relax level here
  const ProgRun r = run_prog(ex, ProgramWorkload::sssp, ProgramQuery{b.roots[0], 0},
                    bfs::original(), 2, 2, {}, opts);
  EXPECT_FALSE(r.res.converged);
  EXPECT_EQ(r.res.levels, 1);
}

TEST(VertexPrograms, ConvergedRunsAreIdempotentAcrossRepeats) {
  const GraphBundle b = GraphBundle::make(9, 16, 8, 2);
  Experiment ex(b, shape(2, 2));
  const ProgRun a = run_prog(ex, ProgramWorkload::components, ProgramQuery{},
                    bfs::original(), 2, 2);
  const ProgRun c = run_prog(ex, ProgramWorkload::components, ProgramQuery{},
                    bfs::original(), 2, 2);
  EXPECT_EQ(a.values, c.values);
  EXPECT_EQ(a.res.value, c.res.value);
  EXPECT_EQ(a.res.total_ns, c.res.total_ns);
  EXPECT_EQ(a.res.levels, c.res.levels);
}

// ---------------------------------------------------------------------------
// Fault tolerance: crash + drop plans leave results bit-identical
// ---------------------------------------------------------------------------

void expect_bit_identical_under_faults(ProgramWorkload w,
                                       const bfs::Config& cfg) {
  const GraphBundle b = GraphBundle::make(10, 16, 3, 2);
  const ProgramQuery q{b.roots[0], b.roots[1]};

  Experiment clean(b, shape(2, 2));
  const ProgRun want = run_prog(clean, w, q, cfg, 2, 2);
  ASSERT_TRUE(want.res.converged);

  Experiment faulty(b, shape(2, 2));
  faulty.cluster().set_fault_injector(
      injector(faulty.cluster(), "seed:3,crash:rank=1@level=2,drop:prob=0.3"));
  const ProgRun got = run_prog(faulty, w, q, cfg, 2, 2);
  ASSERT_TRUE(got.res.converged) << to_string(w);
  EXPECT_EQ(got.res.ranks_lost, 1) << to_string(w);
  EXPECT_GE(got.res.recoveries, 1) << to_string(w);
  EXPECT_EQ(got.values, want.values) << to_string(w);
  EXPECT_EQ(got.res.value, want.res.value) << to_string(w);
}

TEST(VertexPrograms, SsspSurvivesCrashAndDropBitIdentically) {
  expect_bit_identical_under_faults(ProgramWorkload::sssp, bfs::original());
}

TEST(VertexPrograms, PageRankSurvivesCrashAndDropBitIdentically) {
  expect_bit_identical_under_faults(ProgramWorkload::pagerank,
                                    bfs::original());
}

TEST(VertexPrograms, ComponentsSurviveCrashAndDropBitIdentically) {
  expect_bit_identical_under_faults(ProgramWorkload::components,
                                    bfs::share_all());
}

TEST(VertexPrograms, CrashWithCheckpointingOffIsRejected) {
  const GraphBundle b = GraphBundle::make(9, 16, 1, 2);
  Experiment ex(b, shape(2, 2));
  ex.cluster().set_fault_injector(injector(
      ex.cluster(), "seed:1,crash:rank=1@level=1,checkpoint:off"));
  EXPECT_THROW(run_prog(ex, ProgramWorkload::sssp, ProgramQuery{b.roots[0], 0},
                   bfs::original(), 2, 2),
               faults::FaultError);
}

// ---------------------------------------------------------------------------
// Checkpoint export / resume (the failover unit)
// ---------------------------------------------------------------------------

TEST(VertexPrograms, ExportedCheckpointResumesToTheSameAnswer) {
  const GraphBundle b = GraphBundle::make(10, 16, 5, 2);
  Experiment ex(b, shape(2, 2));
  const ProgramQuery q{b.roots[0], b.roots[1]};

  const ProgRun want = run_prog(ex, ProgramWorkload::sssp, q, bfs::original(), 2, 2);
  ASSERT_TRUE(want.res.converged);

  // Abort mid-flight while exporting every level, then resume elsewhere.
  ProgramCheckpoint ck;
  ProgramOptions exp;
  exp.export_to = &ck;
  exp.abort_at_ns = want.res.total_ns / 2;
  const ProgRun half = run_prog(ex, ProgramWorkload::sssp, q, bfs::original(), 2, 2,
                       {}, exp);
  ASSERT_TRUE(half.res.aborted);
  ASSERT_TRUE(ck.valid);
  ASSERT_GT(ck.level, 1);

  ProgramOptions res;
  res.resume_from = &ck;
  const ProgRun resumed = run_prog(ex, ProgramWorkload::sssp, q, bfs::original(), 2, 2,
                          {}, res);
  ASSERT_TRUE(resumed.res.converged);
  EXPECT_EQ(resumed.values, want.values);
  EXPECT_EQ(resumed.res.value, want.res.value);
}

// ---------------------------------------------------------------------------
// Observability must not perturb the simulation
// ---------------------------------------------------------------------------

TEST(VertexPrograms, TracingIsZeroPerturbation) {
  const GraphBundle b = GraphBundle::make(9, 16, 7, 2);
  Experiment ex(b, shape(2, 2));
  const ProgramQuery q{b.roots[0], b.roots[1]};
  const ProgRun quiet = run_prog(ex, ProgramWorkload::pagerank, q, bfs::original(), 2,
                        2);

  auto tr = std::make_shared<obs::Tracer>(ex.cluster().nranks(),
                                          ex.cluster().ppn());
  ex.cluster().set_tracer(tr);
  const ProgRun traced = run_prog(ex, ProgramWorkload::pagerank, q, bfs::original(), 2,
                         2);
  ex.cluster().set_tracer(nullptr);

  EXPECT_EQ(traced.res.total_ns, quiet.res.total_ns);
  EXPECT_EQ(traced.values, quiet.values);
  EXPECT_GT(tr->total_events(), 0u);
}

}  // namespace
}  // namespace numabfs::engine
