#include "bfs2d/bfs2d.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "faults/errors.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "numasim/topology.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::bfs2d {
namespace {

graph::Csr make_csr(int scale, std::uint64_t seed = 7) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = 8;
  p.seed = seed;
  return graph::Csr::from_edges(p.num_vertices(), graph::rmat_edges(p));
}

graph::Vertex first_root(const graph::Csr& g) {
  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  return root;
}

TEST(Grid2d, ShapeAndOwnership) {
  const Grid2d g = Grid2d::make(1000, 16);
  EXPECT_EQ(g.rows(), 4);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.np(), 16);
  EXPECT_GE(g.padded(), 1000u);
  EXPECT_EQ(g.padded() % (16 * 64), 0u);
  EXPECT_EQ(g.band_bits() * 4, g.padded());
  EXPECT_EQ(g.colband_bits() * 4, g.padded());
  EXPECT_EQ(g.piece_bits() * 16, g.padded());
  // Every vertex owned exactly once, within the owner's piece range.
  for (std::uint64_t v = 0; v < 1000; ++v) {
    const int o = g.owner(v);
    EXPECT_GE(v, g.piece_begin(o));
    EXPECT_LT(v, g.piece_begin(o) + g.piece_bits());
    EXPECT_EQ(g.row_of(o), static_cast<int>(v / g.band_bits()));
  }
}

TEST(Grid2d, RectangularShapes) {
  // Non-square rank counts factor into the most-square admissible grid.
  const Grid2d a = Grid2d::make(1000, 8);  // 8 = 2*4 or 4*2 or 1*8 or 8*1
  EXPECT_EQ(a.rows() * a.cols(), 8);
  EXPECT_EQ(a.rows(), 2);  // ties between 2x4 and 4x2 go to the wider grid
  EXPECT_EQ(a.cols(), 4);
  const Grid2d b(1000, 3, 4);  // explicit rectangle
  EXPECT_EQ(b.np(), 12);
  EXPECT_EQ(b.band_bits(), b.piece_bits() * 4);
  EXPECT_EQ(b.colband_bits(), b.piece_bits() * 3);
  for (std::uint64_t v = 0; v < 1000; ++v) {
    const int o = b.owner(v);
    EXPECT_EQ(b.rank_at(b.row_of(o), b.col_of(o)), o);
  }
  EXPECT_THROW(Grid2d(100, 0, 4), std::invalid_argument);
}

TEST(Grid2d, PpnConstrainsColumns) {
  // ppn must divide C so rows span whole nodes.
  const Grid2d g = Grid2d::make(1000, 64, 8);
  EXPECT_EQ(g.cols() % 8, 0);
  EXPECT_EQ(g.rows() * g.cols(), 64);
  EXPECT_EQ(g.cols(), 8);  // 8x8 is the most-square admissible shape
  // 2 ranks with ppn=8 cannot host any grid whose C is a multiple of 8.
  try {
    Grid2d::make(1000, 2, 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the nearest admissible rank counts.
    EXPECT_NE(std::string(e.what()).find("nearest valid np"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("8"), std::string::npos);
  }
  // np=12, ppn=8: 8 and 16 are the nearest multiples.
  try {
    Grid2d::make(1000, 12, 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("8 or 16"), std::string::npos);
  }
}

TEST(Grid2d, TransposeRoundTrip) {
  for (const auto& [r, cc] : {std::pair{4, 4}, {2, 8}, {8, 2}, {3, 5}}) {
    const Grid2d g(1 << 12, r, cc);
    for (int piece = 0; piece < g.np(); ++piece) {
      const int dest = g.transpose_dest(piece);
      // The dest assembles slot piece % R of col-band piece / R.
      EXPECT_EQ(g.col_of(dest), piece / r);
      EXPECT_EQ(g.transpose_src(g.row_of(dest) % r, g.col_of(dest)),
                g.transpose_src(piece % r, piece / r));
      EXPECT_EQ(g.transpose_src(piece % r, piece / r), piece);
    }
  }
}

TEST(DistGraph2d, ConservesEveryDirectedEdgeInBothOrientations) {
  const graph::Csr g = make_csr(10);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 16);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  std::uint64_t td = 0, bu = 0, deg = 0;
  for (const auto& b : d.blocks) {
    td += b.edges();
    bu += b.bu_sources.size();
    EXPECT_TRUE(std::is_sorted(b.keys.begin(), b.keys.end()));
    EXPECT_TRUE(std::is_sorted(b.bu_keys.begin(), b.bu_keys.end()));
    EXPECT_EQ(b.offsets.size(), b.keys.size() + 1);
    EXPECT_EQ(b.bu_offsets.size(), b.bu_keys.size() + 1);
  }
  for (const auto& pd : d.piece_deg)
    for (std::uint64_t x : pd) deg += x;
  EXPECT_EQ(td, g.num_directed_edges());
  EXPECT_EQ(bu, g.num_directed_edges());
  EXPECT_EQ(deg, g.num_directed_edges());
}

TEST(DistGraph2d, BlockMembershipRespectsBands) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 8);  // 2x4
  const DistGraph2d d = DistGraph2d::build(g, grid);
  for (int i = 0; i < grid.rows(); ++i)
    for (int j = 0; j < grid.cols(); ++j) {
      const auto& b = d.blocks[static_cast<size_t>(grid.rank_at(i, j))];
      for (graph::Vertex u : b.keys)
        EXPECT_EQ(static_cast<int>(u / grid.colband_bits()), j);
      for (graph::Vertex v : b.targets)
        EXPECT_EQ(static_cast<int>(v / grid.band_bits()), i);
      for (graph::Vertex v : b.bu_keys)
        EXPECT_EQ(static_cast<int>(v / grid.band_bits()), i);
      for (graph::Vertex u : b.bu_sources)
        EXPECT_EQ(static_cast<int>(u / grid.colband_bits()), j);
    }
}

// --- validation matrix: shape x direction x codec x hier ----------------

struct Variant {
  int scale, nodes, ppn;
  bfs::Direction dir;
  bfs::CodecMode codec;
  rt::coll_model::HierLevel hier;
};

class Bfs2dMatrix : public ::testing::TestWithParam<int> {};

TEST_P(Bfs2dMatrix, ProducesValidTree) {
  using bfs::CodecMode;
  using bfs::Direction;
  using rt::coll_model::HierLevel;
  static const Variant vs[] = {
      {9, 1, 1, Direction::hybrid, CodecMode::off, HierLevel::flat},    // 1x1
      {9, 1, 4, Direction::hybrid, CodecMode::off, HierLevel::flat},    // 2x2
      {10, 2, 4, Direction::hybrid, CodecMode::off, HierLevel::flat},   // 2x4
      {10, 4, 4, Direction::hybrid, CodecMode::gate, HierLevel::node},  // 4x4
      {10, 8, 4, Direction::top_down_only, CodecMode::off,
       HierLevel::node},                                                // 4x8
      {10, 8, 4, Direction::bottom_up_only, CodecMode::gate,
       HierLevel::socket},                                              // 4x8
      {10, 8, 8, Direction::hybrid, CodecMode::force_sparse,
       HierLevel::node},                                                // 8x8
      {10, 8, 8, Direction::hybrid, CodecMode::force_dense,
       HierLevel::socket},                                              // 8x8
  };
  const Variant s = vs[GetParam()];
  const graph::Csr g = make_csr(s.scale);
  const Grid2d grid = Grid2d::make(g.num_vertices(), s.nodes * s.ppn, s.ppn);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(s.nodes), sim::CostParams{},
                s.ppn);
  Bfs2dOptions o;
  o.direction = s.dir;
  o.codec = s.codec;
  // Pipelining only exists with a decode stage; chunks > 1 with the codec
  // off is a contradictory combination validate() now rejects.
  o.exchange_chunks = s.codec == CodecMode::off ? 1 : 4;
  o.hier = s.hier;

  const graph::Vertex root = first_root(g);
  std::vector<graph::Vertex> parent;
  const Bfs2dResult res = run_bfs_2d(c, d, root, &parent, o);
  const auto v = graph::validate_bfs_tree(g, root, parent);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(res.visited, v.visited);
  EXPECT_GT(res.time_ns, 0.0);
  EXPECT_EQ(res.levels, static_cast<int>(res.directions.size()));
  EXPECT_EQ(res.td_levels + res.bu_levels, res.levels);
  if (s.dir == bfs::Direction::top_down_only) {
    EXPECT_EQ(res.bu_levels, 0);
  }
  if (s.dir == bfs::Direction::bottom_up_only) {
    EXPECT_EQ(res.td_levels, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, Bfs2dMatrix, ::testing::Range(0, 8));

TEST(Bfs2d, MatchesOneDimensionalVisitedSet) {
  const graph::Csr g = make_csr(10, 21);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 16, 8);  // 2x8
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(2), sim::CostParams{}, 8);

  const graph::Vertex root = first_root(g);
  std::vector<graph::Vertex> parent2d;
  run_bfs_2d(c, d, root, &parent2d);
  const graph::BfsTree ref = graph::reference_bfs(g, root);
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(parent2d[v] != graph::kNoVertex,
              ref.reached(static_cast<graph::Vertex>(v)))
        << "vertex " << v;
}

TEST(Bfs2d, Deterministic) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 8, 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(2), sim::CostParams{}, 4);
  Bfs2dOptions o;
  o.codec = bfs::CodecMode::gate;
  o.exchange_chunks = 2;
  o.hier = rt::coll_model::HierLevel::node;
  const graph::Vertex root = first_root(g);
  std::vector<graph::Vertex> pa, pb;
  const Bfs2dResult a = run_bfs_2d(c, d, root, &pa, o);
  const Bfs2dResult b = run_bfs_2d(c, d, root, &pb, o);
  EXPECT_DOUBLE_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.visited, b.visited);
  EXPECT_EQ(a.directions, b.directions);
  EXPECT_EQ(pa, pb);
}

TEST(Bfs2d, IsolatedRoot) {
  const graph::Csr g = make_csr(9);
  graph::Vertex isolated = graph::kNoVertex;
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
    if (g.degree(static_cast<graph::Vertex>(v)) == 0) {
      isolated = static_cast<graph::Vertex>(v);
      break;
    }
  ASSERT_NE(isolated, graph::kNoVertex);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 4, 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 4);
  std::vector<graph::Vertex> parent;
  const Bfs2dResult res = run_bfs_2d(c, d, isolated, &parent);
  EXPECT_EQ(res.visited, 1u);
  EXPECT_EQ(parent[isolated], isolated);
}

TEST(Bfs2d, RejectsBadShapes) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 4, 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  // Cluster rank count != grid size.
  rt::Cluster c8(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 8);
  EXPECT_THROW(run_bfs_2d(c8, d, 0), std::invalid_argument);
  // ppn does not divide C: a 2x2 grid on ppn=4 leaves rows split.
  rt::Cluster c4(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 4);
  const Grid2d bad(g.num_vertices(), 2, 2);
  const DistGraph2d dbad = DistGraph2d::build(g, bad);
  EXPECT_THROW(run_bfs_2d(c4, dbad, 0), std::invalid_argument);
  // Root out of range.
  EXPECT_THROW(
      run_bfs_2d(c4, d, static_cast<graph::Vertex>(g.num_vertices())),
      std::invalid_argument);
}

TEST(Bfs2d, ExpandSmallerThanOneDAllgather) {
  // The point of 2-D: per-level expand moves a col-band (n/C per rank)
  // instead of the whole bitmap — its per-level cost must be below the 1-D
  // flat-ring exchange of the full frontier.
  const graph::Csr g = make_csr(12, 3);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 64, 8);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(8),
                sim::CostParams{}.with_paper_cache_scaling(g.num_vertices()),
                8);
  const Bfs2dResult res = run_bfs_2d(c, d, first_root(g));
  EXPECT_GT(res.expand_ns_per_level, 0.0);
  const double one_d =
      rt::coll_model::flat_ring(c, grid.padded() / 8 / 64).total_ns;
  EXPECT_LT(res.expand_ns_per_level, one_d);
}

// --- fault tolerance parity (satellite: checkpoint/adoption) ------------

TEST(Bfs2dFaults, SurvivesSingleRankCrash) {
  const graph::Csr g = make_csr(10, 5);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 16, 4);  // 4x4
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(4), sim::CostParams{}, 4);
  const graph::Vertex root = first_root(g);

  std::vector<graph::Vertex> healthy;
  const Bfs2dResult base = run_bfs_2d(c, d, root, &healthy);

  c.set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("crash:rank=2@level=2"), c.nranks(), c.ppn()));
  std::vector<graph::Vertex> parent;
  Bfs2dOptions o;
  o.hier = rt::coll_model::HierLevel::node;
  const Bfs2dResult res = run_bfs_2d(c, d, root, &parent, o);
  c.set_fault_injector(nullptr);

  const auto v = graph::validate_bfs_tree(g, root, parent);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(res.visited, base.visited);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_EQ(res.ranks_lost, 1);
  EXPECT_GT(res.profile_avg.counters().adoptions, 0u);
  // The rolled-back level re-runs: the wall clock exceeds the healthy run.
  EXPECT_GT(res.time_ns, base.time_ns);
}

TEST(Bfs2dFaults, RefusesCrashPlanWithoutCheckpointing) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid = Grid2d::make(g.num_vertices(), 4, 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 4);
  c.set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("checkpoint:off,crash:rank=1@level=1"),
      c.nranks(), c.ppn()));
  EXPECT_THROW(run_bfs_2d(c, d, first_root(g)), faults::FaultError);
  c.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace numabfs::bfs2d
