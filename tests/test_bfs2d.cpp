#include "bfs2d/bfs2d.hpp"

#include <gtest/gtest.h>

#include "graph/reference_bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::bfs2d {
namespace {

graph::Csr make_csr(int scale, std::uint64_t seed = 7) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = 8;
  p.seed = seed;
  return graph::Csr::from_edges(p.num_vertices(), graph::rmat_edges(p));
}

TEST(Grid2d, ShapeAndOwnership) {
  Grid2d g(1000, 16);
  EXPECT_EQ(g.r(), 4);
  EXPECT_EQ(g.np(), 16);
  EXPECT_GE(g.padded(), 1000u);
  EXPECT_EQ(g.padded() % (16 * 64), 0u);
  EXPECT_EQ(g.band_bits() * 4, g.padded());
  EXPECT_EQ(g.piece_bits() * 16, g.padded());
  // Every vertex owned exactly once, within the owner's piece range.
  for (std::uint64_t v = 0; v < 1000; ++v) {
    const int o = g.owner(v);
    EXPECT_GE(v, g.piece_begin(o));
    EXPECT_LT(v, g.piece_begin(o) + g.piece_bits());
    EXPECT_EQ(g.row_of(o), static_cast<int>(v / g.band_bits()));
  }
}

TEST(Grid2d, RejectsNonSquare) {
  EXPECT_THROW(Grid2d(100, 8), std::invalid_argument);
  EXPECT_THROW(Grid2d(100, 2), std::invalid_argument);
  EXPECT_NO_THROW(Grid2d(100, 1));
  EXPECT_NO_THROW(Grid2d(100, 64));
}

TEST(DistGraph2d, ConservesEveryDirectedEdge) {
  const graph::Csr g = make_csr(10);
  const Grid2d grid(g.num_vertices(), 16);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  std::uint64_t total = 0;
  for (const auto& b : d.blocks) {
    total += b.edges();
    EXPECT_TRUE(std::is_sorted(b.keys.begin(), b.keys.end()));
    EXPECT_EQ(b.offsets.size(), b.keys.size() + 1);
  }
  EXPECT_EQ(total, g.num_directed_edges());
}

TEST(DistGraph2d, BlockMembershipRespectsBands) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid(g.num_vertices(), 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  const std::uint64_t band = grid.band_bits();
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      const auto& b = d.blocks[static_cast<size_t>(grid.rank_at(i, j))];
      for (graph::Vertex u : b.keys) {
        EXPECT_GE(u / band, static_cast<std::uint64_t>(j));
        EXPECT_LT(u / band, static_cast<std::uint64_t>(j) + 1);
      }
      for (graph::Vertex v : b.targets)
        EXPECT_EQ(v / band, static_cast<std::uint64_t>(i));
    }
}

struct Shape {
  int scale, nodes, ppn;
};

class Bfs2dGrid : public ::testing::TestWithParam<int> {};

TEST_P(Bfs2dGrid, ProducesValidTreeOnSquareGrids) {
  static const Shape shapes[] = {
      {9, 1, 1},   // 1x1 grid
      {9, 1, 4},   // 2x2 grid
      {10, 2, 8},  // 4x4 grid
      {10, 8, 8},  // 8x8 grid, columns inter-node
  };
  const Shape s = shapes[GetParam()];
  const graph::Csr g = make_csr(s.scale);
  const Grid2d grid(g.num_vertices(), s.nodes * s.ppn);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(s.nodes), sim::CostParams{},
                s.ppn);

  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  std::vector<graph::Vertex> parent;
  const Bfs2dResult res = run_bfs_2d(c, d, root, &parent);
  const auto v = graph::validate_bfs_tree(g, root, parent);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(res.visited, v.visited);
  EXPECT_GT(res.time_ns, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grids, Bfs2dGrid, ::testing::Range(0, 4));

TEST(Bfs2d, MatchesOneDimensionalVisitedSet) {
  const graph::Csr g = make_csr(10, 21);
  const Grid2d grid(g.num_vertices(), 16);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(2), sim::CostParams{}, 8);

  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  std::vector<graph::Vertex> parent2d;
  run_bfs_2d(c, d, root, &parent2d);
  const graph::BfsTree ref = graph::reference_bfs(g, root);
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(parent2d[v] != graph::kNoVertex,
              ref.reached(static_cast<graph::Vertex>(v)))
        << "vertex " << v;
}

TEST(Bfs2d, Deterministic) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid(g.num_vertices(), 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 4);
  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  const Bfs2dResult a = run_bfs_2d(c, d, root);
  const Bfs2dResult b = run_bfs_2d(c, d, root);
  EXPECT_DOUBLE_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.visited, b.visited);
}

TEST(Bfs2d, IsolatedRoot) {
  const graph::Csr g = make_csr(9);
  graph::Vertex isolated = graph::kNoVertex;
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
    if (g.degree(static_cast<graph::Vertex>(v)) == 0) {
      isolated = static_cast<graph::Vertex>(v);
      break;
    }
  ASSERT_NE(isolated, graph::kNoVertex);
  const Grid2d grid(g.num_vertices(), 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 4);
  std::vector<graph::Vertex> parent;
  const Bfs2dResult res = run_bfs_2d(c, d, isolated, &parent);
  EXPECT_EQ(res.visited, 1u);
  EXPECT_EQ(parent[isolated], isolated);
}

TEST(Bfs2d, RejectsShapeMismatch) {
  const graph::Csr g = make_csr(9);
  const Grid2d grid(g.num_vertices(), 4);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(1), sim::CostParams{}, 8);
  EXPECT_THROW(run_bfs_2d(c, d, 0), std::invalid_argument);
}

TEST(Bfs2d, ExpandSmallerThanOneDAllgather) {
  // The point of 2-D: per-level expand moves a band (n/sqrt(np)) instead of
  // the whole bitmap — its per-level cost must be below the 1-D exchange.
  const graph::Csr g = make_csr(12, 3);
  const Grid2d grid(g.num_vertices(), 64);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(8),
                sim::CostParams{}.with_paper_cache_scaling(g.num_vertices()),
                8);
  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;
  const Bfs2dResult res = run_bfs_2d(c, d, root);
  EXPECT_GT(res.expand_ns_per_level, 0.0);
  const double one_d = rt::coll_model::flat_ring(
                           c, grid.padded() / 8 / 64)
                           .total_ns;
  EXPECT_LT(res.expand_ns_per_level, one_d);
}

}  // namespace
}  // namespace numabfs::bfs2d

namespace numabfs::bfs2d {
namespace {

TEST(Bfs2d, SharedFoldReducesCommWithoutChangingTree) {
  // The paper's sharing composed onto the 2-D row exchange: same tree,
  // strictly cheaper fold (the CICO bounce disappears).
  const graph::Csr g = make_csr(11, 9);
  const Grid2d grid(g.num_vertices(), 64);
  const DistGraph2d d = DistGraph2d::build(g, grid);
  rt::Cluster c(sim::Topology::xeon_x7550_cluster(8), sim::CostParams{}, 8);
  graph::Vertex root = 0;
  while (g.degree(root) == 0) ++root;

  std::vector<graph::Vertex> pa, pb;
  const Bfs2dResult plain = run_bfs_2d(c, d, root, &pa);
  Bfs2dOptions o;
  o.shared_fold = true;
  const Bfs2dResult shared = run_bfs_2d(c, d, root, &pb, o);
  EXPECT_EQ(pa, pb);
  EXPECT_LT(shared.fold_ns_per_level, plain.fold_ns_per_level);
  EXPECT_LT(shared.time_ns, plain.time_ns);
  EXPECT_DOUBLE_EQ(shared.expand_ns_per_level, plain.expand_ns_per_level);
}

}  // namespace
}  // namespace numabfs::bfs2d
