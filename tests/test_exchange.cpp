// SPMD-level tests of the communication phase: every sharing plan must
// produce identical in_queue / in_queue_summary contents and leave the out
// structures clean — the data movement is real, so this checks the actual
// exchange plumbing (leader copies, subgroup slices, summary OR-merges).

#include <gtest/gtest.h>

#include "bfs/exchange.hpp"
#include "graph/rmat.hpp"

namespace numabfs::bfs {
namespace {

struct Fixture {
  graph::Csr csr;
  graph::DistGraph dg;
  rt::Cluster cluster;
  Fixture(int nodes, int ppn, int scale = 11)
      : csr(make_csr(scale)),
        dg(graph::DistGraph::build(
            csr, graph::Partition1D(csr.num_vertices(), nodes * ppn))),
        cluster(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{},
                ppn) {}

  static graph::Csr make_csr(int scale) {
    graph::RmatParams p;
    p.scale = scale;
    p.edgefactor = 8;
    return graph::Csr::from_edges(p.num_vertices(), graph::rmat_edges(p));
  }
};

/// Deterministic pseudo-random out pattern for rank r.
void fill_out(DistState& st, const graph::DistGraph& dg, int r) {
  auto out_q = st.out_queue(r);
  auto out_s = st.out_summary(r);
  const std::uint64_t vb = dg.part.begin(r), ve = dg.part.end(r);
  for (std::uint64_t v = vb; v < ve; ++v) {
    if (graph::splitmix64(v * 31 + static_cast<std::uint64_t>(r)) % 5 == 0) {
      out_q.set(v);
      out_s.mark(v);
    }
  }
}

class ExchangePlans : public ::testing::TestWithParam<int> {};

Config plan_config(int plan) {
  switch (plan) {
    case 0: return original();
    case 1: {
      Config c = original();
      c.base_algo = rt::AllgatherAlgo::leader_ring;
      return c;
    }
    case 2: return share_in_queue();
    case 3: return share_all();
    case 4: return par_allgather();
    case 5: {
      Config c = par_allgather();
      c.summary_granularity = 100;  // non-power-of-two granularity
      return c;
    }
    default: {
      Config c = par_allgather();
      c.summary_granularity = 1024;
      return c;
    }
  }
}

TEST_P(ExchangePlans, AssemblesIdenticalFrontiers) {
  const Config cfg = plan_config(GetParam());
  Fixture f(2, 8);
  const int np = f.cluster.nranks();
  DistState st(f.dg, cfg, 2, 8);

  // Reference: the union of all out chunks.
  graph::Bitmap expect_q(st.padded_bits());
  for (int r = 0; r < np; ++r) {
    const std::uint64_t vb = f.dg.part.begin(r), ve = f.dg.part.end(r);
    for (std::uint64_t v = vb; v < ve; ++v)
      if (graph::splitmix64(v * 31 + static_cast<std::uint64_t>(r)) % 5 == 0)
        expect_q.view().set(v);
  }

  const StructSizes sz{};  // unit costs irrelevant for data correctness
  const UnitCosts u = unit_costs(f.cluster, cfg, sz);

  f.cluster.run([&](rt::Proc& p) {
    fill_out(st, f.dg, p.rank);
    p.barrier(f.cluster.world(), sim::Phase::stall);
    exchange_frontier(p, f.dg, st, u, sim::Phase::bu_comm);
  });

  const std::uint64_t g = cfg.summary_granularity;
  for (int r = 0; r < np; ++r) {
    auto in_q = st.in_queue(r);
    auto in_s = st.in_summary(r);
    for (std::uint64_t v = 0; v < st.padded_bits(); ++v) {
      ASSERT_EQ(in_q.get(v), expect_q.view().get(v))
          << "plan " << GetParam() << " rank " << r << " bit " << v;
    }
    // Summary must be the exact OR-reduction of in_queue blocks.
    for (std::uint64_t b = 0; b * g < st.padded_bits(); ++b) {
      const std::uint64_t lo = b * g;
      const std::uint64_t hi = std::min(st.padded_bits(), lo + g);
      ASSERT_EQ(in_s.covers(lo), expect_q.view().count_range(lo, hi) != 0)
          << "plan " << GetParam() << " rank " << r << " block " << b;
    }
    // Out structures must be clean for the next level.
    ASSERT_FALSE(st.out_queue(r).any()) << "plan " << GetParam();
    ASSERT_FALSE(st.out_summary(r).bits().any()) << "plan " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, ExchangePlans, ::testing::Range(0, 7));

TEST(ExchangeSparse, AssemblesSortedGlobalFrontier) {
  Fixture f(2, 4);
  const int np = f.cluster.nranks();
  DistState st(f.dg, original(), 2, 4);
  const UnitCosts u{};

  f.cluster.run([&](rt::Proc& p) {
    auto& d = st.discovered(p.rank);
    d.clear();
    // Each rank discovers a few of its owned vertices, ascending.
    const std::uint64_t vb = f.dg.part.begin(p.rank);
    for (std::uint64_t i = 0; i < 5; ++i)
      d.push_back(static_cast<graph::Vertex>(vb + i * 7));
    exchange_sparse(p, f.dg, st, u, sim::Phase::td_comm, false);
  });

  for (int r = 0; r < np; ++r) {
    const auto& fr = st.frontier(r);
    ASSERT_EQ(fr.size(), 5u * static_cast<size_t>(np));
    EXPECT_TRUE(std::is_sorted(fr.begin(), fr.end()));
    EXPECT_EQ(fr, st.frontier(0));
  }
}

TEST(ExchangeSparse, WipeOutClearsBitmaps) {
  Fixture f(2, 4);
  DistState st(f.dg, share_all(), 2, 4);
  const UnitCosts u{};
  f.cluster.run([&](rt::Proc& p) {
    fill_out(st, f.dg, p.rank);
    st.discovered(p.rank).clear();
    p.barrier(f.cluster.world(), sim::Phase::stall);
    exchange_sparse(p, f.dg, st, u, sim::Phase::td_comm, /*wipe_out=*/true);
  });
  for (int r = 0; r < f.cluster.nranks(); ++r) {
    EXPECT_FALSE(st.out_queue(r).any());
    EXPECT_FALSE(st.out_summary(r).bits().any());
  }
}

TEST(Exchange, TimesAreIdenticalAcrossRanks) {
  Fixture f(2, 8);
  DistState st(f.dg, par_allgather(), 2, 8);
  const UnitCosts u{};
  f.cluster.run([&](rt::Proc& p) {
    fill_out(st, f.dg, p.rank);
    p.barrier(f.cluster.world(), sim::Phase::stall);
    exchange_frontier(p, f.dg, st, u, sim::Phase::bu_comm);
    p.barrier(f.cluster.world(), sim::Phase::stall);
  });
  // Bitmap exchanges are symmetric: every rank must end clock-aligned with
  // identical bu_comm charges (stall differences get their own phase).
  const double t0 = f.cluster.profiles()[0].get(sim::Phase::bu_comm);
  EXPECT_GT(t0, 0.0);
  for (const auto& pr : f.cluster.profiles())
    EXPECT_NEAR(pr.get(sim::Phase::bu_comm), t0, t0 * 1e-9);
}

TEST(Exchange, ShareReducesModeledTotal) {
  Fixture f(4, 8);
  const UnitCosts u{};
  double prev = 1e300;
  for (int plan : {0, 2, 3, 4}) {
    const Config cfg = plan_config(plan);
    DistState st(f.dg, cfg, 4, 8);
    double total = 0;
    f.cluster.run([&](rt::Proc& p) {
      fill_out(st, f.dg, p.rank);
      p.barrier(f.cluster.world(), sim::Phase::stall);
      const ExchangeTimes t =
          exchange_frontier(p, f.dg, st, u, sim::Phase::bu_comm);
      if (p.rank == 0) total = t.total_ns;
    });
    EXPECT_LT(total, prev) << "plan " << plan;
    prev = total;
  }
}

}  // namespace
}  // namespace numabfs::bfs
