/// \file test_frontdoor.cpp
/// The replicated serving tier: heartbeat detection closed form, SLO-aware
/// admission with exact degraded answers, mid-query failover onto a healthy
/// replica, and bit-reproducible chaos accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "bfs/config.hpp"
#include "engine/frontdoor.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_algos.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/weights.hpp"
#include "harness/graph500.hpp"

namespace numabfs::engine {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

constexpr double kInf = std::numeric_limits<double>::infinity();

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  return eo;
}

void attach_plan(rt::Cluster& c, const std::string& spec) {
  c.set_fault_injector(std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse(spec), c.nranks(), c.ppn()));
}

Query make_query(int id, QueryKind kind, graph::Vertex s, double arrival,
                 graph::Vertex t = 0, int k = 0) {
  Query q;
  q.id = id;
  q.kind = kind;
  q.source = s;
  q.target = t;
  q.k = k;
  q.arrival_ns = arrival;
  return q;
}

// ---------------------------------------------------------------------------
// Heartbeat detection closed form
// ---------------------------------------------------------------------------

TEST(Heartbeat, InfiniteOutageNeverDetects) {
  EXPECT_EQ(heartbeat_detect_ns(kInf, 2.5e5, 5e4, 3), kInf);
}

TEST(Heartbeat, FirstFailingProbeThenBackoffLadder) {
  // Outage exactly on a probe instant: that probe is already lost
  // (heartbeat_ok is now < outage), then 2 backoff re-probes at +b, +3b.
  EXPECT_DOUBLE_EQ(heartbeat_detect_ns(1.0e6, 2.5e5, 5e4, 3),
                   1.0e6 + 5e4 * 3);
  // Outage mid-interval: the next probe at 1.25e6 is the first loss.
  EXPECT_DOUBLE_EQ(heartbeat_detect_ns(1.1e6, 2.5e5, 5e4, 3),
                   1.25e6 + 5e4 * 3);
  // threshold=1: the first lost probe alone confirms the death.
  EXPECT_DOUBLE_EQ(heartbeat_detect_ns(1.1e6, 2.5e5, 5e4, 1), 1.25e6);
  // Outage at t=0: probe 0 is lost; detection is the pure backoff ladder.
  EXPECT_DOUBLE_EQ(heartbeat_detect_ns(0.0, 2.5e5, 5e4, 4), 5e4 * 7);
}

TEST(Heartbeat, DetectionIsMonotoneInThreshold) {
  double prev = 0;
  for (int th = 1; th <= 6; ++th) {
    const double d = heartbeat_detect_ns(3.3e6, 2e5, 1e5, th);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

// ---------------------------------------------------------------------------
// Fault-free serving: everything served, exactly, on any replica
// ---------------------------------------------------------------------------

TEST(FrontDoorServe, FaultFreeServesEverythingExactly) {
  const GraphBundle b = GraphBundle::make(10, 16, 4, 16);
  Experiment ex0(b, shape(2, 2)), ex1(b, shape(2, 2));

  std::map<graph::Vertex, graph::BfsTree> ref;
  FrontDoorConfig fdc;
  fdc.max_batch = 8;
  fdc.sink = [&](int, std::span<const WaveQuery> wq, const WaveResult& wr,
                 WaveState& state) {
    ASSERT_EQ(wr.lanes.size(), wq.size());
    for (std::size_t l = 0; l < wq.size(); ++l) {
      if (wq[l].kind != QueryKind::full_distances || !wr.lanes[l].finished)
        continue;
      auto [it, inserted] = ref.try_emplace(wq[l].source);
      if (inserted) it->second = graph::reference_bfs(b.csr, wq[l].source);
      const auto dist =
          gather_lane_distances(ex0.dist(), state, static_cast<int>(l));
      for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v) {
        if (it->second.reached(v))
          ASSERT_EQ(dist[v], it->second.depth[v]);
        else
          ASSERT_EQ(dist[v], kUnreached);
      }
    }
  };
  FrontDoor door(bfs::share_all(), fdc,
                 {{&ex0.cluster(), &ex0.dist()}, {&ex1.cluster(), &ex1.dist()}});
  EXPECT_EQ(door.replicas(), 2);

  WorkloadSpec s;
  s.num_queries = 24;
  s.seed = 5;
  s.mean_interarrival_ns = 2e5;
  s.st_fraction = 0.25;
  s.khop_fraction = 0.25;
  const auto qs = QueryEngine::generate(ex0.dist(), s);
  const FrontDoorReport rep = door.serve(qs);

  ASSERT_EQ(rep.results.size(), 24u);
  EXPECT_EQ(rep.failovers, 0);
  EXPECT_EQ(rep.replicas_lost, 0);
  EXPECT_EQ(rep.shed + rep.degraded, 0);
  int submitted = 0;
  for (const auto& cs : rep.cls) submitted += cs.submitted;
  EXPECT_EQ(submitted, 24);
  for (const ServedQuery& r : rep.results) {
    EXPECT_EQ(r.outcome, Outcome::served);
    EXPECT_GE(r.admit_ns, r.arrival_ns);
    EXPECT_GE(r.start_ns, r.admit_ns);
    EXPECT_GT(r.complete_ns, r.start_ns);
    EXPECT_GE(r.replica, 0);
    EXPECT_LT(r.replica, 2);
    EXPECT_GT(r.visited, 0u);
  }
  // With generous default SLOs on a tiny graph everything attains.
  for (const auto& cs : rep.cls) EXPECT_DOUBLE_EQ(cs.attainment, 1.0);
}

TEST(FrontDoorServe, TwoReplicasOverlapWavesInVirtualTime) {
  const GraphBundle b = GraphBundle::make(10, 16, 6, 16);
  Experiment ex0(b, shape(1, 2)), ex1(b, shape(1, 2));
  FrontDoorConfig fdc;
  fdc.max_batch = 1;  // force many waves
  FrontDoor door(bfs::original(), fdc,
                 {{&ex0.cluster(), &ex0.dist()}, {&ex1.cluster(), &ex1.dist()}});
  WorkloadSpec s;
  s.num_queries = 8;
  s.seed = 3;
  s.mean_interarrival_ns = 1.0;  // a burst at ~t=0
  const auto qs = QueryEngine::generate(ex0.dist(), s);
  const FrontDoorReport rep = door.serve(qs);
  EXPECT_EQ(rep.waves, 8);
  // Two replicas drained the burst concurrently: summed busy time exceeds
  // the wall time one replica would need.
  EXPECT_GT(rep.busy_ns, rep.total_ns * 1.5);
  int used[2] = {0, 0};
  for (const ServedQuery& r : rep.results) ++used[r.replica];
  EXPECT_GT(used[0], 0);
  EXPECT_GT(used[1], 0);
}

TEST(FrontDoorServe, RejectsBadConstruction) {
  const GraphBundle b = GraphBundle::make(8, 16, 2, 8);
  Experiment ex0(b, shape(1, 2)), ex1(b, shape(2, 2));
  EXPECT_THROW(FrontDoor(bfs::share_all(), {}, {}), std::invalid_argument);
  // Mismatched cluster shapes across replicas.
  EXPECT_THROW(
      FrontDoor(bfs::share_all(), {},
                {{&ex0.cluster(), &ex0.dist()}, {&ex1.cluster(), &ex1.dist()}}),
      std::invalid_argument);
  FrontDoorConfig bad;
  bad.max_batch = 65;
  EXPECT_THROW(FrontDoor(bfs::share_all(), bad, {{&ex0.cluster(), &ex0.dist()}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Graceful degradation: cached answers are exact, never approximate
// ---------------------------------------------------------------------------

TEST(FrontDoorServe, DegradedReachAndKhopMatchReference) {
  const GraphBundle b = GraphBundle::make(10, 16, 9, 16);
  Experiment ex(b, shape(2, 2));
  const graph::Vertex root = b.roots[0];
  const graph::Vertex other = b.roots[1];
  const graph::BfsTree ref = graph::reference_bfs(b.csr, root);

  graph::Vertex inside = root;
  for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v)
    if (v != root && ref.reached(v)) {
      inside = v;
      break;
    }
  graph::Vertex outside = graph::kNoVertex;
  for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v)
    if (!ref.reached(v)) {
      outside = v;
      break;
    }

  FrontDoorConfig fdc;
  fdc.slo.khop_ns = 1.0;
  fdc.slo.reach_ns = 1.0;
  FrontDoor door(bfs::share_all(), fdc, {{&ex.cluster(), &ex.dist()}});

  const double late = 1e9;
  std::vector<Query> qs;
  int id = 0;
  qs.push_back(make_query(id++, QueryKind::full_distances, root, 0.0));
  qs.push_back(make_query(id++, QueryKind::k_hop, root, late, 0, 2));
  qs.push_back(make_query(id++, QueryKind::st_reachability, root, late, inside));
  if (outside != graph::kNoVertex)
    qs.push_back(
        make_query(id++, QueryKind::st_reachability, root, late, outside));
  // Uncached source: must shed, never guess.
  qs.push_back(make_query(id++, QueryKind::k_hop, other, late, 0, 2));
  const FrontDoorReport rep = door.serve(qs);

  ASSERT_EQ(rep.results[0].outcome, Outcome::served);

  // k-hop from the cached root: exact neighborhood count.
  std::uint64_t expect_k2 = 0;
  for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v)
    expect_k2 += ref.reached(v) && ref.depth[v] <= 2;
  ASSERT_EQ(rep.results[1].outcome, Outcome::degraded);
  EXPECT_EQ(rep.results[1].visited, expect_k2);
  EXPECT_EQ(rep.results[1].replica, -1);

  // Reachability within the cached component: true.
  ASSERT_EQ(rep.results[2].outcome, Outcome::degraded);
  EXPECT_TRUE(rep.results[2].reached);

  std::size_t next = 3;
  if (outside != graph::kNoVertex) {
    ASSERT_EQ(rep.results[next].outcome, Outcome::degraded);
    EXPECT_FALSE(rep.results[next].reached);
    ++next;
  }
  // The uncached k-hop source has no exact answer: shed, counted as missed.
  EXPECT_EQ(rep.results[next].outcome, Outcome::shed);
  EXPECT_TRUE(std::isnan(rep.results[next].complete_ns));
  EXPECT_GT(rep.shed, 0);
  EXPECT_GT(rep.degraded, 0);
  EXPECT_LT(rep.cls[static_cast<int>(SloClass::k_hop)].attainment, 1.0);
}

TEST(FrontDoorServe, FullDistanceIsNeverShed) {
  const GraphBundle b = GraphBundle::make(10, 16, 4, 16);
  Experiment ex(b, shape(2, 2));
  FrontDoorConfig fdc;
  fdc.max_batch = 4;
  // Impossible deadlines for every class: full-distance still always rides.
  fdc.slo.full_ns = 1.0;
  fdc.slo.khop_ns = 1.0;
  fdc.slo.reach_ns = 1.0;
  FrontDoor door(bfs::share_all(), fdc, {{&ex.cluster(), &ex.dist()}});
  WorkloadSpec s;
  s.num_queries = 20;
  s.seed = 7;
  s.mean_interarrival_ns = 1e5;
  s.st_fraction = 0.3;
  s.khop_fraction = 0.3;
  const auto qs = QueryEngine::generate(ex.dist(), s);
  const FrontDoorReport rep = door.serve(qs);
  EXPECT_EQ(rep.cls[static_cast<int>(SloClass::full_distance)].shed, 0);
  EXPECT_EQ(rep.cls[static_cast<int>(SloClass::full_distance)].attainment, 0.0);
  for (const ServedQuery& r : rep.results) {
    if (r.cls == SloClass::full_distance) {
      EXPECT_EQ(r.outcome, Outcome::served);
    }
  }
}

// ---------------------------------------------------------------------------
// Mid-query failover
// ---------------------------------------------------------------------------

/// Serve a burst of full-distance queries with replica 0 dying mid-wave at
/// `outage_ns`, validating every finished lane against the reference BFS.
FrontDoorReport failover_run(const GraphBundle& b, Experiment& ex0,
                             Experiment& ex1, double outage_ns,
                             std::map<graph::Vertex, graph::BfsTree>& ref) {
  attach_plan(ex0.cluster(),
              "seed:3,outage:at=" + std::to_string(outage_ns));
  ex1.cluster().set_fault_injector(nullptr);

  FrontDoorConfig fdc;
  fdc.max_batch = 8;
  fdc.sink = [&](int, std::span<const WaveQuery> wq, const WaveResult& wr,
                 WaveState& state) {
    for (std::size_t l = 0; l < wq.size(); ++l) {
      if (wq[l].kind != QueryKind::full_distances || !wr.lanes[l].finished)
        continue;
      auto [it, inserted] = ref.try_emplace(wq[l].source);
      if (inserted) it->second = graph::reference_bfs(b.csr, wq[l].source);
      const auto dist =
          gather_lane_distances(ex0.dist(), state, static_cast<int>(l));
      for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v) {
        if (it->second.reached(v))
          ASSERT_EQ(dist[v], it->second.depth[v]);
        else
          ASSERT_EQ(dist[v], kUnreached);
      }
    }
  };
  FrontDoor door(bfs::share_all(), fdc,
                 {{&ex0.cluster(), &ex0.dist()}, {&ex1.cluster(), &ex1.dist()}});
  std::vector<Query> qs;
  for (int i = 0; i < 8; ++i)
    qs.push_back(make_query(i, QueryKind::full_distances,
                            b.roots[static_cast<std::size_t>(i) % b.roots.size()],
                            0.0));
  return door.serve(qs);
}

TEST(FrontDoorServe, MidWaveOutageFailsOverAndStaysExact) {
  const GraphBundle b = GraphBundle::make(10, 16, 7, 16);
  Experiment ex0(b, shape(2, 2)), ex1(b, shape(2, 2));

  // Measure a clean wave to place the outage mid-flight.
  std::map<graph::Vertex, graph::BfsTree> ref;
  const FrontDoorReport clean = failover_run(b, ex0, ex1, 1e30, ref);
  ASSERT_EQ(clean.failovers, 0);
  const double wave_ns = clean.busy_ns / clean.waves;
  const double outage = 0.5 * wave_ns;

  const FrontDoorReport rep = failover_run(b, ex0, ex1, outage, ref);
  EXPECT_GE(rep.failovers, 1);
  EXPECT_EQ(rep.replicas_lost, 1);
  EXPECT_GT(rep.failover_blip_ns, 0.0);
  EXPECT_EQ(rep.shed, 0);
  int failed_over = 0;
  for (const ServedQuery& r : rep.results) {
    ASSERT_TRUE(r.outcome == Outcome::served ||
                r.outcome == Outcome::failed_over);
    EXPECT_GT(r.visited, 0u);
    if (r.outcome == Outcome::failed_over) {
      ++failed_over;
      EXPECT_EQ(r.replica, 1);  // completed on the survivor
    }
  }
  EXPECT_GE(failed_over, 1);
  // The blip costs real virtual time.
  EXPECT_GT(rep.total_ns, clean.total_ns);

  // Visited counts agree with the undisturbed run: failover changed
  // latency, never answers.
  for (std::size_t i = 0; i < rep.results.size(); ++i)
    EXPECT_EQ(rep.results[i].visited, clean.results[i].visited);
}

TEST(FrontDoorServe, FailoverIsBitDeterministic) {
  const GraphBundle b = GraphBundle::make(10, 16, 7, 16);
  Experiment ex0(b, shape(2, 2)), ex1(b, shape(2, 2));
  std::map<graph::Vertex, graph::BfsTree> ref;
  const FrontDoorReport probe = failover_run(b, ex0, ex1, 1e30, ref);
  const double outage = 0.5 * probe.busy_ns / probe.waves;

  const FrontDoorReport r1 = failover_run(b, ex0, ex1, outage, ref);
  const FrontDoorReport r2 = failover_run(b, ex0, ex1, outage, ref);
  EXPECT_EQ(r1.total_ns, r2.total_ns);
  EXPECT_EQ(r1.failover_blip_ns, r2.failover_blip_ns);
  EXPECT_EQ(r1.failovers, r2.failovers);
  for (int c = 0; c < static_cast<int>(SloClass::kCount); ++c) {
    EXPECT_EQ(r1.cls[c].p50_ns, r2.cls[c].p50_ns);
    EXPECT_EQ(r1.cls[c].p99_ns, r2.cls[c].p99_ns);
  }
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(r1.results[i].complete_ns, r2.results[i].complete_ns);
    EXPECT_EQ(r1.results[i].outcome, r2.results[i].outcome);
  }
}

TEST(FrontDoorServe, AllReplicasDownMarksRemainderLost) {
  const GraphBundle b = GraphBundle::make(10, 16, 4, 16);
  Experiment ex(b, shape(2, 2));
  attach_plan(ex.cluster(), "seed:1,outage:at=1e4");
  FrontDoorConfig fdc;
  FrontDoor door(bfs::share_all(), fdc, {{&ex.cluster(), &ex.dist()}});
  std::vector<Query> qs;
  // Arrive well after the only replica died and was detected.
  for (int i = 0; i < 4; ++i)
    qs.push_back(make_query(i, QueryKind::full_distances, b.roots[0], 1e8));
  const FrontDoorReport rep = door.serve(qs);
  for (const ServedQuery& r : rep.results) {
    EXPECT_EQ(r.outcome, Outcome::lost);
    EXPECT_TRUE(std::isnan(r.complete_ns));
  }
  EXPECT_DOUBLE_EQ(rep.shed_rate, 1.0);
  EXPECT_EQ(rep.replicas_lost, 1);
}

// ---------------------------------------------------------------------------
// Degradation cache vs the dynamic-graph epoch
// ---------------------------------------------------------------------------

TEST(FrontDoorServe, CachedDegradedAnswersDieWithTheirEpoch) {
  const GraphBundle b = GraphBundle::make(10, 16, 9, 16);
  Experiment ex(b, shape(2, 2));
  const graph::Vertex root = b.roots[0];

  // A graph source serving the same snapshot content under a controllable
  // epoch stamp: epoch 1 until t = 5e8, then (optionally) epoch 2. The
  // full-distance BFS at t=0 populates the degradation cache under epoch 1;
  // the k-hop at t=1e9 pins whatever the source says *then*.
  const auto run = [&](bool advance) {
    FrontDoorConfig fdc;
    fdc.slo.khop_ns = 1.0;  // k-hop can never ride a wave: degrade or shed
    std::shared_ptr<const graph::DistGraph> alias(std::shared_ptr<void>(),
                                                  &ex.dist());
    fdc.graph_source = [&, alias, advance](double now) {
      PinnedGraph pg;
      pg.epoch = advance && now > 5e8 ? 2 : 1;
      pg.graph = alias;
      return pg;
    };
    FrontDoor door(bfs::share_all(), fdc, {{&ex.cluster(), &ex.dist()}});
    std::vector<Query> qs;
    qs.push_back(make_query(0, QueryKind::full_distances, root, 0.0));
    qs.push_back(make_query(1, QueryKind::k_hop, root, 1e9, 0, 2));
    return door.serve(qs);
  };

  // Control: the epoch holds still, so the cached labeling is valid and the
  // late k-hop is answered exactly from it.
  const FrontDoorReport same = run(false);
  ASSERT_EQ(same.results[0].outcome, Outcome::served);
  EXPECT_EQ(same.results[0].epoch, 1u);
  ASSERT_EQ(same.results[1].outcome, Outcome::degraded);

  // Regression (the staleness bug): once the serving epoch moves past the
  // cached labeling, the cache must refuse — shed, never a stale answer.
  const FrontDoorReport moved = run(true);
  ASSERT_EQ(moved.results[0].outcome, Outcome::served);
  EXPECT_EQ(moved.results[0].epoch, 1u);
  EXPECT_EQ(moved.results[1].outcome, Outcome::shed);
}

// ---------------------------------------------------------------------------
// Analytics: background program dispatches
// ---------------------------------------------------------------------------

TEST(FrontDoorServe, AnalyticsIsBackgroundNeverShedAndExact) {
  const GraphBundle b = GraphBundle::make(10, 16, 6, 16);
  Experiment ex(b, shape(2, 2));
  FrontDoorConfig fdc;
  fdc.max_batch = 8;
  // Impossible deadlines for every class: interactive k-hop/reachability
  // degrade or shed, but analytics never does — it is background work with
  // a reporting-only objective.
  fdc.slo.khop_ns = 1.0;
  fdc.slo.reach_ns = 1.0;
  fdc.slo.analytics_ns = 1.0;
  FrontDoor door(bfs::share_all(), fdc, {{&ex.cluster(), &ex.dist()}});

  WorkloadSpec s;
  s.num_queries = 32;
  s.seed = 19;
  s.mean_interarrival_ns = 2e5;
  s.st_fraction = 0.15;
  s.khop_fraction = 0.15;
  s.sssp_fraction = 0.15;
  s.pagerank_fraction = 0.1;
  s.components_fraction = 0.1;
  s.triangles_fraction = 0.1;
  const auto qs = QueryEngine::generate(ex.dist(), s);
  const FrontDoorReport rep = door.serve(qs);

  const auto comp_ref = graph::ref_components(b.csr);
  std::uint64_t ncomp = 0;
  for (std::size_t v = 0; v < comp_ref.size(); ++v) ncomp += comp_ref[v] == v;

  int programs = 0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (!is_program_kind(qs[i].kind)) continue;
    ++programs;
    const ServedQuery& r = rep.results[i];
    EXPECT_EQ(r.cls, SloClass::analytics);
    EXPECT_EQ(r.outcome, Outcome::served);
    EXPECT_GE(r.replica, 0);
    switch (qs[i].kind) {
      case QueryKind::sssp: {
        const auto ref = graph::ref_sssp(
            b.csr, graph::EdgeWeights{fdc.programs.weight_seed,
                                      fdc.programs.sssp_max_weight},
            qs[i].source);
        ASSERT_NE(ref[qs[i].target], graph::kInfDist);
        EXPECT_EQ(r.value, static_cast<double>(ref[qs[i].target]));
        break;
      }
      case QueryKind::pagerank:
        EXPECT_GT(r.value, 0.0);
        break;
      case QueryKind::components:
        EXPECT_EQ(r.value, static_cast<double>(ncomp));
        break;
      case QueryKind::triangles:
        EXPECT_EQ(r.value, static_cast<double>(graph::ref_triangles(b.csr)));
        break;
      default:
        FAIL();
    }
  }
  ASSERT_GT(programs, 0);
  EXPECT_EQ(rep.program_runs, programs);
  const auto& cs = rep.cls[static_cast<int>(SloClass::analytics)];
  EXPECT_EQ(cs.submitted, programs);
  EXPECT_EQ(cs.served, programs);
  EXPECT_EQ(cs.shed, 0);
  EXPECT_EQ(cs.degraded, 0);
  // The interactive classes did feel the impossible deadlines.
  EXPECT_GT(rep.shed + rep.degraded, 0);
}

TEST(FrontDoorServe, AnalyticsFailsOverMidProgramAndStaysExact) {
  const GraphBundle b = GraphBundle::make(10, 16, 7, 16);
  Experiment ex0(b, shape(2, 2)), ex1(b, shape(2, 2));

  const auto run = [&](double outage_ns) {
    attach_plan(ex0.cluster(), "seed:3,outage:at=" + std::to_string(outage_ns));
    ex1.cluster().set_fault_injector(nullptr);
    FrontDoorConfig fdc;
    FrontDoor door(
        bfs::share_all(), fdc,
        {{&ex0.cluster(), &ex0.dist()}, {&ex1.cluster(), &ex1.dist()}});
    std::vector<Query> qs;
    qs.push_back(make_query(0, QueryKind::components, 0, 0.0));
    return door.serve(qs);
  };

  // Clean run (outage far in the future) to place the mid-program outage
  // and pin the ground-truth answer.
  const FrontDoorReport clean = run(1e30);
  ASSERT_EQ(clean.failovers, 0);
  ASSERT_EQ(clean.results[0].outcome, Outcome::served);
  const auto comp_ref = graph::ref_components(b.csr);
  std::uint64_t ncomp = 0;
  for (std::size_t v = 0; v < comp_ref.size(); ++v) ncomp += comp_ref[v] == v;
  ASSERT_EQ(clean.results[0].value, static_cast<double>(ncomp));

  const double outage = 0.5 * clean.results[0].complete_ns;
  const FrontDoorReport r1 = run(outage);
  EXPECT_GE(r1.failovers, 1);
  EXPECT_EQ(r1.replicas_lost, 1);
  EXPECT_GT(r1.failover_blip_ns, 0.0);
  ASSERT_EQ(r1.results[0].outcome, Outcome::failed_over);
  EXPECT_EQ(r1.results[0].replica, 1);  // completed on the survivor
  EXPECT_EQ(r1.results[0].value, static_cast<double>(ncomp));
  // The blip costs virtual time, never the answer.
  EXPECT_GT(r1.results[0].complete_ns, clean.results[0].complete_ns);

  // Bit-deterministic, like everything else in the tier.
  const FrontDoorReport r2 = run(outage);
  EXPECT_EQ(r1.total_ns, r2.total_ns);
  EXPECT_EQ(r1.failover_blip_ns, r2.failover_blip_ns);
  EXPECT_EQ(r1.results[0].complete_ns, r2.results[0].complete_ns);
  EXPECT_EQ(r1.results[0].value, r2.results[0].value);
}

}  // namespace
}  // namespace numabfs::engine
