#include "graph/edgelist_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/rmat.hpp"

namespace numabfs::graph {
namespace {

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EdgelistIo, RoundTrip) {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 4;
  const auto edges = rmat_edges(p);
  const std::string path = tmp_path("numabfs_io_roundtrip.bin");
  save_edges(path, p.num_vertices(), edges);
  const LoadedEdges got = load_edges(path);
  EXPECT_EQ(got.num_vertices, p.num_vertices());
  ASSERT_EQ(got.edges.size(), edges.size());
  EXPECT_TRUE(std::equal(edges.begin(), edges.end(), got.edges.begin()));
  std::filesystem::remove(path);
}

TEST(EdgelistIo, EmptyEdgeList) {
  const std::string path = tmp_path("numabfs_io_empty.bin");
  save_edges(path, 16, {});
  const LoadedEdges got = load_edges(path);
  EXPECT_EQ(got.num_vertices, 16u);
  EXPECT_TRUE(got.edges.empty());
  std::filesystem::remove(path);
}

TEST(EdgelistIo, MissingFileThrows) {
  EXPECT_THROW(load_edges(tmp_path("numabfs_io_nonexistent.bin")),
               std::runtime_error);
}

TEST(EdgelistIo, BadMagicThrows) {
  const std::string path = tmp_path("numabfs_io_badmagic.bin");
  std::ofstream(path) << "definitely not an edge list, just text";
  EXPECT_THROW(load_edges(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(EdgelistIo, TruncatedPayloadThrows) {
  const std::string path = tmp_path("numabfs_io_trunc.bin");
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  save_edges(path, 4, edges);
  // Chop the last edge in half.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 4);
  EXPECT_THROW(load_edges(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(EdgelistIo, OutOfRangeVertexThrows) {
  const std::string path = tmp_path("numabfs_io_range.bin");
  const std::vector<Edge> edges = {{0, 9}};  // 9 >= n=4
  save_edges(path, 4, edges);
  EXPECT_THROW(load_edges(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace numabfs::graph
