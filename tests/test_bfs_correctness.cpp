#include <gtest/gtest.h>

#include <tuple>

#include "bfs/hybrid.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"

namespace numabfs {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

const GraphBundle& bundle_scale10() {
  static const GraphBundle b = GraphBundle::make(10, 16, 42, 8);
  return b;
}

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  return o;
}

void expect_valid(Experiment& e, const bfs::Config& cfg) {
  const GraphBundle& b = e.bundle();
  for (size_t i = 0; i < std::min<size_t>(3, b.roots.size()); ++i) {
    const auto [res, parent] = e.run_validated(cfg, b.roots[i]);
    const auto v = graph::validate_bfs_tree(b.csr, b.roots[i], parent);
    ASSERT_TRUE(v.ok) << cfg.name() << " root=" << b.roots[i] << ": "
                      << v.error;
    EXPECT_EQ(res.visited, v.visited) << cfg.name();
    EXPECT_EQ(res.traversed_directed_edges, v.directed_edges_in_component)
        << cfg.name();
    EXPECT_GT(res.time_ns, 0.0);
  }
}

// Variant x shape grid: every optimization level must produce a valid
// Graph500 tree on every cluster shape.
using VariantShape = std::tuple<int /*variant*/, int /*nodes*/, int /*ppn*/>;

class BfsVariants : public ::testing::TestWithParam<VariantShape> {};

bfs::Config variant_config(int v) {
  switch (v) {
    case 0: return bfs::original();
    case 1: {
      bfs::Config c = bfs::original();
      c.base_algo = rt::AllgatherAlgo::leader_ring;
      return c;
    }
    case 2: return bfs::share_in_queue();
    case 3: return bfs::share_all();
    case 4: return bfs::par_allgather();
    case 5: return bfs::granularity(256);
    case 6: return bfs::granularity(1024);
    default: {
      bfs::Config c;
      c.summary_granularity = 1;  // degenerate: summary == in_queue
      return c;
    }
  }
}

TEST_P(BfsVariants, ProducesValidGraph500Tree) {
  const auto [v, nodes, ppn] = GetParam();
  Experiment e(bundle_scale10(), shape(nodes, ppn));
  expect_valid(e, variant_config(v));
}

std::string variant_shape_name(const ::testing::TestParamInfo<VariantShape>& ti) {
  return "v" + std::to_string(std::get<0>(ti.param)) + "_n" +
         std::to_string(std::get<1>(ti.param)) + "_ppn" +
         std::to_string(std::get<2>(ti.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BfsVariants,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 4, 8)),
    variant_shape_name);

// Pure directions (the Section II.A baselines) must also be correct.
class BfsDirections : public ::testing::TestWithParam<int> {};

TEST_P(BfsDirections, PureDirectionsValid) {
  bfs::Config c;
  c.direction = GetParam() == 0 ? bfs::Direction::top_down_only
                                : bfs::Direction::bottom_up_only;
  Experiment e(bundle_scale10(), shape(2, 4));
  expect_valid(e, c);
}

INSTANTIATE_TEST_SUITE_P(Pure, BfsDirections, ::testing::Values(0, 1));

// Execution policies (Fig. 10 axis) do not change the tree, only the time.
class BfsPolicies : public ::testing::TestWithParam<int> {};

TEST_P(BfsPolicies, PoliciesValid) {
  bfs::Config c;
  c.bind = static_cast<bfs::BindMode>(GetParam());
  Experiment e(bundle_scale10(), shape(2, 8));
  expect_valid(e, c);
}

INSTANTIATE_TEST_SUITE_P(Policies, BfsPolicies, ::testing::Range(0, 3));

// Different seeds / graphs.
class BfsSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsSeeds, RandomGraphsValid) {
  const GraphBundle b = GraphBundle::make(9, 8, GetParam(), 4);
  Experiment e(b, shape(2, 8));
  for (const auto& cfg : {bfs::original(), bfs::par_allgather()}) {
    const auto [res, parent] = e.run_validated(cfg, b.roots[0]);
    const auto v = graph::validate_bfs_tree(b.csr, b.roots[0], parent);
    ASSERT_TRUE(v.ok) << cfg.name() << ": " << v.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Bfs, IsolatedRootVisitsOnlyItself) {
  // A degree-0 root: tree = {root}, zero traversed edges.
  const GraphBundle b = GraphBundle::make(9, 8, 3, 4);
  graph::Vertex isolated = graph::kNoVertex;
  for (std::uint64_t v = 0; v < b.csr.num_vertices(); ++v)
    if (b.csr.degree(static_cast<graph::Vertex>(v)) == 0) {
      isolated = static_cast<graph::Vertex>(v);
      break;
    }
  ASSERT_NE(isolated, graph::kNoVertex);
  Experiment e(b, shape(2, 4));
  const auto [res, parent] = e.run_validated(bfs::original(), isolated);
  EXPECT_EQ(res.visited, 1u);
  EXPECT_EQ(res.traversed_directed_edges, 0u);
  EXPECT_EQ(parent[isolated], isolated);
}

TEST(Bfs, AllVariantsVisitSameSet) {
  const GraphBundle& b = bundle_scale10();
  Experiment e(b, shape(2, 8));
  const graph::Vertex root = b.roots[0];
  std::vector<graph::Vertex> first;
  for (int v = 0; v < 8; ++v) {
    const auto [res, parent] = e.run_validated(variant_config(v), root);
    std::vector<graph::Vertex> reach;
    for (std::uint64_t i = 0; i < parent.size(); ++i)
      if (parent[i] != graph::kNoVertex) reach.push_back(static_cast<graph::Vertex>(i));
    if (v == 0)
      first = reach;
    else
      EXPECT_EQ(reach, first) << "variant " << v;
  }
}

}  // namespace
}  // namespace numabfs
