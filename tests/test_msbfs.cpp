/// \file test_msbfs.cpp
/// Correctness of the bit-parallel multi-source BFS wave kernel: every lane
/// of a batched wave must reproduce the serial reference BFS bit for bit —
/// distances, parent-tree validity, s-t early exit, k-hop radii — across
/// sharing levels, a seed x scale grid, and injected rank crashes.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bfs/config.hpp"
#include "engine/msbfs.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"

namespace numabfs::engine {
namespace {

using harness::Experiment;
using harness::ExperimentOptions;
using harness::GraphBundle;

ExperimentOptions shape(int nodes, int ppn) {
  ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  return eo;
}

std::vector<WaveQuery> full_wave(const GraphBundle& b, int batch) {
  std::vector<WaveQuery> qs;
  for (int i = 0; i < batch; ++i) {
    WaveQuery q;
    q.source = b.roots[static_cast<std::size_t>(i) % b.roots.size()];
    qs.push_back(q);
  }
  return qs;
}

/// Every lane's distances equal the reference depths and its parent tree
/// passes Graph500 validation.
void expect_lanes_match_reference(Experiment& ex, WaveState& ws,
                                  std::span<const WaveQuery> qs) {
  for (std::size_t l = 0; l < qs.size(); ++l) {
    const graph::Vertex root = qs[l].source;
    const graph::BfsTree ref = graph::reference_bfs(ex.bundle().csr, root);
    const auto dist =
        gather_lane_distances(ex.dist(), ws, static_cast<int>(l));
    for (std::uint64_t v = 0; v < ex.dist().n; ++v) {
      if (ref.reached(static_cast<graph::Vertex>(v))) {
        ASSERT_EQ(dist[v], ref.depth[v])
            << "lane " << l << " vertex " << v << " root " << root;
      } else {
        ASSERT_EQ(dist[v], kUnreached) << "lane " << l << " vertex " << v;
      }
    }
    const auto parent =
        gather_lane_parents(ex.dist(), ws, static_cast<int>(l));
    const auto val = graph::validate_bfs_tree(ex.bundle().csr, root, parent);
    ASSERT_TRUE(val.ok) << "lane " << l << ": " << val.error;
    EXPECT_EQ(val.visited, ref.visited);
  }
}

// ---------------------------------------------------------------------------
// Full-distance lanes vs the serial reference
// ---------------------------------------------------------------------------

TEST(MsBfs, LanesMatchReferenceAcrossSeedsAndScales) {
  for (const int scale : {9, 11}) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      const GraphBundle b = GraphBundle::make(scale, 16, seed, 16);
      Experiment ex(b, shape(2, 2));
      WaveState ws(ex.dist(), bfs::original(), 2, 2);
      const auto qs = full_wave(b, 8);
      const WaveResult wr = run_wave(ex.cluster(), ex.dist(), ws, qs);
      ASSERT_EQ(wr.lanes.size(), qs.size());
      EXPECT_GT(wr.wave_ns, 0.0);
      expect_lanes_match_reference(ex, ws, qs);
    }
  }
}

TEST(MsBfs, AllSharingLevelsProduceIdenticalLaneData) {
  const GraphBundle b = GraphBundle::make(11, 16, 3, 16);
  Experiment ex(b, shape(2, 4));
  const auto qs = full_wave(b, 16);
  for (const bfs::Config& cfg :
       {bfs::original(), bfs::share_in_queue(), bfs::share_all(),
        bfs::par_allgather()}) {
    SCOPED_TRACE(cfg.name());
    WaveState ws(ex.dist(), cfg, 2, 4);
    run_wave(ex.cluster(), ex.dist(), ws, qs);
    expect_lanes_match_reference(ex, ws, qs);
  }
}

TEST(MsBfs, SixtyFourLaneWaveAndStateReuse) {
  const GraphBundle b = GraphBundle::make(10, 16, 2, 64);
  Experiment ex(b, shape(2, 2));
  WaveState ws(ex.dist(), bfs::share_all(), 2, 2);
  const auto qs = full_wave(b, 64);
  run_wave(ex.cluster(), ex.dist(), ws, qs);
  expect_lanes_match_reference(ex, ws, qs);

  // Reuse the same state for a second, different wave: no bleed-through.
  std::vector<WaveQuery> qs2(qs.begin() + 3, qs.begin() + 9);
  run_wave(ex.cluster(), ex.dist(), ws, qs2);
  expect_lanes_match_reference(ex, ws, qs2);
}

// ---------------------------------------------------------------------------
// s-t reachability and k-hop lanes
// ---------------------------------------------------------------------------

TEST(MsBfs, StReachabilityRetiresAtTargetDepth) {
  const GraphBundle b = GraphBundle::make(10, 16, 5, 8);
  Experiment ex(b, shape(2, 2));
  const graph::Vertex root = b.roots[0];
  const graph::BfsTree ref = graph::reference_bfs(b.csr, root);

  // A reached target, an unreached one (if any), and the root itself.
  graph::Vertex far = root;
  for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v)
    if (ref.reached(v) && ref.depth[v] > ref.depth[far]) far = v;
  graph::Vertex unreached = graph::kNoVertex;
  for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v)
    if (!ref.reached(v)) {
      unreached = v;
      break;
    }

  std::vector<WaveQuery> qs;
  qs.push_back({QueryKind::st_reachability, root, far, 0});
  qs.push_back({QueryKind::st_reachability, root, root, 0});
  qs.push_back({QueryKind::full_distances, root, 0, 0});
  if (unreached != graph::kNoVertex)
    qs.push_back({QueryKind::st_reachability, root, unreached, 0});

  WaveState ws(ex.dist(), bfs::original(), 2, 2);
  const WaveResult wr = run_wave(ex.cluster(), ex.dist(), ws, qs);

  EXPECT_TRUE(wr.lanes[0].reached);
  EXPECT_EQ(wr.lanes[0].complete_level,
            static_cast<int>(ref.depth[far]));  // early exit, not drain
  EXPECT_TRUE(wr.lanes[1].reached);
  EXPECT_EQ(wr.lanes[1].complete_level, 0);  // trivial: target == source
  EXPECT_LE(wr.lanes[0].complete_ns, wr.lanes[2].complete_ns);
  if (unreached != graph::kNoVertex) {
    EXPECT_FALSE(wr.lanes[3].reached);
    // An unreachable target means the lane drains its whole component.
    EXPECT_EQ(wr.lanes[3].visited, ref.visited);
  }
}

TEST(MsBfs, KHopVisitsExactlyTheRadius) {
  const GraphBundle b = GraphBundle::make(10, 16, 9, 8);
  Experiment ex(b, shape(1, 4));
  const graph::Vertex root = b.roots[1];
  const graph::BfsTree ref = graph::reference_bfs(b.csr, root);

  std::vector<WaveQuery> qs;
  for (int k : {0, 1, 2, 3}) qs.push_back({QueryKind::k_hop, root, 0, k});

  WaveState ws(ex.dist(), bfs::share_all(), 1, 4);
  const WaveResult wr = run_wave(ex.cluster(), ex.dist(), ws, qs);

  for (std::size_t l = 0; l < qs.size(); ++l) {
    std::uint64_t want = 0;
    for (graph::Vertex v = 0; v < b.csr.num_vertices(); ++v)
      if (ref.reached(v) &&
          ref.depth[v] <= static_cast<std::uint32_t>(qs[l].k))
        ++want;
    EXPECT_EQ(wr.lanes[l].visited, want) << "k = " << qs[l].k;
    EXPECT_LE(wr.lanes[l].complete_level, qs[l].k);
  }
  // Deeper radii cannot retire earlier than shallower ones.
  EXPECT_LE(wr.lanes[0].complete_ns, wr.lanes[3].complete_ns);
}

// ---------------------------------------------------------------------------
// Determinism and argument validation
// ---------------------------------------------------------------------------

TEST(MsBfs, WavesAreBitDeterministic) {
  const GraphBundle b = GraphBundle::make(11, 16, 4, 16);
  Experiment ex(b, shape(2, 2));
  const auto qs = full_wave(b, 12);
  WaveState ws(ex.dist(), bfs::par_allgather(), 2, 2);
  const WaveResult a = run_wave(ex.cluster(), ex.dist(), ws, qs);
  const WaveResult c = run_wave(ex.cluster(), ex.dist(), ws, qs);
  EXPECT_EQ(a.wave_ns, c.wave_ns);
  EXPECT_EQ(a.levels, c.levels);
  ASSERT_EQ(a.lanes.size(), c.lanes.size());
  for (std::size_t l = 0; l < a.lanes.size(); ++l) {
    EXPECT_EQ(a.lanes[l].complete_ns, c.lanes[l].complete_ns);
    EXPECT_EQ(a.lanes[l].complete_level, c.lanes[l].complete_level);
    EXPECT_EQ(a.lanes[l].visited, c.lanes[l].visited);
  }
}

TEST(MsBfs, RejectsBadBatches) {
  const GraphBundle b = GraphBundle::make(9, 16, 1, 8);
  Experiment ex(b, shape(1, 2));
  WaveState ws(ex.dist(), bfs::original(), 1, 2);
  EXPECT_THROW(run_wave(ex.cluster(), ex.dist(), ws, {}),
               std::invalid_argument);
  const std::vector<WaveQuery> big(65, WaveQuery{.source = b.roots[0]});
  EXPECT_THROW(run_wave(ex.cluster(), ex.dist(), ws, big),
               std::invalid_argument);
  const std::vector<WaveQuery> oob{
      {QueryKind::full_distances,
       static_cast<graph::Vertex>(b.csr.num_vertices()), 0, 0}};
  EXPECT_THROW(run_wave(ex.cluster(), ex.dist(), ws, oob),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

TEST(MsBfs, WaveSurvivesRankCrashWithCorrectLanes) {
  const GraphBundle b = GraphBundle::make(10, 16, 6, 16);
  Experiment ex(b, shape(2, 2));
  auto inj = std::make_shared<faults::FaultInjector>(
      faults::FaultPlan::parse("seed:3,crash:rank=1@level=2"),
      ex.cluster().nranks(), ex.cluster().ppn());
  ex.cluster().set_fault_injector(inj);

  const auto qs = full_wave(b, 8);
  WaveState ws(ex.dist(), bfs::original(), 2, 2);
  const WaveResult wr = run_wave(ex.cluster(), ex.dist(), ws, qs);
  EXPECT_EQ(wr.ranks_lost, 1);
  EXPECT_GE(wr.recoveries, 1);
  expect_lanes_match_reference(ex, ws, qs);

  // Same plan, same wave: bit-identical virtual-time history.
  const WaveResult wr2 = run_wave(ex.cluster(), ex.dist(), ws, qs);
  EXPECT_EQ(wr.wave_ns, wr2.wave_ns);
  for (std::size_t l = 0; l < qs.size(); ++l)
    EXPECT_EQ(wr.lanes[l].complete_ns, wr2.lanes[l].complete_ns);

  // A crashed wave costs more virtual time than a clean one.
  ex.cluster().set_fault_injector(nullptr);
  const WaveResult clean = run_wave(ex.cluster(), ex.dist(), ws, qs);
  EXPECT_LT(clean.wave_ns, wr.wave_ns);
  expect_lanes_match_reference(ex, ws, qs);
}

}  // namespace
}  // namespace numabfs::engine
