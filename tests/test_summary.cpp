#include "graph/summary.hpp"

#include <gtest/gtest.h>

#include <random>

namespace numabfs::graph {
namespace {

TEST(Summary, SizeForGranularities) {
  EXPECT_EQ(SummaryView::summary_bits_for(640, 64), 10u);
  EXPECT_EQ(SummaryView::summary_bits_for(641, 64), 11u);
  EXPECT_EQ(SummaryView::summary_bits_for(640, 1), 640u);
  EXPECT_EQ(SummaryView::summary_bits_for(640, 4096), 1u);
}

TEST(Summary, MarkCoversBlock) {
  Summary s(1024, 64);
  auto v = s.view();
  v.mark(130);  // block 2 covers [128, 192)
  EXPECT_TRUE(v.covers(128));
  EXPECT_TRUE(v.covers(191));
  EXPECT_FALSE(v.covers(127));
  EXPECT_FALSE(v.covers(192));
}

TEST(Summary, RebuildMatchesSource) {
  std::mt19937_64 rng(11);
  for (std::uint64_t g : {1ull, 2ull, 64ull, 100ull, 256ull}) {
    Bitmap src_bm(5000);
    auto src = src_bm.view();
    for (int i = 0; i < 300; ++i) src.set(rng() % 5000);
    Summary s(5000, g);
    auto v = s.view();
    v.rebuild_range(src, 0, 5000);
    for (std::uint64_t b = 0; b < 5000; b += 13) {
      const std::uint64_t lo = b / g * g;
      const std::uint64_t hi = std::min<std::uint64_t>(5000, lo + g);
      EXPECT_EQ(v.covers(b), src.count_range(lo, hi) != 0)
          << "g=" << g << " bit=" << b;
    }
  }
}

TEST(Summary, RebuildClearsStaleBits) {
  Bitmap src_bm(1024);
  Summary s(1024, 64);
  auto v = s.view();
  v.mark(500);  // stale: source is empty there
  v.rebuild_range(src_bm.view(), 0, 1024);
  EXPECT_FALSE(v.covers(500));
}

TEST(Summary, ZeroFractionDecreasesWithGranularity) {
  // The paper's Fig. 8 trade-off: larger granularity -> fewer zero bits.
  std::mt19937_64 rng(5);
  Bitmap src_bm(1 << 16);
  auto src = src_bm.view();
  for (int i = 0; i < 2000; ++i) src.set(rng() % (1 << 16));

  double prev_fraction = 1.0;
  for (std::uint64_t g : {64ull, 256ull, 1024ull, 4096ull}) {
    Summary s(1 << 16, g);
    auto v = s.view();
    v.rebuild_range(src, 0, 1 << 16);
    const std::uint64_t bits = v.size_bits();
    const std::uint64_t ones = v.bits().count_range(0, bits);
    const double zero_fraction =
        static_cast<double>(bits - ones) / static_cast<double>(bits);
    EXPECT_LE(zero_fraction, prev_fraction + 1e-12) << "g=" << g;
    prev_fraction = zero_fraction;
  }
  EXPECT_LT(prev_fraction, 0.9);  // g=4096 has clearly fewer zeros
}

TEST(Summary, GranularityOneIsExact) {
  Bitmap src_bm(256);
  auto src = src_bm.view();
  src.set(7);
  src.set(200);
  Summary s(256, 1);
  auto v = s.view();
  v.rebuild_range(src, 0, 256);
  for (std::uint64_t b = 0; b < 256; ++b)
    EXPECT_EQ(v.covers(b), src.get(b)) << b;
}

}  // namespace
}  // namespace numabfs::graph
