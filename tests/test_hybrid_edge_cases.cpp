// Edge cases of the hybrid driver: degenerate graphs, extreme switching
// thresholds, single-rank clusters, repeated state reuse.

#include <gtest/gtest.h>

#include "bfs/hybrid.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"

namespace numabfs {
namespace {

struct Rig {
  graph::Csr csr;
  graph::DistGraph dg;
  rt::Cluster cluster;

  Rig(std::uint64_t n, std::vector<graph::Edge> edges, int nodes, int ppn)
      : csr(graph::Csr::from_edges(n, edges)),
        dg(graph::DistGraph::build(csr,
                                   graph::Partition1D(n, nodes * ppn))),
        cluster(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{},
                ppn) {}

  bfs::BfsRunResult run(const bfs::Config& cfg, graph::Vertex root) {
    bfs::DistState st(dg, cfg, cluster.topo().nodes(), cluster.ppn());
    bfs::BfsRunResult r = bfs::run_bfs(cluster, dg, st, root);
    const auto parent = bfs::gather_parents(dg, st);
    const auto v = graph::validate_bfs_tree(csr, root, parent);
    EXPECT_TRUE(v.ok) << v.error;
    return r;
  }
};

TEST(HybridEdgeCases, TwoVertexGraph) {
  Rig rig(64, {{0, 1}}, 1, 8);
  const auto r = rig.run(bfs::Config{}, 0);
  EXPECT_EQ(r.visited, 2u);
  EXPECT_EQ(r.traversed_edges(), 1u);
}

TEST(HybridEdgeCases, SelfLoopOnlyRootBehavesAsIsolated) {
  Rig rig(64, {{5, 5}}, 1, 4);  // self-loops are dropped at CSR build
  const auto r = rig.run(bfs::Config{}, 5);
  EXPECT_EQ(r.visited, 1u);
  EXPECT_EQ(r.traversed_edges(), 0u);
}

TEST(HybridEdgeCases, CompleteBipartiteFinishesInTwoRealLevels) {
  // K_{4,60}: one hop reaches everything from either side.
  std::vector<graph::Edge> edges;
  for (graph::Vertex a = 0; a < 4; ++a)
    for (graph::Vertex b = 4; b < 64; ++b) edges.push_back({a, b});
  Rig rig(64, edges, 1, 8);
  const auto r = rig.run(bfs::Config{}, 0);
  EXPECT_EQ(r.visited, 64u);
  EXPECT_LE(r.levels, 4);  // 2 discovery levels + terminal
}

TEST(HybridEdgeCases, LongPathManyLevels) {
  // A 256-vertex path: 255 levels, frontier never grows — the growing-
  // frontier guard must keep it top-down throughout.
  std::vector<graph::Edge> edges;
  for (graph::Vertex v = 0; v + 1 < 256; ++v) edges.push_back({v, static_cast<graph::Vertex>(v + 1)});
  Rig rig(256, edges, 1, 4);
  const auto r = rig.run(bfs::Config{}, 0);
  EXPECT_EQ(r.visited, 256u);
  EXPECT_EQ(r.bu_levels, 0) << "path frontiers never grow";
  EXPECT_GE(r.levels, 255);
}

TEST(HybridEdgeCases, ExtremeAlphaForcesEarlyBottomUp) {
  const harness::GraphBundle b = harness::GraphBundle::make(11, 16, 17, 2);
  harness::ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 4;
  harness::Experiment e(b, eo);
  bfs::Config eager;
  eager.alpha = 1e9;  // switch to bottom-up at the first growth
  bfs::Config never;
  never.alpha = 1e-9;  // ratio test never fires: stays top-down
  const auto re = e.run(eager, 2);
  const auto rn = e.run(never, 2);
  EXPECT_GT(re.per_root[0].bu_levels, 0);
  EXPECT_EQ(rn.per_root[0].bu_levels, 0);
  // Same trees regardless (correctness is threshold-independent).
  EXPECT_EQ(re.per_root[0].visited, rn.per_root[0].visited);
}

TEST(HybridEdgeCases, ExtremeBetaNeverReturnsToTopDown) {
  const harness::GraphBundle b = harness::GraphBundle::make(11, 16, 17, 2);
  harness::ExperimentOptions eo;
  eo.nodes = 1;
  eo.ppn = 8;
  harness::Experiment e(b, eo);
  bfs::Config cfg;
  cfg.beta = 1e-9;  // threshold n/beta is huge: bu -> td always fires
  const auto r = e.run(cfg, 1);
  // After any bottom-up level it must return to top-down right away.
  const auto& dirs = r.per_root[0].directions;
  for (size_t i = 1; i < dirs.size(); ++i)
    EXPECT_FALSE(dirs[i - 1] == 1 && dirs[i] == 1)
        << "two consecutive bu levels despite tiny beta";
}

TEST(HybridEdgeCases, SingleRankCluster) {
  Rig rig(1 << 10, [] {
        std::vector<graph::Edge> e;
        for (graph::Vertex v = 1; v < 1 << 10; ++v)
          e.push_back({static_cast<graph::Vertex>(v / 2), v});
        return e;
      }(), 1, 1);
  const auto r = rig.run(bfs::Config{}, 0);
  EXPECT_EQ(r.visited, 1u << 10);
}

TEST(HybridEdgeCases, StateReuseAcrossRootsIsClean) {
  // Reusing one DistState across different roots must not leak state.
  const harness::GraphBundle b = harness::GraphBundle::make(11, 16, 23, 4);
  harness::ExperimentOptions eo;
  eo.nodes = 2;
  eo.ppn = 8;
  harness::Experiment e(b, eo);
  bfs::DistState st(e.dist(), bfs::par_allgather(), 2, 8);
  std::vector<std::uint64_t> first_pass, second_pass;
  for (graph::Vertex root : b.roots)
    first_pass.push_back(bfs::run_bfs(e.cluster(), e.dist(), st, root).visited);
  for (graph::Vertex root : b.roots)
    second_pass.push_back(bfs::run_bfs(e.cluster(), e.dist(), st, root).visited);
  EXPECT_EQ(first_pass, second_pass);
}

TEST(HybridEdgeCases, RootEqualsHighestVertex) {
  // The padded tail must not confuse root handling at the partition edge.
  Rig rig(100, {{99, 0}, {0, 50}}, 1, 4);
  const auto r = rig.run(bfs::Config{}, 99);
  EXPECT_EQ(r.visited, 3u);
}

}  // namespace
}  // namespace numabfs
