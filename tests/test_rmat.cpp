#include "graph/rmat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/csr.hpp"

namespace numabfs::graph {
namespace {

TEST(Rmat, Deterministic) {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 8;
  const auto a = rmat_edges(p);
  const auto b = rmat_edges(p);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Rmat, SeedChangesGraph) {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 8;
  const auto a = rmat_edges(p);
  p.seed += 1;
  const auto b = rmat_edges(p);
  EXPECT_FALSE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Rmat, RangeSplittingIsConsistent) {
  RmatParams p;
  p.scale = 9;
  p.edgefactor = 4;
  const auto all = rmat_edges(p);
  // Any partition of the index space yields the same stream.
  const auto part1 = rmat_edge_range(p, 0, 1000);
  const auto part2 = rmat_edge_range(p, 1000, all.size() - 1000);
  ASSERT_EQ(part1.size() + part2.size(), all.size());
  for (size_t i = 0; i < part1.size(); ++i) EXPECT_EQ(part1[i], all[i]);
  for (size_t i = 0; i < part2.size(); ++i)
    EXPECT_EQ(part2[i], all[1000 + i]);
}

TEST(Rmat, EdgeCountAndBounds) {
  RmatParams p;
  p.scale = 12;
  p.edgefactor = 16;
  const auto edges = rmat_edges(p);
  EXPECT_EQ(edges.size(), p.num_edges());
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, p.num_vertices());
    EXPECT_LT(e.v, p.num_vertices());
  }
}

TEST(Rmat, PermutationIsBijective) {
  for (int scale : {1, 2, 7, 10}) {
    RmatParams p;
    p.scale = scale;
    std::set<Vertex> seen;
    const std::uint64_t n = p.num_vertices();
    for (std::uint64_t v = 0; v < n; ++v)
      seen.insert(rmat_permute_label(p, static_cast<Vertex>(v)));
    EXPECT_EQ(seen.size(), n) << "scale " << scale;
    EXPECT_LT(*seen.rbegin(), n) << "scale " << scale;
  }
}

TEST(Rmat, PermutationDisabledIsIdentity) {
  RmatParams p;
  p.scale = 8;
  p.permute_labels = false;
  for (Vertex v : {0u, 17u, 255u})
    EXPECT_EQ(rmat_permute_label(p, v), v);
}

TEST(Rmat, ScaleFreeDegreeSkew) {
  // R-MAT with the Graph500 parameters produces heavy-tailed degrees: the
  // top 1% of vertices must hold far more than 1% of the edge endpoints.
  RmatParams p;
  p.scale = 14;
  p.edgefactor = 16;
  const auto edges = rmat_edges(p);
  const Csr g = Csr::from_edges(p.num_vertices(), edges);
  std::vector<std::uint64_t> degs;
  degs.reserve(p.num_vertices());
  for (std::uint64_t v = 0; v < p.num_vertices(); ++v)
    degs.push_back(g.degree(static_cast<Vertex>(v)));
  std::sort(degs.rbegin(), degs.rend());
  const size_t top = degs.size() / 100;
  std::uint64_t top_sum = 0, total = 0;
  for (size_t i = 0; i < degs.size(); ++i) {
    total += degs[i];
    if (i < top) top_sum += degs[i];
  }
  EXPECT_GT(static_cast<double>(top_sum), 0.10 * static_cast<double>(total))
      << "degree distribution not heavy-tailed";
}

TEST(Rmat, SomeVerticesIsolated) {
  // Scale-free graphs at edgefactor 16 still leave a tail of zero-degree
  // vertices (the Graph500 generator does too) — roots must dodge them.
  RmatParams p;
  p.scale = 12;
  const auto edges = rmat_edges(p);
  const Csr g = Csr::from_edges(p.num_vertices(), edges);
  std::uint64_t isolated = 0;
  for (std::uint64_t v = 0; v < p.num_vertices(); ++v)
    isolated += g.degree(static_cast<Vertex>(v)) == 0;
  EXPECT_GT(isolated, 0u);
  EXPECT_LT(isolated, p.num_vertices() / 2);
}

TEST(Rmat, SplitMixAvalanche) {
  // Adjacent inputs must not produce correlated outputs.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(splitmix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace numabfs::graph
