// Invariants of the per-level trace (the Fig. 1 anatomy data).

#include <gtest/gtest.h>

#include "bfs/hybrid.hpp"
#include "harness/graph500.hpp"

namespace numabfs {
namespace {

bfs::BfsRunResult traced_run(int nodes, int ppn, const bfs::Config& cfg) {
  static const harness::GraphBundle b = harness::GraphBundle::make(12, 16, 3, 2);
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(b, eo);
  bfs::DistState st(e.dist(), cfg, nodes, ppn);
  return bfs::run_bfs(e.cluster(), e.dist(), st, b.roots[0]);
}

TEST(Trace, OneEntryPerLevel) {
  const auto r = traced_run(2, 8, bfs::original());
  ASSERT_EQ(r.trace.size(), static_cast<size_t>(r.levels));
  for (int i = 0; i < r.levels; ++i) {
    EXPECT_EQ(r.trace[static_cast<size_t>(i)].level, i);
    EXPECT_EQ(r.trace[static_cast<size_t>(i)].direction, r.directions[static_cast<size_t>(i)]);
  }
}

TEST(Trace, FrontiersChain) {
  // Level L's input frontier is level L-1's discoveries; level 0 sees the
  // root alone; total discoveries + root = visited.
  const auto r = traced_run(2, 8, bfs::original());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace[0].frontier_vertices, 1u);
  std::uint64_t total = 1;
  for (size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_EQ(r.trace[i].frontier_vertices, r.trace[i - 1].discovered);
  for (const auto& lv : r.trace) total += lv.discovered;
  EXPECT_EQ(total, r.visited);
  EXPECT_EQ(r.trace.back().discovered, 0u);  // terminal level finds nothing
}

TEST(Trace, FrontierRampsUpThenDown) {
  // The R-MAT frontier is unimodal at coarse grain: the max is not at the
  // edges, and after the peak it only shrinks.
  const auto r = traced_run(2, 8, bfs::original());
  size_t peak = 0;
  for (size_t i = 0; i < r.trace.size(); ++i)
    if (r.trace[i].frontier_vertices > r.trace[peak].frontier_vertices)
      peak = i;
  EXPECT_GT(peak, 0u);
  EXPECT_LT(peak, r.trace.size() - 1);
  for (size_t i = peak + 1; i + 1 < r.trace.size(); ++i)
    EXPECT_LE(r.trace[i + 1].frontier_vertices,
              r.trace[i].frontier_vertices);
}

TEST(Trace, PhaseTimesMatchProfile) {
  // Trace comp+comm per level sums to the profile's totals (mean-over-rank
  // accounting on both sides).
  const auto r = traced_run(2, 8, bfs::par_allgather());
  double comp = 0, comm = 0;
  for (const auto& lv : r.trace) {
    comp += lv.comp_ns;
    comm += lv.comm_ns;
  }
  const double prof_comp = r.profile_avg.get(sim::Phase::td_comp) +
                           r.profile_avg.get(sim::Phase::bu_comp);
  const double prof_comm = r.profile_avg.comm_ns();
  EXPECT_NEAR(comp, prof_comp, prof_comp * 1e-9 + 1e-6);
  EXPECT_NEAR(comm, prof_comm, prof_comm * 1e-9 + 1e-6);
}

TEST(Trace, PhaseTimesMatchProfileUnderChunkPipelining) {
  // Same accounting identity under the compressed, chunk-pipelined
  // exchange: the per-level comp+comm trace entries must still sum to the
  // profile totals even though each level's communication is split across
  // pipelined chunks (and partially overlapped with compute). A drift here
  // means a chunk charged time outside its level's trace entry.
  const auto r = traced_run(2, 8, bfs::compressed(256, 4));
  double comp = 0, comm = 0;
  for (const auto& lv : r.trace) {
    comp += lv.comp_ns;
    comm += lv.comm_ns;
  }
  const double prof_comp = r.profile_avg.get(sim::Phase::td_comp) +
                           r.profile_avg.get(sim::Phase::bu_comp);
  const double prof_comm = r.profile_avg.comm_ns();
  EXPECT_NEAR(comp, prof_comp, prof_comp * 1e-9 + 1e-6);
  EXPECT_NEAR(comm, prof_comm, prof_comm * 1e-9 + 1e-6);
}

TEST(Trace, SummaryProbesOnlyInBottomUpLevels) {
  const auto r = traced_run(2, 8, bfs::original());
  bool saw_bu_probes = false;
  for (const auto& lv : r.trace) {
    if (lv.direction == 0)
      EXPECT_EQ(lv.summary_probes, 0u) << "level " << lv.level;
    else
      saw_bu_probes = saw_bu_probes || lv.summary_probes > 0;
  }
  EXPECT_TRUE(saw_bu_probes);
}

TEST(Trace, EdgeScansCoverTheComponentOnce) {
  // Top-down + bottom-up edge scans together bound the component's
  // directed edges from below (every traversed edge was scanned at least
  // in the level that discovered its child).
  const auto r = traced_run(2, 4, bfs::original());
  std::uint64_t scans = 0;
  for (const auto& lv : r.trace) scans += lv.edges_scanned;
  EXPECT_GE(scans, r.visited - 1);  // at least one scan per tree edge
}

TEST(Trace, DeterministicAcrossRuns) {
  const auto a = traced_run(2, 8, bfs::granularity(256));
  const auto b = traced_run(2, 8, bfs::granularity(256));
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].edges_scanned, b.trace[i].edges_scanned);
    EXPECT_DOUBLE_EQ(a.trace[i].comp_ns, b.trace[i].comp_ns);
    EXPECT_DOUBLE_EQ(a.trace[i].comm_ns, b.trace[i].comm_ns);
  }
}

}  // namespace
}  // namespace numabfs
