#!/usr/bin/env python3
"""Record / check the bench perf baseline (BENCH_baseline.json).

Every series below is *virtual* (model) time or a pure count, so the values
are bit-reproducible across machines: the committed baseline is exact, and
the regression tolerance guards against model/algorithm changes, not
machine noise.

Usage:
  scripts/bench_baseline.py record [--build-dir build] [--out BENCH_baseline.json]
  scripts/bench_baseline.py check  [--build-dir build] [--baseline BENCH_baseline.json]
                                   [--tolerance 0.15] [--keep-metrics DIR]

`record` runs the smoke benches and pins the current values; `check` reruns
them and exits 1 if any pinned series regressed by more than the tolerance
(TEPS/qps/speedup: lower is a regression; time/bytes: higher is one).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "numabfs.bench_baseline.v1"

# (label, binary, smoke flags) — small shapes so the gate runs in seconds.
BENCHES = [
    ("fig09", "bench_fig09_overview",
     ["--scale=13", "--roots=1", "--nodes=2"]),
    ("query_engine", "bench_query_engine",
     ["--scale=12", "--nodes=2", "--ppn=2", "--batch=4", "--queries=8"]),
    ("ablation", "bench_ablation_compression",
     ["--scale=13", "--roots=1", "--nodes=4", "--ppn=2", "--weak=0"]),
    ("failover", "bench_failover", ["--soak-short"]),
    ("dynamic", "bench_dynamic_graph",
     ["--scale=12", "--nodes=2", "--ppn=2", "--batch=4", "--queries=6",
      "--ops=400", "--ingest-gap-us=200"]),
    # The 2-D crossover sweep runs to 256 nodes so the gate pins the scale
    # ceiling itself, not a small-shape proxy (~40 s of virtual-cluster
    # time; every value is still bit-reproducible).
    ("ablation2d", "bench_ablation_2d",
     ["--base-scale=11", "--roots=1", "--max-nodes=256", "--ppn=4"]),
    ("autotune", "bench_autotune",
     ["--scale=13", "--nodes=2", "--ppn=2", "--roots=1",
      "--engine-scale=12", "--queries=8", "--rounds=2"]),
    ("vertexprog", "bench_vertex_programs",
     ["--scale=12", "--nodes=2", "--ppn=2", "--queries=8"]),
]

# Pinned series: (metric key, direction). "up" = bigger is better (a drop
# beyond tolerance fails); "down" = smaller is better (a rise fails).
SERIES = [
    ("fig09.original_ppn1.harmonic_teps", "up"),
    ("fig09.granularity.harmonic_teps", "up"),
    ("fig09.granularity.mean_time_ns", "down"),
    ("fig09.granularity.bytes_inter_node", "down"),
    ("qe.one_wave.total_ns", "down"),
    ("qe.one_wave.qps", "up"),
    ("qe.amortization.speedup", "up"),
    ("qe.sweep.b4.gap1000us.p95_latency_ns", "down"),
    ("ablation.codec_gate_k_4.harmonic_teps", "up"),
    ("ablation.codec_gate_k_4.bytes_inter_node", "down"),
    ("ablation.granularity_raw_wire.harmonic_teps", "up"),
    ("failover.clean.total_ns", "down"),
    ("failover.chaos.full.p99_ns", "down"),
    ("failover.chaos.full.attainment", "up"),
    ("failover.chaos.failover_blip_ns", "down"),
    ("failover.chaos.shed_rate", "down"),
    # Dynamic graph layer: serving latency with and without live ingest,
    # the merged-view read amplification, validated throughput under the
    # heaviest ingest cell, and the bit-identity gate itself (every query
    # must keep validating against the rebuilt CSR at its pinned epoch).
    ("dyn.i0.g250us.p99_latency_ns", "down"),
    ("dyn.i1600.g250us.p99_latency_ns", "down"),
    ("dyn.i1600.g250us.read_amp", "down"),
    ("dyn.i1600.g250us.teps", "up"),
    ("dyn.i1600.g250us.valid", "up"),
    ("dyn.i1600.g2000us.compactions", "up"),
    # 2-D weak scaling past the 1-D ceiling: hier-collective TEPS at the
    # three largest sizes, the 1-D reference it must beat at 256 nodes, and
    # the codec's wire-byte reduction against the codec-off 2-D run.
    ("ablation2d.n64.twod_hier.harmonic_teps", "up"),
    ("ablation2d.n144.twod_hier.harmonic_teps", "up"),
    ("ablation2d.n256.twod_hier.harmonic_teps", "up"),
    ("ablation2d.n256.oned_gran.harmonic_teps", "up"),
    ("ablation2d.n256.twod_hier_codec.wire_bytes", "down"),
    # Self-tuning layer: the offline search must never lose to the best
    # hand-picked configuration (gain >= 1 by construction — a drop means
    # the search or the seeding broke), and the tuned absolute numbers are
    # pinned on both objectives.
    ("autotune.weak.hand_best.harmonic_teps", "up"),
    ("autotune.weak.tuned.harmonic_teps", "up"),
    ("autotune.weak.gain", "up"),
    ("autotune.engine.tuned.qps", "up"),
    ("autotune.engine.gain", "up"),
    # Frontier programs: per-workload serving throughput (every answer is
    # validated against its single-rank reference before it counts — the
    # bench exits nonzero otherwise, so `valid` doubles as a correctness
    # gate), plus the blended wave+program serving rate.
    ("vertexprog.sssp.teps", "up"),
    ("vertexprog.pagerank.teps", "up"),
    ("vertexprog.components.teps", "up"),
    ("vertexprog.triangles.total_ns", "down"),
    ("vertexprog.valid", "up"),
    ("vertexprog.mixed.qps", "up"),
]


def run_benches(build_dir, metrics_dir):
    """Run each smoke bench with --metrics, return merged {key: value}."""
    merged = {}
    for label, binary, flags in BENCHES:
        exe = os.path.join(build_dir, "bench", binary)
        if not os.path.exists(exe):
            sys.exit(f"error: {exe} not found (build the bench targets first)")
        path = os.path.join(metrics_dir, f"{label}.json")
        cmd = [exe, *flags, f"--metrics={path}"]
        print(f"[bench_baseline] running {label}: {' '.join(cmd)}")
        res = subprocess.run(cmd, stdout=subprocess.PIPE,
                             stderr=subprocess.STDOUT, text=True)
        if res.returncode != 0:
            print(res.stdout)
            sys.exit(f"error: {binary} exited {res.returncode}")
        with open(path) as f:
            m = json.load(f)
        if m.get("schema") != "numabfs.metrics.v1":
            sys.exit(f"error: {path} has unexpected schema {m.get('schema')}")
        for section in ("gauges", "counters"):
            for k, v in m.get(section, {}).items():
                merged[k] = float(v)
    return merged


def record(args):
    with tempfile.TemporaryDirectory() as tmp:
        merged = run_benches(args.build_dir, args.keep_metrics or tmp)
        missing = [k for k, _ in SERIES if k not in merged]
        if missing:
            sys.exit(f"error: pinned series missing from metrics: {missing}")
        doc = {
            "schema": SCHEMA,
            "tolerance": args.tolerance,
            "benches": [{"label": l, "binary": b, "flags": f}
                        for l, b, f in BENCHES],
            "series": {k: {"value": merged[k], "direction": d}
                       for k, d in SERIES},
        }
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[bench_baseline] recorded {len(SERIES)} series -> {args.out}")


def check(args):
    with open(args.baseline) as f:
        base = json.load(f)
    if base.get("schema") != SCHEMA:
        sys.exit(f"error: {args.baseline} has schema {base.get('schema')}, "
                 f"expected {SCHEMA}")
    tol = args.tolerance if args.tolerance is not None \
        else float(base.get("tolerance", 0.15))
    with tempfile.TemporaryDirectory() as tmp:
        merged = run_benches(args.build_dir, args.keep_metrics or tmp)

    failures, rows = [], []
    for key, pin in sorted(base["series"].items()):
        ref, direction = float(pin["value"]), pin["direction"]
        cur = merged.get(key)
        if cur is None:
            failures.append(f"{key}: series missing from current metrics")
            continue
        if ref == 0:
            delta = 0.0 if cur == 0 else float("inf")
        else:
            delta = (cur - ref) / abs(ref)
        regressed = delta < -tol if direction == "up" else delta > tol
        status = "FAIL" if regressed else "ok"
        rows.append(f"  [{status:4}] {key}: {ref:.6g} -> {cur:.6g} "
                    f"({delta:+.1%}, {direction})")
        if regressed:
            failures.append(f"{key}: {ref:.6g} -> {cur:.6g} ({delta:+.1%}) "
                            f"exceeds {tol:.0%} ({direction}-series)")
    print(f"[bench_baseline] checked {len(base['series'])} series "
          f"(tolerance {tol:.0%}):")
    print("\n".join(rows))
    if failures:
        print(f"\n[bench_baseline] PERF REGRESSION ({len(failures)}):")
        for f_ in failures:
            print(f"  - {f_}")
        sys.exit(1)
    print("[bench_baseline] all series within tolerance")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="mode", required=True)
    rec = sub.add_parser("record", help="pin current values as the baseline")
    rec.add_argument("--out", default="BENCH_baseline.json")
    rec.add_argument("--tolerance", type=float, default=0.15)
    chk = sub.add_parser("check", help="fail on >tolerance regression")
    chk.add_argument("--baseline", default="BENCH_baseline.json")
    chk.add_argument("--tolerance", type=float, default=None,
                     help="override the baseline's recorded tolerance")
    for p in (rec, chk):
        p.add_argument("--build-dir", default="build")
        p.add_argument("--keep-metrics", default=None,
                       help="write per-bench metrics JSON here (e.g. for CI "
                            "artifacts) instead of a temp dir")
    args = ap.parse_args()
    if args.keep_metrics:
        os.makedirs(args.keep_metrics, exist_ok=True)
    record(args) if args.mode == "record" else check(args)


if __name__ == "__main__":
    main()
