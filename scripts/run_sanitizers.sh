#!/usr/bin/env bash
# Build and run the test suite under ASan+UBSan and TSan.
#
# The simulator runs one host thread per simulated rank and chaos mode adds
# barrier retirement and cross-thread adoption hand-offs, so the sanitizers
# are the fastest way to catch a protocol mistake. Usage:
#
#   scripts/run_sanitizers.sh            # both sanitizers, full suite
#   scripts/run_sanitizers.sh asan       # just ASan+UBSan
#   scripts/run_sanitizers.sh tsan -R fault   # TSan, fault tests only
#
# Extra arguments after the preset name are passed to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=(asan tsan)
if [[ $# -ge 1 && ( "$1" == "asan" || "$1" == "tsan" ) ]]; then
  presets=("$1")
  shift
fi

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$(nproc)" "$@"
done
