#!/usr/bin/env bash
# Regenerate everything: build, run the full test suite, run every bench
# (tables to out/*.txt, key figures to out/*.svg). Defaults are sized for a
# single core; pass SCALE_BOOST=2 to run every sweep two scales larger.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-out}
BOOST=${SCALE_BOOST:-0}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

mkdir -p "$OUT"

run() {
  local name=$1; shift
  echo "=== $name"
  "$BUILD/bench/$name" "$@" | tee "$OUT/$name.txt"
}

run bench_table1_config
run bench_fig01_levels   --scale=$((18 + BOOST))
run bench_fig03_numa_speedup --scale=$((16 + BOOST))
run bench_fig04_bandwidth
run bench_fig06_allgather
run bench_fig09_overview --scale=$((20 + BOOST)) --svg="$OUT" \
    --trace="$OUT/bench_fig09_trace.json" \
    --metrics="$OUT/bench_fig09_metrics.json"
run bench_fig10_policies --scale=$((17 + BOOST))
run bench_fig11_breakdown --scale=$((17 + BOOST))
run bench_fig12_comm_weakscale --base-scale=$((16 + BOOST))
run bench_fig13_comm_reduction --base-scale=$((15 + BOOST))
run bench_fig14_comm_proportion --base-scale=$((15 + BOOST))
run bench_fig15_weak_scaling --base-scale=$((15 + BOOST)) --svg="$OUT"
run bench_fig16_granularity --scale=$((20 + BOOST)) --svg="$OUT"
run bench_hybrid_vs_pure --scale=$((17 + BOOST))
run bench_ablation_allgather
run bench_ablation_2d --base-scale=$((11 + BOOST)) \
    --trace="$OUT/bench_ablation_2d_trace.json" \
    --metrics="$OUT/bench_ablation_2d_metrics.json"
run bench_ablation_compression --scale=$((20 + BOOST)) --svg="$OUT" \
    --metrics="$OUT/bench_ablation_compression_metrics.json"
run bench_2d_bfs --scale=$((18 + BOOST))
run bench_fault_tolerance --scale=$((16 + BOOST))
run bench_query_engine --scale=$((17 + BOOST)) \
    --svg="$OUT/bench_query_engine_p95.svg" \
    --trace="$OUT/bench_query_engine_trace.json" \
    --metrics="$OUT/bench_query_engine_metrics.json"
run bench_dynamic_graph --scale=$((17 + BOOST)) \
    --svg="$OUT/bench_dynamic_graph_p99.svg" \
    --trace="$OUT/bench_dynamic_graph_trace.json" \
    --metrics="$OUT/bench_dynamic_graph_metrics.json"
run bench_autotune --scale=$((14 + BOOST)) --roots=2 \
    --emit-profile="$OUT/tuned_profile.json" \
    --metrics="$OUT/bench_autotune_metrics.json"
run bench_vertex_programs --scale=$((16 + BOOST)) \
    --metrics="$OUT/bench_vertex_programs_metrics.json"
run bench_failover --scale=$((15 + BOOST)) \
    --svg="$OUT/bench_failover_p99.svg" \
    --trace="$OUT/bench_failover_trace.json" \
    --metrics="$OUT/bench_failover_metrics.json"
run bench_model_doctor
run bench_kernels

echo
echo "=== bench_baseline check (virtual-time perf gate)"
python3 scripts/bench_baseline.py check --build-dir "$BUILD"

echo
echo "done: tables in $OUT/*.txt, figures in $OUT/*.svg;"
echo "      traces in $OUT/*_trace.json (open in https://ui.perfetto.dev)"
