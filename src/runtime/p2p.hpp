#pragma once
/// \file p2p.hpp
/// Blocking point-to-point messaging between ranks, with modeled transfer
/// time. Used by the bandwidth microbenchmark (paper Fig. 4) and available
/// to applications; the BFS collectives use the shared-space primitives
/// instead.
///
/// Time semantics: the sender charges the modeled transfer time and stamps
/// the message with its completion time; the receiver's clock advances to
/// max(own, arrival) — i.e. a receive can wait, a send cannot (eager/RDMA
/// put model).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::rt {

class PostOffice {
 public:
  explicit PostOffice(int nranks) : boxes_(static_cast<size_t>(nranks)) {}

  /// Send `payload` to rank `to`. `flows` is the number of concurrent flows
  /// the caller knows are sharing the path (for NIC saturation modeling).
  void send(Proc& from, int to, std::span<const std::uint64_t> payload,
            sim::Phase phase, int flows = 1);

  /// Blocking receive of the oldest message from `from`.
  std::vector<std::uint64_t> recv(Proc& self, int from, sim::Phase phase);

 private:
  struct Message {
    int from;
    double arrival_ns;
    std::vector<std::uint64_t> payload;
  };
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::vector<Box> boxes_;
};

}  // namespace numabfs::rt
