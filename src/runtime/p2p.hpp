#pragma once
/// \file p2p.hpp
/// Blocking point-to-point messaging between ranks, with modeled transfer
/// time. Used by the bandwidth microbenchmark (paper Fig. 4) and available
/// to applications; the BFS collectives use the shared-space primitives
/// instead.
///
/// Time semantics: the sender charges the modeled transfer time and stamps
/// the message with its completion time; the receiver's clock advances to
/// max(own, arrival) — i.e. a receive can wait, a send cannot (eager/RDMA
/// put model).
///
/// Fault tolerance: when the cluster carries a `faults::FaultInjector`,
/// every delivery attempt rolls deterministic drop/corrupt coins. Payloads
/// are checksummed (FNV-1a) at the sender; the receiver verifies and
/// discards corrupted arrivals, and the sender pays the NACK round-trip
/// plus an exponential virtual-time backoff before each retransmission.
/// Dropped attempts cost the sender the retransmit timeout. A message that
/// exhausts the attempt budget raises `faults::FaultError`; a receive from
/// a crashed (or silent, with a finite timeout) peer raises
/// `faults::TimeoutError` instead of deadlocking the host thread.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::rt {

class PostOffice {
 public:
  /// Sentinel timeout: wait forever (the pre-chaos-mode behavior).
  static constexpr double kNoTimeout = std::numeric_limits<double>::infinity();
  /// Delivery attempts per message before giving up with FaultError.
  static constexpr int kMaxAttempts = 20;

  explicit PostOffice(int nranks)
      : nranks_(nranks),
        boxes_(static_cast<size_t>(nranks)),
        seq_(static_cast<size_t>(nranks) * static_cast<size_t>(nranks), 0) {}

  /// Send `payload` to rank `to`. `flows` is the number of concurrent flows
  /// the caller knows are sharing the path (for NIC saturation modeling).
  /// Under an injected fault plan this is a *reliable* send: it charges the
  /// full retransmit history of the message (see file comment) and throws
  /// faults::FaultError if the attempt budget is exhausted.
  void send(Proc& from, int to, std::span<const std::uint64_t> payload,
            sim::Phase phase, int flows = 1);

  /// Blocking receive of the oldest intact message from `from`. Corrupted
  /// arrivals (checksum mismatch) are discarded after charging the NACK.
  ///
  /// `timeout_ns` bounds the *virtual* wait: on timeout, exactly
  /// `timeout_ns` is charged and faults::TimeoutError is thrown, so two
  /// runs with the same fault plan time out at bit-identical virtual
  /// times. The timeout decision itself is host-assisted: a sender marked
  /// dead by the fault injector trips it immediately, otherwise it trips
  /// after `host_grace_ms` of host-clock silence (only the *decision* uses
  /// the host clock — in any schedule where the message is never sent the
  /// outcome is the same). A receive from a dead sender throws even with
  /// the default infinite timeout: a diagnosable error beats a deadlock.
  std::vector<std::uint64_t> recv(Proc& self, int from, sim::Phase phase,
                                  double timeout_ns = kNoTimeout,
                                  int host_grace_ms = 5000);

 private:
  struct Message {
    int from;
    double arrival_ns;
    std::uint64_t seq;
    std::uint64_t checksum;  ///< FNV-1a of the *intended* payload
    std::vector<std::uint64_t> payload;
  };
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  int nranks_;
  std::vector<Box> boxes_;
  /// Per-(from,to) message sequence numbers; each cell has a single writer
  /// (the sending rank's thread), so plain words suffice.
  std::vector<std::uint64_t> seq_;
};

}  // namespace numabfs::rt
