#pragma once
/// \file cluster.hpp
/// SPMD launcher for the simulated NUMA cluster.
///
/// `Cluster` fixes a topology, cost parameters and a process-per-node count
/// (the paper's `ppn`), builds the standard communicators (world, per-node,
/// leaders, per-local-index subgroups), and `run()` executes a rank function
/// on one thread per simulated MPI process. Ranks are threads of this
/// process; their address spaces are private *by convention* and
/// node-shared structures are simply buffers every rank thread of a node
/// can see — exactly the effect the paper achieves with `mmap`.

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "faults/injector.hpp"
#include "numasim/cost_params.hpp"
#include "numasim/link_model.hpp"
#include "numasim/mem_model.hpp"
#include "numasim/phase_profile.hpp"
#include "numasim/topology.hpp"
#include "numasim/vclock.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"

namespace numabfs::rt {

class Cluster;

/// Per-rank execution context handed to the SPMD function.
struct Proc {
  int rank = 0;    ///< world rank
  int node = 0;    ///< node index
  int local = 0;   ///< index within the node [0, ppn)
  int socket = 0;  ///< first socket of this rank's binding domain
  int nranks = 1;
  int ppn = 1;
  int threads = 1;  ///< modeled OpenMP threads available to this rank

  sim::VClock clock;
  sim::PhaseProfile prof;
  Cluster* cluster = nullptr;
  /// Event tracer, or nullptr when tracing is off. Writes only this rank's
  /// track, and never charges the clock: tracing on/off is bit-identical.
  obs::Tracer* tracer = nullptr;
  /// Per-rank collective sequence number (SPMD-deterministic); keys the
  /// fault coins of the data-moving collectives.
  std::uint64_t coll_seq = 0;

  /// Charge modeled time to the clock and attribute it to `phase`. In
  /// chaos mode an active straggler event on this rank inflates the charge
  /// (the whole rank — compute, copies, NIC — runs slow); defined
  /// out-of-line because it consults the cluster's fault injector.
  void charge(sim::Phase phase, double ns);

  /// Barrier on `c`, charging the wait (group max - own arrival) to `phase`.
  void barrier(Comm& c, sim::Phase phase) {
    const double before = clock.now_ns();
    const double mx = c.barrier().sync(c.index_of(rank), clock);
    prof.add(phase, mx - before);
    if (tracer != nullptr && mx > before) {
      tracer->span(rank, obs::kCatTime, sim::to_string(phase), before, mx,
                   "\"op\":\"barrier\"");
    }
  }

  /// Semantic instant on this rank's track (no-op when tracing is off).
  void trace_instant(const char* cat, std::string name, std::string args = {}) {
    if (tracer != nullptr)
      tracer->instant(rank, cat, std::move(name), clock.now_ns(),
                      std::move(args));
  }

  /// Semantic span [t0_ns, t1_ns] on this rank's track (no-op when off).
  void trace_span(const char* cat, std::string name, double t0_ns,
                  double t1_ns, std::string args = {}) {
    if (tracer != nullptr)
      tracer->span(rank, cat, std::move(name), t0_ns, t1_ns, std::move(args));
  }

  bool is_node_leader() const { return local == 0; }
};

class Cluster {
 public:
  /// `ppn` must be 1 or divide sockets_per_node; each rank is bound to a
  /// contiguous block of sockets_per_node/ppn sockets.
  Cluster(sim::Topology topo, sim::CostParams params, int ppn);

  int nranks() const { return nranks_; }
  int ppn() const { return ppn_; }
  int sockets_per_rank() const { return sockets_per_rank_; }
  int node_of(int rank) const { return rank / ppn_; }
  int local_of(int rank) const { return rank % ppn_; }

  const sim::Topology& topo() const { return topo_; }
  const sim::CostParams& params() const { return params_; }
  const sim::MemModel& mem() const { return mem_; }
  const sim::LinkModel& link() const { return link_; }

  /// Attach a fault injector ("chaos mode"); nullptr disables. The
  /// injector's dynamic liveness state is reset at the start of each run().
  void set_fault_injector(std::shared_ptr<faults::FaultInjector> inj) {
    injector_ = std::move(inj);
  }
  /// The active fault injector, or nullptr when chaos mode is off.
  const faults::FaultInjector* injector() const { return injector_.get(); }
  faults::FaultInjector* injector() { return injector_.get(); }

  /// Attach an event tracer; nullptr disables tracing. Each rank of the
  /// next run() gets `Proc::tracer` pointed at it. The tracer must have
  /// exactly nranks() rank tracks.
  void set_tracer(std::shared_ptr<obs::Tracer> tracer) {
    tracer_ = std::move(tracer);
  }
  obs::Tracer* tracer() { return tracer_.get(); }
  const obs::Tracer* tracer() const { return tracer_.get(); }

  /// Permanently remove a crashing rank from every communicator barrier it
  /// belongs to (world, node, its subgroup, leaders if applicable), so the
  /// surviving ranks keep synchronizing without it.
  void retire_rank(const Proc& p);

  Comm& world() { return *world_; }
  Comm& node_comm(int node) { return *node_comms_[static_cast<size_t>(node)]; }
  /// One member per node: the ranks with local index 0.
  Comm& leaders() { return *leaders_; }
  /// Subgroup `local`: the ranks with that local index, one per node
  /// (the "colors" of the paper's Fig. 7).
  Comm& subgroup(int local) { return *subgroups_[static_cast<size_t>(local)]; }

  /// Run `fn` SPMD on nranks() threads. Profiles/clocks are reset first and
  /// collected into `profiles()` afterwards. Any exception escaping a rank
  /// aborts the process (rank functions are noexcept by contract; letting
  /// one rank die would deadlock the others at a barrier).
  void run(const std::function<void(Proc&)>& fn);

  const std::vector<sim::PhaseProfile>& profiles() const { return profiles_; }

 private:
  sim::Topology topo_;
  sim::CostParams params_;
  int ppn_;
  int nranks_;
  int sockets_per_rank_;
  sim::MemModel mem_;
  sim::LinkModel link_;

  std::unique_ptr<Comm> world_;
  std::vector<std::unique_ptr<Comm>> node_comms_;
  std::unique_ptr<Comm> leaders_;
  std::vector<std::unique_ptr<Comm>> subgroups_;
  std::shared_ptr<faults::FaultInjector> injector_;
  std::shared_ptr<obs::Tracer> tracer_;
  /// Set by retire_rank; tells the next run() to rebuild every barrier at
  /// full membership (retirement is permanent on a std::barrier).
  std::atomic<bool> barriers_dirty_{false};

  std::vector<sim::PhaseProfile> profiles_;
};

}  // namespace numabfs::rt
