#include "runtime/p2p.hpp"

#include <algorithm>

namespace numabfs::rt {

void PostOffice::send(Proc& from, int to, std::span<const std::uint64_t> payload,
                      sim::Phase phase, int flows) {
  const Cluster& c = *from.cluster;
  const std::uint64_t bytes = payload.size() * sizeof(std::uint64_t);
  double ns;
  if (c.node_of(to) == from.node) {
    ns = c.params().cico_factor * static_cast<double>(bytes) /
         c.link().shm_flow_bw(flows);
    from.prof.counters().bytes_intra_node += bytes;
  } else {
    ns = c.link().nic_transfer_ns(bytes, flows, from.node, c.node_of(to));
    from.prof.counters().bytes_inter_node += bytes;
  }
  from.charge(phase, ns);

  Box& box = boxes_[static_cast<size_t>(to)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(Message{from.rank, from.clock.now_ns(),
                                {payload.begin(), payload.end()}});
  }
  box.cv.notify_all();
}

std::vector<std::uint64_t> PostOffice::recv(Proc& self, int from,
                                            sim::Phase phase) {
  Box& box = boxes_[static_cast<size_t>(self.rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [from](const Message& m) { return m.from == from; });
    if (it != box.queue.end()) {
      Message m = std::move(*it);
      box.queue.erase(it);
      lock.unlock();
      if (m.arrival_ns > self.clock.now_ns()) {
        self.prof.add(phase, m.arrival_ns - self.clock.now_ns());
        self.clock.advance_to_ns(m.arrival_ns);
      }
      return std::move(m.payload);
    }
    box.cv.wait(lock);
  }
}

}  // namespace numabfs::rt
