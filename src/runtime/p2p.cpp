#include "runtime/p2p.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "faults/errors.hpp"
#include "faults/hash.hpp"

namespace numabfs::rt {

namespace {

/// Retransmit timeout after attempt `attempt` (0-based): 4x the one-way
/// message latency, doubling per attempt, capped so a long fault burst
/// degrades gracefully instead of exploding the virtual clock.
double rto_ns(const sim::CostParams& cp, int attempt) {
  const int exp = std::min(attempt, 6);
  return 4.0 * cp.nic_msg_latency_ns * static_cast<double>(1u << exp);
}

}  // namespace

void PostOffice::send(Proc& from, int to, std::span<const std::uint64_t> payload,
                      sim::Phase phase, int flows) {
  const Cluster& c = *from.cluster;
  const faults::FaultInjector* inj = c.injector();
  const std::uint64_t bytes = payload.size() * sizeof(std::uint64_t);
  const bool inter = c.node_of(to) != from.node;

  const std::uint64_t seq =
      seq_[static_cast<size_t>(from.rank) * static_cast<size_t>(nranks_) +
           static_cast<size_t>(to)]++;
  const std::uint64_t checksum = faults::checksum64(payload);
  Box& box = boxes_[static_cast<size_t>(to)];

  for (int attempt = 0;; ++attempt) {
    // Per-attempt wire time. An active link-degradation event stretches the
    // bandwidth term of inter-node transfers; the latency term is physics.
    double ns;
    if (inter) {
      ns = c.link().nic_transfer_ns(bytes, flows, from.node, c.node_of(to));
      if (inj != nullptr) {
        const double lf = std::min(
            inj->link_factor(from.node, from.clock.now_ns()),
            inj->link_factor(c.node_of(to), from.clock.now_ns()));
        ns = c.params().nic_msg_latency_ns +
             (ns - c.params().nic_msg_latency_ns) / lf;
      }
      from.prof.counters().bytes_inter_node += bytes;
    } else {
      ns = c.params().cico_factor * static_cast<double>(bytes) /
           c.link().shm_flow_bw(flows);
      from.prof.counters().bytes_intra_node += bytes;
    }
    from.prof.counters().bytes_raw_equiv += bytes;

    // Drop/corrupt coins model the NIC; intra-node shared-memory copies are
    // reliable (the paper's mmap'd buffers don't traverse the fabric).
    faults::Verdict v = faults::Verdict::deliver;
    if (inj != nullptr && inter)
      v = inj->attempt_verdict(from.rank, to, seq, attempt, from.clock.now_ns());

    if (v == faults::Verdict::drop) {
      // The attempt burned wire time, then the sender sat out the
      // retransmit timeout waiting for an ACK that never came.
      from.trace_instant(obs::kCatFault, "p2p.drop",
                         obs::kv("to", to) + "," + obs::kv("seq", seq) + "," +
                             obs::kv("attempt", attempt));
      ++from.prof.counters().retransmits;
      from.charge(phase, ns + rto_ns(c.params(), attempt));
      if (attempt + 1 >= kMaxAttempts)
        throw faults::FaultError(
            "PostOffice::send: message " + std::to_string(seq) + " from rank " +
            std::to_string(from.rank) + " to rank " + std::to_string(to) +
            " dropped " + std::to_string(kMaxAttempts) + " times; giving up");
      continue;
    }

    from.charge(phase, ns);
    std::vector<std::uint64_t> data(payload.begin(), payload.end());
    if (v == faults::Verdict::corrupt && inj != nullptr)
      inj->corrupt_payload(data, from.rank, to, seq, attempt);
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(Message{from.rank, from.clock.now_ns(), seq, checksum,
                                  std::move(data)});
    }
    box.cv.notify_all();

    if (v == faults::Verdict::corrupt) {
      // The receiver's checksum check rejects this copy and NACKs; the
      // sender pays the NACK round trip before retransmitting.
      from.trace_instant(obs::kCatFault, "p2p.corrupt",
                         obs::kv("to", to) + "," + obs::kv("seq", seq) + "," +
                             obs::kv("attempt", attempt));
      ++from.prof.counters().retransmits;
      from.charge(phase, 2.0 * c.params().nic_msg_latency_ns);
      if (attempt + 1 >= kMaxAttempts)
        throw faults::FaultError(
            "PostOffice::send: message " + std::to_string(seq) + " from rank " +
            std::to_string(from.rank) + " to rank " + std::to_string(to) +
            " corrupted " + std::to_string(kMaxAttempts) + " times; giving up");
      continue;
    }
    from.trace_instant(obs::kCatP2p, "send",
                       obs::kv("to", to) + "," + obs::kv("bytes", bytes) +
                           "," + obs::kv("seq", seq));
    return;
  }
}

std::vector<std::uint64_t> PostOffice::recv(Proc& self, int from,
                                            sim::Phase phase, double timeout_ns,
                                            int host_grace_ms) {
  const faults::FaultInjector* inj =
      self.cluster != nullptr ? self.cluster->injector() : nullptr;
  const bool finite = timeout_ns < kNoTimeout;
  Box& box = boxes_[static_cast<size_t>(self.rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  int host_waited_ms = 0;
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [from](const Message& m) { return m.from == from; });
    if (it != box.queue.end()) {
      Message m = std::move(*it);
      box.queue.erase(it);
      lock.unlock();
      if (m.arrival_ns > self.clock.now_ns()) {
        const double t0 = self.clock.now_ns();
        self.prof.add(phase, m.arrival_ns - t0);
        self.clock.advance_to_ns(m.arrival_ns);
        self.trace_span(obs::kCatTime, sim::to_string(phase), t0, m.arrival_ns,
                        "\"op\":\"recv_wait\"");
      }
      if (faults::checksum64(m.payload) != m.checksum) {
        // Damaged in flight: discard and NACK (one message latency); the
        // retransmission is (or will be) behind it in the queue.
        if (self.cluster != nullptr)
          self.charge(phase, self.cluster->params().nic_msg_latency_ns);
        lock.lock();
        continue;
      }
      return std::move(m.payload);
    }

    if (inj != nullptr && inj->dead(from)) {
      if (finite) {
        const double t0 = self.clock.now_ns();
        self.clock.charge_ns(timeout_ns);
        self.prof.add(phase, timeout_ns);
        ++self.prof.counters().recv_timeouts;
        self.trace_span(obs::kCatTime, sim::to_string(phase), t0,
                        t0 + timeout_ns, "\"op\":\"recv_timeout\"");
      }
      throw faults::TimeoutError(
          "PostOffice::recv: rank " + std::to_string(self.rank) +
          " waiting on rank " + std::to_string(from) +
          ", which has crashed; no message will arrive");
    }
    if (finite && host_waited_ms >= host_grace_ms) {
      // Nothing arrived within the host grace window: model the virtual
      // wait as exactly the requested timeout, deterministically.
      const double t0 = self.clock.now_ns();
      self.clock.charge_ns(timeout_ns);
      self.prof.add(phase, timeout_ns);
      ++self.prof.counters().recv_timeouts;
      self.trace_span(obs::kCatTime, sim::to_string(phase), t0,
                      t0 + timeout_ns, "\"op\":\"recv_timeout\"");
      throw faults::TimeoutError(
          "PostOffice::recv: rank " + std::to_string(self.rank) +
          " timed out after " + std::to_string(timeout_ns) +
          " virtual ns waiting for a message from rank " +
          std::to_string(from));
    }
    if (finite || inj != nullptr) {
      // Poll so a crash of the sender (or host-clock silence) is noticed.
      box.cv.wait_for(lock, std::chrono::milliseconds(10));
      host_waited_ms += 10;
    } else {
      box.cv.wait(lock);
    }
  }
}

}  // namespace numabfs::rt
