#include "runtime/coll_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace numabfs::rt::coll_model {

double min_nic_factor(const Cluster& c) {
  double f = 1.0;
  for (int n = 0; n < c.topo().nodes(); ++n)
    f = std::min(f, c.topo().nic_factor(n));
  return f;
}

CollTimes flat_ring(const Cluster& c, std::uint64_t chunk_bytes) {
  return flat_ring_shape(c, c.topo().nodes(), c.ppn(), chunk_bytes);
}

CollTimes flat_ring_shape(const Cluster& c, int nnodes, int per_node,
                          std::uint64_t chunk_bytes) {
  CollTimes t;
  const int np = nnodes * per_node;
  if (np <= 1) return t;
  const int steps = np - 1;
  const auto& cp = c.params();

  // Intra-node hop: CICO shared-memory channel. All per_node flows of a
  // node copy concurrently, so each gets at most an equal share of the
  // node-wide copy ceiling.
  double t_intra = 0.0;
  if (per_node > 1) {
    const double per_flow =
        std::min(c.link().shm_flow_bw(1),
                 cp.node_copy_ceiling / static_cast<double>(per_node));
    t_intra = cp.cico_factor * static_cast<double>(chunk_bytes) / per_flow;
  }

  // Inter-node hop: with block rank order each node has exactly one
  // boundary flow per step.
  double t_inter = 0.0;
  if (nnodes > 1)
    t_inter = cp.nic_msg_latency_ns + static_cast<double>(chunk_bytes) /
                                          c.link().nic_flow_bw(1, min_nic_factor(c));

  t.intra_overlapped_ns = steps * t_intra;
  t.inter_ns = steps * t_inter;
  t.total_ns = steps * std::max(t_intra, t_inter);
  return t;
}

double gather_to_leader_ns(const Cluster& c, std::uint64_t chunk_bytes) {
  const int children = c.ppn() - 1;
  if (children <= 0) return 0.0;
  const auto& cp = c.params();
  // MPI gather over the shared-memory channel drains the children
  // serially through the leader's bounce buffers (CICO both ways).
  return static_cast<double>(children) * static_cast<double>(chunk_bytes) *
         cp.cico_factor / cp.shm_copy_bw;
}

double bcast_from_leader_ns(const Cluster& c, std::uint64_t total_bytes) {
  const int children = c.ppn() - 1;
  if (children <= 0) return 0.0;
  const auto& cp = c.params();
  // Pipelined sm broadcast: children read each bounce segment concurrently,
  // so the leader's copy-in rate is the bottleneck — the whole payload
  // crosses the leader's bounce buffers once, with the CICO penalty. This
  // is the step that dominates Fig. 6 and that sharing in_queue deletes.
  return static_cast<double>(total_bytes) * cp.cico_factor / cp.shm_copy_bw;
}

double inter_ring_ns(const Cluster& c, std::uint64_t chunk_bytes,
                     int flows_per_node) {
  const int n = c.topo().nodes();
  if (n <= 1) return 0.0;
  const auto& cp = c.params();
  const double bw = c.link().nic_flow_bw(flows_per_node, min_nic_factor(c));
  return (n - 1) *
         (cp.nic_msg_latency_ns + static_cast<double>(chunk_bytes) / bw);
}

double inter_recursive_doubling_ns(const Cluster& c, std::uint64_t chunk_bytes,
                                   int flows_per_node) {
  const int n = c.topo().nodes();
  if (n <= 1) return 0.0;
  const auto& cp = c.params();
  const double bw = c.link().nic_flow_bw(flows_per_node, min_nic_factor(c));
  // Non-power-of-two group sizes fall back to the ring bound; the harness
  // only selects recursive doubling for power-of-two node counts.
  if (!std::has_single_bit(static_cast<unsigned>(n)))
    return inter_ring_ns(c, chunk_bytes, flows_per_node);
  const int rounds = std::countr_zero(static_cast<unsigned>(n));
  double t = 0.0;
  std::uint64_t sz = chunk_bytes;
  for (int r = 0; r < rounds; ++r) {
    t += cp.nic_msg_latency_ns + static_cast<double>(sz) / bw;
    sz *= 2;
  }
  return t;
}

CollTimes leader_allgather(const Cluster& c, std::uint64_t chunk_bytes,
                           bool with_gather, bool with_bcast,
                           int flows_per_node, bool rd_inter) {
  CollTimes t;
  const int ppn = c.ppn();
  const std::uint64_t node_chunk =
      chunk_bytes * static_cast<std::uint64_t>(ppn);
  const std::uint64_t total =
      node_chunk * static_cast<std::uint64_t>(c.topo().nodes());

  if (with_gather && ppn > 1) t.gather_ns = gather_to_leader_ns(c, chunk_bytes);

  // The node chunk is split across the concurrent subgroup flows: one flow
  // carries it whole (single leader), ppn flows carry one rank chunk each.
  const std::uint64_t wire_chunk =
      node_chunk / static_cast<std::uint64_t>(std::max(1, flows_per_node));
  t.inter_ns = rd_inter
                   ? inter_recursive_doubling_ns(c, wire_chunk, flows_per_node)
                   : inter_ring_ns(c, wire_chunk, flows_per_node);

  if (with_bcast && ppn > 1) t.bcast_ns = bcast_from_leader_ns(c, total);

  t.total_ns = t.gather_ns + t.inter_ns + t.bcast_ns;
  return t;
}

CollTimes leader_allgather_overlapped(const Cluster& c,
                                      std::uint64_t chunk_bytes) {
  CollTimes t = leader_allgather(c, chunk_bytes, true, true, 1);
  t.total_ns = std::max(t.gather_ns + t.bcast_ns, t.inter_ns);
  return t;
}

double allreduce_scalar_ns(const Cluster& c, int group_size) {
  if (group_size <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(group_size)));
  // reduce + broadcast trees of latency-bound messages
  return 2.0 * rounds * c.params().nic_msg_latency_ns;
}

double pipelined2_ns(double a_ns, double b_ns, int chunks) {
  if (chunks <= 1) return a_ns + b_ns;
  const double k = static_cast<double>(chunks);
  return a_ns / k + (k - 1.0) * std::max(a_ns, b_ns) / k + b_ns / k;
}

std::uint64_t allgather_volume_bytes(std::uint64_t total_bytes, int np) {
  return total_bytes * static_cast<std::uint64_t>(np > 0 ? np - 1 : 0);
}

// --- hierarchical subgroup collectives ------------------------------------

const char* to_string(HierLevel h) {
  switch (h) {
    case HierLevel::flat: return "flat";
    case HierLevel::node: return "node";
    case HierLevel::socket: return "socket";
  }
  return "?";
}

namespace {

/// Message latencies one node pays to inject `msgs` concurrent messages:
/// the injection pipeline serializes over the NIC ports.
double inject_lat_ns(const Cluster& c, int msgs) {
  if (msgs <= 0) return 0.0;
  const int ports = std::max(1, c.topo().nic_ports_per_node());
  const int rounds = (msgs + ports - 1) / ports;
  return static_cast<double>(rounds) * c.params().nic_msg_latency_ns;
}

/// Staged shared-memory pass of `bytes` through a node leader: CICO bounce
/// at HierLevel::node, direct-mapped (single pass) at HierLevel::socket.
double stage_ns(const Cluster& c, std::uint64_t bytes, HierLevel level) {
  const double factor =
      level == HierLevel::socket ? 1.0 : c.params().cico_factor;
  return factor * static_cast<double>(bytes) / c.params().shm_copy_bw;
}

}  // namespace

CollTimes hier_subgroup_allgather(const Cluster& c, int span_nodes,
                                  int per_node, int concurrency,
                                  std::uint64_t chunk_bytes, HierLevel level,
                                  bool rd_inter) {
  CollTimes t;
  const int members = span_nodes * per_node;
  if (members <= 1) return t;
  const auto& cp = c.params();
  const double factor = min_nic_factor(c);

  if (level == HierLevel::flat) {
    // Ring over all members; each node injects one message per co-located
    // participant per step (per_node members x concurrency siblings).
    const int steps = members - 1;
    double t_intra = 0.0;
    if (per_node > 1) {
      const int copies = per_node * concurrency;
      const double per_flow =
          std::min(c.link().shm_flow_bw(1),
                   cp.node_copy_ceiling / static_cast<double>(copies));
      t_intra = cp.cico_factor * static_cast<double>(chunk_bytes) / per_flow;
    }
    double t_inter = 0.0;
    if (span_nodes > 1) {
      const int msgs = per_node * concurrency;
      t_inter = inject_lat_ns(c, msgs) +
                static_cast<double>(chunk_bytes) /
                    c.link().nic_flow_bw(msgs, factor);
    }
    t.intra_overlapped_ns = steps * t_intra;
    t.inter_ns = steps * t_inter;
    t.total_ns = steps * std::max(t_intra, t_inter);
    return t;
  }

  // Node-aware: all co-located participants (per_node members of this
  // subgroup x concurrency siblings) stage their chunks at the node leader,
  // leaders exchange combined node chunks, the assembled payload fans back
  // out once.
  const int staged = per_node * concurrency;
  const std::uint64_t node_chunk =
      chunk_bytes * static_cast<std::uint64_t>(staged);
  if (staged > 1)
    t.gather_ns = stage_ns(
        c, chunk_bytes * static_cast<std::uint64_t>(staged - 1), level);
  if (span_nodes > 1) {
    const double bw = c.link().nic_flow_bw(1, factor);
    if (rd_inter && std::has_single_bit(static_cast<unsigned>(span_nodes))) {
      std::uint64_t sz = node_chunk;
      for (int r = 0; r < std::countr_zero(static_cast<unsigned>(span_nodes));
           ++r) {
        t.inter_ns += cp.nic_msg_latency_ns + static_cast<double>(sz) / bw;
        sz *= 2;
      }
    } else {
      t.inter_ns = (span_nodes - 1) * (cp.nic_msg_latency_ns +
                                       static_cast<double>(node_chunk) / bw);
    }
  }
  if (staged > 1)
    t.bcast_ns = stage_ns(
        c, node_chunk * static_cast<std::uint64_t>(span_nodes), level);
  t.total_ns = t.gather_ns + t.inter_ns + t.bcast_ns;
  return t;
}

double hier_alltoallv_ns(const Cluster& c, int span_nodes, int per_node,
                         std::uint64_t node_intra_bytes,
                         std::uint64_t node_inter_bytes, HierLevel level) {
  const double factor = min_nic_factor(c);
  // Intra-node peer traffic: bounced (CICO) unless the exchange buffers are
  // directly mapped (socket level — the paper's sharing idea applied to the
  // fold, cf. the seed's shared_fold).
  const double intra_factor =
      level == HierLevel::socket ? 1.0 : c.params().cico_factor;
  const double t_intra = intra_factor * static_cast<double>(node_intra_bytes) /
                         c.params().shm_copy_bw;
  if (span_nodes <= 1 || node_inter_bytes == 0) return t_intra;

  double t_inter;
  if (level == HierLevel::flat) {
    const int msgs = per_node * per_node * (span_nodes - 1);
    t_inter = inject_lat_ns(c, msgs) +
              static_cast<double>(node_inter_bytes) /
                  c.link().nic_node_bw(per_node, factor);
  } else {
    // Leaders exchange one combined message per peer node; the inter-node
    // payload is staged through the leader on the way out and the way in.
    t_inter = 2.0 * stage_ns(c, node_inter_bytes, level) +
              inject_lat_ns(c, span_nodes - 1) +
              static_cast<double>(node_inter_bytes) /
                  c.link().nic_node_bw(1, factor);
  }
  return t_intra + t_inter;
}

}  // namespace numabfs::rt::coll_model
