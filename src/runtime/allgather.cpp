#include "runtime/allgather.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

namespace numabfs::rt {

const char* to_string(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::flat_ring: return "flat_ring";
    case AllgatherAlgo::leader_ring: return "leader_ring";
    case AllgatherAlgo::leader_rd: return "leader_rd";
  }
  return "?";
}

namespace {

/// Distinct nodes spanned by a comm (group shape for the time model).
int nodes_spanned(const Cluster& c, const Comm& comm) {
  std::set<int> nodes;
  for (int r : comm.members()) nodes.insert(c.node_of(r));
  return static_cast<int>(nodes.size());
}

coll_model::CollTimes model_time(const Cluster& c, const Comm& comm,
                                 std::uint64_t chunk_bytes,
                                 AllgatherAlgo algo) {
  const int np = comm.size();
  const int nnodes = nodes_spanned(c, comm);
  const int per_node = np / std::max(1, nnodes);
  coll_model::CollTimes t;
  switch (algo) {
    case AllgatherAlgo::flat_ring:
      return coll_model::flat_ring_shape(c, nnodes, per_node, chunk_bytes);
    case AllgatherAlgo::leader_ring:
    case AllgatherAlgo::leader_rd: {
      const std::uint64_t node_chunk =
          chunk_bytes * static_cast<std::uint64_t>(per_node);
      const std::uint64_t total =
          node_chunk * static_cast<std::uint64_t>(nnodes);
      t.gather_ns = per_node > 1 ? coll_model::gather_to_leader_ns(c, chunk_bytes)
                                 : 0.0;
      t.inter_ns = algo == AllgatherAlgo::leader_ring
                       ? coll_model::inter_ring_ns(c, node_chunk, 1)
                       : coll_model::inter_recursive_doubling_ns(c, node_chunk, 1);
      t.bcast_ns =
          per_node > 1 ? coll_model::bcast_from_leader_ns(c, total) : 0.0;
      t.total_ns = t.gather_ns + t.inter_ns + t.bcast_ns;  // sequential steps
      return t;
    }
  }
  return t;
}

}  // namespace

coll_model::CollTimes allgather(Proc& p, Comm& comm,
                                std::span<const std::uint64_t> chunk,
                                std::span<std::uint64_t> dst,
                                AllgatherAlgo algo, sim::Phase phase) {
  Cluster& c = *p.cluster;
  const int idx = comm.index_of(p.rank);
  assert(idx >= 0);
  const size_t words = chunk.size();
  assert(dst.size() == words * static_cast<size_t>(comm.size()));

  comm.publish_ptr(idx, chunk.data());
  comm.publish_val(idx, words);
  p.barrier(comm, sim::Phase::stall);  // inputs ready; clocks aligned

  // Real data movement: copy every member's chunk into our private dst.
  for (int i = 0; i < comm.size(); ++i) {
    assert(comm.val(i) == words && "allgather requires equal chunk sizes");
    const auto* src = static_cast<const std::uint64_t*>(comm.ptr(i));
    std::memcpy(dst.data() + static_cast<size_t>(i) * words, src,
                words * sizeof(std::uint64_t));
    const std::uint64_t bytes = words * sizeof(std::uint64_t);
    if (i != idx) {
      if (c.node_of(comm.world_rank(i)) == p.node)
        p.prof.counters().bytes_intra_node += bytes;
      else
        p.prof.counters().bytes_inter_node += bytes;
    }
  }

  const coll_model::CollTimes t =
      model_time(c, comm, words * sizeof(std::uint64_t), algo);
  p.charge(phase, t.total_ns);
  p.barrier(comm, phase);  // collective completes together
  return t;
}

namespace {

std::uint64_t allreduce_impl(Proc& p, Comm& comm, std::uint64_t v, bool max_op,
                             sim::Phase phase) {
  const int idx = comm.index_of(p.rank);
  assert(idx >= 0);
  comm.publish_val(idx, v);
  p.barrier(comm, phase);
  std::uint64_t acc = max_op ? 0 : 0;
  for (int i = 0; i < comm.size(); ++i)
    acc = max_op ? std::max(acc, comm.val(i)) : acc + comm.val(i);
  p.charge(phase, coll_model::allreduce_scalar_ns(*p.cluster, comm.size()));
  p.barrier(comm, phase);
  return acc;
}

}  // namespace

std::uint64_t allreduce_sum(Proc& p, Comm& comm, std::uint64_t v,
                            sim::Phase phase) {
  return allreduce_impl(p, comm, v, /*max_op=*/false, phase);
}

std::uint64_t allreduce_max(Proc& p, Comm& comm, std::uint64_t v,
                            sim::Phase phase) {
  return allreduce_impl(p, comm, v, /*max_op=*/true, phase);
}

}  // namespace numabfs::rt
