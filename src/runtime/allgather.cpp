#include "runtime/allgather.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <string>

#include "faults/errors.hpp"
#include "faults/hash.hpp"

namespace numabfs::rt {

const char* to_string(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::flat_ring: return "flat_ring";
    case AllgatherAlgo::leader_ring: return "leader_ring";
    case AllgatherAlgo::leader_rd: return "leader_rd";
  }
  return "?";
}

namespace {

/// Distinct nodes spanned by a comm (group shape for the time model).
int nodes_spanned(const Cluster& c, const Comm& comm) {
  std::set<int> nodes;
  for (int r : comm.members()) nodes.insert(c.node_of(r));
  return static_cast<int>(nodes.size());
}

coll_model::CollTimes model_time(const Cluster& c, const Comm& comm,
                                 std::uint64_t chunk_bytes,
                                 AllgatherAlgo algo) {
  const int np = comm.size();
  const int nnodes = nodes_spanned(c, comm);
  const int per_node = np / std::max(1, nnodes);
  coll_model::CollTimes t;
  switch (algo) {
    case AllgatherAlgo::flat_ring:
      return coll_model::flat_ring_shape(c, nnodes, per_node, chunk_bytes);
    case AllgatherAlgo::leader_ring:
    case AllgatherAlgo::leader_rd: {
      const std::uint64_t node_chunk =
          chunk_bytes * static_cast<std::uint64_t>(per_node);
      const std::uint64_t total =
          node_chunk * static_cast<std::uint64_t>(nnodes);
      t.gather_ns = per_node > 1 ? coll_model::gather_to_leader_ns(c, chunk_bytes)
                                 : 0.0;
      t.inter_ns = algo == AllgatherAlgo::leader_ring
                       ? coll_model::inter_ring_ns(c, node_chunk, 1)
                       : coll_model::inter_recursive_doubling_ns(c, node_chunk, 1);
      t.bcast_ns =
          per_node > 1 ? coll_model::bcast_from_leader_ns(c, total) : 0.0;
      t.total_ns = t.gather_ns + t.inter_ns + t.bcast_ns;  // sequential steps
      return t;
    }
  }
  return t;
}

/// Attempt budget for one chunk of a fault-tolerant allgather (mirrors
/// PostOffice::kMaxAttempts).
constexpr int kCollMaxAttempts = 20;

/// Retransmit timeout after `attempt` (exponential backoff, capped).
double coll_rto_ns(const sim::CostParams& cp, int attempt) {
  const int exp = std::min(attempt, 6);
  return 4.0 * cp.nic_msg_latency_ns * static_cast<double>(1u << exp);
}

}  // namespace

coll_model::CollTimes allgather(Proc& p, Comm& comm,
                                std::span<const std::uint64_t> chunk,
                                std::span<std::uint64_t> dst,
                                AllgatherAlgo algo, sim::Phase phase) {
  Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  const int idx = comm.index_of(p.rank);
  assert(idx >= 0);
  const size_t words = chunk.size();
  assert(dst.size() == words * static_cast<size_t>(comm.size()));
  const double trace_t0 = p.clock.now_ns();

  comm.publish_ptr(idx, chunk.data());
  comm.publish_val(idx, words);
  if (inj != nullptr) comm.publish_chk(idx, faults::checksum64(chunk));
  p.barrier(comm, sim::Phase::stall);  // inputs ready; clocks aligned

  // Real data movement: copy every member's chunk into our private dst.
  // Under chaos, every incoming inter-node chunk rolls per-attempt
  // drop/corrupt coins; corruption is detected by verifying the copied
  // words against the sender's published checksum, then re-copied.
  double fault_extra_ns = 0.0;
  for (int i = 0; i < comm.size(); ++i) {
    std::uint64_t* out = dst.data() + static_cast<size_t>(i) * words;
    const int peer = comm.world_rank(i);
    const std::uint64_t bytes = words * sizeof(std::uint64_t);
    if (inj != nullptr && inj->dead(peer)) {
      // No sender: the slice is defined as zeros so callers see a stable
      // (empty) contribution instead of stale garbage.
      std::memset(out, 0, bytes);
      continue;
    }
    assert(comm.val(i) == words && "allgather requires equal chunk sizes");
    const auto* src = static_cast<const std::uint64_t*>(comm.ptr(i));
    const bool inter = c.node_of(peer) != p.node;
    if (i != idx) {
      if (inter)
        p.prof.counters().bytes_inter_node += bytes;
      else
        p.prof.counters().bytes_intra_node += bytes;
      p.prof.counters().bytes_raw_equiv += bytes;
    }
    if (inj == nullptr || i == idx || !inter) {
      std::memcpy(out, src, bytes);
      continue;
    }
    const std::uint64_t seq = p.coll_seq++;
    const std::uint64_t want = comm.chk(i);
    for (int attempt = 0;; ++attempt) {
      const faults::Verdict v =
          inj->attempt_verdict(peer, p.rank, seq, attempt, p.clock.now_ns());
      if (v == faults::Verdict::drop) {
        p.trace_instant(obs::kCatFault, "coll.drop",
                        obs::kv("from", peer) + "," + obs::kv("seq", seq) +
                            "," + obs::kv("attempt", attempt));
        ++p.prof.counters().retransmits;
        fault_extra_ns += c.link().nic_transfer_ns(bytes, 1, c.node_of(peer),
                                                   p.node) +
                          coll_rto_ns(c.params(), attempt);
        if (attempt + 1 >= kCollMaxAttempts)
          throw faults::FaultError(
              "allgather: chunk from rank " + std::to_string(peer) +
              " to rank " + std::to_string(p.rank) + " dropped " +
              std::to_string(kCollMaxAttempts) + " times; giving up");
        continue;
      }
      std::memcpy(out, src, bytes);
      if (v == faults::Verdict::corrupt)
        inj->corrupt_payload({out, words}, peer, p.rank, seq, attempt);
      if (faults::checksum64({out, words}) == want) break;
      // Checksum mismatch: discard, NACK, wait for the retransmission.
      p.trace_instant(obs::kCatFault, "coll.corrupt",
                      obs::kv("from", peer) + "," + obs::kv("seq", seq) + "," +
                          obs::kv("attempt", attempt));
      ++p.prof.counters().retransmits;
      fault_extra_ns += 2.0 * c.params().nic_msg_latency_ns;
      if (attempt + 1 >= kCollMaxAttempts)
        throw faults::FaultError(
            "allgather: chunk from rank " + std::to_string(peer) +
            " to rank " + std::to_string(p.rank) + " corrupted " +
            std::to_string(kCollMaxAttempts) + " times; giving up");
    }
  }

  coll_model::CollTimes t =
      model_time(c, comm, words * sizeof(std::uint64_t), algo);
  if (inj != nullptr) {
    // A degraded fabric stretches the inter-node stage; retransmissions of
    // individual chunks are tacked onto the total.
    const double lf = inj->min_link_factor(p.clock.now_ns());
    t.total_ns += t.inter_ns * (1.0 / lf - 1.0) + fault_extra_ns;
    t.inter_ns /= lf;
  }
  p.charge(phase, t.total_ns);
  p.barrier(comm, phase);  // collective completes together
  p.trace_span(obs::kCatColl, std::string("allgather.") + to_string(algo),
               trace_t0, p.clock.now_ns(),
               obs::kv("chunk_bytes",
                       static_cast<std::uint64_t>(words) * sizeof(std::uint64_t)) +
                   "," + obs::kv("group", comm.size()));
  return t;
}

namespace {

enum class ReduceOp { sum, max, bit_or };

std::uint64_t allreduce_impl(Proc& p, Comm& comm, std::uint64_t v, ReduceOp op,
                             sim::Phase phase) {
  const faults::FaultInjector* inj = p.cluster->injector();
  const int idx = comm.index_of(p.rank);
  assert(idx >= 0);
  comm.publish_val(idx, v);
  p.barrier(comm, phase);
  std::uint64_t acc = 0;
  for (int i = 0; i < comm.size(); ++i) {
    // Dead members' slots hold stale values from before the crash.
    if (inj != nullptr && inj->dead(comm.world_rank(i))) continue;
    switch (op) {
      case ReduceOp::sum: acc += comm.val(i); break;
      case ReduceOp::max: acc = std::max(acc, comm.val(i)); break;
      case ReduceOp::bit_or: acc |= comm.val(i); break;
    }
  }
  p.charge(phase, coll_model::allreduce_scalar_ns(*p.cluster, comm.size()));
  p.barrier(comm, phase);
  return acc;
}

}  // namespace

std::uint64_t allreduce_sum(Proc& p, Comm& comm, std::uint64_t v,
                            sim::Phase phase) {
  return allreduce_impl(p, comm, v, ReduceOp::sum, phase);
}

std::uint64_t allreduce_max(Proc& p, Comm& comm, std::uint64_t v,
                            sim::Phase phase) {
  return allreduce_impl(p, comm, v, ReduceOp::max, phase);
}

std::uint64_t allreduce_or(Proc& p, Comm& comm, std::uint64_t v,
                           sim::Phase phase) {
  return allreduce_impl(p, comm, v, ReduceOp::bit_or, phase);
}

}  // namespace numabfs::rt
