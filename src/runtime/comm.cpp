#include "runtime/comm.hpp"

namespace numabfs::rt {

Comm::Comm(std::vector<int> world_ranks)
    : members_(std::move(world_ranks)),
      barrier_(std::make_unique<VBarrier>(static_cast<int>(members_.size()))),
      ptr_slots_(members_.size(), nullptr),
      val_slots_(members_.size(), 0),
      chk_slots_(members_.size(), 0) {}

int Comm::index_of(int world_rank) const {
  for (size_t i = 0; i < members_.size(); ++i)
    if (members_[i] == world_rank) return static_cast<int>(i);
  return -1;
}

}  // namespace numabfs::rt
