#pragma once
/// \file coll_model.hpp
/// Analytic durations of the collective-communication building blocks.
///
/// These are pure functions of the cluster shape and message sizes; the
/// data-moving collectives charge them to virtual clocks, and the unit
/// tests assert their algebraic properties (e.g. the paper's Eq. (1):
/// a flat allgather transmits m*(np-1) bytes; Eq. (2): subgroup-parallel
/// allgather moves the same volume while using every NIC port).

#include <cstdint>

#include "runtime/cluster.hpp"

namespace numabfs::rt::coll_model {

/// Timing breakdown of one allgather (the steps of the paper's Fig. 5).
struct CollTimes {
  double gather_ns = 0.0;  ///< step 1: children -> leader (intra-node)
  double inter_ns = 0.0;   ///< step 2: inter-node allgather between leaders
  double bcast_ns = 0.0;   ///< step 3: leader -> children (intra-node)
  double intra_overlapped_ns = 0.0;  ///< flat algorithm's intra component
  double total_ns = 0.0;

  double intra_ns() const { return gather_ns + bcast_ns + intra_overlapped_ns; }
};

/// Open MPI-style default: ring allgather over all np = nnodes*ppn ranks,
/// each contributing `chunk_bytes`. Intra-node hops pay the copy-in/copy-out
/// shared-memory channel cost; each node has one boundary flow crossing the
/// network per step. Intra and inter transfers of a step overlap; the step
/// costs their maximum.
CollTimes flat_ring(const Cluster& c, std::uint64_t chunk_bytes);

/// Same model for an arbitrary group shape: `nnodes` nodes spanned with
/// `per_node` members each.
CollTimes flat_ring_shape(const Cluster& c, int nnodes, int per_node,
                          std::uint64_t chunk_bytes);

/// Step 1 of Fig. 5a: ppn-1 children push `chunk_bytes` each into the
/// leader socket's memory (concurrent, bounded by that socket's ceiling).
double gather_to_leader_ns(const Cluster& c, std::uint64_t chunk_bytes);

/// Step 3 of Fig. 5a: ppn-1 children each pull `total_bytes` from the
/// leader socket's memory.
double bcast_from_leader_ns(const Cluster& c, std::uint64_t total_bytes);

/// Ring allgather among one rank per node, each contributing
/// `chunk_bytes`, with `flows_per_node` concurrent flows sharing each
/// node's NIC (1 for the plain leader ring; ppn when all subgroups run in
/// parallel, each then moving chunk_bytes/... — pass the per-flow chunk).
double inter_ring_ns(const Cluster& c, std::uint64_t chunk_bytes,
                     int flows_per_node);

/// Recursive-doubling allgather among the leaders (better for the small
/// summary bitmaps: log2(n) message latencies instead of n-1).
double inter_recursive_doubling_ns(const Cluster& c, std::uint64_t chunk_bytes,
                                   int flows_per_node);

/// Composite model of the leader-based allgather family (Fig. 5), over the
/// whole cluster with per-rank chunks of `chunk_bytes`:
///  - `with_gather`/`with_bcast` select steps 1/3 (sharing the out/in
///    structures eliminates them — Fig. 5b);
///  - `flows_per_node` = 1 for a single leader, ppn when all subgroups ring
///    in parallel (Fig. 7; each flow then carries chunk_bytes instead of
///    the full node chunk);
///  - `rd_inter` switches the inter-node step to recursive doubling.
CollTimes leader_allgather(const Cluster& c, std::uint64_t chunk_bytes,
                           bool with_gather, bool with_bcast,
                           int flows_per_node, bool rd_inter = false);

/// The same composite under *perfect* intra/inter overlap (HierKNEM-style
/// pipelining, the best case of the overlap literature the paper reviews):
/// total = max(gather + bcast, inter) instead of their sum. The paper's
/// Section III.A argument is that even this bound cannot beat sharing,
/// because the intra-node steps alone exceed the inter-node step
/// (Fig. 6) — `bench_fig06_allgather` prints this row.
CollTimes leader_allgather_overlapped(const Cluster& c,
                                      std::uint64_t chunk_bytes);

/// Latency of an allreduce of one scalar over `group_size` ranks.
double allreduce_scalar_ns(const Cluster& c, int group_size);

/// Duration of two dependent stages (e.g. wire transfer then decode, each
/// taking `a_ns`/`b_ns` in full) pipelined over `chunks` equal pieces:
/// stage-b work on chunk i overlaps stage-a work on chunk i+1, so
///   total = a/k + (k-1) * max(a, b)/k + b/k
/// (fill + steady-state + drain). chunks <= 1 degrades to a + b; more
/// chunks converge to max(a, b) plus the fill/drain of one chunk.
double pipelined2_ns(double a_ns, double b_ns, int chunks);

/// Total bytes transmitted by an allgather of total payload m over np
/// processes — the paper's Eq. (1): m * (np - 1).
std::uint64_t allgather_volume_bytes(std::uint64_t total_bytes, int np);

/// Slowest NIC factor among all nodes (ring collectives are bound by it).
double min_nic_factor(const Cluster& c);

// --- hierarchical subgroup collectives (DESIGN.md §13) -------------------
// The 2-D decomposition's row/column collectives run over *subgroups* of
// the grid, not the whole cluster, and their scaling limit at 256+ nodes is
// message count, not bandwidth (Buluc et al., arXiv:1705.04590). The
// models below therefore refine the flat family in one way: concurrent
// messages injected by one node serialize over its NIC ports, so a step
// with q messages in flight pays ceil(q / ports) message latencies. The
// node-aware variants combine the co-located members' chunks into one
// message per step (leader gather -> inter-node phase -> intra-node bcast),
// trading staged shared-memory copies for that latency factor; the
// socket-aware variants additionally stage through a directly-mapped
// segment (no copy-in/copy-out bounce). The flat/leader functions above
// keep their (latency-optimistic) semantics — existing charges are
// untouched.

/// How a subgroup collective exploits the machine hierarchy.
enum class HierLevel : int {
  flat = 0,   ///< every member is an independent flow (baseline)
  node,       ///< node-aware: co-located members combine into one message
  socket,     ///< node-aware + direct-mapped (no-CICO) intra-node staging
};
const char* to_string(HierLevel h);

/// Allgather over one subgroup spanning `span_nodes` nodes with `per_node`
/// members on each, every member contributing `chunk_bytes`; `concurrency`
/// sibling subgroups of identical shape run on the same nodes at once and
/// share their NICs (the C columns of an R x C grid have per_node = 1 and
/// concurrency = ppn; a row has per_node = ppn and concurrency = 1).
/// flat: ring over all members, per-step latency scaled by the injection
/// serialization above. node/socket: per-node staging, leaders ring (or
/// recursive-double) combined per_node*concurrency*chunk node messages,
/// then one intra-node fan-out of the assembled payload.
CollTimes hier_subgroup_allgather(const Cluster& c, int span_nodes,
                                  int per_node, int concurrency,
                                  std::uint64_t chunk_bytes, HierLevel level,
                                  bool rd_inter = false);

/// Personalized exchange (alltoallv) over the same subgroup shape, from the
/// charged node's viewpoint: `node_intra_bytes` / `node_inter_bytes` are the
/// *measured* volumes the node's members receive over each transport this
/// step (every member charges the node-level time; they leave the exchange
/// through a barrier anyway). flat: per_node^2 * (span_nodes - 1) incoming
/// messages serialize over the ports; node/socket: leaders exchange
/// span_nodes - 1 combined messages, paying two staged passes over the
/// inter-node payload.
double hier_alltoallv_ns(const Cluster& c, int span_nodes, int per_node,
                         std::uint64_t node_intra_bytes,
                         std::uint64_t node_inter_bytes, HierLevel level);

}  // namespace numabfs::rt::coll_model
