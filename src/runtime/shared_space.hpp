#pragma once
/// \file shared_space.hpp
/// Node-shared buffers — the simulator's stand-in for the paper's
/// mmap-shared segments (Section III.A).
///
/// All rank threads of a node that ask for the same (node, key) receive the
/// same span. Callers are responsible for the phase discipline the paper
/// relies on: writers own disjoint regions, and reads of another rank's
/// region happen only after a barrier.

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace numabfs::rt {

class SharedSpace {
 public:
  /// Get-or-create the node-shared buffer `key` of exactly `words`
  /// uint64s (zero-initialized on creation). Throws if the key exists with
  /// a different size.
  std::span<std::uint64_t> node_words(int node, const std::string& key,
                                      std::size_t words) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = bufs_.try_emplace({node, key});
    if (inserted) {
      it->second.assign(words, 0);
    } else if (it->second.size() != words) {
      throw std::invalid_argument("SharedSpace: size mismatch for key " + key);
    }
    return {it->second.data(), it->second.size()};
  }

  /// Drop all buffers (between independent runs).
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.clear();
    claims_.clear();
  }

  // --- write discipline --------------------------------------------------
  // The phase discipline described in the file comment is a convention; in
  // a racy caller it fails silently. These hooks make it checkable: writers
  // declare the region they are about to write, and two ranks claiming
  // overlapping words of the same buffer within one phase is diagnosed as a
  // logic error instead of racing.

  /// Declare that `rank` will write words [lo, hi) of (node, key) during
  /// the current phase. Throws std::logic_error if the region overlaps a
  /// claim made by a *different* rank since the last begin_phase().
  void claim_write(int node, const std::string& key, std::size_t lo,
                   std::size_t hi, int rank) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Claim& c : claims_[{node, key}]) {
      if (c.rank != rank && lo < c.hi && c.lo < hi) {
        throw std::logic_error(
            "SharedSpace: out-of-phase write on node " + std::to_string(node) +
            " key '" + key + "': rank " + std::to_string(rank) + " words [" +
            std::to_string(lo) + ", " + std::to_string(hi) +
            ") overlap rank " + std::to_string(c.rank) + " words [" +
            std::to_string(c.lo) + ", " + std::to_string(c.hi) +
            ") claimed in the same phase");
      }
    }
    claims_[{node, key}].push_back(Claim{lo, hi, rank});
  }

  /// Forget all write claims. Call at phase boundaries (barriers), after
  /// which previously written regions are fair game again.
  void begin_phase() {
    std::lock_guard<std::mutex> lock(mu_);
    claims_.clear();
  }

 private:
  struct Claim {
    std::size_t lo, hi;
    int rank;
  };

  std::mutex mu_;
  std::map<std::pair<int, std::string>, std::vector<std::uint64_t>> bufs_;
  std::map<std::pair<int, std::string>, std::vector<Claim>> claims_;
};

}  // namespace numabfs::rt
