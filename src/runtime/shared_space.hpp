#pragma once
/// \file shared_space.hpp
/// Node-shared buffers — the simulator's stand-in for the paper's
/// mmap-shared segments (Section III.A).
///
/// All rank threads of a node that ask for the same (node, key) receive the
/// same span. Callers are responsible for the phase discipline the paper
/// relies on: writers own disjoint regions, and reads of another rank's
/// region happen only after a barrier.

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace numabfs::rt {

class SharedSpace {
 public:
  /// Get-or-create the node-shared buffer `key` of exactly `words`
  /// uint64s (zero-initialized on creation). Throws if the key exists with
  /// a different size.
  std::span<std::uint64_t> node_words(int node, const std::string& key,
                                      std::size_t words) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = bufs_.try_emplace({node, key});
    if (inserted) {
      it->second.assign(words, 0);
    } else if (it->second.size() != words) {
      throw std::invalid_argument("SharedSpace: size mismatch for key " + key);
    }
    return {it->second.data(), it->second.size()};
  }

  /// Drop all buffers (between independent runs).
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.clear();
  }

 private:
  std::mutex mu_;
  std::map<std::pair<int, std::string>, std::vector<std::uint64_t>> bufs_;
};

}  // namespace numabfs::rt
