#pragma once
/// \file comm.hpp
/// Communicators and virtual-time barriers.
///
/// A `Comm` is an ordered group of world ranks (like an MPI communicator).
/// Ranks of the simulated cluster are threads of this process, so a barrier
/// both synchronizes the threads *and* aligns their virtual clocks to the
/// group maximum — the difference is the load-imbalance "stall" the paper
/// breaks out in Fig. 11. Comms also carry small publish/read slot arrays
/// used by collectives to exchange pointers and scalar values.

#include <barrier>
#include <cstdint>
#include <memory>
#include <vector>

#include "numasim/vclock.hpp"

namespace numabfs::rt {

/// Reusable group barrier that aligns virtual clocks.
class VBarrier {
 public:
  explicit VBarrier(int n)
      : slots_(static_cast<size_t>(n)), b1_(n), b2_(n) {}

  /// Member `idx` arrives with clock `clk`; blocks until all members arrive;
  /// returns the group's maximum virtual time and advances `clk` to it.
  /// The caller decides which phase the (max - own) stall is charged to.
  double sync(int idx, sim::VClock& clk) {
    slots_[static_cast<size_t>(idx)] = clk.now_ns();
    b1_.arrive_and_wait();
    double mx = slots_[0];
    for (double v : slots_) mx = v > mx ? v : mx;
    clk.advance_to_ns(mx);
    b2_.arrive_and_wait();  // nobody rewrites slots_ until all have read
    return mx;
  }

  /// Plain thread rendezvous without clock alignment (setup phases).
  void wait() {
    b1_.arrive_and_wait();
    b2_.arrive_and_wait();
  }

  /// Permanently remove member `idx` (rank crash in chaos mode): counts as
  /// its arrival for the current phase and lowers the expected count for
  /// all later phases, so the survivors keep synchronizing. Must be called
  /// at a sync boundary (the member is not inside a sync), which holds for
  /// crashes at BFS level boundaries. The member's slot is zeroed so it
  /// stops contributing to the group maximum.
  void retire(int idx) {
    slots_[static_cast<size_t>(idx)] = 0.0;
    b1_.arrive_and_drop();
    b2_.arrive_and_drop();
  }

 private:
  std::vector<double> slots_;
  std::barrier<> b1_, b2_;
};

/// Ordered group of world ranks with a barrier and exchange slots.
class Comm {
 public:
  explicit Comm(std::vector<int> world_ranks);

  int size() const { return static_cast<int>(members_.size()); }
  int world_rank(int idx) const { return members_[static_cast<size_t>(idx)]; }
  const std::vector<int>& members() const { return members_; }
  /// Index of `world_rank` in this comm, or -1 if not a member.
  int index_of(int world_rank) const;

  VBarrier& barrier() { return *barrier_; }
  /// Retire `world_rank` from this comm's barrier (see VBarrier::retire).
  void retire(int world_rank) { barrier_->retire(index_of(world_rank)); }
  /// Rebuild the barrier at full membership. Retirement permanently lowers
  /// a std::barrier's expected count, so after a run with crashes the next
  /// run (which revives every rank) needs a fresh barrier; called by
  /// Cluster::run between runs, never while rank threads are inside.
  void rearm() { barrier_ = std::make_unique<VBarrier>(size()); }

  // --- exchange slots (publish before a barrier, read after) -----------
  void publish_ptr(int idx, const void* p) {
    ptr_slots_[static_cast<size_t>(idx)] = p;
  }
  const void* ptr(int idx) const { return ptr_slots_[static_cast<size_t>(idx)]; }
  void publish_val(int idx, std::uint64_t v) {
    val_slots_[static_cast<size_t>(idx)] = v;
  }
  std::uint64_t val(int idx) const { return val_slots_[static_cast<size_t>(idx)]; }
  /// Payload checksum slot (fault-tolerant collectives verify copies
  /// against it and retransmit on mismatch).
  void publish_chk(int idx, std::uint64_t v) {
    chk_slots_[static_cast<size_t>(idx)] = v;
  }
  std::uint64_t chk(int idx) const { return chk_slots_[static_cast<size_t>(idx)]; }

 private:
  std::vector<int> members_;
  std::unique_ptr<VBarrier> barrier_;
  std::vector<const void*> ptr_slots_;
  std::vector<std::uint64_t> val_slots_;
  std::vector<std::uint64_t> chk_slots_;
};

}  // namespace numabfs::rt
