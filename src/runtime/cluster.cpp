#include "runtime/cluster.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

namespace numabfs::rt {

void Proc::charge(sim::Phase phase, double ns) {
  if (cluster != nullptr) {
    const faults::FaultInjector* inj = cluster->injector();
    if (inj != nullptr) ns *= inj->compute_factor(rank, clock.now_ns());
  }
  const double t0 = clock.now_ns();
  clock.charge_ns(ns);
  prof.add(phase, ns);
  if (tracer != nullptr && ns > 0)
    tracer->span(rank, obs::kCatTime, sim::to_string(phase), t0, t0 + ns);
}

void Cluster::retire_rank(const Proc& p) {
  world_->retire(p.rank);
  node_comms_[static_cast<size_t>(p.node)]->retire(p.rank);
  subgroups_[static_cast<size_t>(p.local)]->retire(p.rank);
  if (p.local == 0) leaders_->retire(p.rank);
  barriers_dirty_.store(true, std::memory_order_release);
}

Cluster::Cluster(sim::Topology topo, sim::CostParams params, int ppn)
    : topo_(std::move(topo)),
      params_(params),
      ppn_(ppn),
      nranks_(topo_.nodes() * ppn),
      sockets_per_rank_(1),
      mem_(params_, topo_),
      link_(params_, topo_) {
  if (ppn < 1) throw std::invalid_argument("Cluster: ppn must be >= 1");
  if (topo_.sockets_per_node() % ppn != 0)
    throw std::invalid_argument("Cluster: ppn must divide sockets per node");
  sockets_per_rank_ = topo_.sockets_per_node() / ppn;

  std::vector<int> all(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) all[static_cast<size_t>(r)] = r;
  world_ = std::make_unique<Comm>(all);

  node_comms_.reserve(static_cast<size_t>(topo_.nodes()));
  for (int n = 0; n < topo_.nodes(); ++n) {
    std::vector<int> m;
    m.reserve(static_cast<size_t>(ppn));
    for (int l = 0; l < ppn; ++l) m.push_back(n * ppn + l);
    node_comms_.push_back(std::make_unique<Comm>(std::move(m)));
  }

  std::vector<int> lead;
  lead.reserve(static_cast<size_t>(topo_.nodes()));
  for (int n = 0; n < topo_.nodes(); ++n) lead.push_back(n * ppn);
  leaders_ = std::make_unique<Comm>(std::move(lead));

  subgroups_.reserve(static_cast<size_t>(ppn));
  for (int l = 0; l < ppn; ++l) {
    std::vector<int> m;
    m.reserve(static_cast<size_t>(topo_.nodes()));
    for (int n = 0; n < topo_.nodes(); ++n) m.push_back(n * ppn + l);
    subgroups_.push_back(std::make_unique<Comm>(std::move(m)));
  }
}

void Cluster::run(const std::function<void(Proc&)>& fn) {
  // Replay chaos from a clean slate: deaths belong to one SPMD run, and a
  // prior run's barrier retirements must not leak into this one — a revived
  // rank that the barriers no longer wait for would let its peers read
  // slots it has not published yet. The dirty flag (not the injector, which
  // may have been detached since) decides whether a rearm is needed.
  if (injector_) injector_->reset_dynamic();
  if (barriers_dirty_.exchange(false, std::memory_order_acq_rel)) {
    world_->rearm();
    for (auto& nc : node_comms_) nc->rearm();
    leaders_->rearm();
    for (auto& sg : subgroups_) sg->rearm();
  }
  std::vector<Proc> procs(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    Proc& p = procs[static_cast<size_t>(r)];
    p.rank = r;
    p.node = node_of(r);
    p.local = local_of(r);
    p.socket = p.local * sockets_per_rank_;
    p.nranks = nranks_;
    p.ppn = ppn_;
    p.threads = sockets_per_rank_ * topo_.cores_per_socket();
    p.cluster = this;
    p.tracer = tracer_.get();
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&fn, &procs, r] {
      try {
        fn(procs[static_cast<size_t>(r)]);
      } catch (const std::exception& e) {
        // A dead rank would deadlock the group at the next barrier; fail
        // loudly and immediately instead.
        std::fprintf(stderr, "numabfs: rank %d threw: %s\n", r, e.what());
        std::abort();
      } catch (...) {
        std::fprintf(stderr, "numabfs: rank %d threw unknown exception\n", r);
        std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  profiles_.clear();
  profiles_.reserve(static_cast<size_t>(nranks_));
  for (const Proc& p : procs) profiles_.push_back(p.prof);
}

}  // namespace numabfs::rt
