#pragma once
/// \file allgather.hpp
/// Data-moving collectives over a `Comm`.
///
/// Data movement is real (chunks are copied between rank buffers through
/// the shared address space) and identical for every algorithm; the
/// algorithms differ in the *modeled time* charged, which is where the
/// paper's optimizations live. The BFS-specific shared-destination
/// exchanges are built in bfs/comm_plan on the same primitives.

#include <cstdint>
#include <span>

#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::rt {

/// Which time model an allgather charges (the data result is identical).
enum class AllgatherAlgo {
  flat_ring,    ///< Open MPI default: ring over every rank
  leader_ring,  ///< Fig. 5a: gather -> leader ring -> broadcast
  leader_rd,    ///< like leader_ring but recursive doubling between leaders
};

const char* to_string(AllgatherAlgo a);

/// Allgather of equal-sized chunks into each member's private `dst`
/// (member order, chunk i at offset i*chunk.size()). Every member must pass
/// chunks of the same size. Returns the modeled per-call breakdown; the
/// total is charged to `phase` on every member, and byte counters are
/// updated from the actually performed copies.
coll_model::CollTimes allgather(Proc& p, Comm& comm,
                                std::span<const std::uint64_t> chunk,
                                std::span<std::uint64_t> dst,
                                AllgatherAlgo algo, sim::Phase phase);

/// Allreduce of one scalar over `comm` (latency-bound tree model).
std::uint64_t allreduce_sum(Proc& p, Comm& comm, std::uint64_t v,
                            sim::Phase phase);
std::uint64_t allreduce_max(Proc& p, Comm& comm, std::uint64_t v,
                            sim::Phase phase);
/// Bitwise-OR allreduce (lane masks of the multi-source BFS engine).
std::uint64_t allreduce_or(Proc& p, Comm& comm, std::uint64_t v,
                           sim::Phase phase);

}  // namespace numabfs::rt
