#include "bfs2d/exchange2d.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "faults/injector.hpp"
#include "graph/codec.hpp"
#include "obs/trace.hpp"
#include "runtime/allgather.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::bfs2d {

namespace cm = rt::coll_model;
namespace codec = graph::codec;

namespace {

/// Stretch a collective's inter-node stage under an active link-degrade
/// window (same convention as the 1-D exchange).
void stretch_inter(rt::Proc& p, const faults::FaultInjector* inj,
                   cm::CollTimes& t) {
  if (inj == nullptr) return;
  const double lf = inj->min_link_factor(p.clock.now_ns());
  t.total_ns += t.inter_ns * (1.0 / lf - 1.0);
  t.inter_ns /= lf;
}

/// Visit the caller's partitions, own rank first (the 1-D adoption order).
template <typename F>
void for_owned_parts(rt::Proc& p, std::span<const int> parts, F&& f) {
  f(p.rank);
  for (int q : parts)
    if (q != p.rank) f(q);
}

}  // namespace

State2d::State2d(const DistGraph2d& dg, std::uint64_t summary_granularity) {
  const Grid2d& g = dg.grid;
  const int np = g.np();
  const std::uint64_t piece = g.piece_bits();
  frontier.reserve(np);
  next.reserve(np);
  visited.reserve(np);
  colband.reserve(np);
  colband_summary.reserve(np);
  row_visited.reserve(np);
  for (int r = 0; r < np; ++r) {
    frontier.emplace_back(piece);
    next.emplace_back(piece);
    visited.emplace_back(piece);
    colband.emplace_back(g.colband_bits());
    colband_summary.emplace_back(g.colband_bits(), summary_granularity);
    row_visited.emplace_back(g.band_bits());
  }
  pred.assign(static_cast<std::size_t>(np),
              std::vector<graph::Vertex>(piece, graph::kNoVertex));
  unvisited_edges.assign(static_cast<std::size_t>(np), 0);
  out_children.assign(static_cast<std::size_t>(np),
                      std::vector<std::vector<graph::Vertex>>(
                          static_cast<std::size_t>(g.cols())));
  out_parents = out_children;
  enc_piece.resize(static_cast<std::size_t>(np));
  enc_ret.resize(static_cast<std::size_t>(np));
  enc_fold.assign(static_cast<std::size_t>(np),
                  std::vector<std::vector<std::uint8_t>>(
                      static_cast<std::size_t>(g.cols())));
}

bfs::ExchangeLevelStats TwoDExchange::build_inputs(rt::Proc& p, int dir,
                                                   std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  const Grid2d& g = dg_.grid;
  const int R = g.rows();
  const int ppn = p.ppn;
  const std::uint64_t piece_words = g.piece_bits() / 64;
  const std::uint64_t piece_bytes = piece_words * 8;
  const bfs::UnitCosts& u = costs_[static_cast<std::size_t>(p.rank)];
  const sim::Phase phase = dir == 1 ? sim::Phase::bu_comm : sim::Phase::td_comm;
  const int K = std::max(1, opt_.exchange_chunks);
  const bool degraded = inj != nullptr && inj->any_dead();
  const cm::HierLevel hier = degraded ? cm::HierLevel::flat : opt_.hier;
  const bool rd_inter = R >= 8;
  const double t0 = p.clock.now_ns();

  // One gate decision covers the transpose and the expand: the same wire
  // pieces ride both legs, and the plan the gate optimizes is their sum.
  const auto plan_total = [&](std::uint64_t b) {
    const double transpose_ns =
        R > 1 ? c.params().nic_msg_latency_ns +
                    static_cast<double>(b) /
                        c.link().nic_flow_bw(ppn, cm::min_nic_factor(c))
              : 0.0;
    const double expand_ns =
        R > 1 ? cm::hier_subgroup_allgather(c, R, 1, ppn, b, hier, rd_inter)
                    .total_ns
              : 0.0;
    return transpose_ns + expand_ns;
  };
  std::vector<bfs::GateChunk> chunks;
  for_owned_parts(p, parts, [&](int q) {
    bfs::GateChunk ch;
    ch.words = st_.frontier[static_cast<std::size_t>(q)].view().words();
    ch.enc = &st_.enc_piece[static_cast<std::size_t>(q)];
    chunks.push_back(ch);
  });
  const bfs::GateResult gate = bfs::gate_bitmap_chunks(
      p, world, opt_.codec, K, chunks, piece_words, g.piece_bits(),
      static_cast<std::uint64_t>(R), u, phase, plan_total);
  const codec::Kind kind = gate.kind;
  legs_.expand_codec = static_cast<int>(kind);

  p.barrier(world, sim::Phase::stall);  // frontier pieces/encodings ready

  // Wire size of one piece (mean measured encoding, raw otherwise) and the
  // bytes a given origin's piece actually occupies.
  const auto origin_bytes = [&](int o) -> std::uint64_t {
    return kind == codec::Kind::raw
               ? piece_bytes
               : st_.enc_piece[static_cast<std::size_t>(o)].size();
  };

  std::uint64_t wire0 = 0, raw0 = 0;
  std::uint64_t intra = 0, inter = 0;
  for_owned_parts(p, parts, [&](int q) {
    const int iq = g.row_of(q);
    const int jq = g.col_of(q);
    // Real assembly: col-band slot k <- piece j*R + k, decoded or copied.
    auto cb = st_.colband[static_cast<std::size_t>(q)].view().words();
    for (int k = 0; k < R; ++k) {
      const int o = g.transpose_src(k, jq);
      auto dst = cb.subspan(static_cast<std::uint64_t>(k) * piece_words,
                            piece_words);
      if (kind == codec::Kind::raw) {
        auto src = st_.frontier[static_cast<std::size_t>(o)].view().words();
        std::memcpy(dst.data(), src.data(), piece_bytes);
      } else {
        const auto& buf = st_.enc_piece[static_cast<std::size_t>(o)];
        bfs::decode_bitmap_checked({buf.data(), buf.size()}, dst, "expand2d",
                                   o);
      }
    }
    // Transpose accounting: partition q is the column member that received
    // exactly one piece, its own slot's origin j*R + i.
    const int to = g.transpose_src(iq, jq);
    double transpose_ns = 0;
    if (to != q) {
      const std::uint64_t b = origin_bytes(to);
      legs_.transpose_wire += b;
      legs_.transpose_raw += piece_bytes;
      wire0 += b;
      raw0 += piece_bytes;
      p.prof.counters().bytes_raw_equiv += piece_bytes;
      if (c.node_of(to) == c.node_of(q)) {
        intra += b;
        transpose_ns = c.params().cico_factor * static_cast<double>(b) /
                       c.link().shm_flow_bw(1);
      } else {
        inter += b;
        transpose_ns =
            c.link().nic_transfer_ns(b, ppn, c.node_of(to), c.node_of(q));
        if (inj != nullptr)
          transpose_ns = c.params().nic_msg_latency_ns +
                         (transpose_ns - c.params().nic_msg_latency_ns) /
                             inj->min_link_factor(p.clock.now_ns());
      }
    }
    // Expand accounting: the other R-1 column members' contributions.
    for (int k = 0; k < R; ++k) {
      const int m = g.rank_at(k, jq);
      if (m == q) continue;
      const std::uint64_t b = origin_bytes(g.transpose_src(k, jq));
      legs_.expand_wire += b;
      legs_.expand_raw += piece_bytes;
      wire0 += b;
      raw0 += piece_bytes;
      p.prof.counters().bytes_raw_equiv += piece_bytes;
      (c.node_of(m) == c.node_of(q) ? intra : inter) += b;
    }
    // Modeled duration of this partition's column collective.
    double leg_ns = transpose_ns;
    if (R > 1) {
      cm::CollTimes et = cm::hier_subgroup_allgather(
          c, R, 1, ppn, gate.wire_chunk_bytes, hier, rd_inter);
      stretch_inter(p, inj, et);
      double tot = et.total_ns;
      if (kind != codec::Kind::raw) {
        const double dec =
            u.stream_pass_ns(static_cast<std::uint64_t>(R) * piece_words);
        const double seq = tot + dec;
        tot = cm::pipelined2_ns(tot, dec, K);
        p.prof.add_overlap_saved(seq - tot);
      }
      leg_ns += tot;
      last_expand_ns_ = tot;
    }
    if (dir == 1) {
      // Bottom-up scans probe the col-band through its Fig. 8 summary;
      // rebuild it locally from the just-assembled band (no extra wire —
      // unlike the 1-D, which allgathers the summary as a second chunk).
      st_.colband_summary[static_cast<std::size_t>(q)].view().rebuild_range(
          st_.colband[static_cast<std::size_t>(q)].view(), 0,
          g.colband_bits());
      leg_ns += u.stream_pass_ns(g.colband_bits() / 64);
    }
    p.charge(phase, leg_ns);
  });
  p.prof.counters().bytes_intra_node += intra;
  p.prof.counters().bytes_inter_node += inter;

  p.barrier(world, phase);  // the column collectives complete together
  p.trace_span(obs::kCatBfs, "2d.expand", t0, p.clock.now_ns(),
               obs::kv("kind", codec::to_string(kind)) + "," +
                   obs::kv("wire_bytes", wire0));

  bfs::ExchangeLevelStats s;
  s.codec = kind;
  s.wire_bytes = wire0;
  s.raw_bytes = raw0;
  s.bitmap = true;
  return s;
}

FoldStats TwoDExchange::fold(rt::Proc& p, int dir, std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  const Grid2d& g = dg_.grid;
  const int C = g.cols();
  const int ppn = p.ppn;
  const bfs::UnitCosts& u = costs_[static_cast<std::size_t>(p.rank)];
  const sim::Phase phase = dir == 1 ? sim::Phase::bu_comm : sim::Phase::td_comm;
  const sim::Phase comp = dir == 1 ? sim::Phase::bu_comp : sim::Phase::td_comp;
  const int K = std::max(1, opt_.exchange_chunks);
  const double t0 = p.clock.now_ns();

  // Gate on measured list encodings, like the 1-D sparse exchange: trial
  // encode, allreduce encoded vs raw totals, publish coded only on a win.
  bool coded = opt_.codec != bfs::CodecMode::off && g.np() > 1;
  if (coded) {
    std::uint64_t my_enc = 0, my_raw = 0;
    for_owned_parts(p, parts, [&](int q) {
      for (int k = 0; k < C; ++k) {
        const auto& ch = st_.out_children[static_cast<std::size_t>(q)]
                                         [static_cast<std::size_t>(k)];
        const auto& pa = st_.out_parents[static_cast<std::size_t>(q)]
                                        [static_cast<std::size_t>(k)];
        auto& buf = st_.enc_fold[static_cast<std::size_t>(q)]
                                [static_cast<std::size_t>(k)];
        buf.clear();
        if (ch.empty()) continue;  // absence is free either way
        codec::encode_list({ch.data(), ch.size()}, buf);
        codec::encode_list({pa.data(), pa.size()}, buf);
        my_enc += buf.size();
        my_raw += (ch.size() + pa.size()) * sizeof(graph::Vertex);
        p.charge(phase, u.stream_pass_ns(ch.size() * sizeof(graph::Vertex) /
                                             4 +
                                         (buf.size() + 7) / 8));
      }
    });
    const std::uint64_t enc_sum =
        rt::allreduce_sum(p, world, my_enc, sim::Phase::stall);
    const std::uint64_t raw_sum =
        rt::allreduce_sum(p, world, my_raw, sim::Phase::stall);
    coded = enc_sum < raw_sum;  // encode cost is sunk; bytes decide
  }
  p.barrier(world, sim::Phase::stall);  // outboxes and encodings ready

  FoldStats fs;
  fs.coded = coded;
  std::uint64_t intra = 0, inter = 0;
  std::uint64_t claims_seen = 0, accepts = 0;
  for (int q : parts) {
    const int iq = g.row_of(q);
    const int jq = g.col_of(q);
    const std::uint64_t pb = g.piece_begin(q);
    auto vis = st_.visited[static_cast<std::size_t>(q)].view();
    auto nxt = st_.next[static_cast<std::size_t>(q)].view();
    auto& pr = st_.pred[static_cast<std::size_t>(q)];
    const auto& pdeg = dg_.piece_deg[static_cast<std::size_t>(q)];
    // Deterministic dedup: claims arrive in ascending column order, so the
    // surviving parent of a multiply-claimed child is reproducible.
    for (int k = 0; k < C; ++k) {
      const int peer = g.rank_at(iq, k);
      const auto& raw_ch = st_.out_children[static_cast<std::size_t>(peer)]
                                           [static_cast<std::size_t>(jq)];
      const auto& raw_pa = st_.out_parents[static_cast<std::size_t>(peer)]
                                          [static_cast<std::size_t>(jq)];
      const graph::Vertex* ch = raw_ch.data();
      const graph::Vertex* pa = raw_pa.data();
      std::size_t cnt = raw_ch.size();
      std::uint64_t bytes = cnt * 2 * sizeof(graph::Vertex);
      if (coded && !raw_ch.empty()) {
        const auto& buf = st_.enc_fold[static_cast<std::size_t>(peer)]
                                      [static_cast<std::size_t>(jq)];
        dec_children_.clear();
        dec_parents_.clear();
        const std::size_t used1 =
            codec::decode_list({buf.data(), buf.size()}, dec_children_);
        const std::size_t used2 = codec::decode_list(
            {buf.data() + used1, buf.size() - used1}, dec_parents_);
        // Strict framing + pairing: both lists must account for every
        // published byte and agree on the claim count.
        if (used1 + used2 != buf.size() ||
            dec_children_.size() != dec_parents_.size())
          throw std::invalid_argument(
              "fold2d: claim encoding from rank " + std::to_string(peer) +
              " decoded " + std::to_string(used1 + used2) + " of " +
              std::to_string(buf.size()) + " published bytes");
        ch = dec_children_.data();
        pa = dec_parents_.data();
        cnt = dec_children_.size();
        bytes = buf.size();
      }
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::uint64_t lv = ch[i] - pb;
        ++claims_seen;
        if (vis.get(lv)) continue;
        vis.set(lv);
        pr[lv] = pa[i];
        nxt.set(lv);
        ++accepts;
        ++fs.discovered;
        fs.discovered_edges += pdeg[lv];
        st_.unvisited_edges[static_cast<std::size_t>(q)] -= pdeg[lv];
      }
      if (peer == q) continue;  // own claims never ride the wire
      const std::uint64_t raw_b = cnt * 2 * sizeof(graph::Vertex);
      fs.wire_bytes += bytes;
      fs.raw_bytes += raw_b;
      legs_.fold_wire += bytes;
      legs_.fold_raw += raw_b;
      (c.node_of(peer) == c.node_of(q) ? intra : inter) += bytes;
    }
  }
  p.prof.counters().bytes_intra_node += intra;
  p.prof.counters().bytes_inter_node += inter;
  p.prof.counters().bytes_raw_equiv += fs.raw_bytes;
  p.prof.counters().queue_writes += accepts;
  // Owner-side merge: one visited probe per claim, pred + next per accept.
  p.charge(comp, (static_cast<double>(claims_seen) * u.visited_probe_ns +
                  static_cast<double>(accepts) * 2.0 * u.write_ns) /
                     u.omp_div);
  const double dec_ns =
      coded ? u.stream_pass_ns((fs.wire_bytes + fs.raw_bytes) / 8) : 0.0;

  // Modeled wire time: the row alltoallv is bounded by the node's NIC, so
  // the charge takes the whole node's inbound claim volume (every rank of a
  // node belongs to the same row when ppn | C). Adoption note: volumes are
  // attributed to partition homes; cross-row adoption only occurs when a
  // whole node died, and then the degraded (flat) model is active anyway.
  std::uint64_t node_intra = 0, node_inter = 0;
  for (int m = p.node * ppn; m < (p.node + 1) * ppn; ++m) {
    const int im = g.row_of(m);
    const int jm = g.col_of(m);
    for (int k = 0; k < C; ++k) {
      const int peer = g.rank_at(im, k);
      if (peer == m) continue;
      const auto& raw_ch = st_.out_children[static_cast<std::size_t>(peer)]
                                           [static_cast<std::size_t>(jm)];
      if (raw_ch.empty()) continue;
      const std::uint64_t bytes =
          coded ? st_.enc_fold[static_cast<std::size_t>(peer)]
                              [static_cast<std::size_t>(jm)]
                      .size()
                : raw_ch.size() * 2 * sizeof(graph::Vertex);
      (c.node_of(peer) == p.node ? node_intra : node_inter) += bytes;
    }
  }
  const bool degraded = inj != nullptr && inj->any_dead();
  const cm::HierLevel hier = degraded ? cm::HierLevel::flat : opt_.hier;
  double t = cm::hier_alltoallv_ns(c, std::max(1, C / ppn), std::min(ppn, C),
                                   node_intra, node_inter, hier);
  if (inj != nullptr) t /= inj->min_link_factor(p.clock.now_ns());
  if (coded && dec_ns > 0) {
    // The owner decodes claim lists while later chunks are in flight
    // (K-chunk wire/decode pipelining, as on the bitmap legs).
    const double seq = t + dec_ns;
    t = cm::pipelined2_ns(t, dec_ns, K);
    p.prof.add_overlap_saved(seq - t);
  }
  p.charge(phase, t);
  last_fold_ns_ = t;
  p.barrier(world, phase);

  // Wipe the drained outboxes (every row peer has read them by now).
  for (int q : parts) {
    for (int k = 0; k < C; ++k) {
      st_.out_children[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)]
          .clear();
      st_.out_parents[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)]
          .clear();
      st_.enc_fold[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)]
          .clear();
    }
  }
  legs_.fold_coded = coded;
  p.barrier(world, sim::Phase::stall);
  p.trace_span(obs::kCatBfs, "2d.fold", t0, p.clock.now_ns(),
               obs::kv("coded", coded ? 1 : 0) + "," +
                   obs::kv("wire_bytes", fs.wire_bytes) + "," +
                   obs::kv("discovered", fs.discovered));
  return fs;
}

bfs::ExchangeLevelStats TwoDExchange::exchange(rt::Proc& p, int /*cur_dir*/,
                                               int next_dir,
                                               std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  const Grid2d& g = dg_.grid;
  const int C = g.cols();
  const int ppn = p.ppn;
  const std::uint64_t piece_words = g.piece_bits() / 64;
  const std::uint64_t piece_bytes = piece_words * 8;
  const bfs::UnitCosts& u = costs_[static_cast<std::size_t>(p.rank)];
  const sim::Phase phase =
      next_dir == 1 ? sim::Phase::bu_comm : sim::Phase::td_comm;
  const int K = std::max(1, opt_.exchange_chunks);
  const bool degraded = inj != nullptr && inj->any_dead();
  const cm::HierLevel hier = degraded ? cm::HierLevel::flat : opt_.hier;
  const bool rd_inter = C / std::max(1, ppn) >= 8;

  // Advance: the accepted claims become the next frontier.
  for (int q : parts) {
    std::swap(st_.frontier[static_cast<std::size_t>(q)],
              st_.next[static_cast<std::size_t>(q)]);
    st_.next[static_cast<std::size_t>(q)].view().reset();
    p.charge(phase, u.stream_pass_ns(2 * piece_words));
  }
  p.barrier(world, sim::Phase::stall);  // frontiers advanced everywhere

  std::uint64_t ret_wire = 0, ret_raw = 0;
  if (next_dir == 1) {
    std::uint64_t intra = 0, inter = 0;
    if (!rows_fresh_) {
      // td -> bu switch: the replicas missed the top-down levels' claims —
      // rebuild them outright from the row's visited pieces (dense maps;
      // a codec would only add headers). Charged to switch_conv, like the
      // 1-D's discovered-list materialization.
      for (int q : parts) {
        const int iq = g.row_of(q);
        auto rv = st_.row_visited[static_cast<std::size_t>(q)].view().words();
        for (int k = 0; k < C; ++k) {
          const int m = g.rank_at(iq, k);
          auto src = st_.visited[static_cast<std::size_t>(m)].view().words();
          std::memcpy(rv.data() + static_cast<std::uint64_t>(k) * piece_words,
                      src.data(), piece_bytes);
          if (m == q) continue;
          ret_wire += piece_bytes;
          ret_raw += piece_bytes;
          (c.node_of(m) == c.node_of(q) ? intra : inter) += piece_bytes;
          p.prof.counters().bytes_raw_equiv += piece_bytes;
        }
        cm::CollTimes et = cm::hier_subgroup_allgather(
            c, std::max(1, C / ppn), std::min(ppn, C), 1, piece_bytes, hier,
            rd_inter);
        stretch_inter(p, inj, et);
        p.charge(sim::Phase::switch_conv,
                 et.total_ns + u.stream_pass_ns(g.band_bits() / 64));
      }
    } else {
      // Claim-return: a row allgather of the (sparse) new frontier pieces,
      // OR-ed into the replicas — gated like the expand, but against the
      // row collective's plan.
      const auto plan_total = [&](std::uint64_t b) {
        return C > 1 ? cm::hier_subgroup_allgather(c, std::max(1, C / ppn),
                                                   std::min(ppn, C), 1, b,
                                                   hier, rd_inter)
                           .total_ns
                     : 0.0;
      };
      std::vector<bfs::GateChunk> chunks;
      for_owned_parts(p, parts, [&](int q) {
        bfs::GateChunk ch;
        ch.words = st_.frontier[static_cast<std::size_t>(q)].view().words();
        ch.enc = &st_.enc_ret[static_cast<std::size_t>(q)];
        chunks.push_back(ch);
      });
      const bfs::GateResult gate = bfs::gate_bitmap_chunks(
          p, world, opt_.codec, K, chunks, piece_words, g.piece_bits(),
          static_cast<std::uint64_t>(C), u, phase, plan_total);
      p.barrier(world, sim::Phase::stall);  // return encodings ready

      for (int q : parts) {
        const int iq = g.row_of(q);
        auto rv = st_.row_visited[static_cast<std::size_t>(q)].view().words();
        for (int k = 0; k < C; ++k) {
          const int m = g.rank_at(iq, k);
          auto dst = rv.subspan(static_cast<std::uint64_t>(k) * piece_words,
                                piece_words);
          std::uint64_t bytes = piece_bytes;
          if (gate.kind == codec::Kind::raw) {
            auto src =
                st_.frontier[static_cast<std::size_t>(m)].view().words();
            for (std::uint64_t w = 0; w < piece_words; ++w)
              dst[w] |= src[w];
          } else {
            const auto& buf = st_.enc_ret[static_cast<std::size_t>(m)];
            dec_piece_.assign(piece_words, 0);
            bfs::decode_bitmap_checked({buf.data(), buf.size()}, dec_piece_,
                                       "claim_return2d", m);
            for (std::uint64_t w = 0; w < piece_words; ++w)
              dst[w] |= dec_piece_[w];
            bytes = buf.size();
          }
          if (m == q) continue;
          ret_wire += bytes;
          ret_raw += piece_bytes;
          (c.node_of(m) == c.node_of(q) ? intra : inter) += bytes;
          p.prof.counters().bytes_raw_equiv += piece_bytes;
        }
        double leg_ns = u.stream_pass_ns(g.band_bits() / 64);  // the OR pass
        if (C > 1) {
          cm::CollTimes et = cm::hier_subgroup_allgather(
              c, std::max(1, C / ppn), std::min(ppn, C), 1,
              gate.wire_chunk_bytes, hier, rd_inter);
          stretch_inter(p, inj, et);
          double tot = et.total_ns;
          if (gate.kind != codec::Kind::raw) {
            const double dec = u.stream_pass_ns(
                static_cast<std::uint64_t>(C) * piece_words);
            const double seq = tot + dec;
            tot = cm::pipelined2_ns(tot, dec, K);
            p.prof.add_overlap_saved(seq - tot);
          }
          leg_ns += tot;
        }
        p.charge(phase, leg_ns);
      }
    }
    p.prof.counters().bytes_intra_node += intra;
    p.prof.counters().bytes_inter_node += inter;
    legs_.ret_wire += ret_wire;
    legs_.ret_raw += ret_raw;
    rows_fresh_ = true;
    p.barrier(world, phase);
  } else {
    // Top-down levels fold without returning claims; the replicas go stale
    // until the next bottom-up switch rebuilds them.
    rows_fresh_ = false;
  }

  bfs::ExchangeLevelStats s = build_inputs(p, next_dir, parts);
  s.wire_bytes += ret_wire;
  s.raw_bytes += ret_raw;
  return s;
}

}  // namespace numabfs::bfs2d
