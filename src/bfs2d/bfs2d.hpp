#pragma once
/// \file bfs2d.hpp
/// 2-D partitioned top-down BFS (Buluc & Madduri, SC'11) — the paper's
/// related-work pointer implemented: "our implementation could be applied
/// to the 2-D partition algorithm to further reduce its communication
/// overhead. Actually, they are orthogonal."
///
/// Processors form a square R x R grid (rank = i*R + j). The adjacency
/// matrix is blocked: rank (i,j) stores the edges from column-band j into
/// row-band i. One level runs in four steps:
///   1. *transpose*: each rank sends its owned frontier piece (slice j of
///      row-band i) to rank (j,i) — with a square grid, row-band i and
///      col-band i coincide, so column i then holds its col-band pieces;
///   2. *expand*: allgather along each processor column assembles the full
///      col-band frontier bitmap on every member;
///   3. *local scan*: each rank walks its groups (sources in its col-band)
///      and emits (child, parent) candidates for its row-band;
///   4. *fold*: candidates are routed along the processor row to the
///      child's owner, which deduplicates against `visited` and extends
///      the tree.
/// With C = ppn and R = nodes, rows are intra-node and columns are
/// inter-node — the layout the paper's NUMA optimizations would compose
/// with. Communication volume per level is O(n/sqrt(np)) per rank instead
/// of the 1-D allgather's O(n): `bench_2d_bfs` quantifies the crossover.
///
/// Only the *traditional* (top-down) algorithm is implemented, matching
/// the baseline Buluc & Madduri describe; direction-optimization on 2-D is
/// out of scope here as it was for the paper.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs2d {

/// Square processor grid over the cluster's ranks (requires nranks to be a
/// perfect square) and the conformal vertex distribution.
class Grid2d {
 public:
  /// `np` must be a perfect square; vertices are padded so every piece is
  /// word-aligned.
  Grid2d(std::uint64_t n, int np);

  int r() const { return r_; }             ///< grid side (R = C)
  int np() const { return r_ * r_; }
  std::uint64_t n() const { return n_; }
  std::uint64_t padded() const { return padded_; }
  std::uint64_t band_bits() const { return padded_ / r_; }   ///< row/col band
  std::uint64_t piece_bits() const { return band_bits() / r_; }

  int row_of(int rank) const { return rank / r_; }
  int col_of(int rank) const { return rank % r_; }
  int rank_at(int i, int j) const { return i * r_ + j; }

  /// Owner of vertex v: row i = band, slice j within the band.
  int owner(std::uint64_t v) const {
    const int i = static_cast<int>(v / band_bits());
    const int j = static_cast<int>(v % band_bits() / piece_bits());
    return rank_at(i, j);
  }
  std::uint64_t piece_begin(int rank) const {
    return static_cast<std::uint64_t>(row_of(rank)) * band_bits() +
           static_cast<std::uint64_t>(col_of(rank)) * piece_bits();
  }

 private:
  std::uint64_t n_;
  int r_;
  std::uint64_t padded_;
};

/// Rank (i,j)'s matrix block: edges u (in col-band j) -> v (in row-band i),
/// grouped by source u.
struct Block2d {
  std::vector<graph::Vertex> keys;          ///< distinct sources, ascending
  std::vector<std::uint64_t> offsets;       ///< size keys+1
  std::vector<graph::Vertex> targets;       ///< children in row-band i
  std::uint64_t edges() const { return targets.size(); }
};

/// The distributed 2-D graph: one block per rank.
struct DistGraph2d {
  Grid2d grid;
  std::uint64_t directed_edges = 0;
  std::vector<Block2d> blocks;

  static DistGraph2d build(const graph::Csr& g, const Grid2d& grid);
};

struct Bfs2dOptions {
  /// Apply the paper's sharing idea to the 2-D *fold*: with C = ppn the row
  /// exchange is intra-node, so candidate buffers can live in node-shared
  /// segments and peers read them directly instead of through the MPI
  /// shared-memory channel's copy-in/copy-out bounce — the composition the
  /// paper's related-work section calls orthogonal.
  bool shared_fold = false;
};

struct Bfs2dResult {
  double time_ns = 0;
  std::uint64_t visited = 0;
  int levels = 0;
  sim::PhaseProfile profile_avg;
  /// mean time of one expand (column allgather) / fold (row exchange)
  double expand_ns_per_level = 0;
  double fold_ns_per_level = 0;

  double teps(std::uint64_t traversed_edges) const {
    return time_ns > 0
               ? static_cast<double>(traversed_edges) / (time_ns * 1e-9)
               : 0.0;
  }
};

/// Run one 2-D top-down BFS. `c` must have nranks == grid.np(). Returns the
/// result and fills `parent_out` (size grid.n()) for validation.
Bfs2dResult run_bfs_2d(rt::Cluster& c, const DistGraph2d& dg,
                       graph::Vertex root,
                       std::vector<graph::Vertex>* parent_out = nullptr,
                       const Bfs2dOptions& opt = {});

}  // namespace numabfs::bfs2d
