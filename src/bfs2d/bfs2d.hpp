#pragma once
/// \file bfs2d.hpp
/// 2-D partitioned BFS (Buluc & Madduri, arXiv:1104.4518) as a first-class
/// peer of the 1-D hybrid: direction-optimizing level loop, the PR-4 codec
/// gate and K-chunk pipelining on every exchange leg, hierarchical
/// row/column collectives (arXiv:1705.04590), fault tolerance via the
/// checkpoint/adoption path, and obs spans through every phase.
///
/// Processors form an R x C grid (rank = i*C + j). Vertices are split into
/// R*C equal pieces; piece g is owned by rank g (row-major), so row-band i
/// = pieces [i*C, (i+1)*C) and col-band j = pieces [j*R, (j+1)*R). The
/// adjacency matrix is blocked: rank (i,j) stores the edges from col-band j
/// into row-band i. One level runs as:
///   1. *transpose*: the owner of piece g sends it to the column member
///      that assembles slot g%R of col-band g/R;
///   2. *expand*: allgather along each processor column assembles the full
///      col-band frontier bitmap on every member (O(n/C) per rank — the
///      volume law that beats the 1-D allgather's O(n) at scale);
///   3. *local scan*: top-down walks the frontier's groups; bottom-up walks
///      the unvisited row-band targets probing the col-band bitmap through
///      its Fig. 8 summary;
///   4. *fold*: (child, parent) claims are routed along the processor row
///      to the child's owner, which deduplicates against `visited`;
///   5. *claim-return* (bottom-up levels): a row allgather of the new
///      frontier pieces keeps every member's row-band visited replica
///      current, so the next bottom-up scan can skip settled targets.
/// With ppn | C, a row spans C/ppn whole nodes and a column touches one
/// rank per node — rows intra-node, columns inter-node, the layout the
/// paper's NUMA optimizations compose with.

#include <cstdint>
#include <vector>

#include "bfs/config.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::bfs2d {

/// Rectangular R x C processor grid over the cluster's ranks and the
/// conformal vertex distribution (piece g -> rank g, row-major).
class Grid2d {
 public:
  /// Explicit shape; vertices are padded so every piece is word-aligned.
  Grid2d(std::uint64_t n, int rows, int cols);

  /// Choose the most-square R x C factorization of `np` whose column count
  /// is a multiple of `ppn` (so rows span whole nodes and columns touch one
  /// rank per node). Throws std::invalid_argument naming the nearest valid
  /// rank counts when `np` admits no such grid.
  static Grid2d make(std::uint64_t n, int np, int ppn = 1);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int np() const { return rows_ * cols_; }
  std::uint64_t n() const { return n_; }
  std::uint64_t padded() const { return padded_; }
  std::uint64_t piece_bits() const {
    return padded_ / static_cast<std::uint64_t>(np());
  }
  std::uint64_t band_bits() const { return piece_bits() * cols_; }  ///< row
  std::uint64_t colband_bits() const { return piece_bits() * rows_; }

  int row_of(int rank) const { return rank / cols_; }
  int col_of(int rank) const { return rank % cols_; }
  int rank_at(int i, int j) const { return i * cols_ + j; }

  /// Owner of vertex v: piece index == rank (row-major distribution).
  int owner(std::uint64_t v) const {
    return static_cast<int>(v / piece_bits());
  }
  std::uint64_t piece_begin(int rank) const {
    return static_cast<std::uint64_t>(rank) * piece_bits();
  }
  std::uint64_t band_begin(int i) const {
    return static_cast<std::uint64_t>(i) * band_bits();
  }
  std::uint64_t colband_begin(int j) const {
    return static_cast<std::uint64_t>(j) * colband_bits();
  }

  /// The column member that assembles piece `g` (= rank g) for the expand:
  /// slot g % R of col-band g / R.
  int transpose_dest(int g) const {
    return (g % rows_) * cols_ + g / rows_;
  }
  /// The piece assembled at slot `k` of column `j`'s col-band.
  int transpose_src(int k, int j) const { return j * rows_ + k; }

 private:
  std::uint64_t n_;
  int rows_;
  int cols_;
  std::uint64_t padded_;
};

/// Rank (i,j)'s matrix block: edges u (in col-band j) -> v (in row-band i),
/// stored in both orientations — by source for top-down scans, by target
/// for bottom-up probes.
struct Block2d {
  std::vector<graph::Vertex> keys;      ///< distinct sources, ascending
  std::vector<std::uint64_t> offsets;   ///< size keys+1
  std::vector<graph::Vertex> targets;   ///< children in row-band i

  std::vector<graph::Vertex> bu_keys;     ///< distinct targets, ascending
  std::vector<std::uint64_t> bu_offsets;  ///< size bu_keys+1
  std::vector<graph::Vertex> bu_sources;  ///< parents in col-band j

  std::uint64_t edges() const { return targets.size(); }
};

/// The distributed 2-D graph: one block per rank, plus each piece's global
/// degrees (for the direction heuristic and traversed-edge accounting).
struct DistGraph2d {
  Grid2d grid;
  std::uint64_t directed_edges = 0;
  std::vector<Block2d> blocks;
  /// piece_deg[rank][off] = degree of vertex piece_begin(rank) + off.
  std::vector<std::vector<std::uint64_t>> piece_deg;
  /// Sum of the piece's degrees (the partition's share of Eq. (1)'s m).
  std::vector<std::uint64_t> owned_edges;

  static DistGraph2d build(const graph::Csr& g, const Grid2d& grid);
};

struct Bfs2dOptions {
  bfs::Direction direction = bfs::Direction::hybrid;
  double alpha = 14.0;  ///< td -> bu when mf > rem / alpha (Beamer)
  double beta = 24.0;   ///< bu -> td when nf < n / beta
  /// Exchange codec (DESIGN.md §10) applied to the transpose/expand pieces,
  /// the fold's claim lists, and the claim-return pieces.
  bfs::CodecMode codec = bfs::CodecMode::off;
  int exchange_chunks = 1;  ///< K-chunk wire/decode pipelining
  /// Hierarchy level of the column allgather and row alltoallv.
  rt::coll_model::HierLevel hier = rt::coll_model::HierLevel::flat;
  std::uint64_t summary_granularity = 64;  ///< col-band summary (Fig. 8)

  /// Validate invariants (same contradictory-combo rules as bfs::Config);
  /// returns an actionable error message or empty. run_bfs_2d calls this
  /// and throws std::invalid_argument on a non-empty result.
  std::string validate() const;
};

/// Per-level record of what the 2-D loop measured (summed over ranks),
/// mirroring the 1-D LevelTrace for the volume-law property tests.
struct Level2dTrace {
  int level = 0;
  int direction = 0;  ///< 0 = top-down, 1 = bottom-up
  std::uint64_t frontier_vertices = 0;
  std::uint64_t discovered = 0;
  int expand_codec = 0;   ///< graph::codec::Kind of the transpose/expand gate
  bool fold_coded = false;
  std::uint64_t transpose_wire_bytes = 0, transpose_raw_bytes = 0;
  std::uint64_t expand_wire_bytes = 0, expand_raw_bytes = 0;
  std::uint64_t fold_wire_bytes = 0, fold_raw_bytes = 0;
  std::uint64_t return_wire_bytes = 0, return_raw_bytes = 0;

  std::uint64_t wire_bytes() const {
    return transpose_wire_bytes + expand_wire_bytes + fold_wire_bytes +
           return_wire_bytes;
  }
  std::uint64_t wire_raw_bytes() const {
    return transpose_raw_bytes + expand_raw_bytes + fold_raw_bytes +
           return_raw_bytes;
  }
};

struct Bfs2dResult {
  double time_ns = 0;
  std::uint64_t visited = 0;
  int levels = 0;
  int td_levels = 0;
  int bu_levels = 0;
  std::vector<int> directions;
  std::uint64_t traversed_directed_edges = 0;
  int recoveries = 0;  ///< checkpoint rollbacks performed
  int ranks_lost = 0;  ///< ranks dead at the end
  sim::PhaseProfile profile_avg;  ///< times averaged, counters summed
  sim::PhaseProfile profile_max;
  std::vector<Level2dTrace> trace;
  /// mean time of one expand (column allgather) / fold (row exchange)
  double expand_ns_per_level = 0;
  double fold_ns_per_level = 0;

  /// Graph500 TEPS: undirected edges traversed over the modeled duration.
  double teps() const {
    return time_ns > 0 ? static_cast<double>(traversed_directed_edges) / 2.0 /
                             (time_ns * 1e-9)
                       : 0.0;
  }
};

/// Run one 2-D BFS. `c` must have nranks == grid.np() and its ppn must
/// divide the grid's column count. Honors the cluster's fault injector
/// (level-boundary checkpoints, crash adoption) and tracer. Returns the
/// result and fills `parent_out` (size grid.n()) for validation.
Bfs2dResult run_bfs_2d(rt::Cluster& c, const DistGraph2d& dg,
                       graph::Vertex root,
                       std::vector<graph::Vertex>* parent_out = nullptr,
                       const Bfs2dOptions& opt = {});

}  // namespace numabfs::bfs2d
