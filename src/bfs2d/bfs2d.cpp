#include "bfs2d/bfs2d.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bfs2d/exchange2d.hpp"
#include "faults/errors.hpp"
#include "faults/injector.hpp"
#include "graph/bitmap.hpp"
#include "obs/trace.hpp"
#include "runtime/allgather.hpp"

namespace numabfs::bfs2d {

Grid2d::Grid2d(std::uint64_t n, int rows, int cols)
    : n_(n), rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("Grid2d: rows and cols must be positive");
  // Pad so every piece is whole 64-bit words (codec chunks, memcpy slots).
  const std::uint64_t quantum =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) * 64;
  padded_ = (std::max<std::uint64_t>(n, 1) + quantum - 1) / quantum * quantum;
}

Grid2d Grid2d::make(std::uint64_t n, int np, int ppn) {
  if (np < 1 || ppn < 1)
    throw std::invalid_argument("Grid2d::make: np and ppn must be positive");
  int best_c = -1;
  for (int cand = ppn; cand <= np; cand += ppn) {
    if (np % cand != 0) continue;
    if (best_c < 0) {
      best_c = cand;
      continue;
    }
    const int d_best = std::abs(np / best_c - best_c);
    const int d_cand = std::abs(np / cand - cand);
    // Most-square grid; ties go to the wider one (more columns keeps the
    // row collectives node-local at higher ppn).
    if (d_cand < d_best || (d_cand == d_best && cand > best_c)) best_c = cand;
  }
  if (best_c < 0) {
    // np is not a multiple of ppn, so no divisor of np can be either.
    const int lo = np / ppn * ppn;
    const int hi = lo + ppn;
    std::string msg = "Grid2d::make: np=" + std::to_string(np) + " with ppn=" +
                      std::to_string(ppn) +
                      " admits no R x C grid whose column count ppn divides; "
                      "nearest valid np: ";
    msg += lo >= ppn ? std::to_string(lo) + " or " + std::to_string(hi)
                     : std::to_string(hi);
    throw std::invalid_argument(msg);
  }
  return Grid2d(n, np / best_c, best_c);
}

DistGraph2d DistGraph2d::build(const graph::Csr& g, const Grid2d& grid) {
  DistGraph2d dg{grid, g.num_directed_edges(), {}, {}, {}};
  const int np = grid.np();
  const std::uint64_t piece = grid.piece_bits();
  const std::uint64_t band = grid.band_bits();
  const std::uint64_t cband = grid.colband_bits();
  const std::uint64_t n = std::min<std::uint64_t>(g.num_vertices(), grid.n());

  dg.piece_deg.assign(static_cast<std::size_t>(np),
                      std::vector<std::uint64_t>(piece, 0));
  dg.owned_edges.assign(static_cast<std::size_t>(np), 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    const int r = grid.owner(v);
    const std::uint64_t d = g.degree(static_cast<graph::Vertex>(v));
    dg.piece_deg[static_cast<std::size_t>(r)][v - grid.piece_begin(r)] = d;
    dg.owned_edges[static_cast<std::size_t>(r)] += d;
  }

  // Single O(E) pass: bucket each directed entry (u -> v) into the block of
  // (row of v, column of u). The CSR is symmetric, so both scan orientations
  // below see every undirected edge.
  std::vector<std::vector<graph::Edge>> buckets(static_cast<std::size_t>(np));
  for (std::uint64_t v = 0; v < n; ++v) {
    const int i = static_cast<int>(v / band);
    for (graph::Vertex u : g.neighbors(static_cast<graph::Vertex>(v))) {
      const int j = static_cast<int>(u / cband);
      buckets[static_cast<std::size_t>(grid.rank_at(i, j))].push_back(
          {u, static_cast<graph::Vertex>(v)});
    }
  }

  dg.blocks.resize(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    auto& pairs = buckets[static_cast<std::size_t>(r)];
    Block2d& blk = dg.blocks[static_cast<std::size_t>(r)];
    // Top-down orientation: grouped by source u.
    std::sort(pairs.begin(), pairs.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    blk.targets.reserve(pairs.size());
    for (const auto& e : pairs) {
      if (blk.keys.empty() || blk.keys.back() != e.u) {
        blk.keys.push_back(e.u);
        blk.offsets.push_back(blk.targets.size());
      }
      blk.targets.push_back(e.v);
    }
    blk.offsets.push_back(blk.targets.size());
    // Bottom-up orientation: grouped by target v.
    std::sort(pairs.begin(), pairs.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                return a.v != b.v ? a.v < b.v : a.u < b.u;
              });
    blk.bu_sources.reserve(pairs.size());
    for (const auto& e : pairs) {
      if (blk.bu_keys.empty() || blk.bu_keys.back() != e.v) {
        blk.bu_keys.push_back(e.v);
        blk.bu_offsets.push_back(blk.bu_sources.size());
      }
      blk.bu_sources.push_back(e.u);
    }
    blk.bu_offsets.push_back(blk.bu_sources.size());
    pairs.clear();
    pairs.shrink_to_fit();
  }
  return dg;
}

namespace {

/// Top-down scan of partition q's block: walk the assembled col-band
/// frontier, binary-search each vertex among the block's source groups and
/// emit (child, parent) claims into the row outboxes.
void scan_td(rt::Proc& p, const DistGraph2d& dg, State2d& st,
             const bfs::UnitCosts& u, int q) {
  const Grid2d& g = dg.grid;
  const Block2d& blk = dg.blocks[static_cast<std::size_t>(q)];
  const std::uint64_t cb0 = g.colband_begin(g.col_of(q));
  const auto cb = st.colband[static_cast<std::size_t>(q)].view();
  auto& oc = st.out_children[static_cast<std::size_t>(q)];
  auto& op = st.out_parents[static_cast<std::size_t>(q)];
  std::uint64_t searches = 0, scans = 0, writes = 0;
  cb.for_each_set([&](std::uint64_t bit) {
    const auto uvtx = static_cast<graph::Vertex>(cb0 + bit);
    ++searches;
    const auto it = std::lower_bound(blk.keys.begin(), blk.keys.end(), uvtx);
    if (it == blk.keys.end() || *it != uvtx) return;
    const auto idx = static_cast<std::size_t>(it - blk.keys.begin());
    for (std::uint64_t e = blk.offsets[idx]; e < blk.offsets[idx + 1]; ++e) {
      const graph::Vertex v = blk.targets[e];
      ++scans;
      const auto dk = static_cast<std::size_t>(g.col_of(g.owner(v)));
      oc[dk].push_back(v);
      op[dk].push_back(uvtx);
      ++writes;
    }
  });
  p.prof.counters().edges_scanned += scans;
  p.prof.counters().queue_writes += writes;
  p.charge(sim::Phase::td_comp,
           u.stream_pass_ns(g.colband_bits() / 64) +
               (static_cast<double>(searches) * u.group_search_ns +
                static_cast<double>(scans) * u.edge_scan_ns +
                static_cast<double>(writes) * u.write_ns) /
                   u.omp_div);
}

/// Bottom-up scan: walk the block's targets skipping settled ones via the
/// row-band visited replica, probe the col-band frontier through its
/// summary, claim the first live parent.
void scan_bu(rt::Proc& p, const DistGraph2d& dg, State2d& st,
             const bfs::UnitCosts& u, int q) {
  const Grid2d& g = dg.grid;
  const Block2d& blk = dg.blocks[static_cast<std::size_t>(q)];
  const std::uint64_t band0 = g.band_begin(g.row_of(q));
  const std::uint64_t cb0 = g.colband_begin(g.col_of(q));
  const auto rv = st.row_visited[static_cast<std::size_t>(q)].view();
  const auto cb = st.colband[static_cast<std::size_t>(q)].view();
  const auto sum = st.colband_summary[static_cast<std::size_t>(q)].view();
  auto& oc = st.out_children[static_cast<std::size_t>(q)];
  auto& op = st.out_parents[static_cast<std::size_t>(q)];
  std::uint64_t vprobes = 0, sprobes = 0, qprobes = 0, zskips = 0;
  std::uint64_t scans = 0, hits = 0, writes = 0;
  for (std::size_t idx = 0; idx < blk.bu_keys.size(); ++idx) {
    const graph::Vertex v = blk.bu_keys[idx];
    ++vprobes;
    if (rv.get(v - band0)) continue;  // settled (row-band replica current)
    for (std::uint64_t e = blk.bu_offsets[idx]; e < blk.bu_offsets[idx + 1];
         ++e) {
      const graph::Vertex uvtx = blk.bu_sources[e];
      const std::uint64_t off = uvtx - cb0;
      ++scans;
      ++sprobes;
      if (!sum.covers(off)) {
        ++zskips;
        continue;
      }
      ++qprobes;
      if (cb.get(off)) {
        ++hits;
        const auto dk = static_cast<std::size_t>(g.col_of(g.owner(v)));
        oc[dk].push_back(v);
        op[dk].push_back(uvtx);
        ++writes;
        break;  // first live parent wins; stop scanning v's sources
      }
    }
  }
  auto& cnt = p.prof.counters();
  cnt.summary_probes += sprobes;
  cnt.summary_zero_skips += zskips;
  cnt.inqueue_probes += qprobes;
  cnt.frontier_hits += hits;
  cnt.edges_scanned += scans;
  cnt.queue_writes += writes;
  p.charge(sim::Phase::bu_comp,
           (static_cast<double>(vprobes) * u.visited_probe_ns +
            static_cast<double>(sprobes) * u.summary_probe_ns +
            static_cast<double>(qprobes) * u.inqueue_probe_ns +
            static_cast<double>(scans) * u.edge_scan_ns +
            static_cast<double>(writes) * u.write_ns) /
               u.omp_div);
}

/// Level-boundary checkpoint of one partition: everything the level loop
/// mutates, *including* the frontier piece — unlike the 1-D, the col-band
/// inputs are rebuilt from the frontier pieces on recovery, so the pieces
/// must roll back too (the 1-D's exchange had already replicated them
/// everywhere, so only the adopted rank's view mattered).
struct Ckpt2d {
  std::vector<std::uint64_t> visited;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> row_visited;
  std::vector<graph::Vertex> pred;
  std::uint64_t unvisited_edges = 0;
};

std::uint64_t ckpt_words(const Grid2d& g) {
  return 2 * (g.piece_bits() / 64) + g.band_bits() / 64 +
         g.piece_bits() * sizeof(graph::Vertex) / 8;
}

void save_checkpoint(rt::Proc& p, const Grid2d& g, State2d& st,
                     const bfs::UnitCosts& u, int q, Ckpt2d& ck) {
  const auto s = static_cast<std::size_t>(q);
  auto vw = st.visited[s].view().words();
  ck.visited.assign(vw.begin(), vw.end());
  auto fw = st.frontier[s].view().words();
  ck.frontier.assign(fw.begin(), fw.end());
  auto rw = st.row_visited[s].view().words();
  ck.row_visited.assign(rw.begin(), rw.end());
  ck.pred = st.pred[s];
  ck.unvisited_edges = st.unvisited_edges[s];
  p.charge(sim::Phase::other, u.stream_pass_ns(ckpt_words(g)));
}

void restore_checkpoint(rt::Proc& p, const Grid2d& g, State2d& st,
                        const bfs::UnitCosts& u, int q, const Ckpt2d& ck) {
  const auto s = static_cast<std::size_t>(q);
  std::memcpy(st.visited[s].view().words().data(), ck.visited.data(),
              ck.visited.size() * 8);
  std::memcpy(st.frontier[s].view().words().data(), ck.frontier.data(),
              ck.frontier.size() * 8);
  std::memcpy(st.row_visited[s].view().words().data(), ck.row_visited.data(),
              ck.row_visited.size() * 8);
  st.pred[s] = ck.pred;
  st.unvisited_edges[s] = ck.unvisited_edges;
  st.next[s].view().reset();
  for (auto& box : st.out_children[s]) box.clear();
  for (auto& box : st.out_parents[s]) box.clear();
  p.charge(sim::Phase::other, u.stream_pass_ns(ckpt_words(g)));
}

}  // namespace

std::string Bfs2dOptions::validate() const {
  if (summary_granularity < 1) return "summary_granularity must be >= 1";
  if (alpha <= 0.0 || beta <= 0.0) return "alpha/beta must be positive";
  if (exchange_chunks < 1 || exchange_chunks > 4096)
    return "exchange_chunks must be in [1, 4096]";
  if (exchange_chunks > 1 && codec == bfs::CodecMode::off)
    return "exchange_chunks > 1 requires an active codec: the raw exchange "
           "has no decode stage to overlap (set codec=gate or "
           "exchange_chunks=1)";
  return {};
}

Bfs2dResult run_bfs_2d(rt::Cluster& c, const DistGraph2d& dg,
                       graph::Vertex root,
                       std::vector<graph::Vertex>* parent_out,
                       const Bfs2dOptions& opt) {
  const Grid2d& g = dg.grid;
  if (c.nranks() != g.np())
    throw std::invalid_argument(
        "run_bfs_2d: cluster has " + std::to_string(c.nranks()) +
        " ranks but the grid is " + std::to_string(g.rows()) + "x" +
        std::to_string(g.cols()));
  if (g.cols() % c.ppn() != 0)
    throw std::invalid_argument(
        "run_bfs_2d: ppn=" + std::to_string(c.ppn()) +
        " must divide the grid's column count C=" + std::to_string(g.cols()) +
        " so processor rows span whole nodes");
  if (root >= g.n())
    throw std::invalid_argument("run_bfs_2d: root out of range");
  if (const std::string err = opt.validate(); !err.empty())
    throw std::invalid_argument("run_bfs_2d: " + err);

  const int np = g.np();
  std::vector<bfs::UnitCosts> costs(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    bfs::StructSizes sz;
    sz.in_queue_bytes = g.colband_bits() / 8;
    sz.in_summary_bytes = (g.colband_bits() / opt.summary_granularity + 7) / 8;
    sz.owned_bytes = g.piece_bits() / 8 +
                     g.piece_bits() * sizeof(graph::Vertex) +
                     g.band_bits() / 8;
    sz.td_group_count = std::max<std::uint64_t>(
        1, dg.blocks[static_cast<std::size_t>(r)].keys.size());
    bfs::Config ccfg;
    ccfg.summary_granularity = opt.summary_granularity;
    costs[static_cast<std::size_t>(r)] = bfs::unit_costs(c, ccfg, sz);
  }

  State2d st(dg, opt.summary_granularity);

  struct Shared {
    std::vector<int> directions;
    std::uint64_t visited = 1;  // root
    std::vector<std::uint64_t> frontier_sizes;
    std::vector<std::uint64_t> discovered;
    std::vector<int> expand_codec;
    std::vector<char> fold_coded;
    double expand_ns_sum = 0;
    double fold_ns_sum = 0;
  } shared;
  std::vector<std::vector<LegBytes>> rank_levels(static_cast<std::size_t>(np));

  faults::FaultInjector* inj = c.injector();
  if (inj != nullptr && inj->has_crashes() && !inj->checkpointing())
    throw faults::FaultError(
        "run_bfs_2d: the fault plan schedules rank crashes but checkpointing "
        "is disabled (checkpoint:off); the traversal could not be recovered");
  const bool ckpt_on = inj != nullptr && inj->checkpointing();
  std::vector<Ckpt2d> ckpt(ckpt_on ? static_cast<std::size_t>(np) : 0);
  std::atomic<int> recoveries{0};

  c.run([&](rt::Proc& p) {
    const bfs::UnitCosts& u = costs[static_cast<std::size_t>(p.rank)];
    rt::Comm& world = c.world();
    TwoDExchange ex(dg, st, costs, opt);
    std::vector<int> parts{p.rank};

    // --- per-root reset (Phase::other, like the 1-D) --------------------
    {
      const auto s = static_cast<std::size_t>(p.rank);
      st.frontier[s].view().reset();
      st.next[s].view().reset();
      st.visited[s].view().reset();
      st.colband[s].view().reset();
      st.row_visited[s].view().reset();
      std::fill(st.pred[s].begin(), st.pred[s].end(), graph::kNoVertex);
      st.unvisited_edges[s] = dg.owned_edges[s];
      for (auto& box : st.out_children[s]) box.clear();
      for (auto& box : st.out_parents[s]) box.clear();
      const int owner = g.owner(root);
      if (owner == p.rank) {
        const std::uint64_t lv = root - g.piece_begin(p.rank);
        st.visited[s].view().set(lv);
        st.frontier[s].view().set(lv);
        st.pred[s][lv] = root;
        st.unvisited_edges[s] -= dg.piece_deg[s][lv];
      }
      if (g.row_of(p.rank) == g.row_of(owner))
        st.row_visited[s].view().set(root - g.band_begin(g.row_of(p.rank)));
      p.charge(sim::Phase::other,
               u.stream_pass_ns(3 * (g.piece_bits() / 64) +
                                g.band_bits() / 64 + g.colband_bits() / 64));
      p.barrier(world, sim::Phase::other);
    }

    const std::uint64_t root_deg =
        g.owner(root) == p.rank
            ? dg.piece_deg[static_cast<std::size_t>(p.rank)]
                          [root - g.piece_begin(p.rank)]
            : 0;
    const std::uint64_t frontier_edges =
        rt::allreduce_sum(p, world, root_deg, sim::Phase::stall);

    int dir = opt.direction == bfs::Direction::bottom_up_only ? 1 : 0;
    if (opt.direction == bfs::Direction::hybrid) {
      const std::uint64_t rem0 = rt::allreduce_sum(
          p, world, st.unvisited_edges[static_cast<std::size_t>(p.rank)],
          sim::Phase::stall);
      if (static_cast<double>(frontier_edges) >
          static_cast<double>(rem0) / opt.alpha)
        dir = 1;
    }

    double my_expand_sum = 0, my_fold_sum = 0;
    // Bootstrap: build level 0's col-band inputs from the root frontier.
    ex.reset_legs();
    ex.build_inputs(p, dir, parts);
    my_expand_sum += ex.last_expand_ns();
    LegBytes in_legs = ex.legs();

    std::uint64_t prev_nf = 1;
    int level = 0;
    int handled_dead = 0;
    for (;;) {
      const double level_t0 = p.clock.now_ns();
      // Level boundary: checkpoint, then die if scheduled (the fail-stop
      // model is "the boundary checkpoint completed, the crash hit after").
      if (ckpt_on)
        for (int q : parts)
          save_checkpoint(p, g, st, costs[static_cast<std::size_t>(q)], q,
                          ckpt[static_cast<std::size_t>(q)]);
      if (inj != nullptr && inj->crash_level(p.rank) == level) {
        inj->mark_dead(p.rank);
        c.retire_rank(p);
        return;
      }
      LegBytes cur_legs = in_legs;

      // --- local scan -------------------------------------------------
      const double kernel_t0 = p.clock.now_ns();
      for (int q : parts) {
        const bfs::UnitCosts& qu = costs[static_cast<std::size_t>(q)];
        if (dir == 0)
          scan_td(p, dg, st, qu, q);
        else
          scan_bu(p, dg, st, qu, q);
      }
      p.trace_span(obs::kCatBfs, dir == 0 ? "2d.td_kernel" : "2d.bu_kernel",
                   kernel_t0, p.clock.now_ns(), obs::kv("level", level));

      // --- fold: claims travel the rows to their owners ---------------
      ex.reset_legs();
      const FoldStats fr = ex.fold(p, dir, parts);
      my_fold_sum += ex.last_fold_ns();
      cur_legs.fold_wire += ex.legs().fold_wire;
      cur_legs.fold_raw += ex.legs().fold_raw;
      cur_legs.fold_coded = ex.legs().fold_coded;

      std::uint64_t my_rem = 0;
      for (int q : parts)
        my_rem += st.unvisited_edges[static_cast<std::size_t>(q)];
      const std::uint64_t nf =
          rt::allreduce_sum(p, world, fr.discovered, sim::Phase::stall);
      const std::uint64_t mf =
          rt::allreduce_sum(p, world, fr.discovered_edges, sim::Phase::stall);
      const std::uint64_t rem =
          rt::allreduce_sum(p, world, my_rem, sim::Phase::stall);

      // Crash detection point: adopt the dead rank's partitions, roll back
      // to the boundary checkpoint, rebuild the col-band inputs, re-run.
      if (inj != nullptr && inj->dead_count() > handled_dead) {
        handled_dead = inj->dead_count();
        const std::size_t owned_before = parts.size();
        parts = inj->parts_of(p.rank);
        if (parts.size() > owned_before)
          p.prof.counters().adoptions += parts.size() - owned_before;
        const double rb_t0 = p.clock.now_ns();
        for (int q : parts)
          restore_checkpoint(p, g, st, costs[static_cast<std::size_t>(q)], q,
                             ckpt[static_cast<std::size_t>(q)]);
        if (p.rank == inj->lowest_live())
          recoveries.fetch_add(1, std::memory_order_relaxed);
        p.barrier(world, sim::Phase::stall);  // rollback complete everywhere
        ex.reset_legs();
        ex.build_inputs(p, dir, parts);
        my_expand_sum += ex.last_expand_ns();
        in_legs = ex.legs();
        p.trace_span(obs::kCatBfs, "recovery.rollback", rb_t0,
                     p.clock.now_ns(),
                     obs::kv("level", level) + "," +
                         obs::kv("parts", static_cast<int>(parts.size())));
        continue;  // re-run the level (level/dir/prev_nf unchanged)
      }

      const int recorder = inj != nullptr ? inj->lowest_live() : 0;
      if (p.rank == recorder) {
        shared.directions.push_back(dir);
        shared.visited += nf;
        shared.frontier_sizes.push_back(prev_nf);
        shared.discovered.push_back(nf);
        shared.expand_codec.push_back(cur_legs.expand_codec);
        shared.fold_coded.push_back(cur_legs.fold_coded ? 1 : 0);
      }
      const std::uint64_t frontier_prev_count = prev_nf;
      prev_nf = nf;

      if (nf == 0) {
        rank_levels[static_cast<std::size_t>(p.rank)].push_back(cur_legs);
        p.trace_span(obs::kCatBfs, "level " + std::to_string(level), level_t0,
                     p.clock.now_ns(),
                     obs::kv("dir", dir == 0 ? "td" : "bu") + "," +
                         obs::kv("discovered", nf));
        break;
      }

      // Next direction (Beamer, with the 1-D's growing-frontier guard).
      const bool growing = nf > frontier_prev_count;
      int next = dir;
      if (opt.direction == bfs::Direction::hybrid) {
        if (dir == 0 && growing &&
            static_cast<double>(mf) > static_cast<double>(rem) / opt.alpha)
          next = 1;
        else if (dir == 1 && static_cast<double>(nf) <
                                 static_cast<double>(g.n()) / opt.beta)
          next = 0;
      }

      ex.reset_legs();
      const bfs::ExchangeLevelStats exs = ex.exchange(p, dir, next, parts);
      my_expand_sum += ex.last_expand_ns();
      p.trace_instant(obs::kCatBfs, "codec.gate",
                      obs::kv("level", level) + "," +
                          obs::kv("kind", graph::codec::to_string(exs.codec)) +
                          "," + obs::kv("wire_bytes", exs.wire_bytes) + "," +
                          obs::kv("raw_bytes", exs.raw_bytes));
      // Split the exchange's legs: the claim-return served this level; the
      // transpose/expand belong to the level whose inputs they built.
      const LegBytes exl = ex.legs();
      cur_legs.ret_wire += exl.ret_wire;
      cur_legs.ret_raw += exl.ret_raw;
      in_legs = LegBytes{};
      in_legs.transpose_wire = exl.transpose_wire;
      in_legs.transpose_raw = exl.transpose_raw;
      in_legs.expand_wire = exl.expand_wire;
      in_legs.expand_raw = exl.expand_raw;
      in_legs.expand_codec = exl.expand_codec;
      rank_levels[static_cast<std::size_t>(p.rank)].push_back(cur_legs);
      p.trace_span(obs::kCatBfs, "level " + std::to_string(level), level_t0,
                   p.clock.now_ns(),
                   obs::kv("dir", dir == 0 ? "td" : "bu") + "," +
                       obs::kv("discovered", nf));
      dir = next;
      ++level;
    }

    p.barrier(world, sim::Phase::stall);
    if (p.rank == (inj != nullptr ? inj->lowest_live() : 0)) {
      shared.expand_ns_sum = my_expand_sum;
      shared.fold_ns_sum = my_fold_sum;
    }
  });

  // --- aggregate (host side) -------------------------------------------
  Bfs2dResult out;
  const auto& profiles = c.profiles();
  double max_total = 0;
  for (const auto& pr : profiles)
    max_total = std::max(max_total, pr.total_ns());
  out.time_ns = max_total;
  out.visited = shared.visited;
  out.directions = shared.directions;
  out.levels = static_cast<int>(shared.directions.size());
  for (int d : shared.directions) (d == 0 ? out.td_levels : out.bu_levels)++;
  out.recoveries = recoveries.load(std::memory_order_relaxed);
  out.ranks_lost = inj != nullptr ? inj->dead_count() : 0;

  sim::PhaseProfile sum;
  sim::PhaseProfile mx;
  for (const auto& pr : profiles) {
    sum += pr;
    mx.max_with(pr);
  }
  out.profile_avg = sum.scaled(1.0 / static_cast<double>(profiles.size()));
  out.profile_avg.counters() = sum.counters();
  out.profile_max = mx;

  std::uint64_t traversed = 0;
  for (int r = 0; r < np; ++r)
    traversed += dg.owned_edges[static_cast<std::size_t>(r)] -
                 st.unvisited_edges[static_cast<std::size_t>(r)];
  out.traversed_directed_edges = traversed;
  if (out.levels > 0) {
    out.expand_ns_per_level =
        shared.expand_ns_sum / static_cast<double>(out.levels);
    out.fold_ns_per_level =
        shared.fold_ns_sum / static_cast<double>(out.levels);
  }

  out.trace.reserve(shared.directions.size());
  for (std::size_t lvl = 0; lvl < shared.directions.size(); ++lvl) {
    Level2dTrace t;
    t.level = static_cast<int>(lvl);
    t.direction = shared.directions[lvl];
    t.frontier_vertices = shared.frontier_sizes[lvl];
    t.discovered = shared.discovered[lvl];
    t.expand_codec = shared.expand_codec[lvl];
    t.fold_coded = shared.fold_coded[lvl] != 0;
    for (const auto& rl : rank_levels) {
      if (lvl >= rl.size()) continue;
      t.transpose_wire_bytes += rl[lvl].transpose_wire;
      t.transpose_raw_bytes += rl[lvl].transpose_raw;
      t.expand_wire_bytes += rl[lvl].expand_wire;
      t.expand_raw_bytes += rl[lvl].expand_raw;
      t.fold_wire_bytes += rl[lvl].fold_wire;
      t.fold_raw_bytes += rl[lvl].fold_raw;
      t.return_wire_bytes += rl[lvl].ret_wire;
      t.return_raw_bytes += rl[lvl].ret_raw;
    }
    out.trace.push_back(t);
  }

  if (parent_out != nullptr) {
    parent_out->assign(g.n(), graph::kNoVertex);
    for (int r = 0; r < np; ++r) {
      const auto& pr = st.pred[static_cast<std::size_t>(r)];
      const std::uint64_t vb = g.piece_begin(r);
      for (std::size_t i = 0; i < pr.size() && vb + i < g.n(); ++i)
        (*parent_out)[vb + i] = pr[i];
    }
  }
  return out;
}

}  // namespace numabfs::bfs2d
