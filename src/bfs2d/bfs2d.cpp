#include "bfs2d/bfs2d.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "bfs/costs.hpp"
#include "graph/bitmap.hpp"
#include "runtime/allgather.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::bfs2d {

Grid2d::Grid2d(std::uint64_t n, int np) : n_(n) {
  r_ = static_cast<int>(std::lround(std::sqrt(static_cast<double>(np))));
  if (r_ * r_ != np)
    throw std::invalid_argument("Grid2d: rank count must be a perfect square");
  const std::uint64_t quantum = static_cast<std::uint64_t>(r_) *
                                static_cast<std::uint64_t>(r_) * 64;
  padded_ = (n + quantum - 1) / quantum * quantum;
}

DistGraph2d DistGraph2d::build(const graph::Csr& g, const Grid2d& grid) {
  DistGraph2d d{grid, g.num_directed_edges(), {}};
  const int r = grid.r();
  const std::uint64_t band = grid.band_bits();
  d.blocks.resize(static_cast<size_t>(grid.np()));

  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      Block2d& b = d.blocks[static_cast<size_t>(grid.rank_at(i, j))];
      std::vector<std::pair<graph::Vertex, graph::Vertex>> pairs;
      const std::uint64_t v_lo = static_cast<std::uint64_t>(i) * band;
      const std::uint64_t v_hi =
          std::min<std::uint64_t>(g.num_vertices(), v_lo + band);
      const std::uint64_t u_lo = static_cast<std::uint64_t>(j) * band;
      const std::uint64_t u_hi = u_lo + band;
      for (std::uint64_t v = v_lo; v < v_hi; ++v)
        for (graph::Vertex u : g.neighbors(static_cast<graph::Vertex>(v)))
          if (u >= u_lo && u < u_hi)
            pairs.emplace_back(u, static_cast<graph::Vertex>(v));
      std::sort(pairs.begin(), pairs.end());

      b.targets.resize(pairs.size());
      b.offsets.push_back(0);
      for (std::size_t k = 0; k < pairs.size(); ++k) {
        if (k == 0 || pairs[k].first != pairs[k - 1].first) {
          b.keys.push_back(pairs[k].first);
          if (k != 0) b.offsets.push_back(k);
        }
        b.targets[k] = pairs[k].second;
      }
      b.offsets.push_back(pairs.size());
      if (b.keys.empty()) b.offsets.assign(1, 0);
    }
  }
  return d;
}

namespace {

/// Modeled time of moving `bytes` between two ranks under `flows`
/// concurrent flows per node.
double transfer_ns(const rt::Cluster& c, int from, int to,
                   std::uint64_t bytes, int flows, bool shared_mapping = false) {
  if (from == to)
    return static_cast<double>(bytes) / c.params().local_bw;
  if (c.node_of(from) == c.node_of(to)) {
    // A node-shared buffer is read directly (one pass, no CICO bounce) —
    // the paper's sharing mechanism applied to this exchange.
    const double factor = shared_mapping ? 1.0 : c.params().cico_factor;
    return factor * static_cast<double>(bytes) / c.link().shm_flow_bw(1);
  }
  return c.link().nic_transfer_ns(bytes, flows, c.node_of(from),
                                  c.node_of(to));
}

/// Ring-allgather time over explicit members (chunk each), flows shared.
double ring_ns(const rt::Cluster& c, const std::vector<int>& members,
               std::uint64_t chunk_bytes, int flows) {
  const int m = static_cast<int>(members.size());
  if (m <= 1) return 0.0;
  double step = 0.0;
  for (int k = 0; k < m; ++k)
    step = std::max(step, transfer_ns(c, members[static_cast<size_t>(k)],
                                      members[static_cast<size_t>((k + 1) % m)],
                                      chunk_bytes, flows));
  return static_cast<double>(m - 1) * step;
}

}  // namespace

Bfs2dResult run_bfs_2d(rt::Cluster& c, const DistGraph2d& dg,
                       graph::Vertex root,
                       std::vector<graph::Vertex>* parent_out,
                       const Bfs2dOptions& opt) {
  const Grid2d& grid = dg.grid;
  const int r = grid.r();
  const int np = grid.np();
  if (c.nranks() != np)
    throw std::invalid_argument("run_bfs_2d: cluster/grid shape mismatch");
  const std::uint64_t piece = grid.piece_bits();
  const std::uint64_t band = grid.band_bits();
  const std::uint64_t piece_words = piece / 64;
  const std::uint64_t piece_bytes = piece / 8;

  // Column member lists (columns are inter-node when ppn == r; rows are
  // then intra-node — the layout the paper's optimizations compose with).
  std::vector<std::vector<int>> col_members(static_cast<size_t>(r));
  for (int i = 0; i < r; ++i)
    for (int k = 0; k < r; ++k)
      col_members[static_cast<size_t>(i)].push_back(grid.rank_at(k, i));

  // Per-rank state, allocated by the driver (deterministic).
  std::vector<graph::Bitmap> frontier_piece, next_piece, colband;
  std::vector<graph::Bitmap> visited;
  std::vector<std::vector<graph::Vertex>> pred(static_cast<size_t>(np));
  // outbox[rank][dest_j] = (child, parent) candidates for row peer dest_j.
  std::vector<std::vector<std::vector<std::pair<graph::Vertex, graph::Vertex>>>>
      outbox(static_cast<size_t>(np));
  for (int rk = 0; rk < np; ++rk) {
    frontier_piece.emplace_back(piece);
    next_piece.emplace_back(piece);
    colband.emplace_back(band);
    visited.emplace_back(piece);
    pred[static_cast<size_t>(rk)].assign(piece, graph::kNoVertex);
    outbox[static_cast<size_t>(rk)].resize(static_cast<size_t>(r));
  }

  // Unit costs: 2-D runs under the paper's recommended binding.
  bfs::StructSizes sz;
  sz.in_queue_bytes = band / 8;  // the col-band frontier bitmap
  sz.in_summary_bytes = 1;
  sz.owned_bytes = piece / 8 + piece * sizeof(graph::Vertex);
  sz.td_group_count = 1024;
  const bfs::UnitCosts u = bfs::unit_costs(c, bfs::Config{}, sz);

  struct Shared {
    std::uint64_t visited_total = 1;
    int levels = 0;
    double expand_ns = 0, fold_ns = 0;
  } shared;

  c.run([&](rt::Proc& p) {
    const int i = grid.row_of(p.rank);
    const int j = grid.col_of(p.rank);
    const Block2d& blk = dg.blocks[static_cast<size_t>(p.rank)];
    rt::Comm& world = c.world();
    const int transpose_partner = grid.rank_at(j, i);
    const std::uint64_t my_begin = grid.piece_begin(p.rank);

    // Reset + root seeding.
    frontier_piece[static_cast<size_t>(p.rank)].view().reset();
    next_piece[static_cast<size_t>(p.rank)].view().reset();
    visited[static_cast<size_t>(p.rank)].view().reset();
    std::fill(pred[static_cast<size_t>(p.rank)].begin(),
              pred[static_cast<size_t>(p.rank)].end(), graph::kNoVertex);
    if (grid.owner(root) == p.rank) {
      const std::uint64_t lv = root - my_begin;
      frontier_piece[static_cast<size_t>(p.rank)].view().set(lv);
      visited[static_cast<size_t>(p.rank)].view().set(lv);
      pred[static_cast<size_t>(p.rank)][lv] = root;
    }
    p.charge(sim::Phase::other, u.stream_pass_ns(4 * piece_words));
    p.barrier(world, sim::Phase::other);

    for (;;) {
      // --- 1. transpose: the partner's frontier piece becomes our column
      // contribution (the data is read in step 2; the charge is here).
      p.charge(sim::Phase::td_comm,
               transfer_ns(c, transpose_partner, p.rank, piece_bytes,
                           c.ppn()));
      p.barrier(world, sim::Phase::td_comm);

      // --- 2. expand: column allgather of the transposed pieces ---------
      // Member k of column j contributes slice k of col-band j.
      {
        auto cb = colband[static_cast<size_t>(p.rank)].view();
        // Every member copies every slice (replicated result).
        for (int k = 0; k < r; ++k) {
          // Column member k's contribution is the piece transposed from
          // rank (j, k): slice k of col-band j.
          const int member_partner = grid.rank_at(j, k);
          auto src = frontier_piece[static_cast<size_t>(member_partner)].view();
          std::memcpy(cb.words().data() + static_cast<std::uint64_t>(k) *
                                              piece_words,
                      src.words().data(), piece_words * 8);
        }
        const double t =
            ring_ns(c, col_members[static_cast<size_t>(j)], piece_bytes,
                    c.ppn());
        p.charge(sim::Phase::td_comm, t);
        if (p.rank == 0) shared.expand_ns += t;
      }
      p.barrier(world, sim::Phase::td_comm);

      // --- 3. local scan: emit candidates for our row-band --------------
      {
        auto cb = colband[static_cast<size_t>(p.rank)].view();
        auto& boxes = outbox[static_cast<size_t>(p.rank)];
        for (auto& b : boxes) b.clear();
        std::uint64_t scans = 0, frontier_seen = 0, writes = 0;
        cb.for_each_set([&](std::uint64_t bit) {
          ++frontier_seen;
          const auto key = static_cast<graph::Vertex>(
              static_cast<std::uint64_t>(j) * band + bit);
          const auto it =
              std::lower_bound(blk.keys.begin(), blk.keys.end(), key);
          if (it == blk.keys.end() || *it != key) return;
          const auto k = static_cast<std::size_t>(it - blk.keys.begin());
          for (std::uint64_t e = blk.offsets[k]; e < blk.offsets[k + 1]; ++e) {
            const graph::Vertex v = blk.targets[e];
            ++scans;
            const int dest = grid.col_of(grid.owner(v));
            boxes[static_cast<size_t>(dest)].emplace_back(v, key);
            ++writes;
          }
        });
        p.prof.counters().edges_scanned += scans;
        p.charge(sim::Phase::td_comp,
                 u.stream_pass_ns(band / 64) +
                     (static_cast<double>(frontier_seen) * u.group_search_ns +
                      static_cast<double>(scans) * u.edge_scan_ns +
                      static_cast<double>(writes) * u.write_ns) /
                         u.omp_div);
      }
      p.barrier(world, sim::Phase::stall);

      // --- 4. fold: drain candidates from row peers, claim children -----
      std::uint64_t discovered = 0;
      {
        auto vis = visited[static_cast<size_t>(p.rank)].view();
        auto nxt = next_piece[static_cast<size_t>(p.rank)].view();
        auto prd = std::span<graph::Vertex>(pred[static_cast<size_t>(p.rank)]);
        double comm_t = 0;
        std::uint64_t probes = 0, writes = 0;
        for (int k = 0; k < r; ++k) {
          const int peer = grid.rank_at(i, k);
          const auto& inbox =
              outbox[static_cast<size_t>(peer)][static_cast<size_t>(j)];
          comm_t += transfer_ns(
              c, peer, p.rank,
              inbox.size() * sizeof(std::pair<graph::Vertex, graph::Vertex>),
              c.ppn(), opt.shared_fold);
          for (const auto& [child, par] : inbox) {
            const std::uint64_t lv = child - my_begin;
            ++probes;
            if (vis.get(lv)) continue;
            vis.set(lv);
            prd[lv] = par;
            nxt.set(lv);
            ++discovered;
            writes += 3;
          }
        }
        p.charge(sim::Phase::td_comm, comm_t);
        p.charge(sim::Phase::td_comp,
                 (static_cast<double>(probes) * u.visited_probe_ns +
                  static_cast<double>(writes) * u.write_ns) /
                     u.omp_div);
        p.prof.counters().inqueue_probes += probes;
        if (p.rank == 0) shared.fold_ns += comm_t;
      }

      const std::uint64_t nf =
          rt::allreduce_sum(p, world, discovered, sim::Phase::stall);
      if (p.rank == 0) {
        shared.levels++;
        shared.visited_total += nf;
      }
      // Advance the frontier: next -> current (charged stream).
      {
        auto cur = frontier_piece[static_cast<size_t>(p.rank)].view();
        auto nxt = next_piece[static_cast<size_t>(p.rank)].view();
        std::memcpy(cur.words().data(), nxt.words().data(), piece_words * 8);
        nxt.reset();
        p.charge(sim::Phase::other, u.stream_pass_ns(2 * piece_words));
      }
      p.barrier(world, sim::Phase::stall);
      if (nf == 0) break;
    }
    p.barrier(world, sim::Phase::stall);
  });

  Bfs2dResult out;
  const auto& profiles = c.profiles();
  sim::PhaseProfile sum;
  double max_total = 0;
  for (const auto& pr : profiles) {
    sum += pr;
    max_total = std::max(max_total, pr.total_ns());
  }
  out.time_ns = max_total;
  out.visited = shared.visited_total;
  out.levels = shared.levels;
  out.profile_avg = sum.scaled(1.0 / static_cast<double>(profiles.size()));
  out.profile_avg.counters() = sum.counters();
  out.expand_ns_per_level =
      shared.levels ? shared.expand_ns / shared.levels : 0;
  out.fold_ns_per_level = shared.levels ? shared.fold_ns / shared.levels : 0;

  if (parent_out) {
    parent_out->assign(grid.n(), graph::kNoVertex);
    for (int rk = 0; rk < np; ++rk) {
      const std::uint64_t begin = grid.piece_begin(rk);
      for (std::uint64_t lv = 0; lv < piece; ++lv) {
        const std::uint64_t v = begin + lv;
        if (v < grid.n())
          (*parent_out)[v] = pred[static_cast<size_t>(rk)][lv];
      }
    }
  }
  return out;
}

}  // namespace numabfs::bfs2d
