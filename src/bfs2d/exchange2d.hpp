#pragma once
/// \file exchange2d.hpp
/// The 2-D decomposition's communication legs behind the unified
/// FrontierExchange interface (DESIGN.md §13). All traversal state lives in
/// `State2d` — plain host-side vectors indexed by partition, visible to
/// every rank thread (the simulated address spaces are private by
/// convention); barriers separate the write and read phases exactly like
/// the 1-D exchanges.
///
/// Leg inventory per level (square brackets: the codec-gated ones):
///   [transpose]    p2p: piece g -> column member assembling slot g % R
///   [expand]       column allgather of R wire pieces (hier_subgroup_*)
///   [fold]         row alltoallv of (child, parent) claims (hier_alltoallv)
///   [claim-return] row allgather of the new frontier pieces, bottom-up only
/// The transpose and expand share one gate decision (the same pieces ride
/// both), the fold gates on measured list encodings like the 1-D sparse
/// exchange, and the claim-return gates independently (post-fold pieces).

#include <cstdint>
#include <span>
#include <vector>

#include "bfs/costs.hpp"
#include "bfs/exchange.hpp"
#include "bfs2d/bfs2d.hpp"
#include "graph/bitmap.hpp"
#include "graph/summary.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs2d {

/// Per-partition traversal state of one 2-D BFS run.
struct State2d {
  State2d(const DistGraph2d& dg, std::uint64_t summary_granularity);

  // Owned piece state (indexed by partition == piece).
  std::vector<graph::Bitmap> frontier;  ///< current level's frontier piece
  std::vector<graph::Bitmap> next;      ///< claims accepted this level
  std::vector<graph::Bitmap> visited;
  std::vector<std::vector<graph::Vertex>> pred;
  std::vector<std::uint64_t> unvisited_edges;

  // Col-band replica (the expand target) + its Fig. 8 summary.
  std::vector<graph::Bitmap> colband;
  std::vector<graph::Summary> colband_summary;

  // Row-band visited replica for bottom-up target skipping, refreshed by
  // the claim-return leg (or rebuilt from `visited` on a td -> bu switch).
  std::vector<graph::Bitmap> row_visited;

  // Fold outboxes: out_children[q][k] / out_parents[q][k] are the claims
  // partition q routes to column k of its row (parallel arrays).
  std::vector<std::vector<std::vector<graph::Vertex>>> out_children;
  std::vector<std::vector<std::vector<graph::Vertex>>> out_parents;

  // Codec scratch, per gated leg.
  std::vector<std::vector<std::uint8_t>> enc_piece;  ///< transpose/expand
  std::vector<std::vector<std::uint8_t>> enc_ret;    ///< claim-return
  std::vector<std::vector<std::vector<std::uint8_t>>> enc_fold;  ///< [q][k]
};

/// What the fold leg moved and discovered (per calling rank).
struct FoldStats {
  bool coded = false;
  std::uint64_t wire_bytes = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t discovered = 0;        ///< claims accepted at owned parts
  std::uint64_t discovered_edges = 0;  ///< their degree sum (Beamer's mf)
};

/// Per-level wire accounting of every 2-D leg, split so the volume-law
/// property tests can pin each one. Filled by the legs of one TwoDExchange
/// call; the level loop snapshots and resets it.
struct LegBytes {
  std::uint64_t transpose_wire = 0, transpose_raw = 0;
  std::uint64_t expand_wire = 0, expand_raw = 0;
  std::uint64_t fold_wire = 0, fold_raw = 0;
  std::uint64_t ret_wire = 0, ret_raw = 0;
  int expand_codec = 0;  ///< graph::codec::Kind of the transpose/expand gate
  bool fold_coded = false;
};

/// One rank's view of the 2-D exchange. SPMD: every live rank constructs
/// its own instance and calls the legs in lockstep.
class TwoDExchange final : public bfs::FrontierExchange {
 public:
  TwoDExchange(const DistGraph2d& dg, State2d& st,
               std::span<const bfs::UnitCosts> costs, const Bfs2dOptions& opt)
      : dg_(dg), st_(st), costs_(costs), opt_(opt) {}

  const char* name() const override { return "2d"; }

  /// Build the col-band frontier inputs for a level about to run `dir`:
  /// codec-gated transpose + hierarchical column expand, plus the summary
  /// rebuild when the level is bottom-up. Re-entrant: crash recovery calls
  /// it again after restoring the level-start frontier.
  bfs::ExchangeLevelStats build_inputs(rt::Proc& p, int dir,
                                       std::span<const int> parts);

  /// Route this level's claims along the rows and dedup at the owners
  /// (the communication tail of the level's kernel).
  FoldStats fold(rt::Proc& p, int dir, std::span<const int> parts);

  /// FrontierExchange: advance the frontier, refresh the row-band visited
  /// replicas when the next level is bottom-up (claim-return, or the full
  /// rebuild on a td -> bu switch), then build_inputs for `next_dir`.
  bfs::ExchangeLevelStats exchange(rt::Proc& p, int cur_dir, int next_dir,
                                   std::span<const int> parts) override;

  LegBytes& legs() { return legs_; }
  void reset_legs() { legs_ = LegBytes{}; }
  double last_expand_ns() const { return last_expand_ns_; }
  double last_fold_ns() const { return last_fold_ns_; }

 private:
  const DistGraph2d& dg_;
  State2d& st_;
  std::span<const bfs::UnitCosts> costs_;
  const Bfs2dOptions& opt_;
  LegBytes legs_;
  double last_expand_ns_ = 0;
  double last_fold_ns_ = 0;
  /// Are all row_visited replicas current? True after a claim-return,
  /// false once a level's claims were folded without one (top-down next).
  /// Toggled identically on every rank (pure function of the direction
  /// history), so the td -> bu switch rebuild is SPMD-consistent.
  bool rows_fresh_ = true;
  // decode scratch (fold lists, claim-return pieces)
  std::vector<graph::Vertex> dec_children_;
  std::vector<graph::Vertex> dec_parents_;
  std::vector<std::uint64_t> dec_piece_;
};

}  // namespace numabfs::bfs2d
