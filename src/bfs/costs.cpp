#include "bfs/costs.hpp"

#include <cmath>

namespace numabfs::bfs {

sim::Placement graph_placement(const Config& cfg, int ppn) {
  switch (cfg.bind) {
    case BindMode::bind_to_socket:
      // Binding only pins memory when there is one socket per rank;
      // a single bound rank spanning the whole node still interleaves.
      return ppn > 1 ? sim::Placement::socket_local
                     : sim::Placement::interleaved;
    case BindMode::interleave:
      return sim::Placement::interleaved;
    case BindMode::noflag:
      return sim::Placement::single_home;
  }
  return sim::Placement::socket_local;
}

UnitCosts unit_costs(const rt::Cluster& c, const Config& cfg,
                     const StructSizes& sz) {
  const sim::MemModel& mem = c.mem();
  const auto& cp = c.params();
  const int spr = c.sockets_per_rank();
  const bool shared_in = cfg.sharing != Sharing::none && c.ppn() > 1;

  const sim::Placement gp = graph_placement(cfg, c.ppn());
  const sim::Placement qp = shared_in ? sim::Placement::node_shared : gp;
  // Cache-sharing degree: a node-shared copy is probed by every socket of
  // the node; a private copy by the rank's own binding domain.
  const int k_queue = shared_in ? c.topo().sockets_per_node() : spr;
  const int k_priv = spr;
  const bool full_load = c.topo().sockets_per_node() > 1;
  // QPI congestion is driven by the *bulk* traffic — the graph stream. With
  // the graph bound socket-local the mesh is mostly idle, and the (much
  // rarer) cross-socket queue probes see uncongested links; that is why
  // sharing in_queue "won't cause severe problem" (Section III.A).
  const bool queue_load =
      full_load && gp != sim::Placement::socket_local;

  UnitCosts u;
  u.summary_probe_ns = mem.probe_ns(qp, sz.in_summary_bytes, k_queue, queue_load);
  u.inqueue_probe_ns = mem.probe_ns(qp, sz.in_queue_bytes, k_queue, queue_load);
  u.visited_probe_ns = mem.probe_ns(gp, sz.owned_bytes, k_priv, full_load);
  u.edge_scan_ns = cp.edge_work_ns +
                   static_cast<double>(sizeof(std::uint32_t)) *
                       mem.stream_ns_per_byte(gp) *
                       (gp != sim::Placement::socket_local && full_load
                            ? 1.0 + cp.qpi_congestion
                            : 1.0);
  u.word_stream_ns = cp.stream_word_ns + 8.0 * mem.stream_ns_per_byte(gp);
  u.write_ns = mem.probe_ns(gp, sz.owned_bytes, k_priv, full_load);
  u.group_search_ns =
      cp.probe_work_ns *
      std::max(1.0, std::log2(static_cast<double>(sz.td_group_count) + 1.0));
  // Merged-view read amplification: the dirty-bitmap word is LLC-resident
  // (one bit per owned vertex), the patch row lands a second, random
  // access into the (cold) patch storage — modeled as one private-graph
  // probe plus the bitmap check.
  u.delta_probe_ns = cp.probe_work_ns + u.visited_probe_ns;

  // Intra-rank OpenMP: k sockets each scale over their own cores.
  const int cores = c.topo().cores_per_socket();
  u.omp_div = static_cast<double>(spr) * mem.omp_speedup(cores);
  return u;
}

}  // namespace numabfs::bfs
