#include "bfs/state.hpp"

#include <stdexcept>

namespace numabfs::bfs {

namespace {

/// Validate before any member initializer derives sizes from the config.
const Config& validated(const Config& cfg) {
  if (const std::string err = cfg.validate(); !err.empty())
    throw std::invalid_argument("DistState: " + err);
  return cfg;
}

}  // namespace

DistState::DistState(const graph::DistGraph& dg, const Config& cfg, int nodes,
                     int ppn)
    : cfg_(validated(cfg)),
      nodes_(nodes),
      ppn_(ppn),
      shared_in_(cfg.sharing != Sharing::none && ppn > 1),
      shared_out_(cfg.sharing == Sharing::all && ppn > 1),
      padded_bits_(dg.part.padded_bits()),
      summary_bits_(graph::SummaryView::summary_bits_for(
          padded_bits_, cfg.summary_granularity)) {
  const int np = nodes * ppn;
  if (dg.part.np() != np)
    throw std::invalid_argument("DistState: partition/cluster shape mismatch");

  const std::uint64_t g = cfg.summary_granularity;

  if (shared_in_) {
    node_in_queue_.reserve(nodes);
    node_in_summary_.reserve(nodes);
    for (int n = 0; n < nodes; ++n) {
      node_in_queue_.emplace_back(padded_bits_);
      node_in_summary_.emplace_back(padded_bits_, g);
    }
  } else {
    rank_in_queue_.reserve(np);
    rank_in_summary_.reserve(np);
    for (int r = 0; r < np; ++r) {
      rank_in_queue_.emplace_back(padded_bits_);
      rank_in_summary_.emplace_back(padded_bits_, g);
    }
  }

  if (shared_out_) {
    node_out_queue_.reserve(nodes);
    node_out_summary_.reserve(nodes);
    for (int n = 0; n < nodes; ++n) {
      node_out_queue_.emplace_back(padded_bits_);
      node_out_summary_.emplace_back(padded_bits_, g);
    }
  } else {
    rank_out_queue_.reserve(np);
    rank_out_summary_.reserve(np);
    for (int r = 0; r < np; ++r) {
      rank_out_queue_.emplace_back(padded_bits_);
      rank_out_summary_.emplace_back(padded_bits_, g);
    }
  }

  visited_.reserve(np);
  pred_.resize(np);
  unvisited_edges_.assign(np, 0);
  frontier_.resize(np);
  discovered_.resize(np);
  enc_buf_.resize(np);
  for (int r = 0; r < np; ++r) {
    const auto& lg = dg.locals[static_cast<size_t>(r)];
    visited_.emplace_back(lg.owned() > 0 ? lg.owned() : 1);
    pred_[static_cast<size_t>(r)].assign(lg.owned(), graph::kNoVertex);
    unvisited_edges_[static_cast<size_t>(r)] = lg.owned_edges();
  }
}

}  // namespace numabfs::bfs
