#pragma once
/// \file exchange.hpp
/// The communication phase of Fig. 1: two allgathers rebuilding the next
/// frontier (`in_queue`) and its summary on every rank/node from the
/// per-rank `out_queue` chunks, under the variant's sharing level and
/// allgather plan. Also resets the out structures for the next level.
///
/// Fault tolerance: each exchange takes an optional `parts` list — the
/// partitions the calling rank is responsible for (its own plus any it
/// adopted from crashed ranks). The adopter publishes/wipes the adopted
/// partitions' slots so the exchange protocol below is oblivious to
/// crashes; the partition index space always stays dense. When ranks have
/// died, the parallel-subgroup allgather degrades to the leader-based plan
/// (subgroup rings need every color alive on every node) and node
/// leadership falls to the lowest live local rank.

#include <span>

#include "bfs/costs.hpp"
#include "bfs/state.hpp"
#include "graph/codec.hpp"
#include "graph/dist_graph.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs {

/// Breakdown of the modeled exchange duration (for Figs. 6/12/13), plus the
/// codec outcome when Config::codec is active (DESIGN.md §10).
struct ExchangeTimes {
  double gather_ns = 0;
  double inter_ns = 0;
  double bcast_ns = 0;
  double intra_overlapped_ns = 0;
  double total_ns = 0;

  graph::codec::Kind codec = graph::codec::Kind::raw;  ///< gate's pick
  double encode_ns = 0;         ///< modeled codec encode cost (this rank)
  double decode_ns = 0;         ///< modeled codec decode cost
  double overlap_saved_ns = 0;  ///< wire/decode pipelining gain
  std::uint64_t chunk_raw_bytes = 0;   ///< per-rank raw contribution
  std::uint64_t chunk_wire_bytes = 0;  ///< what actually rides the wire
};

/// What the sparse (top-down) exchange moved, for per-level accounting.
struct SparseExchangeStats {
  std::uint64_t wire_bytes = 0;  ///< bytes this rank received off-rank
  std::uint64_t raw_bytes = 0;   ///< their raw (uncoded) equivalent
  bool coded = false;            ///< lists rode the delta-varint codec
};

/// Bitmap exchange (used when the *next* level is bottom-up): the two
/// allgathers of Fig. 1 rebuild in_queue and in_queue_summary from the
/// out_queue chunks, then wipe the out structures. SPMD: all ranks call.
/// Charges the modeled duration to `phase`. `parts` lists the caller's
/// partitions (empty = own rank only).
ExchangeTimes exchange_frontier(rt::Proc& p, const graph::DistGraph& dg,
                                DistState& st, const UnitCosts& u,
                                sim::Phase phase,
                                std::span<const int> parts = {});

/// Sparse exchange (used when the next level is top-down): allgatherv of
/// the per-rank discovered-vertex lists into every rank's replicated
/// frontier list. Communication is proportional to the frontier size —
/// negligible outside the bulge, which is why the paper's communication
/// cost concentrates in the bottom-up phases. `wipe_out` additionally
/// wipes the out bitmaps (set when the level that produced the frontier
/// ran bottom-up, whose kernel marks them). `parts` as above.
SparseExchangeStats exchange_sparse(rt::Proc& p, const graph::DistGraph& dg,
                                    DistState& st, const UnitCosts& u,
                                    sim::Phase phase, bool wipe_out,
                                    std::span<const int> parts = {});

/// Direction-switch conversion (td -> bu): materialize the out_queue /
/// out_queue_summary bits from this level's discovered list, so the bitmap
/// exchange can build the next in_queue. Charged to Phase::switch_conv.
/// `part` selects the partition (-1 = the caller's own).
void discovered_to_out_bits(rt::Proc& p, DistState& st, const UnitCosts& u,
                            int part = -1);

/// Wipe this rank's out_queue chunk and out_summary share (used on the
/// bu -> td path, where no bitmap exchange performs the wipe).
void clear_out_bits(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                    const UnitCosts& u, sim::Phase phase);

/// Wipe partition `part`'s out_queue chunk and out_summary range on behalf
/// of a crashed owner (fault recovery only; the caller adopted `part`).
void clear_out_bits_part(rt::Proc& p, const graph::DistGraph& dg,
                         DistState& st, const UnitCosts& u, sim::Phase phase,
                         int part);

}  // namespace numabfs::bfs
