#pragma once
/// \file exchange.hpp
/// The communication phase of Fig. 1: two allgathers rebuilding the next
/// frontier (`in_queue`) and its summary on every rank/node from the
/// per-rank `out_queue` chunks, under the variant's sharing level and
/// allgather plan. Also resets the out structures for the next level.

#include "bfs/costs.hpp"
#include "bfs/state.hpp"
#include "graph/dist_graph.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs {

/// Breakdown of the modeled exchange duration (for Figs. 6/12/13).
struct ExchangeTimes {
  double gather_ns = 0;
  double inter_ns = 0;
  double bcast_ns = 0;
  double intra_overlapped_ns = 0;
  double total_ns = 0;
};

/// Bitmap exchange (used when the *next* level is bottom-up): the two
/// allgathers of Fig. 1 rebuild in_queue and in_queue_summary from the
/// out_queue chunks, then wipe the out structures. SPMD: all ranks call.
/// Charges the modeled duration to `phase`.
ExchangeTimes exchange_frontier(rt::Proc& p, const graph::DistGraph& dg,
                                DistState& st, const UnitCosts& u,
                                sim::Phase phase);

/// Sparse exchange (used when the next level is top-down): allgatherv of
/// the per-rank discovered-vertex lists into every rank's replicated
/// frontier list. Communication is proportional to the frontier size —
/// negligible outside the bulge, which is why the paper's communication
/// cost concentrates in the bottom-up phases. `wipe_out` additionally
/// wipes the out bitmaps (set when the level that produced the frontier
/// ran bottom-up, whose kernel marks them).
void exchange_sparse(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                     const UnitCosts& u, sim::Phase phase, bool wipe_out);

/// Direction-switch conversion (td -> bu): materialize the out_queue /
/// out_queue_summary bits from this level's discovered list, so the bitmap
/// exchange can build the next in_queue. Charged to Phase::switch_conv.
void discovered_to_out_bits(rt::Proc& p, DistState& st, const UnitCosts& u);

/// Wipe this rank's out_queue chunk and out_summary share (used on the
/// bu -> td path, where no bitmap exchange performs the wipe).
void clear_out_bits(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                    const UnitCosts& u, sim::Phase phase);

}  // namespace numabfs::bfs
