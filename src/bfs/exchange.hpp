#pragma once
/// \file exchange.hpp
/// The communication phase of Fig. 1: two allgathers rebuilding the next
/// frontier (`in_queue`) and its summary on every rank/node from the
/// per-rank `out_queue` chunks, under the variant's sharing level and
/// allgather plan. Also resets the out structures for the next level.
///
/// Fault tolerance: each exchange takes an optional `parts` list — the
/// partitions the calling rank is responsible for (its own plus any it
/// adopted from crashed ranks). The adopter publishes/wipes the adopted
/// partitions' slots so the exchange protocol below is oblivious to
/// crashes; the partition index space always stays dense. When ranks have
/// died, the parallel-subgroup allgather degrades to the leader-based plan
/// (subgroup rings need every color alive on every node) and node
/// leadership falls to the lowest live local rank.

#include <functional>
#include <optional>
#include <span>

#include "bfs/costs.hpp"
#include "bfs/state.hpp"
#include "graph/codec.hpp"
#include "graph/dist_graph.hpp"
#include "graph/summary.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::tune {
class ExchangeTuner;
}  // namespace numabfs::tune

namespace numabfs::bfs {

/// Breakdown of the modeled exchange duration (for Figs. 6/12/13), plus the
/// codec outcome when Config::codec is active (DESIGN.md §10).
struct ExchangeTimes {
  double gather_ns = 0;
  double inter_ns = 0;
  double bcast_ns = 0;
  double intra_overlapped_ns = 0;
  double total_ns = 0;

  graph::codec::Kind codec = graph::codec::Kind::raw;  ///< gate's pick
  double encode_ns = 0;         ///< modeled codec encode cost (this rank)
  double decode_ns = 0;         ///< modeled codec decode cost
  double overlap_saved_ns = 0;  ///< wire/decode pipelining gain
  std::uint64_t chunk_raw_bytes = 0;   ///< per-rank raw contribution
  std::uint64_t chunk_wire_bytes = 0;  ///< what actually rides the wire
  int chunks_used = 1;   ///< pipeline depth K this exchange actually rode
  int algo_used = -1;    ///< rt::AllgatherAlgo as int; -1 = shared-memory plan
};

/// What the sparse (top-down) exchange moved, for per-level accounting.
struct SparseExchangeStats {
  std::uint64_t wire_bytes = 0;  ///< bytes this rank received off-rank
  std::uint64_t raw_bytes = 0;   ///< their raw (uncoded) equivalent
  bool coded = false;            ///< lists rode the delta-varint codec
};

/// Bitmap exchange (used when the *next* level is bottom-up): the two
/// allgathers of Fig. 1 rebuild in_queue and in_queue_summary from the
/// out_queue chunks, then wipe the out structures. SPMD: all ranks call.
/// Charges the modeled duration to `phase`. `parts` lists the caller's
/// partitions (empty = own rank only).
/// `tuner` (optional, per-rank but identically-stated on every rank) lets
/// the exchange re-pick its pipeline depth K and base allgather algorithm
/// per level from trailing allreduced measurements (DESIGN.md §15); null
/// keeps the static Config knobs.
ExchangeTimes exchange_frontier(rt::Proc& p, const graph::DistGraph& dg,
                                DistState& st, const UnitCosts& u,
                                sim::Phase phase,
                                std::span<const int> parts = {},
                                tune::ExchangeTuner* tuner = nullptr);

/// Sparse exchange (used when the next level is top-down): allgatherv of
/// the per-rank discovered-vertex lists into every rank's replicated
/// frontier list. Communication is proportional to the frontier size —
/// negligible outside the bulge, which is why the paper's communication
/// cost concentrates in the bottom-up phases. `wipe_out` additionally
/// wipes the out bitmaps (set when the level that produced the frontier
/// ran bottom-up, whose kernel marks them). `parts` as above.
SparseExchangeStats exchange_sparse(rt::Proc& p, const graph::DistGraph& dg,
                                    DistState& st, const UnitCosts& u,
                                    sim::Phase phase, bool wipe_out,
                                    std::span<const int> parts = {});

/// Direction-switch conversion (td -> bu): materialize the out_queue /
/// out_queue_summary bits from this level's discovered list, so the bitmap
/// exchange can build the next in_queue. Charged to Phase::switch_conv.
/// `part` selects the partition (-1 = the caller's own).
void discovered_to_out_bits(rt::Proc& p, DistState& st, const UnitCosts& u,
                            int part = -1);

/// Wipe this rank's out_queue chunk and out_summary share (used on the
/// bu -> td path, where no bitmap exchange performs the wipe).
void clear_out_bits(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                    const UnitCosts& u, sim::Phase phase);

/// Wipe partition `part`'s out_queue chunk and out_summary range on behalf
/// of a crashed owner (fault recovery only; the caller adopted `part`).
void clear_out_bits_part(rt::Proc& p, const graph::DistGraph& dg,
                         DistState& st, const UnitCosts& u, sim::Phase phase,
                         int part);

// --- decomposition-agnostic codec gate (DESIGN.md §10/§13) ---------------
// The per-level gate decides raw vs coded from allreduced *measured*
// quantities, identically on every rank. It was written for the 1-D bitmap
// allgather; the 2-D transpose/expand/fold legs reuse it by describing
// their equal-geometry chunks and a plan-time function.

/// One owned bitmap contribution to a gated exchange.
struct GateChunk {
  std::span<const std::uint64_t> words;   ///< the chunk on offer
  std::optional<graph::SummaryView> guide;  ///< dense-encode guide, if any
  std::uint64_t guide_base_bit = 0;
  std::vector<std::uint8_t>* enc = nullptr;  ///< where the encoding lands
};

/// The gate's decision for one exchange leg.
struct GateResult {
  graph::codec::Kind kind = graph::codec::Kind::raw;
  /// Mean measured encoded chunk (== raw chunk bytes when kind is raw);
  /// the honest per-chunk wire charge for every collective plan.
  std::uint64_t wire_chunk_bytes = 0;
  double encode_ns = 0;  ///< modeled encode cost charged to this rank
};

/// Run the PR-4 codec gate over this rank's `chunks` (SPMD: all of `comm`
/// participates): popcount + allreduce, analytic 1.5x pre-filter, trial
/// encode, final pick on the allreduced measured bytes. `plan_total_ns`
/// maps a per-chunk wire size to the modeled duration of the exchange's
/// collective plan; `decode_chunks` is how many chunks one rank decodes.
/// Chunks must share one geometry: `chunk_words` words covering
/// `chunk_bits` vertex bits.
/// `per_chunk_ns` is the extra cost each additional pipeline chunk adds to
/// the plan (CostParams::chunk_split_overhead_ns); 0 keeps the legacy
/// monotone-in-K behavior.
GateResult gate_bitmap_chunks(
    rt::Proc& p, rt::Comm& comm, CodecMode mode, int pipeline_chunks,
    std::span<GateChunk> chunks, std::uint64_t chunk_words,
    std::uint64_t chunk_bits, std::uint64_t decode_chunks, const UnitCosts& u,
    sim::Phase phase, const std::function<double(std::uint64_t)>& plan_total_ns,
    double per_chunk_ns = 0.0);

/// Strict-framing decode of one gated bitmap chunk: the encoding must
/// account for every published byte or the stream was corrupted. Throws
/// std::invalid_argument naming `what` and the source rank.
void decode_bitmap_checked(std::span<const std::uint8_t> in,
                           std::span<std::uint64_t> words, const char* what,
                           int src_rank);

// --- unified frontier-exchange interface (DESIGN.md §13) -----------------

/// What one frontier exchange moved, uniformly across decompositions.
struct ExchangeLevelStats {
  graph::codec::Kind codec = graph::codec::Kind::raw;
  std::uint64_t wire_bytes = 0;  ///< measured bytes on the wire
  std::uint64_t raw_bytes = 0;   ///< their uncoded equivalent
  bool bitmap = false;           ///< bitmap family (vs sparse-list family)
  int chunks = 1;  ///< pipeline depth K the exchange rode (bitmap family)
  int algo = -1;   ///< rt::AllgatherAlgo as int; -1 = shared-memory plan
};

/// The communication step between two BFS levels, behind which both the
/// 1-D hybrid and the 2-D grid decomposition sit: rebuild the next level's
/// frontier inputs from the per-rank outputs of the level just finished.
/// SPMD — every live rank calls exchange() with the same (cur, next)
/// directions (0 = top-down, 1 = bottom-up); `parts` lists the caller's
/// partitions (own plus adopted). Implementations route every leg through
/// the shared codec gate and K-chunk wire/decode pipelining.
class FrontierExchange {
 public:
  virtual ~FrontierExchange() = default;
  virtual const char* name() const = 0;
  virtual ExchangeLevelStats exchange(rt::Proc& p, int cur_dir, int next_dir,
                                      std::span<const int> parts) = 0;
};

/// The 1-D hybrid's exchange: sparse-list allgatherv before a top-down
/// level, the two bitmap allgathers of Fig. 1 before a bottom-up level
/// (materializing the discovered list into out bits on a td -> bu switch).
class OneDExchange final : public FrontierExchange {
 public:
  /// `tuner` (optional): the per-rank online controller for K and the
  /// allgather algorithm; identical state on every rank (DESIGN.md §15).
  OneDExchange(const graph::DistGraph& dg, DistState& st, const UnitCosts& u,
               tune::ExchangeTuner* tuner = nullptr)
      : dg_(dg), st_(st), u_(u), tuner_(tuner) {}
  const char* name() const override { return "1d"; }
  ExchangeLevelStats exchange(rt::Proc& p, int cur_dir, int next_dir,
                              std::span<const int> parts) override;

 private:
  const graph::DistGraph& dg_;
  DistState& st_;
  const UnitCosts& u_;
  tune::ExchangeTuner* tuner_ = nullptr;
};

}  // namespace numabfs::bfs
