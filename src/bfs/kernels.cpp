#include "bfs/kernels.hpp"

#include <algorithm>

namespace numabfs::bfs {

LevelResult top_down_level(rt::Proc& p, const graph::LocalGraph& lg,
                           const UnitCosts& u, DistState& st, int part) {
  if (part < 0) part = p.rank;
  LevelResult res;
  auto vis = st.visited(part);
  auto pred = st.pred(part);
  std::uint64_t& unvisited_edges = st.unvisited_edges(part);
  const std::vector<graph::Vertex>& frontier = st.frontier(p.rank);
  std::vector<graph::Vertex>& discovered = st.discovered(part);
  discovered.clear();

  std::uint64_t edges = 0;
  std::uint64_t vis_probes = 0;
  std::uint64_t writes = 0;

  // Top-down works on the *sparse* frontier list (Graph500's queues):
  // for each frontier vertex, claim its unvisited owned children. Work is
  // proportional to the frontier's edges — which is exactly why it loses
  // on the bulge levels and the hybrid switches to bottom-up.
  for (graph::Vertex key : frontier) {
    const auto it =
        std::lower_bound(lg.td_keys.begin(), lg.td_keys.end(), key);
    if (it == lg.td_keys.end() || *it != key) continue;
    const auto k = static_cast<std::size_t>(it - lg.td_keys.begin());
    for (graph::Vertex v : lg.td_group(k)) {
      ++edges;
      const std::uint64_t lv = v - lg.vbegin;
      ++vis_probes;
      if (vis.get(lv)) continue;
      vis.set(lv);
      pred[lv] = key;
      discovered.push_back(v);
      writes += 2;
      const std::uint64_t deg = lg.degree(lv);
      ++res.discovered;
      res.discovered_edges += deg;
      unvisited_edges -= deg;
    }
  }

  const std::uint64_t dprobes = lg.take_patch_reads();
  auto& cnt = p.prof.counters();
  cnt.edges_scanned += edges;
  cnt.queue_writes += writes;
  cnt.vertices_visited += res.discovered;
  cnt.delta_probes += dprobes;

  const double ns = (static_cast<double>(frontier.size()) * u.group_search_ns +
                     static_cast<double>(edges) * u.edge_scan_ns +
                     static_cast<double>(vis_probes) * u.visited_probe_ns +
                     static_cast<double>(writes) * u.write_ns +
                     static_cast<double>(dprobes) * u.delta_probe_ns) /
                    u.omp_div;
  p.charge(sim::Phase::td_comp, ns);
  return res;
}

LevelResult bottom_up_level(rt::Proc& p, const graph::LocalGraph& lg,
                            const UnitCosts& u, DistState& st, int part) {
  if (part < 0) part = p.rank;
  LevelResult res;
  auto in_q = st.in_queue(p.rank);
  auto in_s = st.in_summary(p.rank);
  auto out_q = st.out_queue(part);
  auto out_s = st.out_summary(part);
  auto vis = st.visited(part);
  auto pred = st.pred(part);
  std::uint64_t& unvisited_edges = st.unvisited_edges(part);
  std::vector<graph::Vertex>& discovered = st.discovered(part);
  discovered.clear();

  std::uint64_t edges = 0;
  std::uint64_t summary_probes = 0;
  std::uint64_t zero_skips = 0;
  std::uint64_t in_probes = 0;
  std::uint64_t hits = 0;

  const std::uint64_t owned = lg.owned();
  const std::uint64_t owned_words = (owned + 63) / 64;
  auto vis_words = vis.words();
  for (std::uint64_t wi = 0; wi < owned_words; ++wi) {
    // Snapshot: bits set during this pass must not suppress processing of
    // vertices that were unvisited when the level began.
    std::uint64_t unvisited = ~vis_words[wi];
    if ((wi + 1) * 64 > owned) {
      const std::uint64_t tail = owned & 63;
      if (tail) unvisited &= (1ull << tail) - 1;
    }
    while (unvisited) {
      const std::uint64_t lv = wi * 64 +
                               static_cast<std::uint64_t>(
                                   std::countr_zero(unvisited));
      unvisited &= unvisited - 1;
      for (graph::Vertex uu : lg.bu_neighbors(lv)) {
        ++edges;
        ++summary_probes;
        if (!in_s.covers(uu)) {
          // Summary zero: the whole block of in_queue is provably zero;
          // the expensive in_queue probe is skipped (the paper's Fig. 8
          // mechanism).
          ++zero_skips;
          continue;
        }
        ++in_probes;
        if (in_q.get(uu)) {
          const graph::Vertex v = static_cast<graph::Vertex>(lg.vbegin + lv);
          vis.set(lv);
          pred[lv] = uu;
          out_q.set(v);
          out_s.mark(v);
          discovered.push_back(v);
          ++hits;
          const std::uint64_t deg = lg.degree(lv);
          ++res.discovered;
          res.discovered_edges += deg;
          unvisited_edges -= deg;
          break;  // a parent was found; stop fighting over this child
        }
      }
    }
  }

  const std::uint64_t dprobes = lg.take_patch_reads();
  auto& cnt = p.prof.counters();
  cnt.edges_scanned += edges;
  cnt.summary_probes += summary_probes;
  cnt.summary_zero_skips += zero_skips;
  cnt.inqueue_probes += in_probes;
  cnt.frontier_hits += hits;
  cnt.queue_writes += hits * 3;
  cnt.vertices_visited += res.discovered;
  cnt.delta_probes += dprobes;

  const double ns =
      u.stream_pass_ns(owned_words) +
      (static_cast<double>(edges) * u.edge_scan_ns +
       static_cast<double>(summary_probes) * u.summary_probe_ns +
       static_cast<double>(in_probes) * u.inqueue_probe_ns +
       static_cast<double>(hits) * 3.0 * u.write_ns +
       static_cast<double>(dprobes) * u.delta_probe_ns) /
          u.omp_div;
  p.charge(sim::Phase::bu_comp, ns);
  return res;
}

}  // namespace numabfs::bfs
