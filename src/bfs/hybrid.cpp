#include "bfs/hybrid.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>

#include "bfs/exchange.hpp"
#include "bfs/kernels.hpp"
#include "faults/errors.hpp"
#include "runtime/allgather.hpp"
#include "tune/controller.hpp"

namespace numabfs::bfs {

namespace {

/// Per-root reset: wipe visited/pred/queues and seed the root.
/// Charged to Phase::other (root setup is excluded from the paper's
/// breakdown but must not be free).
void reset_state(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                 graph::Vertex root, const UnitCosts& u) {
  rt::Cluster& c = *p.cluster;
  const auto& lg = dg.locals[static_cast<size_t>(p.rank)];
  const std::uint64_t block_words = dg.part.block() / 64;
  const std::uint64_t padded_words = st.padded_bits() / 64;

  st.visited(p.rank).reset();
  auto pred = st.pred(p.rank);
  std::fill(pred.begin(), pred.end(), graph::kNoVertex);
  st.unvisited_edges(p.rank) = lg.owned_edges();

  // out structures: only our own chunk can carry stale bits.
  {
    auto out_q = st.out_queue(p.rank);
    std::memset(out_q.words().data() +
                    static_cast<std::uint64_t>(p.rank) * block_words,
                0, block_words * 8);
    auto sw = st.out_summary(p.rank).bits().words();
    if (!st.shared_out()) {
      std::memset(sw.data(), 0, sw.size() * 8);
    } else {
      const std::size_t lo = sw.size() * static_cast<std::size_t>(p.local) /
                             static_cast<std::size_t>(p.ppn);
      const std::size_t hi =
          sw.size() * static_cast<std::size_t>(p.local + 1) /
          static_cast<std::size_t>(p.ppn);
      std::memset(sw.data() + lo, 0, (hi - lo) * 8);
    }
  }

  // in structures: one writer per copy.
  auto in_q = st.in_queue(p.rank);
  auto in_s = st.in_summary(p.rank);
  if (!st.shared_in() || p.is_node_leader()) {
    in_q.reset();
    auto sw = in_s.bits().words();
    std::memset(sw.data(), 0, sw.size() * 8);
    in_q.set(root);
    in_s.mark(root);
  }

  // Root bookkeeping at the owner; every rank seeds its frontier list.
  auto& frontier = st.frontier(p.rank);
  frontier.clear();
  frontier.push_back(root);
  st.discovered(p.rank).clear();
  if (root >= lg.vbegin && root < lg.vend) {
    const std::uint64_t lv = root - lg.vbegin;
    st.visited(p.rank).set(lv);
    pred[lv] = root;
    st.unvisited_edges(p.rank) -= lg.degree(lv);
  }

  p.charge(sim::Phase::other, u.stream_pass_ns(2 * padded_words + block_words));
  p.barrier(c.world(), sim::Phase::other);
}

/// Level-boundary checkpoint of one partition's mutable traversal state.
/// (The frontier inputs need no checkpoint: a crash happens at a level
/// start, after the exchange rebuilt them on every survivor.)
struct PartCheckpoint {
  std::vector<std::uint64_t> visited;
  std::vector<graph::Vertex> pred;
  std::uint64_t unvisited_edges = 0;
};

/// Words streamed by one checkpoint save/restore of partition `part`.
std::uint64_t ckpt_words(DistState& st, int part) {
  return st.visited(part).words().size() +
         st.pred(part).size() * sizeof(graph::Vertex) / 8;
}

void save_checkpoint(rt::Proc& p, DistState& st, const UnitCosts& u, int part,
                     PartCheckpoint& ck) {
  auto vw = st.visited(part).words();
  ck.visited.assign(vw.begin(), vw.end());
  auto pr = st.pred(part);
  ck.pred.assign(pr.begin(), pr.end());
  ck.unvisited_edges = st.unvisited_edges(part);
  p.charge(sim::Phase::other, u.stream_pass_ns(ckpt_words(st, part)));
}

void restore_checkpoint(rt::Proc& p, DistState& st, const UnitCosts& u,
                        int part, const PartCheckpoint& ck) {
  auto vw = st.visited(part).words();
  std::memcpy(vw.data(), ck.visited.data(), ck.visited.size() * 8);
  auto pr = st.pred(part);
  std::memcpy(pr.data(), ck.pred.data(), ck.pred.size() * sizeof(graph::Vertex));
  st.unvisited_edges(part) = ck.unvisited_edges;
  st.discovered(part).clear();
  p.charge(sim::Phase::other, u.stream_pass_ns(ckpt_words(st, part)));
}

}  // namespace

BfsRunResult run_bfs(rt::Cluster& c, const graph::DistGraph& dg, DistState& st,
                     graph::Vertex root) {
  const Config& cfg = st.config();
  BfsRunResult out;

  // Shape-derived unit costs (identical on every rank up to owned sizes;
  // we use rank-0 shapes for the shared structures, per-rank for owned).
  std::vector<UnitCosts> costs(static_cast<size_t>(c.nranks()));
  for (int r = 0; r < c.nranks(); ++r) {
    const auto& lg = dg.locals[static_cast<size_t>(r)];
    StructSizes sz;
    sz.in_queue_bytes = st.padded_bits() / 8;
    sz.in_summary_bytes = (st.summary_bits() + 7) / 8;
    sz.owned_bytes = lg.owned() / 8 + lg.owned() * sizeof(graph::Vertex);
    sz.td_group_count = std::max<std::uint64_t>(1, lg.td_keys.size());
    costs[static_cast<size_t>(r)] = unit_costs(c, cfg, sz);
  }

  struct Shared {
    std::vector<int> directions;
    int td_ex = 0, bu_ex = 0;
    std::uint64_t visited = 1;  // root
    std::vector<std::uint64_t> frontier_sizes;  // per level (input frontier)
    std::vector<std::uint64_t> discovered;      // per level
    std::vector<int> ex_codec;   // codec of the exchange after each level
    std::vector<int> ex_chunks;  // its pipeline depth K (-1: none/sparse)
    std::vector<int> ex_algo;    // its allgather algo (-1: none/shared)
    int dir_switches = 0, k_switches = 0, ag_switches = 0;
  } shared;

  // Host-side per-rank, per-level measurements (no virtual-time impact).
  struct RankLevel {
    std::uint64_t edges = 0, skips = 0, probes = 0;
    std::uint64_t wire = 0, wire_raw = 0;
    double comp_ns = 0, comm_ns = 0;
  };
  std::vector<std::vector<RankLevel>> rank_levels(
      static_cast<size_t>(c.nranks()));

  // Fault tolerance: a scheduled crash without checkpointing cannot be
  // survived — refuse it up front with a diagnosable error (the fault plan
  // is known before the traversal starts).
  faults::FaultInjector* inj = c.injector();
  if (inj != nullptr && inj->has_crashes() && !inj->checkpointing())
    throw faults::FaultError(
        "run_bfs: the fault plan schedules rank crashes but checkpointing is "
        "disabled (checkpoint:off); the traversal could not be recovered");
  const bool ckpt_on = inj != nullptr && inj->checkpointing();
  // Indexed by partition; ckpt[q] is written by q's current owner only, and
  // crash detection is barrier-ordered, so adoption hand-off is race-free.
  std::vector<PartCheckpoint> ckpt(
      ckpt_on ? static_cast<size_t>(c.nranks()) : 0);
  std::atomic<int> recoveries{0};

  c.run([&](rt::Proc& p) {
    const UnitCosts& u = costs[static_cast<size_t>(p.rank)];
    rt::Comm& world = c.world();
    const auto& lg = dg.locals[static_cast<size_t>(p.rank)];

    // Online controllers (DESIGN.md §15): per-rank objects, but every input
    // they consume is allreduced or rank-uniform, so all ranks step
    // identical state and reach identical decisions. With every tune flag
    // off nothing is constructed and no extra reduction runs — the run is
    // bit-identical to a controller-free build.
    const tune::KnobPolicy pol{cfg.tune.hysteresis, cfg.tune.dwell};
    std::optional<tune::DirectionController> dctl;
    if (cfg.tune.adapt_direction && cfg.direction == Direction::hybrid)
      dctl.emplace(cfg.tune.window, pol);
    std::optional<tune::ExchangeTuner> xtuner;
    if (cfg.tune.adapt_chunks || cfg.tune.adapt_allgather)
      xtuner.emplace(cfg.tune.adapt_chunks, cfg.tune.adapt_allgather,
                     cfg.tune.window, pol, std::max(1, cfg.exchange_chunks),
                     static_cast<int>(cfg.base_algo));
    OneDExchange exchanger(dg, st, u, xtuner ? &*xtuner : nullptr);
    // The partitions this rank executes: its own, plus any adopted from
    // crashed ranks. Recomputed whenever a death is detected.
    std::vector<int> parts{p.rank};

    reset_state(p, dg, st, root, u);

    const std::uint64_t n = dg.n;
    const bool root_owned = root >= lg.vbegin && root < lg.vend;
    std::uint64_t root_deg = root_owned ? lg.degree(root - lg.vbegin) : 0;
    // Frontier stats of "level -1": the root alone.
    std::uint64_t frontier_edges =
        rt::allreduce_sum(p, world, root_deg, sim::Phase::stall);

    int dir = cfg.direction == Direction::bottom_up_only ? 1 : 0;
    // The very first level profits from knowing the root's degree.
    if (cfg.direction == Direction::hybrid) {
      const std::uint64_t rem = rt::allreduce_sum(
          p, world, st.unvisited_edges(p.rank), sim::Phase::stall);
      if (static_cast<double>(frontier_edges) >
          static_cast<double>(rem) / cfg.alpha)
        dir = 1;
    }

    std::uint64_t prev_nf = 1;  // the root seeds level 0's frontier
    std::uint64_t visited_total = 1;  // rank-uniform (allreduced nf sums)
    int level = 0;
    int handled_dead = 0;
    for (;;) {
      const double level_t0 = p.clock.now_ns();
      // Level boundary: checkpoint every owned partition, *then* die if
      // this rank's crash is scheduled here — the fail-stop model is "the
      // boundary checkpoint completed, the crash hit afterwards", so the
      // adopter always finds start-of-level state.
      if (ckpt_on)
        for (int q : parts)
          save_checkpoint(p, st, costs[static_cast<size_t>(q)], q,
                          ckpt[static_cast<size_t>(q)]);
      if (inj != nullptr && inj->crash_level(p.rank) == level) {
        inj->mark_dead(p.rank);
        c.retire_rank(p);  // survivors' barriers stop expecting us
        return;
      }

      const auto& cnt0 = p.prof.counters();
      const std::uint64_t edges0 = cnt0.edges_scanned;
      const std::uint64_t skips0 = cnt0.summary_zero_skips;
      const std::uint64_t probes0 = cnt0.summary_probes;
      const std::uint64_t wire0 = cnt0.bytes_intra_node + cnt0.bytes_inter_node;
      const std::uint64_t raw0 = cnt0.bytes_raw_equiv;
      const double comp0 = p.prof.get(sim::Phase::td_comp) +
                           p.prof.get(sim::Phase::bu_comp);
      const double comm0 = p.prof.comm_ns();

      LevelResult lr;
      std::uint64_t my_rem = 0;
      const double kernel_t0 = p.clock.now_ns();
      for (int q : parts) {
        const auto& qlg = dg.locals[static_cast<size_t>(q)];
        const UnitCosts& qu = costs[static_cast<size_t>(q)];
        const LevelResult qr = dir == 0 ? top_down_level(p, qlg, qu, st, q)
                                        : bottom_up_level(p, qlg, qu, st, q);
        lr.discovered += qr.discovered;
        lr.discovered_edges += qr.discovered_edges;
        my_rem += st.unvisited_edges(q);
      }
      const double kernel_ns = p.clock.now_ns() - kernel_t0;
      const std::uint64_t kernel_edges =
          p.prof.counters().edges_scanned - edges0;
      p.trace_span(obs::kCatBfs, dir == 0 ? "td_kernel" : "bu_kernel",
                   kernel_t0, p.clock.now_ns(),
                   obs::kv("level", level) + "," +
                       obs::kv("discovered", lr.discovered));

      const std::uint64_t nf =
          rt::allreduce_sum(p, world, lr.discovered, sim::Phase::stall);
      const std::uint64_t mf = rt::allreduce_sum(p, world, lr.discovered_edges,
                                                 sim::Phase::stall);
      const std::uint64_t rem =
          rt::allreduce_sum(p, world, my_rem, sim::Phase::stall);

      // Crash detection point. A rank dies at the start of a level, before
      // contributing to this level's kernels or reductions; the barriers
      // above give every survivor a consistent view of the death. Recover
      // by adopting the dead partitions, rolling every owned partition
      // back to the boundary checkpoint, and re-running the level.
      if (inj != nullptr && inj->dead_count() > handled_dead) {
        handled_dead = inj->dead_count();
        const size_t owned_before = parts.size();
        parts = inj->parts_of(p.rank);
        if (parts.size() > owned_before)
          p.prof.counters().adoptions += parts.size() - owned_before;
        const double rb_t0 = p.clock.now_ns();
        for (int q : parts)
          restore_checkpoint(p, st, costs[static_cast<size_t>(q)], q,
                             ckpt[static_cast<size_t>(q)]);
        if (p.rank == inj->lowest_live())
          recoveries.fetch_add(1, std::memory_order_relaxed);
        p.barrier(world, sim::Phase::stall);  // rollback complete everywhere
        p.trace_span(obs::kCatBfs, "recovery.rollback", rb_t0,
                     p.clock.now_ns(),
                     obs::kv("level", level) + "," +
                         obs::kv("parts", static_cast<int>(parts.size())));
        continue;  // re-run the level (level/dir/prev_nf unchanged)
      }

      // Completed-level accounting for the direction controller: the level
      // survived crash detection, so its measurements are final. The two
      // extra allreduces run only when the controller is engaged, keeping
      // controller-off runs free of any perturbation.
      const std::uint64_t unvisited_before = n - visited_total;
      visited_total += nf;
      if (dctl) {
        const std::uint64_t lvl_ns_sum = rt::allreduce_sum(
            p, world, static_cast<std::uint64_t>(std::llround(kernel_ns)),
            sim::Phase::stall);
        const std::uint64_t lvl_edges =
            rt::allreduce_sum(p, world, kernel_edges, sim::Phase::stall);
        dctl->observe(dir, static_cast<double>(lvl_ns_sum), lvl_edges,
                      unvisited_before);
      }

      const int recorder = inj != nullptr ? inj->lowest_live() : 0;
      if (p.rank == recorder) {
        shared.directions.push_back(dir);
        shared.visited += nf;
        shared.frontier_sizes.push_back(prev_nf);
        shared.discovered.push_back(nf);
      }
      const std::uint64_t frontier_prev_count = prev_nf;
      prev_nf = nf;

      const auto record_level = [&] {
        const auto& cnt1 = p.prof.counters();
        RankLevel rl;
        rl.edges = cnt1.edges_scanned - edges0;
        rl.skips = cnt1.summary_zero_skips - skips0;
        rl.probes = cnt1.summary_probes - probes0;
        rl.wire = cnt1.bytes_intra_node + cnt1.bytes_inter_node - wire0;
        rl.wire_raw = cnt1.bytes_raw_equiv - raw0;
        rl.comp_ns = p.prof.get(sim::Phase::td_comp) +
                     p.prof.get(sim::Phase::bu_comp) - comp0;
        rl.comm_ns = p.prof.comm_ns() - comm0;
        rank_levels[static_cast<size_t>(p.rank)].push_back(rl);
      };
      if (nf == 0) {
        if (p.rank == recorder) {
          shared.ex_codec.push_back(-1);  // no exchange
          shared.ex_chunks.push_back(-1);
          shared.ex_algo.push_back(-1);
        }
        record_level();
        p.trace_span(obs::kCatBfs, "level " + std::to_string(level), level_t0,
                     p.clock.now_ns(),
                     obs::kv("dir", dir == 0 ? "td" : "bu") + "," +
                         obs::kv("discovered", nf));
        break;
      }

      // Decide the next level's direction first: it selects the exchange.
      // td -> bu additionally requires a *growing* frontier (Beamer): at
      // the tail the remaining-edge denominator collapses and the ratio
      // test alone would bounce back into bottom-up for a dying frontier.
      const bool growing = nf > frontier_prev_count;
      int next = dir;
      if (cfg.direction == Direction::hybrid) {
        if (dctl) {
          // Measured-rate choice once both directions have history; the
          // static Beamer thresholds until then (controller.hpp).
          next = dctl->decide(dir, growing, nf, mf, rem, n - visited_total, n,
                              cfg.alpha, cfg.beta);
        } else if (dir == 0 && growing &&
                   static_cast<double>(mf) >
                       static_cast<double>(rem) / cfg.alpha) {
          next = 1;
        } else if (dir == 1 && static_cast<double>(nf) <
                                   static_cast<double>(n) / cfg.beta) {
          next = 0;
        }
      }

      // The bitmap allgathers belong to the bottom-up procedure (Fig. 1);
      // the sparse list exchange is the top-down queue handoff. Both sit
      // behind the unified FrontierExchange interface (DESIGN.md §13).
      const ExchangeLevelStats ex = exchanger.exchange(p, dir, next, parts);
      p.trace_instant(obs::kCatBfs, "codec.gate",
                      obs::kv("level", level) + "," +
                          obs::kv("kind", graph::codec::to_string(ex.codec)) +
                          "," + obs::kv("wire_bytes", ex.wire_bytes) + "," +
                          obs::kv("raw_bytes", ex.raw_bytes));
      if (p.rank == recorder) {
        (ex.bitmap ? shared.bu_ex : shared.td_ex)++;
        shared.ex_codec.push_back(static_cast<int>(ex.codec));
        shared.ex_chunks.push_back(ex.bitmap ? ex.chunks : -1);
        shared.ex_algo.push_back(ex.bitmap ? ex.algo : -1);
      }
      record_level();
      p.trace_span(obs::kCatBfs, "level " + std::to_string(level), level_t0,
                   p.clock.now_ns(),
                   obs::kv("dir", dir == 0 ? "td" : "bu") + "," +
                       obs::kv("discovered", nf));
      dir = next;
      ++level;
    }

    const int recorder = inj != nullptr ? inj->lowest_live() : 0;
    if (p.rank == recorder) {
      shared.dir_switches = dctl ? dctl->switches() : 0;
      shared.k_switches = xtuner ? xtuner->k_switches() : 0;
      shared.ag_switches = xtuner ? xtuner->algo_switches() : 0;
    }
    p.barrier(world, sim::Phase::stall);
  });

  // Aggregate.
  const auto& profiles = c.profiles();
  double max_total = 0;
  for (const auto& pr : profiles) max_total = std::max(max_total, pr.total_ns());
  out.time_ns = max_total;
  out.visited = shared.visited;
  out.directions = shared.directions;
  out.levels = static_cast<int>(shared.directions.size());
  for (int d : shared.directions) (d == 0 ? out.td_levels : out.bu_levels)++;
  out.td_exchanges = shared.td_ex;
  out.bu_exchanges = shared.bu_ex;
  out.recoveries = recoveries.load(std::memory_order_relaxed);
  out.ranks_lost = inj != nullptr ? inj->dead_count() : 0;
  out.tune_direction_switches = shared.dir_switches;
  out.tune_chunk_switches = shared.k_switches;
  out.tune_allgather_switches = shared.ag_switches;

  sim::PhaseProfile sum;
  sim::PhaseProfile mx;
  for (const auto& pr : profiles) {
    sum += pr;
    mx.max_with(pr);
  }
  out.profile_avg = sum.scaled(1.0 / static_cast<double>(profiles.size()));
  // scaled() multiplies times only; counters in profile_avg stay summed.
  out.profile_avg.counters() = sum.counters();
  out.profile_max = mx;

  std::uint64_t traversed = 0;
  for (int r = 0; r < c.nranks(); ++r)
    traversed += dg.locals[static_cast<size_t>(r)].owned_edges() -
                 st.unvisited_edges(r);
  out.traversed_directed_edges = traversed;

  // Assemble the per-level trace from the host-side rank records.
  out.trace.reserve(shared.directions.size());
  for (size_t lvl = 0; lvl < shared.directions.size(); ++lvl) {
    LevelTrace t;
    t.level = static_cast<int>(lvl);
    t.direction = shared.directions[lvl];
    t.frontier_vertices = shared.frontier_sizes[lvl];
    t.discovered = shared.discovered[lvl];
    if (lvl < shared.ex_codec.size()) t.exchange_codec = shared.ex_codec[lvl];
    if (lvl < shared.ex_chunks.size()) t.exchange_chunks = shared.ex_chunks[lvl];
    if (lvl < shared.ex_algo.size()) t.exchange_algo = shared.ex_algo[lvl];
    for (const auto& rl : rank_levels) {
      if (lvl >= rl.size()) continue;
      t.edges_scanned += rl[lvl].edges;
      t.summary_zero_skips += rl[lvl].skips;
      t.summary_probes += rl[lvl].probes;
      t.wire_bytes += rl[lvl].wire;
      t.wire_raw_bytes += rl[lvl].wire_raw;
      t.comp_ns += rl[lvl].comp_ns;
      t.comm_ns += rl[lvl].comm_ns;
    }
    t.comp_ns /= static_cast<double>(c.nranks());
    t.comm_ns /= static_cast<double>(c.nranks());
    out.trace.push_back(t);
  }
  return out;
}

std::vector<graph::Vertex> gather_parents(const graph::DistGraph& dg,
                                          DistState& st) {
  std::vector<graph::Vertex> parent(dg.n, graph::kNoVertex);
  for (int r = 0; r < dg.part.np(); ++r) {
    const auto pred = st.pred(r);
    const std::uint64_t vb = dg.part.begin(r);
    for (std::size_t i = 0; i < pred.size(); ++i) parent[vb + i] = pred[i];
  }
  return parent;
}

}  // namespace numabfs::bfs
