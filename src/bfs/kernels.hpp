#pragma once
/// \file kernels.hpp
/// The per-level traversal kernels of the hybrid BFS (Fig. 1):
///  - top-down: scan the frontier bitmap; for each frontier vertex, claim
///    its unvisited owned neighbors;
///  - bottom-up: for each unvisited owned vertex, search its neighbors for
///    a parent in the frontier, probing in_queue_summary first so zero
///    blocks skip the expensive in_queue access (Section II.B.2).
///
/// Kernels measure real event counts on the real bitmaps and charge
/// `counts x UnitCosts` to the rank's virtual clock.

#include <cstdint>

#include "bfs/costs.hpp"
#include "bfs/state.hpp"
#include "graph/dist_graph.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs {

struct LevelResult {
  std::uint64_t discovered = 0;        ///< owned vertices discovered
  std::uint64_t discovered_edges = 0;  ///< sum of their degrees
};

/// `part` selects which rank's partition state (visited/pred/out queue/
/// discovered) the kernel operates on; -1 means the caller's own. Passing a
/// crashed rank's partition (with its LocalGraph as `lg`) is how an adopter
/// executes adopted work during fault recovery — the frontier inputs
/// (frontier list / in_queue / in_summary) are always read through the
/// caller's own views, since they are replicated.
LevelResult top_down_level(rt::Proc& p, const graph::LocalGraph& lg,
                           const UnitCosts& u, DistState& st, int part = -1);

LevelResult bottom_up_level(rt::Proc& p, const graph::LocalGraph& lg,
                            const UnitCosts& u, DistState& st, int part = -1);

}  // namespace numabfs::bfs
