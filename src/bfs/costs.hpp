#pragma once
/// \file costs.hpp
/// Derives the per-event unit costs a BFS kernel charges, from the cluster
/// models and the variant configuration. The kernels *measure* event counts
/// (probes, skips, edge scans, writes) on the real data structures; these
/// unit costs are the only modeled quantities.

#include <cstdint>

#include "bfs/config.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs {

struct UnitCosts {
  double summary_probe_ns = 0;  ///< one in_queue_summary read
  double inqueue_probe_ns = 0;  ///< one in_queue read
  double visited_probe_ns = 0;  ///< one visited/pred access (small, owned)
  double edge_scan_ns = 0;      ///< one adjacency entry (work + stream)
  double word_stream_ns = 0;    ///< one 64-bit word of a sequential pass
  double write_ns = 0;          ///< one pred/out_queue/out_summary update
  double group_search_ns = 0;   ///< one top-down group lookup (binary search)
  /// One delta-dirty row / patched-group access of a merged epoch view
  /// (DESIGN.md §14): the dirty-bitmap probe plus the patch-storage
  /// indirection. Zero-count on frozen graphs, so static runs are
  /// bit-identical with or without the dynamic layer linked in.
  double delta_probe_ns = 0;
  double omp_div = 1.0;         ///< intra-rank parallel efficiency divisor

  /// Convenience: ns for a sequential pass over `words`, already /omp_div.
  double stream_pass_ns(std::uint64_t words) const {
    return static_cast<double>(words) * word_stream_ns / omp_div;
  }
};

/// Sizes of the structures whose residency matters.
struct StructSizes {
  std::uint64_t in_queue_bytes = 0;
  std::uint64_t in_summary_bytes = 0;
  std::uint64_t owned_bytes = 0;     ///< visited+pred footprint per rank
  std::uint64_t td_group_count = 1;  ///< distinct top-down group keys
};

UnitCosts unit_costs(const rt::Cluster& c, const Config& cfg,
                     const StructSizes& sz);

/// Placement of the graph (and private per-rank structures) implied by the
/// execution policy.
sim::Placement graph_placement(const Config& cfg, int ppn);

}  // namespace numabfs::bfs
