#pragma once
/// \file state.hpp
/// Distributed BFS state: the queues/summaries of the paper's Fig. 1, with
/// ownership resolved by the sharing level (Fig. 5). The driver allocates
/// one `DistState` per run; rank threads obtain views through the accessors
/// below, which hand back the private copy or the node-shared segment as
/// the configuration dictates.

#include <cstdint>
#include <span>
#include <vector>

#include "bfs/config.hpp"
#include "graph/bitmap.hpp"
#include "graph/dist_graph.hpp"
#include "graph/summary.hpp"

namespace numabfs::bfs {

class DistState {
 public:
  DistState(const graph::DistGraph& dg, const Config& cfg, int nodes, int ppn);

  /// Whether in_queue/in_queue_summary live in node-shared segments.
  bool shared_in() const { return shared_in_; }
  /// Whether out_queue/out_queue_summary live in node-shared segments.
  bool shared_out() const { return shared_out_; }

  const Config& config() const { return cfg_; }
  std::uint64_t padded_bits() const { return padded_bits_; }
  std::uint64_t summary_bits() const { return summary_bits_; }
  int nodes() const { return nodes_; }
  int ppn() const { return ppn_; }
  int node_of(int rank) const { return rank / ppn_; }

  // --- views (full padded-bit index space) ------------------------------
  graph::BitmapView in_queue(int rank) {
    return (shared_in_ ? node_in_queue_[node_of(rank)] : rank_in_queue_[rank])
        .view();
  }
  graph::SummaryView in_summary(int rank) {
    return (shared_in_ ? node_in_summary_[node_of(rank)]
                       : rank_in_summary_[rank])
        .view();
  }
  graph::BitmapView out_queue(int rank) {
    return (shared_out_ ? node_out_queue_[node_of(rank)]
                        : rank_out_queue_[rank])
        .view();
  }
  graph::SummaryView out_summary(int rank) {
    return (shared_out_ ? node_out_summary_[node_of(rank)]
                        : rank_out_summary_[rank])
        .view();
  }

  // --- owned-range structures (local index space) -----------------------
  graph::BitmapView visited(int rank) { return visited_[rank].view(); }
  std::span<graph::Vertex> pred(int rank) {
    return {pred_[rank].data(), pred_[rank].size()};
  }
  std::uint64_t& unvisited_edges(int rank) { return unvisited_edges_[rank]; }

  // --- sparse frontier (top-down levels) ---------------------------------
  /// The replicated global frontier list consumed by a top-down level
  /// (globally sorted: per-rank discoveries are sorted and rank blocks
  /// ascend). Rebuilt by the sparse exchange.
  std::vector<graph::Vertex>& frontier(int rank) { return frontier_[rank]; }
  /// Owned vertices discovered by this rank in the current level.
  std::vector<graph::Vertex>& discovered(int rank) { return discovered_[rank]; }

  // --- exchange codec scratch (DESIGN.md §10) ---------------------------
  /// Partition `part`'s encoded exchange contribution. Written by the
  /// partition's current owner (its rank, or the adopter after a crash)
  /// between the encode step and the assembly barrier; wire bytes are
  /// *measured* from its real size.
  std::vector<std::uint8_t>& enc_buf(int part) { return enc_buf_[part]; }

 private:
  Config cfg_;
  int nodes_;
  int ppn_;
  bool shared_in_;
  bool shared_out_;
  std::uint64_t padded_bits_;
  std::uint64_t summary_bits_;

  std::vector<graph::Bitmap> rank_in_queue_;
  std::vector<graph::Summary> rank_in_summary_;
  std::vector<graph::Bitmap> rank_out_queue_;
  std::vector<graph::Summary> rank_out_summary_;
  std::vector<graph::Bitmap> node_in_queue_;
  std::vector<graph::Summary> node_in_summary_;
  std::vector<graph::Bitmap> node_out_queue_;
  std::vector<graph::Summary> node_out_summary_;

  std::vector<graph::Bitmap> visited_;
  std::vector<std::vector<graph::Vertex>> pred_;
  std::vector<std::uint64_t> unvisited_edges_;
  std::vector<std::vector<graph::Vertex>> frontier_;
  std::vector<std::vector<graph::Vertex>> discovered_;
  std::vector<std::vector<std::uint8_t>> enc_buf_;
};

}  // namespace numabfs::bfs
