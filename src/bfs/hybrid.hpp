#pragma once
/// \file hybrid.hpp
/// The full hybrid (direction-optimizing) BFS driver — the paper's Fig. 1
/// pipeline: top-down until the frontier is large, bottom-up through the
/// bulge, top-down again for the stragglers; between levels, the two
/// allgathers rebuild the replicated/shared frontier.

#include <cstdint>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/state.hpp"
#include "graph/dist_graph.hpp"
#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::bfs {

/// Per-level trace entry (aggregated over ranks): the raw material of the
/// paper's Fig. 1 narrative — frontier ramp-up, direction switches, and
/// where the time goes level by level.
struct LevelTrace {
  int level = 0;
  int direction = 0;  ///< 0 = top-down, 1 = bottom-up
  std::uint64_t frontier_vertices = 0;  ///< input frontier of this level
  std::uint64_t discovered = 0;         ///< vertices found this level
  std::uint64_t edges_scanned = 0;      ///< summed over ranks
  std::uint64_t summary_zero_skips = 0;
  std::uint64_t summary_probes = 0;
  double comp_ns = 0;  ///< mean over ranks
  double comm_ns = 0;  ///< mean over ranks (exchange after this level)

  /// Codec the exchange after this level rode: graph::codec::Kind as int
  /// (0 raw, 1 sparse, 2 dense); -1 for the final level (no exchange).
  int exchange_codec = -1;
  /// Pipeline depth K of that exchange (-1: final level / sparse family).
  int exchange_chunks = -1;
  /// rt::AllgatherAlgo of that exchange as int (-1: final level, sparse
  /// family, or a shared-memory plan that doesn't consult base_algo).
  int exchange_algo = -1;
  /// Measured wire bytes of this level's exchange, summed over ranks, and
  /// what they would have been uncoded. Equal when the codec is off.
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_raw_bytes = 0;

  /// Measured compression of this level's exchange (1.0 = none).
  double wire_reduction() const {
    return wire_bytes > 0 ? static_cast<double>(wire_raw_bytes) /
                                static_cast<double>(wire_bytes)
                          : 1.0;
  }

  double frontier_density(std::uint64_t n) const {
    return n ? static_cast<double>(frontier_vertices) /
                   static_cast<double>(n)
             : 0.0;
  }
  double skip_rate() const {
    return summary_probes ? static_cast<double>(summary_zero_skips) /
                                static_cast<double>(summary_probes)
                          : 0.0;
  }
};

/// Result of one BFS (one root) on one variant.
struct BfsRunResult {
  double time_ns = 0;            ///< virtual wall time (max over ranks)
  std::uint64_t visited = 0;     ///< vertices in the tree (incl. root)
  std::uint64_t traversed_directed_edges = 0;  ///< adjacency entries covered
  int levels = 0;
  int td_levels = 0;
  int bu_levels = 0;
  int bu_exchanges = 0;  ///< bottom-up communication phases performed
  int td_exchanges = 0;
  int recoveries = 0;  ///< level re-runs after detecting crashed ranks
  int ranks_lost = 0;  ///< ranks dead by the end of the traversal
  std::vector<int> directions;  ///< 0 = top-down, 1 = bottom-up, per level

  /// Online-controller switch counts (0 when Config::tune is all-off).
  int tune_direction_switches = 0;
  int tune_chunk_switches = 0;
  int tune_allgather_switches = 0;

  sim::PhaseProfile profile_avg;  ///< mean over ranks
  sim::PhaseProfile profile_max;  ///< per-phase max over ranks
  std::vector<LevelTrace> trace;  ///< one entry per level

  std::uint64_t traversed_edges() const {
    return traversed_directed_edges / 2;
  }
  double teps() const {
    return time_ns > 0 ? static_cast<double>(traversed_edges()) /
                             (time_ns * 1e-9)
                       : 0.0;
  }
  /// Mean duration of one bottom-up communication phase (Figs. 12/13).
  double avg_bu_comm_ns() const {
    return bu_exchanges > 0 ? profile_avg.get(sim::Phase::bu_comm) /
                                  bu_exchanges
                            : 0.0;
  }
};

/// Run one BFS from `root`. `st` must have been built for (dg, cfg) and the
/// cluster's shape; it is reset internally, so it can be reused across
/// roots.
///
/// Fault tolerance: when the cluster carries a fault injector whose plan
/// schedules rank crashes, level-boundary checkpoints (visited/pred/
/// unvisited-edge counts per partition) are saved, and a crash is handled
/// by the survivors: the dead rank's partition is adopted by the lowest
/// live rank on its node (else the lowest live rank overall), checkpoints
/// are rolled back, and the interrupted level is re-executed — the
/// traversal completes and validates despite the loss. Scheduling a crash
/// with checkpointing explicitly disabled (`checkpoint:off`) raises
/// faults::FaultError up front: the run could not survive it.
BfsRunResult run_bfs(rt::Cluster& c, const graph::DistGraph& dg, DistState& st,
                     graph::Vertex root);

/// Assemble the global parent array from the per-rank pred slices
/// (for validation against graph::validate_bfs_tree).
std::vector<graph::Vertex> gather_parents(const graph::DistGraph& dg,
                                          DistState& st);

}  // namespace numabfs::bfs
