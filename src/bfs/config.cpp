#include "bfs/config.hpp"

#include <sstream>

namespace numabfs::bfs {

const char* to_string(BindMode b) {
  switch (b) {
    case BindMode::noflag: return "noflag";
    case BindMode::interleave: return "interleave";
    case BindMode::bind_to_socket: return "bind-to-socket";
  }
  return "?";
}

const char* to_string(Sharing s) {
  switch (s) {
    case Sharing::none: return "none";
    case Sharing::in_queue: return "in_queue";
    case Sharing::all: return "all";
  }
  return "?";
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::hybrid: return "hybrid";
    case Direction::top_down_only: return "top-down";
    case Direction::bottom_up_only: return "bottom-up";
  }
  return "?";
}

const char* to_string(CodecMode m) {
  switch (m) {
    case CodecMode::off: return "off";
    case CodecMode::gate: return "gate";
    case CodecMode::force_sparse: return "force-sparse";
    case CodecMode::force_dense: return "force-dense";
  }
  return "?";
}

std::string Config::validate() const {
  if (summary_granularity < 1) return "summary_granularity must be >= 1";
  if (parallel_allgather && sharing != Sharing::all)
    return "parallel_allgather requires sharing == all "
           "(set sharing=all or drop parallel_allgather)";
  if (alpha <= 0.0 || beta <= 0.0) return "alpha/beta must be positive";
  if (exchange_chunks < 1 || exchange_chunks > 4096)
    return "exchange_chunks must be in [1, 4096]";
  if (exchange_chunks > 1 && codec == CodecMode::off)
    return "exchange_chunks > 1 requires an active codec: the raw exchange "
           "has no decode stage to overlap (set codec=gate or exchange_chunks=1)";
  if (tune.window < 1) return "tune.window must be >= 1";
  if (tune.hysteresis < 0.0 || tune.hysteresis >= 1.0)
    return "tune.hysteresis must be in [0, 1)";
  if (tune.dwell < 0) return "tune.dwell must be >= 0";
  if (tune.adapt_chunks && codec == CodecMode::off)
    return "tune.adapt_chunks requires an active codec: there is no pipeline "
           "depth to adapt on the raw exchange (set codec=gate)";
  if (tune.adapt_allgather && sharing != Sharing::none)
    return "tune.adapt_allgather requires sharing == none: shared-memory "
           "exchange plans do not consult base_algo";
  return {};
}

std::string Config::name() const {
  std::ostringstream os;
  os << to_string(bind) << "/share-" << to_string(sharing);
  if (parallel_allgather) os << "/par-ag";
  os << "/g" << summary_granularity;
  if (codec != CodecMode::off) {
    os << "/codec-" << to_string(codec);
    if (exchange_chunks > 1) os << "-k" << exchange_chunks;
  }
  if (direction != Direction::hybrid) os << "/" << to_string(direction);
  return os.str();
}

Config original() { return Config{}; }

Config share_in_queue() {
  Config c;
  c.sharing = Sharing::in_queue;
  return c;
}

Config share_all() {
  Config c;
  c.sharing = Sharing::all;
  return c;
}

Config par_allgather() {
  Config c = share_all();
  c.parallel_allgather = true;
  return c;
}

Config granularity(std::uint64_t g) {
  Config c = par_allgather();
  c.summary_granularity = g;
  return c;
}

Config compressed(std::uint64_t g, int chunks) {
  Config c = granularity(g);
  c.codec = CodecMode::gate;
  c.exchange_chunks = chunks;
  return c;
}

}  // namespace numabfs::bfs
