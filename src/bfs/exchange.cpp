#include "bfs/exchange.hpp"

#include <cstring>

#include "runtime/coll_model.hpp"

namespace numabfs::bfs {

namespace cm = rt::coll_model;

void clear_out_bits(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                    const UnitCosts& u, sim::Phase phase) {
  const std::uint64_t block_words = dg.part.block() / 64;
  auto out_q = st.out_queue(p.rank);
  const std::uint64_t off = static_cast<std::uint64_t>(p.rank) * block_words;
  std::memset(out_q.words().data() + off, 0, block_words * 8);

  auto out_s = st.out_summary(p.rank);
  auto sw = out_s.bits().words();
  if (!st.shared_out()) {
    // Private: only our own range was ever set; the whole map is tiny.
    std::memset(sw.data(), 0, sw.size() * 8);
    p.charge(phase, u.stream_pass_ns(block_words + sw.size()));
  } else {
    // Shared: the node's ranks wipe disjoint word slices of the node map.
    const int ppn = p.ppn;
    const std::size_t lo = sw.size() * static_cast<std::size_t>(p.local) /
                           static_cast<std::size_t>(ppn);
    const std::size_t hi = sw.size() * static_cast<std::size_t>(p.local + 1) /
                           static_cast<std::size_t>(ppn);
    std::memset(sw.data() + lo, 0, (hi - lo) * 8);
    p.charge(phase, u.stream_pass_ns(block_words + (hi - lo)));
  }
}

void discovered_to_out_bits(rt::Proc& p, DistState& st, const UnitCosts& u) {
  auto out_q = st.out_queue(p.rank);
  auto out_s = st.out_summary(p.rank);
  const auto& discovered = st.discovered(p.rank);
  for (graph::Vertex v : discovered) {
    out_q.set(v);
    out_s.mark(v);
  }
  p.charge(sim::Phase::switch_conv,
           static_cast<double>(discovered.size()) * 2.0 * u.write_ns /
               u.omp_div);
}

void exchange_sparse(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                     const UnitCosts& u, sim::Phase phase, bool wipe_out) {
  rt::Cluster& c = *p.cluster;
  rt::Comm& world = c.world();
  const int np = c.nranks();

  const auto& mine = st.discovered(p.rank);
  world.publish_ptr(p.rank, mine.data());
  world.publish_val(p.rank, mine.size());
  p.barrier(world, sim::Phase::stall);  // lists ready

  auto& frontier = st.frontier(p.rank);
  frontier.clear();
  std::uint64_t intra_bytes = 0, inter_bytes = 0;
  for (int r = 0; r < np; ++r) {
    const std::uint64_t count = world.val(r);
    const auto* src = static_cast<const graph::Vertex*>(world.ptr(r));
    frontier.insert(frontier.end(), src, src + count);
    if (r == p.rank) continue;
    const std::uint64_t bytes = count * sizeof(graph::Vertex);
    if (c.node_of(r) == p.node)
      intra_bytes += bytes;
    else
      inter_bytes += bytes;
  }
  p.prof.counters().bytes_intra_node += intra_bytes;
  p.prof.counters().bytes_inter_node += inter_bytes;

  const auto& cp = c.params();
  const double t =
      static_cast<double>(np - 1) * cp.nic_msg_latency_ns +
      static_cast<double>(inter_bytes) /
          c.link().nic_flow_bw(1, cm::min_nic_factor(c)) +
      static_cast<double>(intra_bytes) * cp.cico_factor /
          c.link().shm_flow_bw(1);
  p.charge(phase, t);

  if (wipe_out) clear_out_bits(p, dg, st, u, sim::Phase::switch_conv);
  p.barrier(world, phase);
}

ExchangeTimes exchange_frontier(rt::Proc& p, const graph::DistGraph& dg,
                                DistState& st, const UnitCosts& u,
                                sim::Phase phase) {
  rt::Cluster& c = *p.cluster;
  rt::Comm& world = c.world();
  rt::Comm& node = c.node_comm(p.node);
  const Config& cfg = st.config();
  const int np = c.nranks();
  const int ppn = c.ppn();

  const std::uint64_t block_bits = dg.part.block();
  const std::uint64_t block_words = block_bits / 64;
  const std::uint64_t g = cfg.summary_granularity;
  const std::uint64_t summary_bits = st.summary_bits();
  const std::uint64_t qchunk_bytes = block_words * 8;
  const std::uint64_t schunk_bytes = std::max<std::uint64_t>(1, block_bits / (8 * g));

  // --- data-plumbing helpers (real movement; time is modeled below) -----
  const auto copy_queue_chunk = [&](graph::BitmapView dst, int src_rank) {
    auto src = st.out_queue(src_rank).words();
    const std::uint64_t off = static_cast<std::uint64_t>(src_rank) * block_words;
    std::memcpy(dst.words().data() + off, src.data() + off, block_words * 8);
    if (src_rank == p.rank) return;  // own chunk: no transmission (Eq. (1))
    const std::uint64_t bytes = block_words * 8;
    if (c.node_of(src_rank) == p.node)
      p.prof.counters().bytes_intra_node += bytes;
    else
      p.prof.counters().bytes_inter_node += bytes;
  };
  const auto copy_summary_range = [&](graph::SummaryView dst, int src_rank,
                                      bool atomic) {
    const std::uint64_t sb =
        static_cast<std::uint64_t>(src_rank) * block_bits / g;
    const std::uint64_t se = std::min(
        summary_bits,
        (static_cast<std::uint64_t>(src_rank + 1) * block_bits + g - 1) / g);
    if (sb >= se) return;
    auto src_s = st.out_summary(src_rank);
    graph::copy_bits(dst.bits().words(), sb, src_s.bits().words(), sb, se - sb,
                     atomic);
  };
  const auto memset_summary = [&](graph::SummaryView s) {
    auto w = s.bits().words();
    std::memset(w.data(), 0, w.size() * 8);
  };

  p.barrier(world, sim::Phase::stall);  // every rank's out data is ready

  // --- modeled durations + real assembly, by plan ------------------------
  cm::CollTimes qt, ss;
  auto in_q = st.in_queue(p.rank);
  auto in_s = st.in_summary(p.rank);

  if (!st.shared_in()) {
    // "Original": private replicas, library allgather over all np ranks.
    if (cfg.base_algo == rt::AllgatherAlgo::flat_ring) {
      qt = cm::flat_ring(c, qchunk_bytes);
      ss = cm::flat_ring(c, schunk_bytes);
    } else {
      const bool rd = cfg.base_algo == rt::AllgatherAlgo::leader_rd;
      qt = cm::leader_allgather(c, qchunk_bytes, true, true, 1, rd);
      ss = cm::leader_allgather(c, schunk_bytes, true, true, 1, rd);
    }
    for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
    memset_summary(in_s);
    for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
  } else if (!st.shared_out()) {
    // "+ Share in_queue": gather to leader, leaders ring directly into the
    // node-shared in_queue; the broadcast step is gone (Fig. 5b).
    qt = cm::leader_allgather(c, qchunk_bytes, true, false, 1);
    ss = cm::leader_allgather(c, schunk_bytes, true, false, 1);
    if (p.is_node_leader()) {
      for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
      memset_summary(in_s);
      for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
    }
  } else if (!cfg.parallel_allgather) {
    // "+ Share all": out slabs are shared too; the gather step is gone.
    qt = cm::leader_allgather(c, qchunk_bytes, false, false, 1);
    ss = cm::leader_allgather(c, schunk_bytes, false, false, 1);
    if (p.is_node_leader()) {
      for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
      memset_summary(in_s);
      for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
    }
  } else {
    // "+ Par allgather": ppn subgroups ring concurrently (Fig. 7), each
    // assembling its color's slice of every node chunk in place.
    qt = cm::leader_allgather(c, qchunk_bytes, false, false, ppn);
    ss = cm::leader_allgather(c, schunk_bytes, false, false, ppn);
    if (p.is_node_leader()) memset_summary(in_s);
    p.barrier(node, phase);  // summary zeroed before OR-merges
    for (int m = 0; m < c.topo().nodes(); ++m) {
      const int src_rank = m * ppn + p.local;
      copy_queue_chunk(in_q, src_rank);
      copy_summary_range(in_s, src_rank, /*atomic=*/true);
    }
  }

  p.charge(phase, qt.total_ns + ss.total_ns);
  p.barrier(world, phase);  // the collective completes together

  clear_out_bits(p, dg, st, u, phase);
  p.barrier(world, sim::Phase::stall);  // wipes land before the next level

  ExchangeTimes ex;
  ex.gather_ns = qt.gather_ns + ss.gather_ns;
  ex.inter_ns = qt.inter_ns + ss.inter_ns;
  ex.bcast_ns = qt.bcast_ns + ss.bcast_ns;
  ex.intra_overlapped_ns = qt.intra_overlapped_ns + ss.intra_overlapped_ns;
  ex.total_ns = qt.total_ns + ss.total_ns;
  return ex;
}

}  // namespace numabfs::bfs
