#include "bfs/exchange.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/coll_model.hpp"
#include "tune/controller.hpp"

namespace numabfs::bfs {

namespace cm = rt::coll_model;
namespace codec = graph::codec;

namespace {

/// Summary-bit range [sb, se) covering partition `part`'s vertex block.
std::pair<std::uint64_t, std::uint64_t> summary_range(const DistState& st,
                                                      std::uint64_t block_bits,
                                                      int part) {
  const std::uint64_t g = st.config().summary_granularity;
  const std::uint64_t sb = static_cast<std::uint64_t>(part) * block_bits / g;
  const std::uint64_t se = std::min(
      st.summary_bits(),
      (static_cast<std::uint64_t>(part + 1) * block_bits + g - 1) / g);
  return {sb, se};
}

}  // namespace

void decode_bitmap_checked(std::span<const std::uint8_t> in,
                           std::span<std::uint64_t> words, const char* what,
                           int src_rank) {
  const std::size_t used = codec::decode_bitmap(in, words);
  if (used != in.size())
    throw std::invalid_argument(
        std::string(what) + ": bitmap encoding from rank " +
        std::to_string(src_rank) + " decoded " + std::to_string(used) +
        " of " + std::to_string(in.size()) + " bytes");
}

GateResult gate_bitmap_chunks(
    rt::Proc& p, rt::Comm& comm, CodecMode mode, int pipeline_chunks,
    std::span<GateChunk> chunks, std::uint64_t chunk_words,
    std::uint64_t chunk_bits, std::uint64_t decode_chunks, const UnitCosts& u,
    sim::Phase phase,
    const std::function<double(std::uint64_t)>& plan_total_ns,
    double per_chunk_ns) {
  GateResult res;
  res.wire_chunk_bytes = chunk_words * 8;
  const int total = comm.size();
  if (mode == CodecMode::off || total <= 1) return res;
  const int K = std::max(1, pipeline_chunks);

  // Chunks are skewed (R-MAT hubs cluster), and every collective plan moves
  // each chunk once per hop, so the honest per-chunk wire charge — and the
  // gate's input — is the *mean* encoded chunk, not the densest one:
  // allreduce the summed popcount / encoded bytes and divide by the global
  // chunk count (== comm size: one chunk per partition).
  std::uint64_t my_pop = 0;
  for (const GateChunk& ch : chunks)
    for (std::uint64_t w : ch.words)
      my_pop += static_cast<std::uint64_t>(std::popcount(w));
  p.charge(phase, u.stream_pass_ns(chunk_words * chunks.size()));
  const std::uint64_t mean_pop =
      rt::allreduce_sum(p, comm, my_pop, sim::Phase::stall) /
      static_cast<std::uint64_t>(total);

  // Splitting into K chunks pays (K-1) * per_chunk_ns on top of the
  // pipelined time — the same charge the final exchange pays, so the gate
  // optimizes exactly what is charged.
  const double split_ns = static_cast<double>(K - 1) * per_chunk_ns;
  const double enc_est = u.stream_pass_ns(chunk_words);
  const double dec_est = u.stream_pass_ns(decode_chunks * chunk_words);
  const double raw_est = plan_total_ns(chunk_words * 8);
  const double dense_est =
      enc_est + split_ns +
      cm::pipelined2_ns(
          plan_total_ns(codec::dense_estimate_bytes(chunk_words, mean_pop)),
          dec_est, K);
  const double sparse_est =
      enc_est + split_ns +
      cm::pipelined2_ns(
          plan_total_ns(codec::sparse_estimate_bytes(mean_pop, chunk_bits)),
          dec_est, K);

  // The estimates assume uniform density, but chunks are skewed, so a level
  // whose *mean* density looks hopeless can still compress on its sparse
  // chunks (each chunk falls back to raw + 1 at worst). Trial-encode
  // whenever the analytic estimate lands within 1.5x of raw; the final pick
  // is then made on the measured bytes, with the (already charged) encode
  // pass sunk.
  codec::Kind trial = codec::Kind::raw;
  switch (mode) {
    case CodecMode::force_dense:
      trial = codec::Kind::dense_bitmap;
      break;
    case CodecMode::force_sparse:
      trial = codec::Kind::sparse_list;
      break;
    default:
      if (std::min(dense_est, sparse_est) < raw_est * 1.5)
        trial = sparse_est <= dense_est ? codec::Kind::sparse_list
                                       : codec::Kind::dense_bitmap;
  }
  if (trial == codec::Kind::raw) return res;

  // Encode for real; wire time is then charged on the *measured*
  // (allreduce-summed) encoded sizes, never on the gate's estimate.
  std::uint64_t my_enc = 0;
  for (GateChunk& ch : chunks) {
    ch.enc->clear();
    std::size_t nb;
    if (trial == codec::Kind::dense_bitmap)
      nb = codec::encode_dense(ch.words, *ch.enc,
                               ch.guide ? &*ch.guide : nullptr,
                               ch.guide_base_bit);
    else
      nb = codec::encode_bitmap_sparse(ch.words, *ch.enc);
    my_enc += static_cast<std::uint64_t>(nb);
    res.encode_ns += u.stream_pass_ns(chunk_words + (nb + 7) / 8);
  }
  p.charge(phase, res.encode_ns);
  const std::uint64_t enc_mean =
      (rt::allreduce_sum(p, comm, my_enc, sim::Phase::stall) +
       static_cast<std::uint64_t>(total) - 1) /
      static_cast<std::uint64_t>(total);
  if (mode != CodecMode::gate ||
      cm::pipelined2_ns(plan_total_ns(enc_mean), dec_est, K) + split_ns <
          raw_est) {
    res.kind = trial;
    res.wire_chunk_bytes = enc_mean;
  }
  return res;
}

void clear_out_bits(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                    const UnitCosts& u, sim::Phase phase) {
  const std::uint64_t block_words = dg.part.block() / 64;
  auto out_q = st.out_queue(p.rank);
  const std::uint64_t off = static_cast<std::uint64_t>(p.rank) * block_words;
  std::memset(out_q.words().data() + off, 0, block_words * 8);

  auto out_s = st.out_summary(p.rank);
  auto sw = out_s.bits().words();
  if (!st.shared_out()) {
    // Private: only our own range was ever set; the whole map is tiny.
    std::memset(sw.data(), 0, sw.size() * 8);
    p.charge(phase, u.stream_pass_ns(block_words + sw.size()));
  } else {
    // Shared: the node's ranks wipe disjoint word slices of the node map.
    const int ppn = p.ppn;
    const std::size_t lo = sw.size() * static_cast<std::size_t>(p.local) /
                           static_cast<std::size_t>(ppn);
    const std::size_t hi = sw.size() * static_cast<std::size_t>(p.local + 1) /
                           static_cast<std::size_t>(ppn);
    std::memset(sw.data() + lo, 0, (hi - lo) * 8);
    p.charge(phase, u.stream_pass_ns(block_words + (hi - lo)));
  }
}

void clear_out_bits_part(rt::Proc& p, const graph::DistGraph& dg,
                         DistState& st, const UnitCosts& u, sim::Phase phase,
                         int part) {
  const std::uint64_t block_bits = dg.part.block();
  const std::uint64_t block_words = block_bits / 64;
  auto out_q = st.out_queue(part);
  const std::uint64_t off = static_cast<std::uint64_t>(part) * block_words;
  std::memset(out_q.words().data() + off, 0, block_words * 8);

  // Unlike the healthy wipe (disjoint local slices of a node map), the dead
  // owner's summary share has no other writer left, so the adopter clears
  // exactly the partition's summary range.
  auto out_s = st.out_summary(part);
  const auto [sb, se] = summary_range(st, block_bits, part);
  out_s.bits().clear_range(sb, se);
  p.charge(phase, u.stream_pass_ns(block_words + (se - sb + 63) / 64));
}

void discovered_to_out_bits(rt::Proc& p, DistState& st, const UnitCosts& u,
                            int part) {
  if (part < 0) part = p.rank;
  auto out_q = st.out_queue(part);
  auto out_s = st.out_summary(part);
  const auto& discovered = st.discovered(part);
  for (graph::Vertex v : discovered) {
    out_q.set(v);
    out_s.mark(v);
  }
  p.charge(sim::Phase::switch_conv,
           static_cast<double>(discovered.size()) * 2.0 * u.write_ns /
               u.omp_div);
}

SparseExchangeStats exchange_sparse(rt::Proc& p, const graph::DistGraph& dg,
                                    DistState& st, const UnitCosts& u,
                                    sim::Phase phase, bool wipe_out,
                                    std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  const int np = c.nranks();
  bool coded = st.config().codec != CodecMode::off && np > 1;

  // Trial-encode each owned partition's discovered list, then gate the
  // whole level on the *measured* totals: tiny tail/startup lists inflate
  // under varint headers (a 1-vertex list costs 5 coded bytes vs 4 raw),
  // so the level publishes coded lists only when the allreduced encoded
  // volume actually beat raw. Deterministic: every rank sees the same sums.
  std::uint64_t my_enc = 0, my_raw = 0;
  const auto encode_part = [&](int q) {
    const auto& list = st.discovered(q);
    if (list.empty()) return;  // absence is free raw, 2 bytes encoded
    auto& buf = st.enc_buf(q);
    buf.clear();
    const std::size_t nb = codec::encode_list({list.data(), list.size()}, buf);
    my_enc += nb;
    my_raw += list.size() * sizeof(graph::Vertex);
    p.charge(phase, u.stream_pass_ns(list.size() * sizeof(graph::Vertex) / 8 +
                                     (nb + 7) / 8));
  };
  if (coded) {
    encode_part(p.rank);
    for (int q : parts)
      if (q != p.rank) encode_part(q);
    const std::uint64_t enc_sum =
        rt::allreduce_sum(p, world, my_enc, sim::Phase::stall);
    const std::uint64_t raw_sum =
        rt::allreduce_sum(p, world, my_raw, sim::Phase::stall);
    coded = enc_sum < raw_sum;  // encode cost is sunk; bytes decide
  }

  // Publish each owned partition's list — raw, or the delta-varint encoding
  // from the partition's enc_buf (val then carries *bytes*, and the wire
  // bytes below are measured from the real encoding). Adopted partitions
  // are impersonated into the dead owners' slots so the dense assembly
  // loop below needs no holes.
  const auto publish_part = [&](int q) {
    const auto& list = st.discovered(q);
    if (!coded || list.empty()) {
      world.publish_ptr(q, list.data());
      world.publish_val(q, list.size());
      return;
    }
    const auto& buf = st.enc_buf(q);
    world.publish_ptr(q, buf.data());
    world.publish_val(q, buf.size());
  };
  publish_part(p.rank);
  for (int q : parts)
    if (q != p.rank) publish_part(q);
  p.barrier(world, sim::Phase::stall);  // lists ready

  auto& frontier = st.frontier(p.rank);
  frontier.clear();
  SparseExchangeStats stats;
  stats.coded = coded;
  std::uint64_t intra_bytes = 0, inter_bytes = 0;
  for (int r = 0; r < np; ++r) {
    std::uint64_t bytes;  // what rides the wire for this contribution
    std::uint64_t count;
    if (coded) {
      bytes = world.val(r);
      const auto* src = static_cast<const std::uint8_t*>(world.ptr(r));
      const std::size_t before = frontier.size();
      if (bytes > 0) {
        // Strict framing: a decode that stops short of the published size
        // accepted a corrupted stream whose trailing bytes it never looked
        // at — the checksummed-retransmit path needs a hard error instead.
        const std::size_t used = codec::decode_list({src, bytes}, frontier);
        if (used != bytes)
          throw std::invalid_argument(
              "exchange_sparse: list encoding from rank " + std::to_string(r) +
              " decoded " + std::to_string(used) + " of " +
              std::to_string(bytes) + " published bytes");
      }
      count = frontier.size() - before;
    } else {
      count = world.val(r);
      const auto* src = static_cast<const graph::Vertex*>(world.ptr(r));
      frontier.insert(frontier.end(), src, src + count);
      bytes = count * sizeof(graph::Vertex);
    }
    if (r == p.rank) continue;
    stats.wire_bytes += bytes;
    stats.raw_bytes += count * sizeof(graph::Vertex);
    if (c.node_of(r) == p.node)
      intra_bytes += bytes;
    else
      inter_bytes += bytes;
  }
  p.prof.counters().bytes_intra_node += intra_bytes;
  p.prof.counters().bytes_inter_node += inter_bytes;
  p.prof.counters().bytes_raw_equiv += stats.raw_bytes;
  if (coded)  // decode pass over the received encodings
    p.charge(phase, u.stream_pass_ns((stats.wire_bytes + stats.raw_bytes) / 8));

  const auto& cp = c.params();
  double inter_bw = c.link().nic_flow_bw(1, cm::min_nic_factor(c));
  if (inj != nullptr)
    inter_bw *= inj->min_link_factor(p.clock.now_ns());
  const double t =
      static_cast<double>(np - 1) * cp.nic_msg_latency_ns +
      static_cast<double>(inter_bytes) / inter_bw +
      static_cast<double>(intra_bytes) * cp.cico_factor /
          c.link().shm_flow_bw(1);
  p.charge(phase, t);

  if (wipe_out) {
    clear_out_bits(p, dg, st, u, sim::Phase::switch_conv);
    for (int q : parts)
      if (q != p.rank)
        clear_out_bits_part(p, dg, st, u, sim::Phase::switch_conv, q);
  }
  p.barrier(world, phase);
  return stats;
}

ExchangeTimes exchange_frontier(rt::Proc& p, const graph::DistGraph& dg,
                                DistState& st, const UnitCosts& u,
                                sim::Phase phase, std::span<const int> parts,
                                tune::ExchangeTuner* tuner) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  rt::Comm& node = c.node_comm(p.node);
  const Config& cfg = st.config();
  const int np = c.nranks();
  const int ppn = c.ppn();

  const std::uint64_t block_bits = dg.part.block();
  const std::uint64_t block_words = block_bits / 64;
  const std::uint64_t g = cfg.summary_granularity;
  const std::uint64_t summary_bits = st.summary_bits();
  const std::uint64_t qchunk_bytes = block_words * 8;
  const std::uint64_t schunk_bytes = std::max<std::uint64_t>(1, block_bits / (8 * g));

  // Degraded mode: with dead ranks, subgroup rings are broken (a color may
  // be missing on some node) and the wired-in leader may be gone. Fall back
  // to the leader plan with the lowest live local rank acting as leader.
  const bool degraded = inj != nullptr && inj->any_dead();
  const bool acts_leader =
      degraded ? p.local == inj->lowest_live_local(p.node) : p.is_node_leader();
  const bool par_plan =
      st.shared_in() && st.shared_out() && cfg.parallel_allgather && !degraded;

  // The base allgather algorithm and pipeline depth start at the static
  // Config knobs; an attached online tuner re-picks them per level below.
  rt::AllgatherAlgo algo = cfg.base_algo;

  // Modeled duration of one allgather under the active plan, as a function
  // of the per-rank chunk size actually on the wire (shared between the
  // codec gate's estimates and the final charge, so the gate optimizes the
  // quantity that is charged).
  const auto plan_time = [&](std::uint64_t chunk_bytes) -> cm::CollTimes {
    if (!st.shared_in()) {
      if (algo == rt::AllgatherAlgo::flat_ring)
        return cm::flat_ring(c, chunk_bytes);
      const bool rd = algo == rt::AllgatherAlgo::leader_rd;
      return cm::leader_allgather(c, chunk_bytes, true, true, 1, rd);
    }
    if (!st.shared_out()) return cm::leader_allgather(c, chunk_bytes, true, false, 1);
    if (!par_plan) return cm::leader_allgather(c, chunk_bytes, false, false, 1);
    return cm::leader_allgather(c, chunk_bytes, false, false, ppn);
  };

  // Queue chunks one rank assembles — and therefore decodes — per level.
  const std::uint64_t assemble_chunks =
      par_plan ? static_cast<std::uint64_t>(c.topo().nodes())
               : static_cast<std::uint64_t>(np);

  const auto for_owned_parts = [&](auto&& f) {
    f(p.rank);
    for (int q : parts)
      if (q != p.rank) f(q);
  };

  // --- online per-level knob decisions (DESIGN.md §15) ------------------
  // Inputs are the trailing mean of the gate's allreduced measured chunk
  // bytes (identical on every rank) and the rank-uniform collective
  // models, so every rank steps identical arbiter state — the same SPMD
  // contract as the codec gate itself. Until a measurement exists, the
  // basis is the raw chunk size, which reproduces the static choice.
  int K = std::max(1, cfg.exchange_chunks);
  const double per_chunk_ns = c.params().chunk_split_overhead_ns;
  if (tuner != nullptr) {
    const std::uint64_t basis =
        tuner->ready() ? tuner->trailing_chunk_bytes() : block_words * 8;
    if (tuner->adapt_allgather() && !st.shared_in()) {
      std::vector<double> algo_costs;
      for (int a : tuner->algo_candidates()) {
        algo = static_cast<rt::AllgatherAlgo>(a);
        algo_costs.push_back(plan_time(basis).total_ns);
      }
      algo = static_cast<rt::AllgatherAlgo>(
          tuner->algo_candidates()[static_cast<size_t>(
              tuner->algo_arbiter().decide(algo_costs))]);
    }
    if (tuner->adapt_chunks()) {
      const double wire_est = plan_time(basis).total_ns;
      const double dec_est = u.stream_pass_ns(assemble_chunks * block_words);
      std::vector<double> k_costs;
      for (int k : tuner->k_candidates())
        k_costs.push_back(cm::pipelined2_ns(wire_est, dec_est, k) +
                          static_cast<double>(k - 1) * per_chunk_ns);
      K = tuner->k_candidates()[static_cast<size_t>(
          tuner->k_arbiter().decide(k_costs))];
    }
  }

  // --- per-level codec gate (DESIGN.md §10) -----------------------------
  // Every rank computes the same decision from allreduced measured sparsity
  // and rank-uniform unit costs — the same SPMD-deterministic pattern as
  // the MS-BFS kernel chooser. A level near 50% density estimates above the
  // raw wire cost and stays raw. The machinery itself is shared with the
  // 2-D exchange (gate_bitmap_chunks); this call site only describes the
  // 1-D out_queue chunks and the active allgather plan.
  std::vector<GateChunk> gate_chunks;
  for_owned_parts([&](int q) {
    GateChunk ch;
    ch.words = st.out_queue(q).words().subspan(
        static_cast<std::uint64_t>(q) * block_words, block_words);
    ch.guide = st.out_summary(q);
    ch.guide_base_bit = static_cast<std::uint64_t>(q) * block_bits;
    ch.enc = &st.enc_buf(q);
    gate_chunks.push_back(ch);
  });
  const GateResult gate = gate_bitmap_chunks(
      p, world, cfg.codec, K, gate_chunks, block_words, block_bits,
      assemble_chunks, u, phase,
      [&](std::uint64_t b) { return plan_time(b).total_ns; }, per_chunk_ns);
  const codec::Kind kind = gate.kind;
  const double enc_ns = gate.encode_ns;
  const std::uint64_t wire_chunk = gate.wire_chunk_bytes;
  // Feed the measured (allreduced) chunk size back into the tuner's
  // trailing window for the next level's decisions.
  if (tuner != nullptr) tuner->observe(wire_chunk);

  // --- data-plumbing helpers (real movement; time is modeled below) -----
  const auto copy_queue_chunk = [&](graph::BitmapView dst, int src_rank) {
    const std::uint64_t off = static_cast<std::uint64_t>(src_rank) * block_words;
    std::uint64_t bytes = block_words * 8;  // raw wire size
    if (kind == codec::Kind::raw) {
      auto src = st.out_queue(src_rank).words();
      std::memcpy(dst.words().data() + off, src.data() + off, block_words * 8);
    } else {
      const auto& buf = st.enc_buf(src_rank);
      // Strict framing (see exchange_sparse): the encoding must account for
      // every published byte, or the stream was corrupted.
      decode_bitmap_checked({buf.data(), buf.size()},
                            dst.words().subspan(off, block_words),
                            "exchange_frontier", src_rank);
      bytes = buf.size();
    }
    if (src_rank == p.rank) return;  // own chunk: no transmission (Eq. (1))
    if (c.node_of(src_rank) == p.node)
      p.prof.counters().bytes_intra_node += bytes;
    else
      p.prof.counters().bytes_inter_node += bytes;
    p.prof.counters().bytes_raw_equiv += block_words * 8;
  };
  const auto copy_summary_range = [&](graph::SummaryView dst, int src_rank,
                                      bool atomic) {
    const std::uint64_t sb =
        static_cast<std::uint64_t>(src_rank) * block_bits / g;
    const std::uint64_t se = std::min(
        summary_bits,
        (static_cast<std::uint64_t>(src_rank + 1) * block_bits + g - 1) / g);
    if (sb >= se) return;
    auto src_s = st.out_summary(src_rank);
    graph::copy_bits(dst.bits().words(), sb, src_s.bits().words(), sb, se - sb,
                     atomic);
  };
  const auto memset_summary = [&](graph::SummaryView s) {
    auto w = s.bits().words();
    std::memset(w.data(), 0, w.size() * 8);
  };

  p.barrier(world, sim::Phase::stall);  // out data (and encodings) ready

  // --- modeled durations + real assembly, by plan ------------------------
  // The queue allgather is modeled on `wire_chunk` — the measured encoded
  // chunk when a codec is active, the raw chunk otherwise. The summary
  // allgather always rides raw (it is itself the compressed digest).
  cm::CollTimes qt = plan_time(wire_chunk);
  cm::CollTimes ss = plan_time(schunk_bytes);
  auto in_q = st.in_queue(p.rank);
  auto in_s = st.in_summary(p.rank);

  if (!st.shared_in()) {
    // "Original": private replicas, library allgather over all np ranks.
    for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
    memset_summary(in_s);
    for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
  } else if (!st.shared_out()) {
    // "+ Share in_queue": gather to leader, leaders ring directly into the
    // node-shared in_queue; the broadcast step is gone (Fig. 5b).
    if (acts_leader) {
      for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
      memset_summary(in_s);
      for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
    }
  } else if (!par_plan) {
    // "+ Share all": out slabs are shared too; the gather step is gone.
    // (Also the degraded fallback for the parallel plan below.)
    if (acts_leader) {
      for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
      memset_summary(in_s);
      for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
    }
  } else {
    // "+ Par allgather": ppn subgroups ring concurrently (Fig. 7), each
    // assembling its color's slice of every node chunk in place.
    if (p.is_node_leader()) memset_summary(in_s);
    p.barrier(node, phase);  // summary zeroed before OR-merges
    for (int m = 0; m < c.topo().nodes(); ++m) {
      const int src_rank = m * ppn + p.local;
      copy_queue_chunk(in_q, src_rank);
      copy_summary_range(in_s, src_rank, /*atomic=*/true);
    }
  }

  if (inj != nullptr) {
    // Degraded fabric stretches the inter-node stages of both allgathers.
    const double lf = inj->min_link_factor(p.clock.now_ns());
    qt.total_ns += qt.inter_ns * (1.0 / lf - 1.0);
    ss.total_ns += ss.inter_ns * (1.0 / lf - 1.0);
    qt.inter_ns /= lf;
    ss.inter_ns /= lf;
  }
  double total_ns = qt.total_ns + ss.total_ns;
  double dec_ns = 0.0;
  double overlap_saved = 0.0;
  if (kind != codec::Kind::raw) {
    // Chunk-pipelined overlap: the decode of wire chunk i proceeds while
    // chunk i+1 is in flight (K chunks; K=1 degrades to sequential), minus
    // the per-split message overhead the extra chunks cost.
    dec_ns = u.stream_pass_ns(assemble_chunks * block_words);
    const double seq_ns = total_ns + dec_ns;
    total_ns = cm::pipelined2_ns(total_ns, dec_ns, K) +
               static_cast<double>(K - 1) * per_chunk_ns;
    overlap_saved = seq_ns - total_ns;
    p.prof.add_overlap_saved(overlap_saved);
  }
  p.charge(phase, total_ns);
  p.barrier(world, phase);  // the collective completes together

  clear_out_bits(p, dg, st, u, phase);
  for (int q : parts)
    if (q != p.rank) clear_out_bits_part(p, dg, st, u, phase, q);
  p.barrier(world, sim::Phase::stall);  // wipes land before the next level

  ExchangeTimes ex;
  ex.gather_ns = qt.gather_ns + ss.gather_ns;
  ex.inter_ns = qt.inter_ns + ss.inter_ns;
  ex.bcast_ns = qt.bcast_ns + ss.bcast_ns;
  ex.intra_overlapped_ns = qt.intra_overlapped_ns + ss.intra_overlapped_ns;
  ex.total_ns = total_ns;  // includes any link-degradation stretch
  ex.codec = kind;
  ex.encode_ns = enc_ns;
  ex.decode_ns = dec_ns;
  ex.overlap_saved_ns = overlap_saved;
  ex.chunk_raw_bytes = qchunk_bytes;
  ex.chunk_wire_bytes = wire_chunk;
  ex.chunks_used = kind != codec::Kind::raw ? K : 1;
  ex.algo_used = st.shared_in() ? -1 : static_cast<int>(algo);
  return ex;
}

ExchangeLevelStats OneDExchange::exchange(rt::Proc& p, int cur_dir,
                                          int next_dir,
                                          std::span<const int> parts) {
  ExchangeLevelStats s;
  if (next_dir == 1) {
    // Next level searches bottom-up: it needs the in_queue bitmap. A
    // top-down level only produced a sparse list — materialize it
    // ("Switch" in Fig. 11), then run the two allgathers of Fig. 1.
    if (cur_dir == 0)
      for (int q : parts) discovered_to_out_bits(p, st_, u_, q);
    const ExchangeTimes ex =
        exchange_frontier(p, dg_, st_, u_, sim::Phase::bu_comm, parts, tuner_);
    s.codec = ex.codec;
    s.wire_bytes = ex.chunk_wire_bytes;
    s.raw_bytes = ex.chunk_raw_bytes;
    s.bitmap = true;
    s.chunks = ex.chunks_used;
    s.algo = ex.algo_used;
  } else {
    // Next level is top-down: the sparse list exchange suffices; when
    // leaving bottom-up, the stale out bitmaps are wiped on the way.
    const SparseExchangeStats sx =
        exchange_sparse(p, dg_, st_, u_, sim::Phase::td_comm,
                        /*wipe_out=*/cur_dir == 1, parts);
    s.codec = sx.coded ? codec::Kind::sparse_list : codec::Kind::raw;
    s.wire_bytes = sx.wire_bytes;
    s.raw_bytes = sx.raw_bytes;
  }
  return s;
}

}  // namespace numabfs::bfs
