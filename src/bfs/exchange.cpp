#include "bfs/exchange.hpp"

#include <algorithm>
#include <cstring>

#include "runtime/coll_model.hpp"

namespace numabfs::bfs {

namespace cm = rt::coll_model;

namespace {

/// Summary-bit range [sb, se) covering partition `part`'s vertex block.
std::pair<std::uint64_t, std::uint64_t> summary_range(const DistState& st,
                                                      std::uint64_t block_bits,
                                                      int part) {
  const std::uint64_t g = st.config().summary_granularity;
  const std::uint64_t sb = static_cast<std::uint64_t>(part) * block_bits / g;
  const std::uint64_t se = std::min(
      st.summary_bits(),
      (static_cast<std::uint64_t>(part + 1) * block_bits + g - 1) / g);
  return {sb, se};
}

}  // namespace

void clear_out_bits(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                    const UnitCosts& u, sim::Phase phase) {
  const std::uint64_t block_words = dg.part.block() / 64;
  auto out_q = st.out_queue(p.rank);
  const std::uint64_t off = static_cast<std::uint64_t>(p.rank) * block_words;
  std::memset(out_q.words().data() + off, 0, block_words * 8);

  auto out_s = st.out_summary(p.rank);
  auto sw = out_s.bits().words();
  if (!st.shared_out()) {
    // Private: only our own range was ever set; the whole map is tiny.
    std::memset(sw.data(), 0, sw.size() * 8);
    p.charge(phase, u.stream_pass_ns(block_words + sw.size()));
  } else {
    // Shared: the node's ranks wipe disjoint word slices of the node map.
    const int ppn = p.ppn;
    const std::size_t lo = sw.size() * static_cast<std::size_t>(p.local) /
                           static_cast<std::size_t>(ppn);
    const std::size_t hi = sw.size() * static_cast<std::size_t>(p.local + 1) /
                           static_cast<std::size_t>(ppn);
    std::memset(sw.data() + lo, 0, (hi - lo) * 8);
    p.charge(phase, u.stream_pass_ns(block_words + (hi - lo)));
  }
}

void clear_out_bits_part(rt::Proc& p, const graph::DistGraph& dg,
                         DistState& st, const UnitCosts& u, sim::Phase phase,
                         int part) {
  const std::uint64_t block_bits = dg.part.block();
  const std::uint64_t block_words = block_bits / 64;
  auto out_q = st.out_queue(part);
  const std::uint64_t off = static_cast<std::uint64_t>(part) * block_words;
  std::memset(out_q.words().data() + off, 0, block_words * 8);

  // Unlike the healthy wipe (disjoint local slices of a node map), the dead
  // owner's summary share has no other writer left, so the adopter clears
  // exactly the partition's summary range.
  auto out_s = st.out_summary(part);
  const auto [sb, se] = summary_range(st, block_bits, part);
  out_s.bits().clear_range(sb, se);
  p.charge(phase, u.stream_pass_ns(block_words + (se - sb + 63) / 64));
}

void discovered_to_out_bits(rt::Proc& p, DistState& st, const UnitCosts& u,
                            int part) {
  if (part < 0) part = p.rank;
  auto out_q = st.out_queue(part);
  auto out_s = st.out_summary(part);
  const auto& discovered = st.discovered(part);
  for (graph::Vertex v : discovered) {
    out_q.set(v);
    out_s.mark(v);
  }
  p.charge(sim::Phase::switch_conv,
           static_cast<double>(discovered.size()) * 2.0 * u.write_ns /
               u.omp_div);
}

void exchange_sparse(rt::Proc& p, const graph::DistGraph& dg, DistState& st,
                     const UnitCosts& u, sim::Phase phase, bool wipe_out,
                     std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  const int np = c.nranks();

  const auto& mine = st.discovered(p.rank);
  world.publish_ptr(p.rank, mine.data());
  world.publish_val(p.rank, mine.size());
  // Impersonate adopted partitions: publish their discovered lists into the
  // dead owners' slots so the dense assembly loop below needs no holes.
  for (int q : parts) {
    if (q == p.rank) continue;
    const auto& theirs = st.discovered(q);
    world.publish_ptr(q, theirs.data());
    world.publish_val(q, theirs.size());
  }
  p.barrier(world, sim::Phase::stall);  // lists ready

  auto& frontier = st.frontier(p.rank);
  frontier.clear();
  std::uint64_t intra_bytes = 0, inter_bytes = 0;
  for (int r = 0; r < np; ++r) {
    const std::uint64_t count = world.val(r);
    const auto* src = static_cast<const graph::Vertex*>(world.ptr(r));
    frontier.insert(frontier.end(), src, src + count);
    if (r == p.rank) continue;
    const std::uint64_t bytes = count * sizeof(graph::Vertex);
    if (c.node_of(r) == p.node)
      intra_bytes += bytes;
    else
      inter_bytes += bytes;
  }
  p.prof.counters().bytes_intra_node += intra_bytes;
  p.prof.counters().bytes_inter_node += inter_bytes;

  const auto& cp = c.params();
  double inter_bw = c.link().nic_flow_bw(1, cm::min_nic_factor(c));
  if (inj != nullptr)
    inter_bw *= inj->min_link_factor(p.clock.now_ns());
  const double t =
      static_cast<double>(np - 1) * cp.nic_msg_latency_ns +
      static_cast<double>(inter_bytes) / inter_bw +
      static_cast<double>(intra_bytes) * cp.cico_factor /
          c.link().shm_flow_bw(1);
  p.charge(phase, t);

  if (wipe_out) {
    clear_out_bits(p, dg, st, u, sim::Phase::switch_conv);
    for (int q : parts)
      if (q != p.rank)
        clear_out_bits_part(p, dg, st, u, sim::Phase::switch_conv, q);
  }
  p.barrier(world, phase);
}

ExchangeTimes exchange_frontier(rt::Proc& p, const graph::DistGraph& dg,
                                DistState& st, const UnitCosts& u,
                                sim::Phase phase, std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  rt::Comm& node = c.node_comm(p.node);
  const Config& cfg = st.config();
  const int np = c.nranks();
  const int ppn = c.ppn();

  const std::uint64_t block_bits = dg.part.block();
  const std::uint64_t block_words = block_bits / 64;
  const std::uint64_t g = cfg.summary_granularity;
  const std::uint64_t summary_bits = st.summary_bits();
  const std::uint64_t qchunk_bytes = block_words * 8;
  const std::uint64_t schunk_bytes = std::max<std::uint64_t>(1, block_bits / (8 * g));

  // Degraded mode: with dead ranks, subgroup rings are broken (a color may
  // be missing on some node) and the wired-in leader may be gone. Fall back
  // to the leader plan with the lowest live local rank acting as leader.
  const bool degraded = inj != nullptr && inj->any_dead();
  const bool acts_leader =
      degraded ? p.local == inj->lowest_live_local(p.node) : p.is_node_leader();

  // --- data-plumbing helpers (real movement; time is modeled below) -----
  const auto copy_queue_chunk = [&](graph::BitmapView dst, int src_rank) {
    auto src = st.out_queue(src_rank).words();
    const std::uint64_t off = static_cast<std::uint64_t>(src_rank) * block_words;
    std::memcpy(dst.words().data() + off, src.data() + off, block_words * 8);
    if (src_rank == p.rank) return;  // own chunk: no transmission (Eq. (1))
    const std::uint64_t bytes = block_words * 8;
    if (c.node_of(src_rank) == p.node)
      p.prof.counters().bytes_intra_node += bytes;
    else
      p.prof.counters().bytes_inter_node += bytes;
  };
  const auto copy_summary_range = [&](graph::SummaryView dst, int src_rank,
                                      bool atomic) {
    const std::uint64_t sb =
        static_cast<std::uint64_t>(src_rank) * block_bits / g;
    const std::uint64_t se = std::min(
        summary_bits,
        (static_cast<std::uint64_t>(src_rank + 1) * block_bits + g - 1) / g);
    if (sb >= se) return;
    auto src_s = st.out_summary(src_rank);
    graph::copy_bits(dst.bits().words(), sb, src_s.bits().words(), sb, se - sb,
                     atomic);
  };
  const auto memset_summary = [&](graph::SummaryView s) {
    auto w = s.bits().words();
    std::memset(w.data(), 0, w.size() * 8);
  };

  p.barrier(world, sim::Phase::stall);  // every rank's out data is ready

  // --- modeled durations + real assembly, by plan ------------------------
  cm::CollTimes qt, ss;
  auto in_q = st.in_queue(p.rank);
  auto in_s = st.in_summary(p.rank);

  if (!st.shared_in()) {
    // "Original": private replicas, library allgather over all np ranks.
    if (cfg.base_algo == rt::AllgatherAlgo::flat_ring) {
      qt = cm::flat_ring(c, qchunk_bytes);
      ss = cm::flat_ring(c, schunk_bytes);
    } else {
      const bool rd = cfg.base_algo == rt::AllgatherAlgo::leader_rd;
      qt = cm::leader_allgather(c, qchunk_bytes, true, true, 1, rd);
      ss = cm::leader_allgather(c, schunk_bytes, true, true, 1, rd);
    }
    for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
    memset_summary(in_s);
    for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
  } else if (!st.shared_out()) {
    // "+ Share in_queue": gather to leader, leaders ring directly into the
    // node-shared in_queue; the broadcast step is gone (Fig. 5b).
    qt = cm::leader_allgather(c, qchunk_bytes, true, false, 1);
    ss = cm::leader_allgather(c, schunk_bytes, true, false, 1);
    if (acts_leader) {
      for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
      memset_summary(in_s);
      for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
    }
  } else if (!cfg.parallel_allgather || degraded) {
    // "+ Share all": out slabs are shared too; the gather step is gone.
    // (Also the degraded fallback for the parallel plan below.)
    qt = cm::leader_allgather(c, qchunk_bytes, false, false, 1);
    ss = cm::leader_allgather(c, schunk_bytes, false, false, 1);
    if (acts_leader) {
      for (int r = 0; r < np; ++r) copy_queue_chunk(in_q, r);
      memset_summary(in_s);
      for (int r = 0; r < np; ++r) copy_summary_range(in_s, r, false);
    }
  } else {
    // "+ Par allgather": ppn subgroups ring concurrently (Fig. 7), each
    // assembling its color's slice of every node chunk in place.
    qt = cm::leader_allgather(c, qchunk_bytes, false, false, ppn);
    ss = cm::leader_allgather(c, schunk_bytes, false, false, ppn);
    if (p.is_node_leader()) memset_summary(in_s);
    p.barrier(node, phase);  // summary zeroed before OR-merges
    for (int m = 0; m < c.topo().nodes(); ++m) {
      const int src_rank = m * ppn + p.local;
      copy_queue_chunk(in_q, src_rank);
      copy_summary_range(in_s, src_rank, /*atomic=*/true);
    }
  }

  double total_ns = qt.total_ns + ss.total_ns;
  if (inj != nullptr) {
    // Degraded fabric stretches the inter-node stages of both allgathers.
    const double lf = inj->min_link_factor(p.clock.now_ns());
    total_ns += (qt.inter_ns + ss.inter_ns) * (1.0 / lf - 1.0);
    qt.inter_ns /= lf;
    ss.inter_ns /= lf;
  }
  p.charge(phase, total_ns);
  p.barrier(world, phase);  // the collective completes together

  clear_out_bits(p, dg, st, u, phase);
  for (int q : parts)
    if (q != p.rank) clear_out_bits_part(p, dg, st, u, phase, q);
  p.barrier(world, sim::Phase::stall);  // wipes land before the next level

  ExchangeTimes ex;
  ex.gather_ns = qt.gather_ns + ss.gather_ns;
  ex.inter_ns = qt.inter_ns + ss.inter_ns;
  ex.bcast_ns = qt.bcast_ns + ss.bcast_ns;
  ex.intra_overlapped_ns = qt.intra_overlapped_ns + ss.intra_overlapped_ns;
  ex.total_ns = total_ns;  // includes any link-degradation stretch
  return ex;
}

}  // namespace numabfs::bfs
