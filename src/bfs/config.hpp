#pragma once
/// \file config.hpp
/// Configuration of one distributed BFS variant — the axes the paper sweeps:
/// execution policy (Fig. 10), sharing level (Figs. 5/9), allgather
/// parallelization (Fig. 7), summary granularity (Figs. 8/16), and the
/// direction-switch thresholds of the hybrid algorithm.

#include <cstdint>
#include <string>

#include "runtime/allgather.hpp"

namespace numabfs::bfs {

/// The paper's Fig. 10 execution policies.
enum class BindMode {
  noflag,          ///< no numactl/mpirun flags: first-touch single home
  interleave,      ///< numactl --interleave=all
  bind_to_socket,  ///< mpirun --bind-to-socket --bysocket
};

/// How much of the communication state is shared within a node (Fig. 5b).
enum class Sharing {
  none,      ///< every rank owns private copies ("Original")
  in_queue,  ///< in_queue/in_queue_summary shared: broadcast eliminated
  all,       ///< out structures shared too: gather eliminated as well
};

/// Forced traversal direction (Section II.A's pure baselines).
enum class Direction { hybrid, top_down_only, bottom_up_only };

/// Frontier-exchange codec policy (DESIGN.md §10). `gate` re-decides per
/// level from allreduced measured sparsity via the cost model; the force
/// modes pin one codec for ablations and tests. `off` is bit- and
/// byte-identical to the pre-codec exchange path.
enum class CodecMode { off, gate, force_sparse, force_dense };

/// Online per-level adaptive control (DESIGN.md §15). All flags default to
/// off; with every flag off the BFS drivers construct no controller state
/// and the run is bit-identical to a build without this struct.
struct TuneOptions {
  /// Replace the static Beamer direction test with the measured-rate
  /// DirectionController once both directions have trailing history.
  bool adapt_direction = false;
  /// Re-pick the exchange pipeline depth K per level from the trailing
  /// measured wire-chunk bytes (requires an active codec).
  bool adapt_chunks = false;
  /// Re-pick the inter-node allgather algorithm per level (requires
  /// sharing == none — shared-memory plans don't use base_algo).
  bool adapt_allgather = false;

  int window = 3;            ///< trailing-window length (levels)
  double hysteresis = 0.15;  ///< relative margin required to switch a knob
  int dwell = 2;             ///< levels a fresh choice is held

  bool any() const { return adapt_direction || adapt_chunks || adapt_allgather; }
};

struct Config {
  BindMode bind = BindMode::bind_to_socket;
  Sharing sharing = Sharing::none;
  /// Allgather time model used when sharing == none.
  rt::AllgatherAlgo base_algo = rt::AllgatherAlgo::flat_ring;
  /// Fig. 7: all ppn ranks of a node join the inter-node allgather
  /// (requires sharing == all; each subgroup assembles its slice in place).
  bool parallel_allgather = false;
  /// Fig. 8: in_queue bits covered by one summary bit (>= 1; 64 = Graph500
  /// reference default).
  std::uint64_t summary_granularity = 64;

  Direction direction = Direction::hybrid;
  /// Beamer switching thresholds: top-down -> bottom-up when
  /// frontier_edges > remaining_edges / alpha; back when
  /// frontier_vertices < n / beta.
  double alpha = 14.0;
  double beta = 24.0;

  /// Wire codec for the per-level frontier exchanges.
  CodecMode codec = CodecMode::off;
  /// Pipeline depth of the exchange: each encoded contribution is split
  /// into this many chunks so decoding chunk i overlaps chunk i+1 on the
  /// wire (coll_model::pipelined2_ns). 1 = no pipelining; only takes
  /// effect when a codec is active (the raw path has no decode stage).
  int exchange_chunks = 1;

  /// Online adaptive control (all off by default).
  TuneOptions tune;

  /// Validate invariants, including contradictory knob combinations;
  /// returns an actionable error message or empty.
  std::string validate() const;

  std::string name() const;
};

const char* to_string(BindMode b);
const char* to_string(Sharing s);
const char* to_string(Direction d);
const char* to_string(CodecMode m);

// --- canonical variants of the paper's Fig. 9 ---------------------------
/// "Original": unmodified algorithm (flat allgather, private buffers).
Config original();
/// "+ Share in_queue".
Config share_in_queue();
/// "+ Share all".
Config share_all();
/// "+ Par allgather".
Config par_allgather();
/// "+ Granularity": par_allgather with the best granularity (256).
Config granularity(std::uint64_t g = 256);
/// "+ Codec": granularity ladder rung plus the gated exchange codec and a
/// chunk-pipelined wire/decode overlap.
Config compressed(std::uint64_t g = 256, int chunks = 4);

}  // namespace numabfs::bfs
