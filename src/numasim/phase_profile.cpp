#include "numasim/phase_profile.hpp"

#include <algorithm>
#include <sstream>

namespace numabfs::sim {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::td_comp: return "td_comp";
    case Phase::td_comm: return "td_comm";
    case Phase::bu_comp: return "bu_comp";
    case Phase::bu_comm: return "bu_comm";
    case Phase::switch_conv: return "switch";
    case Phase::stall: return "stall";
    case Phase::other: return "other";
    case Phase::kCount: break;
  }
  return "?";
}

Counters& Counters::operator+=(const Counters& o) {
  edges_scanned += o.edges_scanned;
  summary_probes += o.summary_probes;
  summary_zero_skips += o.summary_zero_skips;
  inqueue_probes += o.inqueue_probes;
  frontier_hits += o.frontier_hits;
  queue_writes += o.queue_writes;
  bytes_intra_node += o.bytes_intra_node;
  bytes_inter_node += o.bytes_inter_node;
  bytes_raw_equiv += o.bytes_raw_equiv;
  vertices_visited += o.vertices_visited;
  retransmits += o.retransmits;
  recv_timeouts += o.recv_timeouts;
  adoptions += o.adoptions;
  delta_probes += o.delta_probes;
  return *this;
}

double PhaseProfile::total_ns() const {
  double t = 0.0;
  for (double v : ns_) t += v;
  return t;
}

void PhaseProfile::clear() {
  ns_.fill(0.0);
  counters_ = Counters{};
  overlap_saved_ns_ = 0.0;
}

PhaseProfile& PhaseProfile::operator+=(const PhaseProfile& o) {
  for (size_t i = 0; i < ns_.size(); ++i) ns_[i] += o.ns_[i];
  counters_ += o.counters_;
  overlap_saved_ns_ += o.overlap_saved_ns_;
  return *this;
}

void PhaseProfile::max_with(const PhaseProfile& o) {
  for (size_t i = 0; i < ns_.size(); ++i) ns_[i] = std::max(ns_[i], o.ns_[i]);
  counters_ += o.counters_;
  overlap_saved_ns_ = std::max(overlap_saved_ns_, o.overlap_saved_ns_);
}

PhaseProfile PhaseProfile::scaled(double f) const {
  PhaseProfile r = *this;
  for (double& v : r.ns_) v *= f;
  r.overlap_saved_ns_ *= f;
  return r;
}

std::string PhaseProfile::breakdown(double total_override_ns) const {
  const double tot = total_override_ns > 0.0 ? total_override_ns : total_ns();
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    const double v = ns_[i];
    if (v <= 0.0) continue;
    os << to_string(static_cast<Phase>(i)) << "=" << v / 1e6 << "ms("
       << (tot > 0 ? 100.0 * v / tot : 0.0) << "%) ";
  }
  if (overlap_saved_ns_ > 0.0)
    os << "overlap_saved=" << overlap_saved_ns_ / 1e6 << "ms ";
  return os.str();
}

}  // namespace numabfs::sim
