#pragma once
/// \file vclock.hpp
/// Per-rank virtual clock. All simulated time flows through this: compute
/// kernels charge `count * unit_cost`, collectives charge modeled transfer
/// times, and barriers advance everyone to the group maximum (the
/// difference being accounted as stall). Virtual time never reads the host
/// clock, so results are bit-deterministic under any thread schedule.

#include <cassert>

namespace numabfs::sim {

class VClock {
 public:
  /// Current virtual time in nanoseconds since run start.
  double now_ns() const { return t_; }

  /// Advance by a non-negative amount of modeled work/transfer time.
  void charge_ns(double ns) {
    assert(ns >= 0.0);
    t_ += ns;
  }

  /// Jump forward to an absolute time (used by barriers; never backwards).
  void advance_to_ns(double t_abs) {
    assert(t_abs >= t_);
    t_ = t_abs;
  }

  void reset() { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

}  // namespace numabfs::sim
