#pragma once
/// \file cost_params.hpp
/// Calibrated unit costs for the virtual-time model.
///
/// Conventions: times are in nanoseconds, bandwidths in bytes per nanosecond
/// (numerically equal to GB/s). Defaults are calibrated against Table I of
/// the paper (Xeon X7550, DDR3-1066 behind Intel SMB, QPI 6.4 GT/s, dual
/// 40 Gb/s InfiniBand) and the usual Nehalem-EX latency literature
/// (Molka et al., PACT'09, cited by the paper for the remote-cache claim).

#include <cstdint>

namespace numabfs::sim {

struct CostParams {
  // --- memory hierarchy -----------------------------------------------
  double llc_hit_ns = 18.0;        ///< local shared L3 hit
  double remote_cache_ns = 110.0;  ///< another socket's L3 via QPI (glueless 8S)
  /// Local DDR3 behind Intel SMB. On a glueless 8-socket Nehalem-EX even a
  /// local access snoops the remote caches (paper argument (d), Molka et
  /// al.), so this sits well above a 2-socket part's latency — and above
  /// remote_cache_ns.
  double local_dram_ns = 130.0;
  double remote_dram_ns = 190.0;   ///< one QPI hop away
  double remote_dram_2hop_ns = 230.0;  ///< two QPI hops away
  double local_bw = 17.1;          ///< peak local memory bandwidth per socket
  double qpi_bw = 12.8;            ///< per QPI link, per direction

  // --- intra-node transfers (shared-memory copies between sockets) -----
  /// Effective pipelined copy bandwidth of one intra-node flow. A copy
  /// reads from one socket's memory and writes another's, crossing QPI, so
  /// this sits well below `local_bw`.
  double shm_copy_bw = 4.5;
  /// When k flows target the same socket's memory system they share its
  /// bandwidth; the per-socket ceiling for concurrent copies.
  double socket_mem_ceiling = 12.0;
  /// Copy-in/copy-out factor for MPI shared-memory channels: intra-node
  /// point-to-point traffic crosses a bounce buffer, doubling memory traffic
  /// relative to a direct shared-mapping copy (Chai et al., Cluster'06).
  double cico_factor = 2.5;
  /// Node-wide ceiling for *concurrent* shared-memory channel copies
  /// (GB/s). Eight simultaneous CICO flows triple-touch memory (read src,
  /// bounce, write dst) and thrash every L3, so the aggregate sits far
  /// below the node's raw DRAM bandwidth; this is what makes eight
  /// processes per node pay 2.34x the allgather cost of one (Fig. 12).
  double node_copy_ceiling = 32.0;

  // --- network ----------------------------------------------------------
  double nic_port_bw = 3.4;        ///< 40 Gb/s QDR IB: ~3.4 GB/s MPI payload
  double nic_msg_latency_ns = 1700.0;  ///< per-message alpha (IB verbs + MPI)
  /// Saturation shape for concurrent flows out of one node (paper Fig. 4):
  /// achieved = peak * f / (f + nic_saturation_k). k = 1 makes one flow
  /// reach ~half of peak and eight flows ~89% of peak, matching the figure.
  double nic_saturation_k = 1.0;
  /// Extra cost per additional pipeline chunk of a K-chunked collective:
  /// each split adds one more message (header + MPI envelope) per hop plus
  /// a pipeline drain bubble. This is what makes the chunk depth an
  /// *interior* optimum instead of "more chunks is always better"
  /// (coll_model::pipelined2_ns alone is monotone in K).
  double chunk_split_overhead_ns = 400.0;

  // --- CPU work ---------------------------------------------------------
  /// Instruction overhead per scanned edge beyond its memory traffic.
  double edge_work_ns = 1.0;
  /// Instruction overhead per bitmap probe (index math, branch).
  double probe_work_ns = 0.6;
  /// Cost per word of a sequential streaming pass (bitmap rebuilds etc.),
  /// excluding the bandwidth term.
  double stream_word_ns = 0.4;

  /// Memory-level parallelism: each core keeps several independent bitmap
  /// probes in flight, so the *effective* cost of a DRAM miss is its
  /// latency divided by this overlap factor (out-of-order Nehalem cores
  /// sustain ~4 outstanding misses on pointer-free probe streams).
  double memory_parallelism = 6.0;

  // --- parallel efficiency ---------------------------------------------
  /// Intra-socket scaling: speedup(T) = T / (1 + (T-1)*omp_gamma).
  /// gamma = 0.021 gives 6.98x on 8 cores, the paper's Fig. 3 measurement.
  double omp_gamma = 0.021;
  /// Extra per-probe multiplier when all sockets of a node hammer the QPI
  /// mesh at once (ppn=1 interleave at full thread count): 64 threads of
  /// random remote traffic saturate the mesh, nearly doubling latency
  /// (calibrated to Fig. 3's 2.77x-on-8-cores point).
  double qpi_congestion = 1.2;
  /// Multiplier applied on top of remote costs when all traffic homes on a
  /// single socket's memory controller (the `noflag` first-touch case).
  double single_home_penalty = 1.35;

  // --- cache-model calibration ------------------------------------------
  /// Fraction of the LLC realistically available to the frontier bitmaps;
  /// the CSR stream continuously evicts, so they never get the full 18 MB.
  /// At 0.10 the default-granularity (64) summary of a scale-32 run is only
  /// ~22% resident per socket — the headroom the paper's granularity
  /// optimization (Fig. 16) exploits.
  double llc_share = 0.10;
  /// Structure sizes are multiplied by `capacity_scale` before being
  /// compared to cache capacity, so a scale-20 run reproduces the
  /// size:cache ratios of the paper's scale-32 runs. See
  /// `with_paper_cache_scaling`.
  double capacity_scale = 1.0;

  /// Returns a copy whose model reproduces the paper's scale-32 *ratios*
  /// for a graph of `n_vertices`:
  ///  - capacity_scale = 2^32 / n_vertices, so our structures "look" as big
  ///    relative to the LLC as the paper's did;
  ///  - the per-message NIC latency shrinks by the same factor, so the
  ///    latency:bandwidth proportions of the collectives match the paper's
  ///    multi-megabyte chunks instead of being alpha-dominated at the
  ///    scaled-down sizes.
  CostParams with_paper_cache_scaling(std::uint64_t n_vertices) const {
    CostParams c = *this;
    c.capacity_scale =
        static_cast<double>(1ull << 32) / static_cast<double>(n_vertices);
    c.nic_msg_latency_ns = nic_msg_latency_ns / c.capacity_scale;
    c.chunk_split_overhead_ns = chunk_split_overhead_ns / c.capacity_scale;
    return c;
  }
};

}  // namespace numabfs::sim
