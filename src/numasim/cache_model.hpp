#pragma once
/// \file cache_model.hpp
/// Analytic last-level-cache residency model.
///
/// For a structure of size S probed uniformly at random, the expected hit
/// ratio under an effective cache capacity C is ~ min(1, C/S): either the
/// structure fits (every probe hits after warm-up) or a C/S fraction of its
/// lines is resident at any time. Sharing one copy across k sockets of a
/// node multiplies the effective capacity by k — the paper's argument (b)
/// for sharing `in_queue` (Section III.A).

#include <algorithm>
#include <cstdint>

#include "numasim/cost_params.hpp"

namespace numabfs::sim {

class CacheModel {
 public:
  CacheModel(const CostParams& cp, std::uint64_t llc_bytes_per_socket)
      : cp_(cp), llc_(static_cast<double>(llc_bytes_per_socket)) {}

  /// Expected hit ratio of uniform random probes into `structure_bytes`,
  /// when `sharing_sockets` sockets keep a single copy (>=1).
  /// `capacity_scale` (see CostParams) inflates the structure so small test
  /// graphs reproduce the paper's scale-32 size:cache ratios.
  double hit_ratio(std::uint64_t structure_bytes, int sharing_sockets) const {
    const double s =
        static_cast<double>(structure_bytes) * cp_.capacity_scale;
    if (s <= 0.0) return 1.0;
    const double c = llc_ * cp_.llc_share * std::max(1, sharing_sockets);
    return std::min(1.0, c / s);
  }

  /// Effective usable capacity (bytes, unscaled) for one socket.
  double usable_llc() const { return llc_ * cp_.llc_share; }

 private:
  CostParams cp_;
  double llc_;
};

}  // namespace numabfs::sim
