#include "numasim/mem_model.hpp"

#include <algorithm>

namespace numabfs::sim {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::socket_local: return "socket_local";
    case Placement::interleaved: return "interleaved";
    case Placement::node_shared: return "node_shared";
    case Placement::single_home: return "single_home";
  }
  return "?";
}

MemModel::MemModel(const CostParams& cp, const Topology& topo)
    : cp_(cp), topo_(topo), cache_(cp, topo.llc_bytes_per_socket()) {
  const int s = topo_.sockets_per_node();
  if (s <= 1) {
    avg_remote_dram_ = cp_.local_dram_ns;  // no remote sockets exist
  } else {
    double sum = 0.0;
    int pairs = 0;
    for (int b = 1; b < s; ++b) {  // distances from socket 0 are representative
      sum += topo_.qpi_hops(0, b) >= 2 ? cp_.remote_dram_2hop_ns
                                       : cp_.remote_dram_ns;
      ++pairs;
    }
    avg_remote_dram_ = sum / pairs;
  }
}

double MemModel::probe_ns(Placement p, std::uint64_t structure_bytes,
                          int sharing_sockets, bool full_node_load) const {
  const int s = topo_.sockets_per_node();
  const double h = cache_.hit_ratio(structure_bytes, sharing_sockets);

  // Hit cost: read-mostly lines replicate into the prober's own L3 up to
  // one socket's share (h_local); the additional hits a shared copy gains
  // (paper argument (b)) are remote-cache hits — still cheaper than DRAM
  // (argument (d), Molka et al.).
  double hit_cost = cp_.llc_hit_ns;
  if (sharing_sockets > 1 && h > 0.0) {
    const double h_local = cache_.hit_ratio(structure_bytes, 1);
    hit_cost =
        (h_local * cp_.llc_hit_ns + (h - h_local) * cp_.remote_cache_ns) / h;
  }

  // Miss cost by page placement.
  double miss_cost;
  bool crosses_qpi;
  switch (p) {
    case Placement::socket_local:
      miss_cost = cp_.local_dram_ns;
      crosses_qpi = false;
      break;
    case Placement::interleaved:
    case Placement::node_shared:
      if (s <= 1) {
        miss_cost = cp_.local_dram_ns;
        crosses_qpi = false;
      } else {
        miss_cost =
            cp_.local_dram_ns / s + avg_remote_dram_ * (s - 1) / s;
        crosses_qpi = true;
      }
      break;
    case Placement::single_home:
      if (s <= 1) {
        miss_cost = cp_.local_dram_ns;
        crosses_qpi = false;
      } else {
        miss_cost =
            (cp_.local_dram_ns / s + avg_remote_dram_ * (s - 1) / s) *
            cp_.single_home_penalty;
        crosses_qpi = true;
      }
      break;
    default:
      miss_cost = cp_.local_dram_ns;
      crosses_qpi = false;
  }
  if (crosses_qpi && full_node_load) miss_cost *= 1.0 + cp_.qpi_congestion;

  // Out-of-order cores overlap independent probes (MLP): the effective
  // per-probe memory time is the blended latency divided by the overlap.
  const double mem_ns = (h * hit_cost + (1.0 - h) * miss_cost) /
                        std::max(1.0, cp_.memory_parallelism);
  return cp_.probe_work_ns + mem_ns;
}

double MemModel::stream_ns_per_byte(Placement p) const {
  switch (p) {
    case Placement::socket_local:
      return 1.0 / cp_.local_bw;
    case Placement::interleaved:
    case Placement::node_shared:
      return 1.0 / std::min(cp_.local_bw, cp_.qpi_bw);
    case Placement::single_home:
      return cp_.single_home_penalty / std::min(cp_.local_bw, cp_.qpi_bw);
  }
  return 1.0 / cp_.local_bw;
}

double MemModel::omp_speedup(int threads) const {
  if (threads <= 1) return 1.0;
  const double t = threads;
  return t / (1.0 + (t - 1.0) * cp_.omp_gamma);
}

}  // namespace numabfs::sim
