#include "numasim/topology.hpp"

#include <bit>
#include <sstream>

namespace numabfs::sim {

Topology Topology::xeon_x7550_cluster(int nodes) {
  Params p;
  p.nodes = nodes;
  p.sockets_per_node = 8;
  p.cores_per_socket = 8;
  p.llc_bytes_per_socket = 18ull << 20;
  p.dram_bytes_per_socket = 32ull << 30;
  p.nic_ports_per_node = 2;
  return Topology(p);
}

Topology Topology::single_socket(int cores) {
  Params p;
  p.nodes = 1;
  p.sockets_per_node = 1;
  p.cores_per_socket = cores;
  p.llc_bytes_per_socket = 18ull << 20;
  p.dram_bytes_per_socket = 32ull << 30;
  p.nic_ports_per_node = 1;
  return Topology(p);
}

int Topology::qpi_hops(int socket_a, int socket_b) const {
  if (socket_a == socket_b) return 0;
  if (p_.sockets_per_node <= 4) return 1;  // small meshes are fully connected
  // 3-cube links (differ in one bit) plus the long diagonal (differ in all
  // three bits) give four links per socket; everything else is two hops.
  const unsigned diff = static_cast<unsigned>(socket_a ^ socket_b) & 7u;
  const int bits = std::popcount(diff);
  return (bits == 1 || bits == 3) ? 1 : 2;
}

Topology Topology::with_weak_node(int node, double factor) const {
  Params p = p_;
  p.weak_node = node;
  p.weak_node_factor = factor;
  return Topology(p);
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "Cluster: " << p_.nodes << " node(s), " << total_cores() << " cores total\n"
     << "Per node:\n"
     << "  " << p_.sockets_per_node << " sockets x " << p_.cores_per_socket
     << " cores\n"
     << "  " << (p_.llc_bytes_per_socket >> 20) << " MB shared L3 per socket\n"
     << "  " << (p_.dram_bytes_per_socket >> 30) << " GB DRAM per socket ("
     << ((p_.dram_bytes_per_socket * static_cast<std::uint64_t>(p_.sockets_per_node)) >> 30)
     << " GB per node)\n"
     << "  " << p_.nic_ports_per_node << " NIC port(s)\n";
  if (p_.weak_node >= 0)
    os << "  weak node: " << p_.weak_node << " (NIC x" << p_.weak_node_factor
       << ")\n";
  return os.str();
}

}  // namespace numabfs::sim
