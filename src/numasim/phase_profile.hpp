#pragma once
/// \file phase_profile.hpp
/// Named-phase time accounting, mirroring the breakdown the paper reports in
/// Fig. 11 (top-down / bottom-up x computation / communication, switch,
/// stall) plus event counters the kernels measure directly.

#include <array>
#include <cstdint>
#include <string>

namespace numabfs::sim {

/// The phases of one BFS in the paper's breakdown.
enum class Phase : int {
  td_comp = 0,   ///< top-down computation
  td_comm,       ///< top-down communication (allgathers)
  bu_comp,       ///< bottom-up computation
  bu_comm,       ///< bottom-up communication (the two allgathers of Fig. 1)
  switch_conv,   ///< direction-switch data-structure conversion
  stall,         ///< idle at barriers due to load imbalance
  other,         ///< root setup, bookkeeping
  kCount
};

const char* to_string(Phase p);

/// Event counters measured (not modeled) during kernels. These are the
/// quantities the cost model multiplies by unit costs; tests assert on them
/// directly.
struct Counters {
  std::uint64_t edges_scanned = 0;       ///< adjacency entries touched
  std::uint64_t summary_probes = 0;      ///< in_queue_summary reads
  std::uint64_t summary_zero_skips = 0;  ///< probes answered by a zero bit
  std::uint64_t inqueue_probes = 0;      ///< in_queue reads (summary was 1)
  std::uint64_t frontier_hits = 0;       ///< probes that found a parent
  std::uint64_t queue_writes = 0;        ///< out_queue/pred updates
  std::uint64_t bytes_intra_node = 0;    ///< comm bytes moved inside nodes
  std::uint64_t bytes_inter_node = 0;    ///< comm bytes crossing the network
  /// What bytes_intra_node + bytes_inter_node would have been without the
  /// exchange codec (DESIGN.md §10). Every site that counts wire bytes also
  /// counts its raw equivalent, so codec-off runs satisfy
  /// bytes_raw_equiv == bytes_intra_node + bytes_inter_node exactly, and
  /// codec-on runs expose the *measured* compression ratio.
  std::uint64_t bytes_raw_equiv = 0;
  std::uint64_t vertices_visited = 0;
  // Robustness events (chaos mode). Counted where the runtime reacts, so
  // fault handling is first-class observable alongside the kernel events.
  std::uint64_t retransmits = 0;    ///< p2p/collective chunk re-sends after
                                    ///< a drop or a checksum reject
  std::uint64_t recv_timeouts = 0;  ///< finite recv waits that expired
  std::uint64_t adoptions = 0;      ///< dead partitions adopted in recovery
  /// Dirty-row / patched-group reads through a merged epoch view (dynamic
  /// graph layer, DESIGN.md section 14): the measured read amplification
  /// of serving off base-plus-deltas instead of a compacted CSR.
  std::uint64_t delta_probes = 0;

  Counters& operator+=(const Counters& o);
};

/// Per-rank accumulator: time per phase plus counters.
class PhaseProfile {
 public:
  void add(Phase p, double ns) { ns_[static_cast<int>(p)] += ns; }
  double get(Phase p) const { return ns_[static_cast<int>(p)]; }
  double total_ns() const;
  /// Total of the communication phases (td_comm + bu_comm).
  double comm_ns() const { return get(Phase::td_comm) + get(Phase::bu_comm); }

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  /// Modeled time the chunk-pipelined exchange saved versus running its
  /// wire and codec stages back-to-back (kept separate so Fig. 11-style
  /// breakdowns remain truthful about what was charged).
  void add_overlap_saved(double ns) { overlap_saved_ns_ += ns; }
  double overlap_saved_ns() const { return overlap_saved_ns_; }

  void clear();
  /// Element-wise sum (used to average over ranks / roots).
  PhaseProfile& operator+=(const PhaseProfile& o);
  /// Element-wise max over phases; counters are summed.
  void max_with(const PhaseProfile& o);
  PhaseProfile scaled(double f) const;

  std::string breakdown(double total_override_ns = -1.0) const;

 private:
  std::array<double, static_cast<int>(Phase::kCount)> ns_{};
  Counters counters_{};
  double overlap_saved_ns_ = 0.0;
};

}  // namespace numabfs::sim
