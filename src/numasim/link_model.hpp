#pragma once
/// \file link_model.hpp
/// alpha-beta + contention transfer model for the two transports BFS
/// communication uses: intra-node shared-memory copies (crossing the QPI
/// mesh) and inter-node InfiniBand.
///
/// The NIC saturation curve reproduces the paper's Fig. 4: one flow per node
/// reaches roughly half of the dual-port peak, eight concurrent flows ~90%.

#include <algorithm>
#include <cstdint>

#include "numasim/cost_params.hpp"
#include "numasim/topology.hpp"

namespace numabfs::sim {

class LinkModel {
 public:
  LinkModel(const CostParams& cp, const Topology& topo) : cp_(cp), topo_(topo) {}

  /// Aggregate egress bandwidth (bytes/ns) a node achieves with `flows`
  /// concurrent inter-node flows; `nic_factor` scales for the weak node.
  double nic_node_bw(int flows, double nic_factor = 1.0) const {
    const double peak = cp_.nic_port_bw *
                        static_cast<double>(topo_.nic_ports_per_node()) *
                        nic_factor;
    const double f = static_cast<double>(std::max(1, flows));
    return peak * f / (f + cp_.nic_saturation_k);
  }

  /// Per-flow bandwidth when `flows` flows share one node's NIC(s).
  double nic_flow_bw(int flows, double nic_factor = 1.0) const {
    const double per_flow =
        nic_node_bw(flows, nic_factor) / static_cast<double>(std::max(1, flows));
    return std::min(per_flow, cp_.nic_port_bw * nic_factor);
  }

  /// Time for one flow to move `bytes` between two nodes while `flows`
  /// flows share the tighter of the two nodes' NICs.
  double nic_transfer_ns(std::uint64_t bytes, int flows, int node_a,
                         int node_b) const {
    const double factor =
        std::min(topo_.nic_factor(node_a), topo_.nic_factor(node_b));
    return cp_.nic_msg_latency_ns +
           static_cast<double>(bytes) / nic_flow_bw(flows, factor);
  }

  /// Per-flow bandwidth of an intra-node copy when `flows` concurrent
  /// copies target the same socket's memory system.
  double shm_flow_bw(int flows) const {
    const double per_flow =
        cp_.socket_mem_ceiling / static_cast<double>(std::max(1, flows));
    return std::min(cp_.shm_copy_bw, per_flow);
  }

  /// Time to copy `bytes` between two sockets of a node, `flows` sharing
  /// the destination's memory system.
  double shm_copy_ns(std::uint64_t bytes, int flows) const {
    return static_cast<double>(bytes) / shm_flow_bw(flows);
  }

 private:
  CostParams cp_;
  Topology topo_;
};

}  // namespace numabfs::sim
