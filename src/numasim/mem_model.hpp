#pragma once
/// \file mem_model.hpp
/// Prices memory accesses under the placement policies the paper studies.
///
/// A *placement* says where a structure's pages live relative to the probing
/// socket; combined with the cache model it yields a per-probe cost in
/// nanoseconds. The BFS kernels count real probe events and multiply by
/// these unit costs — the counts are measured, only the unit cost is modeled.

#include <cstdint>

#include "numasim/cache_model.hpp"
#include "numasim/cost_params.hpp"
#include "numasim/topology.hpp"

namespace numabfs::sim {

/// Where a structure's pages live relative to the socket probing it.
enum class Placement {
  socket_local,  ///< all pages in the prober's socket (ppn=8 + bind)
  interleaved,   ///< round-robin across the node's sockets (numactl --interleave)
  node_shared,   ///< one copy shared by all sockets of a node (mmap sharing)
  single_home,   ///< all pages first-touched onto one socket (the noflag case)
};

const char* to_string(Placement p);

class MemModel {
 public:
  MemModel(const CostParams& cp, const Topology& topo);

  /// Cost of one uniform-random probe into a structure of `structure_bytes`.
  /// `sharing_sockets` > 1 means the copy is shared by that many sockets
  /// (enlarging effective cache, Section III.A). `full_node_load` marks
  /// phases where every socket of the node is probing concurrently, which
  /// congests the QPI mesh for any cross-socket placement.
  double probe_ns(Placement p, std::uint64_t structure_bytes,
                  int sharing_sockets, bool full_node_load) const;

  /// Cost per byte of a sequential streaming pass (rebuilds, conversions).
  double stream_ns_per_byte(Placement p) const;

  /// Intra-socket OpenMP scaling: speedup of T threads over one.
  double omp_speedup(int threads) const;

  /// Average remote-DRAM latency over all unequal socket pairs of a node
  /// (mixes 1-hop and 2-hop QPI distances).
  double avg_remote_dram_ns() const { return avg_remote_dram_; }

  const CacheModel& cache() const { return cache_; }

 private:
  CostParams cp_;
  Topology topo_;
  CacheModel cache_;
  double avg_remote_dram_ = 0.0;
};

}  // namespace numabfs::sim
