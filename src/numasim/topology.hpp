#pragma once
/// \file topology.hpp
/// Static description of the simulated NUMA cluster: nodes, sockets, cores,
/// caches, the intra-node QPI mesh and the per-node NICs.
///
/// The default preset, `Topology::xeon_x7550_cluster()`, models Table I of
/// Cui et al. (CLUSTER 2012): 16 nodes, each with eight Intel Xeon X7550
/// sockets (8 cores, 18 MB shared L3, four 6.4 GT/s QPI links) and two
/// 40 Gb/s InfiniBand ports.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace numabfs::sim {

/// Identifies one socket in the cluster as (node, socket-within-node).
struct SocketId {
  int node = 0;
  int socket = 0;
  friend bool operator==(const SocketId&, const SocketId&) = default;
};

/// Immutable cluster shape. All counts are per the level above them
/// (sockets per node, cores per socket, ...).
class Topology {
 public:
  struct Params {
    int nodes = 1;
    int sockets_per_node = 8;
    int cores_per_socket = 8;
    std::uint64_t llc_bytes_per_socket = 18ull << 20;   ///< shared L3 per CPU
    std::uint64_t dram_bytes_per_socket = 32ull << 30;  ///< 256 GB / 8 sockets
    int nic_ports_per_node = 2;                         ///< dual InfiniBand
    /// NIC bandwidth multiplier applied to `weak_node` (the paper reports one
    /// of its 16 nodes had degraded InfiniBand performance).
    double weak_node_factor = 1.0;
    int weak_node = -1;  ///< node index with degraded NIC; -1 disables
  };

  explicit Topology(const Params& p) : p_(p) {
    if (p.nodes < 1 || p.sockets_per_node < 1 || p.cores_per_socket < 1)
      throw std::invalid_argument("Topology: counts must be >= 1");
    if (p.nic_ports_per_node < 1)
      throw std::invalid_argument("Topology: need at least one NIC port");
    if (p.weak_node >= p.nodes)
      throw std::invalid_argument("Topology: weak_node out of range");
  }

  /// Table I preset: `nodes` eight-socket Xeon X7550 machines.
  static Topology xeon_x7550_cluster(int nodes);

  /// Single-socket commodity box (used by unit tests and the quickstart).
  static Topology single_socket(int cores = 8);

  int nodes() const { return p_.nodes; }
  int sockets_per_node() const { return p_.sockets_per_node; }
  int cores_per_socket() const { return p_.cores_per_socket; }
  int cores_per_node() const { return p_.sockets_per_node * p_.cores_per_socket; }
  int total_cores() const { return p_.nodes * cores_per_node(); }
  int total_sockets() const { return p_.nodes * p_.sockets_per_node; }
  std::uint64_t llc_bytes_per_socket() const { return p_.llc_bytes_per_socket; }
  std::uint64_t dram_bytes_per_socket() const { return p_.dram_bytes_per_socket; }
  int nic_ports_per_node() const { return p_.nic_ports_per_node; }

  /// NIC bandwidth multiplier for `node` (see Params::weak_node).
  double nic_factor(int node) const {
    return node == p_.weak_node ? p_.weak_node_factor : 1.0;
  }
  int weak_node() const { return p_.weak_node; }

  /// QPI hop count between two sockets of the *same* node: 0 if identical,
  /// 1 if directly linked, 2 otherwise. The 8-socket X7550 topology (Fig. 2)
  /// gives each socket four QPI links; we model it as a 3-cube plus the
  /// long diagonal, which bounds every pair at <= 2 hops.
  int qpi_hops(int socket_a, int socket_b) const;

  /// Human-readable Table-I-style description (used by bench_table1_config).
  std::string describe() const;

  /// Returns a copy with a weak node configured (paper Figs. 13/15).
  Topology with_weak_node(int node, double factor) const;

  const Params& params() const { return p_; }

 private:
  Params p_;
};

}  // namespace numabfs::sim
