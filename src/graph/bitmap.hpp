#pragma once
/// \file bitmap.hpp
/// Packed bitmaps: the frontier representation of the hybrid BFS
/// (`in_queue` / `out_queue` of the paper's Fig. 1).
///
/// `BitmapView` is non-owning so the same code runs over private rank
/// buffers and node-shared segments. Writes are plain (not atomic); the BFS
/// partitions write ranges word-disjointly and separates read/write phases
/// with barriers, exactly like the paper's scheme. The one place unaligned
/// concurrent writes can occur — summary-chunk assembly at rank boundaries —
/// goes through `copy_bits`, which uses atomic OR on boundary words.

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace numabfs::graph {

class BitmapView {
 public:
  BitmapView() = default;
  BitmapView(std::span<std::uint64_t> words, std::uint64_t nbits)
      : words_(words), nbits_(nbits) {
    assert(words.size() >= words_for(nbits));
  }

  static std::size_t words_for(std::uint64_t nbits) {
    return static_cast<std::size_t>((nbits + 63) / 64);
  }

  std::uint64_t size_bits() const { return nbits_; }
  std::uint64_t size_bytes() const { return words_.size() * 8; }
  std::span<std::uint64_t> words() { return words_; }
  std::span<const std::uint64_t> words() const { return words_; }

  bool get(std::uint64_t i) const {
    assert(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::uint64_t i) {
    assert(i < nbits_);
    words_[i >> 6] |= 1ull << (i & 63);
  }
  void clear(std::uint64_t i) {
    assert(i < nbits_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  void reset() { std::memset(words_.data(), 0, words_.size() * 8); }

  /// Zero the bits in [begin, end), leaving the rest of any straddled
  /// boundary word intact (partition-range wipes of shared maps).
  void clear_range(std::uint64_t begin, std::uint64_t end);

  /// Population count over [begin, end) bit positions.
  std::uint64_t count_range(std::uint64_t begin, std::uint64_t end) const;
  std::uint64_t count() const { return count_range(0, nbits_); }
  bool any() const;

  /// Invoke f(bit_index) for every set bit in [begin, end).
  template <typename F>
  void for_each_set(std::uint64_t begin, std::uint64_t end, F&& f) const {
    assert(begin <= end && end <= nbits_);
    std::uint64_t w = begin >> 6;
    const std::uint64_t w_end = (end + 63) >> 6;
    for (; w < w_end; ++w) {
      std::uint64_t word = words_[w];
      if (w == (begin >> 6)) word &= ~0ull << (begin & 63);
      if (((w + 1) << 6) > end) {
        const std::uint64_t tail = end & 63;
        if (tail) word &= (1ull << tail) - 1;
      }
      while (word) {
        const int b = std::countr_zero(word);
        f(static_cast<std::uint64_t>((w << 6) + b));
        word &= word - 1;
      }
    }
  }
  template <typename F>
  void for_each_set(F&& f) const {
    for_each_set(0, nbits_, static_cast<F&&>(f));
  }

 private:
  std::span<std::uint64_t> words_;
  std::uint64_t nbits_ = 0;
};

/// Owning bitmap.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint64_t nbits)
      : storage_(BitmapView::words_for(nbits), 0), nbits_(nbits) {}

  BitmapView view() { return BitmapView({storage_.data(), storage_.size()}, nbits_); }
  BitmapView view() const {
    // Read-only users go through the same view type; the const_cast is
    // confined here and the callers below never write through it.
    auto* self = const_cast<Bitmap*>(this);
    return BitmapView({self->storage_.data(), self->storage_.size()}, nbits_);
  }

  std::uint64_t size_bits() const { return nbits_; }

 private:
  std::vector<std::uint64_t> storage_;
  std::uint64_t nbits_ = 0;
};

/// Copy `nbits` bits from (src, src_bit) to (dst, dst_bit) by OR-ing them
/// in. Boundary words that other writers may touch concurrently are merged
/// with atomic fetch_or; interior words use plain stores. Destination bits
/// must be zero beforehand (frontier buffers are reset each level), which
/// makes OR equivalent to copy.
void copy_bits(std::span<std::uint64_t> dst, std::uint64_t dst_bit,
               std::span<const std::uint64_t> src, std::uint64_t src_bit,
               std::uint64_t nbits, bool atomic_boundaries);

}  // namespace numabfs::graph
