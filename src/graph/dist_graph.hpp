#pragma once
/// \file dist_graph.hpp
/// Per-rank graph slices for the distributed BFS.
///
/// Each rank owns a contiguous vertex block and stores two views of the
/// edges incident to it (the graph is undirected, so these are the same
/// edge set, indexed two ways):
///  - bottom-up view: CSR over owned vertices v, listing global neighbors u
///    ("search for a parent", Beamer et al.);
///  - top-down view: the same pairs grouped by the non-owned endpoint u,
///    so a frontier vertex u's owned children are found in one group scan.
///
/// Construction happens once, outside the timed region (Graph500 also
/// excludes graph construction from TEPS).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace numabfs::graph {

struct LocalGraph {
  std::uint64_t vbegin = 0;
  std::uint64_t vend = 0;

  // Bottom-up: row r is owned vertex (vbegin + r); entries are global ids.
  std::vector<std::uint64_t> bu_offsets;  // size owned+1
  std::vector<Vertex> bu_adj;

  // Top-down: group k covers source td_keys[k] (global, ascending) and its
  // owned targets td_adj[td_offsets[k] .. td_offsets[k+1]).
  std::vector<Vertex> td_keys;
  std::vector<std::uint64_t> td_offsets;  // size td_keys.size()+1
  std::vector<Vertex> td_adj;

  std::uint64_t owned() const { return vend - vbegin; }
  std::uint64_t owned_edges() const { return bu_adj.size(); }

  std::span<const Vertex> bu_neighbors(std::uint64_t local_v) const {
    return {bu_adj.data() + bu_offsets[local_v],
            bu_adj.data() + bu_offsets[local_v + 1]};
  }
  std::span<const Vertex> td_group(std::size_t k) const {
    return {td_adj.data() + td_offsets[k], td_adj.data() + td_offsets[k + 1]};
  }
};

struct DistGraph {
  std::uint64_t n = 0;
  std::uint64_t directed_edges = 0;  ///< total adjacency entries (= 2m)
  Partition1D part{1, 1};
  std::vector<LocalGraph> locals;

  static DistGraph build(const Csr& g, const Partition1D& part);
};

}  // namespace numabfs::graph
