#pragma once
/// \file dist_graph.hpp
/// Per-rank graph slices for the distributed BFS.
///
/// Each rank owns a contiguous vertex block and stores two views of the
/// edges incident to it (the graph is undirected, so these are the same
/// edge set, indexed two ways):
///  - bottom-up view: CSR over owned vertices v, listing global neighbors u
///    ("search for a parent", Beamer et al.);
///  - top-down view: the same pairs grouped by the non-owned endpoint u,
///    so a frontier vertex u's owned children are found in one group scan.
///
/// Construction happens once, outside the timed region (Graph500 also
/// excludes graph construction from TEPS).
///
/// Dynamic overlay (DESIGN.md §14). A LocalGraph can also be a *merged
/// epoch view* over an immutable base slice: `base` points at the frozen
/// slice, `dirty_words` marks the owned vertices whose adjacency the delta
/// store changed at or before the pinned epoch, and the patch arrays hold
/// the merged rows of exactly those vertices. Reads of clean rows forward
/// to the base; reads of dirty rows (and of patched top-down groups) go
/// through the patch storage and are counted in `patch_reads` — the
/// measured read amplification the kernels charge via
/// UnitCosts::delta_probe_ns. The accessors below are the ONLY read
/// interface the BFS/MS-BFS kernels use, so they run unmodified against
/// either a frozen slice or a merged view.

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace numabfs::graph {

struct LocalGraph {
  std::uint64_t vbegin = 0;
  std::uint64_t vend = 0;

  // Bottom-up: row r is owned vertex (vbegin + r); entries are global ids.
  std::vector<std::uint64_t> bu_offsets;  // size owned+1
  std::vector<Vertex> bu_adj;

  // Top-down: group k covers source td_keys[k] (global, ascending) and its
  // owned targets td_adj[td_offsets[k] .. td_offsets[k+1]).
  std::vector<Vertex> td_keys;
  std::vector<std::uint64_t> td_offsets;  // size td_keys.size()+1
  std::vector<Vertex> td_adj;

  // --- dynamic overlay (unused when base == nullptr) --------------------
  /// Reference to one top-down group of a merged view: a range into either
  /// the base slice's td_adj (patched == false) or this view's
  /// patch_td_adj (patched == true). Offsets, not pointers, so a view can
  /// be moved or copied without dangling into its own storage.
  struct TdRef {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    bool patched = false;
  };

  /// Frozen base slice this view overlays (nullptr: this IS a base slice).
  /// The base must outlive the view (the snapshot layer guarantees it by
  /// holding the owning BaseVersion alive).
  const LocalGraph* base = nullptr;
  std::vector<std::uint64_t> dirty_words;  ///< bitmap over owned vertices
  std::vector<std::uint64_t> dirty_rank;   ///< per-word dirty-popcount prefix
  std::vector<std::uint64_t> patch_offsets;  ///< size dirty_count+1
  std::vector<Vertex> patch_adj;             ///< merged rows, sorted
  std::vector<TdRef> td_refs;         ///< one per merged td_keys entry
  std::vector<Vertex> patch_td_adj;   ///< patched group targets, sorted
  std::uint64_t merged_owned_edges = 0;
  /// Dirty-row / patched-group accesses since the last drain (measured
  /// read amplification). Mutated from const accessors; each LocalGraph
  /// has exactly one reading rank at a time (partition ownership, with
  /// barrier-ordered adoption hand-off), so no synchronization is needed.
  mutable std::uint64_t patch_reads = 0;

  std::uint64_t owned() const { return vend - vbegin; }
  std::uint64_t owned_edges() const {
    return base != nullptr ? merged_owned_edges : bu_adj.size();
  }

  bool is_dirty(std::uint64_t local_v) const {
    return base != nullptr &&
           ((dirty_words[local_v >> 6] >> (local_v & 63)) & 1ull) != 0;
  }
  std::uint64_t patch_row(std::uint64_t local_v) const {
    const std::uint64_t below =
        dirty_words[local_v >> 6] & ((1ull << (local_v & 63)) - 1);
    return dirty_rank[local_v >> 6] +
           static_cast<std::uint64_t>(std::popcount(below));
  }

  std::span<const Vertex> bu_neighbors(std::uint64_t local_v) const {
    if (base != nullptr) {
      if (is_dirty(local_v)) {
        ++patch_reads;
        const std::uint64_t r = patch_row(local_v);
        return {patch_adj.data() + patch_offsets[r],
                patch_adj.data() + patch_offsets[r + 1]};
      }
      return base->bu_neighbors(local_v);
    }
    return {bu_adj.data() + bu_offsets[local_v],
            bu_adj.data() + bu_offsets[local_v + 1]};
  }

  /// Degree of owned vertex (vbegin + local_v) under this view.
  std::uint64_t degree(std::uint64_t local_v) const {
    if (base != nullptr) {
      if (is_dirty(local_v)) {
        const std::uint64_t r = patch_row(local_v);
        return patch_offsets[r + 1] - patch_offsets[r];
      }
      return base->degree(local_v);
    }
    return bu_offsets[local_v + 1] - bu_offsets[local_v];
  }

  std::span<const Vertex> td_group(std::size_t k) const {
    if (base != nullptr) {
      const TdRef& t = td_refs[k];
      if (t.patched) {
        ++patch_reads;
        return {patch_td_adj.data() + t.off, patch_td_adj.data() + t.off + t.len};
      }
      return {base->td_adj.data() + t.off, base->td_adj.data() + t.off + t.len};
    }
    return {td_adj.data() + td_offsets[k], td_adj.data() + td_offsets[k + 1]};
  }

  /// Return and reset the dirty-read counter (called by the kernels right
  /// before they charge their modeled time, so merged-view amplification
  /// lands on the clock of the rank that did the reads).
  std::uint64_t take_patch_reads() const {
    const std::uint64_t r = patch_reads;
    patch_reads = 0;
    return r;
  }
};

struct DistGraph {
  std::uint64_t n = 0;
  std::uint64_t directed_edges = 0;  ///< total adjacency entries (= 2m)
  Partition1D part{1, 1};
  std::vector<LocalGraph> locals;

  static DistGraph build(const Csr& g, const Partition1D& part);
};

}  // namespace numabfs::graph
