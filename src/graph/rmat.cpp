#include "graph/rmat.hpp"

#include <cassert>

namespace numabfs::graph {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

/// Uniform double in [0,1) from a counter-based stream.
double u01(std::uint64_t seed, std::uint64_t ctr) {
  return static_cast<double>(splitmix64(seed ^ ctr * 0x2545f4914f6cdd1dull) >>
                             11) *
         (1.0 / 9007199254740992.0);  // 2^-53
}

/// Unbalanced Feistel network over `scale` bits: bijective for any round
/// count because each round (L,R) -> (R, L ^ F(R)) is invertible.
Vertex feistel(std::uint64_t key, int scale, Vertex v) {
  if (scale <= 1) return v;  // 0/1-bit domains: identity
  const int h2 = scale / 2;        // low half width
  const int h1 = scale - h2;       // high half width
  std::uint64_t l = static_cast<std::uint64_t>(v) >> h2;
  std::uint64_t r = v & ((1ull << h2) - 1);
  int wl = h1, wr = h2;
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t f =
        splitmix64(key ^ (r << 8) ^ static_cast<std::uint64_t>(round)) &
        ((1ull << wl) - 1);
    const std::uint64_t nl = r;
    const std::uint64_t nr = l ^ f;
    l = nl;
    r = nr;
    std::swap(wl, wr);
  }
  // After an even number of rounds the widths are back to (h1, h2).
  return static_cast<Vertex>((l << h2) | r);
}

}  // namespace

Vertex rmat_permute_label(const RmatParams& p, Vertex v) {
  if (!p.permute_labels) return v;
  return feistel(splitmix64(p.seed ^ 0xfeedfacecafebeefull), p.scale, v);
}

std::vector<Edge> rmat_edge_range(const RmatParams& p, std::uint64_t first,
                                  std::uint64_t count) {
  assert(p.scale >= 1 && p.scale <= 31);
  assert(p.a + p.b + p.c < 1.0);
  std::vector<Edge> edges;
  edges.reserve(count);
  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;
  for (std::uint64_t i = first; i < first + count; ++i) {
    const std::uint64_t eseed = splitmix64(p.seed + i);
    std::uint64_t u = 0, v = 0;
    for (int level = 0; level < p.scale; ++level) {
      const double x = u01(eseed, static_cast<std::uint64_t>(level));
      u <<= 1;
      v <<= 1;
      if (x < p.a) {
        // top-left quadrant: no bits set
      } else if (x < ab) {
        v |= 1;
      } else if (x < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.push_back(Edge{rmat_permute_label(p, static_cast<Vertex>(u)),
                         rmat_permute_label(p, static_cast<Vertex>(v))});
  }
  return edges;
}

std::vector<Edge> rmat_edges(const RmatParams& p) {
  return rmat_edge_range(p, 0, p.num_edges());
}

}  // namespace numabfs::graph
