#pragma once
/// \file reference_bfs.hpp
/// Textbook serial BFS over the full CSR — the oracle the distributed
/// implementations are validated against.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace numabfs::graph {

struct BfsTree {
  std::vector<Vertex> parent;       ///< kNoVertex where unreached
  std::vector<std::uint32_t> depth; ///< undefined where unreached
  std::uint64_t visited = 0;

  bool reached(Vertex v) const { return parent[v] != kNoVertex; }
};

BfsTree reference_bfs(const Csr& g, Vertex root);

}  // namespace numabfs::graph
