#pragma once
/// \file codec.hpp
/// Frontier-exchange codecs: the wire formats the communication layer can
/// choose between per level (see bfs/exchange and DESIGN.md §10).
///
/// Two real encoders over real bytes:
///  - a *dense bitmap* codec (zero-word run elision + byte-masked literal
///    words) for the `out_queue` chunks of bottom-up exchanges, optionally
///    guided by the chunk's summary bitmap to skip provably-zero regions;
///  - a *sparse* codec, either set-bit positions as delta varints (bitmap
///    input) or a zigzag-delta varint list (discovered-vertex lists, whose
///    order must be preserved exactly).
///
/// Every encoding starts with one mode byte; encoders that would exceed the
/// raw size fall back to an embedded raw mode, so the worst case is bounded
/// by raw + header. Decoders reproduce the input bit-for-bit — the
/// communication layer's honesty rule (wire time charged on *measured*
/// encoded bytes, never on an assumed ratio) depends on it, and the codec
/// tests fuzz the round trip across the density range.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace numabfs::graph {
class SummaryView;
}

namespace numabfs::graph::codec {

/// Wire-format family a frontier exchange picked for one level.
enum class Kind : int {
  raw = 0,           ///< unencoded words/lists (the pre-codec path)
  sparse_list = 1,   ///< delta-varint positions / zigzag-delta lists
  dense_bitmap = 2,  ///< zero-elision + word-RLE bitmap encoding
};

const char* to_string(Kind k);

/// Bytes of the LEB128 varint encoding of `v` (1..10).
std::size_t varint_len(std::uint64_t v);

/// Append the LEB128 varint encoding of `v`.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Read one varint at `pos`; stores it in `v` and returns the new position.
/// Throws std::invalid_argument on truncated or oversized input.
std::size_t get_varint(std::span<const std::uint8_t> in, std::size_t pos,
                       std::uint64_t& v);

// --- bitmap codecs ------------------------------------------------------
// Both encoders append one self-describing encoding of `words` to `out`
// and return the bytes appended; `decode_bitmap` inverts either (and the
// embedded raw fallback), so a receiver needs no side channel beyond the
// word count it already knows from the partition geometry.

/// Dense encoding: mode byte, then alternating (zero-run, literal-run)
/// varint word counts; each literal word is a byte-presence mask plus its
/// nonzero bytes. `guide`, when given, is a summary whose zero bits prove
/// the covered source bits zero; `words` starts at absolute bit
/// `guide_base_bit` of the summarized range, so the encoder can extend
/// zero runs without reading the (cache-hostile) words a zero summary bit
/// covers — output is identical either way. Falls back to embedded raw
/// when tokens would exceed it: appended size <= words.size() * 8 + 1.
std::size_t encode_dense(std::span<const std::uint64_t> words,
                         std::vector<std::uint8_t>& out,
                         const SummaryView* guide = nullptr,
                         std::uint64_t guide_base_bit = 0);

/// Sparse bitmap encoding: mode byte, varint set-bit count, then the first
/// set position and successive gaps as varints. Same raw-fallback bound.
std::size_t encode_bitmap_sparse(std::span<const std::uint64_t> words,
                                 std::vector<std::uint8_t>& out);

/// Decode one bitmap encoding (either encoder's output, any mode) into
/// exactly `words.size()` words, overwriting them. Returns bytes consumed.
/// Throws std::invalid_argument on malformed input.
std::size_t decode_bitmap(std::span<const std::uint8_t> in,
                          std::span<std::uint64_t> words);

// --- vertex-list codec --------------------------------------------------

/// Encode a vertex list preserving order: mode byte, varint count, first
/// value, then zigzag-encoded deltas (ascending lists cost ~1 byte per
/// small gap; arbitrary order still round-trips). Falls back to embedded
/// raw (little-endian 4-byte vertices) when varints would exceed it:
/// appended size <= 4 * list.size() + kListHeaderMax.
std::size_t encode_list(std::span<const Vertex> list,
                        std::vector<std::uint8_t>& out);

/// Upper bound on encode_list overhead beyond the raw payload.
inline constexpr std::size_t kListHeaderMax = 11;  // mode + varint count

/// Decode one list encoding, *appending* the vertices to `out` in their
/// original order. Returns bytes consumed; throws on malformed input.
std::size_t decode_list(std::span<const std::uint8_t> in,
                        std::vector<Vertex>& out);

// --- analytic size estimates (gate inputs; no encode performed) ---------

/// Expected encode_dense output for a `words`-word bitmap with `set_bits`
/// bits set uniformly at random. Clamped to the raw-fallback bound.
std::uint64_t dense_estimate_bytes(std::uint64_t words,
                                   std::uint64_t set_bits);

/// Expected encode_bitmap_sparse output for `set_bits` set bits spread over
/// `covered_bits` positions. Clamped to the raw-fallback bound.
std::uint64_t sparse_estimate_bytes(std::uint64_t set_bits,
                                    std::uint64_t covered_bits);

}  // namespace numabfs::graph::codec
