#include "graph/reference_bfs.hpp"

#include <deque>

namespace numabfs::graph {

BfsTree reference_bfs(const Csr& g, Vertex root) {
  BfsTree t;
  t.parent.assign(g.num_vertices(), kNoVertex);
  t.depth.assign(g.num_vertices(), 0);
  std::deque<Vertex> q;
  t.parent[root] = root;
  t.visited = 1;
  q.push_back(root);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop_front();
    for (Vertex u : g.neighbors(v)) {
      if (t.parent[u] == kNoVertex) {
        t.parent[u] = v;
        t.depth[u] = t.depth[v] + 1;
        ++t.visited;
        q.push_back(u);
      }
    }
  }
  return t;
}

}  // namespace numabfs::graph
