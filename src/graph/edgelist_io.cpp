#include "graph/edgelist_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace numabfs::graph {

namespace {

constexpr char kMagic[8] = {'N', 'B', 'F', 'S', 'E', 'L', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("edgelist_io: " + what + ": " + path);
}

}  // namespace

void save_edges(const std::string& path, std::uint64_t num_vertices,
                std::span<const Edge> edges) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) fail("cannot open for writing", path);
  const std::uint64_t count = edges.size();
  if (std::fwrite(kMagic, 1, sizeof kMagic, f.get()) != sizeof kMagic ||
      std::fwrite(&num_vertices, sizeof num_vertices, 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof count, 1, f.get()) != 1)
    fail("header write failed", path);
  static_assert(sizeof(Edge) == 2 * sizeof(Vertex),
                "Edge must be two packed vertex ids");
  if (count != 0 &&
      std::fwrite(edges.data(), sizeof(Edge), count, f.get()) != count)
    fail("payload write failed", path);
  if (std::fflush(f.get()) != 0) fail("flush failed", path);
}

LoadedEdges load_edges(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) fail("cannot open for reading", path);

  char magic[sizeof kMagic];
  LoadedEdges out;
  std::uint64_t count = 0;
  if (std::fread(magic, 1, sizeof magic, f.get()) != sizeof magic ||
      std::memcmp(magic, kMagic, sizeof magic) != 0)
    fail("bad magic (not a numabfs edge list)", path);
  if (std::fread(&out.num_vertices, sizeof out.num_vertices, 1, f.get()) != 1 ||
      std::fread(&count, sizeof count, 1, f.get()) != 1)
    fail("truncated header", path);
  if (out.num_vertices == 0 ||
      out.num_vertices > (1ull << 32))
    fail("implausible vertex count", path);

  out.edges.resize(count);
  if (count != 0 &&
      std::fread(out.edges.data(), sizeof(Edge), count, f.get()) != count)
    fail("truncated payload", path);
  for (const Edge& e : out.edges)
    if (e.u >= out.num_vertices || e.v >= out.num_vertices)
      fail("vertex id out of range", path);
  return out;
}

}  // namespace numabfs::graph
