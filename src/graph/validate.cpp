#include "graph/validate.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "graph/reference_bfs.hpp"

namespace numabfs::graph {

namespace {

std::string vfmt(const char* what, std::uint64_t v) {
  std::ostringstream os;
  os << what << " (vertex " << v << ")";
  return os.str();
}

}  // namespace

ValidationResult validate_bfs_tree(const Csr& g, Vertex root,
                                   std::span<const Vertex> parent) {
  ValidationResult r;
  const std::uint64_t n = g.num_vertices();
  if (parent.size() != n) {
    r.error = "parent array size mismatch";
    return r;
  }
  if (root >= n || parent[root] != root) {
    r.error = "root is not its own parent";
    return r;
  }

  // Depths via parent chains, with cycle detection (iterative memoization).
  constexpr std::uint32_t kUnknown = 0xffffffffu;
  std::vector<std::uint32_t> depth(n, kUnknown);
  depth[root] = 0;
  std::vector<Vertex> chain;
  for (std::uint64_t v0 = 0; v0 < n; ++v0) {
    if (parent[v0] == kNoVertex || depth[v0] != kUnknown) continue;
    chain.clear();
    Vertex v = static_cast<Vertex>(v0);
    while (depth[v] == kUnknown) {
      chain.push_back(v);
      const Vertex p = parent[v];
      if (p == kNoVertex) {
        r.error = vfmt("tree vertex has unreached parent", v);
        return r;
      }
      if (p >= n) {
        r.error = vfmt("parent out of range", v);
        return r;
      }
      if (chain.size() > n) {
        r.error = "cycle in parent chain";
        return r;
      }
      v = p;
    }
    std::uint32_t d = depth[v];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) depth[*it] = ++d;
  }

  // Post-delete hardening (dynamic graph layer): a vertex whose adjacency
  // emptied out — every incident edge tombstoned away — must validate as
  // unreachable, never trip a generic tree error. Tally them, and reject a
  // tree that claims to reach one; the root itself is the one exception
  // (an isolated root is a valid singleton tree, visited == 1).
  for (std::uint64_t v = 0; v < n; ++v) {
    if (g.degree(static_cast<Vertex>(v)) != 0) continue;
    ++r.isolated;
    if (parent[v] != kNoVertex && v != root) {
      r.error = vfmt("isolated vertex marked reached", v);
      return r;
    }
  }

  // Tree edges must be real edges (skip the root's self-edge).
  for (std::uint64_t v = 0; v < n; ++v) {
    const Vertex p = parent[v];
    if (p == kNoVertex || v == root) continue;
    const auto nb = g.neighbors(static_cast<Vertex>(v));
    if (std::find(nb.begin(), nb.end(), p) == nb.end()) {
      r.error = vfmt("tree edge not present in graph", v);
      return r;
    }
    if (depth[v] != depth[p] + 1) {
      r.error = vfmt("tree edge does not span one level", v);
      return r;
    }
  }

  // Every graph edge: endpoints visited together, depths differ by <= 1.
  for (std::uint64_t u = 0; u < n; ++u) {
    const bool uv = parent[u] != kNoVertex;
    for (Vertex w : g.neighbors(static_cast<Vertex>(u))) {
      const bool wv = parent[w] != kNoVertex;
      if (uv != wv) {
        r.error = vfmt("edge crosses the visited boundary", u);
        return r;
      }
      if (uv && (depth[u] > depth[w] + 1 || depth[w] > depth[u] + 1)) {
        r.error = vfmt("edge spans more than one level", u);
        return r;
      }
      if (uv) ++r.directed_edges_in_component;
    }
    if (uv) ++r.visited;
  }

  // Visited set must be exactly the root's component.
  const BfsTree ref = reference_bfs(g, root);
  if (ref.visited != r.visited) {
    r.error = "visited count differs from reference BFS";
    return r;
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if ((parent[v] != kNoVertex) != ref.reached(static_cast<Vertex>(v))) {
      r.error = vfmt("visited set differs from reference BFS", v);
      return r;
    }
  }

  r.ok = true;
  return r;
}

}  // namespace numabfs::graph
