#include "graph/bitmap.hpp"

namespace numabfs::graph {

std::uint64_t BitmapView::count_range(std::uint64_t begin,
                                      std::uint64_t end) const {
  assert(begin <= end && end <= nbits_);
  if (begin == end) return 0;
  std::uint64_t total = 0;
  std::uint64_t w = begin >> 6;
  const std::uint64_t w_last = (end - 1) >> 6;
  for (; w <= w_last; ++w) {
    std::uint64_t word = words_[w];
    if (w == (begin >> 6)) word &= ~0ull << (begin & 63);
    if (w == w_last) {
      const std::uint64_t tail = end & 63;
      if (tail) word &= (1ull << tail) - 1;
    }
    total += static_cast<std::uint64_t>(std::popcount(word));
  }
  return total;
}

bool BitmapView::any() const {
  for (std::uint64_t word : words_)
    if (word) return true;
  return false;
}

void BitmapView::clear_range(std::uint64_t begin, std::uint64_t end) {
  assert(begin <= end && end <= nbits_);
  if (begin >= end) return;
  const std::uint64_t wlo = begin >> 6, whi = (end - 1) >> 6;
  if (wlo == whi) {
    std::uint64_t mask = ~0ull << (begin & 63);
    if ((end & 63) != 0) mask &= (1ull << (end & 63)) - 1;
    words_[wlo] &= ~mask;
    return;
  }
  words_[wlo] &= ~(~0ull << (begin & 63));
  for (std::uint64_t i = wlo + 1; i < whi; ++i) words_[i] = 0;
  if ((end & 63) != 0)
    words_[whi] &= ~((1ull << (end & 63)) - 1);
  else
    words_[whi] = 0;
}

namespace {

/// OR `value` into dst[word_index], atomically or not.
inline void merge_word(std::span<std::uint64_t> dst, std::uint64_t word_index,
                       std::uint64_t value, bool atomic) {
  if (value == 0) return;
  if (atomic) {
    std::atomic_ref<std::uint64_t> ref(dst[word_index]);
    ref.fetch_or(value, std::memory_order_relaxed);
  } else {
    dst[word_index] |= value;
  }
}

}  // namespace

void copy_bits(std::span<std::uint64_t> dst, std::uint64_t dst_bit,
               std::span<const std::uint64_t> src, std::uint64_t src_bit,
               std::uint64_t nbits, bool atomic_boundaries) {
  if (nbits == 0) return;

  // Read bit i of src (relative to src_bit) — extracted a word at a time.
  const auto src_word_at = [&](std::uint64_t rel_word) -> std::uint64_t {
    // 64 bits starting at src_bit + rel_word*64
    const std::uint64_t bit = src_bit + (rel_word << 6);
    const std::uint64_t w = bit >> 6;
    const std::uint64_t off = bit & 63;
    std::uint64_t lo = src[w] >> off;
    if (off != 0 && w + 1 < src.size()) lo |= src[w + 1] << (64 - off);
    return lo;
  };

  const std::uint64_t dst_off = dst_bit & 63;
  std::uint64_t dst_w = dst_bit >> 6;
  std::uint64_t remaining = nbits;
  std::uint64_t rel = 0;  // bits consumed from src

  // Head: fill the first (possibly partial) destination word.
  if (dst_off != 0 || remaining < 64) {
    const std::uint64_t take = std::min<std::uint64_t>(64 - dst_off, remaining);
    const std::uint64_t mask = take == 64 ? ~0ull : ((1ull << take) - 1);
    const std::uint64_t chunk = src_word_at(0) & mask;
    merge_word(dst, dst_w, chunk << dst_off, atomic_boundaries);
    remaining -= take;
    rel += take;
    ++dst_w;
  }

  // Interior: whole destination words. Only the first and last word of the
  // copy can be shared with neighboring writers; interiors are exclusive.
  const auto src_chunk = [&](std::uint64_t consumed) -> std::uint64_t {
    const std::uint64_t bit = src_bit + consumed;
    const std::uint64_t w = bit >> 6;
    const std::uint64_t off = bit & 63;
    std::uint64_t val = src[w] >> off;
    if (off != 0 && w + 1 < src.size()) val |= src[w + 1] << (64 - off);
    return val;
  };
  while (remaining >= 64) {
    merge_word(dst, dst_w, src_chunk(rel), false);
    remaining -= 64;
    rel += 64;
    ++dst_w;
  }

  // Tail: trailing partial word (shared with the next writer's head).
  if (remaining > 0) {
    const std::uint64_t mask = (1ull << remaining) - 1;
    merge_word(dst, dst_w, src_chunk(rel) & mask, atomic_boundaries);
  }
}

}  // namespace numabfs::graph
