#include "graph/reference_algos.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

namespace numabfs::graph {

std::vector<std::uint64_t> ref_sssp(const Csr& g, const EdgeWeights& w,
                                    Vertex source) {
  std::vector<std::uint64_t> dist(g.num_vertices(), kInfDist);
  using Item = std::pair<std::uint64_t, Vertex>;  // (dist, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;  // stale entry
    for (Vertex v : g.neighbors(u)) {
      const std::uint64_t nd = d + w(u, v);
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<double> ref_pagerank(const Csr& g, double damping, double tol,
                                 int max_iters) {
  const std::uint64_t n = g.num_vertices();
  std::vector<double> p(n, 1.0), next(n, 0.0);
  for (int it = 0; it < max_iters; ++it) {
    std::fill(next.begin(), next.end(), 1.0 - damping);
    for (Vertex u = 0; u < n; ++u) {
      const std::uint64_t deg = g.degree(u);
      if (deg == 0) continue;  // dangling: teleport mass only
      const double share = damping * p[u] / static_cast<double>(deg);
      for (Vertex v : g.neighbors(u)) next[v] += share;
    }
    double step = 0.0;
    for (std::uint64_t v = 0; v < n; ++v)
      step = std::max(step, std::abs(next[v] - p[v]));
    p.swap(next);
    if (step < tol) break;
  }
  return p;
}

std::vector<std::uint64_t> ref_components(const Csr& g) {
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint64_t> label(n, kInfDist);
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (label[s] != kInfDist) continue;
    // s is the smallest unvisited id, hence its component's minimum.
    label[s] = s;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (Vertex v : g.neighbors(u)) {
        if (label[v] != kInfDist) continue;
        label[v] = s;
        stack.push_back(v);
      }
    }
  }
  return label;
}

std::uint64_t ref_triangles(const Csr& g) {
  const std::uint64_t n = g.num_vertices();
  // Forward adjacency: sorted, deduplicated neighbors greater than the
  // vertex. Every triangle u < v < w is then counted exactly once, at u.
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<Vertex> fwd;
  std::vector<Vertex> row;
  for (Vertex v = 0; v < n; ++v) {
    row.clear();
    for (Vertex u : g.neighbors(v))
      if (u > v) row.push_back(u);
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    fwd.insert(fwd.end(), row.begin(), row.end());
    offsets[v + 1] = fwd.size();
  }
  std::uint64_t count = 0;
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Vertex u = fwd[i];
      // |fwd(v) ∩ fwd(u)| by sorted merge.
      std::uint64_t a = offsets[v], b = offsets[u];
      while (a < offsets[v + 1] && b < offsets[u + 1]) {
        if (fwd[a] < fwd[b]) {
          ++a;
        } else if (fwd[b] < fwd[a]) {
          ++b;
        } else {
          ++count;
          ++a;
          ++b;
        }
      }
    }
  }
  return count;
}

}  // namespace numabfs::graph
