#pragma once
/// \file types.hpp
/// Shared vertex/edge types for the graph kit.

#include <cstdint>
#include <limits>

namespace numabfs::graph {

/// Vertex id. 32-bit: the simulator targets scales <= 31 (the paper's
/// scale-32 ratios are reproduced via the cost model's capacity scaling,
/// see numasim/cost_params.hpp).
using Vertex = std::uint32_t;

/// Sentinel for "no parent / not visited".
inline constexpr Vertex kNoVertex = std::numeric_limits<Vertex>::max();

struct Edge {
  Vertex u;
  Vertex v;
  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace numabfs::graph
