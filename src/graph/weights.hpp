#pragma once
/// \file weights.hpp
/// Deterministic edge weights for the weighted workloads (SSSP). The
/// simulator's graphs are unweighted CSRs; rather than storing (and
/// exchanging) a parallel weight array, each undirected edge {u, v} hashes
/// to a weight in [1, max_weight] via splitmix64 over the unordered pair:
///  - both directions of the edge agree (the pair is canonicalized),
///  - every rank computes the same weight with no storage or traffic,
///  - the whole weight assignment is reproducible from the seed alone,
/// so the distributed relaxations and the single-rank Dijkstra reference
/// see the identical weighted graph by construction.

#include <algorithm>
#include <cstdint>

#include "graph/rmat.hpp"
#include "graph/types.hpp"

namespace numabfs::graph {

struct EdgeWeights {
  std::uint64_t seed = 0x57455447u;  ///< any value; part of the graph identity
  std::uint32_t max_weight = 15;     ///< weights are uniform on [1, max_weight]

  /// Weight of undirected edge {u, v}. Requires vertex ids < 2^32 (every
  /// supported scale); the canonical pair packs into one hash key.
  std::uint64_t operator()(Vertex u, Vertex v) const {
    const std::uint64_t lo = std::min(u, v);
    const std::uint64_t hi = std::max(u, v);
    const std::uint64_t h = splitmix64(seed ^ (lo << 32 | hi));
    return 1 + h % std::max<std::uint32_t>(1, max_weight);
  }
};

}  // namespace numabfs::graph
