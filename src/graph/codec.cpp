#include "graph/codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "graph/summary.hpp"

namespace numabfs::graph::codec {
namespace {

// Mode bytes: every encoding is self-describing so the receiver can decode
// whatever the sender's gate (or fallback) picked.
constexpr std::uint8_t kModeRawWords = 0;   // verbatim 8-byte words
constexpr std::uint8_t kModeTokens = 1;     // zero-run / literal-run stream
constexpr std::uint8_t kModePositions = 2;  // delta-varint set-bit positions
constexpr std::uint8_t kModeRawList = 3;    // verbatim 4-byte vertices
constexpr std::uint8_t kModeDeltaList = 4;  // zigzag-delta varint vertices

[[noreturn]] void malformed(const char* what) {
  throw std::invalid_argument(std::string("codec: malformed input: ") + what);
}

/// Replace everything appended past `base` with the raw-words fallback.
std::size_t emit_raw_words(std::span<const std::uint64_t> words,
                           std::vector<std::uint8_t>& out, std::size_t base) {
  out.resize(base);
  out.push_back(kModeRawWords);
  const std::size_t nbytes = words.size() * 8;
  out.resize(base + 1 + nbytes);
  std::memcpy(out.data() + base + 1, words.data(), nbytes);
  return out.size() - base;
}

/// True if the summary proves word `w` of the encoded span (absolute bits
/// [base + w*64, base + w*64 + 64)) is all zero, so the encoder may skip
/// reading it.
bool guide_says_zero(const SummaryView& guide, std::uint64_t base,
                     std::size_t w) {
  const std::uint64_t g = guide.granularity();
  if (guide.size_bits() == 0) return false;
  const std::uint64_t sb_lo = (base + w * 64) / g;
  std::uint64_t sb_hi = (base + w * 64 + 63) / g;
  if (sb_lo >= guide.size_bits()) return false;
  if (sb_hi >= guide.size_bits()) sb_hi = guide.size_bits() - 1;
  for (std::uint64_t sb = sb_lo; sb <= sb_hi; ++sb)
    if (guide.covers(sb * g)) return false;
  return true;
}

}  // namespace

const char* to_string(Kind k) {
  switch (k) {
    case Kind::raw:
      return "raw";
    case Kind::sparse_list:
      return "sparse";
    case Kind::dense_bitmap:
      return "dense";
  }
  return "?";
}

std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t get_varint(std::span<const std::uint8_t> in, std::size_t pos,
                       std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) malformed("truncated varint");
    const std::uint8_t b = in[pos++];
    // The 10th byte (shift 63) holds exactly one payload bit; a larger
    // value would shift bits past 2^64, which the unsigned shift silently
    // discards — corruption must be rejected, not rounded.
    if (shift == 63 && (b & 0x7f) > 1) malformed("varint exceeds 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return pos;
  }
  malformed("varint exceeds 64 bits");
}

std::size_t encode_dense(std::span<const std::uint64_t> words,
                         std::vector<std::uint8_t>& out,
                         const SummaryView* guide,
                         std::uint64_t guide_base_bit) {
  const std::size_t base = out.size();
  const std::size_t raw_bytes = words.size() * 8;
  out.push_back(kModeTokens);
  std::size_t i = 0;
  const std::size_t n = words.size();
  while (i < n) {
    // Zero run: the summary guide lets us extend it without touching the
    // (cache-hostile) frontier words it proves zero.
    std::size_t zrun = 0;
    while (i + zrun < n &&
           ((guide && guide_says_zero(*guide, guide_base_bit, i + zrun)) ||
            words[i + zrun] == 0))
      ++zrun;
    put_varint(out, zrun);
    i += zrun;
    if (i == n) break;
    // Literal run: words[i] != 0 here.
    std::size_t lrun = 0;
    while (i + lrun < n && words[i + lrun] != 0)
      ++lrun;
    put_varint(out, lrun);
    for (std::size_t k = 0; k < lrun; ++k) {
      const std::uint64_t w = words[i + k];
      std::uint8_t mask = 0;
      std::uint8_t bytes[8];
      int nb = 0;
      for (int b = 0; b < 8; ++b) {
        const auto byte = static_cast<std::uint8_t>(w >> (8 * b));
        if (byte) {
          mask |= static_cast<std::uint8_t>(1u << b);
          bytes[nb++] = byte;
        }
      }
      out.push_back(mask);
      out.insert(out.end(), bytes, bytes + nb);
    }
    i += lrun;
    if (out.size() - base > raw_bytes) return emit_raw_words(words, out, base);
  }
  if (out.size() - base > raw_bytes + 1) return emit_raw_words(words, out, base);
  return out.size() - base;
}

std::size_t encode_bitmap_sparse(std::span<const std::uint64_t> words,
                                 std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  const std::size_t raw_bytes = words.size() * 8;
  out.push_back(kModePositions);
  std::uint64_t count = 0;
  for (const std::uint64_t w : words) count += std::popcount(w);
  put_varint(out, count);
  std::uint64_t prev = 0;
  bool first = true;
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::uint64_t w = words[i];
    while (w) {
      const std::uint64_t pos = (i << 6) + std::countr_zero(w);
      put_varint(out, first ? pos : pos - prev);
      first = false;
      prev = pos;
      w &= w - 1;
      if (out.size() - base > raw_bytes) return emit_raw_words(words, out, base);
    }
  }
  if (out.size() - base > raw_bytes + 1) return emit_raw_words(words, out, base);
  return out.size() - base;
}

std::size_t decode_bitmap(std::span<const std::uint8_t> in,
                          std::span<std::uint64_t> words) {
  if (in.empty()) malformed("empty bitmap encoding");
  const std::size_t n = words.size();
  std::size_t pos = 1;
  switch (in[0]) {
    case kModeRawWords: {
      if (in.size() < 1 + n * 8) malformed("truncated raw words");
      std::memcpy(words.data(), in.data() + 1, n * 8);
      return 1 + n * 8;
    }
    case kModeTokens: {
      std::size_t i = 0;
      while (i < n) {
        std::uint64_t zrun = 0;
        pos = get_varint(in, pos, zrun);
        if (zrun > n - i) malformed("zero run overflows bitmap");
        std::memset(words.data() + i, 0, zrun * 8);
        i += zrun;
        if (i == n) break;
        std::uint64_t lrun = 0;
        pos = get_varint(in, pos, lrun);
        // A valid encoder always emits >= 1 literal word here (the zero run
        // ended on a nonzero word); an empty run is corruption and would let
        // crafted zrun/lrun pairs spin over the input without producing
        // output.
        if (lrun == 0) malformed("empty literal run");
        if (lrun > n - i) malformed("literal run overflows bitmap");
        for (std::uint64_t k = 0; k < lrun; ++k) {
          if (pos >= in.size()) malformed("truncated literal mask");
          const std::uint8_t mask = in[pos++];
          std::uint64_t w = 0;
          for (int b = 0; b < 8; ++b) {
            if (!(mask & (1u << b))) continue;
            if (pos >= in.size()) malformed("truncated literal byte");
            w |= static_cast<std::uint64_t>(in[pos++]) << (8 * b);
          }
          words[i + k] = w;
        }
        i += lrun;
      }
      return pos;
    }
    case kModePositions: {
      std::memset(words.data(), 0, n * 8);
      std::uint64_t count = 0;
      pos = get_varint(in, pos, count);
      std::uint64_t cur = 0;
      for (std::uint64_t k = 0; k < count; ++k) {
        std::uint64_t d = 0;
        pos = get_varint(in, pos, d);
        // cur + d wrapping around 2^64 would sneak a huge corrupted gap
        // past the range check below and silently set a wrong bit.
        if (k != 0 && d > ~cur) malformed("set-bit position overflows");
        cur = (k == 0) ? d : cur + d;
        if (cur >= n * 64) malformed("set-bit position out of range");
        words[cur >> 6] |= 1ull << (cur & 63);
      }
      return pos;
    }
    default:
      malformed("unknown bitmap mode byte");
  }
}

std::size_t encode_list(std::span<const Vertex> list,
                        std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  const std::size_t raw_payload = list.size() * sizeof(Vertex);
  out.push_back(kModeDeltaList);
  put_varint(out, list.size());
  const std::size_t header = out.size() - base;
  std::uint64_t prev = 0;
  for (std::size_t k = 0; k < list.size(); ++k) {
    const auto v = static_cast<std::uint64_t>(list[k]);
    if (k == 0) {
      put_varint(out, v);
    } else {
      // Zigzag so backward jumps (top-down lists are grouped by frontier
      // key, not sorted) stay small varints.
      const auto d = static_cast<std::int64_t>(v) - static_cast<std::int64_t>(prev);
      put_varint(out, (static_cast<std::uint64_t>(d) << 1) ^
                          static_cast<std::uint64_t>(d >> 63));
    }
    prev = v;
    if (out.size() - base > header + raw_payload) break;
  }
  if (out.size() - base > header + raw_payload) {
    out.resize(base);
    out.push_back(kModeRawList);
    put_varint(out, list.size());
    const std::size_t off = out.size();
    out.resize(off + raw_payload);
    std::memcpy(out.data() + off, list.data(), raw_payload);
  }
  return out.size() - base;
}

std::size_t decode_list(std::span<const std::uint8_t> in,
                        std::vector<Vertex>& out) {
  if (in.empty()) malformed("empty list encoding");
  const std::uint8_t mode = in[0];
  std::uint64_t count = 0;
  std::size_t pos = get_varint(in, 1, count);
  if (count > in.size() * 8) malformed("list count exceeds encoding size");
  out.reserve(out.size() + count);
  if (mode == kModeRawList) {
    const std::size_t nbytes = count * sizeof(Vertex);
    if (in.size() < pos + nbytes) malformed("truncated raw list");
    const std::size_t off = out.size();
    out.resize(off + count);
    std::memcpy(out.data() + off, in.data() + pos, nbytes);
    return pos + nbytes;
  }
  if (mode != kModeDeltaList) malformed("unknown list mode byte");
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    std::uint64_t d = 0;
    pos = get_varint(in, pos, d);
    std::uint64_t v;
    if (k == 0) {
      v = d;
    } else {
      const auto delta = static_cast<std::int64_t>((d >> 1) ^ (~(d & 1) + 1));
      v = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev) + delta);
    }
    if (v > 0xffffffffull) malformed("decoded vertex exceeds 32 bits");
    out.push_back(static_cast<Vertex>(v));
    prev = v;
  }
  return pos;
}

std::uint64_t dense_estimate_bytes(std::uint64_t words,
                                   std::uint64_t set_bits) {
  const std::uint64_t raw_bound = words * 8 + 1;
  if (words == 0) return 1;
  const double d =
      std::min(1.0, static_cast<double>(set_bits) /
                        (static_cast<double>(words) * 64.0));
  const double p_word = 1.0 - std::pow(1.0 - d, 64.0);
  const double p_byte = 1.0 - std::pow(1.0 - d, 8.0);
  // Literal word = mask byte + its expected nonzero bytes; run boundaries
  // cost ~2 varint bytes each, and zero<->literal transitions happen with
  // probability p_word * (1 - p_word) per word.
  const double lit = static_cast<double>(words) * p_word * (1.0 + 8.0 * p_byte);
  const double runs =
      2.0 * (static_cast<double>(words) * p_word * (1.0 - p_word) + 1.0);
  const auto est = static_cast<std::uint64_t>(1.0 + lit + runs);
  return std::min(est, raw_bound);
}

std::uint64_t sparse_estimate_bytes(std::uint64_t set_bits,
                                    std::uint64_t covered_bits) {
  const std::uint64_t raw_bound = (covered_bits + 63) / 64 * 8 + 1;
  if (set_bits == 0) return std::min<std::uint64_t>(2, raw_bound);
  const std::uint64_t gap = std::max<std::uint64_t>(1, covered_bits / set_bits);
  const std::uint64_t est =
      1 + varint_len(set_bits) + set_bits * varint_len(gap);
  return std::min(est, raw_bound);
}

}  // namespace numabfs::graph::codec
