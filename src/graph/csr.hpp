#pragma once
/// \file csr.hpp
/// Compressed-sparse-row adjacency for the full graph. The distributed BFS
/// uses per-rank slices (dist_graph.hpp); the full CSR serves the serial
/// reference BFS, validation and construction.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace numabfs::graph {

/// Duplicate-edge semantics of Csr::from_edges (DESIGN.md §14).
///
/// The frozen Graph500 path keeps parallel edges exactly as generated
/// (`keep_multiplicity`): TEPS counts every adjacency entry, as in the
/// reference code, and adjacency rows preserve edge-list order.
///
/// The mutating path needs *set* semantics (`sorted_dedup`): rows are
/// sorted and parallel edges collapse to one entry, so that
/// delete-then-reinsert of an edge round-trips every degree to its prior
/// value, and a delta-merged view is bit-identical to a from-scratch
/// rebuild (both produce the same sorted, duplicate-free rows — parent
/// selection in the kernels depends on row order).
enum class EdgePolicy {
  keep_multiplicity,  ///< Graph500 reference semantics (the default)
  sorted_dedup,       ///< canonical set semantics for the dynamic layer
};

class Csr {
 public:
  /// Build from an edge list. Undirected: every edge is stored in both
  /// directions. Self-loops are dropped (they cannot contribute to a BFS
  /// tree); duplicate edges follow `policy` (kept in generation order by
  /// default, as in the Graph500 reference code).
  static Csr from_edges(std::uint64_t num_vertices, std::span<const Edge> edges,
                        EdgePolicy policy = EdgePolicy::keep_multiplicity);

  std::uint64_t num_vertices() const { return n_; }
  /// Directed adjacency entries stored (2x the undirected edge count).
  std::uint64_t num_directed_edges() const { return adj_.size(); }

  std::uint64_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::span<const Vertex> neighbors(Vertex v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<Vertex>& adj() const { return adj_; }

 private:
  std::uint64_t n_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<Vertex> adj_;
};

}  // namespace numabfs::graph
