#pragma once
/// \file csr.hpp
/// Compressed-sparse-row adjacency for the full graph. The distributed BFS
/// uses per-rank slices (dist_graph.hpp); the full CSR serves the serial
/// reference BFS, validation and construction.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace numabfs::graph {

class Csr {
 public:
  /// Build from an edge list. Undirected: every edge is stored in both
  /// directions. Self-loops are dropped (they cannot contribute to a BFS
  /// tree); duplicate edges are kept, as in the Graph500 reference code.
  static Csr from_edges(std::uint64_t num_vertices, std::span<const Edge> edges);

  std::uint64_t num_vertices() const { return n_; }
  /// Directed adjacency entries stored (2x the undirected edge count).
  std::uint64_t num_directed_edges() const { return adj_.size(); }

  std::uint64_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::span<const Vertex> neighbors(Vertex v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<Vertex>& adj() const { return adj_; }

 private:
  std::uint64_t n_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<Vertex> adj_;
};

}  // namespace numabfs::graph
