#pragma once
/// \file edgelist_io.hpp
/// Binary edge-list persistence, so expensive generator runs (or external
/// graphs) can be reused across experiments. Format: 8-byte magic
/// "NBFSEL01", u64 vertex count, u64 edge count, then (u32 u, u32 v) pairs,
/// all little-endian host order.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace numabfs::graph {

struct LoadedEdges {
  std::uint64_t num_vertices = 0;
  std::vector<Edge> edges;
};

/// Write an edge list; throws std::runtime_error on I/O failure.
void save_edges(const std::string& path, std::uint64_t num_vertices,
                std::span<const Edge> edges);

/// Read an edge list; throws std::runtime_error on I/O failure or a
/// malformed/corrupt file (bad magic, truncated payload, vertex ids out of
/// range).
LoadedEdges load_edges(const std::string& path);

}  // namespace numabfs::graph
