#pragma once
/// \file summary.hpp
/// The `*_summary` bitmaps of the paper: one summary bit covers `g`
/// consecutive bits of a frontier bitmap (`g` = 64 in the Graph500
/// reference code; Section III.C studies raising it for cache locality).
/// A zero summary bit proves the covered frontier bits are all zero, which
/// lets the bottom-up kernel skip the (much larger, cache-hostile) frontier
/// probe.

#include <atomic>
#include <cassert>

#include "graph/bitmap.hpp"

namespace numabfs::graph {

class SummaryView {
 public:
  SummaryView() = default;
  /// `bits` must hold at least summary_bits_for(covered_bits, granularity).
  SummaryView(BitmapView bits, std::uint64_t covered_bits,
              std::uint64_t granularity)
      : bits_(bits), covered_(covered_bits), g_(granularity) {
    assert(granularity >= 1);
    assert(bits.size_bits() >= summary_bits_for(covered_bits, granularity));
  }

  static std::uint64_t summary_bits_for(std::uint64_t covered_bits,
                                        std::uint64_t granularity) {
    return (covered_bits + granularity - 1) / granularity;
  }

  std::uint64_t granularity() const { return g_; }
  std::uint64_t size_bits() const { return summary_bits_for(covered_, g_); }
  std::uint64_t size_bytes() const { return (size_bits() + 7) / 8; }
  BitmapView bits() { return bits_; }

  /// True if the summary admits any set bit in the block covering `pos`.
  bool covers(std::uint64_t pos) const { return bits_.get(pos / g_); }

  /// Mark the block covering `pos`. Atomic: a summary word can straddle two
  /// writers' vertex ranges even when the ranges themselves are
  /// word-disjoint.
  void mark(std::uint64_t pos) {
    const std::uint64_t bit = pos / g_;
    std::atomic_ref<std::uint64_t> ref(bits_.words()[bit >> 6]);
    ref.fetch_or(1ull << (bit & 63), std::memory_order_relaxed);
  }

  /// Recompute the summary bits whose blocks intersect [begin, end) from
  /// the source bitmap (used after an allgather or a direction switch).
  /// Blocks are recomputed in full, so concurrent callers must cover
  /// disjoint block ranges or the same data.
  void rebuild_range(const BitmapView& src, std::uint64_t begin,
                     std::uint64_t end) {
    assert(end <= covered_ && src.size_bits() >= covered_);
    if (begin >= end) return;
    const std::uint64_t first_block = begin / g_;
    const std::uint64_t last_block = (end - 1) / g_;
    for (std::uint64_t b = first_block; b <= last_block; ++b) {
      const std::uint64_t lo = b * g_;
      const std::uint64_t hi = std::min(covered_, (b + 1) * g_);
      const bool any = src.count_range(lo, hi) != 0;
      // Full-block recompute: plain write is fine for disjoint block ranges,
      // but boundary *words* of the summary can be shared; merge atomically.
      std::atomic_ref<std::uint64_t> ref(bits_.words()[b >> 6]);
      if (any)
        ref.fetch_or(1ull << (b & 63), std::memory_order_relaxed);
      else
        ref.fetch_and(~(1ull << (b & 63)), std::memory_order_relaxed);
    }
  }

 private:
  BitmapView bits_;
  std::uint64_t covered_ = 0;
  std::uint64_t g_ = 64;
};

/// Owning summary bitmap.
class Summary {
 public:
  Summary() = default;
  Summary(std::uint64_t covered_bits, std::uint64_t granularity)
      : bits_(SummaryView::summary_bits_for(covered_bits, granularity)),
        covered_(covered_bits),
        g_(granularity) {}

  SummaryView view() { return SummaryView(bits_.view(), covered_, g_); }

 private:
  Bitmap bits_;
  std::uint64_t covered_ = 0;
  std::uint64_t g_ = 64;
};

}  // namespace numabfs::graph
