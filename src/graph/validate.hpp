#pragma once
/// \file validate.hpp
/// Graph500-style validation of a BFS parent tree (spec section "Kernel 2
/// validation"): tree edges exist in the graph, depths are consistent, the
/// visited set is exactly the root's connected component, and every graph
/// edge connects vertices whose depths differ by at most one.

#include <cstdint>
#include <span>
#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace numabfs::graph {

struct ValidationResult {
  bool ok = false;
  std::string error;                   ///< empty when ok
  std::uint64_t visited = 0;           ///< vertices in the tree
  /// Vertices with an empty adjacency row. On a post-delete snapshot of
  /// the dynamic graph layer these are fully-tombstoned vertices: they
  /// validate as unreachable (an isolated root yields a valid singleton
  /// tree with visited == 1), and a tree claiming to reach one is an error.
  std::uint64_t isolated = 0;
  std::uint64_t directed_edges_in_component = 0;  ///< for TEPS accounting

  /// Undirected edges traversed (the Graph500 TEPS numerator).
  std::uint64_t traversed_edges() const {
    return directed_edges_in_component / 2;
  }
};

ValidationResult validate_bfs_tree(const Csr& g, Vertex root,
                                   std::span<const Vertex> parent);

}  // namespace numabfs::graph
