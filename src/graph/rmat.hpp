#pragma once
/// \file rmat.hpp
/// R-MAT / Kronecker edge generator (Chakrabarti et al., SDM'04) with the
/// Graph500 parameters (A=0.57, B=0.19, C=0.19, D=0.05) and a bijective
/// vertex-label permutation, so generated graphs are scale-free but labels
/// carry no locality — the property that makes BFS communication-bound.
///
/// Generation is deterministic and splittable: edge i depends only on
/// (seed, i), so any sub-range of edges can be produced independently.

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace numabfs::graph {

struct RmatParams {
  int scale = 16;          ///< log2(number of vertices)
  int edgefactor = 16;     ///< edges = edgefactor * 2^scale
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
  std::uint64_t seed = 20120924;        ///< CLUSTER 2012 conference date
  bool permute_labels = true;

  std::uint64_t num_vertices() const { return 1ull << scale; }
  std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(edgefactor) << scale;
  }
};

/// Generate edges [first, first+count) of the R-MAT stream.
std::vector<Edge> rmat_edge_range(const RmatParams& p, std::uint64_t first,
                                  std::uint64_t count);

/// Generate the full edge list.
std::vector<Edge> rmat_edges(const RmatParams& p);

/// The label permutation used by the generator (exposed for tests:
/// it must be a bijection on [0, 2^scale)).
Vertex rmat_permute_label(const RmatParams& p, Vertex v);

/// SplitMix64: the statelessly splittable PRNG underneath the generator.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace numabfs::graph
