#pragma once
/// \file partition.hpp
/// 1-D block partition of the vertex set over ranks, as in the Graph500
/// reference code the paper builds on. Blocks are aligned to 64 bits so
/// every rank's frontier-bitmap chunk is word-disjoint and equally sized
/// (the final block is zero-padded), which is what the allgather exchanges.

#include <cassert>
#include <cstdint>

namespace numabfs::graph {

class Partition1D {
 public:
  /// Partition [0, n) into `np` blocks of equal padded size, each a
  /// multiple of `align_bits` (>= 64 keeps bitmap chunks word-disjoint).
  Partition1D(std::uint64_t n, int np, std::uint64_t align_bits = 64)
      : n_(n), np_(np) {
    assert(np >= 1 && align_bits >= 1);
    const std::uint64_t raw = (n + static_cast<std::uint64_t>(np) - 1) /
                              static_cast<std::uint64_t>(np);
    block_ = (raw + align_bits - 1) / align_bits * align_bits;
    if (block_ == 0) block_ = align_bits;
  }

  std::uint64_t n() const { return n_; }
  int np() const { return np_; }
  /// Padded block size in bits; every rank's allgather chunk is this long.
  std::uint64_t block() const { return block_; }

  std::uint64_t begin(int r) const {
    const std::uint64_t b = static_cast<std::uint64_t>(r) * block_;
    return b < n_ ? b : n_;
  }
  std::uint64_t end(int r) const {
    const std::uint64_t e = (static_cast<std::uint64_t>(r) + 1) * block_;
    return e < n_ ? e : n_;
  }
  std::uint64_t size(int r) const { return end(r) - begin(r); }

  int owner(std::uint64_t v) const {
    assert(v < n_);
    const std::uint64_t r = v / block_;
    return static_cast<int>(r < static_cast<std::uint64_t>(np_) ? r
                                                                : np_ - 1);
  }

  /// Total padded bits = np * block (the allgathered bitmap length).
  std::uint64_t padded_bits() const {
    return static_cast<std::uint64_t>(np_) * block_;
  }

 private:
  std::uint64_t n_;
  int np_;
  std::uint64_t block_ = 0;
};

}  // namespace numabfs::graph
