#include "graph/dist_graph.hpp"

#include <algorithm>

namespace numabfs::graph {

DistGraph DistGraph::build(const Csr& g, const Partition1D& part) {
  DistGraph d;
  d.n = g.num_vertices();
  d.directed_edges = g.num_directed_edges();
  d.part = part;
  d.locals.resize(static_cast<size_t>(part.np()));

  for (int r = 0; r < part.np(); ++r) {
    LocalGraph& lg = d.locals[static_cast<size_t>(r)];
    lg.vbegin = part.begin(r);
    lg.vend = part.end(r);
    const std::uint64_t owned = lg.owned();

    // Bottom-up view: slice of the global CSR rows.
    lg.bu_offsets.assign(owned + 1, 0);
    for (std::uint64_t i = 0; i < owned; ++i)
      lg.bu_offsets[i + 1] =
          lg.bu_offsets[i] + g.degree(static_cast<Vertex>(lg.vbegin + i));
    lg.bu_adj.resize(lg.bu_offsets[owned]);
    for (std::uint64_t i = 0; i < owned; ++i) {
      const auto nb = g.neighbors(static_cast<Vertex>(lg.vbegin + i));
      std::copy(nb.begin(), nb.end(), lg.bu_adj.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              lg.bu_offsets[i]));
    }

    // Top-down view: the same pairs (u -> owned v), grouped by u.
    std::vector<std::pair<Vertex, Vertex>> pairs;
    pairs.reserve(lg.bu_adj.size());
    for (std::uint64_t i = 0; i < owned; ++i)
      for (Vertex u : lg.bu_neighbors(i))
        pairs.emplace_back(u, static_cast<Vertex>(lg.vbegin + i));
    std::sort(pairs.begin(), pairs.end());

    lg.td_adj.resize(pairs.size());
    lg.td_offsets.push_back(0);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i == 0 || pairs[i].first != pairs[i - 1].first) {
        lg.td_keys.push_back(pairs[i].first);
        if (i != 0) lg.td_offsets.push_back(i);
      }
      lg.td_adj[i] = pairs[i].second;
    }
    lg.td_offsets.push_back(pairs.size());
    if (lg.td_keys.empty()) lg.td_offsets.assign(1, 0);
  }
  return d;
}

}  // namespace numabfs::graph
