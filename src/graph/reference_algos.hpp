#pragma once
/// \file reference_algos.hpp
/// Single-rank reference implementations of the vertex-program workloads
/// (DESIGN.md §16). Each runs on the full Csr with textbook data structures
/// and no simulation, producing the ground truth the distributed frontier
/// programs validate against:
///  - SSSP: binary-heap Dijkstra over the hashed edge weights;
///  - PageRank: dense power iteration (uniform teleport, dangling mass
///    dropped — the same policy the residual-push program applies);
///  - connected components: BFS sweep labelling each component with its
///    minimum vertex id (the fixpoint label propagation converges to);
///  - triangles: sorted-adjacency merge intersection over the deduplicated
///    undirected edge set.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/weights.hpp"

namespace numabfs::graph {

inline constexpr std::uint64_t kInfDist = ~0ull;

/// Dijkstra distances from `source`; unreachable vertices hold kInfDist.
std::vector<std::uint64_t> ref_sssp(const Csr& g, const EdgeWeights& w,
                                    Vertex source);

/// Unnormalized PageRank (p sums to ~n on dangling-free graphs):
/// p(v) = (1-d) + d * sum_{u in N(v)} p(u)/deg(u), iterated until the
/// largest per-vertex step falls below `tol`. Degree-0 vertices keep their
/// teleport mass and spread nothing.
std::vector<double> ref_pagerank(const Csr& g, double damping, double tol,
                                 int max_iters = 10000);

/// Per-vertex component label = the minimum vertex id in its component.
std::vector<std::uint64_t> ref_components(const Csr& g);

/// Exact global triangle count (each triangle counted once; parallel edges
/// and self-loops do not create extra triangles).
std::uint64_t ref_triangles(const Csr& g);

}  // namespace numabfs::graph
