#include "graph/dynamic/ingest.hpp"

namespace numabfs::dyn {

IngestGenerator::IngestGenerator(const IngestConfig& cfg)
    : cfg_(cfg),
      insert_params_(cfg.base),
      rng_(graph::splitmix64(cfg.seed ^ 0x9e3779b97f4a7c15ull)) {
  // Inserts come from the same R-MAT recursion re-seeded, so they follow
  // the base skew but are (almost surely) new edges.
  insert_params_.seed = graph::splitmix64(cfg.base.seed ^ cfg.seed);
}

std::vector<EdgeOp> IngestGenerator::next_batch(std::uint64_t nops) {
  std::vector<EdgeOp> out;
  out.reserve(nops);
  const std::uint64_t base_edges = cfg_.base.num_edges();
  for (std::uint64_t i = 0; i < nops; ++i) {
    rng_ = graph::splitmix64(rng_);
    const bool del =
        static_cast<double>(rng_ >> 11) * 0x1.0p-53 < cfg_.delete_frac;
    if (del) {
      // Re-derive one uniformly chosen edge of the original stream; it was
      // in the base unless an earlier delete already removed it (then the
      // tombstone is a no-op, as in any LSM).
      rng_ = graph::splitmix64(rng_);
      const std::uint64_t j = rng_ % base_edges;
      const auto e = graph::rmat_edge_range(cfg_.base, j, 1);
      out.push_back({e[0].u, e[0].v, true});
    } else {
      const auto e =
          graph::rmat_edge_range(insert_params_, insert_cursor_++, 1);
      out.push_back({e[0].u, e[0].v, false});
    }
  }
  generated_ += nops;
  return out;
}

}  // namespace numabfs::dyn
