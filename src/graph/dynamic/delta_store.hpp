#pragma once
/// \file delta_store.hpp
/// Per-rank delta store of the dynamic graph layer (DESIGN.md §14): a
/// sorted memtable of epoch-stamped edge mutations keyed by the owned
/// endpoint, with tombstones for deletions — the LSM "level 0" that merged
/// epoch views and compactions read from.
///
/// The store holds *routed* records: an undirected EdgeOp {u, v} lands as
/// (owned=u, nbr=v) at u's owner and (owned=v, nbr=u) at v's owner, so each
/// rank's store fully determines the patches of both of its adjacency views
/// (bottom-up rows keyed by `owned`, top-down groups keyed by `nbr`).
///
/// Ordering invariant: records are sorted by (owned, nbr), and within one
/// (owned, nbr) edge they appear in submission order (epochs are monotone
/// across batches, and appends merge stably). Resolution is last-wins among
/// the records at or before the queried epoch.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace numabfs::dyn {

/// One logical edge mutation as submitted by a writer: insert (remove ==
/// false) or delete (remove == true) the undirected edge {u, v}.
struct EdgeOp {
  graph::Vertex u = 0;
  graph::Vertex v = 0;
  bool remove = false;
};

/// One routed, epoch-stamped half of an EdgeOp, as stored at the owner of
/// `owned`.
struct DeltaRec {
  graph::Vertex owned = 0;     ///< owned endpoint (global id)
  graph::Vertex nbr = 0;       ///< other endpoint (global id)
  std::uint64_t epoch = 0;     ///< sealed epoch the op landed in
  bool tombstone = false;      ///< true: delete {owned, nbr}
};

class DeltaStore {
 public:
  DeltaStore(std::uint64_t vbegin, std::uint64_t vend)
      : vbegin_(vbegin), vend_(vend) {}

  /// Merge one epoch batch into the memtable. Every record's `owned` must
  /// lie in [vbegin, vend) and its epoch must be >= every stored epoch.
  void append(std::vector<DeltaRec> batch);

  /// All live records, in the ordering invariant above.
  std::span<const DeltaRec> records() const { return recs_; }
  std::uint64_t size() const { return recs_.size(); }
  std::uint64_t tombstones() const { return tombstones_; }
  std::uint64_t bytes() const { return recs_.size() * sizeof(DeltaRec); }

  /// Last-wins membership override for edge {owned, nbr} at `epoch`:
  /// -1 = no record at or before epoch (base membership stands),
  ///  0 = deleted, 1 = inserted.
  int resolve(graph::Vertex owned, graph::Vertex nbr,
              std::uint64_t epoch) const;

  /// Drop every record with epoch <= `epoch` (they were folded into a
  /// compacted base).
  void truncate_through(std::uint64_t epoch);

  std::uint64_t vbegin() const { return vbegin_; }
  std::uint64_t vend() const { return vend_; }

 private:
  std::uint64_t vbegin_;
  std::uint64_t vend_;
  std::vector<DeltaRec> recs_;
  std::uint64_t tombstones_ = 0;
};

}  // namespace numabfs::dyn
