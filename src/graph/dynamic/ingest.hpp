#pragma once
/// \file ingest.hpp
/// Seeded, reproducible edge-mutation generator for the dynamic graph
/// layer. Inserts are drawn from a fresh R-MAT stream (same skew as the
/// base graph, different seed), so the graph keeps its degree distribution
/// as it grows; deletes re-derive a uniformly random edge of the *original*
/// R-MAT stream (generation is splittable: edge i depends only on
/// (seed, i)), so they overwhelmingly hit live base edges and produce
/// observable degree changes rather than no-op tombstones.
///
/// The generator is a pure function of (config, batches drawn so far):
/// two generators with the same config produce identical op streams, which
/// is what makes dynamic benches and property tests bit-reproducible.

#include <cstdint>
#include <vector>

#include "graph/dynamic/delta_store.hpp"
#include "graph/rmat.hpp"

namespace numabfs::dyn {

struct IngestConfig {
  graph::RmatParams base;        ///< params the base graph was built from
  std::uint64_t seed = 1;        ///< mutation-stream seed
  double delete_frac = 0.3;      ///< fraction of ops that are deletes
};

class IngestGenerator {
 public:
  explicit IngestGenerator(const IngestConfig& cfg);

  /// The next `nops` mutations of the stream.
  std::vector<EdgeOp> next_batch(std::uint64_t nops);

  std::uint64_t generated() const { return generated_; }

 private:
  IngestConfig cfg_;
  graph::RmatParams insert_params_;  ///< base params re-seeded for inserts
  std::uint64_t insert_cursor_ = 0;
  std::uint64_t rng_;
  std::uint64_t generated_ = 0;
};

}  // namespace numabfs::dyn
