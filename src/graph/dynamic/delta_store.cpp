#include "graph/dynamic/delta_store.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace numabfs::dyn {

namespace {

/// Memtable order: (owned, nbr) only. Records of the same edge compare
/// equal so stable sorts/merges preserve submission order — the basis of
/// last-wins resolution within an epoch.
bool key_less(const DeltaRec& a, const DeltaRec& b) {
  return a.owned != b.owned ? a.owned < b.owned : a.nbr < b.nbr;
}

}  // namespace

void DeltaStore::append(std::vector<DeltaRec> batch) {
  if (batch.empty()) return;
  for (const DeltaRec& r : batch) {
    if (r.owned < vbegin_ || r.owned >= vend_)
      throw std::invalid_argument(
          "DeltaStore::append: record not owned by this rank");
    if (!recs_.empty() && r.epoch < recs_.back().epoch)
      throw std::invalid_argument(
          "DeltaStore::append: epochs must be monotone");
    if (r.tombstone) ++tombstones_;
  }
  std::stable_sort(batch.begin(), batch.end(), key_less);
  const std::size_t mid = recs_.size();
  recs_.insert(recs_.end(), batch.begin(), batch.end());
  std::inplace_merge(recs_.begin(),
                     recs_.begin() + static_cast<std::ptrdiff_t>(mid),
                     recs_.end(), key_less);
}

int DeltaStore::resolve(graph::Vertex owned, graph::Vertex nbr,
                        std::uint64_t epoch) const {
  const DeltaRec probe{owned, nbr, 0, false};
  auto [lo, hi] = std::equal_range(recs_.begin(), recs_.end(), probe, key_less);
  int r = -1;
  for (auto it = lo; it != hi; ++it)
    if (it->epoch <= epoch) r = it->tombstone ? 0 : 1;
  return r;
}

void DeltaStore::truncate_through(std::uint64_t epoch) {
  std::erase_if(recs_, [&](const DeltaRec& r) { return r.epoch <= epoch; });
  tombstones_ = 0;
  for (const DeltaRec& r : recs_)
    if (r.tombstone) ++tombstones_;
}

}  // namespace numabfs::dyn
