#include "graph/dynamic/compactor.hpp"

namespace numabfs::dyn {

bool Compactor::due() const {
  const std::uint64_t live = mgr_.live_records();
  if (live < policy_.min_records) {
    if (policy_.every_epochs == 0 || live == 0) return false;
  }
  if (live >= policy_.min_records && mgr_.fill() >= policy_.fill_trigger)
    return true;
  return policy_.every_epochs != 0 &&
         mgr_.epoch() - last_compact_epoch_ >= policy_.every_epochs &&
         live > 0;
}

std::optional<CompactionStats> Compactor::maybe_compact(double now_ns) {
  if (!due()) return std::nullopt;
  CompactionStats cs = mgr_.compact(now_ns);
  last_compact_epoch_ = cs.epoch;
  ++compactions_;
  return cs;
}

}  // namespace numabfs::dyn
