#pragma once
/// \file snapshot.hpp
/// Epoch-stamped snapshot management of the dynamic graph layer
/// (DESIGN.md §14). The manager owns the current immutable base version
/// (canonical CSR + its per-rank slices) and one DeltaStore per rank;
/// writers ingest epoch batches, readers pin an epoch and get a merged
/// DistGraph view that satisfies the exact read interface the BFS / MS-BFS
/// kernels use — so the kernels run unmodified against it. Compaction
/// rebuilds the base at the current epoch and drops the folded deltas;
/// snapshots pinned earlier stay valid because they hold their BaseVersion
/// alive via shared_ptr.
///
/// Determinism contract: the base CSR is canonical (rows sorted, parallel
/// edges collapsed — EdgePolicy::sorted_dedup), merged rows are sorted
/// set-merges of base ⊕ deltas, and rebuild_csr() produces the same
/// canonical rows from scratch. A BFS over a pinned merged view is
/// therefore bit-identical to one over the rebuilt CSR at that epoch; the
/// only difference is the *measured* read amplification (delta probes) the
/// merged view charges.
///
/// All costs are modeled in virtual time and returned to the caller (the
/// serving driver decides which clock they land on); obs spans
/// (`ingest.append`, `snapshot.pin`, `compact.merge`) and
/// numabfs.metrics.v1 counters (`dyn.*`) are emitted when a Tracer /
/// Registry is attached.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "graph/dynamic/delta_store.hpp"
#include "graph/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::dyn {

/// Trace category of the dynamic layer's host-side spans.
inline constexpr const char* kCatDyn = "dyn";

/// One immutable base generation: the canonical CSR compacted at `epoch`
/// plus the frozen per-rank slices built from it. Held via shared_ptr so
/// merged views created before a compaction keep their base alive.
struct BaseVersion {
  std::uint64_t epoch = 0;
  graph::Csr csr;
  graph::DistGraph dg;
};

/// A pinned, immutable view of the graph at one epoch. `graph` is either
/// the base itself (no deltas at this epoch) or a merged overlay whose
/// locals forward clean reads to `base->dg`.
struct Snapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<const BaseVersion> base;
  std::shared_ptr<const graph::DistGraph> graph;
  std::uint64_t deltas_applied = 0;  ///< records resolved into this view
  std::uint64_t patched_rows = 0;    ///< dirty bottom-up rows
  std::uint64_t patched_groups = 0;  ///< re-materialized top-down groups
  double pin_ns = 0;                 ///< modeled materialization cost

  const graph::DistGraph& dg() const { return *graph; }
};

struct IngestStats {
  std::uint64_t epoch = 0;       ///< the epoch this batch sealed
  std::uint64_t ops = 0;         ///< accepted EdgeOps
  std::uint64_t records = 0;     ///< routed records appended (<= 2 * ops)
  std::uint64_t tombstones = 0;  ///< delete records among them
  double route_ns = 0;           ///< writers -> owners alltoallv
  double append_ns = 0;          ///< memtable sort+merge, max over ranks
  double total_ns() const { return route_ns + append_ns; }
};

struct CompactionStats {
  std::uint64_t epoch = 0;           ///< base epoch after the rebuild
  std::uint64_t records_folded = 0;  ///< delta records retired
  std::uint64_t bytes_merged = 0;    ///< adjacency + delta bytes streamed
  /// Background-overlappable merge work (max over ranks): old and new runs
  /// streamed through the per-rank rebuild. Serving continues on the old
  /// base while this runs.
  double merge_ns = 0;
  /// Stop-the-world base swap: the epoch-agreement barrier during which
  /// admission is paused.
  double pause_ns = 0;
};

class SnapshotManager {
 public:
  /// `base_csr` must be canonical (rows sorted and duplicate-free; build it
  /// with EdgePolicy::sorted_dedup) — verified on construction. The cluster
  /// provides topology and cost parameters for the virtual-time model;
  /// tracer/metrics are optional sinks.
  SnapshotManager(const rt::Cluster& cluster, graph::Csr base_csr,
                  const graph::Partition1D& part,
                  obs::Tracer* tracer = nullptr,
                  obs::Registry* metrics = nullptr);

  /// Latest sealed epoch (initially the base epoch, 0).
  std::uint64_t epoch() const { return epoch_; }
  const BaseVersion& base() const { return *base_; }
  std::shared_ptr<const BaseVersion> base_ptr() const { return base_; }
  const graph::Partition1D& part() const { return part_; }

  std::uint64_t live_records() const;
  std::uint64_t live_bytes() const;
  /// Delta-store fill: live records relative to the base's directed edges.
  double fill() const;

  /// Seal the next epoch with this batch: route each accepted op to both
  /// endpoint owners and merge the per-rank batches into the memtables.
  /// Self-loops and out-of-range endpoints are dropped. `now_ns` stamps the
  /// obs span (virtual time of the serving driver).
  IngestStats ingest(std::span<const EdgeOp> ops, double now_ns = 0);

  /// Pin an immutable view at `epoch` (base()->epoch <= epoch <= epoch()).
  /// Throws std::out_of_range outside that window (epochs older than the
  /// current base were compacted away).
  std::shared_ptr<const Snapshot> pin(std::uint64_t epoch, double now_ns = 0);

  /// Fold every live delta into a new base at the current epoch and drop
  /// the folded records. Existing snapshots are unaffected.
  CompactionStats compact(double now_ns = 0);

  /// From-scratch canonical CSR at `epoch` — the reference the property
  /// tests compare merged views against, and the input of the 2-D path
  /// (DistGraph2d::build consumes a Csr).
  graph::Csr rebuild_csr(std::uint64_t epoch) const;

  const DeltaStore& store(int rank) const {
    return stores_[static_cast<std::size_t>(rank)];
  }
  std::uint64_t compactions() const { return compactions_; }

 private:
  const rt::Cluster& cluster_;
  graph::Partition1D part_;
  std::shared_ptr<const BaseVersion> base_;
  std::vector<DeltaStore> stores_;
  std::uint64_t epoch_ = 0;
  std::uint64_t compactions_ = 0;
  obs::Tracer* tracer_;
  obs::Registry* metrics_;
};

}  // namespace numabfs::dyn
