#pragma once
/// \file compactor.hpp
/// Background compaction policy of the dynamic graph layer (DESIGN.md §14).
/// The Compactor watches the manager's delta-store fill at epoch
/// boundaries and, when due, rebuilds the per-rank base CSRs through
/// SnapshotManager::compact(). In virtual time the merge work overlaps
/// serving (queries keep running on the old base — their snapshots hold it
/// alive); only the returned `pause_ns` (the base-swap barrier) must be
/// added to the serving clock by the driver.

#include <cstdint>
#include <optional>

#include "graph/dynamic/snapshot.hpp"

namespace numabfs::dyn {

struct CompactorPolicy {
  /// Compact when live records exceed this fraction of the base's directed
  /// edges (LSM fill trigger).
  double fill_trigger = 0.10;
  /// Never compact below this many live records (avoids churning the base
  /// on tiny delta sets).
  std::uint64_t min_records = 4096;
  /// Optionally also compact every N sealed epochs regardless of fill
  /// (0 disables the periodic trigger).
  std::uint64_t every_epochs = 0;
};

class Compactor {
 public:
  Compactor(SnapshotManager& mgr, CompactorPolicy policy)
      : mgr_(mgr), policy_(policy) {}

  /// Whether the policy would compact now.
  bool due() const;

  /// Call at an epoch boundary with the driver's virtual clock. Runs a
  /// compaction if due and returns its stats; the caller adds pause_ns to
  /// the serving timeline (merge_ns ran in the background).
  std::optional<CompactionStats> maybe_compact(double now_ns = 0);

  std::uint64_t compactions() const { return compactions_; }
  const CompactorPolicy& policy() const { return policy_; }

 private:
  SnapshotManager& mgr_;
  CompactorPolicy policy_;
  std::uint64_t compactions_ = 0;
  std::uint64_t last_compact_epoch_ = 0;
};

}  // namespace numabfs::dyn
