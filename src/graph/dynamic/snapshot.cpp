#include "graph/dynamic/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/coll_model.hpp"

namespace numabfs::dyn {

namespace {

/// One resolved (last-wins at the pinned epoch) membership override.
/// For bottom-up rows: key = owned vertex, val = neighbor. For top-down
/// groups the roles are swapped (key = source, val = owned target).
struct Override {
  graph::Vertex key = 0;
  graph::Vertex val = 0;
  bool present = false;
};

/// Collapse a rank's delta records at `epoch` to one override per distinct
/// edge, in (owned, nbr) order. Records after `epoch` are invisible; the
/// temporally last record at or before it wins.
std::vector<Override> resolve_rank(const DeltaStore& st, std::uint64_t epoch) {
  std::vector<Override> out;
  const auto recs = st.records();
  std::size_t i = 0;
  while (i < recs.size()) {
    std::size_t j = i;
    int last = -1;
    while (j < recs.size() && recs[j].owned == recs[i].owned &&
           recs[j].nbr == recs[i].nbr) {
      if (recs[j].epoch <= epoch) last = static_cast<int>(j);
      ++j;
    }
    if (last >= 0)
      out.push_back({recs[i].owned, recs[i].nbr,
                     !recs[static_cast<std::size_t>(last)].tombstone});
    i = j;
  }
  return out;
}

/// Sorted set-merge of one canonical base row with its overrides: present
/// overrides insert, absent ones delete, everything else passes through.
/// Both inputs are ascending and duplicate-free, so the output is the
/// canonical row of the merged edge set.
void merge_row(std::span<const graph::Vertex> base,
               std::span<const Override> ovr,
               std::vector<graph::Vertex>& out) {
  std::size_t bi = 0;
  std::size_t oi = 0;
  while (bi < base.size() || oi < ovr.size()) {
    if (oi == ovr.size() || (bi < base.size() && base[bi] < ovr[oi].val)) {
      out.push_back(base[bi++]);
    } else if (bi == base.size() || ovr[oi].val < base[bi]) {
      if (ovr[oi].present) out.push_back(ovr[oi].val);
      ++oi;
    } else {  // same endpoint: the override decides membership
      if (ovr[oi].present) out.push_back(base[bi]);
      ++bi;
      ++oi;
    }
  }
}

/// Build one merged LocalGraph view over frozen slice `b` from the rank's
/// resolved overrides (sorted by (key, val)). Returns the count of
/// re-materialized top-down groups via `patched_groups`.
void build_merged_local(const graph::LocalGraph& b,
                        const std::vector<Override>& ovr,
                        graph::LocalGraph& lg,
                        std::uint64_t& patched_groups) {
  lg.vbegin = b.vbegin;
  lg.vend = b.vend;
  lg.base = &b;
  const std::uint64_t owned = b.owned();
  const std::uint64_t words = (owned + 63) / 64;
  lg.dirty_words.assign(words, 0);
  for (const Override& o : ovr) {
    const std::uint64_t lv = o.key - b.vbegin;
    lg.dirty_words[lv >> 6] |= 1ull << (lv & 63);
  }
  lg.dirty_rank.assign(words, 0);
  std::uint64_t dirty = 0;
  for (std::uint64_t w = 0; w < words; ++w) {
    lg.dirty_rank[w] = dirty;
    dirty += static_cast<std::uint64_t>(std::popcount(lg.dirty_words[w]));
  }

  // Bottom-up patches: one merged row per dirty vertex, in vertex order.
  lg.patch_offsets.assign(dirty + 1, 0);
  lg.patch_adj.clear();
  std::uint64_t row = 0;
  std::uint64_t base_dirty_edges = 0;
  std::size_t oi = 0;
  while (oi < ovr.size()) {
    const graph::Vertex v = ovr[oi].key;
    const std::uint64_t lv = v - b.vbegin;
    std::size_t oj = oi;
    while (oj < ovr.size() && ovr[oj].key == v) ++oj;
    lg.patch_offsets[row] = lg.patch_adj.size();
    merge_row(b.bu_neighbors(lv),
              std::span<const Override>(ovr).subspan(oi, oj - oi),
              lg.patch_adj);
    base_dirty_edges += b.degree(lv);
    ++row;
    oi = oj;
  }
  lg.patch_offsets[row] = lg.patch_adj.size();
  lg.merged_owned_edges =
      b.bu_adj.size() - base_dirty_edges + lg.patch_adj.size();

  // Top-down patches: re-key the overrides by source and merge the
  // affected groups; untouched groups stay offset references into the base.
  // Groups that merge to empty are dropped, so the merged td_keys equal a
  // from-scratch rebuild's.
  std::vector<Override> tdo;
  tdo.reserve(ovr.size());
  for (const Override& o : ovr) tdo.push_back({o.val, o.key, o.present});
  std::sort(tdo.begin(), tdo.end(), [](const Override& a, const Override& b2) {
    return a.key != b2.key ? a.key < b2.key : a.val < b2.val;
  });

  lg.td_keys.clear();
  lg.td_refs.clear();
  lg.patch_td_adj.clear();
  std::size_t k = 0;
  std::size_t t = 0;
  while (k < b.td_keys.size() || t < tdo.size()) {
    const bool has_base =
        k < b.td_keys.size() &&
        (t >= tdo.size() || b.td_keys[k] <= tdo[t].key);
    const graph::Vertex key = has_base ? b.td_keys[k] : tdo[t].key;
    std::size_t tj = t;
    while (tj < tdo.size() && tdo[tj].key == key) ++tj;
    if (has_base && tj == t) {  // untouched: reference the base range
      lg.td_keys.push_back(key);
      lg.td_refs.push_back({b.td_offsets[k],
                            b.td_offsets[k + 1] - b.td_offsets[k], false});
      ++k;
      continue;
    }
    const std::uint64_t off = lg.patch_td_adj.size();
    std::span<const graph::Vertex> bg{};
    if (has_base) {
      bg = {b.td_adj.data() + b.td_offsets[k],
            b.td_adj.data() + b.td_offsets[k + 1]};
      ++k;
    }
    merge_row(bg, std::span<const Override>(tdo).subspan(t, tj - t),
              lg.patch_td_adj);
    t = tj;
    const std::uint64_t len = lg.patch_td_adj.size() - off;
    if (len != 0) {
      lg.td_keys.push_back(key);
      lg.td_refs.push_back({off, len, true});
      ++patched_groups;
    }
  }
  lg.td_offsets.clear();  // unused by the merged-view accessors
}

/// A merged overlay plus the base generation its locals point into. The
/// published DistGraph pointer aliases `dg`, so any holder of the view —
/// even one that dropped the Snapshot, like a serving tier's failover
/// unit — keeps the frozen base slices alive across compactions.
struct MergedView {
  std::shared_ptr<const BaseVersion> base;
  graph::DistGraph dg;
};

}  // namespace

SnapshotManager::SnapshotManager(const rt::Cluster& cluster,
                                 graph::Csr base_csr,
                                 const graph::Partition1D& part,
                                 obs::Tracer* tracer, obs::Registry* metrics)
    : cluster_(cluster), part_(part), tracer_(tracer), metrics_(metrics) {
  if (part_.np() != cluster_.nranks())
    throw std::invalid_argument(
        "SnapshotManager: partition width must match the cluster");
  for (std::uint64_t v = 0; v < base_csr.num_vertices(); ++v) {
    const auto nb = base_csr.neighbors(static_cast<graph::Vertex>(v));
    for (std::size_t i = 1; i < nb.size(); ++i)
      if (nb[i] <= nb[i - 1])
        throw std::invalid_argument(
            "SnapshotManager: base CSR must be canonical (build it with "
            "EdgePolicy::sorted_dedup)");
  }
  auto base = std::make_shared<BaseVersion>();
  base->epoch = 0;
  base->dg = graph::DistGraph::build(base_csr, part_);
  base->csr = std::move(base_csr);
  base_ = std::move(base);
  stores_.reserve(static_cast<std::size_t>(part_.np()));
  for (int r = 0; r < part_.np(); ++r)
    stores_.emplace_back(part_.begin(r), part_.end(r));
}

std::uint64_t SnapshotManager::live_records() const {
  std::uint64_t n = 0;
  for (const DeltaStore& s : stores_) n += s.size();
  return n;
}

std::uint64_t SnapshotManager::live_bytes() const {
  return live_records() * sizeof(DeltaRec);
}

double SnapshotManager::fill() const {
  const auto m = static_cast<double>(base_->csr.num_directed_edges());
  return m > 0 ? static_cast<double>(live_records()) / m : 0.0;
}

IngestStats SnapshotManager::ingest(std::span<const EdgeOp> ops,
                                    double now_ns) {
  IngestStats s;
  s.epoch = ++epoch_;
  const int np = part_.np();
  const int ppn = cluster_.ppn();
  const int nnodes = cluster_.topo().nodes();
  const std::uint64_t n = base_->csr.num_vertices();
  const auto& cp = cluster_.params();

  std::vector<std::vector<DeltaRec>> batches(static_cast<std::size_t>(np));
  std::vector<std::uint64_t> intra(static_cast<std::size_t>(nnodes), 0);
  std::vector<std::uint64_t> inter(static_cast<std::size_t>(nnodes), 0);
  std::uint64_t idx = 0;
  for (const EdgeOp& op : ops) {
    // Writers are striped over the serving ranks; each accepted op fans out
    // to both endpoint owners (possibly the same rank, twice).
    const int writer = static_cast<int>(idx++ % static_cast<std::uint64_t>(np));
    if (op.u == op.v || op.u >= n || op.v >= n) continue;
    const graph::Vertex ends[2][2] = {{op.u, op.v}, {op.v, op.u}};
    for (const auto& e : ends) {
      const int dest = part_.owner(e[0]);
      batches[static_cast<std::size_t>(dest)].push_back(
          {e[0], e[1], epoch_, op.remove});
      const auto node = static_cast<std::size_t>(dest / ppn);
      if (dest / ppn == writer / ppn)
        intra[node] += sizeof(DeltaRec);
      else
        inter[node] += sizeof(DeltaRec);
    }
    ++s.ops;
    s.records += 2;
    if (op.remove) s.tombstones += 2;
  }

  std::uint64_t max_intra = 0;
  std::uint64_t max_inter = 0;
  for (std::size_t nd = 0; nd < intra.size(); ++nd) {
    max_intra = std::max(max_intra, intra[nd]);
    max_inter = std::max(max_inter, inter[nd]);
  }
  if (s.records > 0)
    s.route_ns = rt::coll_model::hier_alltoallv_ns(
        cluster_, nnodes, ppn, max_intra, max_inter,
        rt::coll_model::HierLevel::node);

  for (int r = 0; r < np; ++r) {
    auto& batch = batches[static_cast<std::size_t>(r)];
    if (batch.empty()) continue;
    const auto bsz = static_cast<double>(batch.size());
    const double sort_ns =
        bsz * std::max(1.0, std::log2(bsz)) * cp.probe_work_ns;
    stores_[static_cast<std::size_t>(r)].append(std::move(batch));
    // The memtable merge streams the whole (flat, sorted) run — the cost
    // that grows with fill and motivates compaction.
    const double merge_ns =
        static_cast<double>(stores_[static_cast<std::size_t>(r)].bytes()) /
        8.0 * cp.stream_word_ns;
    s.append_ns = std::max(s.append_ns, sort_ns + merge_ns);
  }

  if (metrics_ != nullptr) {
    metrics_->counter("dyn.deltas_applied").add(s.records);
    metrics_->counter("dyn.tombstones").add(s.tombstones);
  }
  if (tracer_ != nullptr)
    tracer_->span(tracer_->host_track(), kCatDyn, "ingest.append", now_ns,
                  now_ns + s.total_ns(),
                  obs::kv("epoch", s.epoch) + "," + obs::kv("ops", s.ops) +
                      "," + obs::kv("records", s.records) + "," +
                      obs::kv("tombstones", s.tombstones));
  return s;
}

std::shared_ptr<const Snapshot> SnapshotManager::pin(std::uint64_t epoch,
                                                     double now_ns) {
  if (epoch < base_->epoch || epoch > epoch_)
    throw std::out_of_range(
        "SnapshotManager::pin: epoch outside [base, current] — epochs below "
        "the base were compacted away");
  const int np = part_.np();
  const auto& cp = cluster_.params();

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch;
  snap->base = base_;

  std::vector<std::vector<Override>> ovr(static_cast<std::size_t>(np));
  bool any = false;
  double max_rank_ns = 0;
  for (int r = 0; r < np; ++r) {
    const DeltaStore& st = stores_[static_cast<std::size_t>(r)];
    std::uint64_t visible = 0;
    for (const DeltaRec& rec : st.records())
      if (rec.epoch <= epoch) ++visible;
    snap->deltas_applied += visible;
    ovr[static_cast<std::size_t>(r)] = resolve_rank(st, epoch);
    any = any || !ovr[static_cast<std::size_t>(r)].empty();
    max_rank_ns = std::max(
        max_rank_ns, static_cast<double>(st.size()) * cp.probe_work_ns);
  }

  if (!any) {
    // Clean pin: the base itself is the view (no read amplification).
    snap->graph = std::shared_ptr<const graph::DistGraph>(base_, &base_->dg);
    snap->pin_ns =
        rt::coll_model::allreduce_scalar_ns(cluster_, cluster_.nranks());
  } else {
    auto mv = std::make_shared<MergedView>();
    mv->base = base_;
    graph::DistGraph& g = mv->dg;
    g.n = base_->dg.n;
    g.part = part_;
    g.locals.resize(static_cast<std::size_t>(np));
    std::uint64_t directed = 0;
    for (int r = 0; r < np; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      build_merged_local(base_->dg.locals[ri], ovr[ri], g.locals[ri],
                         snap->patched_groups);
      directed += g.locals[ri].merged_owned_edges;
      snap->patched_rows += g.locals[ri].patch_offsets.size() - 1;
      const double words =
          static_cast<double>(g.locals[ri].patch_adj.size() +
                              g.locals[ri].patch_td_adj.size()) *
              sizeof(graph::Vertex) / 8.0 +
          static_cast<double>(g.locals[ri].dirty_words.size());
      max_rank_ns = std::max(
          max_rank_ns,
          static_cast<double>(ovr[ri].size()) * cp.probe_work_ns +
              words * cp.stream_word_ns);
    }
    g.directed_edges = directed;
    snap->graph = std::shared_ptr<const graph::DistGraph>(std::move(mv), &g);
    snap->pin_ns =
        rt::coll_model::allreduce_scalar_ns(cluster_, cluster_.nranks()) +
        max_rank_ns;
  }

  if (metrics_ != nullptr) metrics_->counter("dyn.pins").add(1);
  if (tracer_ != nullptr)
    tracer_->span(tracer_->host_track(), kCatDyn, "snapshot.pin", now_ns,
                  now_ns + snap->pin_ns,
                  obs::kv("epoch", epoch) + "," +
                      obs::kv("deltas", snap->deltas_applied) + "," +
                      obs::kv("patched_rows", snap->patched_rows));
  return snap;
}

graph::Csr SnapshotManager::rebuild_csr(std::uint64_t epoch) const {
  if (epoch < base_->epoch || epoch > epoch_)
    throw std::out_of_range("SnapshotManager::rebuild_csr: epoch outside "
                            "[base, current]");
  const graph::Csr& b = base_->csr;
  const std::uint64_t n = b.num_vertices();
  std::vector<graph::Edge> edges;
  edges.reserve(b.num_directed_edges() / 2 + live_records());
  std::vector<graph::Vertex> row;
  for (int r = 0; r < part_.np(); ++r) {
    const auto ovr = resolve_rank(stores_[static_cast<std::size_t>(r)], epoch);
    std::size_t oi = 0;
    for (std::uint64_t v = part_.begin(r); v < part_.end(r); ++v) {
      std::size_t oj = oi;
      while (oj < ovr.size() && ovr[oj].key == v) ++oj;
      row.clear();
      merge_row(b.neighbors(static_cast<graph::Vertex>(v)),
                std::span<const Override>(ovr).subspan(oi, oj - oi), row);
      oi = oj;
      // Routed records cover every edge at both endpoints, so emitting the
      // u < v half once reconstructs the undirected set exactly.
      for (graph::Vertex nb : row)
        if (v < nb) edges.push_back({static_cast<graph::Vertex>(v), nb});
    }
  }
  return graph::Csr::from_edges(n, edges, graph::EdgePolicy::sorted_dedup);
}

CompactionStats SnapshotManager::compact(double now_ns) {
  CompactionStats cs;
  cs.epoch = epoch_;
  cs.records_folded = live_records();
  if (cs.records_folded == 0 && epoch_ == base_->epoch) return cs;

  const auto& cp = cluster_.params();
  graph::Csr nc = rebuild_csr(epoch_);

  double max_rank_ns = 0;
  for (int r = 0; r < part_.np(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const std::uint64_t old_e = base_->dg.locals[ri].owned_edges();
    const std::uint64_t new_e =
        nc.offsets()[part_.end(r)] - nc.offsets()[part_.begin(r)];
    // Both adjacency runs are streamed twice (bottom-up slice plus the
    // top-down regroup), and the rank's delta run once.
    const double words =
        2.0 * static_cast<double>(old_e + new_e) * sizeof(graph::Vertex) /
            8.0 +
        static_cast<double>(stores_[ri].bytes()) / 8.0;
    max_rank_ns = std::max(max_rank_ns, words * cp.stream_word_ns);
  }
  cs.merge_ns = max_rank_ns;
  cs.pause_ns =
      rt::coll_model::allreduce_scalar_ns(cluster_, cluster_.nranks());
  cs.bytes_merged =
      (base_->csr.num_directed_edges() + nc.num_directed_edges()) *
          sizeof(graph::Vertex) +
      cs.records_folded * sizeof(DeltaRec);

  auto nb = std::make_shared<BaseVersion>();
  nb->epoch = epoch_;
  nb->dg = graph::DistGraph::build(nc, part_);
  nb->csr = std::move(nc);
  base_ = std::move(nb);
  for (DeltaStore& st : stores_) st.truncate_through(epoch_);
  ++compactions_;

  if (metrics_ != nullptr) {
    metrics_->counter("dyn.compactions").add(1);
    metrics_->counter("dyn.bytes_merged").add(cs.bytes_merged);
  }
  if (tracer_ != nullptr) {
    tracer_->span(tracer_->host_track(), kCatDyn, "compact.merge", now_ns,
                  now_ns + cs.merge_ns,
                  obs::kv("epoch", cs.epoch) + "," +
                      obs::kv("records", cs.records_folded) + "," +
                      obs::kv("bytes_merged", cs.bytes_merged));
    tracer_->span(tracer_->host_track(), kCatDyn, "compact.pause",
                  now_ns + cs.merge_ns, now_ns + cs.merge_ns + cs.pause_ns);
  }
  return cs;
}

}  // namespace numabfs::dyn
