#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>

namespace numabfs::graph {

Csr Csr::from_edges(std::uint64_t num_vertices, std::span<const Edge> edges,
                    EdgePolicy policy) {
  Csr g;
  g.n_ = num_vertices;
  g.offsets_.assign(num_vertices + 1, 0);

  for (const Edge& e : edges) {
    assert(e.u < num_vertices && e.v < num_vertices);
    if (e.u == e.v) continue;
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::uint64_t v = 0; v < num_vertices; ++v)
    g.offsets_[v + 1] += g.offsets_[v];

  g.adj_.resize(g.offsets_[num_vertices]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    g.adj_[cursor[e.u]++] = e.v;
    g.adj_[cursor[e.v]++] = e.u;
  }
  if (policy == EdgePolicy::keep_multiplicity) return g;

  // Set semantics: sort each row and collapse parallel edges, then
  // recompact. Row order becomes canonical (ascending), independent of the
  // edge-list order the graph was built from.
  std::vector<std::uint64_t> new_offsets(num_vertices + 1, 0);
  std::uint64_t w = 0;
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    const std::uint64_t b = g.offsets_[v];
    const std::uint64_t e = g.offsets_[v + 1];
    std::sort(g.adj_.begin() + static_cast<std::ptrdiff_t>(b),
              g.adj_.begin() + static_cast<std::ptrdiff_t>(e));
    new_offsets[v] = w;
    for (std::uint64_t i = b; i < e; ++i)
      if (i == b || g.adj_[i] != g.adj_[i - 1]) g.adj_[w++] = g.adj_[i];
  }
  new_offsets[num_vertices] = w;
  g.adj_.resize(w);
  g.offsets_ = std::move(new_offsets);
  return g;
}

}  // namespace numabfs::graph
