#include "graph/csr.hpp"

#include <cassert>

namespace numabfs::graph {

Csr Csr::from_edges(std::uint64_t num_vertices, std::span<const Edge> edges) {
  Csr g;
  g.n_ = num_vertices;
  g.offsets_.assign(num_vertices + 1, 0);

  for (const Edge& e : edges) {
    assert(e.u < num_vertices && e.v < num_vertices);
    if (e.u == e.v) continue;
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::uint64_t v = 0; v < num_vertices; ++v)
    g.offsets_[v + 1] += g.offsets_[v];

  g.adj_.resize(g.offsets_[num_vertices]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    g.adj_[cursor[e.u]++] = e.v;
    g.adj_[cursor[e.v]++] = e.u;
  }
  return g;
}

}  // namespace numabfs::graph
