#pragma once
/// \file errors.hpp
/// Error types of the fault-tolerant runtime. They exist so that a fabric
/// misbehaving under an injected fault plan surfaces as a *diagnosable*
/// exception at the call site instead of a silent host-thread deadlock or
/// a corrupted traversal.

#include <stdexcept>
#include <string>

namespace numabfs::faults {

/// A receive (or a reliable send) gave up waiting: the peer is marked dead
/// or the virtual-time timeout elapsed without a deliverable message.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

/// The fault plan made forward progress impossible (e.g. a message exceeded
/// the retransmit budget, or a rank crashed with checkpointing disabled).
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace numabfs::faults
