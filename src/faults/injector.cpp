#include "faults/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "faults/hash.hpp"

namespace numabfs::faults {

namespace {
// Domain-separation tags for the fault coins.
constexpr std::uint64_t kTagDrop = 0xD509;
constexpr std::uint64_t kTagCorrupt = 0xC099;
constexpr std::uint64_t kTagMask = 0x3A5C;
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int nranks, int ppn)
    : plan_(std::move(plan)),
      nranks_(nranks),
      ppn_(ppn),
      outage_at_ns_(plan_.outage_at_ns()),
      crash_level_(static_cast<std::size_t>(nranks), -1),
      dead_(new std::atomic<bool>[static_cast<std::size_t>(nranks)]) {
  if (nranks < 1 || ppn < 1)
    throw std::invalid_argument("FaultInjector: nranks/ppn must be >= 1");
  for (const FaultEvent& e : plan_.events) {
    if ((e.kind == FaultKind::straggler || e.kind == FaultKind::rank_crash) &&
        e.rank >= nranks)
      throw std::invalid_argument("FaultInjector: event rank out of range");
    if (e.kind == FaultKind::link_degrade && e.node >= (nranks + ppn - 1) / ppn)
      throw std::invalid_argument("FaultInjector: event node out of range");
    if (e.kind == FaultKind::rank_crash) {
      int& lvl = crash_level_[static_cast<std::size_t>(e.rank)];
      lvl = lvl < 0 ? e.level : std::min(lvl, e.level);
    }
  }
  reset_dynamic();
}

double FaultInjector::link_factor(int node, double now_ns) const {
  double f = 1.0;
  for (const FaultEvent& e : plan_.events)
    if (e.kind == FaultKind::link_degrade && e.node == node &&
        e.active_at(now_ns))
      f *= e.factor;
  return f;
}

double FaultInjector::min_link_factor(double now_ns) const {
  double f = 1.0;
  for (const FaultEvent& e : plan_.events)
    if (e.kind == FaultKind::link_degrade && e.active_at(now_ns))
      f = std::min(f, link_factor(e.node, now_ns));
  return f;
}

double FaultInjector::compute_factor(int rank, double now_ns) const {
  double f = 1.0;
  for (const FaultEvent& e : plan_.events)
    if (e.kind == FaultKind::straggler && e.rank == rank && e.active_at(now_ns))
      f *= e.factor;
  return f;
}

Verdict FaultInjector::attempt_verdict(int from, int to, std::uint64_t seq,
                                       int attempt, double now_ns) const {
  double p_drop = 0.0, p_corrupt = 0.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.rank >= 0 && e.rank != from) continue;
    if (!e.active_at(now_ns)) continue;
    if (e.kind == FaultKind::msg_drop)
      p_drop = std::max(p_drop, e.probability);
    else if (e.kind == FaultKind::msg_corrupt)
      p_corrupt = std::max(p_corrupt, e.probability);
  }
  if (p_drop <= 0.0 && p_corrupt <= 0.0) return Verdict::deliver;
  const std::uint64_t key =
      hash_mix(plan_.seed, static_cast<std::uint64_t>(from),
               static_cast<std::uint64_t>(to), seq,
               static_cast<std::uint64_t>(attempt));
  if (hash_unit(hash_mix(key, kTagDrop)) < p_drop) return Verdict::drop;
  if (hash_unit(hash_mix(key, kTagCorrupt)) < p_corrupt)
    return Verdict::corrupt;
  return Verdict::deliver;
}

void FaultInjector::corrupt_payload(std::span<std::uint64_t> payload, int from,
                                    int to, std::uint64_t seq,
                                    int attempt) const {
  if (payload.empty()) return;
  const std::uint64_t h =
      hash_mix(plan_.seed, kTagMask, static_cast<std::uint64_t>(from),
               static_cast<std::uint64_t>(to), seq,
               static_cast<std::uint64_t>(attempt));
  const std::size_t word = static_cast<std::size_t>(h % payload.size());
  const std::uint64_t mask = splitmix64(h) | 1ull;  // never a zero flip
  payload[word] ^= mask;
}

void FaultInjector::reset_dynamic() {
  for (int r = 0; r < nranks_; ++r)
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
  dead_count_.store(0, std::memory_order_release);
}

void FaultInjector::mark_dead(int rank) {
  bool expected = false;
  if (dead_[static_cast<std::size_t>(rank)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel))
    dead_count_.fetch_add(1, std::memory_order_acq_rel);
}

int FaultInjector::lowest_live() const {
  for (int r = 0; r < nranks_; ++r)
    if (!dead(r)) return r;
  return -1;
}

int FaultInjector::lowest_live_local(int node) const {
  for (int l = 0; l < ppn_; ++l)
    if (!dead(node * ppn_ + l)) return l;
  return -1;
}

int FaultInjector::adopter_of(int dead_rank) const {
  const int node = node_of(dead_rank);
  const int local = lowest_live_local(node);
  if (local >= 0) return node * ppn_ + local;
  return lowest_live();
}

std::vector<int> FaultInjector::parts_of(int rank) const {
  std::vector<int> parts;
  if (!dead(rank)) parts.push_back(rank);
  for (int d = 0; d < nranks_; ++d)
    if (dead(d) && adopter_of(d) == rank) parts.push_back(d);
  return parts;
}

}  // namespace numabfs::faults
