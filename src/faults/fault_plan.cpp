#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace numabfs::faults {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::link_degrade: return "degrade";
    case FaultKind::msg_drop: return "drop";
    case FaultKind::msg_corrupt: return "corrupt";
    case FaultKind::straggler: return "straggle";
    case FaultKind::rank_crash: return "crash";
    case FaultKind::replica_outage: return "outage";
  }
  return "?";
}

bool FaultEvent::active_at(double now_ns) const {
  if (now_ns < from_ns || now_ns >= until_ns) return false;
  if (period_ns <= 0.0) return true;
  const double phase = std::fmod(now_ns - from_ns, period_ns);
  return phase < duty * period_ns;
}

bool FaultPlan::has_crashes() const {
  for (const FaultEvent& e : events)
    if (e.kind == FaultKind::rank_crash) return true;
  return false;
}

double FaultPlan::outage_at_ns() const {
  double at = std::numeric_limits<double>::infinity();
  for (const FaultEvent& e : events)
    if (e.kind == FaultKind::replica_outage) at = std::min(at, e.from_ns);
  return at;
}

namespace {

[[noreturn]] void parse_fail(const std::string& token, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad event '" + token + "': " + why);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_num(const std::string& token, const std::string& key,
                 const std::string& val) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(val, &pos);
    if (pos != val.size())
      parse_fail(token, key + "=" + val + " is not a number");
    return d;
  } catch (const std::invalid_argument&) {
    parse_fail(token, key + "=" + val + " is not a number");
  } catch (const std::out_of_range&) {
    parse_fail(token, key + "=" + val + " is out of range");
  }
}

int parse_int(const std::string& token, const std::string& key,
              const std::string& val) {
  const double d = parse_num(token, key, val);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d)
    parse_fail(token, key + "=" + val + " must be an integer");
  return i;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos)
      parse_fail(token, "expected 'kind:params' (e.g. crash:rank=3@level=4)");
    const std::string kind = token.substr(0, colon);
    const std::string rest = token.substr(colon + 1);

    if (kind == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_num(token, "seed", rest));
      continue;
    }
    if (kind == "checkpoint") {
      if (rest == "on")
        plan.checkpoint_forced_on = true;
      else if (rest == "off")
        plan.checkpoint_forced_off = true;
      else
        parse_fail(token, "checkpoint takes 'on' or 'off'");
      continue;
    }

    FaultEvent e;
    if (kind == "degrade" || kind == "flap")
      e.kind = FaultKind::link_degrade;
    else if (kind == "drop")
      e.kind = FaultKind::msg_drop;
    else if (kind == "corrupt")
      e.kind = FaultKind::msg_corrupt;
    else if (kind == "straggle")
      e.kind = FaultKind::straggler;
    else if (kind == "crash")
      e.kind = FaultKind::rank_crash;
    else if (kind == "outage")
      e.kind = FaultKind::replica_outage;
    else
      parse_fail(token,
                 "unknown kind '" + kind +
                     "' (want crash|drop|corrupt|straggle|degrade|flap|outage)");

    // Only the parameters that can affect this kind are accepted; a
    // parameter the event would silently ignore is a spec bug.
    const auto allowed = [&](const std::string& key) {
      switch (e.kind) {
        case FaultKind::rank_crash:
          return key == "rank" || key == "level";
        case FaultKind::replica_outage:
          return key == "at";
        case FaultKind::straggler:
          return key == "rank" || key == "factor" || key == "from" ||
                 key == "until" || key == "period" || key == "duty";
        case FaultKind::msg_drop:
        case FaultKind::msg_corrupt:
          return key == "prob" || key == "rank" || key == "from" ||
                 key == "until" || key == "period" || key == "duty";
        case FaultKind::link_degrade:
          return key == "node" || key == "factor" || key == "from" ||
                 key == "until" || key == "period" || key == "duty";
      }
      return false;
    };

    for (const std::string& kv : split(rest, '@')) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos)
        parse_fail(token, "parameter '" + kv + "' is not key=value");
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (!allowed(key))
        parse_fail(token, "parameter '" + key + "' has no effect on a '" +
                              kind + "' event");
      if (key == "node")
        e.node = parse_int(token, key, val);
      else if (key == "rank")
        e.rank = parse_int(token, key, val);
      else if (key == "level")
        e.level = parse_int(token, key, val);
      else if (key == "factor")
        e.factor = parse_num(token, key, val);
      else if (key == "prob")
        e.probability = parse_num(token, key, val);
      else if (key == "from" || key == "at")
        e.from_ns = parse_num(token, key, val);
      else if (key == "until")
        e.until_ns = parse_num(token, key, val);
      else if (key == "period")
        e.period_ns = parse_num(token, key, val);
      else if (key == "duty")
        e.duty = parse_num(token, key, val);
      else
        parse_fail(token, "unknown parameter '" + key + "'");
    }

    // Per-kind validation with actionable messages.
    switch (e.kind) {
      case FaultKind::link_degrade:
        if (e.node < 0) parse_fail(token, "degrade/flap needs node=N");
        if (!(e.factor > 0.0 && e.factor <= 1.0))
          parse_fail(token, "degrade factor must be in (0,1]");
        if (kind == "flap" && e.period_ns <= 0.0)
          parse_fail(token, "flap needs period=NS > 0");
        if (!(e.duty > 0.0 && e.duty <= 1.0))
          parse_fail(token, "duty must be in (0,1]");
        break;
      case FaultKind::msg_drop:
      case FaultKind::msg_corrupt:
        if (!(e.probability >= 0.0 && e.probability <= 1.0))
          parse_fail(token, "prob must be in [0,1]");
        break;
      case FaultKind::straggler:
        if (e.rank < 0) parse_fail(token, "straggle needs rank=R");
        if (e.factor < 1.0)
          parse_fail(token, "straggle factor must be >= 1 (a slowdown)");
        break;
      case FaultKind::rank_crash:
        if (e.rank < 0) parse_fail(token, "crash needs rank=R");
        if (e.level < 0) parse_fail(token, "crash needs level=L >= 0");
        if (e.level > kMaxPlausibleCrashLevel)
          parse_fail(token, "crash level " + std::to_string(e.level) +
                                " is beyond any plausible BFS depth (max " +
                                std::to_string(kMaxPlausibleCrashLevel) +
                                "); the crash would never fire");
        break;
      case FaultKind::replica_outage:
        if (!(e.from_ns >= 0.0))
          parse_fail(token, "outage needs at=NS >= 0");
        break;
    }
    if (e.until_ns <= e.from_ns)
      parse_fail(token, "until must be greater than from");
    plan.events.push_back(e);
  }
  plan.validate();
  return plan;
}

void FaultPlan::validate() const {
  std::vector<int> crash_ranks;
  int outages = 0;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::rank_crash) {
      if (std::find(crash_ranks.begin(), crash_ranks.end(), e.rank) !=
          crash_ranks.end())
        throw std::invalid_argument(
            "FaultPlan: duplicate crash of rank " + std::to_string(e.rank) +
            " (a rank dies once; keep the earlier level)");
      crash_ranks.push_back(e.rank);
      if (e.level > kMaxPlausibleCrashLevel)
        throw std::invalid_argument(
            "FaultPlan: crash level " + std::to_string(e.level) +
            " is beyond any plausible BFS depth (max " +
            std::to_string(kMaxPlausibleCrashLevel) + ")");
    }
    if (e.kind == FaultKind::replica_outage && ++outages > 1)
      throw std::invalid_argument(
          "FaultPlan: more than one replica outage (the replica dies once; "
          "keep the earliest outage:at=...)");
    if (e.until_ns <= e.from_ns)
      throw std::invalid_argument(
          "FaultPlan: event '" + std::string(to_string(e.kind)) +
          "' has an empty activity window (until <= from)");
  }
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (checkpointing()) os << " +chk";
  for (const FaultEvent& e : events) {
    os << ' ' << to_string(e.kind);
    switch (e.kind) {
      case FaultKind::rank_crash:
        os << "(r" << e.rank << "@L" << e.level << ')';
        break;
      case FaultKind::straggler:
        os << "(r" << e.rank << " x" << e.factor << ')';
        break;
      case FaultKind::link_degrade:
        os << "(n" << e.node << " x" << e.factor;
        if (e.period_ns > 0) os << " flap";
        os << ')';
        break;
      case FaultKind::msg_drop:
      case FaultKind::msg_corrupt:
        os << "(p=" << e.probability;
        if (e.rank >= 0) os << " r" << e.rank;
        os << ')';
        break;
      case FaultKind::replica_outage:
        os << "(at=" << e.from_ns << ')';
        break;
    }
  }
  return os.str();
}

}  // namespace numabfs::faults
