#pragma once
/// \file fault_plan.hpp
/// A seeded, fully deterministic schedule of fault events for the simulated
/// cluster ("chaos mode"). Events are expressed in virtual time and BFS
/// levels, never in host time, so a plan plus a seed reproduces the exact
/// same failure history on every run.
///
/// Text syntax (the `--faults=` option of the benches): events separated by
/// commas, parameters of one event separated by `@`:
///
///   seed:42                                 RNG seed for all fault coins
///   checkpoint:off                          disable level checkpointing
///   crash:rank=3@level=4                    rank 3 dies entering level 4
///   drop:prob=0.05                          NIC drops 5% of messages
///   drop:prob=0.2@rank=1                    ...only messages sent by rank 1
///   corrupt:prob=0.01                       payload corruption (checksummed)
///   straggle:rank=2@factor=3                rank 2 computes 3x slower
///   degrade:node=1@factor=0.25              node 1 NIC at 25% bandwidth
///   degrade:node=1@factor=0.5@from=1e6@until=5e6   ...only in a time window
///   flap:node=0@factor=0.1@period=2e6@duty=0.5     link flaps periodically
///   outage:at=5e6                           whole replica dies at t=5ms
///                                           (heartbeats stop; serving-tier
///                                           failover, see frontdoor.hpp)
///
/// Parsing is strict: every event accepts only the parameters that can
/// affect it, contradictory directives (two crashes of the same rank, more
/// than one outage) and unreachable ones (a crash level beyond any
/// plausible BFS depth, an empty activity window) are rejected at parse
/// time with an actionable message instead of becoming silent no-ops.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace numabfs::faults {

enum class FaultKind {
  link_degrade,   ///< NIC bandwidth of `node` scaled by `factor` while active
  msg_drop,       ///< messages from `rank` (-1: any) dropped with `probability`
  msg_corrupt,    ///< payloads from `rank` (-1: any) corrupted with `probability`
  straggler,      ///< rank's charged time multiplied by `factor` while active
  rank_crash,     ///< rank dies on entering BFS level `level`
  replica_outage, ///< the whole cluster dies at virtual time `from_ns`
};

const char* to_string(FaultKind k);

/// Crash levels beyond this are rejected at parse time: even a path graph
/// at the largest simulated scale stays under 2^22 levels, and every
/// small-world graph the benches traverse finishes in a few dozen — a
/// larger level means the crash never fires, a silent no-op.
inline constexpr int kMaxPlausibleCrashLevel = 1 << 22;

struct FaultEvent {
  FaultKind kind = FaultKind::msg_drop;
  int node = -1;   ///< link_degrade: affected node
  int rank = -1;   ///< drop/corrupt: sender (-1 = all); straggler/crash: rank
  int level = -1;  ///< rank_crash: BFS level at which the rank dies
  double factor = 1.0;      ///< degrade: (0,1]; straggler: >= 1
  double probability = 0;   ///< drop/corrupt: per-attempt probability [0,1]
  double from_ns = 0;       ///< window start (degrade/straggler/drop/corrupt)
  double until_ns = std::numeric_limits<double>::infinity();  ///< window end
  double period_ns = 0;     ///< > 0: flapping — active for `duty` of each period
  double duty = 1.0;        ///< active fraction of a flap period (0,1]

  /// Whether the event is active at virtual time `now_ns` (window + flap).
  bool active_at(double now_ns) const;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Level checkpointing policy: defaults to on whenever the plan contains
  /// a crash (recovery is impossible without it); `checkpoint:off` forces
  /// it off, `checkpoint:on` forces it on even for crash-free plans (to
  /// measure the pure checkpoint overhead).
  bool checkpoint_forced_on = false;
  bool checkpoint_forced_off = false;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty() && !checkpoint_forced_on; }
  bool has_crashes() const;
  /// Virtual time at which the whole replica dies (the earliest
  /// replica_outage event), or +inf when the plan has none.
  double outage_at_ns() const;
  bool checkpointing() const {
    if (checkpoint_forced_off) return false;
    return checkpoint_forced_on || has_crashes();
  }

  /// Parse the `--faults=` syntax documented above. Throws
  /// std::invalid_argument with an actionable message on malformed input,
  /// on per-event parameters that cannot affect the event, and on
  /// cross-event contradictions (validate()).
  static FaultPlan parse(const std::string& spec);

  /// Cross-event validation (parse() runs this): rejects duplicate crashes
  /// of one rank, crash levels beyond kMaxPlausibleCrashLevel, more than
  /// one replica outage, and empty activity windows. Throws
  /// std::invalid_argument; safe to call on hand-built plans too.
  void validate() const;

  /// Human-readable one-line summary (bench table labels).
  std::string describe() const;
};

}  // namespace numabfs::faults
