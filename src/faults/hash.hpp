#pragma once
/// \file hash.hpp
/// Deterministic hashing primitives for the fault layer: every fault
/// decision (drop/corrupt coins, corruption masks) is a pure function of
/// (plan seed, endpoints, sequence number, attempt), so two runs with the
/// same seed make bit-identical decisions under any thread schedule.

#include <cstdint>
#include <span>

namespace numabfs::faults {

/// Fenwick/Steele splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Chain-mix an arbitrary number of words into one hash.
constexpr std::uint64_t hash_mix(std::uint64_t h) { return splitmix64(h); }
template <typename... Rest>
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t next,
                                 Rest... rest) {
  return hash_mix(splitmix64(h ^ next), rest...);
}

/// Map a hash to a uniform double in [0, 1).
constexpr double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// 64-bit FNV-1a over a word payload. Every per-word step is a bijection
/// (xor, then multiply by an odd constant), so flipping any bit of any word
/// is guaranteed to change the checksum — which is what lets the receivers
/// detect injected payload corruption with certainty.
constexpr std::uint64_t checksum64(std::span<const std::uint64_t> payload) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t w : payload) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace numabfs::faults
