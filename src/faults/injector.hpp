#pragma once
/// \file injector.hpp
/// Runtime side of chaos mode: answers the runtime's fault queries
/// deterministically from a `FaultPlan`.
///
/// Two kinds of state live here. *Scheduled* state (crash levels, drop
/// probabilities, degrade windows) is immutable and queried by pure
/// functions of (seed, endpoints, sequence, virtual time). *Dynamic* state
/// is the liveness of ranks: a crashing rank marks itself dead, survivors
/// observe the death at their next barrier and deterministically re-assign
/// the dead rank's graph partition (`adopter_of`/`parts_of`). Dynamic state
/// is reset by `Cluster::run`, so every SPMD run replays the same history.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "faults/fault_plan.hpp"

namespace numabfs::faults {

/// Outcome of one delivery attempt of one message.
enum class Verdict {
  deliver,  ///< the attempt arrives intact
  drop,     ///< the NIC eats the message (receiver sees nothing)
  corrupt,  ///< the payload arrives with flipped bits (checksum will fail)
};

class FaultInjector {
 public:
  /// `nranks`/`ppn` describe the cluster shape (for node mapping and
  /// adopter selection).
  FaultInjector(FaultPlan plan, int nranks, int ppn);

  const FaultPlan& plan() const { return plan_; }
  bool checkpointing() const { return plan_.checkpointing(); }
  bool has_crashes() const { return plan_.has_crashes(); }
  int nranks() const { return nranks_; }
  int node_of(int rank) const { return rank / ppn_; }

  // --- scheduled, pure queries ------------------------------------------

  /// NIC bandwidth multiplier of `node` at virtual time `now_ns` (product
  /// of active degrade/flap events; 1.0 when none).
  double link_factor(int node, double now_ns) const;
  /// Worst link factor over all nodes (ring collectives are bound by it).
  double min_link_factor(double now_ns) const;

  /// Charged-time multiplier of `rank` at `now_ns` (straggler events).
  double compute_factor(int rank, double now_ns) const;

  /// Deterministic coin for delivery attempt `attempt` of message `seq`
  /// from `from` to `to` at virtual time `now_ns`.
  Verdict attempt_verdict(int from, int to, std::uint64_t seq, int attempt,
                          double now_ns) const;

  /// Corrupt `payload` in place the way attempt (`seq`, `attempt`) is
  /// corrupted on the wire: one deterministic word gets a nonzero XOR mask.
  void corrupt_payload(std::span<std::uint64_t> payload, int from, int to,
                       std::uint64_t seq, int attempt) const;

  /// BFS level at which `rank` is scheduled to crash, or -1.
  int crash_level(int rank) const {
    return crash_level_[static_cast<std::size_t>(rank)];
  }

  /// Virtual time at which the whole replica dies (replica_outage event),
  /// or +inf. After this instant no rank makes progress and no heartbeat
  /// is answered; the serving tier's front door fails queries over.
  double outage_at_ns() const { return outage_at_ns_; }

  /// Heartbeat-loss verdict: does a liveness probe sent at `now_ns` get an
  /// answer? False once the replica outage has struck or every rank is
  /// dead. Individual rank crashes keep heartbeats alive — the survivors
  /// answer — so the replica reads as degraded, not down.
  bool heartbeat_ok(double now_ns) const {
    return now_ns < outage_at_ns_ && dead_count() < nranks_;
  }

  // --- dynamic liveness --------------------------------------------------

  /// Forget all deaths (called by Cluster::run before launching ranks).
  void reset_dynamic();

  /// Called by the crashing rank itself, before it retires from barriers —
  /// the barrier release then orders the store before any survivor's read.
  void mark_dead(int rank);

  bool dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  bool any_dead() const { return dead_count() > 0; }
  int dead_count() const { return dead_count_.load(std::memory_order_acquire); }

  /// Lowest live rank of the cluster (the effective recorder), or -1.
  int lowest_live() const;
  /// Lowest live local index on `node` (the effective node leader), or -1
  /// when the whole node is dead.
  int lowest_live_local(int node) const;

  /// Deterministic adopter of a dead rank's partition: the lowest live rank
  /// on the same node, else the lowest live rank overall; -1 if none.
  int adopter_of(int dead_rank) const;

  /// The partitions `rank` is currently responsible for: its own plus every
  /// dead partition it adopted. Pure function of the current dead set, so
  /// all survivors compute consistent assignments after the same barrier.
  std::vector<int> parts_of(int rank) const;

 private:
  FaultPlan plan_;
  int nranks_;
  int ppn_;
  double outage_at_ns_;
  std::vector<int> crash_level_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<int> dead_count_{0};
};

}  // namespace numabfs::faults
