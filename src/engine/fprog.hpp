#pragma once
/// \file fprog.hpp
/// Frontier-program abstraction (DESIGN.md §16): the engine half of every
/// frontier-driven workload that is not a BFS lane wave.
///
/// A FrontierProgram supplies the *algorithm*: how to seed the first
/// frontier, how one level advances it (push over top-down groups or pull
/// over owned adjacency), how the shared control scalars evolve from the
/// level's reduced statistics, and when the computation has converged. The
/// engine supplies everything else — the state layout, the per-level
/// exchange (riding the same collective plans, codec gate and degraded-link
/// model as the MS-BFS wave through exchange_core.hpp), checkpointing,
/// crash detection with partition adoption and level rollback, abort
/// horizons with cross-replica checkpoint export/resume for failover, the
/// observability spans and the cost-model direction choice.
///
/// Ownership contract (who touches what):
///  - program state is split into a *replicated read side* (frontier bit
///    words + value array per replica, updated only by the exchange) and a
///    *partition-owned write side* (out bits, out summary, val_out),
///    written only by the partition's current owner;
///  - `val_out` is the partition's authoritative value state. Entries the
///    level left unchanged always equal what every replica already holds
///    (values evolve deterministically from the replicated inputs), so the
///    exchange ships only the changed entries on the modeled wire while the
///    simulation lands the whole block;
///  - programs never touch the virtual clock: they return work counts
///    (ProgStats) and the engine converts them to modeled time with the
///    partition's unit costs, exactly once per level;
///  - control scalars are per-rank copies evolved by post_level() from
///    all-reduced statistics only, so every rank takes identical decisions
///    without further communication.

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "bfs/config.hpp"
#include "graph/dist_graph.hpp"
#include "graph/summary.hpp"
#include "numasim/phase_profile.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::engine {

/// One 64-bit value slot per vertex. Programs pack what they need into it
/// (a distance, a label, two packed float32 for PageRank's (rank, residual)).
using Value = std::uint64_t;

inline constexpr Value kProgInf = ~0ull;

/// Per-level, per-partition work counts a program's kernels report. The
/// engine charges modeled time from them and all-reduces the reduction
/// fields; `reduced` views of this struct hold the global sums.
struct ProgStats {
  std::uint64_t changed = 0;         ///< out bits set (next frontier size)
  std::uint64_t sources = 0;         ///< frontier vertices processed (push)
  std::uint64_t frontier_edges = 0;  ///< adjacency entries behind the frontier
  std::uint64_t scanned = 0;         ///< adjacency entries actually examined
  std::uint64_t needy = 0;           ///< pull-side vertices still in play
  std::uint64_t mu = 0;              ///< their adjacency volume
  std::uint64_t min_word = kProgInf; ///< min-reduced program word
  std::uint64_t acc = 0;             ///< sum-reduced program word
  std::uint64_t flags = 0;           ///< or-reduced program flags

  void add(const ProgStats& o) {
    changed += o.changed;
    sources += o.sources;
    frontier_edges += o.frontier_edges;
    scanned += o.scanned;
    needy += o.needy;
    mu += o.mu;
    min_word = min_word < o.min_word ? min_word : o.min_word;
    acc += o.acc;
    flags |= o.flags;
  }
};

/// Distributed program state: replicated frontier/value arrays plus the
/// partition-owned out side. Frontier bits live in per-partition
/// word-aligned slabs of `words_per_block()` words, so the exchange lands a
/// partition's chunk with one memcpy regardless of the block size; the bit
/// of global vertex v sits at bit_pos(owner, v - owner*block).
class ProgramState {
 public:
  ProgramState(const graph::DistGraph& dg, const bfs::Config& cfg, int nodes,
               int ppn, bool with_values);

  const bfs::Config& config() const { return cfg_; }
  bool shared_frontier() const { return shared_; }
  bool with_values() const { return with_values_; }
  std::uint64_t block() const { return block_; }
  std::uint64_t words_per_block() const { return wpb_; }
  std::uint64_t padded_words() const { return wpb_ * static_cast<std::uint64_t>(np_); }
  std::uint64_t padded_values() const { return block_ * static_cast<std::uint64_t>(np_); }
  std::uint64_t summary_bits() const {
    return graph::SummaryView::summary_bits_for(padded_words() * 64,
                                                cfg_.summary_granularity);
  }

  std::uint64_t bit_pos(int part, std::uint64_t local_v) const {
    return static_cast<std::uint64_t>(part) * wpb_ * 64 + local_v;
  }
  /// Read vertex u's frontier bit from a replica's words.
  static bool test(std::span<const std::uint64_t> f, std::uint64_t pos) {
    return (f[pos >> 6] >> (pos & 63)) & 1;
  }

  // Replicated read side (indexed by rank; node-shared replicas alias).
  std::span<std::uint64_t> frontier(int rank);
  graph::SummaryView frontier_summary(int rank);
  std::span<Value> values(int rank);

  // Partition-owned write side.
  std::span<std::uint64_t> out_bits(int part);
  graph::SummaryView out_summary(int part);
  std::span<Value> val_out(int part);

 private:
  bfs::Config cfg_;
  int np_ = 1;
  int ppn_ = 1;
  bool shared_ = false;
  bool with_values_ = true;
  std::uint64_t block_ = 0;
  std::uint64_t wpb_ = 0;  // frontier words per partition slab

  std::vector<std::vector<std::uint64_t>> frontier_;  // per replica
  std::vector<graph::Summary> fsummary_;              // per replica
  std::vector<std::vector<Value>> values_;            // per replica
  std::vector<std::vector<std::uint64_t>> out_bits_;  // per partition
  std::vector<graph::Summary> out_summary_;           // per partition
  std::vector<std::vector<Value>> val_out_;           // per partition
};

/// The query a program instance answers. Global workloads (PageRank as a
/// whole-graph computation, components, triangles) read `source` only to
/// pick which vertex's final value to report.
struct ProgramQuery {
  graph::Vertex source = 0;
  graph::Vertex target = 0;  ///< SSSP reports dist(source -> target)
};

/// Knobs of the built-in programs (engine::make_program).
struct ProgramParams {
  std::uint64_t sssp_delta = 8;       ///< delta-stepping bucket width
  std::uint32_t sssp_max_weight = 15; ///< hashed weights in [1, max]
  std::uint64_t weight_seed = 0x57455447u;
  double pr_damping = 0.85;
  double pr_eps = 1e-6;  ///< residual threshold gating the PR frontier
  int max_levels = 1 << 20;  ///< divergence backstop, not a tuning knob
};

/// Everything a program kernel sees of one partition: the calling rank's
/// replicated read side plus the partition's write side. `lg` is the
/// partition's (possibly epoch-merged) graph slice.
struct PartCtx {
  const graph::LocalGraph& lg;
  int part;
  std::uint64_t vbegin;
  std::uint64_t block;
  std::span<const std::uint64_t> frontier;  ///< replica bit words (read)
  graph::SummaryView fsummary;              ///< replica frontier summary (read)
  std::span<const Value> values;            ///< replica values (read)
  std::span<std::uint64_t> out_bits;        ///< partition out bits (write)
  graph::SummaryView out_summary;           ///< partition out summary (write)
  std::span<Value> val_out;                 ///< partition values (read/write)
  const ProgramState* ps;                   ///< bit_pos / test helpers
};

class FrontierProgram {
 public:
  virtual ~FrontierProgram() = default;

  virtual const char* name() const = 0;
  /// Whether the workload carries a per-vertex value array (triangle
  /// counting does not; its exchange ships presence bits only).
  virtual bool with_values() const { return true; }
  /// Whether the engine's cost model may pick pull kernels per level. When
  /// false the program always advances by push (dir 0).
  virtual bool direction_optimizing() const { return false; }

  virtual int scalar_count() const { return 0; }
  virtual void init_scalars(std::span<std::uint64_t> s) const {
    for (auto& x : s) x = 0;
  }

  /// Initialize partition `part`: fill val_out with the initial values and
  /// set the out bits of the level-0 frontier. Called once per partition by
  /// its owner; the seeding exchange then lands every replica.
  virtual ProgStats seed(const ProgramQuery& q, PartCtx& ctx) const = 0;

  /// Advance one level over partition `part` in direction `dir` (0 = push
  /// over td groups, 1 = pull over owned adjacency; `use_summary` is the
  /// cost model's frontier-summary hint for pulls). Reads the replicated
  /// inputs, writes the partition's out side, returns the work counts.
  /// Must be a pure function of (replica state, val_out, scalars, level):
  /// the engine re-runs it verbatim after a crash rollback.
  virtual ProgStats advance(const ProgramQuery& q, PartCtx& ctx,
                            std::span<const std::uint64_t> scalars, int level,
                            int dir, bool use_summary) const = 0;

  /// Evolve the control scalars from the level's reduced statistics and
  /// report convergence. Runs on every rank with identical inputs.
  virtual bool post_level(std::span<std::uint64_t> scalars,
                          const ProgStats& reduced, int level) const = 0;

  /// Host-side: the query's scalar answer, read from the converged state.
  virtual double final_value(const ProgramQuery& q, const graph::DistGraph& dg,
                             ProgramState& ps,
                             const ProgStats& last) const = 0;
};

/// Cross-replica program checkpoint for failover resume, the analog of
/// WaveCheckpoint: partition owners persist val_out, the recorder persists
/// one frontier replica (bits + values) and the control position.
struct ProgramCheckpoint {
  bool valid = false;
  std::vector<std::vector<Value>> val_out;     ///< per partition
  std::vector<std::uint64_t> frontier;         ///< one replica, padded words
  std::vector<Value> values;                   ///< one replica, padded values
  std::vector<std::uint64_t> scalars;
  int level = 1;
  int dir = 0;
  bool use_summary = false;
  std::uint64_t epoch = 0;
};

struct ProgramOptions {
  std::uint64_t epoch = 0;
  double abort_at_ns = std::numeric_limits<double>::infinity();
  int export_every = 1;
  ProgramCheckpoint* export_to = nullptr;
  const ProgramCheckpoint* resume_from = nullptr;
  /// Divergence backstop: a program still unconverged after this many
  /// levels stops with converged = false (it does not throw — the serving
  /// tier reports the query as failed).
  int max_levels = 1 << 20;
};

struct ProgramResult {
  double total_ns = 0;
  sim::PhaseProfile profile_avg;
  int levels = 0;     ///< advance levels executed
  int td_levels = 0;  ///< push levels
  int bu_levels = 0;  ///< pull levels
  bool converged = false;
  double value = 0;   ///< the program's scalar answer for the query
  ProgStats last;     ///< reduced stats of the converging level
  int recoveries = 0;
  int ranks_lost = 0;
  bool aborted = false;
  double abort_ns = 0;
  std::uint64_t epoch = 0;
};

/// Run `prog` to convergence (or abort) on the cluster. Deterministic for a
/// fixed (graph, config, query, fault plan); crash plans require the
/// injector's checkpointing, as run_wave does.
ProgramResult run_program(rt::Cluster& c, const graph::DistGraph& dg,
                          ProgramState& ps, const FrontierProgram& prog,
                          const ProgramQuery& query,
                          const ProgramOptions& opts = {});

/// Gather one full value array host-side (validation / reporting).
std::vector<Value> gather_values(const graph::DistGraph& dg, ProgramState& ps);

}  // namespace numabfs::engine
