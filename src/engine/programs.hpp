#pragma once
/// \file programs.hpp
/// The four built-in frontier programs (DESIGN.md §16), each a
/// FrontierProgram the engine runs through run_program():
///  - SSSP: delta-stepping over the hashed edge weights (graph/weights.hpp).
///    Scalars carry (bucket, mode); relax levels push tentative distances
///    out of the current bucket's frontier until the bucket reaches its
///    intra-bucket fixpoint, a reseed level then re-ships the next bucket's
///    members from the owned distance arrays. Integer distances make the
///    result bit-identical to the Dijkstra reference.
///  - PageRank: residual push/pull with per-level direction choice. The
///    value word packs (rank, residual) as two float32; the frontier is the
///    set of vertices whose residual exceeds pr_eps, so push work tracks
///    the frontier's edges while pull streams the owned adjacency — a
///    genuine measured direction tradeoff per level.
///  - Connected components: min-label propagation (direction-optimizing).
///    Converges to each component's minimum vertex id, the same labels the
///    BFS-sweep reference produces.
///  - Triangle counting: one-shot merge-intersection over a host-built
///    forward adjacency (sorted, deduplicated, greater-id neighbors); the
///    count rides the sum-reduced accumulator.

#include <bit>
#include <cstdint>
#include <memory>

#include "engine/fprog.hpp"
#include "graph/weights.hpp"

namespace numabfs::engine {

enum class ProgramWorkload { sssp, pagerank, components, triangles };

const char* to_string(ProgramWorkload w);

/// Build one of the built-in programs for `dg`. The program holds read-only
/// host-built auxiliaries (global degrees, forward adjacency) derived from
/// the slices, so a new instance is needed per graph epoch.
std::unique_ptr<FrontierProgram> make_program(ProgramWorkload w,
                                              const graph::DistGraph& dg,
                                              const ProgramParams& pp);

/// PageRank value packing: (rank, residual) as two float32 in one Value.
inline Value pack_pr(float rank, float residual) {
  return static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(rank)) << 32 |
         std::bit_cast<std::uint32_t>(residual);
}
inline float pr_rank(Value v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v >> 32));
}
inline float pr_residual(Value v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v));
}

}  // namespace numabfs::engine
