#include "engine/msbfs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "engine/exchange_core.hpp"
#include "faults/errors.hpp"
#include "graph/codec.hpp"
#include "runtime/allgather.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::engine {

namespace cm = rt::coll_model;

const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::full_distances: return "full";
    case QueryKind::st_reachability: return "st";
    case QueryKind::k_hop: return "khop";
    case QueryKind::sssp: return "sssp";
    case QueryKind::pagerank: return "pagerank";
    case QueryKind::components: return "components";
    case QueryKind::triangles: return "triangles";
  }
  return "?";
}

WaveState::WaveState(const graph::DistGraph& dg, const bfs::Config& cfg,
                     int nodes, int ppn, bool track_parents)
    : cfg_(cfg),
      nodes_(nodes),
      ppn_(ppn),
      shared_(cfg.sharing != bfs::Sharing::none && ppn > 1),
      track_parents_(track_parents),
      padded_vertices_(static_cast<std::uint64_t>(dg.part.np()) *
                       dg.part.block()) {
  const int np = dg.part.np();
  if (np != nodes * ppn)
    throw std::invalid_argument("WaveState: partition/shape mismatch");
  const std::uint64_t g = cfg_.summary_granularity;
  if (shared_) {
    node_frontier_.assign(static_cast<std::size_t>(nodes),
                          std::vector<std::uint64_t>(padded_vertices_, 0));
    node_fsummary_.assign(static_cast<std::size_t>(nodes),
                          graph::Summary(padded_vertices_, g));
  } else {
    rank_frontier_.assign(static_cast<std::size_t>(np),
                          std::vector<std::uint64_t>(padded_vertices_, 0));
    rank_fsummary_.assign(static_cast<std::size_t>(np),
                          graph::Summary(padded_vertices_, g));
  }
  out_summary_.assign(static_cast<std::size_t>(np),
                      graph::Summary(dg.part.block(), g));
  seen_.resize(static_cast<std::size_t>(np));
  out_.resize(static_cast<std::size_t>(np));
  dist_.resize(static_cast<std::size_t>(np));
  parent_.resize(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    seen_[static_cast<std::size_t>(r)].assign(lg.owned(), 0);
    out_[static_cast<std::size_t>(r)].assign(dg.part.block(), 0);
    dist_[static_cast<std::size_t>(r)].assign(lg.owned() * kMaxLanes,
                                              kUnreached);
    if (track_parents_)
      parent_[static_cast<std::size_t>(r)].assign(lg.owned() * kMaxLanes,
                                                  graph::kNoVertex);
  }
}

namespace {

/// Per-partition result of one level kernel.
struct LevelStats {
  std::uint64_t discovered_bits = 0;      ///< (vertex, lane) pairs discovered
  std::uint64_t discovered_vertices = 0;  ///< vertices entering any frontier
  std::uint64_t frontier_edges = 0;  ///< degree sum of discovering vertices
  std::uint64_t or_mask = 0;         ///< union of discovered lane words
  std::uint64_t scanned = 0;         ///< edges the kernel actually scanned
  std::uint64_t zero_probes = 0;     ///< scans that found no needed lane
};

/// Words streamed by one wave reset of partition `part` (seen + dist +
/// parent + out), for the setup charge.
std::uint64_t reset_words(const graph::LocalGraph& lg, const WaveState& ws,
                          std::uint64_t block) {
  const std::uint64_t owned = lg.owned();
  std::uint64_t words = owned + block;                     // seen + out
  words += owned * kMaxLanes * sizeof(Dist) / 8;           // dist
  if (ws.track_parents())
    words += owned * kMaxLanes * sizeof(graph::Vertex) / 8;  // parent
  return words;
}

/// Dense lane kernel (the MS-BFS analogue of the bottom-up level): stream
/// the owned vertices; every vertex still missing an active lane scans its
/// neighbors' frontier words, claiming lanes until none are missing.
LevelStats dense_level(rt::Proc& p, const graph::LocalGraph& lg,
                       const bfs::UnitCosts& u, WaveState& ws, int part,
                       std::uint64_t active, Dist level, bool use_summary) {
  LevelStats res;
  auto frontier = ws.frontier(p.rank);
  auto in_s = ws.frontier_summary(p.rank);
  auto out_s = ws.out_summary(part);
  auto seen = ws.seen(part);
  auto out = ws.out(part);
  auto dist = ws.dist(part);
  auto parent = ws.parent(part);
  const bool parents = !parent.empty();

  std::uint64_t edges = 0;
  std::uint64_t in_probes = 0;
  std::uint64_t zero_skips = 0;
  std::uint64_t writes = 0;
  std::uint64_t discovering = 0;

  const std::uint64_t owned = lg.owned();
  for (std::uint64_t lv = 0; lv < owned; ++lv) {
    std::uint64_t need = active & ~seen[lv];
    if (need == 0) continue;
    std::uint64_t newbits = 0;
    for (graph::Vertex uu : lg.bu_neighbors(lv)) {
      ++edges;
      if (use_summary) {
        // Summary zero: every lane word of the covered group is provably
        // zero, so the (cache-hostile) lane-word probe is skipped — the
        // paper's Fig. 8 mechanism applied to the lane frontier. The
        // scheduler enables this only when the union frontier is sparse
        // enough for the expected skips to beat the summary probes.
        if (!in_s.covers(uu)) {
          ++zero_skips;
          continue;
        }
      }
      ++in_probes;
      const std::uint64_t fw = frontier[uu] & need;
      if (fw == 0) {
        ++res.zero_probes;
        continue;
      }
      newbits |= fw;
      need &= ~fw;
      if (parents) {
        std::uint64_t claim = fw;
        while (claim) {
          const int b = std::countr_zero(claim);
          claim &= claim - 1;
          parent[lv * kMaxLanes + static_cast<std::uint64_t>(b)] = uu;
        }
      }
      if (need == 0) break;  // every active lane accounted for
    }
    if (newbits == 0) continue;
    seen[lv] |= newbits;
    out[lv] |= newbits;
    out_s.mark(lv);
    res.or_mask |= newbits;
    ++discovering;
    ++res.discovered_vertices;
    writes += 2;
    std::uint64_t bits = newbits;
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      dist[lv * kMaxLanes + static_cast<std::uint64_t>(b)] = level;
      ++res.discovered_bits;
      ++writes;
    }
    if (parents) writes += std::popcount(newbits);
    res.frontier_edges += lg.degree(lv);
  }

  res.scanned = edges;
  const std::uint64_t dprobes = lg.take_patch_reads();
  auto& cnt = p.prof.counters();
  cnt.edges_scanned += edges;
  if (use_summary) {
    cnt.summary_probes += edges;
    cnt.summary_zero_skips += zero_skips;
  }
  cnt.inqueue_probes += in_probes;
  cnt.frontier_hits += discovering;
  cnt.queue_writes += writes;
  cnt.vertices_visited += res.discovered_bits;
  cnt.delta_probes += dprobes;

  const double summary_ns =
      use_summary ? static_cast<double>(edges) * u.summary_probe_ns : 0.0;
  const double ns =
      u.stream_pass_ns(owned) +
      (static_cast<double>(edges) * u.edge_scan_ns + summary_ns +
       static_cast<double>(in_probes) * u.inqueue_probe_ns +
       static_cast<double>(writes) * u.write_ns +
       static_cast<double>(dprobes) * u.delta_probe_ns) /
          u.omp_div;
  p.charge(sim::Phase::bu_comp, ns);
  return res;
}

/// Sparse lane kernel (top-down analogue): scan the replicated frontier
/// words; every frontier vertex looks up its owned children and hands its
/// lanes to the ones still missing them. Work is proportional to the
/// frontier's edges, which is why early and late levels run sparse.
LevelStats sparse_level(rt::Proc& p, const graph::LocalGraph& lg,
                        const bfs::UnitCosts& u, WaveState& ws, int part,
                        std::uint64_t active, Dist level, std::uint64_t n) {
  LevelStats res;
  auto frontier = ws.frontier(p.rank);
  auto out_s = ws.out_summary(part);
  auto seen = ws.seen(part);
  auto out = ws.out(part);
  auto dist = ws.dist(part);
  auto parent = ws.parent(part);
  const bool parents = !parent.empty();

  std::uint64_t edges = 0;
  std::uint64_t writes = 0;
  std::uint64_t nonzero = 0;

  // A child can gain lanes from several frontier parents within one level
  // (first parent in vertex order claims its lanes, later ones the rest),
  // so discovery is detected per child via out[lw], which is level-clean.
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t fw = frontier[v] & active;
    if (fw == 0) continue;
    ++nonzero;
    const auto key = static_cast<graph::Vertex>(v);
    const auto it = std::lower_bound(lg.td_keys.begin(), lg.td_keys.end(), key);
    if (it == lg.td_keys.end() || *it != key) continue;
    const auto k = static_cast<std::size_t>(it - lg.td_keys.begin());
    for (graph::Vertex w : lg.td_group(k)) {
      ++edges;
      const std::uint64_t lw = w - lg.vbegin;
      const std::uint64_t need = fw & ~seen[lw];
      if (need == 0) continue;
      if (out[lw] == 0) {
        ++writes;  // first discovery of w this level
        ++res.discovered_vertices;
        res.frontier_edges += lg.degree(lw);
        out_s.mark(lw);
      }
      seen[lw] |= need;
      out[lw] |= need;
      res.or_mask |= need;
      writes += 2;
      std::uint64_t bits = need;
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        dist[lw * kMaxLanes + static_cast<std::uint64_t>(b)] = level;
        if (parents)
          parent[lw * kMaxLanes + static_cast<std::uint64_t>(b)] = key;
        ++res.discovered_bits;
        ++writes;
      }
    }
  }

  res.scanned = edges;
  const std::uint64_t dprobes = lg.take_patch_reads();
  auto& cnt = p.prof.counters();
  cnt.edges_scanned += edges;
  cnt.frontier_hits += nonzero;
  cnt.queue_writes += writes;
  cnt.vertices_visited += res.discovered_bits;
  cnt.delta_probes += dprobes;

  const double ns =
      u.stream_pass_ns(n) +
      (static_cast<double>(nonzero) * u.group_search_ns +
       static_cast<double>(edges) * (u.edge_scan_ns + u.visited_probe_ns) +
       static_cast<double>(writes) * u.write_ns +
       static_cast<double>(dprobes) * u.delta_probe_ns) /
          u.omp_div;
  p.charge(sim::Phase::td_comp, ns);
  return res;
}

/// The per-level lane-word exchange: allgather every partition's block of
/// next-frontier words into the replicated (per-rank or node-shared)
/// frontier arrays, through the same collective plans as the bitmap
/// exchange. The modeled wire format is measured-sparsity: a presence
/// bitmap (1 bit per vertex of the block) plus the nonzero lane words, each
/// carrying only the bytes of the currently active lanes; ring time is
/// bound by the fullest chunk (allreduce_max of the measured counts).
void wave_exchange(rt::Proc& p, const graph::DistGraph& dg, WaveState& ws,
                   const bfs::UnitCosts& u, std::uint64_t active,
                   std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  rt::Comm& world = c.world();
  const bfs::Config& cfg = ws.config();
  const int np = c.nranks();
  const std::uint64_t block = dg.part.block();
  const sim::Phase phase = sim::Phase::bu_comm;

  // Measure the sparsity of the owned chunks (a real count on the real
  // words; one streaming pass each). With the exchange codec on, the same
  // pass really builds and dense-encodes the presence bitmap of the wire
  // format, so the presence component rides *measured* encoded bytes.
  const bool coded = cfg.codec != bfs::CodecMode::off && np > 1;
  std::uint64_t my_nnz = 0;
  std::uint64_t my_penc = 0;
  std::vector<std::uint64_t> presence;
  std::vector<std::uint8_t> pbuf;
  if (coded) presence.resize((block + 63) / 64);
  for (int q : parts) {
    auto out = ws.out(q);
    std::uint64_t nnz = 0;
    if (coded) {
      std::fill(presence.begin(), presence.end(), 0);
      for (std::uint64_t v = 0; v < block; ++v) {
        if ((out[v] & active) != 0) {
          ++nnz;
          presence[v >> 6] |= 1ull << (v & 63);
        }
      }
      pbuf.clear();
      const std::size_t nb =
          graph::codec::encode_dense({presence.data(), presence.size()}, pbuf);
      my_penc += static_cast<std::uint64_t>(nb);
      p.charge(phase,
               u.stream_pass_ns(block + presence.size() + (nb + 7) / 8));
    } else {
      for (std::uint64_t w : out) nnz += (w & active) != 0;
      p.charge(phase, u.stream_pass_ns(block));
    }
    my_nnz = std::max(my_nnz, nnz);
  }
  const std::uint64_t max_nnz =
      rt::allreduce_max(p, world, my_nnz, sim::Phase::stall);

  const std::uint64_t lane_bytes =
      (static_cast<std::uint64_t>(std::popcount(active)) + 7) / 8;
  const std::uint64_t g = cfg.summary_granularity;
  const std::uint64_t sum_bytes =
      (graph::SummaryView::summary_bits_for(block, g) + 7) / 8;
  const std::uint64_t presence_raw = block / 8;
  std::uint64_t presence_bytes = presence_raw;
  if (coded) {
    // Mean over the np partition encodings (each chunk transits once per
    // hop, so the honest charge is the summed volume divided out), same as
    // the bitmap exchange. Measured gate: the codec rides only when the
    // real encodings won on average.
    const std::uint64_t enc_mean =
        (rt::allreduce_sum(p, world, my_penc, sim::Phase::stall) +
         static_cast<std::uint64_t>(np) - 1) /
        static_cast<std::uint64_t>(np);
    if (enc_mean < presence_raw) presence_bytes = enc_mean;
  }
  const bool presence_coded = presence_bytes < presence_raw;
  const std::uint64_t chunk_bytes =
      presence_bytes + sum_bytes + max_nnz * lane_bytes;
  const std::uint64_t raw_chunk_bytes =
      presence_raw + sum_bytes + max_nnz * lane_bytes;

  auto frontier = ws.frontier(p.rank);
  auto in_s = ws.frontier_summary(p.rank);
  // Merge of partition `src_part`'s out summary into the replica's frontier
  // summary: a local group maps into at most two destination groups (when
  // the granularity does not divide the block); mark() is atomic, so the
  // parallel-subgroup path can merge disjoint blocks concurrently.
  ExchangeHooks hooks;
  hooks.copy_block = [&](int src_part) {
    auto src = ws.out(src_part);
    std::memcpy(frontier.data() + static_cast<std::uint64_t>(src_part) * block,
                src.data(), block * 8);
    if (src_part == p.rank) return;  // own chunk: no transmission
    if (c.node_of(src_part) == p.node)
      p.prof.counters().bytes_intra_node += chunk_bytes;
    else
      p.prof.counters().bytes_inter_node += chunk_bytes;
    p.prof.counters().bytes_raw_equiv += raw_chunk_bytes;
  };
  hooks.reset_summary = [&] { in_s.bits().reset(); };
  hooks.merge_summary = [&](int src_part) {
    auto src = ws.out_summary(src_part);
    const std::uint64_t base = static_cast<std::uint64_t>(src_part) * block;
    src.bits().for_each_set(0, src.size_bits(), [&](std::uint64_t b) {
      const std::uint64_t lo = base + b * g;
      in_s.mark(lo);
      in_s.mark(std::min(base + block, lo + g) - 1);
    });
  };

  ExchangeShape shape;
  shape.chunk_bytes = chunk_bytes;
  shape.sum_words = (ws.summary_bits() + 63) / 64;
  shape.shared = ws.shared_frontier();
  shape.presence_coded = presence_coded;
  shape.decode_words = (block + 63) / 64;
  run_exchange_plan(p, cfg, u, phase, shape, hooks);
  p.trace_instant(obs::kCatEngine, "wave.exchange",
                  obs::kv("chunk_bytes", chunk_bytes) + "," +
                      obs::kv("raw_bytes", raw_chunk_bytes) + "," +
                      obs::kv("coded", presence_coded ? "yes" : "no"));

  // Wipe the owned out blocks (and their summaries) for the next level.
  for (int q : parts) {
    auto out = ws.out(q);
    std::memset(out.data(), 0, out.size() * 8);
    ws.out_summary(q).bits().reset();
    p.charge(phase, u.stream_pass_ns(block));
  }
  p.barrier(world, sim::Phase::stall);  // wipes land before the next level
}

/// Wave reset: wipe all state, seed the sources, and return the summed
/// degree of the sources (the level-1 direction hint).
void reset_wave(rt::Proc& p, const graph::DistGraph& dg, WaveState& ws,
                std::span<const WaveQuery> queries, const bfs::UnitCosts& u) {
  rt::Cluster& c = *p.cluster;
  const auto& lg = dg.locals[static_cast<std::size_t>(p.rank)];
  const std::uint64_t block = dg.part.block();

  std::memset(ws.seen(p.rank).data(), 0, ws.seen(p.rank).size() * 8);
  std::memset(ws.out(p.rank).data(), 0, ws.out(p.rank).size() * 8);
  auto dist = ws.dist(p.rank);
  std::fill(dist.begin(), dist.end(), kUnreached);
  auto parent = ws.parent(p.rank);
  std::fill(parent.begin(), parent.end(), graph::kNoVertex);

  // One writer per frontier replica (and its summary).
  if (!ws.shared_frontier() || p.is_node_leader()) {
    auto frontier = ws.frontier(p.rank);
    std::memset(frontier.data(), 0, frontier.size() * 8);
    auto fs = ws.frontier_summary(p.rank);
    fs.bits().reset();
    for (std::size_t l = 0; l < queries.size(); ++l) {
      frontier[queries[l].source] |= 1ull << l;
      fs.mark(queries[l].source);
    }
  }
  ws.out_summary(p.rank).bits().reset();

  // Source bookkeeping at the owner.
  for (std::size_t l = 0; l < queries.size(); ++l) {
    const graph::Vertex s = queries[l].source;
    if (s < lg.vbegin || s >= lg.vend) continue;
    const std::uint64_t lv = s - lg.vbegin;
    ws.seen(p.rank)[lv] |= 1ull << l;
    ws.dist(p.rank)[lv * kMaxLanes + l] = 0;
    if (ws.track_parents())
      ws.parent(p.rank)[lv * kMaxLanes + l] = s;
  }

  p.charge(sim::Phase::other,
           u.stream_pass_ns(reset_words(lg, ws, block) +
                            ws.padded_vertices()));
  p.barrier(c.world(), sim::Phase::other);
}

/// Failover import: load a cross-replica checkpoint into this cluster's
/// WaveState instead of seeding the sources. Partition state lands at the
/// owner; each frontier replica gets the checkpointed copy plus a freshly
/// rebuilt summary (scanned against the resumed active mask, so retired
/// lanes' stale bits cannot resurrect summary groups).
void import_wave(rt::Proc& p, WaveState& ws, const WaveCheckpoint& ck,
                 const bfs::UnitCosts& u, std::uint64_t active) {
  rt::Cluster& c = *p.cluster;
  const auto r = static_cast<std::size_t>(p.rank);

  auto seen = ws.seen(p.rank);
  std::memcpy(seen.data(), ck.seen[r].data(), seen.size() * 8);
  auto dist = ws.dist(p.rank);
  std::memcpy(dist.data(), ck.dist[r].data(), dist.size() * sizeof(Dist));
  std::uint64_t words = seen.size() + dist.size() * sizeof(Dist) / 8;
  if (ws.track_parents()) {
    auto parent = ws.parent(p.rank);
    std::memcpy(parent.data(), ck.parent[r].data(),
                parent.size() * sizeof(graph::Vertex));
    words += parent.size() * sizeof(graph::Vertex) / 8;
  }
  std::memset(ws.out(p.rank).data(), 0, ws.out(p.rank).size() * 8);
  ws.out_summary(p.rank).bits().reset();
  words += ws.out(p.rank).size();

  if (!ws.shared_frontier() || p.is_node_leader()) {
    auto frontier = ws.frontier(p.rank);
    std::memcpy(frontier.data(), ck.frontier.data(), frontier.size() * 8);
    auto fs = ws.frontier_summary(p.rank);
    fs.bits().reset();
    for (std::uint64_t v = 0; v < frontier.size(); ++v)
      if ((frontier[v] & active) != 0) fs.mark(v);
    words += 2 * frontier.size();
  }
  p.charge(sim::Phase::other, u.stream_pass_ns(words));
  p.barrier(c.world(), sim::Phase::other);
}

}  // namespace

WaveResult run_wave(rt::Cluster& c, const graph::DistGraph& dg, WaveState& ws,
                    std::span<const WaveQuery> queries) {
  return run_wave(c, dg, ws, queries, WaveOptions{});
}

WaveResult run_wave(rt::Cluster& c, const graph::DistGraph& dg, WaveState& ws,
                    std::span<const WaveQuery> queries,
                    const WaveOptions& opts) {
  const bfs::Config& cfg = ws.config();
  const int nq = static_cast<int>(queries.size());
  if (nq < 1 || nq > kMaxLanes)
    throw std::invalid_argument("run_wave: batch must have 1..64 queries");
  for (const WaveQuery& q : queries) {
    if (is_program_kind(q.kind))
      throw std::invalid_argument(
          "run_wave: program workloads go through run_program, not a wave");
    if (q.source >= dg.n ||
        (q.kind == QueryKind::st_reachability && q.target >= dg.n))
      throw std::invalid_argument("run_wave: query vertex out of range");
    if (q.kind == QueryKind::k_hop && q.k < 0)
      throw std::invalid_argument("run_wave: negative k_hop radius");
  }

  const WaveCheckpoint* rck = opts.resume_from;
  if (rck != nullptr) {
    const auto np = static_cast<std::size_t>(c.nranks());
    if (!rck->valid || rck->seen.size() != np ||
        rck->frontier.size() != ws.padded_vertices() ||
        (ws.track_parents() &&
         (rck->parent.size() != np || rck->parent[0].empty())))
      throw std::invalid_argument(
          "run_wave: resume checkpoint missing or built for another shape");
    if ((opts.resume_active & ~rck->active) != 0)
      throw std::invalid_argument(
          "run_wave: resume_active must be a subset of the checkpoint's "
          "active lanes");
  }
  WaveCheckpoint* xp = opts.export_to;
  const int export_every = std::max(1, opts.export_every);
  if (xp != nullptr) {
    xp->valid = false;
    xp->seen.assign(static_cast<std::size_t>(c.nranks()), {});
    xp->dist.assign(static_cast<std::size_t>(c.nranks()), {});
    xp->parent.assign(static_cast<std::size_t>(c.nranks()), {});
  }

  // Per-partition unit costs (owned sizes differ on the tail rank).
  std::vector<bfs::UnitCosts> costs(static_cast<std::size_t>(c.nranks()));
  for (int r = 0; r < c.nranks(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    bfs::StructSizes sz;
    sz.in_queue_bytes = ws.padded_vertices() * 8;  // lane words, not bits
    sz.in_summary_bytes = (ws.summary_bits() + 7) / 8;
    sz.owned_bytes =
        lg.owned() * (8 + kMaxLanes * sizeof(Dist) +
                      (ws.track_parents() ? kMaxLanes * sizeof(graph::Vertex)
                                          : 0));
    sz.td_group_count = std::max<std::uint64_t>(1, lg.td_keys.size());
    costs[static_cast<std::size_t>(r)] = bfs::unit_costs(c, cfg, sz);
  }

  faults::FaultInjector* inj = c.injector();
  if (inj != nullptr && inj->has_crashes() && !inj->checkpointing())
    throw faults::FaultError(
        "run_wave: the fault plan schedules rank crashes but checkpointing "
        "is disabled (checkpoint:off); the wave could not be recovered");
  const bool ckpt_on = inj != nullptr && inj->checkpointing();
  // seen-only checkpoints: distances/parents/out are rewritten with
  // identical values by a level re-run (the kernels are deterministic and
  // idempotent given the restored seen words), so only the discovery gate
  // needs saving. Indexed by partition; written by its current owner only.
  std::vector<std::vector<std::uint64_t>> ckpt(
      ckpt_on ? static_cast<std::size_t>(c.nranks()) : 0);
  std::atomic<int> recoveries{0};

  struct Shared {
    std::vector<int> directions;  // 0 = sparse, 1 = dense, per level
    std::vector<LaneResult> lanes;
    bool aborted = false;  // written by the recorder, read host-side
    double abort_ns = 0;
    std::uint64_t unfinished = 0;
  } shared;
  shared.lanes.assign(static_cast<std::size_t>(nq), LaneResult{});

  c.run([&](rt::Proc& p) {
    const bfs::UnitCosts& u = costs[static_cast<std::size_t>(p.rank)];
    rt::Comm& world = c.world();
    std::vector<int> parts{p.rank};

    // Cost-model-driven kernel choice (replacing the scalar Beamer
    // hysteresis, which the lane union breaks: 16 sources push the
    // frontier's edge count over E/alpha one level early, when the union
    // frontier is still far too sparse for the dense kernel). Each level
    // the scheduler estimates both kernels' modeled cost from measured
    // state and the simulator's own unit costs:
    //   sparse ~ a frontier-word stream + the frontier's real edges;
    //   dense  ~ the needy vertices' adjacency, discounted by the early
    //            break — a needy vertex stops scanning once its lanes are
    //            collected, after about kDenseEarlyBreak / density probes
    //            at union-frontier density `density`.
    // The same estimate decides whether the dense kernel consults the
    // frontier summary: probing it on every edge only pays when the
    // expected skips ((1-density)^granularity of the probes) outweigh the
    // summary reads themselves. All ranks evaluate the formula on the same
    // allreduced inputs with rank 0's unit costs, so the choice is
    // identical everywhere.
    constexpr double kDenseEarlyBreak = 2.0;
    const double n_d = static_cast<double>(dg.n);
    const double np_d = static_cast<double>(c.nranks());
    const double g_d = static_cast<double>(cfg.summary_granularity);
    const bfs::UnitCosts& u0 = costs[0];
    struct Choice {
      int dir;
      bool use_summary;
    };
    const auto choose = [&](double mf_d, double nf_d, double needy_d,
                            double mu_d) {
      const double density = std::max(nf_d / n_d, 1e-12);
      const double p_empty =
          std::pow(1.0 - std::min(density, 1.0), g_d);
      const bool use_sum =
          u0.summary_probe_ns < p_empty * u0.inqueue_probe_ns;
      const double per_edge =
          u0.edge_scan_ns +
          (use_sum ? u0.summary_probe_ns +
                         (1.0 - p_empty) * u0.inqueue_probe_ns
                   : u0.inqueue_probe_ns);
      const double est_scan =
          std::min(mu_d, needy_d * kDenseEarlyBreak / density);
      const double dense_est =
          (n_d / np_d) * u0.word_stream_ns + est_scan / np_d * per_edge;
      const double sparse_est = n_d * u0.word_stream_ns +
                                nf_d * u0.group_search_ns +
                                mf_d / np_d *
                                    (u0.edge_scan_ns + u0.visited_probe_ns);
      return Choice{dense_est < sparse_est ? 1 : 0, use_sum};
    };

    std::uint64_t active = nq == kMaxLanes ? ~0ull : (1ull << nq) - 1;
    int recorder = inj != nullptr ? inj->lowest_live() : 0;
    Choice ch{0, false};
    int level = 1;  // kernel at level L discovers distance-L vertices

    if (rck == nullptr) {
      reset_wave(p, dg, ws, queries, u);

      // Trivial lanes retire before the first kernel: an s-t query whose
      // target is its source, and a 0-hop neighborhood.
      for (int l = 0; l < nq; ++l) {
        const WaveQuery& q = queries[static_cast<std::size_t>(l)];
        const bool trivial =
            (q.kind == QueryKind::st_reachability && q.target == q.source) ||
            (q.kind == QueryKind::k_hop && q.k == 0);
        if (!trivial) continue;
        active &= ~(1ull << l);
        if (p.rank == recorder) {
          auto& lr = shared.lanes[static_cast<std::size_t>(l)];
          lr.finished = true;
          lr.complete_level = 0;
          lr.complete_ns = p.clock.now_ns();
          lr.reached = q.kind == QueryKind::st_reachability;
        }
      }

      // Level-1 direction from the sources' degree sum.
      std::uint64_t my_src_edges = 0;
      {
        const auto& lg = dg.locals[static_cast<std::size_t>(p.rank)];
        for (int l = 0; l < nq; ++l) {
          const graph::Vertex s = queries[static_cast<std::size_t>(l)].source;
          if ((active >> l & 1) && s >= lg.vbegin && s < lg.vend)
            my_src_edges += lg.degree(s - lg.vbegin);
        }
      }
      const std::uint64_t src_edges =
          rt::allreduce_sum(p, world, my_src_edges, sim::Phase::stall);
      ch = choose(static_cast<double>(src_edges),
                  static_cast<double>(std::popcount(active)), n_d,
                  static_cast<double>(dg.directed_edges));
    } else {
      // Failover resume: take over the checkpointed epoch — the surviving
      // lanes, wave position and kernel choice all come from the exporter.
      active = opts.resume_active != 0 ? opts.resume_active : rck->active;
      level = rck->level;
      ch = Choice{rck->dir, rck->use_summary};
      import_wave(p, ws, *rck, u, active);
    }
    int dir = ch.dir;
    int handled_dead = 0;
    while (active != 0) {
      const double level_t0 = p.clock.now_ns();

      // Replica-outage horizon: past `abort_at_ns` this replica makes no
      // progress. Checked only at clock-aligned points (level entry, and
      // the retirement boundary below) so every rank observes the abort at
      // the same level and the wave stays bit-deterministic.
      if (p.clock.now_ns() >= opts.abort_at_ns) {
        if (p.rank == recorder) {
          shared.aborted = true;
          shared.abort_ns = p.clock.now_ns();
          shared.unfinished = active;
        }
        break;
      }

      // Cross-replica epoch export: partition owners persist their
      // seen/dist/parent, the recorder persists one replicated-frontier
      // copy and the wave position. The closing barrier runs before the
      // crash point below, so an exported epoch always describes a fully
      // pre-death state, even when the exporting rank is the one dying.
      if (xp != nullptr && (level - 1) % export_every == 0) {
        for (int q : parts) {
          const auto qi = static_cast<std::size_t>(q);
          auto seen = ws.seen(q);
          auto dist = ws.dist(q);
          xp->seen[qi].assign(seen.begin(), seen.end());
          xp->dist[qi].assign(dist.begin(), dist.end());
          std::uint64_t words =
              seen.size() + dist.size() * sizeof(Dist) / 8;
          if (ws.track_parents()) {
            auto parent = ws.parent(q);
            xp->parent[qi].assign(parent.begin(), parent.end());
            words += parent.size() * sizeof(graph::Vertex) / 8;
          }
          p.charge(sim::Phase::other, costs[qi].stream_pass_ns(words));
        }
        if (p.rank == recorder) {
          auto frontier = ws.frontier(p.rank);
          xp->frontier.assign(frontier.begin(), frontier.end());
          xp->level = level;
          xp->dir = dir;
          xp->use_summary = ch.use_summary;
          xp->active = active;
          xp->epoch = opts.epoch;
          xp->valid = true;
          p.charge(sim::Phase::other, u.stream_pass_ns(frontier.size()));
        }
        p.barrier(world, sim::Phase::stall);  // epoch complete pre-death
        if (p.rank == recorder)
          p.trace_instant(obs::kCatEngine, "wave.ckpt",
                          obs::kv("level", level) + "," +
                              obs::kv("active", std::popcount(active)));
      }

      // Level boundary: checkpoint, then die if scheduled (the fail-stop
      // model of bfs::run_bfs — the checkpoint completed, the crash hit
      // afterwards). The injector's crash levels are 0-based from the
      // first kernel, matching hybrid's level counter.
      if (ckpt_on)
        for (int q : parts) {
          auto seen = ws.seen(q);
          ckpt[static_cast<std::size_t>(q)].assign(seen.begin(), seen.end());
          p.charge(sim::Phase::other,
                   costs[static_cast<std::size_t>(q)].stream_pass_ns(
                       seen.size()));
        }
      if (inj != nullptr && inj->crash_level(p.rank) == level - 1) {
        inj->mark_dead(p.rank);
        c.retire_rank(p);
        return;
      }

      LevelStats ls;
      for (int q : parts) {
        const auto& qlg = dg.locals[static_cast<std::size_t>(q)];
        const bfs::UnitCosts& qu = costs[static_cast<std::size_t>(q)];
        const LevelStats qs =
            dir == 1 ? dense_level(p, qlg, qu, ws, q, active,
                                   static_cast<Dist>(level), ch.use_summary)
                     : sparse_level(p, qlg, qu, ws, q, active,
                                    static_cast<Dist>(level), dg.n);
        ls.discovered_bits += qs.discovered_bits;
        ls.discovered_vertices += qs.discovered_vertices;
        ls.frontier_edges += qs.frontier_edges;
        ls.or_mask |= qs.or_mask;
        ls.scanned += qs.scanned;
        ls.zero_probes += qs.zero_probes;
      }

      // Direction inputs for the next level, measured from the real seen
      // words: how many owned vertices still miss an active lane, and how
      // many adjacency entries they would put in play. One streaming pass
      // over seen + degrees per partition, charged as switch overhead.
      std::uint64_t my_needy = 0;
      std::uint64_t my_mu = 0;
      for (int q : parts) {
        const auto& qlg = dg.locals[static_cast<std::size_t>(q)];
        auto seen = ws.seen(q);
        for (std::uint64_t lv = 0; lv < qlg.owned(); ++lv) {
          if ((active & ~seen[lv]) != 0) {
            ++my_needy;
            my_mu += qlg.degree(lv);
          }
        }
        p.charge(sim::Phase::switch_conv,
                 costs[static_cast<std::size_t>(q)].stream_pass_ns(
                     2 * qlg.owned()));
      }

      // s-t hits are detected at the target's owner.
      std::uint64_t my_hits = 0;
      for (int q : parts) {
        const auto& qlg = dg.locals[static_cast<std::size_t>(q)];
        auto seen = ws.seen(q);
        for (int l = 0; l < nq; ++l) {
          const WaveQuery& wq = queries[static_cast<std::size_t>(l)];
          if (wq.kind != QueryKind::st_reachability || !(active >> l & 1))
            continue;
          if (wq.target >= qlg.vbegin && wq.target < qlg.vend &&
              (seen[wq.target - qlg.vbegin] >> l & 1))
            my_hits |= 1ull << l;
        }
      }

      const std::uint64_t mf =
          rt::allreduce_sum(p, world, ls.frontier_edges, sim::Phase::stall);
      const std::uint64_t nf = rt::allreduce_sum(
          p, world, ls.discovered_vertices, sim::Phase::stall);
      const std::uint64_t needy =
          rt::allreduce_sum(p, world, my_needy, sim::Phase::stall);
      const std::uint64_t mu =
          rt::allreduce_sum(p, world, my_mu, sim::Phase::stall);
      const std::uint64_t nonempty =
          rt::allreduce_or(p, world, ls.or_mask, sim::Phase::stall);
      const std::uint64_t hits =
          rt::allreduce_or(p, world, my_hits, sim::Phase::stall);

      // Per-level traversal trace (stderr). The extra allreduces perturb
      // the virtual clock, so this is for kernel diagnosis, not timing.
      if (std::getenv("MSBFS_DEBUG") != nullptr) {
        const std::uint64_t sc =
            rt::allreduce_sum(p, world, ls.scanned, sim::Phase::stall);
        const std::uint64_t zp =
            rt::allreduce_sum(p, world, ls.zero_probes, sim::Phase::stall);
        if (p.rank == 0)
          std::fprintf(stderr,
                       "level %d dir=%d scanned=%llu zero=%llu mf=%llu "
                       "nf=%llu active=%d\n",
                       level, dir, (unsigned long long)sc,
                       (unsigned long long)zp, (unsigned long long)mf,
                       (unsigned long long)nf, std::popcount(active));
      }

      // Crash detection point (see bfs::run_bfs): survivors adopt the dead
      // partitions, roll seen back to the boundary checkpoint, and re-run
      // the level; everything else this iteration computed is discarded.
      if (inj != nullptr && inj->dead_count() > handled_dead) {
        handled_dead = inj->dead_count();
        const std::size_t owned_before = parts.size();
        parts = inj->parts_of(p.rank);
        if (parts.size() > owned_before)
          p.prof.counters().adoptions += parts.size() - owned_before;
        for (int q : parts) {
          auto seen = ws.seen(q);
          const auto& saved = ckpt[static_cast<std::size_t>(q)];
          std::memcpy(seen.data(), saved.data(), saved.size() * 8);
          std::memset(ws.out(q).data(), 0, ws.out(q).size() * 8);
          ws.out_summary(q).bits().reset();
          p.charge(sim::Phase::other,
                   costs[static_cast<std::size_t>(q)].stream_pass_ns(
                       seen.size() + ws.out(q).size()));
        }
        if (p.rank == inj->lowest_live())
          recoveries.fetch_add(1, std::memory_order_relaxed);
        p.barrier(world, sim::Phase::stall);  // rollback complete everywhere
        p.trace_span(obs::kCatEngine, "recovery.rollback", level_t0,
                     p.clock.now_ns(),
                     obs::kv("level", level) + "," +
                         obs::kv("parts", static_cast<int>(parts.size())));
        continue;  // re-run the level (level/dir/prev_nf unchanged; the
                   // frontier inputs were never touched)
      }
      recorder = inj != nullptr ? inj->lowest_live() : 0;

      // Retirement-boundary abort check: a death mid-level voids this
      // level's retirements — they would have completed after the replica
      // stopped answering, so the front door must re-run those lanes.
      if (p.clock.now_ns() >= opts.abort_at_ns) {
        if (p.rank == recorder) {
          shared.aborted = true;
          shared.abort_ns = p.clock.now_ns();
          shared.unfinished = active;
        }
        break;
      }

      // Retirement: s-t lanes on a hit, k-hop lanes at radius, any lane
      // whose frontier drained. Clocks are aligned here (the allreduces end
      // with a barrier), so the recorder's now is everyone's now.
      std::uint64_t retired = 0;
      for (int l = 0; l < nq; ++l) {
        if (!(active >> l & 1)) continue;
        const WaveQuery& q = queries[static_cast<std::size_t>(l)];
        const bool hit =
            q.kind == QueryKind::st_reachability && (hits >> l & 1);
        const bool drained = !(nonempty >> l & 1);
        const bool radius = q.kind == QueryKind::k_hop && level >= q.k;
        if (!hit && !drained && !radius) continue;
        retired |= 1ull << l;
        if (p.rank == recorder) {
          auto& lr = shared.lanes[static_cast<std::size_t>(l)];
          lr.finished = true;
          lr.complete_level = level;
          lr.complete_ns = p.clock.now_ns();
          lr.reached = hit;
          p.trace_instant(
              obs::kCatEngine, "lane.retire",
              obs::kv("lane", l) + "," + obs::kv("level", level) + "," +
                  obs::kv("reason",
                          hit ? "hit" : (drained ? "drained" : "radius")));
        }
      }
      active &= ~retired;
      if (p.rank == recorder) shared.directions.push_back(dir);

      const auto trace_level = [&] {
        p.trace_span(obs::kCatEngine, "mslevel " + std::to_string(level),
                     level_t0, p.clock.now_ns(),
                     obs::kv("dir", dir == 1 ? "dense" : "sparse") + "," +
                         obs::kv("active", std::popcount(active)));
      };
      if (active == 0) {  // retired lanes' stale bits never propagate:
        trace_level();    // every kernel masks frontier reads with the
        break;            // (new) active mask
      }

      wave_exchange(p, dg, ws, u, active, parts);
      trace_level();

      // Next level's kernel, from the measured state (see `choose` above).
      ch = choose(static_cast<double>(mf), static_cast<double>(nf),
                  static_cast<double>(needy), static_cast<double>(mu));
      dir = ch.dir;
      ++level;
    }

    p.barrier(world, sim::Phase::stall);
  });

  WaveResult out;
  out.epoch = opts.epoch;
  const auto& profiles = c.profiles();
  double max_total = 0;
  sim::PhaseProfile sum;
  for (const auto& pr : profiles) {
    max_total = std::max(max_total, pr.total_ns());
    sum += pr;
  }
  out.wave_ns = max_total;
  out.profile_avg = sum.scaled(1.0 / static_cast<double>(profiles.size()));
  // scaled() multiplies times only; counters in profile_avg stay summed.
  out.profile_avg.counters() = sum.counters();
  out.levels = static_cast<int>(shared.directions.size());
  for (int d : shared.directions) (d == 0 ? out.td_levels : out.bu_levels)++;
  out.recoveries = recoveries.load(std::memory_order_relaxed);
  out.ranks_lost = inj != nullptr ? inj->dead_count() : 0;
  out.aborted = shared.aborted;
  out.abort_ns = shared.abort_ns;
  out.unfinished = shared.unfinished;
  out.lanes = std::move(shared.lanes);

  // Per-lane visited counts (host-side reporting; no virtual-time impact).
  for (int r = 0; r < c.nranks(); ++r) {
    auto seen = ws.seen(r);
    for (std::uint64_t w : seen) {
      std::uint64_t bits = w;
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        if (b < nq) ++out.lanes[static_cast<std::size_t>(b)].visited;
      }
    }
  }
  return out;
}

std::vector<Dist> gather_lane_distances(const graph::DistGraph& dg,
                                        WaveState& ws, int lane) {
  std::vector<Dist> d(dg.n, kUnreached);
  for (int r = 0; r < dg.part.np(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    auto dist = ws.dist(r);
    for (std::uint64_t lv = 0; lv < lg.owned(); ++lv)
      d[lg.vbegin + lv] =
          dist[lv * kMaxLanes + static_cast<std::uint64_t>(lane)];
  }
  return d;
}

std::vector<graph::Vertex> gather_lane_parents(const graph::DistGraph& dg,
                                               WaveState& ws, int lane) {
  if (!ws.track_parents())
    throw std::logic_error("gather_lane_parents: parents not tracked");
  std::vector<graph::Vertex> parent(dg.n, graph::kNoVertex);
  for (int r = 0; r < dg.part.np(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    auto pr = ws.parent(r);
    for (std::uint64_t lv = 0; lv < lg.owned(); ++lv)
      parent[lg.vbegin + lv] =
          pr[lv * kMaxLanes + static_cast<std::uint64_t>(lane)];
  }
  return parent;
}

}  // namespace numabfs::engine
