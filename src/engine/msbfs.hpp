#pragma once
/// \file msbfs.hpp
/// Bit-parallel multi-source BFS: one 64-bit *lane word* per vertex carries
/// up to 64 concurrent traversals (MS-BFS, Then et al., VLDB 2014), so a
/// whole batch of queries advances through ONE sequence of level kernels
/// and ONE allgather per level — amortizing exactly the frontier-exchange
/// costs the paper's NUMA optimizations attack.
///
/// Layout. For vertex v, bit b of `frontier[v]` says "v is in lane b's
/// current frontier"; `seen[v]` accumulates the lanes that have discovered
/// v. The frontier array is replicated per rank (or per node, under the
/// paper's sharing levels) like the hybrid BFS `in_queue`; each rank owns
/// the lane words, per-lane distances and per-lane parents of its 1-D
/// partition block. The per-level exchange allgathers the owned blocks of
/// next-frontier words through the same collective plans as the bitmap
/// exchange (flat ring / leader / parallel subgroups, rt::coll_model), with
/// a measured-sparsity wire format: a presence bitmap plus the nonzero lane
/// words, each carrying only ceil(active_lanes/8) bytes.
///
/// Per-lane retirement: a *full-distances* lane runs until its frontier
/// drains; an *s–t reachability* lane retires the level its target is
/// discovered (early exit); a *k-hop* lane retires after k levels. Retired
/// lanes leave `active_mask`, shrinking both kernel and wire work, and
/// record their completion level and virtual completion time.
///
/// Frontier summary (the paper's Fig. 8 mechanism, applied to lane words):
/// each replica carries a summary bitmap with one bit per
/// `summary_granularity` vertices, set iff some vertex of the group has a
/// nonzero frontier lane word. The dense kernel probes the (LLC-resident)
/// summary first and skips the expensive lane-word probe for provably
/// empty groups — which is most of them right after the direction switch,
/// when the union frontier is still sparse. The summary rides the same
/// exchange as the lane words: kernels mark per-partition out summaries,
/// the exchange merges them into the replicated frontier summaries.
///
/// Fault tolerance mirrors bfs::run_bfs: with a fault injector attached,
/// `seen` words are checkpointed at level boundaries (distances/parents
/// need no checkpoint — a level re-run rewrites them with identical
/// values), a crash is survived by partition adoption + level re-run, and
/// degraded links stretch the modeled exchange time.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/costs.hpp"
#include "numasim/phase_profile.hpp"
#include "graph/dist_graph.hpp"
#include "graph/summary.hpp"
#include "graph/types.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::engine {

/// Lane-local distance type; kUnreached marks "not discovered by this lane".
using Dist = std::uint16_t;
inline constexpr Dist kUnreached = 0xFFFF;
inline constexpr int kMaxLanes = 64;

enum class QueryKind {
  full_distances,   ///< distances (+ parents) to the whole component
  st_reachability,  ///< is `target` reachable from `source`? (early exit)
  k_hop,            ///< the vertices within k hops of `source`
  // Frontier-program workloads (fprog.hpp). These never ride a BFS wave:
  // the serving tier dispatches each through run_program() as a singleton.
  sssp,             ///< delta-stepping shortest path, dist(source -> target)
  pagerank,         ///< residual push/pull PageRank, rank(source)
  components,       ///< min-label connected components, component count
  triangles,        ///< exact triangle count
};

const char* to_string(QueryKind k);

/// Whether `k` is a frontier-program workload (run_program) rather than a
/// wave lane kind (run_wave). run_wave rejects program kinds.
inline bool is_program_kind(QueryKind k) { return k >= QueryKind::sssp; }

/// One lane of a wave.
struct WaveQuery {
  QueryKind kind = QueryKind::full_distances;
  graph::Vertex source = 0;
  graph::Vertex target = 0;  ///< st_reachability only
  int k = 0;                 ///< k_hop only
};

/// Per-lane outcome of a wave.
struct LaneResult {
  bool finished = false;    ///< the lane retired (false: the wave aborted
                            ///< before this lane completed)
  int complete_level = 0;   ///< BFS level at which the lane retired
  double complete_ns = 0;   ///< virtual time of retirement (wave-relative)
  bool reached = false;     ///< st_reachability: target found
  std::uint64_t visited = 0;  ///< vertices the lane discovered (incl. source)
};

/// Result of one batched wave.
struct WaveResult {
  /// Graph epoch the wave served (WaveOptions::epoch; 0 for static graphs).
  std::uint64_t epoch = 0;
  double wave_ns = 0;  ///< virtual wall time of the wave (max over ranks)
  sim::PhaseProfile profile_avg;  ///< mean over ranks (counters summed)
  int levels = 0;
  int td_levels = 0;     ///< levels run with the sparse (top-down) kernel
  int bu_levels = 0;     ///< levels run with the dense (bottom-up) kernel
  int recoveries = 0;    ///< level re-runs after rank crashes
  int ranks_lost = 0;
  bool aborted = false;  ///< hit WaveOptions::abort_at_ns before draining
  double abort_ns = 0;   ///< virtual time the abort was observed
  std::uint64_t unfinished = 0;  ///< lanes still active at the abort
  std::vector<LaneResult> lanes;  ///< one per submitted query
};

/// Cross-replica wave checkpoint: everything another cluster serving the
/// same DistGraph needs to resume the surviving lanes — the failover unit
/// of the replicated serving tier. Exported at level boundaries (an "epoch")
/// strictly before any scheduled death of that level, so a valid checkpoint
/// always describes a consistent pre-crash state.
struct WaveCheckpoint {
  bool valid = false;
  /// Graph epoch the exporting wave was pinned to. A failover resume must
  /// run against the same pinned snapshot — lane state (seen words,
  /// distances) is only meaningful relative to that adjacency.
  std::uint64_t epoch = 0;
  int level = 0;             ///< level the next kernel would run
  int dir = 0;               ///< kernel chosen for that level (0 sparse)
  bool use_summary = false;  ///< dense kernel's summary decision
  std::uint64_t active = 0;  ///< lanes alive at the epoch
  std::vector<std::vector<std::uint64_t>> seen;     ///< per partition
  std::vector<std::vector<Dist>> dist;              ///< per partition
  std::vector<std::vector<graph::Vertex>> parent;   ///< per partition (may
                                                    ///< be empty vectors)
  std::vector<std::uint64_t> frontier;  ///< one replicated-frontier copy
};

/// Knobs of the fault-tolerant wave entry point. Defaults reproduce the
/// plain run_wave bit-for-bit (no horizon, no export, fresh start).
struct WaveOptions {
  /// Graph epoch the wave serves (dynamic graph layer): stamped into the
  /// WaveResult and every exported checkpoint. Purely a label at this
  /// layer — the caller passes the matching pinned DistGraph view.
  std::uint64_t epoch = 0;
  /// Virtual time at which this replica stops making progress (its outage
  /// instant). The wave aborts at the first clock-aligned point at or past
  /// it: lanes retired strictly before keep their results, the rest are
  /// reported in WaveResult::unfinished for failover.
  double abort_at_ns = std::numeric_limits<double>::infinity();
  /// Epoch stride of cross-replica checkpoint export (levels); only used
  /// when `export_to` is set.
  int export_every = 1;
  /// Destination of the epoch exports (nullptr: no export).
  WaveCheckpoint* export_to = nullptr;
  /// Resume from this checkpoint instead of seeding the sources (nullptr:
  /// fresh wave). The checkpoint must come from a wave over the same
  /// DistGraph, batch and sharing shape.
  const WaveCheckpoint* resume_from = nullptr;
  /// Lanes to resume (subset of the checkpoint's `active`); 0 means all of
  /// them. Lanes the original wave retired after the exported epoch are
  /// masked out here so the resumed wave does not redo them.
  std::uint64_t resume_active = 0;
};

/// Reusable state of the wave kernel for one (graph, config, shape). Owns
/// the per-partition lane words/distances/parents and the replicated
/// frontier copies; allocate once, run many waves.
class WaveState {
 public:
  /// `track_parents` = false skips the per-lane parent array (the largest
  /// structure: 64 lanes x 4 bytes per owned vertex) when only distances
  /// are needed.
  WaveState(const graph::DistGraph& dg, const bfs::Config& cfg, int nodes,
            int ppn, bool track_parents = true);

  const bfs::Config& config() const { return cfg_; }
  bool shared_frontier() const { return shared_; }
  bool track_parents() const { return track_parents_; }
  std::uint64_t padded_vertices() const { return padded_vertices_; }
  int nodes() const { return nodes_; }
  int ppn() const { return ppn_; }
  int node_of(int rank) const { return rank / ppn_; }

  /// Replicated frontier lane words (padded vertex space) seen by `rank`.
  std::span<std::uint64_t> frontier(int rank) {
    auto& v = shared_ ? node_frontier_[static_cast<std::size_t>(node_of(rank))]
                      : rank_frontier_[static_cast<std::size_t>(rank)];
    return {v.data(), v.size()};
  }
  /// Summary over `frontier(rank)`: bit g covers `summary_granularity`
  /// vertices; zero proves every covered lane word is zero.
  graph::SummaryView frontier_summary(int rank) {
    auto& s = shared_
                  ? node_fsummary_[static_cast<std::size_t>(node_of(rank))]
                  : rank_fsummary_[static_cast<std::size_t>(rank)];
    return s.view();
  }
  /// Summary over partition `part`'s out block (local positions).
  graph::SummaryView out_summary(int part) {
    return out_summary_[static_cast<std::size_t>(part)].view();
  }
  std::uint64_t summary_bits() const {
    return graph::SummaryView::summary_bits_for(padded_vertices_,
                                                cfg_.summary_granularity);
  }

  // --- owned-partition structures (local index space) -------------------
  std::span<std::uint64_t> seen(int part) {
    auto& v = seen_[static_cast<std::size_t>(part)];
    return {v.data(), v.size()};
  }
  /// Next-frontier lane words of partition `part`'s block (block-sized).
  std::span<std::uint64_t> out(int part) {
    auto& v = out_[static_cast<std::size_t>(part)];
    return {v.data(), v.size()};
  }
  /// dist[local_v * 64 + lane].
  std::span<Dist> dist(int part) {
    auto& v = dist_[static_cast<std::size_t>(part)];
    return {v.data(), v.size()};
  }
  /// parent[local_v * 64 + lane]; empty when !track_parents().
  std::span<graph::Vertex> parent(int part) {
    auto& v = parent_[static_cast<std::size_t>(part)];
    return {v.data(), v.size()};
  }

 private:
  bfs::Config cfg_;
  int nodes_;
  int ppn_;
  bool shared_;
  bool track_parents_;
  std::uint64_t padded_vertices_;

  std::vector<std::vector<std::uint64_t>> rank_frontier_;
  std::vector<std::vector<std::uint64_t>> node_frontier_;
  std::vector<graph::Summary> rank_fsummary_;
  std::vector<graph::Summary> node_fsummary_;
  std::vector<graph::Summary> out_summary_;
  std::vector<std::vector<std::uint64_t>> seen_;
  std::vector<std::vector<std::uint64_t>> out_;
  std::vector<std::vector<Dist>> dist_;
  std::vector<std::vector<graph::Vertex>> parent_;
};

/// Run one batched wave of up to 64 queries. `ws` must have been built for
/// (dg, cfg) and the cluster's shape; it is reset internally, so it can be
/// reused across waves. Throws std::invalid_argument on an oversized or
/// empty batch, and faults::FaultError if the attached fault plan schedules
/// crashes with checkpointing disabled.
WaveResult run_wave(rt::Cluster& c, const graph::DistGraph& dg, WaveState& ws,
                    std::span<const WaveQuery> queries);

/// Fault-tolerant entry point: same as above plus an abort horizon, epoch
/// checkpoint export and checkpoint resume (see WaveOptions). `queries`
/// must be the *original* batch even when resuming — lane indices key the
/// checkpoint and the per-lane results.
WaveResult run_wave(rt::Cluster& c, const graph::DistGraph& dg, WaveState& ws,
                    std::span<const WaveQuery> queries,
                    const WaveOptions& opts);

/// Assemble lane `lane`'s global distance array (kUnreached where the lane
/// never discovered the vertex).
std::vector<Dist> gather_lane_distances(const graph::DistGraph& dg,
                                        WaveState& ws, int lane);

/// Assemble lane `lane`'s global parent array (graph::kNoVertex where
/// unreached) for graph::validate_bfs_tree. Requires ws.track_parents().
std::vector<graph::Vertex> gather_lane_parents(const graph::DistGraph& dg,
                                               WaveState& ws, int lane);

}  // namespace numabfs::engine
