#include "engine/frontdoor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#include "harness/graph500.hpp"
#include "obs/trace.hpp"

namespace numabfs::engine {

const char* to_string(SloClass c) {
  switch (c) {
    case SloClass::full_distance: return "full";
    case SloClass::k_hop: return "khop";
    case SloClass::reachability: return "reach";
    case SloClass::analytics: return "analytics";
    case SloClass::kCount: break;
  }
  return "?";
}

SloClass slo_class_of(QueryKind k) {
  switch (k) {
    case QueryKind::full_distances: return SloClass::full_distance;
    case QueryKind::k_hop: return SloClass::k_hop;
    case QueryKind::st_reachability: return SloClass::reachability;
    case QueryKind::sssp:
    case QueryKind::pagerank:
    case QueryKind::components:
    case QueryKind::triangles:
      return SloClass::analytics;
  }
  return SloClass::full_distance;
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::pending: return "pending";
    case Outcome::served: return "served";
    case Outcome::failed_over: return "failed_over";
    case Outcome::degraded: return "degraded";
    case Outcome::shed: return "shed";
    case Outcome::lost: return "lost";
  }
  return "?";
}

double heartbeat_detect_ns(double outage_ns, double period_ns,
                           double backoff_ns, int threshold) {
  const double inf = std::numeric_limits<double>::infinity();
  if (!(outage_ns < inf)) return inf;
  // First unanswered probe: the earliest multiple of the period at or
  // after the outage (a probe sent exactly at the outage instant is lost —
  // heartbeat_ok is `now < outage`).
  const double t0 = std::ceil(std::max(0.0, outage_ns) / period_ns) *
                    period_ns;
  // threshold-1 backoff re-probes at b, 2b, 4b, ... after the first loss.
  const double extra =
      backoff_ns *
      static_cast<double>((1ull << static_cast<unsigned>(threshold - 1)) - 1);
  return t0 + extra;
}

namespace {

constexpr std::size_t kNoQuery = static_cast<std::size_t>(-1);

/// The exact-answer degradation cache fed by completed full-distance
/// lanes. The graph is undirected, so a drained full-distance BFS visits
/// its source's entire connected component — which makes both lookups
/// exact, not approximate. Entries carry the virtual instant they became
/// available; lookups at time T ignore anything newer (replica waves
/// overlap in virtual time, so "already computed" is a T-relative fact).
///
/// Entries are additionally keyed by the dynamic-graph epoch they were
/// harvested from: a distance array (or component labeling) computed
/// against an older snapshot is stale the moment the serving epoch moves —
/// an edge added since can merge components or shorten k-hop balls, so a
/// stale "exact" answer would silently be wrong. The cache keeps one
/// epoch's worth of answers and resets wholesale when a harvest or lookup
/// arrives from a newer epoch (epochs only move forward).
class DegradeCache {
 public:
  explicit DegradeCache(const graph::DistGraph& dg)
      : n_(dg.n),
        comp_(dg.n, -1),
        comp_avail_(dg.n, 0.0) {}

  void harvest(const graph::DistGraph& dg, WaveState& ws, int lane,
               graph::Vertex source, double avail_ns, std::uint64_t epoch) {
    roll_to(epoch);
    auto d = gather_lane_distances(dg, ws, lane);
    int c = comp_[source];
    if (c < 0) c = next_comp_++;
    for (graph::Vertex v = 0; v < n_; ++v) {
      if (d[v] == kUnreached || comp_[v] >= 0) continue;
      comp_[v] = c;
      comp_avail_[v] = avail_ns;
    }
    dists_.try_emplace(source, avail_ns, std::move(d));
  }

  /// Exact s-t reachability at time T against snapshot `epoch`, when some
  /// completed full-distance BFS of that same epoch has labeled either
  /// endpoint's component by then.
  bool try_reach(graph::Vertex s, graph::Vertex t, double T,
                 std::uint64_t epoch, bool& reached) const {
    if (epoch != epoch_) return false;  // cached answers predate the snapshot
    if (comp_[s] >= 0 && comp_avail_[s] <= T) {
      reached = comp_[t] == comp_[s];
      return true;
    }
    if (comp_[t] >= 0 && comp_avail_[t] <= T) {
      reached = comp_[s] == comp_[t];
      return true;
    }
    return false;
  }

  /// Exact k-hop neighborhood size at time T against snapshot `epoch`,
  /// when this exact source has a same-epoch cached distance array by then.
  bool try_khop(graph::Vertex s, int k, double T, std::uint64_t epoch,
                std::uint64_t& visited) const {
    if (epoch != epoch_) return false;
    const auto it = dists_.find(s);
    if (it == dists_.end() || it->second.first > T) return false;
    std::uint64_t n = 0;
    for (const Dist d : it->second.second)
      n += d != kUnreached && d <= static_cast<Dist>(k);
    visited = n;
    return true;
  }

 private:
  void roll_to(std::uint64_t epoch) {
    if (epoch == epoch_) return;
    epoch_ = epoch;
    std::fill(comp_.begin(), comp_.end(), -1);
    std::fill(comp_avail_.begin(), comp_avail_.end(), 0.0);
    next_comp_ = 0;
    dists_.clear();
  }

  graph::Vertex n_;
  std::uint64_t epoch_ = 0;  ///< snapshot the cached answers were computed on
  std::vector<int> comp_;
  std::vector<double> comp_avail_;
  int next_comp_ = 0;
  std::map<graph::Vertex, std::pair<double, std::vector<Dist>>> dists_;
};

}  // namespace

std::string FrontDoorConfig::validate() const {
  if (max_batch < 1 || max_batch > kMaxLanes)
    return "max_batch must be in [1, " + std::to_string(kMaxLanes) +
           "] (one lane word per wave)";
  if (queue_depth < 1) return "queue_depth must be >= 1";
  if (hb_period_ns <= 0)
    return "hb_period_ns must be positive (heartbeat probes need a period)";
  if (hb_backoff_ns <= 0)
    return "hb_backoff_ns must be positive (re-probe backoff doubles from it)";
  if (hb_threshold < 1)
    return "hb_threshold must be >= 1 consecutive losses";
  if (export_every < 1)
    return "export_every must be >= 1 (checkpoint epoch stride in levels)";
  if (est_window < 1)
    return "est_window must be >= 1 trailing waves";
  return {};
}

FrontDoor::FrontDoor(const bfs::Config& cfg, FrontDoorConfig fdc,
                     std::vector<ReplicaHandle> replicas)
    : cfg_(cfg), fdc_(std::move(fdc)), replicas_(std::move(replicas)) {
  if (replicas_.empty())
    throw std::invalid_argument("FrontDoor: need at least one replica");
  if (const std::string err = fdc_.validate(); !err.empty())
    throw std::invalid_argument("FrontDoor: " + err);
  if (const std::string err = cfg_.validate(); !err.empty())
    throw std::invalid_argument("FrontDoor: " + err);
  const ReplicaHandle& r0 = replicas_.front();
  for (const ReplicaHandle& r : replicas_) {
    if (r.cluster == nullptr || r.dg == nullptr)
      throw std::invalid_argument("FrontDoor: null replica handle");
    if (r.cluster->nranks() != r0.cluster->nranks() ||
        r.cluster->ppn() != r0.cluster->ppn() || r.dg->n != r0.dg->n)
      throw std::invalid_argument(
          "FrontDoor: replicas must share cluster shape and graph");
  }
  states_.reserve(replicas_.size());
  for (const ReplicaHandle& r : replicas_)
    states_.emplace_back(*r.dg, cfg_, r.cluster->topo().nodes(),
                         r.cluster->ppn(), fdc_.track_parents);
}

FrontDoorReport FrontDoor::serve(std::span<const Query> queries) {
  const auto nq = queries.size();
  for (std::size_t i = 1; i < nq; ++i)
    if (queries[i].arrival_ns < queries[i - 1].arrival_ns)
      throw std::invalid_argument("serve: queries not sorted by arrival");

  FrontDoorReport rep;
  rep.results.assign(nq, ServedQuery{});
  for (std::size_t i = 0; i < nq; ++i) {
    auto& r = rep.results[i];
    r.id = queries[i].id;
    r.kind = queries[i].kind;
    r.cls = slo_class_of(queries[i].kind);
    r.arrival_ns = queries[i].arrival_ns;
  }
  if (nq == 0) return rep;

  const int R = static_cast<int>(replicas_.size());
  const double inf = std::numeric_limits<double>::infinity();

  // Per-replica health + checkpoint slot. `outage_ns` is tier-absolute
  // virtual time (unlike the plan's windowed events, which restart with
  // each wave); `detect_ns` is when the door confirms the death — the
  // heartbeat closed form, possibly advanced by a data-path timeout.
  struct RepState {
    double free_ns = 0;
    double outage_ns = std::numeric_limits<double>::infinity();
    double detect_ns = std::numeric_limits<double>::infinity();
    WaveCheckpoint ckpt;
    ProgramCheckpoint pckpt;  ///< analytics dispatches export here
  };
  std::vector<RepState> reps(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    const faults::FaultInjector* inj = replicas_[r].cluster->injector();
    auto& rs = reps[static_cast<std::size_t>(r)];
    rs.outage_ns = inj != nullptr ? inj->outage_at_ns() : inf;
    rs.detect_ns = heartbeat_detect_ns(rs.outage_ns, fdc_.hb_period_ns,
                                       fdc_.hb_backoff_ns, fdc_.hb_threshold);
  }

  // A failover unit: the surviving work of an aborted wave, ready for
  // re-dispatch once the death is detected. When the dead replica exported
  // a valid epoch the unit resumes from it; otherwise the unfinished
  // lanes re-run from scratch on the healthy replica.
  struct Failover {
    std::vector<WaveQuery> batch;   // the original wave's lanes
    std::vector<std::size_t> idx;   // lane -> query index
    WaveCheckpoint ckpt;
    std::uint64_t resume_mask = 0;
    // Analytics units: one program query, resumed from its own checkpoint
    // kind (batch/ckpt/resume_mask stay empty).
    bool is_program = false;
    ProgramCheckpoint pckpt;
    double ready_ns = 0;   // detection instant
    double abort_abs = 0;  // tier-absolute abort time
    // The aborted wave's pinned snapshot (dynamic graphs): the resume runs
    // against the SAME epoch on the healthy replica — the checkpointed lane
    // state is only meaningful relative to that adjacency. Holding the
    // shared_ptr keeps the snapshot alive across background compactions.
    PinnedGraph pg;
  };
  std::vector<Failover> pending;

  DegradeCache cache(*replicas_.front().dg);
  const int ncls = static_cast<int>(SloClass::kCount);
  std::vector<std::deque<std::size_t>> queues(static_cast<std::size_t>(ncls));
  std::size_t next = 0;
  std::size_t queued = 0;
  std::size_t unresolved = nq;
  double last_dequeue = 0;
  double now = 0;
  double end_ns = 0;

  // Trailing wave-time history for the admission estimate: only waves
  // whose completion the door has *observed* by time t count.
  struct WaveDone {
    double complete_ns;
    double dur_ns;
  };
  std::vector<WaveDone> history;
  const auto est_wave_ns = [&](double t) {
    double sum = 0;
    int cnt = 0;
    for (auto it = history.rbegin();
         it != history.rend() && cnt < fdc_.est_window; ++it) {
      if (it->complete_ns > t) continue;
      sum += it->dur_ns;
      ++cnt;
    }
    return cnt > 0 ? sum / cnt : 0.0;
  };

  const auto admit = [&](double t) {
    while (next < nq && queries[next].arrival_ns <= t &&
           queued < static_cast<std::size_t>(fdc_.queue_depth)) {
      const double adm = std::max(queries[next].arrival_ns, last_dequeue);
      if (adm > queries[next].arrival_ns) ++rep.backpressured;
      rep.results[next].admit_ns = adm;
      queues[static_cast<std::size_t>(
                 static_cast<int>(slo_class_of(queries[next].kind)))]
          .push_back(next);
      ++queued;
      ++next;
    }
  };

  const auto resolve_degraded = [&](std::size_t qi, double t, bool reached,
                                    std::uint64_t visited) {
    auto& res = rep.results[qi];
    res.outcome = Outcome::degraded;
    res.start_ns = t;
    res.complete_ns = t;
    res.reached = reached;
    res.visited = visited;
    ++rep.degraded;
    --unresolved;
    end_ns = std::max(end_ns, t);
  };
  const auto resolve_dropped = [&](std::size_t qi, Outcome o) {
    rep.results[qi].outcome = o;
    rep.results[qi].complete_ns =
        std::numeric_limits<double>::quiet_NaN();
    ++rep.shed;
    --unresolved;
  };

  // Deadline-aware batch formation, most-critical class first. A k-hop or
  // reachability query that cannot meet its deadline (by the trailing
  // estimate) is degraded to an exact cached answer when possible, shed
  // otherwise; full-distance queries always ride a wave. Cache lookups are
  // made against `epoch` — the snapshot pinned for this dispatch — so a
  // degraded answer is always consistent with the graph the query would
  // have been served on. Analytics queries are background work: when no
  // wave query is dispatchable, exactly one is popped and returned (it owns
  // the whole dispatch); they are never shed or degraded.
  const auto form_batch = [&](double t, std::uint64_t epoch,
                              std::vector<WaveQuery>& batch,
                              std::vector<std::size_t>& idx) -> std::size_t {
    const double est = est_wave_ns(t);
    for (int c = 0; c < ncls; ++c) {
      if (static_cast<SloClass>(c) == SloClass::analytics) continue;
      auto& q = queues[static_cast<std::size_t>(c)];
      while (!q.empty() &&
             batch.size() < static_cast<std::size_t>(fdc_.max_batch)) {
        const std::size_t qi = q.front();
        const Query& query = queries[qi];
        const auto cls = static_cast<SloClass>(c);
        if (cls != SloClass::full_distance && est > 0 &&
            t + est > query.arrival_ns + fdc_.slo.deadline_ns(cls)) {
          q.pop_front();
          --queued;
          bool reached = false;
          std::uint64_t visited = 0;
          if (fdc_.degrade && cls == SloClass::reachability &&
              cache.try_reach(query.source, query.target, t, epoch,
                              reached)) {
            resolve_degraded(qi, t, reached, 0);
          } else if (fdc_.degrade && cls == SloClass::k_hop &&
                     cache.try_khop(query.source, query.k, t, epoch,
                                    visited)) {
            resolve_degraded(qi, t, false, visited);
          } else {
            resolve_dropped(qi, Outcome::shed);
          }
          continue;
        }
        q.pop_front();
        --queued;
        rep.results[qi].start_ns = t;
        batch.push_back({query.kind, query.source, query.target, query.k});
        idx.push_back(qi);
      }
    }
    auto& aq = queues[static_cast<std::size_t>(
        static_cast<int>(SloClass::analytics))];
    if (batch.empty() && !aq.empty()) {
      const std::size_t qi = aq.front();
      aq.pop_front();
      --queued;
      rep.results[qi].start_ns = t;
      return qi;
    }
    return kNoQuery;
  };

  // Run one wave on replica `r` at tier time `start` and account for it:
  // settle finished lanes (feeding the degradation cache), and turn an
  // abort into a pending failover unit. Shared by fresh, resumed and
  // re-run dispatches.
  const auto launch = [&](int r, double start, std::vector<WaveQuery> batch,
                          std::vector<std::size_t> idx,
                          const WaveCheckpoint* resume,
                          std::uint64_t resume_mask, bool after_failover,
                          PinnedGraph pg) {
    auto& rs = reps[static_cast<std::size_t>(r)];
    rt::Cluster& c = *replicas_[static_cast<std::size_t>(r)].cluster;
    // Snapshot acquisition is on the serving path: the pin delays the wave
    // (a failover re-dispatch carries pin_ns = 0 — it already holds the
    // snapshot). Replicas are content-identical, so one pinned view stands
    // in for each replica's local copy of the same epoch.
    start += pg.pin_ns;
    const graph::DistGraph& dg =
        pg.graph != nullptr ? *pg.graph
                            : *replicas_[static_cast<std::size_t>(r)].dg;
    WaveState& ws = states_[static_cast<std::size_t>(r)];

    WaveOptions o;
    o.epoch = pg.epoch;
    if (rs.outage_ns < inf) o.abort_at_ns = rs.outage_ns - start;
    o.export_every = fdc_.export_every;
    if (fdc_.checkpoint_waves) o.export_to = &rs.ckpt;
    o.resume_from = resume;
    o.resume_active = resume_mask;

    obs::Tracer* tr = c.tracer();
    if (tr != nullptr) tr->set_base_ns(start);
    const WaveResult wr = run_wave(c, dg, ws, batch, o);
    if (tr != nullptr) {
      tr->set_base_ns(0);
      tr->instant(tr->host_track(), obs::kCatEngine,
                  after_failover ? "wave.failover" : "wave.dispatch", start,
                  obs::kv("replica", r) + "," +
                      obs::kv("batch", static_cast<int>(batch.size())));
    }

    ++rep.waves;
    rep.levels += wr.levels;
    rep.recoveries += wr.recoveries;
    rep.ranks_lost = std::max(rep.ranks_lost, wr.ranks_lost);
    rep.busy_ns += wr.wave_ns;
    rep.counters += wr.profile_avg.counters();
    rs.free_ns = start + wr.wave_ns;
    end_ns = std::max(end_ns, rs.free_ns);
    history.push_back({rs.free_ns, wr.wave_ns});

    for (std::size_t l = 0; l < idx.size(); ++l) {
      const std::size_t qi = idx[l];
      if (qi == kNoQuery) continue;
      auto& res = rep.results[qi];
      if (res.outcome != Outcome::pending) continue;
      const LaneResult& lr = wr.lanes[l];
      if (!lr.finished) continue;  // aborted first; the failover unit below
      res.outcome = after_failover ? Outcome::failed_over : Outcome::served;
      res.replica = r;
      res.epoch = wr.epoch;
      res.complete_ns = start + lr.complete_ns;
      res.complete_level = lr.complete_level;
      res.reached = lr.reached;
      res.visited = lr.visited;
      --unresolved;
      end_ns = std::max(end_ns, res.complete_ns);
      if (fdc_.degrade && batch[l].kind == QueryKind::full_distances)
        cache.harvest(dg, ws, static_cast<int>(l), batch[l].source,
                      res.complete_ns, wr.epoch);
    }
    if (fdc_.sink) fdc_.sink(r, batch, wr, ws);

    if (wr.aborted) {
      // The batch timed out at the door: a data-path detection signal,
      // often well ahead of the heartbeat prober. Either way, the replica
      // is out and the surviving lanes become a failover unit.
      const double abort_abs = start + wr.abort_ns;
      rs.detect_ns =
          std::min(rs.detect_ns, abort_abs + fdc_.hb_backoff_ns);
      Failover fo;
      fo.batch = std::move(batch);
      fo.idx = std::move(idx);
      fo.ckpt = std::move(rs.ckpt);
      rs.ckpt = WaveCheckpoint{};
      fo.resume_mask = fo.ckpt.valid ? (wr.unfinished & fo.ckpt.active)
                                     : wr.unfinished;
      fo.ready_ns = rs.detect_ns;
      fo.abort_abs = abort_abs;
      fo.pg = std::move(pg);
      fo.pg.pin_ns = 0;  // the snapshot is already held; no re-pin charge
      pending.push_back(std::move(fo));
    }
  };

  // Analytics program instances are graph-derived (degree arrays, forward
  // adjacency); cache one per workload, rebuilt when the epoch moves.
  struct CachedProg {
    std::unique_ptr<FrontierProgram> prog;
    const graph::DistGraph* dg = nullptr;
    std::uint64_t epoch = 0;
  };
  std::array<CachedProg, 4> prog_cache;
  const auto program_for = [&](ProgramWorkload w, const graph::DistGraph& dg,
                               std::uint64_t epoch) -> const FrontierProgram& {
    CachedProg& s = prog_cache[static_cast<std::size_t>(w)];
    if (s.prog == nullptr || s.dg != &dg || s.epoch != epoch) {
      s.prog = make_program(w, dg, fdc_.programs);
      s.dg = &dg;
      s.epoch = epoch;
    }
    return *s.prog;
  };

  // Dispatch one analytics query through run_program on replica `r`: the
  // program owns the whole cluster for its duration, exports failover
  // checkpoints like a wave, and an outage-aborted run becomes a program
  // failover unit that resumes (or re-runs) on a healthy replica.
  const auto launch_program = [&](int r, double start, std::size_t qi,
                                  const ProgramCheckpoint* resume,
                                  bool after_failover, PinnedGraph pg) {
    auto& rs = reps[static_cast<std::size_t>(r)];
    rt::Cluster& c = *replicas_[static_cast<std::size_t>(r)].cluster;
    start += pg.pin_ns;
    const graph::DistGraph& dg =
        pg.graph != nullptr ? *pg.graph
                            : *replicas_[static_cast<std::size_t>(r)].dg;
    const Query& query = queries[qi];
    const FrontierProgram& prog =
        program_for(workload_of(query.kind), dg, pg.epoch);
    ProgramState pstate(dg, cfg_, c.topo().nodes(), c.ppn(),
                        prog.with_values());

    ProgramOptions o;
    o.epoch = pg.epoch;
    o.max_levels = fdc_.programs.max_levels;
    if (rs.outage_ns < inf) o.abort_at_ns = rs.outage_ns - start;
    o.export_every = fdc_.export_every;
    if (fdc_.checkpoint_waves) o.export_to = &rs.pckpt;
    o.resume_from = resume;

    obs::Tracer* tr = c.tracer();
    if (tr != nullptr) tr->set_base_ns(start);
    const ProgramResult res =
        run_program(c, dg, pstate, prog,
                    ProgramQuery{query.source, query.target}, o);
    if (tr != nullptr) {
      tr->set_base_ns(0);
      tr->instant(tr->host_track(), obs::kCatEngine,
                  after_failover ? "program.failover" : "program.dispatch",
                  start,
                  obs::kv("replica", r) + "," + obs::kv("query", query.id) +
                      "," + obs::kv("workload", prog.name()));
    }

    ++rep.program_runs;
    rep.levels += res.levels;
    rep.recoveries += res.recoveries;
    rep.ranks_lost = std::max(rep.ranks_lost, res.ranks_lost);
    rep.busy_ns += res.total_ns;
    rep.counters += res.profile_avg.counters();
    rs.free_ns = start + res.total_ns;
    end_ns = std::max(end_ns, rs.free_ns);
    // Program runs deliberately do NOT feed the wave-time estimate: they
    // run far longer than a wave, and counting them would make the
    // admission policy shed interactive queries after every analytics job.

    if (res.aborted) {
      const double abort_abs = start + res.abort_ns;
      rs.detect_ns = std::min(rs.detect_ns, abort_abs + fdc_.hb_backoff_ns);
      Failover fo;
      fo.is_program = true;
      fo.idx.assign(1, qi);
      fo.pckpt = std::move(rs.pckpt);
      rs.pckpt = ProgramCheckpoint{};
      fo.ready_ns = rs.detect_ns;
      fo.abort_abs = abort_abs;
      fo.pg = std::move(pg);
      fo.pg.pin_ns = 0;  // the snapshot is already held; no re-pin charge
      pending.push_back(std::move(fo));
      return;
    }

    auto& sq = rep.results[qi];
    sq.outcome = after_failover ? Outcome::failed_over : Outcome::served;
    sq.replica = r;
    sq.epoch = res.epoch;
    sq.complete_ns = start + res.total_ns;
    sq.complete_level = res.levels;
    sq.value = res.value;
    --unresolved;
    end_ns = std::max(end_ns, sq.complete_ns);
  };

  while (unresolved > 0) {
    admit(now);

    bool launched = false;
    for (int r = 0; r < R; ++r) {
      auto& rs = reps[static_cast<std::size_t>(r)];
      if (now >= rs.detect_ns) continue;  // confirmed down
      if (rs.free_ns > now) continue;     // mid-wave

      // Failover units outrank fresh batches: their queries are the
      // oldest in the system and already paid the detection blip.
      int fi = -1;
      for (std::size_t i = 0; i < pending.size(); ++i)
        if (pending[i].ready_ns <= now) {
          fi = static_cast<int>(i);
          break;
        }
      if (fi >= 0) {
        Failover fo = std::move(pending[static_cast<std::size_t>(fi)]);
        pending.erase(pending.begin() + fi);
        ++rep.failovers;
        rep.failover_blip_ns =
            std::max(rep.failover_blip_ns, now - fo.abort_abs);
        if (fo.is_program) {
          // One analytics query: resume from the exported program epoch
          // when the dead replica managed to ship one, re-run otherwise.
          const std::size_t qi = fo.idx.front();
          if (rep.results[qi].outcome == Outcome::pending)
            launch_program(r, now, qi, fo.pckpt.valid ? &fo.pckpt : nullptr,
                           true, std::move(fo.pg));
        } else if (fo.ckpt.valid && fo.resume_mask != 0) {
          launch(r, now, std::move(fo.batch), std::move(fo.idx), &fo.ckpt,
                 fo.resume_mask, true, std::move(fo.pg));
        } else {
          // No usable epoch (death before the first export): re-run the
          // unfinished lanes from scratch.
          std::vector<WaveQuery> batch;
          std::vector<std::size_t> idx;
          for (std::size_t l = 0; l < fo.idx.size(); ++l) {
            if (!(fo.resume_mask >> l & 1) || fo.idx[l] == kNoQuery)
              continue;
            if (rep.results[fo.idx[l]].outcome != Outcome::pending) continue;
            batch.push_back(fo.batch[l]);
            idx.push_back(fo.idx[l]);
          }
          // The from-scratch re-run still serves the original epoch: the
          // query was admitted against that snapshot, and the unit holds it.
          if (!batch.empty())
            launch(r, now, std::move(batch), std::move(idx), nullptr, 0,
                   true, std::move(fo.pg));
        }
        launched = true;
        continue;
      }

      // The snapshot is pinned BEFORE the batch forms: degradation-cache
      // lookups inside form_batch answer against the epoch this dispatch
      // would serve, never against a stale labeling from an older snapshot.
      PinnedGraph pg;
      if (fdc_.graph_source) pg = fdc_.graph_source(now);
      std::vector<WaveQuery> batch;
      std::vector<std::size_t> idx;
      const std::size_t pqi = form_batch(now, pg.epoch, batch, idx);
      if (pqi != kNoQuery) {
        launch_program(r, now, pqi, nullptr, false, std::move(pg));
        last_dequeue = now;
        admit(now);
        launched = true;
        continue;
      }
      if (batch.empty()) continue;  // everything degraded or shed
      launch(r, now, std::move(batch), std::move(idx), nullptr, 0, false,
             std::move(pg));
      last_dequeue = now;
      admit(now);  // freed queue slots let door-blocked arrivals in
      launched = true;
    }
    if (launched) continue;

    // Advance virtual time to the next event: a replica freeing up, the
    // next admissible arrival, or a failover unit becoming ready.
    double tnext = inf;
    for (int r = 0; r < R; ++r) {
      const auto& rs = reps[static_cast<std::size_t>(r)];
      if (rs.free_ns > now && rs.free_ns < rs.detect_ns)
        tnext = std::min(tnext, rs.free_ns);
    }
    if (next < nq && queued < static_cast<std::size_t>(fdc_.queue_depth))
      tnext = std::min(tnext, queries[next].arrival_ns);
    for (const Failover& fo : pending)
      if (fo.ready_ns > now) tnext = std::min(tnext, fo.ready_ns);

    if (!(tnext < inf)) {
      // No event can ever serve the remainder: every replica is down.
      for (auto& q : queues)
        for (const std::size_t qi : q) resolve_dropped(qi, Outcome::lost);
      for (const Failover& fo : pending)
        for (const std::size_t qi : fo.idx)
          if (qi != kNoQuery &&
              rep.results[qi].outcome == Outcome::pending)
            resolve_dropped(qi, Outcome::lost);
      while (next < nq) resolve_dropped(next++, Outcome::lost);
      break;
    }
    now = std::max(now, tnext);
  }
  end_ns = std::max(end_ns, now);

  // Aggregate per class.
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(ncls));
  for (auto& res : rep.results) {
    auto& cs = rep.cls[static_cast<int>(res.cls)];
    ++cs.submitted;
    const double deadline = fdc_.slo.deadline_ns(res.cls);
    switch (res.outcome) {
      case Outcome::served:
      case Outcome::failed_over:
        ++cs.served;
        res.slo_met = res.latency_ns() <= deadline;
        lat[static_cast<std::size_t>(static_cast<int>(res.cls))].push_back(
            res.latency_ns());
        break;
      case Outcome::degraded:
        ++cs.degraded;
        res.slo_met = res.latency_ns() <= deadline;
        lat[static_cast<std::size_t>(static_cast<int>(res.cls))].push_back(
            res.latency_ns());
        break;
      case Outcome::shed:
      case Outcome::lost:
      case Outcome::pending:
        ++cs.shed;
        res.slo_met = false;
        break;
    }
  }
  for (int c = 0; c < ncls; ++c) {
    auto& cs = rep.cls[c];
    const auto& v = lat[static_cast<std::size_t>(c)];
    if (!v.empty()) {
      cs.mean_ns = harness::mean(v);
      cs.p50_ns = harness::percentile(v, 50);
      cs.p95_ns = harness::percentile(v, 95);
      cs.p99_ns = harness::percentile(v, 99);
    }
    int met = 0;
    for (const auto& res : rep.results)
      if (static_cast<int>(res.cls) == c && res.slo_met) ++met;
    cs.attainment = cs.submitted > 0
                        ? static_cast<double>(met) / cs.submitted
                        : 1.0;
  }
  rep.total_ns = end_ns;
  rep.shed_rate = static_cast<double>(rep.shed) / static_cast<double>(nq);
  for (int r = 0; r < R; ++r)
    if (reps[static_cast<std::size_t>(r)].detect_ns <= end_ns)
      ++rep.replicas_lost;
  return rep;
}

}  // namespace numabfs::engine
