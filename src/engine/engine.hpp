#pragma once
/// \file engine.hpp
/// Query-serving layer over the batched multi-source BFS kernel: a seeded
/// deterministic workload (queries arriving in virtual time), a bounded
/// FIFO admission queue with backpressure, and a batch scheduler that
/// groups compatible queries into waves of up to 64 lanes (msbfs.hpp).
///
/// All scheduling happens in *virtual* time, the same clock domain as the
/// simulated cluster: a wave's duration is the max rank clock of its
/// `run_wave`, a query's completion instant is the wave's start plus the
/// lane's in-wave retirement time, and its latency is completion minus
/// arrival (so queueing delay is part of the reported latency, as in any
/// real serving system). Everything is bit-deterministic for a fixed
/// (workload seed, config, fault plan) triple — including the latency
/// percentiles, which is what the chaos reproducibility tests pin down.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "engine/msbfs.hpp"
#include "engine/programs.hpp"

namespace numabfs::engine {

/// One query of the workload. `arrival_ns` is its virtual arrival instant;
/// the submission order (and id) follows arrival order.
struct Query {
  int id = 0;
  QueryKind kind = QueryKind::full_distances;
  graph::Vertex source = 0;
  graph::Vertex target = 0;  ///< st_reachability only
  int k = 0;                 ///< k_hop only
  double arrival_ns = 0;
};

/// Per-query serving record (virtual-time accounting).
struct QueryResult {
  int id = 0;
  QueryKind kind = QueryKind::full_distances;
  double arrival_ns = 0;
  double admit_ns = 0;     ///< entered the bounded queue (> arrival when the
                           ///< queue was full: backpressure delay)
  double start_ns = 0;     ///< wave the query rode began
  double complete_ns = 0;  ///< lane retirement instant
  int wave = 0;            ///< index of that wave
  int lane = 0;            ///< lane within the wave
  int complete_level = 0;
  /// Graph epoch the query's wave was pinned to (dynamic graph layer);
  /// 0 when serving a static graph.
  std::uint64_t epoch = 0;
  bool reached = false;       ///< st_reachability verdict
  std::uint64_t visited = 0;  ///< vertices the lane discovered
  /// Program workloads: the scalar answer (distance, rank, component
  /// count, triangle count). 0 for wave kinds.
  double value = 0;

  double latency_ns() const { return complete_ns - arrival_ns; }
  double queue_ns() const { return start_ns - arrival_ns; }
};

/// Deterministic workload description (generate()).
struct WorkloadSpec {
  int num_queries = 64;
  std::uint64_t seed = 1;
  double mean_interarrival_ns = 1e6;  ///< exponential arrivals
  double st_fraction = 0.0;           ///< share of s-t reachability queries
  double khop_fraction = 0.0;         ///< share of k-hop queries
  int k_min = 2;                      ///< k_hop radius range (inclusive)
  int k_max = 4;
  // Program-workload shares (all default 0, so pre-existing workloads keep
  // their exact draw sequences). The remainder is full-distance BFS.
  double sssp_fraction = 0.0;
  double pagerank_fraction = 0.0;
  double components_fraction = 0.0;
  double triangles_fraction = 0.0;
};

/// Called after each wave, before the wave state is reused — the hook the
/// tests and benches use to validate per-lane distances/parents in place.
using WaveSink = std::function<void(std::span<const WaveQuery>,
                                    const WaveResult&, WaveState&)>;

/// Called after each program dispatch, before the program state is torn
/// down — the hook for reading full value arrays (gather_values) in place.
using ProgramSink =
    std::function<void(const Query&, const ProgramResult&, ProgramState&)>;

/// An epoch-stamped graph view handed to the serving tier by the dynamic
/// graph layer (dyn::SnapshotManager::pin). `graph` stays valid for as long
/// as the pointer is held, even across background compactions; `pin_ns` is
/// the modeled cost of acquiring it (charged on the serving path, so pins
/// delay the wave they admit). A null `graph` means "serve the engine's
/// bound static graph" — the static path, bit-identical to pre-dynamic
/// behavior.
struct PinnedGraph {
  std::uint64_t epoch = 0;
  std::shared_ptr<const graph::DistGraph> graph;
  double pin_ns = 0;
};

/// Pins the freshest consistent snapshot at virtual instant `now_ns`.
/// Called once per wave at admission; every lane of the wave serves the
/// returned epoch (QueryResult::epoch), and exported failover checkpoints
/// carry it so a resume runs against the same snapshot.
using GraphSource = std::function<PinnedGraph(double now_ns)>;

struct EngineConfig {
  int max_batch = 64;    ///< lanes per wave (1..64)
  int queue_depth = 256; ///< admission queue bound (backpressure beyond it)
  bool track_parents = true;
  WaveSink sink;         ///< optional per-wave observer
  ProgramParams programs;    ///< knobs of the program workloads
  ProgramSink program_sink;  ///< optional per-program-dispatch observer
  GraphSource graph_source;  ///< optional dynamic-graph pin hook (unset:
                             ///< serve the bound static graph)

  /// Validate invariants; returns an actionable error message or empty.
  /// The QueryEngine ctor calls this and throws on a non-empty result.
  std::string validate() const;
};

/// Aggregated serving report.
struct EngineReport {
  std::vector<QueryResult> results;  ///< ordered by query id
  int waves = 0;
  int program_runs = 0;    ///< singleton program dispatches (not waves)
  int levels = 0;          ///< level kernels run, summed over waves
  double total_ns = 0;     ///< virtual makespan (end of the last wave)
  double busy_ns = 0;      ///< sum of wave durations (total - busy = idle)
  double mean_latency_ns = 0;
  double p50_latency_ns = 0;
  double p95_latency_ns = 0;
  double p99_latency_ns = 0;
  double qps = 0;          ///< num_queries / total virtual seconds
  int backpressured = 0;   ///< queries delayed by a full queue
  int recoveries = 0;      ///< crash-recovery level re-runs, summed
  int ranks_lost = 0;      ///< max over waves (each wave re-injects its plan)
};

/// The serving engine: owns a reusable WaveState for one (cluster, graph,
/// config) binding and drains workloads through it.
class QueryEngine {
 public:
  QueryEngine(rt::Cluster& c, const graph::DistGraph& dg,
              const bfs::Config& cfg, EngineConfig ec);

  /// Serve a workload (queries must be sorted by arrival_ns; generate()
  /// output already is). Runs waves back-to-back in virtual time until
  /// every query completes.
  EngineReport serve(std::span<const Query> queries);

  /// Seeded deterministic workload: exponential interarrivals, kind mix by
  /// the spec fractions, sources/targets hash-walked over degree > 0
  /// vertices (Graph500-style root selection).
  static std::vector<Query> generate(const graph::DistGraph& dg,
                                     const WorkloadSpec& spec);

  WaveState& wave_state() { return ws_; }

 private:
  rt::Cluster& cluster_;
  const graph::DistGraph& dg_;
  EngineConfig ec_;
  WaveState ws_;
  // Program instances are graph-derived (degree arrays, forward adjacency),
  // so they are cached per (workload, epoch snapshot) and rebuilt when the
  // serving epoch moves.
  struct CachedProgram {
    std::unique_ptr<FrontierProgram> prog;
    const graph::DistGraph* dg = nullptr;
    std::uint64_t epoch = 0;
  };
  CachedProgram progs_[4];

  const FrontierProgram& program_for(QueryKind k, const graph::DistGraph& dg,
                                     std::uint64_t epoch);
};

/// The program workload a program-kind query runs (is_program_kind only).
ProgramWorkload workload_of(QueryKind k);

}  // namespace numabfs::engine
