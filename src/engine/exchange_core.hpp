#pragma once
/// \file exchange_core.hpp
/// The collective-plan core of a per-level frontier exchange, extracted
/// from the MS-BFS lane exchange so every frontier-driven engine workload
/// (lane waves, vertex programs) rides the exact same plans: private-replica
/// library allgather, node-shared leader allgather, or parallel subgroups
/// (the paper's Fig. 7), with degraded-link stretch and chunk-pipelined
/// decode overlap when the presence bitmap went over the wire coded.
///
/// The caller owns the wire format: it measures its chunks, runs the codec
/// gate, and hands this core the resulting `chunk_bytes` plus three hooks
/// that know how to land a partition's chunk in the replicated arrays. The
/// core owns the plan selection, the modeled collective time, the charges
/// and the barriers — in exactly the order the MS-BFS exchange established,
/// so refactoring onto it is bit-identical in virtual time.

#include <cstdint>
#include <functional>

#include "bfs/config.hpp"
#include "bfs/costs.hpp"
#include "faults/injector.hpp"
#include "runtime/cluster.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::engine {

/// Caller-supplied landing hooks of one exchange. All three run on the
/// calling rank; which replicas/partitions they are invoked for is the
/// core's plan-dependent business.
struct ExchangeHooks {
  /// Copy partition `src_part`'s owned out chunk into this rank's replica
  /// (including the byte counters for non-own chunks).
  std::function<void(int)> copy_block;
  /// Wipe this rank's replica frontier summary ahead of the merges.
  std::function<void()> reset_summary;
  /// Merge partition `src_part`'s out summary into the replica summary.
  std::function<void(int)> merge_summary;
};

/// Geometry of the exchange the core needs for its charges.
struct ExchangeShape {
  std::uint64_t chunk_bytes = 0;  ///< modeled wire bytes of one chunk
  std::uint64_t sum_words = 0;    ///< replica summary words (merge pass)
  bool shared = false;            ///< node-shared replicas (Sharing != none)
  bool presence_coded = false;    ///< presence bitmap went over coded
  /// 64-bit words one chunk's presence bitmap decodes into (the overlap
  /// model's per-chunk decode size when presence_coded).
  std::uint64_t decode_words = 0;
};

/// Run the collective plan of one exchange: the pre-plan barrier (every
/// partition's out words must be ready), the plan itself with its copies
/// and summary merges, the degraded-link stretch, the pipelined decode
/// overlap, the final charge and the closing barrier. The caller emits its
/// own trace instant and wipes its out blocks afterwards.
inline void run_exchange_plan(rt::Proc& p, const bfs::Config& cfg,
                              const bfs::UnitCosts& u, sim::Phase phase,
                              const ExchangeShape& shape,
                              const ExchangeHooks& hooks) {
  namespace cm = rt::coll_model;
  rt::Cluster& c = *p.cluster;
  const faults::FaultInjector* inj = c.injector();
  rt::Comm& world = c.world();
  const int np = c.nranks();
  const int ppn = c.ppn();

  const bool degraded = inj != nullptr && inj->any_dead();
  const bool acts_leader =
      degraded ? p.local == inj->lowest_live_local(p.node) : p.is_node_leader();

  p.barrier(world, sim::Phase::stall);  // every partition's out words ready

  cm::CollTimes qt;
  if (!shape.shared) {
    // Private replicas: library allgather over all np ranks.
    if (cfg.base_algo == rt::AllgatherAlgo::flat_ring) {
      qt = cm::flat_ring(c, shape.chunk_bytes);
    } else {
      const bool rd = cfg.base_algo == rt::AllgatherAlgo::leader_rd;
      qt = cm::leader_allgather(c, shape.chunk_bytes, true, true, 1, rd);
    }
    for (int r = 0; r < np; ++r) hooks.copy_block(r);
    hooks.reset_summary();
    for (int r = 0; r < np; ++r) hooks.merge_summary(r);
    p.charge(phase, u.stream_pass_ns(shape.sum_words));
  } else if (!cfg.parallel_allgather || degraded) {
    // Node-shared frontier: the broadcast step is gone; sharing the out
    // slabs too (Sharing::all) drops the gather step as well.
    const bool with_gather = cfg.sharing != bfs::Sharing::all;
    qt = cm::leader_allgather(c, shape.chunk_bytes, with_gather, false, 1);
    if (acts_leader) {
      for (int r = 0; r < np; ++r) hooks.copy_block(r);
      hooks.reset_summary();
      for (int r = 0; r < np; ++r) hooks.merge_summary(r);
      p.charge(phase, u.stream_pass_ns(shape.sum_words));
    }
  } else {
    // Parallel subgroups (Fig. 7): each color assembles its slice of every
    // node chunk in place; blocks are word-disjoint, so no atomics needed.
    // The shared summary needs one wipe before the colors' atomic merges.
    qt = cm::leader_allgather(c, shape.chunk_bytes, false, false, ppn);
    rt::Comm& node = c.node_comm(p.node);
    if (p.is_node_leader()) {
      hooks.reset_summary();
      p.charge(phase, u.stream_pass_ns(shape.sum_words));
    }
    p.barrier(node, sim::Phase::stall);  // wipe lands before the merges
    for (int m = 0; m < c.topo().nodes(); ++m) {
      hooks.copy_block(m * ppn + p.local);
      hooks.merge_summary(m * ppn + p.local);
    }
  }

  double total_ns = qt.total_ns;
  if (inj != nullptr) {
    // A degraded fabric stretches the inter-node stage.
    const double lf = inj->min_link_factor(p.clock.now_ns());
    total_ns += qt.inter_ns * (1.0 / lf - 1.0);
  }
  if (shape.presence_coded) {
    // Chunk-pipelined overlap of the presence-bitmap decode with the wire
    // (coll_model::pipelined2_ns), as in the hybrid exchange.
    const bool par_plan = shape.shared && cfg.parallel_allgather && !degraded;
    const std::uint64_t dec_chunks =
        par_plan ? static_cast<std::uint64_t>(c.topo().nodes())
                 : static_cast<std::uint64_t>(np);
    const double dec_ns = u.stream_pass_ns(dec_chunks * shape.decode_words);
    const double seq_ns = total_ns + dec_ns;
    total_ns = cm::pipelined2_ns(total_ns, dec_ns,
                                 std::max(1, cfg.exchange_chunks));
    p.prof.add_overlap_saved(seq_ns - total_ns);
  }
  p.charge(phase, total_ns);
  p.barrier(world, phase);  // the collective completes together
}

}  // namespace numabfs::engine
