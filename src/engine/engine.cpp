#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "graph/rmat.hpp"
#include "harness/graph500.hpp"
#include "obs/trace.hpp"

namespace numabfs::engine {

namespace {

std::uint64_t degree_of(const graph::DistGraph& dg, graph::Vertex v) {
  const int r = dg.part.owner(v);
  const auto& lg = dg.locals[static_cast<std::size_t>(r)];
  const std::uint64_t lv = v - lg.vbegin;
  return lg.degree(lv);
}

/// Uniform double in [0, 1) from the top 53 bits of a splitmix64 draw.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

ProgramWorkload workload_of(QueryKind k) {
  switch (k) {
    case QueryKind::sssp: return ProgramWorkload::sssp;
    case QueryKind::pagerank: return ProgramWorkload::pagerank;
    case QueryKind::components: return ProgramWorkload::components;
    case QueryKind::triangles: return ProgramWorkload::triangles;
    case QueryKind::full_distances:
    case QueryKind::st_reachability:
    case QueryKind::k_hop:
      break;
  }
  throw std::invalid_argument("workload_of: not a program kind");
}

std::string EngineConfig::validate() const {
  if (max_batch < 1 || max_batch > kMaxLanes)
    return "max_batch must be in [1, " + std::to_string(kMaxLanes) +
           "] (one lane word per wave)";
  if (queue_depth < 1) return "queue_depth must be >= 1";
  return {};
}

QueryEngine::QueryEngine(rt::Cluster& c, const graph::DistGraph& dg,
                         const bfs::Config& cfg, EngineConfig ec)
    : cluster_(c),
      dg_(dg),
      ec_(std::move(ec)),
      ws_(dg, cfg, c.topo().nodes(), c.ppn(), ec_.track_parents) {
  if (const std::string err = ec_.validate(); !err.empty())
    throw std::invalid_argument("QueryEngine: " + err);
  if (const std::string err = cfg.validate(); !err.empty())
    throw std::invalid_argument("QueryEngine: " + err);
}

const FrontierProgram& QueryEngine::program_for(QueryKind k,
                                                const graph::DistGraph& dg,
                                                std::uint64_t epoch) {
  const ProgramWorkload w = workload_of(k);
  CachedProgram& slot = progs_[static_cast<int>(w)];
  if (slot.prog == nullptr || slot.dg != &dg || slot.epoch != epoch) {
    slot.prog = make_program(w, dg, ec_.programs);
    slot.dg = &dg;
    slot.epoch = epoch;
  }
  return *slot.prog;
}

std::vector<Query> QueryEngine::generate(const graph::DistGraph& dg,
                                         const WorkloadSpec& spec) {
  if (spec.num_queries < 1)
    throw std::invalid_argument("generate: num_queries must be >= 1");
  const double prog_fraction = spec.sssp_fraction + spec.pagerank_fraction +
                               spec.components_fraction +
                               spec.triangles_fraction;
  if (spec.mean_interarrival_ns < 0 ||
      spec.st_fraction + spec.khop_fraction + prog_fraction > 1.0 + 1e-12)
    throw std::invalid_argument("generate: bad workload spec");
  if (spec.k_min < 0 || spec.k_max < spec.k_min)
    throw std::invalid_argument("generate: bad k_hop radius range");

  // Hash-walk the vertex space for degree > 0 endpoints, the same
  // deterministic selection as Graph500 root picking.
  std::uint64_t x = graph::splitmix64(spec.seed ^ 0x9e3779b97f4a7c15ull);
  const auto pick_vertex = [&]() -> graph::Vertex {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      x = graph::splitmix64(x + 1);
      const auto v = static_cast<graph::Vertex>(x % dg.n);
      if (degree_of(dg, v) > 0) return v;
    }
    throw std::runtime_error("generate: no degree > 0 vertex found");
  };

  std::vector<Query> out;
  out.reserve(static_cast<std::size_t>(spec.num_queries));
  double t = 0;
  for (int i = 0; i < spec.num_queries; ++i) {
    x = graph::splitmix64(x + 1);
    t += -spec.mean_interarrival_ns * std::log1p(-to_unit(x));

    Query q;
    q.id = i;
    q.arrival_ns = t;
    x = graph::splitmix64(x + 1);
    const double u = to_unit(x);
    if (u < spec.st_fraction) {
      q.kind = QueryKind::st_reachability;
      q.source = pick_vertex();
      q.target = pick_vertex();
    } else if (u < spec.st_fraction + spec.khop_fraction) {
      q.kind = QueryKind::k_hop;
      q.source = pick_vertex();
      x = graph::splitmix64(x + 1);
      q.k = spec.k_min +
            static_cast<int>(x % static_cast<std::uint64_t>(
                                     spec.k_max - spec.k_min + 1));
    } else if (double lo = spec.st_fraction + spec.khop_fraction;
               u < lo + spec.sssp_fraction) {
      q.kind = QueryKind::sssp;
      q.source = pick_vertex();
      q.target = pick_vertex();
    } else if (lo += spec.sssp_fraction; u < lo + spec.pagerank_fraction) {
      q.kind = QueryKind::pagerank;
      q.source = pick_vertex();
    } else if (lo += spec.pagerank_fraction;
               u < lo + spec.components_fraction) {
      q.kind = QueryKind::components;  // whole-graph: no endpoint draw
    } else if (lo += spec.components_fraction;
               u < lo + spec.triangles_fraction) {
      q.kind = QueryKind::triangles;  // whole-graph: no endpoint draw
    } else {
      q.kind = QueryKind::full_distances;
      q.source = pick_vertex();
    }
    out.push_back(q);
  }
  return out;
}

EngineReport QueryEngine::serve(std::span<const Query> queries) {
  const auto nq = static_cast<std::size_t>(queries.size());
  for (std::size_t i = 1; i < nq; ++i)
    if (queries[i].arrival_ns < queries[i - 1].arrival_ns)
      throw std::invalid_argument("serve: queries not sorted by arrival");

  EngineReport rep;
  rep.results.assign(nq, QueryResult{});
  if (nq == 0) return rep;

  struct Admitted {
    std::size_t idx;
    double admit_ns;
  };
  std::deque<Admitted> queue;
  std::size_t next = 0;     // first not-yet-admitted arrival
  double last_dequeue = 0;  // instant queue space last became available

  // Driver-track tracing (admission, batch formation, per-wave spans).
  // Host events carry absolute serve-loop time; the per-wave base offset
  // below relocates the in-wave rank events, whose clocks restart at 0.
  obs::Tracer* tr = cluster_.tracer();

  // Admit every arrival up to time `t` that finds room in the bounded
  // queue. An arrival that found the queue full waits at the door and is
  // admitted the moment a wave dequeues (arrivals are FIFO end to end).
  const auto admit = [&](double t) {
    while (next < nq && queries[next].arrival_ns <= t &&
           queue.size() < static_cast<std::size_t>(ec_.queue_depth)) {
      const double adm = std::max(queries[next].arrival_ns, last_dequeue);
      if (adm > queries[next].arrival_ns) ++rep.backpressured;
      if (tr != nullptr)
        tr->instant(tr->host_track(), obs::kCatEngine, "admit", adm,
                    obs::kv("query", queries[next].id) + "," +
                        obs::kv("backpressured",
                                adm > queries[next].arrival_ns ? "yes" : "no"));
      queue.push_back({next, adm});
      ++next;
    }
  };

  double now = 0;
  std::size_t completed = 0;
  std::vector<WaveQuery> wave;
  std::vector<std::size_t> wave_idx;
  // NaN marks "never completed"; mean/percentile skip non-finite entries,
  // so a lane that cannot complete (e.g. its rank crashed) deflates the
  // completed count rather than silently pulling the percentiles to 0.
  std::vector<double> latencies(nq, std::numeric_limits<double>::quiet_NaN());

  while (completed < nq) {
    if (queue.empty()) {
      // Engine idle: jump to the next arrival.
      now = std::max(now, queries[next].arrival_ns);
      last_dequeue = std::max(last_dequeue, now);
    }
    admit(now);

    // Dynamic serving: pin the wave's snapshot before forming the batch.
    // The pin instant fixes the epoch every lane of the wave serves, and
    // the pin cost lands on the serving path — it delays the wave start,
    // so snapshot acquisition is part of every rider's latency.
    PinnedGraph pg;
    if (ec_.graph_source) {
      pg = ec_.graph_source(now);
      now += pg.pin_ns;
      if (tr != nullptr)
        tr->instant(tr->host_track(), obs::kCatEngine, "snapshot.pin", now,
                    obs::kv("epoch", pg.epoch) + "," +
                        obs::kv("pin_ns", pg.pin_ns));
      admit(now);
    }
    const graph::DistGraph& wdg = pg.graph != nullptr ? *pg.graph : dg_;

    // A program query at the head of the queue is dispatched alone through
    // run_program (programs own the whole cluster; they cannot share a
    // wave's lane words). Admission stays FIFO end to end: a wave never
    // reaches past the first queued program query.
    if (!queue.empty() && is_program_kind(queries[queue.front().idx].kind)) {
      const Admitted a = queue.front();
      queue.pop_front();
      last_dequeue = now;
      admit(now);
      const Query& q = queries[a.idx];
      auto& r = rep.results[a.idx];
      r.id = q.id;
      r.kind = q.kind;
      r.arrival_ns = q.arrival_ns;
      r.admit_ns = a.admit_ns;
      r.start_ns = now;
      r.wave = -1;  // not a wave rider
      r.lane = 0;

      const FrontierProgram& prog = program_for(q.kind, wdg, pg.epoch);
      ProgramState pstate(wdg, ws_.config(), cluster_.topo().nodes(),
                          cluster_.ppn(), prog.with_values());
      ProgramOptions po;
      po.epoch = pg.epoch;
      po.max_levels = ec_.programs.max_levels;
      if (tr != nullptr) tr->set_base_ns(now);
      const ProgramResult res = run_program(
          cluster_, wdg, pstate, prog, ProgramQuery{q.source, q.target}, po);
      if (tr != nullptr) {
        tr->set_base_ns(0);
        tr->span(tr->host_track(), obs::kCatEngine,
                 std::string("program ") + prog.name(), now,
                 now + res.total_ns,
                 obs::kv("query", q.id) + "," +
                     obs::kv("levels", res.levels) + "," +
                     obs::kv("value", res.value));
      }
      r.complete_ns = now + res.total_ns;
      r.epoch = pg.epoch;
      r.complete_level = res.levels;
      r.value = res.value;
      latencies[a.idx] = r.latency_ns();
      if (ec_.program_sink) ec_.program_sink(q, res, pstate);

      now += res.total_ns;
      rep.busy_ns += res.total_ns;
      rep.levels += res.levels;
      rep.recoveries += res.recoveries;
      rep.ranks_lost = std::max(rep.ranks_lost, res.ranks_lost);
      ++rep.program_runs;
      ++completed;
      continue;
    }

    // Dequeue up to max_batch lanes; the freed slots let door-blocked
    // arrivals enter the queue now (they ride a later wave).
    wave.clear();
    wave_idx.clear();
    const int want =
        std::min<int>(ec_.max_batch, static_cast<int>(queue.size()));
    for (int l = 0; l < want; ++l) {
      if (is_program_kind(queries[queue.front().idx].kind))
        break;  // the program query heads the next dispatch
      const Admitted a = queue.front();
      queue.pop_front();
      const Query& q = queries[a.idx];
      wave.push_back({q.kind, q.source, q.target, q.k});
      wave_idx.push_back(a.idx);
      auto& r = rep.results[a.idx];
      r.id = q.id;
      r.kind = q.kind;
      r.arrival_ns = q.arrival_ns;
      r.admit_ns = a.admit_ns;
      r.start_ns = now;
      r.wave = rep.waves;
      r.lane = l;
    }
    const int batch = static_cast<int>(wave.size());
    last_dequeue = now;
    admit(now);

    if (tr != nullptr) {
      tr->instant(tr->host_track(), obs::kCatEngine, "batch.form", now,
                  obs::kv("wave", rep.waves) + "," + obs::kv("batch", batch));
      // In-wave rank clocks restart at 0; land their events at wave start.
      tr->set_base_ns(now);
    }
    WaveResult wr;
    if (ec_.graph_source) {
      WaveOptions wo;
      wo.epoch = pg.epoch;
      wr = run_wave(cluster_, wdg, ws_, wave, wo);
    } else {
      wr = run_wave(cluster_, wdg, ws_, wave);
    }
    if (tr != nullptr) {
      tr->set_base_ns(0);
      tr->span(tr->host_track(), obs::kCatEngine,
               "wave " + std::to_string(rep.waves), now, now + wr.wave_ns,
               obs::kv("batch", batch) + "," + obs::kv("levels", wr.levels));
    }
    for (int l = 0; l < batch; ++l) {
      auto& r = rep.results[wave_idx[static_cast<std::size_t>(l)]];
      const LaneResult& lr = wr.lanes[static_cast<std::size_t>(l)];
      r.complete_ns = now + lr.complete_ns;
      r.epoch = wr.epoch;
      r.complete_level = lr.complete_level;
      r.reached = lr.reached;
      r.visited = lr.visited;
      latencies[wave_idx[static_cast<std::size_t>(l)]] = r.latency_ns();
    }
    if (ec_.sink) ec_.sink(wave, wr, ws_);

    now += wr.wave_ns;
    rep.busy_ns += wr.wave_ns;
    rep.levels += wr.levels;
    rep.recoveries += wr.recoveries;
    rep.ranks_lost = std::max(rep.ranks_lost, wr.ranks_lost);
    ++rep.waves;
    completed += static_cast<std::size_t>(batch);
  }

  rep.total_ns = now;
  rep.mean_latency_ns = harness::mean(latencies);
  rep.p50_latency_ns = harness::percentile(latencies, 50);
  rep.p95_latency_ns = harness::percentile(latencies, 95);
  rep.p99_latency_ns = harness::percentile(latencies, 99);
  rep.qps = rep.total_ns > 0
                ? static_cast<double>(nq) * 1e9 / rep.total_ns
                : 0.0;
  return rep;
}

}  // namespace numabfs::engine
