#include "engine/fprog.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "engine/exchange_core.hpp"
#include "faults/errors.hpp"
#include "graph/codec.hpp"
#include "runtime/allgather.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::engine {

ProgramState::ProgramState(const graph::DistGraph& dg, const bfs::Config& cfg,
                           int nodes, int ppn, bool with_values)
    : cfg_(cfg),
      np_(dg.part.np()),
      ppn_(ppn),
      shared_(cfg.sharing != bfs::Sharing::none && ppn > 1),
      with_values_(with_values),
      block_(dg.part.block()),
      wpb_((dg.part.block() + 63) / 64) {
  if (np_ != nodes * ppn)
    throw std::invalid_argument("ProgramState: partition/shape mismatch");
  const std::uint64_t g = cfg_.summary_granularity;
  const int nrep = shared_ ? nodes : np_;
  frontier_.assign(static_cast<std::size_t>(nrep),
                   std::vector<std::uint64_t>(padded_words(), 0));
  fsummary_.assign(static_cast<std::size_t>(nrep),
                   graph::Summary(padded_words() * 64, g));
  if (with_values_)
    values_.assign(static_cast<std::size_t>(nrep),
                   std::vector<Value>(padded_values(), 0));
  out_bits_.assign(static_cast<std::size_t>(np_),
                   std::vector<std::uint64_t>(wpb_, 0));
  out_summary_.assign(static_cast<std::size_t>(np_),
                      graph::Summary(block_, g));
  if (with_values_)
    val_out_.assign(static_cast<std::size_t>(np_),
                    std::vector<Value>(block_, 0));
}

namespace {
inline std::size_t replica_of(bool shared, int ppn, int rank) {
  return static_cast<std::size_t>(shared ? rank / ppn : rank);
}
}  // namespace

std::span<std::uint64_t> ProgramState::frontier(int rank) {
  return frontier_[replica_of(shared_, ppn_, rank)];
}
graph::SummaryView ProgramState::frontier_summary(int rank) {
  return fsummary_[replica_of(shared_, ppn_, rank)].view();
}
std::span<Value> ProgramState::values(int rank) {
  if (!with_values_) return {};
  return values_[replica_of(shared_, ppn_, rank)];
}
std::span<std::uint64_t> ProgramState::out_bits(int part) {
  return out_bits_[static_cast<std::size_t>(part)];
}
graph::SummaryView ProgramState::out_summary(int part) {
  return out_summary_[static_cast<std::size_t>(part)].view();
}
std::span<Value> ProgramState::val_out(int part) {
  if (!with_values_) return {};
  return val_out_[static_cast<std::size_t>(part)];
}

namespace {

/// Global sums / min / or of one level's statistics. Seven allreduces, the
/// program analog of the wave's six: every rank leaves with the identical
/// reduced view, which post_level() and the direction choice key off.
ProgStats reduce_stats(rt::Proc& p, rt::Comm& world, const ProgStats& st) {
  ProgStats r;
  r.changed = rt::allreduce_sum(p, world, st.changed, sim::Phase::stall);
  r.frontier_edges =
      rt::allreduce_sum(p, world, st.frontier_edges, sim::Phase::stall);
  r.needy = rt::allreduce_sum(p, world, st.needy, sim::Phase::stall);
  r.mu = rt::allreduce_sum(p, world, st.mu, sim::Phase::stall);
  r.acc = rt::allreduce_sum(p, world, st.acc, sim::Phase::stall);
  // Min via the max of the complement (the runtime has no allreduce_min).
  r.min_word =
      ~rt::allreduce_max(p, world, ~st.min_word, sim::Phase::stall);
  r.flags = rt::allreduce_or(p, world, st.flags, sim::Phase::stall);
  r.sources = st.sources;  // local-only fields: charging inputs, not control
  r.scanned = st.scanned;
  return r;
}

/// Per-level exchange of the program state: measure the out-bit sparsity,
/// run the codec gate on the presence bitmap, then ride the shared
/// collective-plan core. A partition's chunk is its presence bits, its out
/// summary and the changed values (with_values); the simulation lands the
/// full value block per slab — unchanged entries already match what every
/// replica holds, so only the changed ones are modeled on the wire.
void prog_exchange(rt::Proc& p, ProgramState& ps, const bfs::UnitCosts& u,
                   std::span<const int> parts) {
  rt::Cluster& c = *p.cluster;
  rt::Comm& world = c.world();
  const bfs::Config& cfg = ps.config();
  const int np = c.nranks();
  const std::uint64_t block = ps.block();
  const std::uint64_t wpb = ps.words_per_block();
  const sim::Phase phase = sim::Phase::bu_comm;

  const bool coded = cfg.codec != bfs::CodecMode::off && np > 1;
  std::uint64_t my_nnz = 0;
  std::uint64_t my_penc = 0;
  std::vector<std::uint8_t> pbuf;
  for (int q : parts) {
    auto out = ps.out_bits(q);
    std::uint64_t nnz = 0;
    for (std::uint64_t w : out) nnz += static_cast<std::uint64_t>(std::popcount(w));
    if (coded) {
      pbuf.clear();
      const std::size_t nb =
          graph::codec::encode_dense({out.data(), out.size()}, pbuf);
      my_penc += static_cast<std::uint64_t>(nb);
      p.charge(phase, u.stream_pass_ns(wpb + (nb + 7) / 8));
    } else {
      p.charge(phase, u.stream_pass_ns(wpb));
    }
    my_nnz = std::max(my_nnz, nnz);
  }
  const std::uint64_t max_nnz =
      rt::allreduce_max(p, world, my_nnz, sim::Phase::stall);

  const std::uint64_t g = cfg.summary_granularity;
  const std::uint64_t sum_bytes =
      (graph::SummaryView::summary_bits_for(block, g) + 7) / 8;
  const std::uint64_t presence_raw = (block + 7) / 8;
  std::uint64_t presence_bytes = presence_raw;
  if (coded) {
    const std::uint64_t enc_mean =
        (rt::allreduce_sum(p, world, my_penc, sim::Phase::stall) +
         static_cast<std::uint64_t>(np) - 1) /
        static_cast<std::uint64_t>(np);
    if (enc_mean < presence_raw) presence_bytes = enc_mean;
  }
  const bool presence_coded = presence_bytes < presence_raw;
  const std::uint64_t payload =
      ps.with_values() ? max_nnz * sizeof(Value) : 0;
  const std::uint64_t chunk_bytes = presence_bytes + sum_bytes + payload;
  const std::uint64_t raw_chunk_bytes = presence_raw + sum_bytes + payload;

  auto frontier = ps.frontier(p.rank);
  auto in_s = ps.frontier_summary(p.rank);
  auto vals = ps.values(p.rank);
  ExchangeHooks hooks;
  hooks.copy_block = [&](int src_part) {
    auto src = ps.out_bits(src_part);
    std::memcpy(frontier.data() + static_cast<std::uint64_t>(src_part) * wpb,
                src.data(), wpb * 8);
    if (ps.with_values()) {
      auto sv = ps.val_out(src_part);
      std::memcpy(vals.data() + static_cast<std::uint64_t>(src_part) * block,
                  sv.data(), block * sizeof(Value));
    }
    if (src_part == p.rank) return;  // own chunk: no transmission
    if (c.node_of(src_part) == p.node)
      p.prof.counters().bytes_intra_node += chunk_bytes;
    else
      p.prof.counters().bytes_inter_node += chunk_bytes;
    p.prof.counters().bytes_raw_equiv += raw_chunk_bytes;
  };
  hooks.reset_summary = [&] { in_s.bits().reset(); };
  hooks.merge_summary = [&](int src_part) {
    auto src = ps.out_summary(src_part);
    const std::uint64_t base =
        static_cast<std::uint64_t>(src_part) * wpb * 64;
    src.bits().for_each_set(0, src.size_bits(), [&](std::uint64_t b) {
      const std::uint64_t lo = base + b * g;
      in_s.mark(lo);
      in_s.mark(std::min(base + block, lo + g) - 1);
    });
  };

  ExchangeShape shape;
  shape.chunk_bytes = chunk_bytes;
  shape.sum_words = (ps.summary_bits() + 63) / 64;
  shape.shared = ps.shared_frontier();
  shape.presence_coded = presence_coded;
  shape.decode_words = wpb;
  run_exchange_plan(p, cfg, u, phase, shape, hooks);
  p.trace_instant(obs::kCatEngine, "prog.exchange",
                  obs::kv("chunk_bytes", chunk_bytes) + "," +
                      obs::kv("raw_bytes", raw_chunk_bytes) + "," +
                      obs::kv("coded", presence_coded ? "yes" : "no"));

  for (int q : parts) {
    auto out = ps.out_bits(q);
    std::memset(out.data(), 0, out.size() * 8);
    ps.out_summary(q).bits().reset();
    p.charge(phase, u.stream_pass_ns(wpb));
  }
  p.barrier(world, sim::Phase::stall);  // wipes land before the next level
}

/// Engine-owned time charging for one partition's advance. Programs return
/// work counts; this converts them with the partition's unit costs —
/// push levels stream the replicated frontier words and pay group search +
/// edge scans, pull levels stream the owned side and pay per-edge frontier
/// probes. Merged-view read amplification (dynamic graphs) is charged from
/// the slice's own patch-read counter, as in the BFS kernels.
void charge_advance(rt::Proc& p, const bfs::UnitCosts& u,
                    const graph::LocalGraph& lg, const ProgramState& ps,
                    const ProgStats& st, int dir, bool use_summary) {
  const auto patch = static_cast<double>(lg.take_patch_reads());
  const auto scanned = static_cast<double>(st.scanned);
  const auto changed = static_cast<double>(st.changed);
  if (dir == 0) {
    const double inner = static_cast<double>(st.sources) * u.group_search_ns +
                         scanned * u.edge_scan_ns + changed * u.write_ns +
                         patch * u.delta_probe_ns;
    p.charge(sim::Phase::td_comp,
             u.stream_pass_ns(ps.padded_words()) + inner / u.omp_div);
  } else {
    const double probe =
        u.inqueue_probe_ns + (use_summary ? u.summary_probe_ns : 0.0);
    const double inner = scanned * (u.edge_scan_ns + probe) +
                         changed * u.write_ns + patch * u.delta_probe_ns;
    p.charge(sim::Phase::bu_comp,
             u.stream_pass_ns(ps.words_per_block() +
                              (ps.with_values() ? ps.block() : 0)) +
                 inner / u.omp_div);
  }
}

}  // namespace

ProgramResult run_program(rt::Cluster& c, const graph::DistGraph& dg,
                          ProgramState& ps, const FrontierProgram& prog,
                          const ProgramQuery& query,
                          const ProgramOptions& opts) {
  const bfs::Config& cfg = ps.config();
  if (query.source >= dg.n || query.target >= dg.n)
    throw std::invalid_argument("run_program: query vertex out of range");
  if (prog.with_values() != ps.with_values())
    throw std::invalid_argument(
        "run_program: state was built for a different value mode");

  const ProgramCheckpoint* rck = opts.resume_from;
  if (rck != nullptr) {
    const auto np = static_cast<std::size_t>(c.nranks());
    if (!rck->valid || rck->frontier.size() != ps.padded_words() ||
        (ps.with_values() &&
         (rck->val_out.size() != np || rck->values.size() != ps.padded_values())) ||
        rck->scalars.size() != static_cast<std::size_t>(prog.scalar_count()))
      throw std::invalid_argument(
          "run_program: resume checkpoint missing or built for another shape");
  }
  ProgramCheckpoint* xp = opts.export_to;
  const int export_every = std::max(1, opts.export_every);
  if (xp != nullptr) {
    xp->valid = false;
    xp->val_out.assign(static_cast<std::size_t>(c.nranks()), {});
  }

  std::vector<bfs::UnitCosts> costs(static_cast<std::size_t>(c.nranks()));
  for (int r = 0; r < c.nranks(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    bfs::StructSizes sz;
    sz.in_queue_bytes =
        ps.padded_words() * 8 +
        (ps.with_values() ? ps.padded_values() * sizeof(Value) : 0);
    sz.in_summary_bytes = (ps.summary_bits() + 7) / 8;
    sz.owned_bytes = (lg.owned() + 7) / 8 +
                     (ps.with_values() ? lg.owned() * sizeof(Value) : 0);
    sz.td_group_count = std::max<std::uint64_t>(1, lg.td_keys.size());
    costs[static_cast<std::size_t>(r)] = bfs::unit_costs(c, cfg, sz);
  }

  faults::FaultInjector* inj = c.injector();
  if (inj != nullptr && inj->has_crashes() && !inj->checkpointing())
    throw faults::FaultError(
        "run_program: the fault plan schedules rank crashes but "
        "checkpointing is disabled (checkpoint:off); the program could not "
        "be recovered");
  const bool ckpt_on = inj != nullptr && inj->checkpointing();
  // Boundary checkpoints hold each partition's val_out — unlike the wave's
  // seen-only checkpoints, program values are not generally idempotent
  // (PageRank accumulates residuals), so a level re-run needs the values
  // exactly as the boundary left them. Out bits are always zero at a
  // boundary (the exchange wipes them) and need no saving.
  std::vector<std::vector<Value>> ckpt(
      ckpt_on && ps.with_values() ? static_cast<std::size_t>(c.nranks()) : 0);
  std::atomic<int> recoveries{0};

  struct Shared {
    std::vector<int> directions;
    std::vector<std::uint64_t> final_scalars;
    ProgStats last;
    bool converged = false;
    bool aborted = false;
    double abort_ns = 0;
  } shared;

  c.run([&](rt::Proc& p) {
    const bfs::UnitCosts& u = costs[static_cast<std::size_t>(p.rank)];
    rt::Comm& world = c.world();
    std::vector<int> parts{p.rank};
    const std::uint64_t block = ps.block();

    std::vector<std::uint64_t> scalars(
        static_cast<std::size_t>(prog.scalar_count()));

    // The wave's cost-model direction choice, fed by the program's reduced
    // statistics: push ~ frontier-word stream + the frontier's real edges,
    // pull ~ the in-play vertices' adjacency with per-edge frontier probes.
    constexpr double kDenseEarlyBreak = 2.0;
    const double n_d = static_cast<double>(dg.n);
    const double np_d = static_cast<double>(c.nranks());
    const double g_d = static_cast<double>(cfg.summary_granularity);
    const bfs::UnitCosts& u0 = costs[0];
    struct Choice {
      int dir;
      bool use_summary;
    };
    const auto choose = [&](double mf_d, double nf_d, double needy_d,
                            double mu_d) {
      const double density = std::max(nf_d / n_d, 1e-12);
      const double p_empty = std::pow(1.0 - std::min(density, 1.0), g_d);
      const bool use_sum =
          u0.summary_probe_ns < p_empty * u0.inqueue_probe_ns;
      const double per_edge =
          u0.edge_scan_ns +
          (use_sum
               ? u0.summary_probe_ns + (1.0 - p_empty) * u0.inqueue_probe_ns
               : u0.inqueue_probe_ns);
      const double est_scan =
          std::min(mu_d, needy_d * kDenseEarlyBreak / density);
      const double dense_est =
          (n_d / np_d) * u0.word_stream_ns + est_scan / np_d * per_edge;
      const double sparse_est =
          n_d * u0.word_stream_ns + nf_d * u0.group_search_ns +
          mf_d / np_d * (u0.edge_scan_ns + u0.visited_probe_ns);
      return Choice{dense_est < sparse_est ? 1 : 0, use_sum};
    };

    const auto make_ctx = [&](int q) {
      return PartCtx{dg.locals[static_cast<std::size_t>(q)],
                     q,
                     dg.locals[static_cast<std::size_t>(q)].vbegin,
                     block,
                     ps.frontier(p.rank),
                     ps.frontier_summary(p.rank),
                     ps.values(p.rank),
                     ps.out_bits(q),
                     ps.out_summary(q),
                     ps.val_out(q),
                     &ps};
    };

    int recorder = inj != nullptr ? inj->lowest_live() : 0;
    Choice ch{0, false};
    int level = 1;

    if (rck == nullptr) {
      // Seed: wipe the replicas (one writer each), initialize the owned
      // partition through the program, then exchange the seed frontier.
      if (!ps.shared_frontier() || p.is_node_leader()) {
        auto f = ps.frontier(p.rank);
        std::memset(f.data(), 0, f.size() * 8);
        ps.frontier_summary(p.rank).bits().reset();
        if (ps.with_values()) {
          auto v = ps.values(p.rank);
          std::memset(v.data(), 0, v.size() * sizeof(Value));
        }
      }
      {
        auto out = ps.out_bits(p.rank);
        std::memset(out.data(), 0, out.size() * 8);
        ps.out_summary(p.rank).bits().reset();
      }
      prog.init_scalars(scalars);
      PartCtx ctx = make_ctx(p.rank);
      ProgStats st = prog.seed(query, ctx);
      p.charge(sim::Phase::other,
               u.stream_pass_ns(ps.padded_words() +
                                (ps.with_values() ? 2 * block : block)));
      p.barrier(world, sim::Phase::other);
      const ProgStats rs = reduce_stats(p, world, st);
      prog_exchange(p, ps, u, parts);
      if (prog.direction_optimizing())
        ch = choose(static_cast<double>(rs.frontier_edges),
                    static_cast<double>(rs.changed),
                    static_cast<double>(rs.needy),
                    static_cast<double>(rs.mu));
    } else {
      // Failover resume: owners reload val_out, each replica writer reloads
      // the checkpointed frontier (bits + values) and rebuilds its summary;
      // the control position and scalars come from the exporter.
      std::copy(rck->scalars.begin(), rck->scalars.end(), scalars.begin());
      level = rck->level;
      ch = Choice{rck->dir, rck->use_summary};
      std::uint64_t words = 0;
      if (ps.with_values()) {
        auto vo = ps.val_out(p.rank);
        const auto& saved = rck->val_out[static_cast<std::size_t>(p.rank)];
        std::memcpy(vo.data(), saved.data(), saved.size() * sizeof(Value));
        words += vo.size();
      }
      {
        auto out = ps.out_bits(p.rank);
        std::memset(out.data(), 0, out.size() * 8);
        ps.out_summary(p.rank).bits().reset();
        words += out.size();
      }
      if (!ps.shared_frontier() || p.is_node_leader()) {
        auto f = ps.frontier(p.rank);
        std::memcpy(f.data(), rck->frontier.data(), f.size() * 8);
        auto fs = ps.frontier_summary(p.rank);
        fs.bits().reset();
        for (std::uint64_t w = 0; w < f.size(); ++w) {
          std::uint64_t bits = f[w];
          while (bits) {
            fs.mark(w * 64 +
                    static_cast<std::uint64_t>(std::countr_zero(bits)));
            bits &= bits - 1;
          }
        }
        if (ps.with_values()) {
          auto v = ps.values(p.rank);
          std::memcpy(v.data(), rck->values.data(), v.size() * sizeof(Value));
          words += v.size();
        }
        words += 2 * f.size();
      }
      p.charge(sim::Phase::other, u.stream_pass_ns(words));
      p.barrier(world, sim::Phase::other);
    }
    int dir = ch.dir;
    int handled_dead = 0;

    while (true) {
      const double level_t0 = p.clock.now_ns();

      // Replica-outage horizon, checked at clock-aligned points only (see
      // run_wave): every rank observes the abort at the same level.
      if (p.clock.now_ns() >= opts.abort_at_ns) {
        if (p.rank == recorder) {
          shared.aborted = true;
          shared.abort_ns = p.clock.now_ns();
        }
        break;
      }
      if (level > opts.max_levels) break;  // diverged: converged stays false

      // Cross-replica epoch export (the failover unit), strictly before the
      // crash point: an exported epoch always describes a pre-death state.
      if (xp != nullptr && (level - 1) % export_every == 0) {
        for (int q : parts) {
          const auto qi = static_cast<std::size_t>(q);
          if (ps.with_values()) {
            auto vo = ps.val_out(q);
            xp->val_out[qi].assign(vo.begin(), vo.end());
            p.charge(sim::Phase::other, costs[qi].stream_pass_ns(vo.size()));
          }
        }
        if (p.rank == recorder) {
          auto f = ps.frontier(p.rank);
          xp->frontier.assign(f.begin(), f.end());
          if (ps.with_values()) {
            auto v = ps.values(p.rank);
            xp->values.assign(v.begin(), v.end());
          }
          xp->scalars.assign(scalars.begin(), scalars.end());
          xp->level = level;
          xp->dir = dir;
          xp->use_summary = ch.use_summary;
          xp->epoch = opts.epoch;
          xp->valid = true;
          p.charge(sim::Phase::other, u.stream_pass_ns(f.size()));
        }
        p.barrier(world, sim::Phase::stall);
        if (p.rank == recorder)
          p.trace_instant(obs::kCatEngine, "prog.ckpt",
                          obs::kv("level", level));
      }

      // Level boundary: local checkpoint, then die if scheduled.
      if (ckpt_on && ps.with_values())
        for (int q : parts) {
          auto vo = ps.val_out(q);
          ckpt[static_cast<std::size_t>(q)].assign(vo.begin(), vo.end());
          p.charge(sim::Phase::other,
                   costs[static_cast<std::size_t>(q)].stream_pass_ns(
                       vo.size()));
        }
      if (inj != nullptr && inj->crash_level(p.rank) == level - 1) {
        inj->mark_dead(p.rank);
        c.retire_rank(p);
        return;
      }

      ProgStats st;
      st.min_word = kProgInf;
      for (int q : parts) {
        PartCtx ctx = make_ctx(q);
        const ProgStats qs = prog.advance(query, ctx, scalars, level, dir,
                                          ch.use_summary);
        charge_advance(p, costs[static_cast<std::size_t>(q)],
                       dg.locals[static_cast<std::size_t>(q)], ps, qs, dir,
                       ch.use_summary);
        st.add(qs);
        // The owned post-scan (min/needy/mu measurement), charged like the
        // wave's direction-input pass.
        p.charge(sim::Phase::switch_conv,
                 costs[static_cast<std::size_t>(q)].stream_pass_ns(
                     2 * dg.locals[static_cast<std::size_t>(q)].owned()));
      }

      const ProgStats rs = reduce_stats(p, world, st);

      // Crash detection: survivors adopt the dead partitions, roll val_out
      // back to the boundary checkpoint, and re-run the level.
      if (inj != nullptr && inj->dead_count() > handled_dead) {
        handled_dead = inj->dead_count();
        const std::size_t owned_before = parts.size();
        parts = inj->parts_of(p.rank);
        if (parts.size() > owned_before)
          p.prof.counters().adoptions += parts.size() - owned_before;
        for (int q : parts) {
          std::uint64_t words = 0;
          if (ps.with_values()) {
            auto vo = ps.val_out(q);
            const auto& saved = ckpt[static_cast<std::size_t>(q)];
            std::memcpy(vo.data(), saved.data(),
                        saved.size() * sizeof(Value));
            words += vo.size();
          }
          auto out = ps.out_bits(q);
          std::memset(out.data(), 0, out.size() * 8);
          ps.out_summary(q).bits().reset();
          words += out.size();
          p.charge(sim::Phase::other,
                   costs[static_cast<std::size_t>(q)].stream_pass_ns(words));
        }
        if (p.rank == inj->lowest_live())
          recoveries.fetch_add(1, std::memory_order_relaxed);
        p.barrier(world, sim::Phase::stall);
        p.trace_span(obs::kCatEngine, "recovery.rollback", level_t0,
                     p.clock.now_ns(),
                     obs::kv("level", level) + "," +
                         obs::kv("parts", static_cast<int>(parts.size())));
        continue;  // re-run the level; scalars never advanced
      }
      recorder = inj != nullptr ? inj->lowest_live() : 0;

      if (p.clock.now_ns() >= opts.abort_at_ns) {
        if (p.rank == recorder) {
          shared.aborted = true;
          shared.abort_ns = p.clock.now_ns();
        }
        break;
      }

      // Every rank evolves its scalar copy from the identical reduced view.
      const bool conv = prog.post_level(scalars, rs, level);
      if (p.rank == recorder) {
        shared.directions.push_back(dir);
        shared.last = rs;
      }
      p.trace_span(obs::kCatEngine,
                   std::string(prog.name()) + " level " +
                       std::to_string(level),
                   level_t0, p.clock.now_ns(),
                   obs::kv("dir", dir == 1 ? "pull" : "push") + "," +
                       obs::kv("changed", rs.changed));
      if (conv) {
        if (p.rank == recorder) {
          shared.converged = true;
          shared.final_scalars.assign(scalars.begin(), scalars.end());
        }
        break;
      }

      prog_exchange(p, ps, u, parts);

      if (prog.direction_optimizing()) {
        ch = choose(static_cast<double>(rs.frontier_edges),
                    static_cast<double>(rs.changed),
                    static_cast<double>(rs.needy),
                    static_cast<double>(rs.mu));
        dir = ch.dir;
      }
      ++level;
    }

    p.barrier(world, sim::Phase::stall);
  });

  ProgramResult out;
  out.epoch = opts.epoch;
  const auto& profiles = c.profiles();
  double max_total = 0;
  sim::PhaseProfile sum;
  for (const auto& pr : profiles) {
    max_total = std::max(max_total, pr.total_ns());
    sum += pr;
  }
  out.total_ns = max_total;
  out.profile_avg = sum.scaled(1.0 / static_cast<double>(profiles.size()));
  out.profile_avg.counters() = sum.counters();
  out.levels = static_cast<int>(shared.directions.size());
  for (int d : shared.directions) (d == 0 ? out.td_levels : out.bu_levels)++;
  out.converged = shared.converged;
  out.last = shared.last;
  out.recoveries = recoveries.load(std::memory_order_relaxed);
  out.ranks_lost = inj != nullptr ? inj->dead_count() : 0;
  out.aborted = shared.aborted;
  out.abort_ns = shared.abort_ns;
  out.value = prog.final_value(query, dg, ps, shared.last);
  return out;
}

std::vector<Value> gather_values(const graph::DistGraph& dg,
                                 ProgramState& ps) {
  if (!ps.with_values()) return {};
  std::vector<Value> v(dg.n, 0);
  for (int r = 0; r < dg.part.np(); ++r) {
    const auto& lg = dg.locals[static_cast<std::size_t>(r)];
    auto vo = ps.val_out(r);
    for (std::uint64_t lv = 0; lv < lg.owned(); ++lv)
      v[lg.vbegin + lv] = vo[lv];
  }
  return v;
}

}  // namespace numabfs::engine
