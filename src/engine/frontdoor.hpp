#pragma once
/// \file frontdoor.hpp
/// Replicated serving tier over the batched MS-BFS engine: R replica
/// clusters (each a full simulated NUMA cluster with its own chaos plan)
/// behind one admission point — the *front door*.
///
/// The front door adds three behaviors the single-cluster QueryEngine
/// cannot express:
///
///  1. **SLO-aware admission.** Queries carry a priority class derived
///     from their kind (full-distance > k-hop > reachability). Batches are
///     formed most-critical-first, and when the trailing-mean wave-time
///     estimate says a k-hop or reachability query cannot meet its
///     class deadline, it is *degraded* to an exact cached answer (see
///     below) or *shed* — full-distance queries are never shed.
///
///  2. **Graceful degradation.** Completed full-distance lanes feed a
///     degradation cache: per-source distance arrays and connected-
///     component labels (the graph is undirected, so a drained
///     full-distance BFS labels its source's entire component). Cached
///     entries are stamped with the virtual instant they became available,
///     so a lookup never uses a result "from the future" of an overlapping
///     replica wave. Cache hits give *exact* answers for s-t reachability
///     (same/different component) and k-hop counts (count of cached
///     distances <= k) at effectively zero serving cost.
///
///  3. **Mid-query failover.** Replica health is tracked by virtual-time
///     heartbeats with exponential-backoff probing (closed form:
///     `heartbeat_detect_ns`). When a replica suffers a whole-replica
///     outage (`outage:at=` in its fault plan) mid-wave, the wave aborts
///     at its abort horizon, the door observes the data-path timeout, and
///     the batch's unretired lanes are re-admitted to a healthy replica —
///     resuming from the last exported MS-BFS checkpoint epoch rather than
///     from scratch. The detection gap and the resume are charged in
///     virtual time, so the "failover blip" is a measured quantity.
///
/// Everything is bit-deterministic for a fixed (workload seed, config,
/// per-replica fault plans) tuple, including the per-class latency
/// percentiles and the failover blip.

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "engine/engine.hpp"

namespace numabfs::engine {

/// Priority classes, most- to least-critical. The shedding policy degrades
/// strictly bottom-up: reachability first, then k-hop, never full-distance.
/// `analytics` (the program workloads: SSSP, PageRank, components,
/// triangles) is a background class — it is never shed or degraded, but it
/// only dispatches when no wave query is waiting, and each analytics query
/// owns its whole dispatch (programs cannot share a wave's lanes).
enum class SloClass : int {
  full_distance = 0,
  k_hop,
  reachability,
  analytics,
  kCount
};

const char* to_string(SloClass c);
SloClass slo_class_of(QueryKind k);

/// Per-class latency objective (arrival to completion, virtual ns).
struct SloSpec {
  double full_ns = 80e6;
  double khop_ns = 20e6;
  double reach_ns = 10e6;
  /// Background analytics objective — reporting only: analytics queries are
  /// never shed or degraded against it.
  double analytics_ns = 1e9;

  double deadline_ns(SloClass c) const {
    switch (c) {
      case SloClass::full_distance: return full_ns;
      case SloClass::k_hop: return khop_ns;
      case SloClass::reachability: return reach_ns;
      case SloClass::analytics: return analytics_ns;
      case SloClass::kCount: break;
    }
    return full_ns;
  }
};

/// Virtual instant the front door confirms a replica outage at `outage_ns`:
/// liveness probes fire every `period_ns` from t = 0; the first probe at or
/// after the outage goes unanswered, and the prober re-probes with
/// exponential backoff (`backoff_ns`, doubling) until `threshold`
/// consecutive probes failed. Closed form, so detection is exact and
/// deterministic: t0 + backoff * (2^(threshold-1) - 1) with t0 the first
/// failing probe instant. Returns +inf for an infinite outage time.
double heartbeat_detect_ns(double outage_ns, double period_ns,
                           double backoff_ns, int threshold);

struct FrontDoorConfig {
  int max_batch = 64;     ///< lanes per wave (1..64)
  int queue_depth = 256;  ///< admission bound across all classes
  bool track_parents = false;
  SloSpec slo;
  double hb_period_ns = 250e3;  ///< heartbeat probe period
  double hb_backoff_ns = 50e3;  ///< first re-probe backoff (doubles)
  int hb_threshold = 3;         ///< consecutive losses confirming death
  int export_every = 1;         ///< checkpoint epoch stride (levels)
  bool checkpoint_waves = true; ///< export failover epochs (costs time)
  bool degrade = true;          ///< cached degraded answers (off: shed)
  int est_window = 8;           ///< trailing waves in the time estimate
  ProgramParams programs;       ///< knobs of the analytics workloads
  /// Optional per-wave observer: (replica, batch, result, state) — the
  /// test hook for validating lane state in place before reuse.
  std::function<void(int, std::span<const WaveQuery>, const WaveResult&,
                     WaveState&)>
      sink;
  /// Optional dynamic-graph pin hook (engine.hpp). When set, every fresh
  /// wave pins a snapshot at dispatch and serves that epoch; the pinned
  /// view travels with the wave's failover unit, so a mid-query failover
  /// resumes against the SAME snapshot on the healthy replica — never a
  /// newer epoch that would make the checkpointed lane state inconsistent.
  GraphSource graph_source;

  /// Validate invariants; returns an actionable error message or empty.
  /// The FrontDoor ctor calls this and throws on a non-empty result.
  std::string validate() const;
};

/// How one query left the tier.
enum class Outcome {
  pending,      ///< internal: not resolved yet
  served,       ///< rode a wave to completion, no disruption
  failed_over,  ///< completed after a mid-query replica failover
  degraded,     ///< answered exactly from the degradation cache
  shed,         ///< dropped by the deadline-aware admission policy
  lost,         ///< unservable: every replica was down
};

const char* to_string(Outcome o);

/// Per-query record (virtual-time accounting).
struct ServedQuery {
  int id = 0;
  QueryKind kind = QueryKind::full_distances;
  SloClass cls = SloClass::full_distance;
  Outcome outcome = Outcome::pending;
  double arrival_ns = 0;
  double admit_ns = 0;
  double start_ns = 0;     ///< dispatch of the (first) wave it rode
  double complete_ns = 0;  ///< NaN for shed/lost
  int replica = -1;        ///< replica that completed it (-1: cache/shed)
  /// Graph epoch the completing wave was pinned to (0: static graph or
  /// cache-degraded answer). A failed-over query keeps its original epoch.
  std::uint64_t epoch = 0;
  int complete_level = 0;
  bool reached = false;
  std::uint64_t visited = 0;
  /// Analytics (program) queries: the scalar answer. 0 for wave kinds.
  double value = 0;
  bool slo_met = false;

  double latency_ns() const { return complete_ns - arrival_ns; }
};

/// Per-class aggregate. `attainment` counts a submitted query as met only
/// when it completed (served/failed-over/degraded) within its deadline —
/// shed and lost queries are misses by definition.
struct ClassStats {
  int submitted = 0;
  int served = 0;    ///< incl. failed-over
  int degraded = 0;
  int shed = 0;      ///< incl. lost
  double mean_ns = 0;
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  double attainment = 1.0;
};

struct FrontDoorReport {
  std::vector<ServedQuery> results;  ///< ordered by query id
  ClassStats cls[static_cast<int>(SloClass::kCount)];
  int waves = 0;
  int program_runs = 0;   ///< singleton analytics dispatches (not waves)
  int levels = 0;
  int failovers = 0;      ///< resume/re-run dispatches after an abort
  int replicas_lost = 0;  ///< replicas confirmed down by the end
  int backpressured = 0;
  int degraded = 0;
  int shed = 0;  ///< incl. lost
  double total_ns = 0;
  double busy_ns = 0;  ///< summed wave time across replicas (overlaps)
  double shed_rate = 0;
  /// Largest service gap of any failover: resume dispatch minus the
  /// in-wave abort instant (detection latency + healthy-replica wait).
  double failover_blip_ns = 0;
  int recoveries = 0;  ///< in-replica crash-recovery level re-runs
  int ranks_lost = 0;  ///< max ranks lost in any single wave
  sim::Counters counters;  ///< summed over replicas and waves
};

/// One replica of the tier: a cluster (with its chaos plan attached via
/// set_fault_injector) and the distributed graph it serves. All replicas
/// must share the cluster shape and graph content — checkpoints migrate
/// between them on failover.
struct ReplicaHandle {
  rt::Cluster* cluster = nullptr;
  const graph::DistGraph* dg = nullptr;
};

class FrontDoor {
 public:
  FrontDoor(const bfs::Config& cfg, FrontDoorConfig fdc,
            std::vector<ReplicaHandle> replicas);

  /// Serve a workload (sorted by arrival_ns; QueryEngine::generate output
  /// already is). Returns when every query is served, degraded, shed or
  /// lost.
  FrontDoorReport serve(std::span<const Query> queries);

  int replicas() const { return static_cast<int>(replicas_.size()); }

 private:
  bfs::Config cfg_;
  FrontDoorConfig fdc_;
  std::vector<ReplicaHandle> replicas_;
  std::vector<WaveState> states_;  ///< one reusable WaveState per replica
};

}  // namespace numabfs::engine
