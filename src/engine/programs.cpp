#include "engine/programs.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace numabfs::engine {

const char* to_string(ProgramWorkload w) {
  switch (w) {
    case ProgramWorkload::sssp: return "sssp";
    case ProgramWorkload::pagerank: return "pagerank";
    case ProgramWorkload::components: return "components";
    case ProgramWorkload::triangles: return "triangles";
  }
  return "?";
}

namespace {

/// Set out bit `lv` (and its summary group); true if newly set, so callers
/// count distinct next-frontier members.
inline bool set_out(PartCtx& ctx, std::uint64_t lv) {
  std::uint64_t& w = ctx.out_bits[lv >> 6];
  const std::uint64_t m = 1ull << (lv & 63);
  if ((w & m) != 0) return false;
  w |= m;
  ctx.out_summary.mark(lv);
  return true;
}

/// Frontier membership of global vertex u. Blocks are 64-aligned
/// (Partition1D), so a vertex's frontier bit position IS its global id.
inline bool in_frontier(const PartCtx& ctx, graph::Vertex u) {
  return ProgramState::test(ctx.frontier, u);
}

/// Visit the owned frontier members of this partition (local ids).
template <class F>
void for_owned_frontier(const PartCtx& ctx, F&& f) {
  const std::uint64_t w0 = ctx.vbegin >> 6;
  const std::uint64_t nw = ctx.block >> 6;
  const std::uint64_t owned = ctx.lg.owned();
  for (std::uint64_t w = 0; w < nw; ++w) {
    std::uint64_t bits = ctx.frontier[w0 + w];
    while (bits) {
      const std::uint64_t lv =
          w * 64 + static_cast<std::uint64_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (lv < owned) f(lv);
    }
  }
}

// ---------------------------------------------------------------- SSSP --

class SsspProgram final : public FrontierProgram {
 public:
  SsspProgram(const graph::DistGraph& dg, const ProgramParams& pp)
      : dg_(dg),
        w_{pp.weight_seed, pp.sssp_max_weight},
        delta_(std::max<std::uint64_t>(1, pp.sssp_delta)) {}

  const char* name() const override { return "sssp"; }
  int scalar_count() const override { return 2; }  // [bucket, mode]

  ProgStats seed(const ProgramQuery& q, PartCtx& ctx) const override {
    ProgStats st;
    std::fill(ctx.val_out.begin(), ctx.val_out.end(), kProgInf);
    if (q.source >= ctx.vbegin && q.source < ctx.lg.vend) {
      const std::uint64_t lv = q.source - ctx.vbegin;
      ctx.val_out[lv] = 0;
      set_out(ctx, lv);
      st.changed = 1;
      st.frontier_edges = ctx.lg.degree(lv);
    }
    return st;
  }

  ProgStats advance(const ProgramQuery&, PartCtx& ctx,
                    std::span<const std::uint64_t> scalars, int /*level*/,
                    int /*dir*/, bool /*use_summary*/) const override {
    ProgStats st;
    const std::uint64_t lo = scalars[0] * delta_;
    std::uint64_t hi = lo + delta_;
    if (hi < lo) hi = kProgInf;  // bucket at the range end

    if (scalars[1] == 0) {
      // Relax level: push the bucket's frontier members' edges. A source is
      // relaxed iff its (replicated) distance sits in the current bucket —
      // out-of-bucket improvements wait in the owned arrays for a reseed.
      const auto& keys = ctx.lg.td_keys;
      for (std::size_t k = 0; k < keys.size(); ++k) {
        const graph::Vertex u = keys[k];
        if (!in_frontier(ctx, u)) continue;
        const std::uint64_t du = ctx.values[u];
        if (du < lo || du >= hi) continue;
        ++st.sources;
        const auto group = ctx.lg.td_group(k);
        st.scanned += group.size();
        for (graph::Vertex v : group) {
          const std::uint64_t nd = du + w_(u, v);
          const std::uint64_t lv = v - ctx.vbegin;
          if (nd < ctx.val_out[lv]) {
            ctx.val_out[lv] = nd;
            if (set_out(ctx, lv)) ++st.changed;
            if (nd < hi) st.flags |= 1;  // intra-bucket progress
          }
        }
      }
      st.frontier_edges = st.scanned;
    } else {
      // Reseed level: re-ship the new bucket's members from the owned
      // distances (no relaxation; the exchange re-creates their frontier).
      const std::uint64_t owned = ctx.lg.owned();
      for (std::uint64_t lv = 0; lv < owned; ++lv) {
        const std::uint64_t d = ctx.val_out[lv];
        if (d >= lo && d < hi) {
          if (set_out(ctx, lv)) ++st.changed;
          st.frontier_edges += ctx.lg.degree(lv);
        }
      }
    }

    // Min unsettled distance (>= the bucket's upper bound): the next bucket
    // when this one drains, kProgInf when the computation is done.
    const std::uint64_t owned = ctx.lg.owned();
    for (std::uint64_t lv = 0; lv < owned; ++lv) {
      const std::uint64_t d = ctx.val_out[lv];
      if (d >= hi && d < st.min_word) st.min_word = d;
    }
    return st;
  }

  bool post_level(std::span<std::uint64_t> scalars, const ProgStats& rs,
                  int /*level*/) const override {
    if (scalars[1] == 1) {  // the reseed just ran; relax next
      scalars[1] = 0;
      return false;
    }
    if ((rs.flags & 1) != 0) return false;  // bucket still relaxing
    if (rs.min_word == kProgInf) return true;  // no unsettled vertex left
    scalars[0] = rs.min_word / delta_;
    scalars[1] = 1;  // reseed the new bucket next level
    return false;
  }

  double final_value(const ProgramQuery& q, const graph::DistGraph& dg,
                     ProgramState& ps, const ProgStats&) const override {
    const int owner = dg.part.owner(q.target);
    const std::uint64_t d =
        ps.val_out(owner)[q.target - dg.part.begin(owner)];
    return d == kProgInf ? std::numeric_limits<double>::infinity()
                         : static_cast<double>(d);
  }

 private:
  const graph::DistGraph& dg_;
  graph::EdgeWeights w_;
  std::uint64_t delta_;
};

// ------------------------------------------------------------ PageRank --

class PageRankProgram final : public FrontierProgram {
 public:
  PageRankProgram(const graph::DistGraph& dg, const ProgramParams& pp)
      : dg_(dg),
        d_(static_cast<float>(pp.pr_damping)),
        eps_(static_cast<float>(pp.pr_eps)),
        deg_(dg.n, 0) {
    for (int r = 0; r < dg.part.np(); ++r) {
      const auto& lg = dg.locals[static_cast<std::size_t>(r)];
      for (std::uint64_t lv = 0; lv < lg.owned(); ++lv)
        deg_[lg.vbegin + lv] = lg.degree(lv);
    }
  }

  const char* name() const override { return "pagerank"; }
  bool direction_optimizing() const override { return true; }

  ProgStats seed(const ProgramQuery&, PartCtx& ctx) const override {
    ProgStats st;
    const float r0 = 1.0f - d_;
    const std::uint64_t owned = ctx.lg.owned();
    std::fill(ctx.val_out.begin(), ctx.val_out.end(), pack_pr(0.0f, 0.0f));
    for (std::uint64_t lv = 0; lv < owned; ++lv) {
      ctx.val_out[lv] = pack_pr(0.0f, r0);
      if (r0 > eps_) {
        set_out(ctx, lv);
        ++st.changed;
        st.frontier_edges += ctx.lg.degree(lv);
      }
    }
    st.needy = owned;
    st.mu = ctx.lg.owned_edges();
    return st;
  }

  ProgStats advance(const ProgramQuery&, PartCtx& ctx,
                    std::span<const std::uint64_t>, int /*level*/, int dir,
                    bool use_summary) const override {
    ProgStats st;
    const std::uint64_t owned = ctx.lg.owned();
    if (dir == 0) {
      // Push. Commit the owned frontier members' residuals into their rank
      // first (the spread below reads the pre-level residuals from the
      // replica, so commit order cannot affect what gets spread) ...
      for_owned_frontier(ctx, [&](std::uint64_t lv) {
        const Value v = ctx.val_out[lv];
        ctx.val_out[lv] = pack_pr(pr_rank(v) + pr_residual(v), 0.0f);
        st.frontier_edges += ctx.lg.degree(lv);
      });
      // ... then scatter every frontier source's share to its owned
      // destinations through the top-down groups.
      const auto& keys = ctx.lg.td_keys;
      for (std::size_t k = 0; k < keys.size(); ++k) {
        const graph::Vertex u = keys[k];
        if (!in_frontier(ctx, u) || deg_[u] == 0) continue;
        const float share =
            d_ * pr_residual(ctx.values[u]) / static_cast<float>(deg_[u]);
        ++st.sources;
        const auto group = ctx.lg.td_group(k);
        st.scanned += group.size();
        for (graph::Vertex v : group) {
          const std::uint64_t lv = v - ctx.vbegin;
          const Value val = ctx.val_out[lv];
          ctx.val_out[lv] = pack_pr(pr_rank(val), pr_residual(val) + share);
        }
      }
      for (std::uint64_t lv = 0; lv < owned; ++lv) {
        if (pr_residual(ctx.val_out[lv]) > eps_) {
          set_out(ctx, lv);
          ++st.changed;
        }
      }
    } else {
      // Pull: gather every owned vertex's incoming shares from its frontier
      // in-neighbors (optionally skipping summary-empty groups).
      for (std::uint64_t lv = 0; lv < owned; ++lv) {
        const graph::Vertex v = static_cast<graph::Vertex>(ctx.vbegin + lv);
        float acc = 0.0f;
        for (graph::Vertex u : ctx.lg.bu_neighbors(lv)) {
          ++st.scanned;
          if (use_summary && !ctx.fsummary.covers(u)) continue;
          if (in_frontier(ctx, u) && deg_[u] != 0)
            acc += d_ * pr_residual(ctx.values[u]) /
                   static_cast<float>(deg_[u]);
        }
        const Value val = ctx.val_out[lv];
        float pv = pr_rank(val);
        float rv = pr_residual(val);
        if (in_frontier(ctx, v)) {
          pv += rv;
          rv = 0.0f;
          st.frontier_edges += ctx.lg.degree(lv);
        }
        rv += acc;
        ctx.val_out[lv] = pack_pr(pv, rv);
        if (rv > eps_) {
          set_out(ctx, lv);
          ++st.changed;
        }
      }
    }
    st.needy = owned;
    st.mu = ctx.lg.owned_edges();
    return st;
  }

  bool post_level(std::span<std::uint64_t>, const ProgStats& rs,
                  int /*level*/) const override {
    return rs.changed == 0;  // every residual fell under eps
  }

  double final_value(const ProgramQuery& q, const graph::DistGraph& dg,
                     ProgramState& ps, const ProgStats&) const override {
    const int owner = dg.part.owner(q.source);
    const Value v = ps.val_out(owner)[q.source - dg.part.begin(owner)];
    // Fold the sub-eps leftover residual in: tightens the estimate at no
    // cost (the true rank differs from p by at most the undistributed mass).
    return static_cast<double>(pr_rank(v)) +
           static_cast<double>(pr_residual(v));
  }

 private:
  const graph::DistGraph& dg_;
  float d_;
  float eps_;
  std::vector<std::uint64_t> deg_;
};

// -------------------------------------------------- Connected components --

class ComponentsProgram final : public FrontierProgram {
 public:
  explicit ComponentsProgram(const graph::DistGraph& dg) : dg_(dg) {}

  const char* name() const override { return "components"; }
  bool direction_optimizing() const override { return true; }

  ProgStats seed(const ProgramQuery&, PartCtx& ctx) const override {
    ProgStats st;
    const std::uint64_t owned = ctx.lg.owned();
    // Pad labels are kProgInf so they can never win a min.
    std::fill(ctx.val_out.begin(), ctx.val_out.end(), kProgInf);
    for (std::uint64_t lv = 0; lv < owned; ++lv) {
      ctx.val_out[lv] = ctx.vbegin + lv;
      set_out(ctx, lv);
      ++st.changed;
      st.frontier_edges += ctx.lg.degree(lv);
    }
    st.needy = owned;
    st.mu = ctx.lg.owned_edges();
    return st;
  }

  ProgStats advance(const ProgramQuery&, PartCtx& ctx,
                    std::span<const std::uint64_t>, int /*level*/, int dir,
                    bool use_summary) const override {
    ProgStats st;
    const std::uint64_t owned = ctx.lg.owned();
    if (dir == 0) {
      for_owned_frontier(ctx, [&](std::uint64_t lv) {
        st.frontier_edges += ctx.lg.degree(lv);
      });
      const auto& keys = ctx.lg.td_keys;
      for (std::size_t k = 0; k < keys.size(); ++k) {
        const graph::Vertex u = keys[k];
        if (!in_frontier(ctx, u)) continue;
        const std::uint64_t lu = ctx.values[u];
        ++st.sources;
        const auto group = ctx.lg.td_group(k);
        st.scanned += group.size();
        for (graph::Vertex v : group) {
          const std::uint64_t lv = v - ctx.vbegin;
          if (lu < ctx.val_out[lv]) {
            ctx.val_out[lv] = lu;
            if (set_out(ctx, lv)) ++st.changed;
          }
        }
      }
    } else {
      for (std::uint64_t lv = 0; lv < owned; ++lv) {
        const std::uint64_t cur = ctx.val_out[lv];
        std::uint64_t m = cur;
        for (graph::Vertex u : ctx.lg.bu_neighbors(lv)) {
          ++st.scanned;
          if (use_summary && !ctx.fsummary.covers(u)) continue;
          if (in_frontier(ctx, u) && ctx.values[u] < m) m = ctx.values[u];
        }
        if (m < cur) {
          ctx.val_out[lv] = m;
          if (set_out(ctx, lv)) ++st.changed;
        }
        if (in_frontier(ctx, static_cast<graph::Vertex>(ctx.vbegin + lv)))
          st.frontier_edges += ctx.lg.degree(lv);
      }
    }
    st.needy = owned;
    st.mu = ctx.lg.owned_edges();
    return st;
  }

  bool post_level(std::span<std::uint64_t>, const ProgStats& rs,
                  int /*level*/) const override {
    return rs.changed == 0;  // label fixpoint
  }

  double final_value(const ProgramQuery&, const graph::DistGraph& dg,
                     ProgramState& ps, const ProgStats&) const override {
    // Component count = vertices carrying their own id as label.
    std::uint64_t count = 0;
    for (int r = 0; r < dg.part.np(); ++r) {
      const auto& lg = dg.locals[static_cast<std::size_t>(r)];
      auto vo = ps.val_out(r);
      for (std::uint64_t lv = 0; lv < lg.owned(); ++lv)
        if (vo[lv] == lg.vbegin + lv) ++count;
    }
    return static_cast<double>(count);
  }

 private:
  const graph::DistGraph& dg_;
};

// ------------------------------------------------------------ Triangles --

class TrianglesProgram final : public FrontierProgram {
 public:
  explicit TrianglesProgram(const graph::DistGraph& dg) : dg_(dg) {
    // Forward adjacency: sorted, deduplicated, greater-id neighbors. Built
    // host-side from the slices (so a merged epoch view counts its own
    // edge set); each triangle u < v < w is counted once, at u.
    off_.assign(dg.n + 1, 0);
    std::vector<graph::Vertex> row;
    for (int r = 0; r < dg.part.np(); ++r) {
      const auto& lg = dg.locals[static_cast<std::size_t>(r)];
      for (std::uint64_t lv = 0; lv < lg.owned(); ++lv) {
        const graph::Vertex v = static_cast<graph::Vertex>(lg.vbegin + lv);
        row.clear();
        for (graph::Vertex u : lg.bu_neighbors(lv))
          if (u > v) row.push_back(u);
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
        fwd_.insert(fwd_.end(), row.begin(), row.end());
        off_[v + 1] = fwd_.size();
      }
    }
  }

  const char* name() const override { return "triangles"; }
  bool with_values() const override { return false; }

  ProgStats seed(const ProgramQuery&, PartCtx& ctx) const override {
    // Every owned vertex enters the (single) counting level's frontier.
    ProgStats st;
    const std::uint64_t owned = ctx.lg.owned();
    for (std::uint64_t lv = 0; lv < owned; ++lv) {
      set_out(ctx, lv);
      ++st.changed;
    }
    st.frontier_edges = ctx.lg.owned_edges();
    return st;
  }

  ProgStats advance(const ProgramQuery&, PartCtx& ctx,
                    std::span<const std::uint64_t>, int /*level*/, int,
                    bool) const override {
    ProgStats st;
    const std::uint64_t owned = ctx.lg.owned();
    for (std::uint64_t lv = 0; lv < owned; ++lv) {
      const graph::Vertex v = static_cast<graph::Vertex>(ctx.vbegin + lv);
      for (std::uint64_t i = off_[v]; i < off_[v + 1]; ++i) {
        const graph::Vertex u = fwd_[i];
        std::uint64_t a = off_[v], b = off_[u];
        while (a < off_[v + 1] && b < off_[u + 1]) {
          ++st.scanned;
          if (fwd_[a] < fwd_[b]) {
            ++a;
          } else if (fwd_[b] < fwd_[a]) {
            ++b;
          } else {
            ++st.acc;
            ++a;
            ++b;
          }
        }
        ++st.sources;
      }
    }
    return st;  // changed == 0: the frontier drains after one level
  }

  bool post_level(std::span<std::uint64_t>, const ProgStats&,
                  int /*level*/) const override {
    return true;  // one counting level
  }

  double final_value(const ProgramQuery&, const graph::DistGraph&,
                     ProgramState&, const ProgStats& last) const override {
    return static_cast<double>(last.acc);  // sum-reduced global count
  }

 private:
  const graph::DistGraph& dg_;
  std::vector<std::uint64_t> off_;
  std::vector<graph::Vertex> fwd_;
};

}  // namespace

std::unique_ptr<FrontierProgram> make_program(ProgramWorkload w,
                                              const graph::DistGraph& dg,
                                              const ProgramParams& pp) {
  switch (w) {
    case ProgramWorkload::sssp:
      return std::make_unique<SsspProgram>(dg, pp);
    case ProgramWorkload::pagerank:
      return std::make_unique<PageRankProgram>(dg, pp);
    case ProgramWorkload::components:
      return std::make_unique<ComponentsProgram>(dg);
    case ProgramWorkload::triangles:
      return std::make_unique<TrianglesProgram>(dg);
  }
  throw std::invalid_argument("make_program: unknown workload");
}

}  // namespace numabfs::engine
