#include "harness/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace numabfs::harness {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("Options: expected --key[=value], got " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos)
      kv_[arg] = "true";
    else
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

int Options::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoi(it->second);
}

std::uint64_t Options::get_u64(const std::string& key,
                               std::uint64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoull(it->second);
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

std::string Options::get_str(const std::string& key,
                             const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace numabfs::harness
