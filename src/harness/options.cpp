#include "harness/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace numabfs::harness {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const std::string& why) {
  throw std::invalid_argument("Options: --" + key + "=" + value + ": " + why);
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("Options: expected --key[=value], got " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos)
      kv_[arg] = "true";
    else
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

int Options::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(it->second, &pos);
  } catch (const std::invalid_argument&) {
    bad_value(key, it->second, "expected an integer");
  } catch (const std::out_of_range&) {
    bad_value(key, it->second, "integer out of range");
  }
  if (pos != it->second.size())
    bad_value(key, it->second, "trailing characters after integer");
  return v;
}

std::uint64_t Options::get_u64(const std::string& key,
                               std::uint64_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  if (!it->second.empty() && it->second[0] == '-')
    bad_value(key, it->second, "expected a non-negative integer");
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(it->second, &pos);
  } catch (const std::invalid_argument&) {
    bad_value(key, it->second, "expected a non-negative integer");
  } catch (const std::out_of_range&) {
    bad_value(key, it->second, "integer out of range");
  }
  if (pos != it->second.size())
    bad_value(key, it->second, "trailing characters after integer");
  return v;
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::invalid_argument&) {
    bad_value(key, it->second, "expected a number");
  } catch (const std::out_of_range&) {
    bad_value(key, it->second, "number out of range");
  }
  if (pos != it->second.size())
    bad_value(key, it->second, "trailing characters after number");
  return v;
}

std::string Options::get_str(const std::string& key,
                             const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

int Options::get_int_min(const std::string& key, int def, int lo) const {
  const int v = get_int(key, def);
  if (v < lo)
    bad_value(key, std::to_string(v),
              "must be >= " + std::to_string(lo));
  return v;
}

double Options::get_double_in(const std::string& key, double def, double lo,
                              double hi, bool lo_exclusive) const {
  const double v = get_double(key, def);
  const bool lo_ok = lo_exclusive ? v > lo : v >= lo;
  if (!lo_ok || v > hi)
    bad_value(key, std::to_string(v),
              "must be in " + std::string(lo_exclusive ? "(" : "[") +
                  std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return v;
}

std::uint64_t Options::get_u64_pow2(const std::string& key,
                                    std::uint64_t def) const {
  const std::uint64_t v = get_u64(key, def);
  if (v == 0 || (v & (v - 1)) != 0)
    bad_value(key, std::to_string(v), "must be a power of two");
  return v;
}

}  // namespace numabfs::harness
