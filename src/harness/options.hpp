#pragma once
/// \file options.hpp
/// Minimal --key=value command-line parsing shared by benches and examples.
/// Every bench accepts at least --scale, --roots and --seed so the paper's
/// experiments can be rerun at larger sizes than the fast defaults.
///
/// All numeric getters reject malformed values (trailing junk, overflow,
/// empty) with a message naming the offending key and value instead of the
/// bare std::sto* behavior (silent prefix parse or a context-free
/// exception). The get_*_checked family additionally range-checks, so a
/// typo like --scale=-3 or --granularity=100 dies with an actionable
/// message before a multi-minute run starts.

#include <cstdint>
#include <map>
#include <string>

namespace numabfs::harness {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const { return kv_.count(key) != 0; }
  int get_int(const std::string& key, int def) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_str(const std::string& key, const std::string& def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// get_int, additionally requiring value >= lo.
  int get_int_min(const std::string& key, int def, int lo) const;
  /// get_double, additionally requiring lo < v <= hi (lo_exclusive) or
  /// lo <= v <= hi.
  double get_double_in(const std::string& key, double def, double lo,
                       double hi, bool lo_exclusive = false) const;
  /// get_u64, additionally requiring a power of two (e.g. summary
  /// granularities, which index bit blocks).
  std::uint64_t get_u64_pow2(const std::string& key, std::uint64_t def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace numabfs::harness
