#pragma once
/// \file options.hpp
/// Minimal --key=value command-line parsing shared by benches and examples.
/// Every bench accepts at least --scale, --roots and --seed so the paper's
/// experiments can be rerun at larger sizes than the fast defaults.

#include <cstdint>
#include <map>
#include <string>

namespace numabfs::harness {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const { return kv_.count(key) != 0; }
  int get_int(const std::string& key, int def) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_str(const std::string& key, const std::string& def) const;
  bool get_bool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace numabfs::harness
