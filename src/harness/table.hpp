#pragma once
/// \file table.hpp
/// Aligned plain-text table printer for the bench binaries — each bench
/// prints the rows/series of the paper figure it regenerates.

#include <iosfwd>
#include <string>
#include <vector>

namespace numabfs::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os) const;

  /// Fixed-precision double formatting.
  static std::string fmt(double v, int precision = 2);
  /// Scaled formats used throughout the benches.
  static std::string ms(double ns, int precision = 2);   ///< ns -> "x.xx ms"
  static std::string gteps(double teps, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace numabfs::harness
