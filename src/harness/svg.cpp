#include "harness/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace numabfs::harness {

namespace {

// Layout constants (pixels).
constexpr double kWidth = 860, kHeight = 480;
constexpr double kLeft = 90, kRight = 30, kTop = 60, kBottom = 80;
constexpr double kPlotW = kWidth - kLeft - kRight;
constexpr double kPlotH = kHeight - kTop - kBottom;

const char* kPalette[] = {"#4878d0", "#ee854a", "#6acc64", "#d65f5f",
                          "#956cb4", "#8c613c", "#dc7ec0", "#797979"};

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

/// A "nice" tick step covering [0, vmax] in ~5 steps.
double nice_step(double vmax) {
  if (vmax <= 0) return 1.0;
  const double raw = vmax / 5.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (double m : {1.0, 2.0, 5.0, 10.0})
    if (raw <= m * mag) return m * mag;
  return 10.0 * mag;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Shared chrome: canvas, axes, y grid/ticks, labels; `body` is the marks.
std::string render_frame(const std::string& title, const std::string& x_label,
                         const std::string& y_label, double vmax,
                         std::ostringstream& body) {
  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << kWidth
     << "' height='" << kHeight << "' viewBox='0 0 " << kWidth << " "
     << kHeight << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n"
     << "<text x='" << kWidth / 2 << "' y='28' text-anchor='middle' "
        "font-family='sans-serif' font-size='18'>"
     << escape(title) << "</text>\n";

  // Axes.
  os << "<line x1='" << kLeft << "' y1='" << kTop << "' x2='" << kLeft
     << "' y2='" << kTop + kPlotH << "' stroke='black'/>\n"
     << "<line x1='" << kLeft << "' y1='" << kTop + kPlotH << "' x2='"
     << kLeft + kPlotW << "' y2='" << kTop + kPlotH << "' stroke='black'/>\n";

  // Y grid + ticks.
  const double step = nice_step(vmax);
  for (double v = 0; v <= vmax * 1.0001; v += step) {
    const double y = kTop + kPlotH - v / vmax * kPlotH;
    os << "<line x1='" << kLeft << "' y1='" << y << "' x2='" << kLeft + kPlotW
       << "' y2='" << y << "' stroke='#dddddd'/>\n"
       << "<text x='" << kLeft - 8 << "' y='" << y + 4
       << "' text-anchor='end' font-family='sans-serif' font-size='12'>"
       << fmt(v) << "</text>\n";
  }

  // Axis labels.
  os << "<text x='" << kLeft + kPlotW / 2 << "' y='" << kHeight - 12
     << "' text-anchor='middle' font-family='sans-serif' font-size='14'>"
     << escape(x_label) << "</text>\n"
     << "<text x='18' y='" << kTop + kPlotH / 2
     << "' text-anchor='middle' font-family='sans-serif' font-size='14' "
        "transform='rotate(-90 18 "
     << kTop + kPlotH / 2 << ")'>" << escape(y_label) << "</text>\n";

  os << body.str() << "</svg>\n";
  return os.str();
}

}  // namespace

std::string SvgChart::render_bars() const {
  double vmax = 0;
  for (const auto& s : series_)
    for (double v : s.values)
      if (std::isfinite(v)) vmax = std::max(vmax, v);
  if (vmax <= 0) vmax = 1;

  std::ostringstream body;
  const std::size_t ngroups = categories_.size();
  const std::size_t nseries = std::max<std::size_t>(1, series_.size());
  const double group_w = kPlotW / std::max<std::size_t>(1, ngroups);
  const double bar_w = group_w * 0.8 / static_cast<double>(nseries);

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char* color = kPalette[si % std::size(kPalette)];
    for (std::size_t gi = 0; gi < ngroups; ++gi) {
      if (gi >= series_[si].values.size()) continue;
      const double v = series_[si].values[gi];
      if (!std::isfinite(v)) continue;
      const double h = v / vmax * kPlotH;
      const double x = kLeft + static_cast<double>(gi) * group_w +
                       group_w * 0.1 + static_cast<double>(si) * bar_w;
      body << "<rect x='" << x << "' y='" << kTop + kPlotH - h << "' width='"
           << bar_w * 0.92 << "' height='" << h << "' fill='" << color
           << "'/>\n";
    }
  }
  // Category labels.
  for (std::size_t gi = 0; gi < ngroups; ++gi)
    body << "<text x='" << kLeft + (static_cast<double>(gi) + 0.5) * group_w
         << "' y='" << kTop + kPlotH + 18
         << "' text-anchor='middle' font-family='sans-serif' font-size='12'>"
         << escape(categories_[gi]) << "</text>\n";
  // Legend.
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const double y = kTop + 4 + static_cast<double>(si) * 18;
    body << "<rect x='" << kLeft + kPlotW - 170 << "' y='" << y
         << "' width='12' height='12' fill='"
         << kPalette[si % std::size(kPalette)] << "'/>\n"
         << "<text x='" << kLeft + kPlotW - 152 << "' y='" << y + 10
         << "' font-family='sans-serif' font-size='12'>"
         << escape(series_[si].name) << "</text>\n";
  }

  return render_frame(title_, x_label_, y_label_, vmax, body);
}

std::string SvgChart::render_lines() const {
  double vmax = 0;
  for (const auto& s : series_)
    for (double v : s.values)
      if (std::isfinite(v)) vmax = std::max(vmax, v);
  if (vmax <= 0) vmax = 1;

  std::ostringstream body;
  const std::size_t npts = categories_.size();
  const double dx = kPlotW / std::max<std::size_t>(1, npts - 1);

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char* color = kPalette[si % std::size(kPalette)];
    std::ostringstream pts;
    for (std::size_t pi = 0; pi < npts && pi < series_[si].values.size();
         ++pi) {
      const double v = series_[si].values[pi];
      if (!std::isfinite(v)) continue;
      const double x = kLeft + static_cast<double>(pi) * dx;
      const double y = kTop + kPlotH - v / vmax * kPlotH;
      pts << (pts.tellp() > 0 ? " " : "") << fmt(x) << "," << fmt(y);
      body << "<circle cx='" << x << "' cy='" << y << "' r='3.5' fill='"
           << color << "'/>\n";
    }
    body << "<polyline points='" << pts.str() << "' fill='none' stroke='"
         << color << "' stroke-width='2'/>\n";
  }
  for (std::size_t pi = 0; pi < npts; ++pi)
    body << "<text x='" << kLeft + static_cast<double>(pi) * dx << "' y='"
         << kTop + kPlotH + 18
         << "' text-anchor='middle' font-family='sans-serif' font-size='12'>"
         << escape(categories_[pi]) << "</text>\n";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const double y = kTop + 4 + static_cast<double>(si) * 18;
    body << "<rect x='" << kLeft + 10 << "' y='" << y
         << "' width='12' height='12' fill='"
         << kPalette[si % std::size(kPalette)] << "'/>\n"
         << "<text x='" << kLeft + 28 << "' y='" << y + 10
         << "' font-family='sans-serif' font-size='12'>"
         << escape(series_[si].name) << "</text>\n";
  }

  return render_frame(title_, x_label_, y_label_, vmax, body);
}

namespace {
void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("SvgChart: cannot open " + path);
  f << content;
  if (!f) throw std::runtime_error("SvgChart: write failed " + path);
}
}  // namespace

void SvgChart::write_bars(const std::string& path) const {
  write_file(path, render_bars());
}
void SvgChart::write_lines(const std::string& path) const {
  write_file(path, render_lines());
}

}  // namespace numabfs::harness
