#pragma once
/// \file graph500.hpp
/// Graph500-style evaluation harness (the paper's Section IV method):
/// generate one R-MAT graph, select roots, run N BFS iterations per
/// variant, and report the harmonic-mean TEPS plus the per-phase breakdown
/// averaged over iterations. All times are virtual (see DESIGN.md §5).

#include <cstdint>
#include <vector>

#include "bfs/config.hpp"
#include "bfs/hybrid.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "graph/rmat.hpp"
#include "numasim/topology.hpp"
#include "runtime/cluster.hpp"

namespace numabfs::harness {

/// One generated graph plus its evaluation roots, shared across cluster
/// shapes and variants so comparisons see identical inputs.
struct GraphBundle {
  graph::RmatParams params;
  graph::Csr csr;
  std::vector<graph::Vertex> roots;  ///< distinct, degree > 0

  static GraphBundle make(int scale, int edgefactor = 16,
                          std::uint64_t seed = 20120924, int max_roots = 64);

  /// Build from an external edge list (e.g. loaded via
  /// graph::load_edges) instead of the generator. `params.scale` is set to
  /// ceil(log2(num_vertices)) for reporting; roots are selected the same
  /// deterministic way.
  static GraphBundle from_edges(std::uint64_t num_vertices,
                                std::span<const graph::Edge> edges,
                                std::uint64_t seed = 20120924,
                                int max_roots = 64);
};

/// Aggregated result of one variant evaluation.
struct EvalResult {
  double harmonic_teps = 0;  ///< the Graph500 figure of merit
  double mean_time_ns = 0;
  std::uint64_t visited_mean = 0;
  int roots = 0;

  sim::PhaseProfile profile;  ///< per-rank mean, then averaged over roots
  double avg_bu_comm_phase_ns = 0;  ///< mean bottom-up comm phase (Fig. 13)
  double bu_comm_fraction = 0;  ///< bu_comm / total (Figs. 12/14)
  int mean_bu_levels = 0;

  std::vector<bfs::BfsRunResult> per_root;
};

struct ExperimentOptions {
  int nodes = 1;
  int ppn = 8;
  /// Scale the cache model so structure:LLC ratios match the paper's
  /// scale-32 runs (DESIGN.md §5).
  bool paper_cache_scaling = true;
  int weak_node = -1;          ///< node with degraded NIC (paper Fig. 13/15)
  double weak_node_factor = 0.5;
  sim::CostParams params{};    ///< base cost parameters (pre-scaling)
};

/// A cluster shape bound to a shared graph: builds the distributed slices
/// once, then evaluates variants on them.
class Experiment {
 public:
  Experiment(const GraphBundle& bundle, const ExperimentOptions& opt);

  /// Run `num_roots` BFS iterations (<= bundle roots) under `cfg`.
  EvalResult run(const bfs::Config& cfg, int num_roots);

  /// Run one root and return (result, parent array) for validation.
  std::pair<bfs::BfsRunResult, std::vector<graph::Vertex>> run_validated(
      const bfs::Config& cfg, graph::Vertex root);

  rt::Cluster& cluster() { return cluster_; }
  const graph::DistGraph& dist() const { return dist_; }
  const GraphBundle& bundle() const { return bundle_; }

 private:
  const GraphBundle& bundle_;
  rt::Cluster cluster_;
  graph::DistGraph dist_;
};

/// Harmonic mean (the Graph500 aggregation for TEPS). A zero, negative or
/// non-finite sample NaN-marks the aggregate — the series contains an
/// invalid measurement, so the mean is undefined rather than 0. Empty
/// input returns 0 (no series at all).
double harmonic_mean(const std::vector<double>& xs);

/// Arithmetic mean over the finite entries; non-finite values (NaN marks a
/// missing sample, e.g. a query that never completed) are skipped. 0 when
/// no finite entry exists.
double mean(const std::vector<double>& xs);

/// p-th percentile (p clamped to [0, 100]) by linear interpolation between
/// order statistics (the common "linear" / type-7 definition). Non-finite
/// entries are dropped first (they mark missing samples and would make the
/// sort order unspecified); 0 when no finite entry remains, the sole entry
/// for a single sample, min/max at p=0/p=100. Deterministic for a fixed
/// input, so latency SLO reports are bit-reproducible.
double percentile(std::vector<double> xs, double p);

}  // namespace numabfs::harness
