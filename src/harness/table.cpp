#include "harness/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace numabfs::harness {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());

  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << (i == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[i])) << c;
    }
    os << "\n";
  };

  line(headers_);
  std::string sep;
  for (std::size_t i = 0; i < widths.size(); ++i)
    sep += std::string(widths[i], '-') + (i + 1 < widths.size() ? "  " : "");
  os << sep << "\n";
  for (const auto& r : rows_) line(r);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::ms(double ns, int precision) {
  return fmt(ns / 1e6, precision) + " ms";
}

std::string Table::gteps(double teps, int precision) {
  return fmt(teps / 1e9, precision) + " GTEPS";
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace numabfs::harness
