#include "harness/graph500.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "bfs/state.hpp"
#include "graph/partition.hpp"

namespace numabfs::harness {

namespace {

/// Deterministic root selection: hash-walk the vertex space, keep
/// degree > 0 vertices (Graph500 requires searchable roots).
void select_roots(GraphBundle& b, std::uint64_t seed, int max_roots) {
  const std::uint64_t n = b.csr.num_vertices();
  std::uint64_t probe = seed;
  std::uint64_t attempts = 0;
  while (b.roots.size() < static_cast<size_t>(max_roots) &&
         attempts < 64 * static_cast<std::uint64_t>(max_roots) + 1024) {
    probe = graph::splitmix64(probe + ++attempts);
    const auto v = static_cast<graph::Vertex>(probe % n);
    if (b.csr.degree(v) == 0) continue;
    bool dup = false;
    for (graph::Vertex r : b.roots) dup = dup || r == v;
    if (!dup) b.roots.push_back(v);
  }
  if (b.roots.empty()) throw std::runtime_error("GraphBundle: no usable roots");
}

}  // namespace

GraphBundle GraphBundle::make(int scale, int edgefactor, std::uint64_t seed,
                              int max_roots) {
  GraphBundle b;
  b.params.scale = scale;
  b.params.edgefactor = edgefactor;
  b.params.seed = seed;
  const auto edges = graph::rmat_edges(b.params);
  b.csr = graph::Csr::from_edges(b.params.num_vertices(), edges);
  select_roots(b, seed, max_roots);
  return b;
}

GraphBundle GraphBundle::from_edges(std::uint64_t num_vertices,
                                    std::span<const graph::Edge> edges,
                                    std::uint64_t seed, int max_roots) {
  if (num_vertices == 0)
    throw std::invalid_argument("GraphBundle: empty vertex set");
  GraphBundle b;
  int scale = 0;
  while ((1ull << scale) < num_vertices) ++scale;
  b.params.scale = scale;
  b.params.edgefactor = static_cast<int>(
      edges.size() / std::max<std::uint64_t>(1, num_vertices));
  b.params.seed = seed;
  b.csr = graph::Csr::from_edges(num_vertices, edges);
  select_roots(b, seed, max_roots);
  return b;
}

namespace {

sim::Topology make_topology(const ExperimentOptions& opt) {
  sim::Topology t = sim::Topology::xeon_x7550_cluster(opt.nodes);
  if (opt.weak_node >= 0)
    t = t.with_weak_node(opt.weak_node, opt.weak_node_factor);
  return t;
}

sim::CostParams make_params(const GraphBundle& b,
                            const ExperimentOptions& opt) {
  sim::CostParams p = opt.params;
  if (opt.paper_cache_scaling)
    p = p.with_paper_cache_scaling(b.params.num_vertices());
  return p;
}

}  // namespace

Experiment::Experiment(const GraphBundle& bundle, const ExperimentOptions& opt)
    : bundle_(bundle),
      cluster_(make_topology(opt), make_params(bundle, opt), opt.ppn),
      dist_(graph::DistGraph::build(
          bundle.csr,
          graph::Partition1D(bundle.csr.num_vertices(), cluster_.nranks()))) {}

EvalResult Experiment::run(const bfs::Config& cfg, int num_roots) {
  if (const std::string err = cfg.validate(); !err.empty())
    throw std::invalid_argument("Experiment::run: " + err);
  const int nr = std::min<int>(num_roots, static_cast<int>(bundle_.roots.size()));

  EvalResult res;
  res.roots = nr;
  bfs::DistState st(dist_, cfg, cluster_.topo().nodes(), cluster_.ppn());

  std::vector<double> teps;
  double time_sum = 0;
  std::uint64_t visited_sum = 0;
  sim::PhaseProfile prof_sum;
  double bu_phase_sum = 0;
  int bu_phase_runs = 0;
  int bu_levels_sum = 0;

  for (int i = 0; i < nr; ++i) {
    const bfs::BfsRunResult r = bfs::run_bfs(cluster_, dist_, st,
                                             bundle_.roots[static_cast<size_t>(i)]);
    teps.push_back(r.teps());
    time_sum += r.time_ns;
    visited_sum += r.visited;
    prof_sum += r.profile_avg;
    if (r.bu_exchanges > 0) {
      bu_phase_sum += r.avg_bu_comm_ns();
      ++bu_phase_runs;
    }
    bu_levels_sum += r.bu_levels;
    res.per_root.push_back(std::move(r));
  }

  res.harmonic_teps = harmonic_mean(teps);
  res.mean_time_ns = time_sum / nr;
  res.visited_mean = visited_sum / static_cast<std::uint64_t>(nr);
  res.profile = prof_sum.scaled(1.0 / nr);
  res.profile.counters() = prof_sum.counters();
  res.avg_bu_comm_phase_ns =
      bu_phase_runs > 0 ? bu_phase_sum / bu_phase_runs : 0.0;
  const double tot = res.profile.total_ns();
  res.bu_comm_fraction =
      tot > 0 ? res.profile.get(sim::Phase::bu_comm) / tot : 0.0;
  res.mean_bu_levels = bu_levels_sum / nr;
  return res;
}

std::pair<bfs::BfsRunResult, std::vector<graph::Vertex>>
Experiment::run_validated(const bfs::Config& cfg, graph::Vertex root) {
  bfs::DistState st(dist_, cfg, cluster_.topo().nodes(), cluster_.ppn());
  bfs::BfsRunResult r = bfs::run_bfs(cluster_, dist_, st, root);
  return {std::move(r), bfs::gather_parents(dist_, st)};
}

double harmonic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  for (double x : xs) {
    // A zero, negative or non-finite TEPS sample means the run it came
    // from produced no valid figure of merit; the harmonic mean of the
    // series is then undefined. NaN-mark the aggregate (the same policy
    // mean/percentile apply to per-sample gaps) instead of returning 0.0,
    // which a dashboard would read as a real measurement, or dividing by
    // zero on a 1/x term.
    if (!std::isfinite(x) || x <= 0.0)
      return std::numeric_limits<double>::quiet_NaN();
  }
  double inv = 0.0;
  for (double x : xs) inv += 1.0 / x;
  return static_cast<double>(xs.size()) / inv;
}

double mean(const std::vector<double>& xs) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (!std::isfinite(x)) continue;  // NaN marks a missing sample
    sum += x;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double percentile(std::vector<double> xs, double p) {
  // Non-finite entries mark missing samples (e.g. a query that never
  // completed); they must not participate — NaN would also make the sort
  // order unspecified, poisoning every order statistic around it.
  xs.erase(std::remove_if(xs.begin(), xs.end(),
                          [](double x) { return !std::isfinite(x); }),
           xs.end());
  if (xs.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];  // any p: the only order statistic
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  if (lo >= xs.size() - 1) lo = xs.size() - 2;  // p=100: idx == size-1
  const std::size_t hi = lo + 1;
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace numabfs::harness
