#pragma once
/// \file svg.hpp
/// Dependency-free SVG chart emitter, so the bench binaries can regenerate
/// the paper's *figures*, not just their tables (`--svg=DIR` on the key
/// benches). Supports grouped bar charts (Figs. 9/10/13) and line charts
/// (Figs. 12/15/16). Output is deterministic.

#include <string>
#include <vector>

namespace numabfs::harness {

class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  /// X-axis category labels (one per group/point).
  void set_categories(std::vector<std::string> cats) {
    categories_ = std::move(cats);
  }
  /// One series = one bar color / one line. Values align with categories;
  /// use NaN for a missing point.
  void add_series(const std::string& name, std::vector<double> values) {
    series_.push_back({name, std::move(values)});
  }

  /// Render as grouped bars / as lines with markers.
  std::string render_bars() const;
  std::string render_lines() const;

  /// Convenience: render and write to `path`; throws on I/O failure.
  void write_bars(const std::string& path) const;
  void write_lines(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> values;
  };

  std::string title_, x_label_, y_label_;
  std::vector<std::string> categories_;
  std::vector<Series> series_;
};

}  // namespace numabfs::harness
