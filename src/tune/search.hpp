#pragma once
/// \file search.hpp
/// Offline profile search (DESIGN.md §15): coordinate descent over a
/// discrete knob grid with memoization and early directional pruning.
/// The objective is whatever the caller measures — in practice a bench
/// harness running a pinned series and reading the metrics registry —
/// so the search itself is pure control logic and fully deterministic.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace numabfs::tune {

/// One knob axis: `size` discrete settings indexed 0..size-1. The mapping
/// from index to knob value lives in the caller's objective.
struct Dim {
  std::string name;
  int size = 1;
};

/// Returns the score of one grid point (higher is better), or nullopt when
/// the combination is invalid (e.g. fails Config::validate) — invalid
/// points are recorded as pruned and never retried.
using Objective =
    std::function<std::optional<double>(const std::vector<int>&)>;

struct SearchOptions {
  /// Full passes over all dimensions; descent also stops early once a
  /// whole round yields no improvement.
  int max_rounds = 4;
  /// Stop scanning a direction along an axis after this many consecutive
  /// non-improving evaluations (the "early pruning" of the grid).
  int prune_after = 2;
};

struct SearchResult {
  std::vector<int> best;      ///< best point found (indices per Dim)
  double best_score = 0.0;    ///< objective at `best`
  int evaluations = 0;        ///< objective calls that actually ran
  int cache_hits = 0;         ///< grid points re-visited via the memo table
  int invalid = 0;            ///< points the objective rejected
  int rounds = 0;             ///< coordinate-descent rounds executed
  std::vector<std::string> log;  ///< human-readable descent trace
};

/// Coordinate descent from `start`, optionally pre-scoring `extra_seeds`
/// (e.g. the hand-picked ladder) and descending from the best of them —
/// which guarantees the result is >= every seed by construction.
SearchResult coordinate_descent(const std::vector<Dim>& dims,
                                const Objective& objective,
                                std::vector<int> start,
                                const std::vector<std::vector<int>>& extra_seeds = {},
                                SearchOptions opt = {});

}  // namespace numabfs::tune
