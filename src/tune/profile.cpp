#include "tune/profile.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <variant>

#include "bfs2d/bfs2d.hpp"
#include "engine/frontdoor.hpp"

namespace numabfs::tune {

namespace {

// ---- writing -----------------------------------------------------------

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
  return out;
}

// ---- minimal JSON reader (objects/arrays/strings/numbers/bools) --------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  const JsonObject& obj(const char* what) const {
    if (!is_object())
      throw std::runtime_error(std::string("profile: ") + what +
                               " is not an object");
    return std::get<JsonObject>(v);
  }
  const JsonArray& arr(const char* what) const {
    if (!std::holds_alternative<JsonArray>(v))
      throw std::runtime_error(std::string("profile: ") + what +
                               " is not an array");
    return std::get<JsonArray>(v);
  }
  const std::string& str(const char* what) const {
    if (!std::holds_alternative<std::string>(v))
      throw std::runtime_error(std::string("profile: ") + what +
                               " is not a string");
    return std::get<std::string>(v);
  }
  double number(const char* what) const {
    if (!std::holds_alternative<double>(v))
      throw std::runtime_error(std::string("profile: ") + what +
                               " is not a number");
    return std::get<double>(v);
  }
  bool boolean(const char* what) const {
    if (!std::holds_alternative<bool>(v))
      throw std::runtime_error(std::string("profile: ") + what +
                               " is not a bool");
    return std::get<bool>(v);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("profile: JSON parse error at byte " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue{string()};
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue{true};
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue{false};
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{nullptr};
    }
    return JsonValue{number()};
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    try {
      return std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number '" + s_.substr(start, pos_ - start) + "'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{out};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.emplace(std::move(key), value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue{out};
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{out};
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue{out};
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---- field accessors ---------------------------------------------------

const JsonValue& get(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end())
    throw std::runtime_error(std::string("profile: missing field '") + key +
                             "'");
  return it->second;
}

int get_int(const JsonObject& o, const char* key) {
  return static_cast<int>(get(o, key).number(key));
}

// ---- enum <-> string (round-trips through the existing to_string) ------

template <typename E>
E parse_enum(const std::string& s, std::initializer_list<E> all,
             const char* what) {
  for (E e : all)
    if (s == to_string(e)) return e;
  throw std::runtime_error(std::string("profile: unknown ") + what + " '" +
                           s + "'");
}

bfs::Config parse_config(const JsonObject& o) {
  using namespace bfs;
  Config c;
  c.bind = parse_enum(get(o, "bind").str("bind"),
                      {BindMode::noflag, BindMode::interleave,
                       BindMode::bind_to_socket},
                      "bind mode");
  c.sharing = parse_enum(get(o, "sharing").str("sharing"),
                         {Sharing::none, Sharing::in_queue, Sharing::all},
                         "sharing level");
  c.base_algo = parse_enum(get(o, "base_algo").str("base_algo"),
                           {rt::AllgatherAlgo::flat_ring,
                            rt::AllgatherAlgo::leader_ring,
                            rt::AllgatherAlgo::leader_rd},
                           "allgather algo");
  c.parallel_allgather =
      get(o, "parallel_allgather").boolean("parallel_allgather");
  c.summary_granularity = static_cast<std::uint64_t>(
      get(o, "summary_granularity").number("summary_granularity"));
  c.direction = parse_enum(get(o, "direction").str("direction"),
                           {Direction::hybrid, Direction::top_down_only,
                            Direction::bottom_up_only},
                           "direction");
  c.alpha = get(o, "alpha").number("alpha");
  c.beta = get(o, "beta").number("beta");
  c.codec = parse_enum(get(o, "codec").str("codec"),
                       {CodecMode::off, CodecMode::gate,
                        CodecMode::force_sparse, CodecMode::force_dense},
                       "codec mode");
  c.exchange_chunks = get_int(o, "exchange_chunks");
  if (auto it = o.find("tune"); it != o.end()) {
    const JsonObject& t = it->second.obj("tune");
    c.tune.adapt_direction = get(t, "adapt_direction").boolean("adapt_direction");
    c.tune.adapt_chunks = get(t, "adapt_chunks").boolean("adapt_chunks");
    c.tune.adapt_allgather =
        get(t, "adapt_allgather").boolean("adapt_allgather");
    c.tune.window = get_int(t, "window");
    c.tune.hysteresis = get(t, "hysteresis").number("hysteresis");
    c.tune.dwell = get_int(t, "dwell");
  }
  if (const std::string err = c.validate(); !err.empty())
    throw std::runtime_error("profile: invalid config: " + err);
  return c;
}

void append_config(std::ostringstream& os, const bfs::Config& c,
                   const char* indent) {
  os << "{\n";
  const std::string in2 = std::string(indent) + "  ";
  os << in2 << "\"bind\": " << quote(to_string(c.bind)) << ",\n"
     << in2 << "\"sharing\": " << quote(to_string(c.sharing)) << ",\n"
     << in2 << "\"base_algo\": " << quote(rt::to_string(c.base_algo)) << ",\n"
     << in2 << "\"parallel_allgather\": "
     << (c.parallel_allgather ? "true" : "false") << ",\n"
     << in2 << "\"summary_granularity\": " << c.summary_granularity << ",\n"
     << in2 << "\"direction\": " << quote(to_string(c.direction)) << ",\n"
     << in2 << "\"alpha\": " << num(c.alpha) << ",\n"
     << in2 << "\"beta\": " << num(c.beta) << ",\n"
     << in2 << "\"codec\": " << quote(to_string(c.codec)) << ",\n"
     << in2 << "\"exchange_chunks\": " << c.exchange_chunks << ",\n"
     << in2 << "\"tune\": {\"adapt_direction\": "
     << (c.tune.adapt_direction ? "true" : "false")
     << ", \"adapt_chunks\": " << (c.tune.adapt_chunks ? "true" : "false")
     << ", \"adapt_allgather\": "
     << (c.tune.adapt_allgather ? "true" : "false")
     << ", \"window\": " << c.tune.window
     << ", \"hysteresis\": " << num(c.tune.hysteresis)
     << ", \"dwell\": " << c.tune.dwell << "}\n";
  os << indent << "}";
}

}  // namespace

const ProfileEntry* TunedProfile::find(const ShapeKey& k) const {
  for (const ProfileEntry& e : entries)
    if (e.shape == k) return &e;
  return nullptr;
}

const ProfileEntry* TunedProfile::nearest(const ShapeKey& k) const {
  if (const ProfileEntry* exact = find(k)) return exact;
  const ProfileEntry* best = nullptr;
  double best_d = 0.0;
  auto l2 = [](double a, double b) {
    double d = std::log2(a < 1 ? 1 : a) - std::log2(b < 1 ? 1 : b);
    return d * d;
  };
  // Equidistant entries resolve by shape_less (the documented total order
  // on ShapeKey), never by entry order — two profiles holding the same
  // entries in a different order must pick the same configuration.
  for (const ProfileEntry& e : entries) {
    // Cluster shape dominates graph shape: the knobs that matter most
    // (allgather algo, sharing, ppn interplay) track nodes x ppn.
    double d = 2.0 * l2(e.shape.nodes, k.nodes) +
               2.0 * l2(e.shape.ppn, k.ppn) +
               l2(e.shape.scale, k.scale) +
               l2(e.shape.edgefactor, k.edgefactor);
    if (!best || d < best_d ||
        (d == best_d && shape_less(e.shape, best->shape))) {
      best = &e;
      best_d = d;
    }
  }
  return best;
}

std::string TunedProfile::json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": " << quote(kProfileSchema) << ",\n  \"entries\": [";
  for (size_t i = 0; i < entries.size(); ++i) {
    const ProfileEntry& e = entries[i];
    os << (i ? "," : "") << "\n    {\n"
       << "      \"shape\": {\"scale\": " << e.shape.scale
       << ", \"edgefactor\": " << e.shape.edgefactor
       << ", \"nodes\": " << e.shape.nodes << ", \"ppn\": " << e.shape.ppn
       << "},\n"
       << "      \"objective\": " << quote(e.objective) << ",\n"
       << "      \"score\": " << num(e.score) << ",\n"
       << "      \"decomposition\": " << quote(e.decomposition) << ",\n"
       << "      \"hier\": " << quote(rt::coll_model::to_string(e.hier))
       << ",\n"
       << "      \"batch\": " << e.batch << ",\n"
       << "      \"config\": ";
    append_config(os, e.config, "      ");
    os << "\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

TunedProfile TunedProfile::parse(const std::string& text) {
  JsonValue doc = Parser(text).parse();
  const JsonObject& root = doc.obj("document root");
  const std::string schema = get(root, "schema").str("schema");
  if (schema != kProfileSchema)
    throw std::runtime_error("profile: schema mismatch: got '" + schema +
                             "', want '" + kProfileSchema + "'");
  TunedProfile p;
  for (const JsonValue& ev : get(root, "entries").arr("entries")) {
    const JsonObject& eo = ev.obj("entry");
    ProfileEntry e;
    const JsonObject& sh = get(eo, "shape").obj("shape");
    e.shape.scale = get_int(sh, "scale");
    e.shape.edgefactor = get_int(sh, "edgefactor");
    e.shape.nodes = get_int(sh, "nodes");
    e.shape.ppn = get_int(sh, "ppn");
    e.objective = get(eo, "objective").str("objective");
    e.score = get(eo, "score").number("score");
    if (auto it = eo.find("decomposition"); it != eo.end()) {
      e.decomposition = it->second.str("decomposition");
      if (e.decomposition != "1d" && e.decomposition != "2d")
        throw std::runtime_error("profile: decomposition must be '1d' or '2d'");
    }
    if (auto it = eo.find("hier"); it != eo.end())
      e.hier = parse_enum(it->second.str("hier"),
                          {rt::coll_model::HierLevel::flat,
                           rt::coll_model::HierLevel::node,
                           rt::coll_model::HierLevel::socket},
                          "hier level");
    if (auto it = eo.find("batch"); it != eo.end())
      e.batch = static_cast<int>(it->second.number("batch"));
    e.config = parse_config(get(eo, "config").obj("config"));
    p.entries.push_back(std::move(e));
  }
  return p;
}

void TunedProfile::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("profile: cannot open " + path);
  f << json();
}

TunedProfile TunedProfile::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("profile: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

bfs::Config to_bfs_config(const ProfileEntry& e) { return e.config; }

void apply(const ProfileEntry& e, bfs2d::Bfs2dOptions& o) {
  o.direction = e.config.direction;
  o.alpha = e.config.alpha;
  o.beta = e.config.beta;
  o.codec = e.config.codec;
  o.exchange_chunks = e.config.exchange_chunks;
  o.summary_granularity = e.config.summary_granularity;
  o.hier = e.hier;
}

void apply(const ProfileEntry& e, engine::EngineConfig& ec) {
  if (e.batch > 0) ec.max_batch = e.batch;
}

void apply(const ProfileEntry& e, engine::FrontDoorConfig& fdc) {
  if (e.batch > 0) fdc.max_batch = e.batch;
}

}  // namespace numabfs::tune
